// Example_fig2 builds and solves the paper's Section 5 worked example:
// the four-gate circuit of Figure 2 sized for minimum
// mu + 3*sigma using the *full-space* formulation — the literal
// equation 18 nonlinear program with per-gate moment variables,
// max-operator equality constraints and exact second derivatives,
// solved by the Newton-CG augmented-Lagrangian path (the module's
// LANCELOT substitute).
//
// Run with:
//
//	go run ./examples/example_fig2
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

func main() {
	// Figure 2: gates A, B, C driven by inputs a, b, c; all three
	// feed gate D; the primary outputs are C and D (the output max in
	// eq 18a runs over T_C and T_D).
	circuit := netlist.Fig2Example()
	model := delay.MustBind(netlist.MustCompile(circuit), delay.Default())
	// Equation 18e: sigma_t = 0.25 * mu_t; eq 18f: speed-up limit 3.
	model.Sigma = delay.Proportional{K: 0.25}
	model.Limit = 3

	before := ssta.Analyze(model, model.UnitSizes(), false)
	fmt.Printf("unsized: mu = %.4f  sigma = %.4f  mu+3sigma = %.4f\n",
		before.Tmax.Mu, before.Tmax.Sigma(),
		before.Tmax.Mu+3*before.Tmax.Sigma())

	// Minimize mu + 3*sigma (eq 18): 99.8% of circuits meet the
	// reported delay.
	spec := sizing.Spec{
		Objective:   sizing.MinMuPlusKSigma(3),
		Formulation: sizing.FullSpace,
		Solver:      nlp.Options{Method: nlp.NewtonCG},
	}
	out, err := sizing.Size(model, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sized:   mu = %.4f  sigma = %.4f  mu+3sigma = %.4f\n",
		out.MuTmax, out.SigmaTmax, out.MuTmax+3*out.SigmaTmax)
	fmt.Printf("solver: %v, %d outer / %d inner iterations, violation %.2g\n",
		out.Solver.Status, out.Solver.Outer, out.Solver.Inner, out.Solver.MaxViolation)
	for _, name := range []string{"A", "B", "C", "D"} {
		fmt.Printf("  S[%s] = %.4f\n", name, out.S[circuit.MustID(name)])
	}

	// Cross-check: the reduced formulation (speed factors only,
	// adjoint gradients) must land on the same optimum — the equality
	// constraints of eq 18 are definitional, so eliminating them
	// changes nothing mathematically.
	red, err := sizing.Size(model, sizing.Spec{Objective: sizing.MinMuPlusKSigma(3)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced formulation agrees: mu+3sigma = %.4f (full-space %.4f)\n",
		red.MuTmax+3*red.SigmaTmax, out.MuTmax+3*out.SigmaTmax)
}
