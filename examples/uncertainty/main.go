// Uncertainty: the paper's Table 2/3 experiment — at a fixed mean
// circuit delay, how much freedom is left in the delay *uncertainty*,
// and what do the sizings that minimize or maximize it look like?
//
// The punchline (paper section 6): at fixed mu there is a whole
// sigma-interval; minimizing sigma sizes symmetric gates alike and
// pushes drive toward the output, while maximizing sigma deliberately
// unbalances the paths so one dominates the max.
//
// Run with:
//
//	go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sizing"
)

func main() {
	circuit := netlist.Tree7()
	model := delay.MustBind(netlist.MustCompile(circuit), delay.PaperTree())
	const fixedMu = 6.5 // the paper's middle operating point

	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	fmt.Printf("tree circuit at fixed mu = %.1f\n\n", fixedMu)
	fmt.Printf("%-12s %8s %8s  %s\n", "objective", "sigma", "area", "speed factors A..G")

	for _, obj := range []sizing.Objective{
		sizing.MinArea(),
		sizing.MinSigma(),
		sizing.MaxSigma(),
	} {
		out, err := sizing.Size(model, sizing.Spec{
			Objective:   obj,
			Constraints: []sizing.Constraint{sizing.MuEQ(fixedMu)},
		})
		if err != nil {
			log.Fatalf("%v: %v", obj, err)
		}
		fmt.Printf("%-12s %8.3f %8.2f ", obj, out.SigmaTmax, out.SumS)
		for _, n := range names {
			fmt.Printf(" %5.2f", out.S[circuit.MustID(n)])
		}
		fmt.Println()
	}

	fmt.Println("\nReading the rows:")
	fmt.Println(" - min area and min sigma treat the symmetric gate groups")
	fmt.Println("   {A,B,D,E} and {C,F} identically, factors growing toward G;")
	fmt.Println("   min sigma is the more extreme version of the same shape.")
	fmt.Println(" - max sigma unbalances the two subtrees so a single path")
	fmt.Println("   dominates the statistical max, keeping its variance alive.")
}
