// Yield: the paper's section 4 story end to end. Size a circuit for
// minimum area under deadlines of the form mu + k*sigma <= D for
// k = 0, 1, 3, then validate by Monte Carlo that the resulting
// circuits meet the deadline in ~50%, ~84.1% and ~99.8% of
// manufactured instances — the statistical model's whole point: k
// buys timing yield at a known area price.
//
// Run with:
//
//	go run ./examples/yield
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

func main() {
	circuit := netlist.Tree7()
	model := delay.MustBind(netlist.MustCompile(circuit), delay.PaperTree())

	// Pick a deadline inside the feasible band.
	unit := ssta.Analyze(model, model.UnitSizes(), false).Tmax
	fast, err := sizing.Size(model, sizing.Spec{Objective: sizing.MinMuPlusKSigma(3)})
	if err != nil {
		log.Fatal(err)
	}
	deadline := 0.5 * (fast.MuTmax + 3*fast.SigmaTmax + unit.Mu)
	fmt.Printf("deadline D = %.3f (unsized mu %.3f, best mu+3sigma %.3f)\n\n",
		deadline, unit.Mu, fast.MuTmax+3*fast.SigmaTmax)

	fmt.Printf("%-12s %8s %8s %8s %12s %14s\n",
		"constraint", "mu", "sigma", "area", "yield@D (MC)", "nominal yield")
	for _, k := range []float64{0, 1, 3} {
		out, err := sizing.Size(model, sizing.Spec{
			Objective:   sizing.MinArea(),
			Constraints: []sizing.Constraint{sizing.DelayLE(k, deadline)},
		})
		if err != nil {
			log.Fatal(err)
		}
		mc, err := montecarlo.Run(model, out.S, montecarlo.Options{
			Samples: 400000, Seed: 7, KeepSamples: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		nominal := map[float64]string{0: "50%", 1: "84.1%", 3: "99.8%"}[k]
		fmt.Printf("mu+%gsigma<=D %8.3f %8.3f %8.2f %11.1f%% %14s\n",
			k, out.MuTmax, out.SigmaTmax, out.SumS, 100*mc.Yield(deadline), nominal)
	}

	fmt.Println("\nGuaranteeing more sigmas of margin costs area but buys")
	fmt.Println("manufacturing yield — the trade the statistical model makes visible.")
}
