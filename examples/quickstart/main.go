// Quickstart: size the paper's seven-NAND tree circuit (Figure 3) for
// minimum mean delay and show what the statistical model reports
// before and after.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

func main() {
	// 1. Build (or load) a circuit. Tree7 is the paper's Figure 3.
	circuit := netlist.Tree7()
	graph := netlist.MustCompile(circuit)

	// 2. Bind it to a cell library. PaperTree carries the calibrated
	// parameters that reproduce the paper's Table 2 numbers; every
	// gate delay gets sigma = 0.25 * mu.
	model := delay.MustBind(graph, delay.PaperTree())
	model.Sigma = delay.Proportional{K: 0.25}
	model.Limit = 3 // speed factors range over [1, 3]

	// 3. Statistical timing before sizing: one linear-time sweep.
	before := ssta.Analyze(model, model.UnitSizes(), false)
	fmt.Printf("before sizing: mu = %.3f  sigma = %.3f  area = %.0f\n",
		before.Tmax.Mu, before.Tmax.Sigma(), model.SumSizes(model.UnitSizes()))

	// 4. Size for minimum mean delay. The reduced formulation
	// optimizes the speed factors directly with exact adjoint
	// gradients through the statistical operators.
	out, err := sizing.Size(model, sizing.Spec{Objective: sizing.MinMu()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after sizing:  mu = %.3f  sigma = %.3f  area = %.2f  (%v)\n",
		out.MuTmax, out.SigmaTmax, out.SumS, out.Solver.Status)

	// 5. Per-gate speed factors.
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		fmt.Printf("  S[%s] = %.3f\n", name, out.S[circuit.MustID(name)])
	}

	// 6. The paper's headline trade-off: minimizing mu + 3*sigma
	// instead sacrifices a little mean for a tighter distribution,
	// so 99.8% of manufactured circuits meet the reported delay.
	robust, err := sizing.Size(model, sizing.Spec{Objective: sizing.MinMuPlusKSigma(3)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min mu+3sigma: mu = %.3f  sigma = %.3f  area = %.2f\n",
		robust.MuTmax, robust.SigmaTmax, robust.SumS)
	fmt.Printf("99.8%% quantile: %.3f (was %.3f for min-mu)\n",
		robust.MuTmax+3*robust.SigmaTmax, out.MuTmax+3*out.SigmaTmax)
}
