// Correlation: quantify the error of the paper's independence
// assumption (section 3) and preview its named future work
// (section 7): correlation-aware statistical timing.
//
// Three estimates of the same circuit-delay distribution are compared:
// the paper's independence-assuming analytic sweep, the canonical
// correlation-aware sweep (per-gate noise sources, Clark's correlated
// max), and ground-truth Monte Carlo.
//
// Run with:
//
//	go run ./examples/correlation
package main

import (
	"fmt"
	"log"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

func main() {
	circuits := []*netlist.Circuit{
		netlist.Tree7(),       // no reconvergence: independence exact
		netlist.Fig2Example(), // mild reconvergence
		netlist.Apex2Like(),   // heavily reconvergent synthetic logic
	}
	fmt.Printf("%-12s %22s %22s %22s\n", "circuit",
		"independence (paper)", "canonical (future wk)", "monte carlo (truth)")
	for _, c := range circuits {
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(netlist.MustCompile(c), lib)
		S := m.UnitSizes()

		ind := ssta.Analyze(m, S, false).Tmax
		can := ssta.AnalyzeCanonical(m, S)
		mc, err := montecarlo.Run(m, S, montecarlo.Options{Samples: 100000, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s    mu=%6.3f sg=%5.3f    mu=%6.3f sg=%5.3f    mu=%6.3f sg=%5.3f\n",
			c.Name, ind.Mu, ind.Sigma(), can.Tmax.Mu, can.Tmax.Sigma(), mc.Mu, mc.Sigma)
	}

	fmt.Println(`
Reading the rows:
 - tree7: no paths share gates, so all three agree — the paper's
   assumption is exact on trees.
 - fig2: mild reconvergence; the canonical sweep is already exact
   while independence drifts slightly.
 - apex2-like: shared logic makes path delays strongly correlated.
   Independence inflates the mean a few percent and *halves* sigma;
   the canonical sweep recovers most of both. This is precisely the
   limitation the paper flags as future work in section 7.`)
}
