GO ?= go

.PHONY: build test vet race bench bench-inc bench-batch bench-hier bench-obsv bench-service bench-session test-batch test-hier test-obsv test-service test-session smoke-service check trace faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel SSTA and Monte Carlo engines are concurrency-bearing;
# every change must stay clean under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# bench-inc measures the incremental SSTA engine against the legacy
# full-sweep path (single-gate gradient steps in internal/ssta, fixed
# 64-step greedy runs in internal/sizing) and collects ns/op and
# allocs/op into BENCH_incremental.json. The greedy pair must show the
# incremental engine at least 2x faster on the 1200-gate netlist.
bench-inc:
	$(GO) test -run NONE -bench 'Inc|FullSweep' -benchmem -count 1 \
		./internal/ssta/ ./internal/sizing/ | tee /tmp/bench-inc.txt
	awk 'BEGIN { print "["; n = 0 } \
		/^Benchmark(Inc|FullSweep|Greedy)/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); \
			if (n++) printf ",\n"; \
			printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
				name, $$3, $$5, $$7 } \
		END { print "\n]" }' /tmp/bench-inc.txt > BENCH_incremental.json
	cat BENCH_incremental.json

# bench-batch measures the K-lane structure-of-arrays sweeps against
# K independent scalar traversals on the 1200-gate netlist — the
# deterministic corner k-sweep (DetBatch), the statistical scenario
# sweep (Batch forward and forward+adjoint) and the batched Monte
# Carlo shard runner — and collects ns/op, allocs/op and the derived
# K=8 speedups into BENCH_batch.json. The corner pair must show the
# batched path at least 4x faster at K=8.
bench-batch:
	$(GO) test -run NONE -bench 'Corner(Scalar|Batch)|Forward(Scalar|Batch)|GradBatch' \
		-benchmem -count 1 ./internal/ssta/ | tee /tmp/bench-batch.txt
	$(GO) test -run NONE -bench 'MCLanes' -benchmem -count 1 \
		./internal/montecarlo/ | tee -a /tmp/bench-batch.txt
	awk 'BEGIN { print "["; n = 0 } \
		/^Benchmark(Corner|Forward|Grad|MCLanes)/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); ns[name] = $$3; \
			if (n++) printf ",\n"; \
			printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
				name, $$3, $$5, $$7 } \
		END { \
			if (ns["BenchmarkCornerBatchK8Gen1200"]) \
				printf ",\n  {\"name\": \"CornerK8Speedup\", \"speedup\": %.2f}", \
					ns["BenchmarkCornerScalarX8Gen1200"] / ns["BenchmarkCornerBatchK8Gen1200"]; \
			if (ns["BenchmarkForwardBatchK8Gen1200"]) \
				printf ",\n  {\"name\": \"ForwardK8Speedup\", \"speedup\": %.2f}", \
					ns["BenchmarkForwardScalarX8Gen1200"] / ns["BenchmarkForwardBatchK8Gen1200"]; \
			if (ns["BenchmarkMCLanes8Gen1200"]) \
				printf ",\n  {\"name\": \"MCLanes8Speedup\", \"speedup\": %.2f}", \
					ns["BenchmarkMCLanes1Gen1200"] / ns["BenchmarkMCLanes8Gen1200"]; \
			print "\n]" }' /tmp/bench-batch.txt > BENCH_batch.json
	cat BENCH_batch.json

# bench-hier measures the hierarchical block-parallel SSTA engine
# against the flat levelized sweeps on the streamed 100k-gate netlist
# (the cmd/circuitgen gen100k preset): full forward+adjoint evaluations
# at 1, 4 and 8 workers, and the warm single-gate sizing step where the
# engine replays clean blocks as cached statistical timing macros.
# Each benchmark runs 3 times and the minimum ns/op is kept (the same
# min-of-N noise suppression as internal/bench.timeBest). The results
# (ns/op, B/op, allocs/op and the derived speedups) land in
# BENCH_hier.json; the macro-replay step must be at least 3x faster
# than the flat full resweep, and the warm serial hierarchical sweeps
# must report zero allocations.
bench-hier:
	$(GO) test -run NONE -bench 'Gen100k' -benchmem -count 3 -timeout 30m \
		./internal/ssta/ | tee /tmp/bench-hier.txt
	awk 'function emit(name) { \
			printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
				(m++ ? ",\n" : ""), name, ns[name], by[name], al[name] } \
		BEGIN { print "["; n = 0; m = 0 } \
		/^Benchmark(Flat|Hier)(Grad|Step)Gen100k/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); \
			if (!(name in ns)) { order[n++] = name; ns[name] = $$3 } \
			else if ($$3 + 0 < ns[name] + 0) ns[name] = $$3; \
			by[name] = $$5; al[name] = $$7 } \
		END { \
			for (i = 0; i < n; i++) emit(order[i]); \
			if (ns["BenchmarkHierGradGen100kW8"]) \
				printf ",\n  {\"name\": \"HierFullSpeedupW8\", \"speedup\": %.2f}", \
					ns["BenchmarkFlatGradGen100kW8"] / ns["BenchmarkHierGradGen100kW8"]; \
			if (ns["BenchmarkHierStepGen100k"]) \
				printf ",\n  {\"name\": \"HierStepSpeedup\", \"speedup\": %.2f}", \
					ns["BenchmarkFlatStepGen100k"] / ns["BenchmarkHierStepGen100k"]; \
			print "\n]" }' /tmp/bench-hier.txt > BENCH_hier.json
	cat BENCH_hier.json

# bench-obsv measures the observability subsystem's overhead: identical
# fixed-work solves on the 1200-gate netlist with telemetry disabled
# (nil Recorder) and with the full production chain attached (watchdog
# -> metrics with span histograms and scope-stack span trees). The
# Off/On singles run once for the exact B/op and allocs/op rows; the
# overhead percentages come from the *Pair benchmarks, which interleave
# the two variants inside each iteration so shared-host frequency
# drift — far larger than the overhead itself in consecutive-block
# comparisons — cancels, and the median of 5 paired runs lands in
# BENCH_obsv.json with a target under 2%.
bench-obsv:
	$(GO) test -run NONE -bench 'Obsv(Greedy|NLP)(Off|On)$$' -benchmem \
		-count 1 -benchtime 100x -timeout 30m ./internal/sizing/ \
		| tee /tmp/bench-obsv.txt
	$(GO) test -run NONE -bench 'Obsv(Greedy|NLP)Pair' -count 5 -benchtime 50x \
		-timeout 30m ./internal/sizing/ | tee -a /tmp/bench-obsv.txt
	awk 'function median(name,   n, i, j, t, a) { \
			n = cnt[name]; \
			for (i = 0; i < n; i++) a[i] = ovh[name, i] + 0; \
			for (i = 1; i < n; i++) \
				for (j = i; j > 0 && a[j] < a[j-1]; j--) { t = a[j]; a[j] = a[j-1]; a[j-1] = t } \
			return a[int(n / 2)] } \
		BEGIN { print "["; n = 0 } \
		/^BenchmarkObsv(Greedy|NLP)Pair/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); \
			for (i = 2; i <= NF; i++) if ($$i == "overhead-%") ovh[name, cnt[name]++] = $$(i-1); \
			next } \
		/^BenchmarkObsv/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); \
			if (n++) printf ",\n"; \
			printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
				name, $$3, $$5, $$7 } \
		END { \
			if (cnt["BenchmarkObsvGreedyPair"]) \
				printf ",\n  {\"name\": \"GreedyObsvOverheadPct\", \"overhead_pct\": %.2f}", \
					median("BenchmarkObsvGreedyPair"); \
			if (cnt["BenchmarkObsvNLPPair"]) \
				printf ",\n  {\"name\": \"NLPObsvOverheadPct\", \"overhead_pct\": %.2f}", \
					median("BenchmarkObsvNLPPair"); \
			print "\n]" }' /tmp/bench-obsv.txt > BENCH_obsv.json
	cat BENCH_obsv.json

# test-obsv runs the observability suite under the race detector (the
# CI obsv job): histogram bucketing and quantiles, span-tree self/cum
# attribution and allocation pins, the Prometheus exposition golden
# file and scrape server, the watchdog stall detection (including the
# fault-injected non-converging solve), the trace-into-missing-
# directory behavior of both CLIs, and the byte-identity of traces
# under the full observability chain.
test-obsv:
	$(GO) test -race -timeout 10m \
		-run 'Hist|Stack|Tree|AddAt|Prom|Serve|SampleRuntime|Watchdog|TraceFlag|ObservabilityChain|Trace' \
		./internal/telemetry/ ./internal/sizing/ ./internal/faults/ \
		./cmd/statsize/ ./cmd/ssta/

# test-hier runs the hierarchical timing suite under the race detector
# (the CI hier job): partitioner invariants and determinism fuzz,
# blocked-vs-flat bit-identity fuzz across worker counts and block
# targets (macro replay included), the worker-invariant telemetry
# byte-identity check and the streamed generator round-trip.
test-hier:
	$(GO) test -race -timeout 5m -run 'Hier|Partition|GenerateStream|GenPreset' \
		./internal/ssta/ ./internal/partition/ ./internal/netlist/

# test-batch runs the batch equivalence suite — bit-identity of the
# K-lane statistical/deterministic/Monte Carlo sweeps against
# independent scalar runs, the quantile edge-case tables and the
# risk-factor guards — under the race detector (the CI batch job).
test-batch:
	$(GO) test -race -timeout 5m \
		-run 'Batch|KSweep|Corners|NonFinite|LaneWidth|QuantileMaxN|Scenario' \
		./internal/ssta/ ./internal/montecarlo/ ./internal/stats/

# test-service runs the sizing-as-a-service suite under the race
# detector (the CI service job): admission control (429/503/409/413),
# the journal's torn-tail replay, checkpoint durability (.bak
# fallback), the supervision state machine (retry with ladder
# step-down, watchdog, per-job deadlines, cancellation), and the chaos
# acceptance tests — kill mid-solve with bit-identical recovery, drain
# with zero accepted-job loss, restart over a torn journal.
test-service:
	$(GO) test -race -timeout 10m ./internal/service/ ./cmd/sizingd/ \
		./internal/checkpoint/

# test-session runs the warm what-if session suite under the race
# detector (the CI session job): the full HTTP lifecycle, admission
# mapping, LRU evict + rebuild bit-identity against a never-evicted
# control, concurrent PATCH linearization, what-if state purity, idle
# reaping, roster recovery across a hard restart, and the SSE/strict-
# body regression tests that ride along.
test-session:
	$(GO) test -race -timeout 10m \
		-run 'Session|EventHub|TrailingGarbage|ReplayDisconnect' \
		./internal/service/

# smoke-service boots the daemon, pushes one job through the HTTP API
# end to end and drains — the CI liveness check for cmd/sizingd.
smoke-service:
	$(GO) run ./cmd/sizingd -smoke

# bench-service runs the chaos load harness — concurrent clients
# submitting real solves over HTTP while the daemon is hard-killed and
# restarted mid-run — and records throughput, submit→result latency
# quantiles and the supervision counters into BENCH_service.json.
# Every accepted job must reach a terminal state (kills included);
# the harness fails otherwise.
bench-service:
	$(GO) run ./cmd/sizingd -loadtest -out BENCH_service.json \
		-jobs 16 -clients 4 -kills 3
	cat BENCH_service.json

# bench-session measures the same single-gate timing query served from
# a warm what-if session (PATCH against the resident incremental
# engine), a cold per-query session (create + nudge + close) and the
# pre-session cold-job baseline (submit + poll to terminal) on the k2
# netlist, recording the latency quantiles and speedups into
# BENCH_session.json. The harness fails unless the warm path is at
# least 10x faster than the cold job at the median.
bench-session:
	$(GO) run ./cmd/sizingd -sessionbench -out BENCH_session.json
	cat BENCH_session.json

# check is the CI gate: vet + build + tests + race-checked tests.
check: vet build test race

# faults runs the resilience acceptance suite: the deterministic
# fault-injection harness (internal/faults) driving the solver's
# recovery, degradation, cancellation and checkpoint paths, plus the
# cancellation tests of the parallel SSTA and Monte Carlo engines —
# race-checked, because these are exactly the paths where goroutines
# could leak.
faults:
	$(GO) test -race -timeout 5m ./internal/faults/ ./internal/nlp/ \
		./internal/ssta/ ./internal/montecarlo/

# trace runs a sized solve with the JSONL telemetry trace enabled and
# schema-validates the result — the end-to-end smoke test of the
# observability layer. The serial and parallel traces must be
# byte-identical (the determinism contract of internal/telemetry).
trace:
	$(GO) run ./cmd/statsize -circuit tree7 -objective area \
		-constraint "mu+3sigma<=8" -trace /tmp/statsize-j1.jsonl -metrics -j 1
	$(GO) run ./cmd/statsize -circuit tree7 -objective area \
		-constraint "mu+3sigma<=8" -trace /tmp/statsize-j4.jsonl -j 4 >/dev/null
	cmp /tmp/statsize-j1.jsonl /tmp/statsize-j4.jsonl
	$(GO) run ./cmd/tables -checktrace /tmp/statsize-j1.jsonl
