GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel SSTA and Monte Carlo engines are concurrency-bearing;
# every change must stay clean under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# check is the CI gate: vet + build + tests + race-checked tests.
check: vet build test race
