package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sizing"
	"repro/internal/telemetry"
)

func TestParseObjective(t *testing.T) {
	cases := map[string]sizing.Objective{
		"mu":          sizing.MinMu(),
		"area":        sizing.MinArea(),
		"sigma":       sizing.MinSigma(),
		"-sigma":      sizing.MaxSigma(),
		"maxsigma":    sizing.MaxSigma(),
		"mu+sigma":    sizing.MinMuPlusKSigma(1),
		"mu+3sigma":   sizing.MinMuPlusKSigma(3),
		"mu+2.5sigma": sizing.MinMuPlusKSigma(2.5),
	}
	for in, want := range cases {
		got, err := sizing.ParseObjective(in)
		if err != nil {
			t.Errorf("sizing.ParseObjective(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("sizing.ParseObjective(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "frob", "mu+", "mu+xsigma", "mu+-1sigma", "sigma+mu"} {
		if _, err := sizing.ParseObjective(bad); err == nil {
			t.Errorf("sizing.ParseObjective(%q) accepted", bad)
		}
	}
}

func TestParseConstraint(t *testing.T) {
	cases := map[string]sizing.Constraint{
		"mu<=120":          sizing.DelayLE(0, 120),
		"mu <= 120":        sizing.DelayLE(0, 120),
		"mu+sigma<=120":    sizing.DelayLE(1, 120),
		"mu+3sigma<=29":    sizing.DelayLE(3, 29),
		"mu=6.5":           sizing.MuEQ(6.5),
		"mu + 3sigma <= 1": sizing.DelayLE(3, 1),
	}
	for in, want := range cases {
		got, err := sizing.ParseConstraint(in)
		if err != nil {
			t.Errorf("sizing.ParseConstraint(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("sizing.ParseConstraint(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "mu", "mu<=x", "sigma<=2", "mu=x", "x=3", "mu>=2"} {
		if _, err := sizing.ParseConstraint(bad); err == nil {
			t.Errorf("sizing.ParseConstraint(%q) accepted", bad)
		}
	}
}

func TestLoadCircuitBuiltins(t *testing.T) {
	for _, name := range []string{"tree7", "fig2", "apex1", "apex2", "k2"} {
		c, lib, err := loadCircuit(name)
		if err != nil {
			t.Errorf("loadCircuit(%q): %v", name, err)
			continue
		}
		if c == nil || lib == nil {
			t.Errorf("loadCircuit(%q) returned nils", name)
		}
	}
	if _, _, err := loadCircuit("/no/such/file.ckt"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestTraceFlagCreatesParentDirs pins the -trace behavior this CLI
// relies on: pointing -trace (or -spans) into a directory that does
// not exist yet must create the parents instead of failing the run.
func TestTraceFlagCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs", "2026-08-07", "trace.jsonl")
	w, err := telemetry.CreateTrace(path)
	if err != nil {
		t.Fatalf("CreateTrace into missing directory: %v", err)
	}
	w.Event("smoke", "test")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	spans := filepath.Join(t.TempDir(), "deep", "spans.jsonl")
	if err := telemetry.NewTree().WriteFile(spans); err != nil {
		t.Fatalf("WriteFile into missing directory: %v", err)
	}
}
