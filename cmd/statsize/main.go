// Command statsize sizes the gates of a circuit under the statistical
// delay model of Jacobs & Berkelaar (DATE 2000).
//
// Usage:
//
//	statsize -circuit tree7 -objective mu+3sigma
//	statsize -circuit design.ckt -objective area -constraint "mu+3sigma<=120"
//	statsize -circuit fig2 -formulation full -solver newton -sizes
//
// Built-in circuits: tree7 (paper Figure 3), fig2 (paper Figure 2,
// Section 5 example), apex1, apex2, k2 (synthetic stand-ins for the
// paper's MCNC benchmarks). Anything else is read as a .ckt or .blif
// file by extension.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/sizing"
	"repro/internal/ssta"
	"repro/internal/telemetry"
)

func main() {
	var (
		circuitFlag   = flag.String("circuit", "tree7", "built-in name or netlist file (.ckt/.blif/.bench)")
		objectiveFlag = flag.String("objective", "mu", "mu | mu+sigma | mu+3sigma | mu+Ksigma | area | sigma | -sigma")
		constraints   multiFlag
		formulation   = flag.String("formulation", "reduced", "reduced | full")
		solver        = flag.String("solver", "lbfgs", "lbfgs | newton (newton needs -formulation full)")
		sigmaK        = flag.Float64("sigmak", 0.25, "sigma model: sigma_t = sigmak * mu_t")
		limit         = flag.Float64("limit", 3, "maximum speed factor")
		showSizes     = flag.Bool("sizes", false, "print per-gate speed factors")
		greedyFlag    = flag.Bool("greedy", false, "use the TILOS-style greedy sensitivity sizer (incremental SSTA engine) instead of the NLP solver; needs a mu+Ksigma<= constraint")
		verbose       = flag.Bool("v", false, "log solver progress (the telemetry event stream, rendered as text)")
		workers       = flag.Int("j", 0, "worker goroutines for the SSTA sweeps and the NLP element evaluation engine (0 = all CPUs, 1 = serial; results are identical for any value)")
		blocksFlag    = flag.Int("blocks", 0, "verify the final sizes through the hierarchical block-parallel engine with this block-size target (0 = off)")
		traceFile     = flag.String("trace", "", "write a JSONL solver trace to this file (byte-identical for every -j)")
		metricsFlag   = flag.Bool("metrics", false, "print the telemetry metrics summary table after the run")
		serveFlag     = flag.String("serve", "", "serve Prometheus /metrics, expvar and pprof on this address (e.g. localhost:9090); implies metrics collection")
		spansFile     = flag.String("spans", "", "write the wall-clock span tree as JSONL to this file after the run (tracetool -spans reads it)")
		watchdogFlag  = flag.Bool("watchdog", false, "monitor solver progress events and warn on stderr when the solve stalls")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile to this file after the run")
		timeout       = flag.Duration("timeout", 0, "abort the solve after this wall-clock budget; the run exits non-zero with the best-so-far result (0 = no limit)")
		checkpointF   = flag.String("checkpoint", "", "write a solver checkpoint to this file periodically and on cancellation")
		resumeF       = flag.String("resume", "", "resume the solve from a checkpoint file written by -checkpoint")
	)
	flag.Var(&constraints, "constraint", `timing constraint, repeatable: "mu<=120", "mu+3sigma<=120", "mu=6.5"`)
	flag.Parse()

	// Assemble the telemetry pipeline: every enabled sink consumes the
	// same event stream, so -v, -trace and -metrics cannot disagree.
	var sinks []telemetry.Recorder
	if *verbose {
		sinks = append(sinks, telemetry.NewLogSink(os.Stderr))
	}
	var trace *telemetry.TraceWriter
	if *traceFile != "" {
		var err error
		if trace, err = telemetry.CreateTrace(*traceFile); err != nil {
			fatal(err)
		}
		sinks = append(sinks, trace)
	}
	var metrics *telemetry.Metrics
	if *metricsFlag || *pprofAddr != "" || *serveFlag != "" || *spansFile != "" {
		metrics = telemetry.NewMetrics()
		metrics.Publish("statsize")
		sinks = append(sinks, metrics)
	}
	rec := telemetry.Multi(sinks...)
	var watchdog *telemetry.Watchdog
	if *watchdogFlag {
		watchdog = telemetry.NewWatchdog(rec, telemetry.WatchdogOptions{})
		rec = watchdog
	}
	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "statsize: debug server at http://%s/debug/pprof/ (expvar at /debug/vars)\n", addr)
	}
	if *serveFlag != "" {
		addr, err := telemetry.Serve(*serveFlag, metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "statsize: observability server at http://%s/metrics (pprof at /debug/pprof/, expvar at /debug/vars)\n", addr)
	}
	var stopCPU func() error
	if *cpuProfile != "" {
		var err error
		if stopCPU, err = telemetry.StartCPUProfile(*cpuProfile); err != nil {
			fatal(err)
		}
	}

	circ, lib, err := loadCircuit(*circuitFlag)
	if err != nil {
		fatal(err)
	}
	g, err := netlist.Compile(circ)
	if err != nil {
		fatal(err)
	}
	m, err := delay.Bind(g, lib)
	if err != nil {
		fatal(err)
	}
	m.Limit = *limit
	m.Sigma = delay.Proportional{K: *sigmaK}

	spec := sizing.Spec{Workers: *workers}
	spec.Objective, err = sizing.ParseObjective(*objectiveFlag)
	if err != nil {
		fatal(err)
	}
	for _, c := range constraints {
		con, err := sizing.ParseConstraint(c)
		if err != nil {
			fatal(err)
		}
		spec.Constraints = append(spec.Constraints, con)
	}
	switch *formulation {
	case "reduced":
		spec.Formulation = sizing.Reduced
	case "full":
		spec.Formulation = sizing.FullSpace
	default:
		fatal(fmt.Errorf("unknown formulation %q", *formulation))
	}
	switch *solver {
	case "lbfgs":
		spec.Solver.Method = nlp.LBFGS
	case "newton":
		spec.Solver.Method = nlp.NewtonCG
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}
	spec.Recorder = rec
	spec.Solver.CheckpointPath = *checkpointF
	if *resumeF != "" {
		ck, err := nlp.LoadCheckpoint(*resumeF)
		if err != nil {
			fatal(err)
		}
		spec.Solver.Resume = ck
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// SIGINT/SIGTERM cancel the solve context instead of killing the
	// process: the solver observes the cancellation at the next
	// iteration boundary, flushes a final checkpoint when -checkpoint
	// is set (the nlp cancellation path), and the run exits through the
	// regular non-zero failed-status line below with the best-so-far
	// sizing printed — an interrupt never loses the iterate.
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	unit := ssta.AnalyzeWorkersRec(m, m.UnitSizes(), false, *workers, rec).Tmax
	fmt.Printf("circuit %s: %d gates, %d inputs, %d outputs\n",
		circ.Name, circ.NumGates(), circ.NumInputs(), len(circ.Outputs))
	fmt.Printf("unsized:   mu = %.4f  sigma = %.4f  sum(Si) = %d\n",
		unit.Mu, unit.Sigma(), circ.NumGates())

	// drainSinks flushes the telemetry sinks in a fixed order: trace
	// first (so `make trace` can validate it), then the metrics table,
	// then the runtime profiles. Both the NLP and the greedy paths end
	// through it.
	drainSinks := func() {
		if trace != nil {
			if err := trace.Close(); err != nil {
				fatal(err)
			}
		}
		if *metricsFlag {
			fmt.Println("metrics:")
			if err := metrics.WriteSummary(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *spansFile != "" {
			if err := metrics.SpanTree().WriteFile(*spansFile); err != nil {
				fatal(err)
			}
		}
		if watchdog != nil {
			for _, s := range watchdog.Stalls() {
				fmt.Fprintf(os.Stderr,
					"statsize: watchdog: %s progress stalled at iteration %d (best %.6g, last %.6g, %d non-improving iterations)\n",
					s.Scope, s.Iter, s.Best, s.Last, s.Streak)
			}
		}
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fatal(err)
			}
		}
		if *memProfile != "" {
			if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
				fatal(err)
			}
		}
	}

	// verifyBlocks re-analyzes the final sizes through the hierarchical
	// block-parallel engine and insists on bit-identity with the flat
	// sweep — an end-to-end cross-check of the sizing result's timing.
	verifyBlocks := func(S []float64) {
		if *blocksFlag <= 0 {
			return
		}
		h := ssta.NewHier(m, S, ssta.HierOptions{BlockTarget: *blocksFlag, Workers: *workers})
		flat := ssta.AnalyzeWorkers(m, S, false, *workers)
		p := h.Partition()
		if h.Tmax() != flat.Tmax {
			fatal(fmt.Errorf("hierarchical verification diverged: blocked %+v flat %+v", h.Tmax(), flat.Tmax))
		}
		fmt.Printf("verified:  hierarchical re-analysis (%d blocks, target %d) bit-identical to flat\n",
			len(p.Blocks), p.Target)
	}

	if *greedyFlag {
		opt, ok := sizing.GreedyFromSpec(spec)
		if !ok {
			fatal(fmt.Errorf(`-greedy needs a mu+Ksigma<= deadline constraint, e.g. -constraint "mu+3sigma<=120"`))
		}
		start := time.Now()
		gr, err := sizing.SizeGreedyCtx(ctx, m, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("objective: greedy  s.t. mu+%gsigma <= %g  [incremental SSTA]\n", opt.K, opt.Deadline)
		fmt.Printf("sized:     mu = %.4f  sigma = %.4f  sum(Si) = %.4f\n",
			gr.MuTmax, gr.SigmaTmax, gr.SumS)
		met := "deadline met"
		if !gr.Met {
			met = "deadline missed (all gates at the limit)"
		}
		fmt.Printf("greedy:    %d steps in %v — %s\n",
			gr.Steps, time.Since(start).Round(time.Millisecond), met)
		verifyBlocks(gr.S)
		if *showSizes {
			printSizes(circ, gr.S)
		}
		drainSinks()
		if !gr.Met {
			fmt.Fprintf(os.Stderr, "statsize: greedy sizer missed the deadline: mu+%gsigma = %.6g > %g\n",
				opt.K, gr.MuTmax+opt.K*gr.SigmaTmax, opt.Deadline)
			os.Exit(2)
		}
		return
	}

	out, err := sizing.SizeCtx(ctx, m, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("objective: %v", spec.Objective)
	for _, c := range spec.Constraints {
		fmt.Printf("  s.t. %v", c)
	}
	fmt.Printf("  [%v / %v]\n", spec.Formulation, spec.Solver.Method)
	fmt.Printf("sized:     mu = %.4f  sigma = %.4f  sum(Si) = %.4f\n",
		out.MuTmax, out.SigmaTmax, out.SumS)
	fmt.Printf("solver:    %v in %v (%d outer, %d inner, violation %.2g)\n",
		out.Solver.Status, out.Runtime.Round(time.Millisecond),
		out.Solver.Outer, out.Solver.Inner, out.Solver.MaxViolation)
	if out.Fallback {
		fmt.Printf("fallback:  NLP solver failed numerically; sizes above are from the greedy sensitivity sizer\n")
	}
	fmt.Printf("timing:    setup %v  inner %v  solve %v\n",
		out.Solver.SetupTime.Round(time.Microsecond),
		out.Solver.InnerTime.Round(time.Microsecond),
		out.Solver.Duration.Round(time.Microsecond))

	verifyBlocks(out.S)

	if *showSizes {
		printSizes(circ, out.S)
	}

	drainSinks()

	// A failed solver status exits non-zero with a one-line diagnostic
	// after the sinks drain, so scripts can detect the condition while
	// the trace and best-so-far result above stay inspectable.
	if st := out.Solver.Status; st.Failed() {
		msg := fmt.Sprintf("statsize: solver %v: best objective %.6g after %d outer / %d inner",
			st, out.Solver.F, out.Solver.Outer, out.Solver.Inner)
		if *checkpointF != "" {
			msg += fmt.Sprintf(" (checkpoint: %s)", *checkpointF)
		}
		if out.Fallback {
			msg += " — greedy fallback sizing reported above"
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
}

// printSizes lists the per-gate speed factors sorted by gate name.
func printSizes(circ *netlist.Circuit, S []float64) {
	type gs struct {
		name string
		s    float64
	}
	var list []gs
	for _, id := range circ.GateIDs() {
		list = append(list, gs{circ.Nodes[id].Name, S[id]})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	fmt.Println("speed factors:")
	for _, e := range list {
		fmt.Printf("  %-12s %.4f\n", e.name, e.s)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "statsize:", err)
	os.Exit(1)
}

// loadCircuit resolves a built-in name or reads a netlist file.
func loadCircuit(name string) (*netlist.Circuit, *delay.Library, error) {
	switch name {
	case "tree7":
		return netlist.Tree7(), delay.PaperTree(), nil
	case "fig2":
		return netlist.Fig2Example(), delay.Default(), nil
	case "apex1":
		return netlist.Apex1Like(), delay.Default(), nil
	case "apex2":
		return netlist.Apex2Like(), delay.Default(), nil
	case "k2":
		return netlist.K2Like(), delay.Default(), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var c *netlist.Circuit
	switch {
	case strings.HasSuffix(name, ".blif"):
		c, err = netlist.ReadBLIF(f)
	case strings.HasSuffix(name, ".bench"):
		c, err = netlist.ReadBench(f)
	default:
		c, err = netlist.ReadCKT(f)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	return c, delay.Default(), nil
}
