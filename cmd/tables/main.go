// Command tables regenerates the paper's evaluation artifacts: Table 1
// (benchmark sizing formulations), Table 2 (tree objectives), Table 3
// (tree speed factors) and the section 4 timing-yield experiment. It
// also validates JSONL telemetry traces written by statsize/ssta.
//
// Usage:
//
//	tables                 # everything (Table 1 takes ~30 s)
//	tables -table 2        # just Table 2
//	tables -table yield -samples 500000
//	tables -checktrace trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

func main() {
	var (
		table      = flag.String("table", "all", "1 | 2 | 3 | yield | baseline | ksweep | hier | all")
		samples    = flag.Int("samples", 200000, "Monte Carlo samples for the yield table")
		hierGates  = flag.Int("gates", 100000, "netlist size for the hier scaling table")
		verbose    = flag.Bool("v", false, "log per-run solver progress for Table 1")
		checkTrace = flag.String("checktrace", "", "validate a JSONL telemetry trace and print an event census instead of running tables")
	)
	flag.Parse()

	if *checkTrace != "" {
		if err := runCheckTrace(*checkTrace); err != nil {
			fatal(err)
		}
		return
	}

	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	run1 := func() {
		t, err := bench.RunTable1(bench.Table1Circuits(), logf)
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	run2 := func() {
		t, err := bench.RunTable2()
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	run3 := func() {
		t, err := bench.RunTable3()
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	runYield := func() {
		y, err := bench.RunYield(*samples)
		if err != nil {
			fatal(err)
		}
		y.Format(os.Stdout)
	}
	runBaseline := func() {
		b, err := bench.RunBaseline(*samples)
		if err != nil {
			fatal(err)
		}
		b.Format(os.Stdout)
	}
	runKSweep := func() {
		t, err := bench.RunKSweep()
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	runHier := func() {
		t, err := bench.RunHier(*hierGates, logf)
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}

	switch *table {
	case "1":
		run1()
	case "2":
		run2()
	case "3":
		run3()
	case "yield":
		runYield()
	case "baseline":
		runBaseline()
	case "ksweep":
		runKSweep()
	case "hier":
		runHier()
	case "all":
		run2()
		run3()
		runKSweep()
		runYield()
		runBaseline()
		run1()
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}

// runCheckTrace parses and schema-validates a JSONL telemetry trace,
// then prints a census of the event stream and the final convergence
// state — the sanity check behind `make trace`.
func runCheckTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ParseTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := telemetry.ValidateTrace(events); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	census := map[string]int{}
	var lastOuter *telemetry.TraceEvent
	for i := range events {
		ev := &events[i]
		census[ev.Scope+"."+ev.Name]++
		if ev.Scope == "alm" && ev.Name == "outer" {
			lastOuter = ev
		}
	}
	fmt.Printf("%s: %d events, schema ok\n", path, len(events))
	kinds := make([]string, 0, len(census))
	for k := range census {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, census[k])
	}
	if lastOuter != nil {
		merit, _ := lastOuter.Get("merit")
		kkt, _ := lastOuter.Get("kkt")
		viol, _ := lastOuter.Get("viol")
		iter, _ := lastOuter.Get("iter")
		fmt.Printf("final alm.outer: iter=%g merit=%g kkt=%g viol=%g\n", iter, merit, kkt, viol)
	}
	return nil
}
