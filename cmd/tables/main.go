// Command tables regenerates the paper's evaluation artifacts: Table 1
// (benchmark sizing formulations), Table 2 (tree objectives), Table 3
// (tree speed factors) and the section 4 timing-yield experiment.
//
// Usage:
//
//	tables                 # everything (Table 1 takes ~30 s)
//	tables -table 2        # just Table 2
//	tables -table yield -samples 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		table   = flag.String("table", "all", "1 | 2 | 3 | yield | baseline | all")
		samples = flag.Int("samples", 200000, "Monte Carlo samples for the yield table")
		verbose = flag.Bool("v", false, "log per-run solver progress for Table 1")
	)
	flag.Parse()

	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	run1 := func() {
		t, err := bench.RunTable1(bench.Table1Circuits(), logf)
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	run2 := func() {
		t, err := bench.RunTable2()
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	run3 := func() {
		t, err := bench.RunTable3()
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
	}
	runYield := func() {
		y, err := bench.RunYield(*samples)
		if err != nil {
			fatal(err)
		}
		y.Format(os.Stdout)
	}
	runBaseline := func() {
		b, err := bench.RunBaseline(*samples)
		if err != nil {
			fatal(err)
		}
		b.Format(os.Stdout)
	}

	switch *table {
	case "1":
		run1()
	case "2":
		run2()
	case "3":
		run3()
	case "yield":
		runYield()
	case "baseline":
		runBaseline()
	case "all":
		run2()
		run3()
		runYield()
		runBaseline()
		run1()
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
