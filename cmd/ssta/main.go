// Command ssta runs statistical static timing analysis on a circuit:
// the analytic linear-time sweep of the paper's references [1], [2],
// optionally cross-checked against Monte Carlo sampling, with a
// statistical-criticality report.
//
// Usage:
//
//	ssta -circuit tree7
//	ssta -circuit design.ckt -mc 100000 -crit 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/ssta"
	"repro/internal/telemetry"
)

func main() {
	var (
		circuitFlag = flag.String("circuit", "tree7", "built-in name or netlist file (.ckt/.blif/.bench)")
		sigmaK      = flag.Float64("sigmak", 0.25, "sigma model: sigma_t = sigmak * mu_t")
		mcSamples   = flag.Int("mc", 0, "Monte Carlo cross-check with this many samples (0 = off)")
		critN       = flag.Int("crit", 0, "print the N most critical gates (0 = off)")
		cornersK    = flag.Float64("corners", 0, "corner/pessimism report at mu +- k*sigma (0 = off)")
		seed        = flag.Int64("seed", 1, "Monte Carlo seed")
		canonical   = flag.Bool("canonical", false, "also run the correlation-aware canonical sweep")
		workers     = flag.Int("j", 0, "worker goroutines for the SSTA sweep and Monte Carlo (0 = all CPUs, 1 = serial; results are identical for any value)")
		blocksFlag  = flag.Int("blocks", 0, "hierarchical verification pass with this block-size target (0 = off): partition the DAG, re-run the sweep block-parallel and check bit-identity")
		traceFile   = flag.String("trace", "", "write a JSONL analysis trace to this file (byte-identical for every -j)")
		metricsFlag = flag.Bool("metrics", false, "print the telemetry metrics summary table after the run")
		serveFlag   = flag.String("serve", "", "serve Prometheus /metrics, expvar and pprof on this address (e.g. localhost:9090); implies metrics collection")
		spansFile   = flag.String("spans", "", "write the wall-clock span tree as JSONL to this file after the run (tracetool -spans reads it)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file after the run")
		timeout     = flag.Duration("timeout", 0, "abort the analysis after this wall-clock budget and exit non-zero (0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// SIGINT/SIGTERM cancel the analysis context: the ctx-aware sweeps
	// and the Monte Carlo shards observe it at their level/shard
	// boundaries and the run exits through the non-zero status line in
	// deadline() instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var sinks []telemetry.Recorder
	var trace *telemetry.TraceWriter
	if *traceFile != "" {
		var err error
		if trace, err = telemetry.CreateTrace(*traceFile); err != nil {
			fatal(err)
		}
		sinks = append(sinks, trace)
	}
	var metrics *telemetry.Metrics
	if *metricsFlag || *pprofAddr != "" || *serveFlag != "" || *spansFile != "" {
		metrics = telemetry.NewMetrics()
		metrics.Publish("ssta")
		sinks = append(sinks, metrics)
	}
	rec := telemetry.Multi(sinks...)
	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ssta: debug server at http://%s/debug/pprof/ (expvar at /debug/vars)\n", addr)
	}
	if *serveFlag != "" {
		addr, err := telemetry.Serve(*serveFlag, metrics)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ssta: observability server at http://%s/metrics (pprof at /debug/pprof/, expvar at /debug/vars)\n", addr)
	}
	var stopCPU func() error
	if *cpuProfile != "" {
		var err error
		if stopCPU, err = telemetry.StartCPUProfile(*cpuProfile); err != nil {
			fatal(err)
		}
	}

	circ, lib, err := loadCircuit(*circuitFlag)
	if err != nil {
		fatal(err)
	}
	g, err := netlist.Compile(circ)
	if err != nil {
		fatal(err)
	}
	m, err := delay.Bind(g, lib)
	if err != nil {
		fatal(err)
	}
	m.Sigma = delay.Proportional{K: *sigmaK}
	S := m.UnitSizes()

	stats, _ := circ.ComputeStats()
	fmt.Printf("circuit %s: %d gates, %d inputs, %d outputs, depth %d\n",
		circ.Name, stats.Gates, stats.Inputs, stats.Outputs, stats.Depth)

	det := ssta.DetAnalyze(m, S)
	// With a deadline the analytic sweep runs through the ctx-aware
	// variant (cancellation polled at level boundaries); without one the
	// recorded path is unchanged so traces stay byte-identical.
	var r *ssta.Result
	if *timeout > 0 {
		var err error
		r, err = ssta.AnalyzeWorkersCtx(ctx, m, S, false, *workers)
		if err != nil {
			deadline(err)
		}
	} else {
		r = ssta.AnalyzeWorkersRec(m, S, false, *workers, rec)
	}
	if rec != nil {
		rec.Event("ssta", "result",
			telemetry.F("det_tmax", det.Tmax),
			telemetry.F("mu", r.Tmax.Mu),
			telemetry.F("sigma", r.Tmax.Sigma()),
		)
	}
	fmt.Printf("deterministic Tmax: %.4f\n", det.Tmax)
	fmt.Printf("statistical Tmax:   mu = %.4f  sigma = %.4f\n", r.Tmax.Mu, r.Tmax.Sigma())
	if *canonical {
		can := ssta.AnalyzeCanonical(m, S)
		fmt.Printf("canonical Tmax:     mu = %.4f  sigma = %.4f (correlation-aware)\n",
			can.Tmax.Mu, can.Tmax.Sigma())
		if !math.IsNaN(can.OutputCorr) {
			fmt.Printf("first-two-outputs correlation: %.4f\n", can.OutputCorr)
		}
	}
	if *blocksFlag > 0 {
		h := ssta.NewHier(m, S, ssta.HierOptions{
			BlockTarget: *blocksFlag, Workers: *workers, Recorder: rec,
		})
		p := h.Partition()
		match := h.Tmax() == r.Tmax
		for id := range circ.Nodes {
			if h.Arrival(netlist.NodeID(id)) != r.Arrival[id] {
				match = false
				break
			}
		}
		fmt.Printf("hierarchical: %d blocks (target %d, max %d), bit-identical to flat: %v\n",
			len(p.Blocks), p.Target, p.MaxBlock(), match)
		if !match {
			fatal(fmt.Errorf("hierarchical sweep diverged from the flat sweep"))
		}
	}
	fmt.Printf("quantiles: 50%% = %.4f  84.1%% = %.4f  99.8%% = %.4f\n",
		r.Tmax.Mu, r.Tmax.Mu+r.Tmax.Sigma(), r.Tmax.Mu+3*r.Tmax.Sigma())
	// The three sigma-level corner sweeps run as lanes of one batched
	// traversal (ssta.DetBatch); each lane is bit-identical to its
	// scalar corner sweep.
	ck := ssta.KSweep(m, S, []float64{0, 1, 3}, *workers)
	fmt.Printf("corner sweep (batched): k=0 %.4f  k=1 %.4f  k=3 %.4f\n", ck[0], ck[1], ck[2])

	if *cornersK > 0 {
		cr := ssta.CornersWorkers(m, S, *cornersK, *workers)
		fmt.Printf("corners (k=%.3g): best %.4f  typical %.4f  worst %.4f\n",
			cr.K, cr.Best, cr.Typical, cr.Worst)
		fmt.Printf("statistical mu+k*sigma = %.4f  pessimism vs worst corner = %.4f\n",
			cr.StatQuantile, cr.Pessimism)
	}

	path := det.CriticalPath(m)
	names := make([]string, len(path))
	for i, id := range path {
		names[i] = circ.Nodes[id].Name
	}
	fmt.Printf("deterministic critical path: %s\n", strings.Join(names, " -> "))

	if *critN > 0 {
		crit := ssta.CriticalityWorkers(m, S, *workers)
		type gc struct {
			name string
			c    float64
		}
		var list []gc
		for _, id := range circ.GateIDs() {
			list = append(list, gc{circ.Nodes[id].Name, crit[id]})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })
		if len(list) > *critN {
			list = list[:*critN]
		}
		fmt.Println("statistical criticality (d muTmax / d mu_gate):")
		for _, e := range list {
			fmt.Printf("  %-12s %.4f\n", e.name, e.c)
		}
	}

	if *mcSamples > 0 {
		cmp, err := montecarlo.CompareAnalyticCtx(ctx, m, S, r.Tmax, montecarlo.Options{
			Samples: *mcSamples, Seed: *seed, KeepSamples: true, Workers: *workers,
			Recorder: rec,
		})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				deadline(err)
			}
			fatal(err)
		}
		if rec != nil {
			// Sharded sampling is bit-identical for every worker count,
			// so the moments are safe to trace.
			rec.Event("mc", "result",
				telemetry.I("samples", *mcSamples),
				telemetry.F("mu", cmp.MC.Mu),
				telemetry.F("sigma", cmp.MC.Sigma),
				telemetry.F("mu_err", cmp.MuErr),
				telemetry.F("sigma_err", cmp.SigmaErr),
			)
		}
		fmt.Printf("monte carlo (%d samples): mu = %.4f  sigma = %.4f\n",
			*mcSamples, cmp.MC.Mu, cmp.MC.Sigma)
		fmt.Printf("analytic-vs-MC error:     mu %.3g (%.2f%%)  sigma %.3g (%.1f%%)\n",
			cmp.MuErr, 100*cmp.MuErr/cmp.MC.Mu,
			cmp.SigmaErr, 100*cmp.SigmaErr/cmp.MC.Sigma)
		fmt.Printf("MC yield at analytic deadlines: mu %.1f%%  mu+sigma %.1f%%  mu+3sigma %.1f%%\n",
			100*cmp.MC.Yield(r.Tmax.Mu),
			100*cmp.MC.Yield(r.Tmax.Mu+r.Tmax.Sigma()),
			100*cmp.MC.Yield(r.Tmax.Mu+3*r.Tmax.Sigma()))
	}

	if trace != nil {
		if err := trace.Close(); err != nil {
			fatal(err)
		}
	}
	if *metricsFlag {
		fmt.Println("metrics:")
		if err := metrics.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *spansFile != "" {
		if err := metrics.SpanTree().WriteFile(*spansFile); err != nil {
			fatal(err)
		}
	}
	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssta:", err)
	os.Exit(1)
}

// deadline reports a -timeout expiry or an interrupt with its own exit
// code so scripts can tell a cancelled analysis from a bad invocation.
func deadline(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ssta: interrupted:", err)
	} else {
		fmt.Fprintln(os.Stderr, "ssta: wall-clock budget exhausted:", err)
	}
	os.Exit(2)
}

func loadCircuit(name string) (*netlist.Circuit, *delay.Library, error) {
	switch name {
	case "tree7":
		return netlist.Tree7(), delay.PaperTree(), nil
	case "fig2":
		return netlist.Fig2Example(), delay.Default(), nil
	case "apex1":
		return netlist.Apex1Like(), delay.Default(), nil
	case "apex2":
		return netlist.Apex2Like(), delay.Default(), nil
	case "k2":
		return netlist.K2Like(), delay.Default(), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var c *netlist.Circuit
	switch {
	case strings.HasSuffix(name, ".blif"):
		c, err = netlist.ReadBLIF(f)
	case strings.HasSuffix(name, ".bench"):
		c, err = netlist.ReadBench(f)
	default:
		c, err = netlist.ReadCKT(f)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	return c, delay.Default(), nil
}
