package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// TestLoadCircuitBuiltins pins the built-in circuit table.
func TestLoadCircuitBuiltins(t *testing.T) {
	for _, name := range []string{"tree7", "fig2", "apex1", "apex2", "k2"} {
		c, lib, err := loadCircuit(name)
		if err != nil {
			t.Fatalf("loadCircuit(%q): %v", name, err)
		}
		if c == nil || lib == nil {
			t.Fatalf("loadCircuit(%q) returned nil circuit or library", name)
		}
	}
	if _, _, err := loadCircuit("no-such-circuit"); err == nil {
		t.Fatal("loadCircuit on a missing file did not error")
	}
}

// TestTraceFlagCreatesParentDirs pins the -trace behavior this CLI
// relies on: pointing -trace (or -spans) into a directory that does
// not exist yet must create the parents instead of failing the run.
func TestTraceFlagCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs", "nested", "trace.jsonl")
	w, err := telemetry.CreateTrace(path)
	if err != nil {
		t.Fatalf("CreateTrace into missing directory: %v", err)
	}
	w.Event("smoke", "test")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
}
