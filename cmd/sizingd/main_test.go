package main

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSmokeJobEndToEnd drives the -smoke flow against an in-process
// daemon: boot, submit over HTTP, poll to done, drain.
func TestSmokeJobEndToEnd(t *testing.T) {
	srv, err := service.New(service.Options{StateDir: t.TempDir(), Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	srv.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := smokeJob(ctx, "http://"+ln.Addr().String()); err != nil {
		t.Fatalf("smoke job: %v", err)
	}
	httpSrv.Shutdown(ctx)
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
