// Command sizingd is the sizing-as-a-service daemon: an HTTP/JSON API
// over the statistical gate-sizing stack with admission control,
// per-job supervision (deadlines, checkpoints, watchdog, retry with
// degradation-ladder step-down) and crash recovery from a journal of
// accepted jobs.
//
//	sizingd -addr :8080 -state /var/lib/sizingd
//
// Submit a job and follow it:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"circuit":"tree7","objective":"mu+3sigma"}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -N localhost:8080/v1/jobs/job-000001/events
//
// SIGTERM/SIGINT drains: admission stops, running jobs get the drain
// timeout to finish, stragglers are cancelled at a checkpoint
// boundary and resume on the next start. SIGKILL loses nothing
// either — accepted jobs are journaled before the 202 and recovered
// at startup.
//
// Warm what-if sessions keep a circuit analyzed in memory between
// requests; repeat single-gate nudges run against the incremental
// engine instead of a fresh job:
//
//	curl -s -X POST localhost:8080/v1/sessions -d '{"id":"s1","circuit":"k2"}'
//	curl -s -X PATCH localhost:8080/v1/sessions/s1/sizes -d '{"sizes":{"g0":1.5}}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/whatif -d '{"sizes":{"g1":2.0}}'
//	curl -s 'localhost:8080/v1/sessions/s1/timing?k=3&top=5'
//
// Auxiliary modes support CI:
//
//	sizingd -loadtest -out BENCH_service.json        chaos load harness
//	sizingd -sessionbench -out BENCH_session.json    warm vs cold latency
//	sizingd -smoke                                   boot, solve one job, drain
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		state         = flag.String("state", "sizingd-state", "state directory (journal + checkpoints)")
		pool          = flag.Int("pool", 2, "concurrent solves")
		queue         = flag.Int("queue", 16, "admission queue depth")
		retries       = flag.Int("retries", 2, "NumericalFailure retries per job")
		jobTimeout    = flag.Duration("job-timeout", 0, "per-job wall clock cap (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		maxGates      = flag.Int("max-gates", 0, "reject circuits with more gates (0 = unlimited)")
		cancelOnStall = flag.Int("cancel-on-stall", 0, "cancel a job after this many watchdog stalls (0 = record only)")
		maxSessions   = flag.Int("max-sessions", 64, "what-if session roster limit")
		sessionBytes  = flag.Int64("session-bytes", 256<<20, "warm session engine memory budget (bytes)")
		sessionIdle   = flag.Duration("session-idle-timeout", 0, "evict warm session engines idle this long (0 = never)")
		loadtest      = flag.Bool("loadtest", false, "run the chaos load harness instead of serving")
		out           = flag.String("out", "", "report path (default BENCH_service.json / BENCH_session.json)")
		jobs          = flag.Int("jobs", 12, "loadtest: total jobs")
		clients       = flag.Int("clients", 3, "loadtest: concurrent clients")
		kills         = flag.Int("kills", 2, "loadtest: kill/restart cycles")
		sessionbench  = flag.Bool("sessionbench", false, "run the warm-session vs cold-job latency harness")
		benchCircuit  = flag.String("bench-circuit", "k2", "sessionbench: circuit")
		benchNudges   = flag.Int("bench-nudges", 300, "sessionbench: warm nudges")
		smoke         = flag.Bool("smoke", false, "boot, run one job end to end, drain, exit")
	)
	flag.Parse()

	if *loadtest {
		path := *out
		if path == "" {
			path = "BENCH_service.json"
		}
		os.Exit(runLoadTest(path, *jobs, *clients, *kills, *pool, *queue))
	}
	if *sessionbench {
		path := *out
		if path == "" {
			path = "BENCH_session.json"
		}
		os.Exit(runSessionBench(path, *benchCircuit, *benchNudges))
	}

	opts := service.Options{
		StateDir:           *state,
		Pool:               *pool,
		QueueDepth:         *queue,
		MaxRetries:         *retries,
		JobTimeout:         *jobTimeout,
		DrainTimeout:       *drainTimeout,
		MaxGates:           *maxGates,
		CancelOnStall:      *cancelOnStall,
		MaxSessions:        *maxSessions,
		SessionBytes:       *sessionBytes,
		SessionIdleTimeout: *sessionIdle,
	}
	if *smoke {
		os.Exit(runSmoke(opts))
	}
	os.Exit(runDaemon(*addr, opts))
}

// runDaemon serves until a signal drains it.
func runDaemon(addr string, opts service.Options) int {
	srv, err := service.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd:", err)
		return 1
	}
	// The daemon owns the process-wide expvar namespace; auxiliary
	// modes and tests never publish (expvar panics on duplicates).
	srv.Metrics().Publish("sizingd")
	if rec := srv.Recovered(); len(rec) > 0 {
		fmt.Printf("sizingd: recovered %d job(s) from journal: %v\n", len(rec), rec)
	}
	if rec := srv.RecoveredSessions(); len(rec) > 0 {
		fmt.Printf("sizingd: recovered %d session(s) from journal: %v\n", len(rec), rec)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	srv.Start()
	fmt.Printf("sizingd: serving on %s (state %s, pool %d, queue %d)\n",
		ln.Addr(), opts.StateDir, opts.Pool, opts.QueueDepth)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("sizingd: signal received, draining")
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "sizingd:", err)
		return 1
	}

	// Drain: stop admission, finish (or checkpoint) running jobs,
	// close the journal. Queued jobs stay journaled and recover on the
	// next start.
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	httpSrv.Shutdown(drainCtx)
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: drain:", err)
		return 1
	}
	fmt.Println("sizingd: drained")
	return 0
}

// runLoadTest runs the chaos load harness and writes the report.
func runLoadTest(out string, jobs, clients, kills, pool, queue int) int {
	rep, err := service.RunLoadTest(service.LoadTestOptions{
		Jobs:       jobs,
		Clients:    clients,
		Kills:      kills,
		Pool:       pool,
		QueueDepth: queue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: loadtest:", err)
		return 1
	}
	if err := service.WriteReport(out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: loadtest:", err)
		return 1
	}
	fmt.Printf("sizingd: loadtest %d jobs, %d restarts, p50 %.0fms p99 %.0fms, %.1f jobs/s → %s\n",
		rep.Config.Jobs, rep.Restarts, rep.LatencyMS.P50, rep.LatencyMS.P99, rep.Throughput, out)
	return 0
}

// runSessionBench runs the warm-session vs cold-job harness and
// writes the report. The harness itself enforces the >= 10x warm
// speedup acceptance and fails the exit code when it does not hold.
func runSessionBench(out, circuit string, nudges int) int {
	rep, err := service.RunSessionBench(service.SessionBenchOptions{
		Circuit:    circuit,
		WarmNudges: nudges,
	})
	if rep != nil {
		if werr := service.WriteSessionBench(out, rep); werr != nil {
			fmt.Fprintln(os.Stderr, "sizingd: sessionbench:", werr)
			return 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: sessionbench:", err)
		return 1
	}
	fmt.Printf("sizingd: sessionbench %s (%d gates): warm p50 %.3fms, cold session p50 %.1fms, cold job p50 %.1fms, speedup %.0fx → %s\n",
		rep.Config.Circuit, rep.Config.Gates, rep.WarmNudgeMS.P50, rep.ColdSessionMS.P50, rep.ColdJobMS.P50, rep.SpeedupP50, out)
	return 0
}

// runSmoke boots the daemon on a loopback port, pushes one job end to
// end through the HTTP API, drains and exits — the CI health check.
func runSmoke(opts service.Options) int {
	dir, err := os.MkdirTemp("", "sizingd-smoke-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: smoke:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	opts.StateDir = dir

	srv, err := service.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: smoke:", err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: smoke:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	srv.Start()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := smokeJob(ctx, base); err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: smoke:", err)
		return 1
	}
	httpSrv.Shutdown(ctx)
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sizingd: smoke: drain:", err)
		return 1
	}
	fmt.Println("sizingd: smoke ok")
	return 0
}

// smokeJob submits one tree7 job and polls it to completion.
func smokeJob(ctx context.Context, base string) error {
	body := `{"id":"smoke","circuit":"tree7","objective":"mu+3sigma","max_outer":12}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/smoke", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed", "cancelled":
			return errors.New("smoke job ended " + st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
