// Command tracetool analyzes the deterministic JSONL solver traces
// written by statsize/ssta -trace, and the optional wall-clock span
// sidecars written by -spans.
//
// Usage:
//
//	tracetool -report trace.jsonl             event census, phase attribution, convergence
//	tracetool -flame trace.jsonl              folded stacks (work-unit weights) for flamegraph tools
//	tracetool -flame -spans s.jsonl trace.jsonl   folded stacks weighted by measured self time
//	tracetool -stalls trace.jsonl             offline watchdog replay
//
// The trace carries only worker-count-invariant event data — no wall
// clock — so every figure the report derives from it (iteration
// counts, dirty-gate totals, sample counts, stall verdicts) is
// byte-reproducible across machines and -j values. Wall-clock
// attribution comes only from the -spans sidecar, which the CLIs
// write separately precisely because it is not deterministic.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	var (
		reportFlag = flag.Bool("report", false, "print the event census, phase attribution and convergence report (default mode)")
		flameFlag  = flag.Bool("flame", false, "emit folded stacks (one 'a;b;c weight' line each) for flamegraph.pl / speedscope")
		stallsFlag = flag.Bool("stalls", false, "replay the trace through the solve-health watchdog and report stalls")
		spansFile  = flag.String("spans", "", "span-tree JSONL sidecar (statsize/ssta -spans) for wall-clock attribution")
		patience   = flag.Int("patience", 0, "watchdog patience for -stalls (0 = default)")
		minImprove = flag.Float64("minimprove", 0, "watchdog minimum relative improvement for -stalls (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetool [-report|-flame|-stalls] [-spans file] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	events, err := telemetry.ParseTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := telemetry.ValidateTrace(events); err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}

	var spans []spanRow
	if *spansFile != "" {
		if spans, err = readSpans(*spansFile); err != nil {
			fatal(err)
		}
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	switch {
	case *flameFlag:
		writeFlame(out, events, spans)
	case *stallsFlag:
		writeStalls(out, events, *patience, *minImprove)
	default:
		_ = *reportFlag // -report is the default mode
		writeReport(out, events, spans)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}

// spanRow is one line of the -spans sidecar (Tree.WriteJSONL).
type spanRow struct {
	Span   string `json:"span"`
	Count  int64  `json:"count"`
	NS     int64  `json:"ns"`
	SelfNS int64  `json:"self_ns"`
}

func readSpans(path string) ([]spanRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []spanRow
	dec := json.NewDecoder(f)
	for line := 1; ; line++ {
		var r spanRow
		if err := dec.Decode(&r); err == io.EOF {
			return rows, nil
		} else if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, line, err)
		}
		rows = append(rows, r)
	}
}

// phase is one row of the deterministic phase-attribution table: a
// solver phase with its iteration count and its work-unit total, where
// the work unit is the phase's natural deterministic size measure
// (gates swept, samples drawn, inner iterations run).
type phase struct {
	name  string
	unit  string
	iters int64
	work  int64
}

// attribution folds the event stream into the phase table. Every
// figure comes from event counts and integer-valued fields, so the
// table is identical for every worker count.
func attribution(events []telemetry.TraceEvent) []phase {
	get := func(e *telemetry.TraceEvent, key string) int64 {
		v, _ := e.Get(key)
		return int64(v)
	}
	byKey := map[string]*phase{}
	order := []string{}
	add := func(key, unit string, iters, work int64) {
		p := byKey[key]
		if p == nil {
			p = &phase{name: key, unit: unit}
			byKey[key] = p
			order = append(order, key)
		}
		p.iters += iters
		p.work += work
	}
	for i := range events {
		e := &events[i]
		switch e.Scope + "." + e.Name {
		case "alm.outer":
			add("alm.outer", "inner iters", 1, get(e, "inner"))
		case "lbfgs.iter":
			add("nlp.inner/lbfgs", "iters", 1, 1)
		case "newton.iter":
			add("nlp.inner/newton", "iters", 1, 1)
		case "projgrad.iter":
			add("nlp.inner/projgrad", "iters", 1, 1)
		case "alm.recover":
			add("alm.recover", "recoveries", 1, 1)
		case "inc.update":
			add("inc.update", "dirty gates", 1, get(e, "dirty"))
		case "hier.update":
			add("hier.update", "gates swept", 1, get(e, "gates"))
		case "hier.block":
			add("hier.block", "gates swept", 1, get(e, "gates"))
		case "hier.sweep":
			add("hier.sweep", "nodes", 1, get(e, "nodes"))
		case "batch.sweep":
			add("batch.sweep", "lane-nodes", 1, get(e, "lanes")*get(e, "nodes"))
		case "greedy.step":
			add("greedy.step", "steps", 1, 1)
		case "mc.result":
			add("mc.run", "samples", 1, get(e, "samples"))
		}
	}
	rows := make([]phase, 0, len(order))
	for _, k := range order {
		rows = append(rows, *byKey[k])
	}
	return rows
}

// writeReport prints the census, phase attribution, convergence table
// and (with a sidecar) the wall-clock span tree.
func writeReport(w io.Writer, events []telemetry.TraceEvent, spans []spanRow) {
	// Census: one row per scope.event kind, in first-seen order.
	type kind struct {
		key string
		n   int
	}
	byKey := map[string]*kind{}
	var kinds []*kind
	for i := range events {
		key := events[i].Scope + "." + events[i].Name
		k := byKey[key]
		if k == nil {
			k = &kind{key: key}
			byKey[key] = k
			kinds = append(kinds, k)
		}
		k.n++
	}
	fmt.Fprintf(w, "trace: %d events, %d kinds\n\n", len(events), len(kinds))
	fmt.Fprintf(w, "census:\n")
	wid := 0
	for _, k := range kinds {
		if len(k.key) > wid {
			wid = len(k.key)
		}
	}
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-*s %8d\n", wid, k.key, k.n)
	}

	// Phase attribution: deterministic work units per solver phase.
	if rows := attribution(events); len(rows) > 0 {
		fmt.Fprintf(w, "\nphase attribution (deterministic work units):\n")
		nw, uw := 0, 0
		for _, p := range rows {
			if len(p.name) > nw {
				nw = len(p.name)
			}
			if len(p.unit) > uw {
				uw = len(p.unit)
			}
		}
		fmt.Fprintf(w, "  %-*s %10s %12s  %s\n", nw, "phase", "events", "work", "unit")
		for _, p := range rows {
			fmt.Fprintf(w, "  %-*s %10d %12d  %s\n", nw, p.name, p.iters, p.work, p.unit)
		}
	}

	writeConvergence(w, events)

	if len(spans) > 0 {
		fmt.Fprintf(w, "\nwall-clock span tree (from sidecar):\n")
		pw := 0
		for _, r := range spans {
			if n := len(r.Span) + 2*strings.Count(r.Span, "/"); n > pw {
				pw = n
			}
		}
		for _, r := range spans {
			depth := strings.Count(r.Span, "/")
			name := r.Span[strings.LastIndexByte(r.Span, '/')+1:]
			ind := strings.Repeat("  ", depth)
			fmt.Fprintf(w, "  %-*s n=%-8d cum=%-12v self=%v\n",
				pw, ind+name, r.Count,
				time.Duration(r.NS).Round(time.Microsecond),
				time.Duration(r.SelfNS).Round(time.Microsecond))
		}
	}
}

// writeConvergence prints the ALM outer-iteration table and the final
// solver verdict, eliding the middle of long runs.
func writeConvergence(w io.Writer, events []telemetry.TraceEvent) {
	var outer []*telemetry.TraceEvent
	var done *telemetry.TraceEvent
	for i := range events {
		e := &events[i]
		if e.Scope == "alm" && e.Name == "outer" {
			outer = append(outer, e)
		}
		if e.Scope == "alm" && e.Name == "done" {
			done = e
		}
	}
	if len(outer) == 0 && done == nil {
		return
	}
	fmt.Fprintf(w, "\nconvergence (alm.outer):\n")
	fmt.Fprintf(w, "  %6s %14s %10s %10s %10s %6s\n", "iter", "merit", "kkt", "viol", "rho", "inner")
	const head, tail = 10, 10
	row := func(e *telemetry.TraceEvent) {
		iter, _ := e.Get("iter")
		merit, _ := e.Get("merit")
		kkt, _ := e.Get("kkt")
		viol, _ := e.Get("viol")
		rho, _ := e.Get("rho")
		inner, _ := e.Get("inner")
		fmt.Fprintf(w, "  %6.0f %14.6g %10.3g %10.3g %10.3g %6.0f\n", iter, merit, kkt, viol, rho, inner)
	}
	if len(outer) <= head+tail+1 {
		for _, e := range outer {
			row(e)
		}
	} else {
		for _, e := range outer[:head] {
			row(e)
		}
		fmt.Fprintf(w, "  %6s (%d iterations elided)\n", "...", len(outer)-head-tail)
		for _, e := range outer[len(outer)-tail:] {
			row(e)
		}
	}
	if done != nil {
		status, _ := done.Get("status")
		f, _ := done.Get("f")
		kkt, _ := done.Get("kkt")
		viol, _ := done.Get("viol")
		no, _ := done.Get("outer")
		ni, _ := done.Get("inner")
		fmt.Fprintf(w, "  done: status=%.0f f=%.8g kkt=%.3g viol=%.3g (%.0f outer, %.0f inner)\n",
			status, f, kkt, viol, no, ni)
	}
}

// writeFlame emits folded stacks. With a sidecar the weight is the
// measured self time in nanoseconds; without one it is the phase's
// deterministic work-unit count, which makes the flamegraph
// reproducible byte for byte across machines and worker counts.
func writeFlame(w io.Writer, events []telemetry.TraceEvent, spans []spanRow) {
	if len(spans) > 0 {
		for _, r := range spans {
			if r.SelfNS > 0 {
				fmt.Fprintf(w, "%s %d\n", strings.ReplaceAll(r.Span, "/", ";"), r.SelfNS)
			}
		}
		return
	}
	get := func(e *telemetry.TraceEvent, key string) int64 {
		v, _ := e.Get(key)
		return int64(v)
	}
	weights := map[string]int64{}
	var order []string
	add := func(stack string, wgt int64) {
		if wgt <= 0 {
			return
		}
		if _, ok := weights[stack]; !ok {
			order = append(order, stack)
		}
		weights[stack] += wgt
	}
	for i := range events {
		e := &events[i]
		switch e.Scope + "." + e.Name {
		case "alm.outer":
			add("nlp.solve;alm.outer", 1)
			add("nlp.solve;alm.outer;nlp.inner", get(e, "inner"))
		case "inc.update":
			add("greedy;inc.update", get(e, "dirty"))
		case "hier.block":
			add("hier.sweep;hier.block", get(e, "gates"))
		case "hier.update":
			add("hier.sweep;hier.update", get(e, "changed"))
		case "batch.sweep":
			add("batch.sweep", get(e, "lanes")*get(e, "nodes"))
		case "greedy.step":
			add("greedy;greedy.step", 1)
		case "mc.result":
			add("mc.run", get(e, "samples"))
		}
	}
	sort.Strings(order)
	for _, stack := range order {
		fmt.Fprintf(w, "%s %d\n", stack, weights[stack])
	}
}

// writeStalls replays the event stream through the watchdog — the
// offline twin of statsize -watchdog — and reports every stall.
func writeStalls(w io.Writer, events []telemetry.TraceEvent, patience int, minImprove float64) {
	wd := telemetry.NewWatchdog(nil, telemetry.WatchdogOptions{
		Patience:   patience,
		MinImprove: minImprove,
	})
	for i := range events {
		e := &events[i]
		wd.Event(e.Scope, e.Name, e.Fields...)
	}
	stalls := wd.Stalls()
	if len(stalls) == 0 {
		fmt.Fprintln(w, "no stalls detected")
		return
	}
	for _, s := range stalls {
		fmt.Fprintf(w, "stall: %s progress stalled at iteration %d (best %.6g, last %.6g, %d non-improving iterations)\n",
			s.Scope, s.Iter, s.Best, s.Last, s.Streak)
	}
}
