// Command circuitgen emits synthetic benchmark circuits in .ckt or
// mapped-BLIF format: either the named presets standing in for the
// paper's MCNC benchmarks or a fully parameterized random DAG.
//
// Usage:
//
//	circuitgen -preset apex1 > apex1.ckt
//	circuitgen -gates 500 -inputs 40 -outputs 10 -depth 14 -seed 7 -format blif
//	circuitgen -preset gen100k > gen100k.ckt
//
// The gen100k and gen1m presets stream the netlist to stdout in .ckt
// format with O(level width) memory — the circuit is never
// materialized, so the million-gate preset runs on small machines.
// Streamed emission is deterministic: a preset produces byte-identical
// output on every run and platform.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netlist"
)

func main() {
	var (
		preset   = flag.String("preset", "", "apex1 | apex2 | k2 | tree7 | fig2 | gen100k | gen1m (overrides the size flags)")
		gates    = flag.Int("gates", 100, "number of gates")
		inputs   = flag.Int("inputs", 16, "number of primary inputs")
		outputs  = flag.Int("outputs", 4, "minimum number of primary outputs")
		depth    = flag.Int("depth", 8, "target logic depth")
		maxFanin = flag.Int("maxfanin", 4, "maximum gate fan-in (1-4)")
		seed     = flag.Int64("seed", 1, "generator seed")
		cones    = flag.Int("cones", 0, "logic cones (0 = auto)")
		format   = flag.String("format", "ckt", "ckt | blif | bench")
		name     = flag.String("name", "gen", "circuit name")
	)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch *preset {
	case "gen100k", "gen1m":
		// Streamed presets: .ckt only, O(level width) memory.
		if *format != "ckt" {
			fatal(fmt.Errorf("preset %q streams and supports only -format ckt", *preset))
		}
		spec := netlist.Gen100kSpec()
		if *preset == "gen1m" {
			spec = netlist.Gen1MSpec()
		}
		if err := netlist.GenerateStream(os.Stdout, spec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "circuitgen: %s: %d gates streamed, %d inputs, depth %d\n",
			spec.Name, spec.Gates, spec.Inputs, spec.Depth)
		return
	case "":
		c, err = netlist.Generate(netlist.GenSpec{
			Name: *name, Gates: *gates, Inputs: *inputs, Outputs: *outputs,
			Depth: *depth, MaxFanin: *maxFanin, Seed: *seed, Cones: *cones,
		})
	case "apex1":
		c = netlist.Apex1Like()
	case "apex2":
		c = netlist.Apex2Like()
	case "k2":
		c = netlist.K2Like()
	case "tree7":
		c = netlist.Tree7()
	case "fig2":
		c = netlist.Fig2Example()
	default:
		err = fmt.Errorf("unknown preset %q", *preset)
	}
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "ckt":
		err = netlist.WriteCKT(os.Stdout, c)
	case "blif":
		err = netlist.WriteBLIF(os.Stdout, c)
	case "bench":
		err = netlist.WriteBench(os.Stdout, c)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	s, _ := c.ComputeStats()
	fmt.Fprintf(os.Stderr, "circuitgen: %s: %d gates, %d inputs, %d outputs, depth %d\n",
		c.Name, s.Gates, s.Inputs, s.Outputs, s.Depth)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "circuitgen:", err)
	os.Exit(1)
}
