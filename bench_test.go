// Package repro's root benchmark suite regenerates every table of the
// paper's evaluation and measures the design decisions DESIGN.md calls
// out. One benchmark per evaluation artifact:
//
//	BenchmarkTable1Apex1 / Apex2 / K2   paper Table 1, per circuit
//	BenchmarkTable2                     paper Table 2
//	BenchmarkTable3                     paper Table 3
//	BenchmarkYield                      section 4 yield claim
//
// plus operator microbenchmarks and the ablations:
//
//	BenchmarkAblationMaxAnalyticVsSampled  analytic eq 10/12 vs the
//	    sampling approach of refs [1][2] at equal accuracy
//	BenchmarkAblationSSTAVsMonteCarlo      one analytic sweep vs a
//	    Monte Carlo run of comparable moment accuracy (the paper's
//	    argument that MC is impractical inside an optimizer loop)
//	BenchmarkAblationReducedVsFullSpace    formulation cost comparison
//	BenchmarkAblationNewtonVsLBFGS         inner-solver comparison on
//	    the full-space problem (the value of exact second derivatives)
//	BenchmarkAblationBilinearVsDivision    eq 15 vs eq 14 delay form
//	BenchmarkAblationAdjointVsFDGradient   exact adjoint gradient vs
//	    finite differences (the paper's case for analytic derivatives)
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/sizing"
	"repro/internal/ssta"
	"repro/internal/stats"
)

// --- Paper tables ---------------------------------------------------

func benchTable1(b *testing.B, idx int) {
	cases := []bench.CircuitCase{bench.Table1Circuits()[idx]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable1(cases, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Apex1(b *testing.B) { benchTable1(b, 0) }
func BenchmarkTable1Apex2(b *testing.B) { benchTable1(b, 1) }
func BenchmarkTable1K2(b *testing.B)    { benchTable1(b, 2) }

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkYield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunYield(50000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Operator microbenchmarks ----------------------------------------

var sinkMV stats.MV

func BenchmarkStochMax2(b *testing.B) {
	a := stats.MV{Mu: 5, Var: 1.2}
	c := stats.MV{Mu: 5.5, Var: 0.8}
	for i := 0; i < b.N; i++ {
		sinkMV = stats.Max2(a, c)
	}
}

var sinkJac stats.Jac2x4

func BenchmarkStochMax2Jac(b *testing.B) {
	a := stats.MV{Mu: 5, Var: 1.2}
	c := stats.MV{Mu: 5.5, Var: 0.8}
	for i := 0; i < b.N; i++ {
		sinkMV, sinkJac = stats.Max2Jac(a, c)
	}
}

var sinkHess [4][4]float64

func BenchmarkStochMax2Hessians(b *testing.B) {
	a := stats.MV{Mu: 5, Var: 1.2}
	c := stats.MV{Mu: 5.5, Var: 0.8}
	for i := 0; i < b.N; i++ {
		sinkHess, _ = stats.Max2Hessians(a, c)
	}
}

func sstaModel(b *testing.B, mk func() *netlist.Circuit) *delay.Model {
	b.Helper()
	g, err := netlist.Compile(mk())
	if err != nil {
		b.Fatal(err)
	}
	m, err := delay.Bind(g, delay.Default())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

var sinkF float64

func BenchmarkSSTASweepApex1(b *testing.B) {
	m := sstaModel(b, netlist.Apex1Like)
	S := m.UnitSizes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = ssta.Analyze(m, S, false).Tmax.Mu
	}
}

func BenchmarkSSTASweepK2(b *testing.B) {
	m := sstaModel(b, netlist.K2Like)
	S := m.UnitSizes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = ssta.Analyze(m, S, false).Tmax.Mu
	}
}

func BenchmarkSSTAGradientK2(b *testing.B) {
	// Full objective + exact gradient: one taped sweep plus one
	// adjoint sweep — the inner-loop cost of the reduced formulation.
	m := sstaModel(b, netlist.K2Like)
	S := m.UnitSizes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi, grad := ssta.GradMuPlusKSigma(m, S, 3)
		sinkF = phi + grad[len(grad)-1]
	}
}

// --- Parallel engine --------------------------------------------------

// genBenchModel builds a generated circuit of the given size for the
// serial-vs-parallel comparisons (the built-ins top out near 1000
// cells; the acceptance target is a >= 1000-gate netlist).
func genBenchModel(b *testing.B, gates int) *delay.Model {
	b.Helper()
	c, err := netlist.Generate(netlist.GenSpec{
		Name: "bench", Gates: gates, Inputs: 64, Outputs: 16,
		Depth: 24, MaxFanin: 4, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sstaModel(b, func() *netlist.Circuit { return c })
}

var benchWorkerCounts = func() []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range []int{1, 2, 4, runtime.NumCPU()} {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}()

// BenchmarkParallelSSTASweep compares the serial forward sweep with
// the levelized parallel sweep at several worker counts on the k2
// stand-in and a 2000-gate generated circuit.
func BenchmarkParallelSSTASweep(b *testing.B) {
	models := map[string]*delay.Model{
		"k2":      sstaModel(b, netlist.K2Like),
		"gen2000": genBenchModel(b, 2000),
	}
	for name, m := range models {
		S := m.UnitSizes()
		b.Run(name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = ssta.Analyze(m, S, false).Tmax.Mu
			}
		})
		for _, w := range benchWorkerCounts {
			b.Run(fmt.Sprintf("%s/j%d", name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkF = ssta.AnalyzeWorkers(m, S, false, w).Tmax.Mu
				}
			})
		}
	}
}

// BenchmarkParallelGradient compares serial and parallel taped sweep
// plus adjoint — the sizing inner-loop cost.
func BenchmarkParallelGradient(b *testing.B) {
	m := genBenchModel(b, 2000)
	S := m.UnitSizes()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			phi, grad := ssta.GradMuPlusKSigma(m, S, 3)
			sinkF = phi + grad[len(grad)-1]
		}
	})
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("j%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				phi, grad := ssta.GradMuPlusKSigmaWorkers(m, S, 3, w)
				sinkF = phi + grad[len(grad)-1]
			}
		})
	}
}

// BenchmarkParallelMonteCarlo compares sharded Monte Carlo at several
// worker counts; every worker count draws the identical sample set.
func BenchmarkParallelMonteCarlo(b *testing.B) {
	m := genBenchModel(b, 1000)
	S := m.UnitSizes()
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("j%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := montecarlo.Run(m, S, montecarlo.Options{
					Samples: 20000, Seed: 1, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				sinkF = r.Mu
			}
		})
	}
}

// --- Ablations --------------------------------------------------------

func BenchmarkAblationMaxAnalyticVsSampled(b *testing.B) {
	a := stats.MV{Mu: 5, Var: 1.2}
	c := stats.MV{Mu: 5.5, Var: 0.8}
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkMV = stats.Max2(a, c)
		}
	})
	// 10k samples gives moment noise around 1%, far coarser than the
	// analytic expressions; even so it is orders of magnitude slower.
	b.Run("sampled-10k", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			sinkMV = stats.SampleMax2(a, c, 10000, rng)
		}
	})
}

func BenchmarkAblationSSTAVsMonteCarlo(b *testing.B) {
	m := sstaModel(b, netlist.Apex2Like)
	S := m.UnitSizes()
	b.Run("analytic-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = ssta.Analyze(m, S, false).Tmax.Mu
		}
	})
	b.Run("montecarlo-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := montecarlo.Run(m, S, montecarlo.Options{Samples: 10000, Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			sinkF = r.Mu
		}
	})
}

func BenchmarkAblationReducedVsFullSpace(b *testing.B) {
	run := func(b *testing.B, spec sizing.Spec) {
		b.Helper()
		g := netlist.MustCompile(netlist.Tree7())
		m := delay.MustBind(g, delay.PaperTree())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := sizing.Size(m, spec)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = out.MuTmax
		}
	}
	b.Run("reduced", func(b *testing.B) {
		run(b, sizing.Spec{Objective: sizing.MinMuPlusKSigma(3)})
	})
	b.Run("fullspace-newton", func(b *testing.B) {
		run(b, sizing.Spec{
			Objective:   sizing.MinMuPlusKSigma(3),
			Formulation: sizing.FullSpace,
			Solver:      nlp.Options{Method: nlp.NewtonCG},
		})
	})
}

func BenchmarkAblationNewtonVsLBFGS(b *testing.B) {
	run := func(b *testing.B, method nlp.Method) {
		b.Helper()
		g := netlist.MustCompile(netlist.Fig2Example())
		m := delay.MustBind(g, delay.Default())
		spec := sizing.Spec{
			Objective:   sizing.MinMuPlusKSigma(3),
			Formulation: sizing.FullSpace,
			Solver:      nlp.Options{Method: method, MaxInner: 3000},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := sizing.Size(m, spec)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = out.MuTmax
		}
	}
	b.Run("newton-cg", func(b *testing.B) { run(b, nlp.NewtonCG) })
	b.Run("lbfgs", func(b *testing.B) { run(b, nlp.LBFGS) })
}

func BenchmarkAblationBilinearVsDivision(b *testing.B) {
	run := func(b *testing.B, form sizing.DelayForm) {
		b.Helper()
		g := netlist.MustCompile(netlist.Fig2Example())
		m := delay.MustBind(g, delay.Default())
		spec := sizing.Spec{
			Objective:   sizing.MinMuPlusKSigma(3),
			Formulation: sizing.FullSpace,
			DelayForm:   form,
			Solver:      nlp.Options{Method: nlp.NewtonCG},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := sizing.Size(m, spec)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = out.MuTmax
		}
	}
	b.Run("bilinear-eq15", func(b *testing.B) { run(b, sizing.Bilinear) })
	b.Run("division-eq14", func(b *testing.B) { run(b, sizing.Division) })
}

func BenchmarkAblationAdjointVsFDGradient(b *testing.B) {
	// The cost of one exact gradient of mu+3sigma on a 982-cell
	// circuit (two sweeps) vs one-sided finite differences (n+1
	// sweeps) — the paper's case for analytical derivatives.
	m := sstaModel(b, netlist.Apex1Like)
	S := m.UnitSizes()
	gates := m.G.C.GateIDs()
	b.Run("adjoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, grad := ssta.GradMuPlusKSigma(m, S, 3)
			sinkF = grad[gates[0]]
		}
	})
	b.Run("finite-difference", func(b *testing.B) {
		phi := func() float64 {
			r := ssta.Analyze(m, S, false)
			v, _, _ := ssta.ObjectiveMuPlusKSigma(r.Tmax, 3)
			return v
		}
		grad := make([]float64, len(S))
		for i := 0; i < b.N; i++ {
			base := phi()
			const h = 1e-6
			for _, id := range gates {
				S[id] += h
				grad[id] = (phi() - base) / h
				S[id] -= h
			}
			sinkF = grad[gates[0]]
		}
	})
}
