package repro

import (
	"math"
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

// Integration tests exercising whole pipelines across packages, the
// way a downstream user composes them.

func TestEndToEndRippleAdder(t *testing.T) {
	// Parse -> bind -> analyze -> size -> validate by Monte Carlo on
	// the most reconvergent structure in the module.
	c := netlist.RippleAdder(8)
	g := netlist.MustCompile(c)
	m := delay.MustBind(g, delay.Default())

	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	out, err := sizing.Size(m, sizing.Spec{Objective: sizing.MinMuPlusKSigma(3)})
	if err != nil {
		t.Fatal(err)
	}
	if out.MuTmax >= unit.Mu {
		t.Fatalf("sizing did not speed up the adder: %v -> %v", unit.Mu, out.MuTmax)
	}

	// The sized circuit must actually be faster in Monte Carlo terms,
	// not just per the (independence-biased) analytic model.
	mcUnit, err := montecarlo.Run(m, m.UnitSizes(), montecarlo.Options{Samples: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mcSized, err := montecarlo.Run(m, out.S, montecarlo.Options{Samples: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mcSized.Mu >= mcUnit.Mu {
		t.Errorf("MC disagrees with sizing: %v -> %v", mcUnit.Mu, mcSized.Mu)
	}

	// The canonical sweep must track MC far better than independence
	// on the carry chain's reconvergence.
	can := ssta.AnalyzeCanonical(m, m.UnitSizes())
	indErr := math.Abs(unit.Sigma() - mcUnit.Sigma)
	canErr := math.Abs(can.Tmax.Sigma() - mcUnit.Sigma)
	if canErr > indErr {
		t.Errorf("canonical sigma error %v worse than independence %v", canErr, indErr)
	}
}

func TestEndToEndBenchFileToSizing(t *testing.T) {
	// ISCAS c17 from its .bench text through the whole flow.
	const c17 = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	c, err := netlist.ReadBench(strings.NewReader(c17))
	if err != nil {
		t.Fatal(err)
	}
	m := delay.MustBind(netlist.MustCompile(c), delay.Default())
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	out, err := sizing.Size(m, sizing.Spec{
		Objective:   sizing.MinArea(),
		Constraints: []sizing.Constraint{sizing.DelayLE(3, unit.Mu+2*unit.Sigma())},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := out.MuTmax + 3*out.SigmaTmax
	if q > unit.Mu+2*unit.Sigma()+1e-3 {
		t.Errorf("c17 sizing missed its quantile: %v", q)
	}
}

func TestEndToEndPowerAwareFlow(t *testing.T) {
	// Activity extraction -> power-weighted sizing -> power estimate.
	m := delay.MustBind(netlist.MustCompile(netlist.RippleAdder(4)), delay.Default())
	w, err := power.Weights(m)
	if err != nil {
		t.Fatal(err)
	}
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := sizing.Size(m, sizing.Spec{Objective: sizing.MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (unit.Mu + fast.MuTmax)
	out, err := sizing.Size(m, sizing.Spec{
		Objective: sizing.MinWeightedArea(), Weights: w,
		Constraints: []sizing.Constraint{sizing.DelayLE(0, d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.MuTmax > d+1e-3 {
		t.Errorf("deadline missed: %v > %v", out.MuTmax, d)
	}
	p0, err := power.Estimate(m, m.UnitSizes())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := power.Estimate(m, out.S)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p0 {
		t.Errorf("sized power %v below unsized %v (implausible: sizing adds load)", p1, p0)
	}
}

func TestEndToEndSlackDrivenCheck(t *testing.T) {
	// Size under a deadline, then verify the slack analysis agrees
	// the circuit meets it.
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := sizing.Size(m, sizing.Spec{Objective: sizing.MinMuPlusKSigma(3)})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (fast.MuTmax + 3*fast.SigmaTmax + unit.Mu)
	out, err := sizing.Size(m, sizing.Spec{
		Objective:   sizing.MinArea(),
		Constraints: []sizing.Constraint{sizing.DelayLE(0, d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	sl := ssta.Slacks(m, out.S, 0, d)
	if sl.WorstSlack < -1e-6 {
		t.Errorf("slack analysis disagrees with sizing: worst slack %v", sl.WorstSlack)
	}
	// Tighten the deadline below the achieved mean: slack goes
	// negative and the critical list is non-empty.
	sl = ssta.Slacks(m, out.S, 0, out.MuTmax-0.5)
	if sl.WorstSlack >= 0 || len(sl.CriticalNodes(0)) == 0 {
		t.Errorf("tightened deadline not flagged: %v", sl.WorstSlack)
	}
}

func TestEndToEndFormatInterop(t *testing.T) {
	// Generate a synthetic circuit, write it in all three formats,
	// read each back, and confirm identical timing.
	c, err := netlist.Generate(netlist.GenSpec{
		Name: "interop", Gates: 60, Inputs: 12, Outputs: 4,
		Depth: 6, MaxFanin: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := delay.MustBind(netlist.MustCompile(c), delay.Default())
	want := ssta.Analyze(ref, ref.UnitSizes(), false).Tmax

	var ckt, blif strings.Builder
	if err := netlist.WriteCKT(&ckt, c); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteBLIF(&blif, c); err != nil {
		t.Fatal(err)
	}
	for name, read := range map[string]func() (*netlist.Circuit, error){
		"ckt":  func() (*netlist.Circuit, error) { return netlist.ReadCKT(strings.NewReader(ckt.String())) },
		"blif": func() (*netlist.Circuit, error) { return netlist.ReadBLIF(strings.NewReader(blif.String())) },
	} {
		rt, err := read()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := delay.MustBind(netlist.MustCompile(rt), delay.Default())
		got := ssta.Analyze(m, m.UnitSizes(), false).Tmax
		if math.Abs(got.Mu-want.Mu) > 1e-9 || math.Abs(got.Var-want.Var) > 1e-9 {
			t.Errorf("%s: timing changed after round trip: %+v vs %+v", name, got, want)
		}
	}
}
