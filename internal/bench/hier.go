package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

// HierRow is one (block target, workers) cell of the hierarchical
// timing scaling experiment.
type HierRow struct {
	Target  int // requested block size
	Blocks  int // blocks the partitioner produced
	Workers int
	// FlatFullNS / HierFullNS: one full forward+adjoint evaluation
	// (taped sweep + gradient) through the flat levelized path vs the
	// persistent blocked engine (Resweep + blocked adjoint).
	FlatFullNS, HierFullNS int64
	// FlatStepNS / HierStepNS: one warm sizing step — a single-gate
	// size change followed by a full gradient. The flat path must
	// re-sweep everything; the hierarchical engine replays every clean
	// block as a cached macro.
	FlatStepNS, HierStepNS int64
	FullSpeedup            float64
	StepSpeedup            float64
}

// HierResult is the block-size x worker scaling table of the
// hierarchical block-parallel SSTA engine.
type HierResult struct {
	Circuit string
	Gates   int
	Rows    []HierRow
}

// Format renders the scaling table.
func (t *HierResult) Format(w io.Writer) {
	title := fmt.Sprintf("Hierarchical SSTA scaling — %s (%d gates)", t.Circuit, t.Gates)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%7s %7s %3s %12s %12s %8s %12s %12s %8s\n",
		"target", "blocks", "j", "flat full", "hier full", "speedup",
		"flat step", "hier step", "speedup")
	ms := func(ns int64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%7d %7d %3d %12s %12s %7.2fx %12s %12s %7.2fx\n",
			r.Target, r.Blocks, r.Workers,
			ms(r.FlatFullNS), ms(r.HierFullNS), r.FullSpeedup,
			ms(r.FlatStepNS), ms(r.HierStepNS), r.StepSpeedup)
	}
	fmt.Fprintln(w)
}

// timeBest runs f reps times and returns the fastest wall-clock
// duration in nanoseconds — minimum-of-N suppresses scheduler noise
// the same way testing.B's -count selection does.
func timeBest(reps int, f func()) int64 {
	best := int64(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}

// RunHier measures the hierarchical block-parallel engine against the
// flat levelized sweeps on a streamed synthetic netlist with the given
// gate count (>= 100000 uses the canonical gen100k preset), across
// block targets and worker counts. Every hierarchical evaluation is
// bit-identity-checked against the flat result before it is timed.
func RunHier(gates int, logf func(string, ...any)) (*HierResult, error) {
	spec := netlist.Gen100kSpec()
	if gates > 0 && gates < spec.Gates {
		spec = netlist.GenSpec{
			Name: fmt.Sprintf("gen%dk", gates/1000), Gates: gates,
			Inputs: 64 + gates/100, Outputs: 32,
			Depth: 24 + gates/2500, MaxFanin: 4, Seed: 100_001,
		}
	}
	var buf bytes.Buffer
	if err := netlist.GenerateStream(&buf, spec); err != nil {
		return nil, err
	}
	c, err := netlist.ReadCKT(&buf)
	if err != nil {
		return nil, err
	}
	g, err := netlist.Compile(c)
	if err != nil {
		return nil, err
	}
	m, err := delay.Bind(g, delay.Default())
	if err != nil {
		return nil, err
	}
	S := m.UnitSizes()
	gateIDs := c.GateIDs()
	res := &HierResult{Circuit: spec.Name, Gates: spec.Gates}

	const k = 3.0
	phiFlat, gradFlat := ssta.GradMuPlusKSigma(m, S, k)
	for _, target := range []int{128, 512, 2048} {
		for _, workers := range []int{1, 4, 8} {
			h := ssta.NewHier(m, S, ssta.HierOptions{BlockTarget: target, Workers: workers})
			phiH, gradH := h.GradMuPlusKSigma(k)
			if phiH != phiFlat {
				return nil, fmt.Errorf("bench: hier phi %v != flat %v (target %d, j%d)",
					phiH, phiFlat, target, workers)
			}
			for id := range gradFlat {
				if gradH[id] != gradFlat[id] {
					return nil, fmt.Errorf("bench: hier grad[%d] diverged (target %d, j%d)",
						id, target, workers)
				}
			}
			row := HierRow{Target: target, Blocks: len(h.Partition().Blocks), Workers: workers}
			row.FlatFullNS = timeBest(3, func() {
				ssta.GradMuPlusKSigmaWorkers(m, S, k, workers)
			})
			row.HierFullNS = timeBest(3, func() {
				h.Resweep()
				h.GradMuPlusKSigma(k)
			})
			// Warm single-gate steps: cycle a handful of gates so the
			// dirty cone stays realistic and the slabs stay warm.
			step := 0
			flatS := append([]float64(nil), S...)
			row.FlatStepNS = timeBest(3, func() {
				id := gateIDs[(step*7919)%len(gateIDs)]
				flatS[id] = 1 + 0.3*float64(step%5)
				step++
				ssta.GradMuPlusKSigmaWorkers(m, flatS, k, workers)
			})
			step = 0
			h.Resweep()
			row.HierStepNS = timeBest(3, func() {
				id := gateIDs[(step*7919)%len(gateIDs)]
				h.SetSize(id, 1+0.3*float64(step%5))
				step++
				h.GradMuPlusKSigma(k)
			})
			row.FullSpeedup = float64(row.FlatFullNS) / float64(row.HierFullNS)
			row.StepSpeedup = float64(row.FlatStepNS) / float64(row.HierStepNS)
			if logf != nil {
				logf("hier target=%d j=%d: full %.2fx, step %.2fx",
					target, workers, row.FullSpeedup, row.StepSpeedup)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
