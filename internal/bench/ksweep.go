package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

// KSweepRow holds one circuit's deterministic corner delays across
// the sigma levels, evaluated as lanes of one batched traversal,
// against the statistical quantiles at the same levels.
type KSweepRow struct {
	Circuit string
	// Corner[i] is the deterministic corner delay at Ks[i] (every
	// gate simultaneously at mu + k*sigma); Stat[i] is the analytic
	// circuit quantile mu_Tmax + k*sigma_Tmax.
	Corner, Stat []float64
}

// KSweepResult is the batched corner k-sweep experiment: the paper's
// corner-pessimism argument quantified at several risk levels at once.
type KSweepResult struct {
	Ks   []float64
	Rows []KSweepRow
}

// Format renders the k-sweep table.
func (t *KSweepResult) Format(w io.Writer) {
	title := "Batched corner k-sweep vs statistical quantiles"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-12s %-8s", "circuit", "kind")
	for _, k := range t.Ks {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("k=%+.3g", k))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-12s %-8s", r.Circuit, "corner")
		for _, v := range r.Corner {
			fmt.Fprintf(w, " %9.4f", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-12s %-8s", "", "stat")
		for _, v := range r.Stat {
			fmt.Fprintf(w, " %9.4f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RunKSweep evaluates the corner sweep at every risk level in one
// batched traversal per circuit (ssta.KSweep, each lane bit-identical
// to a scalar corner sweep) and sets the deterministic corners
// against the statistical quantiles — the gap is the pessimism the
// paper's introduction argues corner methodology wastes, here visible
// growing with k.
func RunKSweep() (*KSweepResult, error) {
	res := &KSweepResult{Ks: []float64{-3, -1, 0, 1, 3}}
	cases := []struct {
		name string
		m    *delay.Model
	}{
		{"tree7", delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())},
		{"apex1-like", delay.MustBind(netlist.MustCompile(netlist.Apex1Like()), delay.Default())},
		{"k2-like", delay.MustBind(netlist.MustCompile(netlist.K2Like()), delay.Default())},
	}
	for _, cc := range cases {
		S := cc.m.UnitSizes()
		row := KSweepRow{
			Circuit: cc.name,
			Corner:  ssta.KSweep(cc.m, S, res.Ks, 0),
			Stat:    make([]float64, len(res.Ks)),
		}
		an := ssta.Analyze(cc.m, S, false).Tmax
		for i, k := range res.Ks {
			row.Stat[i] = an.Mu + k*an.Sigma()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
