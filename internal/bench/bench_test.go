package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestCalibratedParamsHitAnchors(t *testing.T) {
	// Re-evaluate the baked-in parameters against the paper's
	// anchors: this is the regression test that the calibration holds.
	tp := CalibratedTreeParams()
	tg := PaperTargets()
	if loss := tp.Loss(tg); loss > 0.01 {
		t.Errorf("calibrated loss = %v, want < 0.01", loss)
	}
}

func TestCalibrationImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	tg := PaperTargets()
	start := TreeParams{TInt: 0.5, WireBase: 0.5, OutputLoad: 1, CIn: 0.5}
	out := CalibrateTree(tg, start, 60)
	if out.Loss(tg) >= start.Loss(tg) {
		t.Errorf("calibration did not improve: %v -> %v", start.Loss(tg), out.Loss(tg))
	}
}

func TestRunTable2ShapesMatchPaper(t *testing.T) {
	tbl, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tbl.Rows))
	}
	unit, fast := tbl.Rows[0], tbl.Rows[1]
	// Paper anchors: 7.4 / 0.811 unsized; 5.4 / 0.592 / 21 fastest.
	if !close(unit.Mu, 7.4, 0.1) || !close(unit.Sigma, 0.811, 0.05) {
		t.Errorf("unsized row: mu=%v sigma=%v", unit.Mu, unit.Sigma)
	}
	if !close(fast.Mu, 5.4, 0.1) || !close(fast.SumS, 21, 0.1) {
		t.Errorf("fastest row: mu=%v sum=%v", fast.Mu, fast.SumS)
	}
	// Per fixed mean: rows come in (min area, min sigma, max sigma)
	// triples. Check the paper's structural findings.
	type triple struct{ area, minS, maxS Row }
	var triples []triple
	for i := 2; i+2 < len(tbl.Rows)+1; i += 3 {
		triples = append(triples, triple{tbl.Rows[i], tbl.Rows[i+1], tbl.Rows[i+2]})
	}
	if len(triples) != 3 {
		t.Fatalf("triples = %d", len(triples))
	}
	var intervals []float64
	for i, tr := range triples {
		// All three hit the same fixed mean.
		if !close(tr.area.Mu, tr.minS.Mu, 0.02) || !close(tr.area.Mu, tr.maxS.Mu, 0.02) {
			t.Errorf("triple %d: means differ: %v %v %v", i, tr.area.Mu, tr.minS.Mu, tr.maxS.Mu)
		}
		// Sigma interval exists: minS <= area <= maxS.
		if tr.minS.Sigma > tr.area.Sigma+1e-3 || tr.maxS.Sigma < tr.area.Sigma-1e-3 {
			t.Errorf("triple %d: sigma not bracketed: %v in [%v, %v]",
				i, tr.area.Sigma, tr.minS.Sigma, tr.maxS.Sigma)
		}
		// Min sigma costs at least as much area as min area.
		if tr.minS.SumS < tr.area.SumS-1e-3 {
			t.Errorf("triple %d: min-sigma area %v below min-area %v",
				i, tr.minS.SumS, tr.area.SumS)
		}
		intervals = append(intervals, tr.maxS.Sigma-tr.minS.Sigma)
	}
	// Paper: the sigma interval is largest at the middle mean.
	if !(intervals[1] > intervals[0] && intervals[1] > intervals[2]) {
		t.Errorf("middle interval not largest: %v", intervals)
	}
}

func TestRunTable3ShapesMatchPaper(t *testing.T) {
	res, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	area, minS, maxS := res.Rows[0], res.Rows[1], res.Rows[2]

	// Symmetric groups (A,B,D,E) and (C,F) treated alike for min-area
	// and min-sigma.
	for _, r := range []FactorRow{area, minS} {
		grp1 := []float64{r.S[0], r.S[1], r.S[3], r.S[4]}
		for _, s := range grp1[1:] {
			if !close(s, grp1[0], 0.03) {
				t.Errorf("%s: level-1 group not uniform: %v", r.Objective, grp1)
			}
		}
		if !close(r.S[2], r.S[5], 0.03) {
			t.Errorf("%s: level-2 group not uniform: %v %v", r.Objective, r.S[2], r.S[5])
		}
		// Factors increase toward the output (paper's finding).
		if !(r.S[0] <= r.S[2]+0.03 && r.S[2] <= r.S[6]+0.03) {
			t.Errorf("%s: not increasing toward output: A=%v C=%v G=%v",
				r.Objective, r.S[0], r.S[2], r.S[6])
		}
	}
	// Paper: min-area factors near (1.22, 1.45, 1.74).
	if !close(area.S[0], 1.22, 0.08) || !close(area.S[2], 1.45, 0.08) || !close(area.S[6], 1.74, 0.12) {
		t.Errorf("min-area factors: A=%v C=%v G=%v, want ~1.22/1.45/1.74",
			area.S[0], area.S[2], area.S[6])
	}
	// Paper: min-sigma is more extreme than min-area (inputs toward 1,
	// output toward the limit).
	if !(minS.S[0] < area.S[0]+0.02 && minS.S[6] > area.S[6]-0.02) {
		t.Errorf("min-sigma not more extreme: A %v vs %v, G %v vs %v",
			minS.S[0], area.S[0], minS.S[6], area.S[6])
	}
	// Paper: max-sigma unbalances the paths: the level-1 factors are
	// NOT all equal.
	spread := 0.0
	for _, s := range []float64{maxS.S[0], maxS.S[1], maxS.S[3], maxS.S[4]} {
		if d := math.Abs(s - maxS.S[0]); d > spread {
			spread = d
		}
	}
	if spread < 0.2 {
		t.Errorf("max-sigma did not unbalance level 1: %v", maxS.S)
	}
}

func TestRunTable1SmallCircuit(t *testing.T) {
	// Full Table 1 takes a while; exercise the runner end-to-end on
	// the smallest circuit and check the paper's qualitative shape.
	cases := []CircuitCase{Table1Circuits()[1]} // apex2-like
	tbl, err := RunTable1(cases, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tbl.Rows))
	}
	unit := tbl.Rows[0]
	minMu, minMu1, minMu3 := tbl.Rows[1], tbl.Rows[2], tbl.Rows[3]
	area0, area1, area3 := tbl.Rows[4], tbl.Rows[5], tbl.Rows[6]

	// Min-mu roughly halves the delay at a large area cost (paper:
	// 31.5 -> 23.45 at 117 -> 304 for apex2; shape, not numbers).
	if minMu.Mu >= 0.85*unit.Mu {
		t.Errorf("min-mu did not improve enough: %v -> %v", unit.Mu, minMu.Mu)
	}
	if minMu.SumS <= float64(unit.Cells) {
		t.Errorf("min-mu area did not grow: %v", minMu.SumS)
	}
	// Mu creeps up and sigma comes down as k grows; area shrinks.
	if !(minMu.Mu <= minMu1.Mu+1e-6 && minMu1.Mu <= minMu3.Mu+1e-6) {
		t.Errorf("mu not increasing with k: %v %v %v", minMu.Mu, minMu1.Mu, minMu3.Mu)
	}
	if !(minMu.Sigma >= minMu1.Sigma-1e-6 && minMu1.Sigma >= minMu3.Sigma-1e-6) {
		t.Errorf("sigma not decreasing with k: %v %v %v",
			minMu.Sigma, minMu1.Sigma, minMu3.Sigma)
	}
	if !(minMu3.SumS <= minMu.SumS+1e-6) {
		t.Errorf("mu+3sigma area above min-mu area: %v vs %v", minMu3.SumS, minMu.SumS)
	}
	// Constrained area rows: area grows with k; constraint satisfied;
	// mean pulled below the deadline by ~k*sigma (paper's pattern:
	// 29.00 / 27.64 / 25.47 under the same deadline).
	if !(area0.SumS <= area1.SumS+1e-6 && area1.SumS <= area3.SumS+1e-6) {
		t.Errorf("area not increasing with k: %v %v %v", area0.SumS, area1.SumS, area3.SumS)
	}
	if !(area0.Mu >= area1.Mu-1e-6 && area1.Mu >= area3.Mu-1e-6) {
		t.Errorf("constrained mu not decreasing with k: %v %v %v",
			area0.Mu, area1.Mu, area3.Mu)
	}
	// All constrained rows stay above the unconstrained floor.
	for i, r := range []Row{area0, area1, area3} {
		if r.SumS < float64(unit.Cells)-1e-6 {
			t.Errorf("row %d: area %v below floor %d", i, r.SumS, unit.Cells)
		}
	}
}

func TestRunYield(t *testing.T) {
	res, err := RunYield(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Circuit != "tree7" {
			continue
		}
		// Tree: no reconvergence, the claim holds tightly.
		tol := 0.02
		if math.Abs(r.Measured-r.Claimed) > tol {
			t.Errorf("tree %s: measured %v vs claimed %v", r.Deadline, r.Measured, r.Claimed)
		}
	}
	// The reconvergent circuit still conforms within a usable margin
	// at mu (the median is robust to sigma deflation).
	for _, r := range res.Rows {
		if r.Circuit == "apex2-like" && r.Deadline == "mu" {
			if r.Measured < 0.4 {
				t.Errorf("apex2 mu yield collapsed: %v", r.Measured)
			}
		}
	}
}

func TestRunBaseline(t *testing.T) {
	res, err := RunBaseline(50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	det, statMu, stat3 := res.Rows[0], res.Rows[1], res.Rows[2]
	// The deterministic baseline has no sigma handle: its yield at D
	// sits near or below 50%.
	if det.YieldAtD > 0.6 {
		t.Errorf("deterministic yield %v suspiciously high", det.YieldAtD)
	}
	// mu <= D delivers ~50% (median at the deadline).
	if math.Abs(statMu.YieldAtD-0.5) > 0.05 {
		t.Errorf("mu<=D yield %v, want ~0.5", statMu.YieldAtD)
	}
	// mu+3sigma <= D delivers ~99.8% at a real area premium.
	if stat3.YieldAtD < 0.99 {
		t.Errorf("mu+3sigma<=D yield %v, want ~0.998", stat3.YieldAtD)
	}
	if stat3.SumS <= statMu.SumS {
		t.Errorf("yield guarantee came free: %v vs %v", stat3.SumS, statMu.SumS)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "deterministic LP") {
		t.Errorf("format:\n%s", buf.String())
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Title: "T",
		Rows: []Row{
			{Circuit: "c1", Cells: 3, Minimize: "mu", Mu: 1.5, Sigma: 0.25, SumS: 3},
			{Circuit: "c1", Cells: 3, Minimize: "sum(Si)", Constraint: "mu <= 2",
				Mu: 2, Sigma: 0.3, SumS: 4, HasCPU: true},
		},
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	out := buf.String()
	for _, want := range []string{"c1", "mu <= 2", "1.50", "0.250"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	// Repeated circuit name suppressed on second row.
	if strings.Count(out, "c1") != 1 {
		t.Errorf("circuit name repeated:\n%s", out)
	}
}

func TestYieldFormat(t *testing.T) {
	y := &YieldResult{Samples: 10, Rows: []YieldRow{
		{Circuit: "x", Deadline: "mu", Claimed: 0.5, Measured: 0.49},
	}}
	var buf bytes.Buffer
	y.Format(&buf)
	if !strings.Contains(buf.String(), "50.0%") || !strings.Contains(buf.String(), "49.0%") {
		t.Errorf("yield format:\n%s", buf.String())
	}
}

func TestTable3Format(t *testing.T) {
	res := &Table3Result{MuFixed: 6.5, Rows: []FactorRow{
		{Objective: "min area", S: [7]float64{1, 2, 3, 4, 5, 6, 7}},
	}}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "min area") || !strings.Contains(buf.String(), "SG") {
		t.Errorf("table3 format:\n%s", buf.String())
	}
}

func TestTable1CircuitsMatchPaperScale(t *testing.T) {
	cases := Table1Circuits()
	want := map[string]int{"apex1-like": 982, "apex2-like": 117, "k2-like": 1692}
	for _, cc := range cases {
		c := cc.Make()
		if c.NumGates() != want[cc.Name] {
			t.Errorf("%s: %d cells, want %d", cc.Name, c.NumGates(), want[cc.Name])
		}
		if _, err := netlist.Compile(c); err != nil {
			t.Errorf("%s: %v", cc.Name, err)
		}
	}
}
