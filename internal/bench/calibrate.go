// Package bench is the experiment harness: it regenerates the paper's
// Table 1 (large-benchmark sizing formulations), Table 2 (tree-circuit
// objective study), Table 3 (tree speed factors) and the section 4
// timing-yield claim, and calibrates the free gate parameters the
// paper does not state.
package bench

import (
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

// CalibrationTargets are the paper's observable anchors for the
// Figure 3 tree circuit with sigma = 0.25*mu and limit = 3.
type CalibrationTargets struct {
	// MuUnsized is the mean circuit delay at S = 1 (Table 2: 7.4).
	MuUnsized float64
	// MuFastest is the mean circuit delay of the min-mu sizing
	// (Table 2: 5.4 at SumS = 21, every gate at the limit).
	MuFastest float64
	// AreaFactors are the per-gate speed factors of the min-area
	// sizing at the middle fixed mean (Table 3, first row), in the
	// order A, B, C, D, E, F, G.
	AreaFactors [7]float64
	// MuFixed is the fixed mean the AreaFactors row was measured at
	// (Table 3 caption: 6.5).
	MuFixed float64
}

// PaperTargets returns the values reported in the paper.
func PaperTargets() CalibrationTargets {
	return CalibrationTargets{
		MuUnsized:   7.4,
		MuFastest:   5.4,
		AreaFactors: [7]float64{1.22, 1.22, 1.45, 1.22, 1.22, 1.45, 1.74},
		MuFixed:     6.5,
	}
}

// TreeParams are the free parameters of the single-NAND2 library used
// by the tree experiments (the paper never states its process
// constants; the delay coefficient c is fixed at 1 because it is
// redundant against the capacitances).
type TreeParams struct {
	TInt       float64 // internal delay
	WireBase   float64 // fixed wiring capacitance per gate
	OutputLoad float64 // extra load on primary-output gates
	CIn        float64 // input pin capacitance
}

// Library materializes the parameters as a delay.Library.
func (tp TreeParams) Library() *delay.Library {
	l := delay.NewLibrary(1.0, tp.WireBase, 0, tp.OutputLoad)
	l.Add(delay.CellType{Name: "nand2", Fanin: 2, TInt: tp.TInt, CIn: tp.CIn})
	return l
}

// Loss evaluates how far the parameters land from the targets: squared
// errors on the two mean-delay anchors plus a weighted squared error
// on the Table 3 min-area speed factors.
func (tp TreeParams) Loss(tg CalibrationTargets) float64 {
	if tp.TInt < 0.05 || tp.WireBase < 0 || tp.OutputLoad < 0 || tp.CIn < 0.01 {
		return 1e6
	}
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), tp.Library())
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax

	fast, err := sizing.Size(m, sizing.Spec{Objective: sizing.MinMu()})
	if err != nil {
		return 1e6
	}
	loss := sq(unit.Mu-tg.MuUnsized) + sq(fast.MuTmax-tg.MuFastest)
	// The paper's min-mu row sits at SumS = 21: penalize interior
	// optima strongly so calibrated parameters keep the fully-sized
	// corner optimal.
	if fast.SumS < 20.9 {
		loss += sq(21 - fast.SumS)
	}

	area, err := sizing.Size(m, sizing.Spec{
		Objective:   sizing.MinArea(),
		Constraints: []sizing.Constraint{sizing.MuEQ(tg.MuFixed)},
	})
	if err != nil {
		return 1e6
	}
	c := m.G.C
	names := [7]string{"A", "B", "C", "D", "E", "F", "G"}
	for i, n := range names {
		loss += 0.25 * sq(area.S[c.MustID(n)]-tg.AreaFactors[i])
	}
	return loss
}

func sq(x float64) float64 { return x * x }

// CalibrateTree fits the tree parameters to the targets with a
// Nelder-Mead simplex search (the loss involves inner optimization
// solves, so derivative-free search is the right tool). The search is
// deterministic; iters around 120 suffices.
func CalibrateTree(tg CalibrationTargets, start TreeParams, iters int) TreeParams {
	dims := 4
	get := func(p TreeParams, i int) float64 {
		switch i {
		case 0:
			return p.TInt
		case 1:
			return p.WireBase
		case 2:
			return p.OutputLoad
		default:
			return p.CIn
		}
	}
	mk := func(v []float64) TreeParams {
		return TreeParams{TInt: v[0], WireBase: v[1], OutputLoad: v[2], CIn: v[3]}
	}

	// Initial simplex around the start.
	pts := make([][]float64, dims+1)
	loss := make([]float64, dims+1)
	for i := range pts {
		pts[i] = make([]float64, dims)
		for j := 0; j < dims; j++ {
			pts[i][j] = get(start, j)
			if i == j+1 {
				pts[i][j] += 0.3 * math.Max(0.2, pts[i][j])
			}
		}
		loss[i] = mk(pts[i]).Loss(tg)
	}

	for it := 0; it < iters; it++ {
		// Order: best first.
		for i := 1; i < len(pts); i++ {
			for j := i; j > 0 && loss[j] < loss[j-1]; j-- {
				pts[j], pts[j-1] = pts[j-1], pts[j]
				loss[j], loss[j-1] = loss[j-1], loss[j]
			}
		}
		worst := dims
		// Centroid of all but the worst.
		cen := make([]float64, dims)
		for i := 0; i < worst; i++ {
			for j := 0; j < dims; j++ {
				cen[j] += pts[i][j] / float64(worst)
			}
		}
		blend := func(alpha float64) ([]float64, float64) {
			v := make([]float64, dims)
			for j := 0; j < dims; j++ {
				v[j] = cen[j] + alpha*(pts[worst][j]-cen[j])
			}
			return v, mk(v).Loss(tg)
		}
		refl, fRefl := blend(-1)
		switch {
		case fRefl < loss[0]:
			if exp, fExp := blend(-2); fExp < fRefl {
				pts[worst], loss[worst] = exp, fExp
			} else {
				pts[worst], loss[worst] = refl, fRefl
			}
		case fRefl < loss[worst-1]:
			pts[worst], loss[worst] = refl, fRefl
		default:
			if con, fCon := blend(0.5); fCon < loss[worst] {
				pts[worst], loss[worst] = con, fCon
			} else {
				// Shrink toward the best point.
				for i := 1; i <= worst; i++ {
					for j := 0; j < dims; j++ {
						pts[i][j] = pts[0][j] + 0.5*(pts[i][j]-pts[0][j])
					}
					loss[i] = mk(pts[i]).Loss(tg)
				}
			}
		}
	}
	best := 0
	for i := 1; i < len(pts); i++ {
		if loss[i] < loss[best] {
			best = i
		}
	}
	return mk(pts[best])
}

// CalibratedTreeParams returns the parameters found by running
// CalibrateTree against PaperTargets (the calibration test re-derives
// and checks them; delay.PaperTree bakes in the same values). They hit
// the paper's anchors remarkably well: unsized mu 7.38 / sigma 0.82
// (paper 7.4 / 0.811), fully sized mu 5.39 at SumS = 21 (paper 5.4 /
// 21), and min-area factors at mu = 6.5 of (1.24, 1.47, 1.79) for the
// (input, middle, output) gate groups against the paper's
// (1.22, 1.45, 1.74) — including the increasing-toward-output pattern.
func CalibratedTreeParams() TreeParams {
	return TreeParams{
		TInt:       1.2157916775901505,
		WireBase:   0.845918116422389,
		OutputLoad: 0.18312769990508404,
		CIn:        0.14950378854004523,
	}
}
