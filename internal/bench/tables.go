package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

// Row is one experiment line in the paper's table format.
type Row struct {
	Circuit    string
	Cells      int
	Minimize   string
	Constraint string
	Mu, Sigma  float64
	SumS       float64
	CPU        time.Duration
	HasCPU     bool
	Status     string
}

// Table is a named list of rows with the paper's columns.
type Table struct {
	Title string
	Note  string
	Rows  []Row
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	fmt.Fprintf(w, "%-12s %6s  %-16s %-22s %10s %8s %9s %12s\n",
		"name", "#cells", "minimize", "constraint", "muTmax", "sigma", "sum(Si)", "CPU")
	prevCircuit := ""
	for _, r := range t.Rows {
		name, cells := r.Circuit, fmt.Sprintf("%d", r.Cells)
		if r.Circuit == prevCircuit {
			name, cells = "", ""
		}
		prevCircuit = r.Circuit
		cpu := ""
		if r.HasCPU {
			cpu = r.CPU.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-12s %6s  %-16s %-22s %10.2f %8.3f %9.2f %12s\n",
			name, cells, r.Minimize, r.Constraint, r.Mu, r.Sigma, r.SumS, cpu)
	}
	fmt.Fprintln(w)
}

// CircuitCase names one benchmark circuit for Table 1.
type CircuitCase struct {
	Name string
	Make func() *netlist.Circuit
	Lib  *delay.Library
}

// Table1Circuits returns the synthetic stand-ins for the paper's MCNC
// benchmarks (apex1 = 982 cells, apex2 = 117, k2 = 1692).
func Table1Circuits() []CircuitCase {
	lib := delay.Default()
	return []CircuitCase{
		{Name: "apex1-like", Make: netlist.Apex1Like, Lib: lib},
		{Name: "apex2-like", Make: netlist.Apex2Like, Lib: lib},
		{Name: "k2-like", Make: netlist.K2Like, Lib: lib},
	}
}

// solverOpts returns the NLP options used by the table runs.
func solverOpts() nlp.Options {
	return nlp.Options{TolGrad: 1e-5, TolCon: 1e-5, MaxInner: 1500}
}

// RunTable1 reproduces the paper's Table 1 on the given circuits: the
// unsized baseline, the three delay objectives, and three area
// minimizations under mu + k*sigma deadlines. The deadline is the
// midpoint between the best achievable mu+3sigma and the unsized mean
// delay, mirroring the paper's choice of a deadline that binds every
// formulation (their 120 for apex1 sits at a comparable fraction of
// the unsized 173.7).
func RunTable1(cases []CircuitCase, logf func(string, ...any)) (*Table, error) {
	t := &Table{
		Title: "Table 1: statistical sizing of benchmark circuits",
		Note:  "synthetic MCNC stand-ins (same cell counts); sigma = 0.25*mu, limit = 3",
	}
	for _, cc := range cases {
		circ := cc.Make()
		g, err := netlist.Compile(circ)
		if err != nil {
			return nil, err
		}
		m, err := delay.Bind(g, cc.Lib)
		if err != nil {
			return nil, err
		}
		cells := circ.NumGates()
		unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
		t.Rows = append(t.Rows, Row{
			Circuit: cc.Name, Cells: cells,
			Minimize: "sum(Si)", Mu: unit.Mu, Sigma: unit.Sigma(),
			SumS: float64(cells), Status: "unsized",
		})

		var best3 float64
		for _, k := range []float64{0, 1, 3} {
			out, err := sizing.Size(m, sizing.Spec{
				Objective: sizing.MinMuPlusKSigma(k),
				Solver:    solverOpts(),
			})
			if err != nil {
				return nil, fmt.Errorf("%s min mu+%gsigma: %w", cc.Name, k, err)
			}
			if logf != nil {
				logf("%s %v: mu=%.2f sigma=%.3f sum=%.1f (%v, %v)",
					cc.Name, sizing.MinMuPlusKSigma(k), out.MuTmax, out.SigmaTmax,
					out.SumS, out.Runtime.Round(time.Millisecond), out.Solver.Status)
			}
			t.Rows = append(t.Rows, Row{
				Circuit: cc.Name, Cells: cells,
				Minimize: sizing.MinMuPlusKSigma(k).String(),
				Mu:       out.MuTmax, Sigma: out.SigmaTmax, SumS: out.SumS,
				CPU: out.Runtime, HasCPU: true, Status: out.Solver.Status.String(),
			})
			if k == 3 {
				best3 = out.MuTmax + 3*out.SigmaTmax
			}
		}

		// Round the deadline for readable constraint strings; the
		// midpoint has ample feasibility margin on both sides.
		deadline := math.Round(5*(best3+unit.Mu)) / 10
		for _, k := range []float64{0, 1, 3} {
			con := sizing.DelayLE(k, deadline)
			out, err := sizing.Size(m, sizing.Spec{
				Objective:   sizing.MinArea(),
				Constraints: []sizing.Constraint{con},
				Solver:      solverOpts(),
			})
			if err != nil {
				return nil, fmt.Errorf("%s area under %v: %w", cc.Name, con, err)
			}
			if logf != nil {
				logf("%s min area s.t. %v: mu=%.2f sigma=%.3f sum=%.1f (%v, %v)",
					cc.Name, con, out.MuTmax, out.SigmaTmax, out.SumS,
					out.Runtime.Round(time.Millisecond), out.Solver.Status)
			}
			t.Rows = append(t.Rows, Row{
				Circuit: cc.Name, Cells: cells,
				Minimize: "sum(Si)", Constraint: con.String(),
				Mu: out.MuTmax, Sigma: out.SigmaTmax, SumS: out.SumS,
				CPU: out.Runtime, HasCPU: true, Status: out.Solver.Status.String(),
			})
		}
	}
	return t, nil
}

// RunTable2 reproduces the paper's Table 2 on the calibrated Figure 3
// tree: the delay/area range, then min-area / min-sigma / max-sigma at
// the paper's three fixed mean delays 5.8, 6.5 and 7.2.
func RunTable2() (*Table, error) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	t := &Table{
		Title: "Table 2: tree-circuit objectives (calibrated parameters)",
		Note:  "paper's fixed means 5.8 / 6.5 / 7.2 within the [5.4, 7.4] range",
	}
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	t.Rows = append(t.Rows, Row{
		Circuit: "tree7", Cells: 7, Minimize: "sum(Si)",
		Mu: unit.Mu, Sigma: unit.Sigma(), SumS: 7, Status: "unsized",
	})
	fast, err := sizing.Size(m, sizing.Spec{Objective: sizing.MinMu(), Solver: solverOpts()})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{
		Circuit: "tree7", Cells: 7, Minimize: "mu",
		Mu: fast.MuTmax, Sigma: fast.SigmaTmax, SumS: fast.SumS,
		CPU: fast.Runtime, HasCPU: true, Status: fast.Solver.Status.String(),
	})
	for _, d := range []float64{5.8, 6.5, 7.2} {
		for _, obj := range []sizing.Objective{
			sizing.MinArea(), sizing.MinSigma(), sizing.MaxSigma(),
		} {
			out, err := sizing.Size(m, sizing.Spec{
				Objective:   obj,
				Constraints: []sizing.Constraint{sizing.MuEQ(d)},
				Solver:      solverOpts(),
			})
			if err != nil {
				return nil, fmt.Errorf("tree %v at mu=%v: %w", obj, d, err)
			}
			t.Rows = append(t.Rows, Row{
				Circuit: "tree7", Cells: 7,
				Minimize: obj.String(), Constraint: sizing.MuEQ(d).String(),
				Mu: out.MuTmax, Sigma: out.SigmaTmax, SumS: out.SumS,
				CPU: out.Runtime, HasCPU: true, Status: out.Solver.Status.String(),
			})
		}
	}
	return t, nil
}

// FactorRow is one line of Table 3: per-gate speed factors.
type FactorRow struct {
	Objective string
	S         [7]float64 // A, B, C, D, E, F, G
}

// Table3Result holds the Table 3 reproduction.
type Table3Result struct {
	MuFixed float64
	Rows    []FactorRow
}

// Format renders the factor table.
func (t *Table3Result) Format(w io.Writer) {
	title := fmt.Sprintf("Table 3: tree speed factors at mu = %.1f", t.MuFixed)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-12s", "objective")
	for _, n := range [7]string{"SA", "SB", "SC", "SD", "SE", "SF", "SG"} {
		fmt.Fprintf(w, " %6s", n)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-12s", r.Objective)
		for _, s := range r.S {
			fmt.Fprintf(w, " %6.2f", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RunTable3 reproduces the paper's Table 3: the per-gate speed factors
// of min-area, min-sigma and max-sigma sizings at the paper's middle
// fixed mean 6.5.
func RunTable3() (*Table3Result, error) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	const d = 6.5
	res := &Table3Result{MuFixed: d}
	names := [7]string{"A", "B", "C", "D", "E", "F", "G"}
	for _, obj := range []sizing.Objective{
		sizing.MinArea(), sizing.MinSigma(), sizing.MaxSigma(),
	} {
		out, err := sizing.Size(m, sizing.Spec{
			Objective:   obj,
			Constraints: []sizing.Constraint{sizing.MuEQ(d)},
			Solver:      solverOpts(),
		})
		if err != nil {
			return nil, fmt.Errorf("table3 %v: %w", obj, err)
		}
		row := FactorRow{Objective: obj.String()}
		for i, n := range names {
			row.S[i] = out.S[m.G.C.MustID(n)]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
