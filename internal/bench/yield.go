package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

// YieldRow compares a claimed conformance level with the Monte Carlo
// measured one.
type YieldRow struct {
	Circuit  string
	Deadline string // "mu", "mu+sigma", "mu+3sigma"
	Claimed  float64
	Measured float64
}

// YieldResult holds the section 4 yield experiment.
type YieldResult struct {
	Samples int
	Rows    []YieldRow
}

// Format renders the yield table.
func (y *YieldResult) Format(w io.Writer) {
	title := fmt.Sprintf("Timing yield at analytic deadlines (%d MC samples)", y.Samples)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-12s %-12s %10s %10s\n", "circuit", "deadline", "claimed", "measured")
	for _, r := range y.Rows {
		fmt.Fprintf(w, "%-12s %-12s %9.1f%% %9.1f%%\n",
			r.Circuit, r.Deadline, 100*r.Claimed, 100*r.Measured)
	}
	fmt.Fprintln(w)
}

// RunYield validates the paper's section 4 claim that deadlines of mu,
// mu + sigma and mu + 3*sigma correspond to 50%, 84.1% and 99.8%
// timing yield. On the tree (no reconvergence) the analytic moments
// are exact and the match is tight; on the synthetic benchmark the
// reconvergence correlation the model ignores (paper section 7, future
// work) shifts the measured yield — quantified here rather than
// hidden.
func RunYield(samples int) (*YieldResult, error) {
	res := &YieldResult{Samples: samples}
	cases := []struct {
		name string
		m    *delay.Model
	}{
		{"tree7", delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())},
		{"apex2-like", delay.MustBind(netlist.MustCompile(netlist.Apex2Like()), delay.Default())},
	}
	claims := []struct {
		label string
		k     float64
		p     float64
	}{
		{"mu", 0, 0.5},
		{"mu+sigma", 1, 0.841},
		{"mu+3sigma", 3, 0.998},
	}
	for _, cc := range cases {
		S := cc.m.UnitSizes()
		an := ssta.Analyze(cc.m, S, false).Tmax
		mc, err := montecarlo.Run(cc.m, S, montecarlo.Options{
			Samples: samples, Seed: 1234, KeepSamples: true,
		})
		if err != nil {
			return nil, err
		}
		for _, cl := range claims {
			res.Rows = append(res.Rows, YieldRow{
				Circuit:  cc.name,
				Deadline: cl.label,
				Claimed:  cl.p,
				Measured: mc.Yield(an.Mu + cl.k*an.Sigma()),
			})
		}
	}
	return res, nil
}
