package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/ssta"
)

// BaselineRow compares one sizing method at a shared deadline.
type BaselineRow struct {
	Method    string
	Mu, Sigma float64
	SumS      float64
	// Quantile998 is mu + 3*sigma, the 99.8% analytic quantile.
	Quantile998 float64
	// YieldAtD is the Monte Carlo fraction of circuits meeting the
	// deadline.
	YieldAtD float64
}

// BaselineResult is the statistical-vs-deterministic comparison the
// paper's positioning implies: reference [3]'s LP sizing hits a mean
// deadline but cannot see sigma; the statistical formulation spends a
// little more area and actually delivers the yield.
type BaselineResult struct {
	Circuit  string
	Deadline float64
	Samples  int
	Rows     []BaselineRow
}

// Format renders the comparison.
func (b *BaselineResult) Format(w io.Writer) {
	title := fmt.Sprintf("Baseline comparison on %s at deadline %.3f (%d MC samples)",
		b.Circuit, b.Deadline, b.Samples)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-28s %8s %8s %8s %12s %10s\n",
		"method", "mu", "sigma", "area", "mu+3sigma", "yield@D")
	for _, r := range b.Rows {
		fmt.Fprintf(w, "%-28s %8.3f %8.3f %8.2f %12.3f %9.1f%%\n",
			r.Method, r.Mu, r.Sigma, r.SumS, r.Quantile998, 100*r.YieldAtD)
	}
	fmt.Fprintln(w)
}

// RunBaseline sizes the tree circuit three ways against one deadline
// D — deterministic LP on the mean (ref [3] style), statistical
// area-min with mu <= D, and statistical area-min with
// mu + 3*sigma <= D — and Monte Carlo-measures the yield each
// actually achieves at D.
func RunBaseline(samples int) (*BaselineResult, error) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := sizing.Size(m, sizing.Spec{
		Objective: sizing.MinMuPlusKSigma(3), Solver: solverOpts(),
	})
	if err != nil {
		return nil, err
	}
	deadline := 0.5 * (fast.MuTmax + 3*fast.SigmaTmax + unit.Mu)

	res := &BaselineResult{Circuit: "tree7", Deadline: deadline, Samples: samples}
	measure := func(method string, S []float64) error {
		r := ssta.Analyze(m, S, false).Tmax
		mc, err := montecarlo.Run(m, S, montecarlo.Options{
			Samples: samples, Seed: 77, KeepSamples: true,
		})
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, BaselineRow{
			Method: method,
			Mu:     r.Mu, Sigma: r.Sigma(),
			SumS:        m.SumSizes(S),
			Quantile998: r.Mu + 3*r.Sigma(),
			YieldAtD:    mc.Yield(deadline),
		})
		return nil
	}

	det, err := sizing.SizeLPBaseline(m, sizing.LPBaselineOptions{Deadline: deadline})
	if err != nil {
		return nil, err
	}
	if err := measure("deterministic LP (ref [3])", det.S); err != nil {
		return nil, err
	}
	statMu, err := sizing.Size(m, sizing.Spec{
		Objective:   sizing.MinArea(),
		Constraints: []sizing.Constraint{sizing.DelayLE(0, deadline)},
		Solver:      solverOpts(),
	})
	if err != nil {
		return nil, err
	}
	if err := measure("statistical, mu <= D", statMu.S); err != nil {
		return nil, err
	}
	stat3, err := sizing.Size(m, sizing.Spec{
		Objective:   sizing.MinArea(),
		Constraints: []sizing.Constraint{sizing.DelayLE(3, deadline)},
		Solver:      solverOpts(),
	})
	if err != nil {
		return nil, err
	}
	if err := measure("statistical, mu+3sigma <= D", stat3.S); err != nil {
		return nil, err
	}
	return res, nil
}
