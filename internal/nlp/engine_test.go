package nlp

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// chainProblem builds a constrained, fully separable test problem with
// enough elements to clear the engine's parallel threshold: n quartic
// objective elements, a coupling term per adjacent pair, an equality
// constraint per stride of 5 and an inequality per stride of 7. Every
// element has an exact Hessian, so both inner methods run on it.
func chainProblem(n int) *Problem {
	p := &Problem{N: n}
	for i := 0; i < n; i++ {
		i := i
		c := 1 + 0.5*math.Sin(float64(i))
		p.Objective = append(p.Objective, Element{
			Vars: []int{i},
			Eval: func(x []float64) float64 {
				d := x[0] - c
				return d*d + 0.1*d*d*d*d
			},
			Grad: func(x []float64, g []float64) {
				d := x[0] - c
				g[0] = 2*d + 0.4*d*d*d
			},
			Hess: func(x []float64, h [][]float64) {
				d := x[0] - c
				h[0][0] = 2 + 1.2*d*d
			},
		})
	}
	for i := 0; i+1 < n; i += 3 {
		i := i
		p.Objective = append(p.Objective, Element{
			Vars: []int{i, i + 1},
			Eval: func(x []float64) float64 {
				d := x[1] - x[0]*x[0]
				return 0.5 * d * d
			},
			Grad: func(x []float64, g []float64) {
				d := x[1] - x[0]*x[0]
				g[0] = -2 * d * x[0]
				g[1] = d
			},
			Hess: func(x []float64, h [][]float64) {
				d := x[1] - x[0]*x[0]
				h[0][0] = 4*x[0]*x[0] - 2*d
				h[0][1], h[1][0] = -2*x[0], -2*x[0]
				h[1][1] = 1
			},
		})
	}
	for i := 0; i+1 < n; i += 5 {
		p.EqCons = append(p.EqCons, Constraint{
			Name: "sum",
			El:   LinearElement([]int{i, i + 1}, []float64{1, 1}, -2),
		})
	}
	for i := 0; i < n; i += 7 {
		p.IneqCons = append(p.IneqCons, Constraint{
			Name: "cap",
			El:   LinearElement([]int{i}, []float64{1}, -1.5),
		})
	}
	return p
}

// testPoint fills x with a deterministic, non-symmetric pattern.
func testPoint(n int, phase float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 + 0.8*math.Sin(1.7*float64(i)+phase)
	}
	return x
}

// newTestState builds an almState with non-trivial multipliers so the
// merit fold exercises every weight path.
func newTestState(p *Problem, workers int) *almState {
	st := newALMState(p, 37.5, workers, nil)
	for i := range st.lamEq {
		st.lamEq[i] = 0.3 * float64(i%5)
	}
	for i := range st.lamIneq {
		st.lamIneq[i] = 0.2 * float64(i%3)
	}
	return st
}

func TestEngineParallelThresholdMet(t *testing.T) {
	// The equivalence and allocation tests below are only meaningful if
	// the test problem actually engages the parallel path.
	p := chainProblem(300)
	st := newTestState(p, 4)
	defer st.eng.close()
	if len(st.eng.refs) < engineMinElements {
		t.Fatalf("chain problem has %d elements, below the parallel threshold %d",
			len(st.eng.refs), engineMinElements)
	}
	if st.eng.chunks == nil {
		t.Fatal("engine did not build a worker pool")
	}
}

func TestMeritWorkersBitIdentical(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	ref := newTestState(p, 1)
	defer ref.eng.close()
	for _, w := range []int{2, 3, 8, runtime.NumCPU()} {
		st := newTestState(p, w)
		for _, phase := range []float64{0, 0.9, 2.3} {
			x := testPoint(n, phase)
			gWant := make([]float64, n)
			gGot := make([]float64, n)
			want := ref.merit(x, gWant)
			got := st.merit(x, gGot)
			if want != got {
				t.Errorf("workers=%d phase=%g: merit %v != serial %v", w, phase, got, want)
			}
			for i := range gWant {
				if gWant[i] != gGot[i] {
					t.Fatalf("workers=%d phase=%g: grad[%d] = %v != serial %v",
						w, phase, i, gGot[i], gWant[i])
				}
			}
			for i := range ref.cEq {
				if ref.cEq[i] != st.cEq[i] {
					t.Fatalf("workers=%d: cEq[%d] differs", w, i)
				}
			}
			for i := range ref.cIneq {
				if ref.cIneq[i] != st.cIneq[i] {
					t.Fatalf("workers=%d: cIneq[%d] differs", w, i)
				}
			}
			// Value-only path must agree with the gradient path.
			if only := st.merit(x, nil); only != want {
				t.Errorf("workers=%d: value-only merit %v != %v", w, only, want)
			}
		}
		st.eng.close()
	}
}

func TestHessVecWorkersBitIdentical(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	x := testPoint(n, 1.1)
	v := testPoint(n, 2.6)
	opt := Options{Method: NewtonCG}.withDefaults()

	build := func(workers int) (*newtonSolver, []float64) {
		st := newTestState(p, workers)
		ns := newNewtonSolver(p, st, opt)
		for i := range ns.free {
			ns.free[i] = i%6 != 0
		}
		ns.buildCache(x)
		out := make([]float64, n)
		ns.hessVec(v, out)
		return ns, out
	}

	nsRef, want := build(1)
	defer nsRef.st.eng.close()
	for _, w := range []int{2, 3, 8, runtime.NumCPU()} {
		ns, got := build(w)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: (H v)[%d] = %v != serial %v", w, i, got[i], want[i])
			}
		}
		ns.st.eng.close()
	}
}

func TestSolveWorkersBitIdentical(t *testing.T) {
	const n = 240
	p := chainProblem(n)
	x0 := testPoint(n, 0.4)
	for _, m := range methods {
		var ref *Result
		for _, w := range []int{1, 2, 3, runtime.NumCPU()} {
			r, err := Solve(p, append([]float64(nil), x0...),
				Options{Method: m, Workers: w, MaxInner: 300})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, w, err)
			}
			if w == 1 {
				ref = r
				continue
			}
			if r.F != ref.F || r.Status != ref.Status ||
				r.Outer != ref.Outer || r.Inner != ref.Inner ||
				r.FuncEvals != ref.FuncEvals || r.ObjEvals != ref.ObjEvals ||
				r.ProjGradNorm != ref.ProjGradNorm || r.MaxViolation != ref.MaxViolation {
				t.Fatalf("%v workers=%d: result header differs from serial:\n got %+v\nwant %+v",
					m, w, r, ref)
			}
			for i := range ref.X {
				if r.X[i] != ref.X[i] {
					t.Fatalf("%v workers=%d: X[%d] = %v != serial %v", m, w, i, r.X[i], ref.X[i])
				}
			}
			for i := range ref.LambdaEq {
				if r.LambdaEq[i] != ref.LambdaEq[i] {
					t.Fatalf("%v workers=%d: LambdaEq[%d] differs", m, w, i)
				}
			}
			for i := range ref.LambdaIneq {
				if r.LambdaIneq[i] != ref.LambdaIneq[i] {
					t.Fatalf("%v workers=%d: LambdaIneq[%d] differs", m, w, i)
				}
			}
		}
	}
}

// The allocation regression tests pin the arena contract: after
// warm-up, steady-state merit, Hessian-cache and Hessian-vector
// evaluation must not touch the heap, serial or parallel.

func TestMeritSteadyStateAllocs(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	for _, w := range []int{1, 4} {
		st := newTestState(p, w)
		x := testPoint(n, 0.7)
		grad := make([]float64, n)
		for i := 0; i < 3; i++ { // warm up goroutine stacks
			st.merit(x, grad)
		}
		if a := testing.AllocsPerRun(50, func() { st.merit(x, grad) }); a != 0 {
			t.Errorf("workers=%d: merit(x, grad) allocates %v/op, want 0", w, a)
		}
		if a := testing.AllocsPerRun(50, func() { st.merit(x, nil) }); a != 0 {
			t.Errorf("workers=%d: merit(x, nil) allocates %v/op, want 0", w, a)
		}
		if a := testing.AllocsPerRun(50, func() { st.objective(x) }); a != 0 {
			t.Errorf("workers=%d: objective(x) allocates %v/op, want 0", w, a)
		}
		st.eng.close()
	}
}

func TestHessVecSteadyStateAllocs(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	opt := Options{Method: NewtonCG}.withDefaults()
	for _, w := range []int{1, 4} {
		st := newTestState(p, w)
		ns := newNewtonSolver(p, st, opt)
		x := testPoint(n, 1.9)
		v := testPoint(n, 0.2)
		out := make([]float64, n)
		for i := range ns.free {
			ns.free[i] = true
		}
		ns.buildCache(x)
		ns.hessVec(v, out)
		if a := testing.AllocsPerRun(50, func() { ns.buildCache(x) }); a != 0 {
			t.Errorf("workers=%d: buildCache allocates %v/op, want 0", w, a)
		}
		if a := testing.AllocsPerRun(50, func() { ns.hessVec(v, out) }); a != 0 {
			t.Errorf("workers=%d: hessVec allocates %v/op, want 0", w, a)
		}
		st.eng.close()
	}
}

func TestEnginePoolShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	p := chainProblem(300)
	x0 := testPoint(300, 0.4)
	if _, err := Solve(p, x0, Options{Workers: 4, MaxInner: 50}); err != nil {
		t.Fatal(err)
	}
	// The pool goroutines exit asynchronously after the channel close.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before Solve, %d after", before, runtime.NumGoroutine())
}

func TestObjEvalsCounted(t *testing.T) {
	p := chainProblem(40)
	r, err := Solve(p, testPoint(40, 0.3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ObjEvals < 1 {
		t.Errorf("ObjEvals = %d, want >= 1 (the final F report)", r.ObjEvals)
	}
	if r.FuncEvals <= r.Outer {
		t.Errorf("FuncEvals = %d suspiciously low for %d outer iterations", r.FuncEvals, r.Outer)
	}
}
