package nlp

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the extended solver battery: classic Hock-Schittkowski
// problems beyond the basics in nlp_test.go, plus randomized convex
// programs whose solutions are verified against KKT conditions rather
// than known optima.

// hs35: min 9 - 8x1 - 6x2 - 4x3 + 2x1^2 + 2x2^2 + x3^2
//   - 2x1x2 + 2x1x3, s.t. x1+x2+2x3 <= 3, x >= 0.
//
// Solution (4/3, 7/9, 4/9), f* = 1/9.
func hs35() *Problem {
	return &Problem{
		N:     3,
		Lower: []float64{0, 0, 0},
		Objective: []Element{{
			Vars: []int{0, 1, 2},
			Eval: func(x []float64) float64 {
				return 9 - 8*x[0] - 6*x[1] - 4*x[2] +
					2*x[0]*x[0] + 2*x[1]*x[1] + x[2]*x[2] +
					2*x[0]*x[1] + 2*x[0]*x[2]
			},
			Grad: func(x []float64, g []float64) {
				g[0] = -8 + 4*x[0] + 2*x[1] + 2*x[2]
				g[1] = -6 + 4*x[1] + 2*x[0]
				g[2] = -4 + 2*x[2] + 2*x[0]
			},
			Hess: func(_ []float64, h [][]float64) {
				h[0][0], h[0][1], h[0][2] = 4, 2, 2
				h[1][0], h[1][1], h[1][2] = 2, 4, 0
				h[2][0], h[2][1], h[2][2] = 2, 0, 2
			},
		}},
		IneqCons: []Constraint{{
			Name: "budget",
			El:   LinearElement([]int{0, 1, 2}, []float64{1, 1, 2}, -3),
		}},
	}
}

func TestHS35(t *testing.T) {
	want := []float64{4.0 / 3, 7.0 / 9, 4.0 / 9}
	for _, m := range methods {
		r, err := Solve(hs35(), []float64{0.5, 0.5, 0.5}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.F, 1.0/9, 1e-4) {
			t.Errorf("%v: f = %v, want 1/9", m, r.F)
		}
		for i := range want {
			if !approx(r.X[i], want[i], 1e-3) {
				t.Errorf("%v: x[%d] = %v, want %v", m, i, r.X[i], want[i])
			}
		}
	}
}

// hs48: min (x1-1)^2 + (x2-x3)^2 + (x4-x5)^2
//
//	s.t. x1+x2+x3+x4+x5 = 5, x3 - 2(x4+x5) = -3.
//
// Solution (1,1,1,1,1), f* = 0.
func hs48() *Problem {
	return &Problem{
		N: 5,
		Objective: []Element{{
			Vars: []int{0, 1, 2, 3, 4},
			Eval: func(x []float64) float64 {
				return sq(x[0]-1) + sq(x[1]-x[2]) + sq(x[3]-x[4])
			},
			Grad: func(x []float64, g []float64) {
				g[0] = 2 * (x[0] - 1)
				g[1] = 2 * (x[1] - x[2])
				g[2] = -2 * (x[1] - x[2])
				g[3] = 2 * (x[3] - x[4])
				g[4] = -2 * (x[3] - x[4])
			},
			Hess: func(_ []float64, h [][]float64) {
				for i := range h {
					for j := range h[i] {
						h[i][j] = 0
					}
				}
				h[0][0] = 2
				h[1][1], h[2][2], h[1][2], h[2][1] = 2, 2, -2, -2
				h[3][3], h[4][4], h[3][4], h[4][3] = 2, 2, -2, -2
			},
		}},
		EqCons: []Constraint{
			{Name: "sum", El: LinearElement([]int{0, 1, 2, 3, 4}, []float64{1, 1, 1, 1, 1}, -5)},
			{Name: "mix", El: LinearElement([]int{2, 3, 4}, []float64{1, -2, -2}, 3)},
		},
	}
}

func sq(v float64) float64 { return v * v }

func TestHS48(t *testing.T) {
	for _, m := range methods {
		r, err := Solve(hs48(), []float64{3, 5, -3, 2, -2}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.F, 0, 1e-6) {
			t.Errorf("%v: f = %v, want 0", m, r.F)
		}
		if r.MaxViolation > 1e-5 {
			t.Errorf("%v: violation %v", m, r.MaxViolation)
		}
	}
}

// hs4: min (x1+1)^3/3 + x2, x1 >= 1, x2 >= 0. Solution (1, 0), f* = 8/3.
func TestHS4(t *testing.T) {
	p := &Problem{
		N:     2,
		Lower: []float64{1, 0},
		Objective: []Element{{
			Vars: []int{0, 1},
			Eval: func(x []float64) float64 {
				a := x[0] + 1
				return a*a*a/3 + x[1]
			},
			Grad: func(x []float64, g []float64) {
				a := x[0] + 1
				g[0] = a * a
				g[1] = 1
			},
			Hess: func(x []float64, h [][]float64) {
				h[0][0] = 2 * (x[0] + 1)
				h[0][1], h[1][0], h[1][1] = 0, 0, 0
			},
		}},
	}
	for _, m := range methods {
		r, err := Solve(p, []float64{1.125, 0.125}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.X[0], 1, 1e-6) || !approx(r.X[1], 0, 1e-6) {
			t.Errorf("%v: x = %v, want (1, 0)", m, r.X)
		}
		if !approx(r.F, 8.0/3, 1e-6) {
			t.Errorf("%v: f = %v, want 8/3", m, r.F)
		}
	}
}

// randomConvexQP builds min 0.5 x^T Q x + c^T x over a box with Q
// positive definite (A^T A + n*I), plus an optional linear equality.
func randomConvexQP(rng *rand.Rand, n int, withEq bool) *Problem {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			var s float64
			for k := 0; k < n; k++ {
				s += a[k][i] * a[k][j]
			}
			q[i][j] = s
		}
		q[i][i] += float64(n)
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = 3 * rng.NormFloat64()
	}
	vars := make([]int, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	ones := make([]float64, n)
	for i := range vars {
		vars[i] = i
		lower[i] = -1
		upper[i] = 1
		ones[i] = 1
	}
	p := &Problem{
		N: n, Lower: lower, Upper: upper,
		Objective: []Element{{
			Vars: vars,
			Eval: func(x []float64) float64 {
				var v float64
				for i := 0; i < n; i++ {
					v += c[i] * x[i]
					for j := 0; j < n; j++ {
						v += 0.5 * x[i] * q[i][j] * x[j]
					}
				}
				return v
			},
			Grad: func(x []float64, g []float64) {
				for i := 0; i < n; i++ {
					g[i] = c[i]
					for j := 0; j < n; j++ {
						g[i] += q[i][j] * x[j]
					}
				}
			},
			Hess: func(_ []float64, h [][]float64) {
				for i := range h {
					copy(h[i], q[i])
				}
			},
		}},
	}
	if withEq {
		p.EqCons = []Constraint{{Name: "sum", El: LinearElement(vars, ones, -0.5)}}
	}
	return p
}

// kktCheckQP verifies first-order optimality of a box-constrained QP
// solution: projected gradient of the Lagrangian must vanish and
// constraints hold.
func kktCheckQP(t *testing.T, p *Problem, r *Result, label string) {
	t.Helper()
	if r.MaxViolation > 1e-5 {
		t.Errorf("%s: violation %v", label, r.MaxViolation)
	}
	n := p.N
	g := make([]float64, n)
	local := make([]float64, n)
	copy(local, r.X)
	p.Objective[0].Grad(local, g)
	// Add equality-multiplier terms.
	for i, con := range p.EqCons {
		lg := make([]float64, len(con.El.Vars))
		con.El.Grad(local, lg)
		for k, v := range con.El.Vars {
			g[v] += r.LambdaEq[i] * lg[k]
		}
	}
	for i := 0; i < n; i++ {
		atLower := r.X[i] <= p.Lower[i]+1e-6
		atUpper := r.X[i] >= p.Upper[i]-1e-6
		switch {
		case atLower && g[i] >= -1e-4:
		case atUpper && g[i] <= 1e-4:
		case !atLower && !atUpper && math.Abs(g[i]) <= 1e-4:
		default:
			t.Errorf("%s: KKT fails at %d: x=%v g=%v", label, i, r.X[i], g[i])
		}
	}
}

func TestRandomConvexQPsSatisfyKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		withEq := trial%2 == 0
		p := randomConvexQP(rng, n, withEq)
		for _, m := range methods {
			x0 := make([]float64, n)
			r, err := Solve(p, x0, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			kktCheckQP(t, p, r, m.String())
		}
	}
}

func TestBothMethodsAgreeOnConvexQPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(6)
		p := randomConvexQP(rng, n, true)
		x0 := make([]float64, n)
		a, err := Solve(p, x0, Options{Method: LBFGS})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(p, x0, Options{Method: NewtonCG})
		if err != nil {
			t.Fatal(err)
		}
		// Convex: unique optimum, methods must agree.
		if !approx(a.F, b.F, 1e-4) {
			t.Errorf("trial %d: LBFGS %v vs Newton %v", trial, a.F, b.F)
		}
	}
}
