package nlp

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// These tests pin the telemetry layer's two contracts on the solver
// hot paths: a disabled recorder (nil or Noop) adds zero allocations
// per evaluation, and an enabled trace is byte-identical for every
// worker count.

// noopTestState mirrors newTestState but threads the Noop recorder, so
// the allocation tests cover both disabled configurations.
func noopTestState(p *Problem, workers int) *almState {
	st := newALMState(p, 37.5, workers, telemetry.Noop)
	for i := range st.lamEq {
		st.lamEq[i] = 0.3 * float64(i%5)
	}
	for i := range st.lamIneq {
		st.lamIneq[i] = 0.2 * float64(i%3)
	}
	return st
}

func disabledRecorders(p *Problem, workers int) map[string]*almState {
	return map[string]*almState{
		"nil":  newTestState(p, workers),
		"noop": noopTestState(p, workers),
	}
}

func TestMeritZeroAllocsWhenDisabled(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	x := testPoint(n, 0.7)
	for _, workers := range []int{1, 4} {
		for name, st := range disabledRecorders(p, workers) {
			grad := make([]float64, n)
			st.merit(x, grad) // warm up pools and scratch
			allocs := testing.AllocsPerRun(20, func() {
				st.merit(x, grad)
			})
			st.eng.close()
			if allocs != 0 {
				t.Errorf("workers=%d recorder=%s: merit allocates %g per run, want 0",
					workers, name, allocs)
			}
		}
	}
}

func TestHessVecZeroAllocsWhenDisabled(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	x := testPoint(n, 1.9)
	v := testPoint(n, 0.2)
	opt := Options{Method: NewtonCG}.withDefaults()
	for _, workers := range []int{1, 4} {
		for name, st := range disabledRecorders(p, workers) {
			ns := newNewtonSolver(p, st, opt)
			for i := range ns.free {
				ns.free[i] = true
			}
			out := make([]float64, n)
			ns.buildCache(x)
			ns.hessVec(v, out) // warm up
			cacheAllocs := testing.AllocsPerRun(20, func() {
				ns.buildCache(x)
			})
			hvAllocs := testing.AllocsPerRun(20, func() {
				ns.hessVec(v, out)
			})
			st.eng.close()
			if cacheAllocs != 0 {
				t.Errorf("workers=%d recorder=%s: buildCache allocates %g per run, want 0",
					workers, name, cacheAllocs)
			}
			if hvAllocs != 0 {
				t.Errorf("workers=%d recorder=%s: hessVec allocates %g per run, want 0",
					workers, name, hvAllocs)
			}
		}
	}
}

// solveTrace runs a full ALM solve with a trace attached and returns
// the trace bytes.
func solveTrace(t *testing.T, p *Problem, n, workers int, method Method) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := telemetry.NewTraceWriter(&buf)
	x0 := testPoint(n, 0.4)
	if _, err := Solve(p, x0, Options{
		Method:   method,
		Workers:  workers,
		MaxInner: 200,
		Recorder: w,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSolveTraceDeterministic is the acceptance criterion of the
// telemetry layer: the JSONL trace of a solve is byte-identical for
// serial and parallel runs, and its alm.outer events carry the
// convergence fields.
func TestSolveTraceDeterministic(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	for _, method := range []Method{LBFGS, NewtonCG} {
		serial := solveTrace(t, p, n, 1, method)
		parallel := solveTrace(t, p, n, 4, method)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%v: trace differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s",
				method, serial, parallel)
			continue
		}

		events, err := telemetry.ParseTrace(bytes.NewReader(serial))
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if err := telemetry.ValidateTrace(events); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		outer, inner, done := 0, 0, 0
		for i := range events {
			ev := &events[i]
			switch ev.Scope + "." + ev.Name {
			case "alm.outer":
				outer++
				if iter, _ := ev.Get("iter"); int(iter) != outer {
					t.Errorf("%v: alm.outer #%d has iter=%g", method, outer, iter)
				}
			case "lbfgs.iter", "newton.iter":
				inner++
			case "alm.done":
				done++
			}
		}
		if outer == 0 || inner == 0 || done != 1 {
			t.Errorf("%v: trace has %d alm.outer, %d inner, %d alm.done events",
				method, outer, inner, done)
		}
	}
}

// TestSolveResultTiming checks the satellite Result timing fields: a
// solve must report a positive total duration that contains the inner
// time.
func TestSolveResultTiming(t *testing.T) {
	const n = 60
	p := chainProblem(n)
	res, err := Solve(p, testPoint(n, 0.4), Options{Workers: 1, MaxInner: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", res.Duration)
	}
	if res.SetupTime < 0 || res.InnerTime < 0 {
		t.Errorf("negative phase time: setup %v inner %v", res.SetupTime, res.InnerTime)
	}
	if res.InnerTime > res.Duration {
		t.Errorf("InnerTime %v exceeds total Duration %v", res.InnerTime, res.Duration)
	}
}

// TestEngineCountersPublished checks that a recorded solve publishes
// the engine evaluation counters to the metrics sink.
func TestEngineCountersPublished(t *testing.T) {
	const n = 300
	p := chainProblem(n)
	m := telemetry.NewMetrics()
	if _, err := Solve(p, testPoint(n, 0.4), Options{
		Workers: 2, MaxInner: 200, Recorder: m,
	}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"engine.merit_evals", "engine.grad_evals", "engine.obj_evals"} {
		if m.CounterValue(c) == 0 {
			t.Errorf("counter %s = 0 after a recorded solve", c)
		}
	}
	if m.GaugeValue("engine.elements") == 0 {
		t.Error("gauge engine.elements = 0 after a recorded solve")
	}
	if nSolve, _ := m.SpanValue("nlp.solve"); nSolve != 1 {
		t.Errorf("span nlp.solve count = %d, want 1", nSolve)
	}
}
