package nlp

import (
	"math"

	"repro/internal/telemetry"
)

// innerSolver minimizes the augmented Lagrangian over the bound box,
// starting from (and updating) x, until the projected gradient drops
// below tol or the iteration budget runs out. It returns the number of
// iterations spent and the final projected-gradient norm.
type innerSolver interface {
	minimize(x []float64, tol float64) (iters int, projGrad float64)
}

// lbfgsSolver is a projected limited-memory BFGS method: the two-loop
// recursion builds a quasi-Newton direction from recent curvature
// pairs, components that would immediately leave the box are zeroed,
// and an Armijo backtracking search runs along the projected path
// x(alpha) = Proj(x + alpha*d). Memory is dropped whenever curvature
// degenerates or the line search fails, falling back to projected
// steepest descent, which makes the method globally convergent in
// practice for the smooth merit functions produced by the ALM.
type lbfgsSolver struct {
	p   *Problem
	st  *almState
	opt Options

	grad, xNew, gNew, d []float64
	s, y                [][]float64 // circular history
	rhoPairs            []float64   // 1 / (y.s)
	alpha               []float64   // two-loop scratch, reused
	histLen, histPos    int
}

func newLBFGSSolver(p *Problem, st *almState, opt Options) *lbfgsSolver {
	m := opt.Memory
	sl := &lbfgsSolver{
		p: p, st: st, opt: opt,
		grad:     make([]float64, p.N),
		xNew:     make([]float64, p.N),
		gNew:     make([]float64, p.N),
		d:        make([]float64, p.N),
		s:        make([][]float64, m),
		y:        make([][]float64, m),
		rhoPairs: make([]float64, m),
		alpha:    make([]float64, m),
	}
	for i := 0; i < m; i++ {
		sl.s[i] = make([]float64, p.N)
		sl.y[i] = make([]float64, p.N)
	}
	return sl
}

func (sl *lbfgsSolver) reset() { sl.histLen, sl.histPos = 0, 0 }

// push records a curvature pair if it is sufficiently positive.
func (sl *lbfgsSolver) push(x, xNew, g, gNew []float64) {
	var sy, ss, yy float64
	i := sl.histPos
	for k := range x {
		sk := xNew[k] - x[k]
		yk := gNew[k] - g[k]
		sl.s[i][k] = sk
		sl.y[i][k] = yk
		sy += sk * yk
		ss += sk * sk
		yy += yk * yk
	}
	if sy <= 1e-10*math.Sqrt(ss*yy) || sy == 0 {
		return // skip degenerate curvature
	}
	sl.rhoPairs[i] = 1 / sy
	sl.histPos = (sl.histPos + 1) % len(sl.s)
	if sl.histLen < len(sl.s) {
		sl.histLen++
	}
}

// direction computes the two-loop L-BFGS direction into sl.d,
// zeroing components locked at active bounds.
func (sl *lbfgsSolver) direction(x, g []float64) {
	n := sl.p.N
	d := sl.d
	for k := 0; k < n; k++ {
		d[k] = -g[k]
	}
	if sl.histLen > 0 {
		alpha := sl.alpha[:sl.histLen]
		// Newest pair is at histPos-1.
		idx := func(j int) int {
			return ((sl.histPos-1-j)%len(sl.s) + len(sl.s)) % len(sl.s)
		}
		for j := 0; j < sl.histLen; j++ {
			i := idx(j)
			var sd float64
			for k := 0; k < n; k++ {
				sd += sl.s[i][k] * d[k]
			}
			alpha[j] = sl.rhoPairs[i] * sd
			for k := 0; k < n; k++ {
				d[k] -= alpha[j] * sl.y[i][k]
			}
		}
		// Initial Hessian scaling gamma = s.y / y.y of newest pair.
		i := idx(0)
		var sy, yy float64
		for k := 0; k < n; k++ {
			sy += sl.s[i][k] * sl.y[i][k]
			yy += sl.y[i][k] * sl.y[i][k]
		}
		if yy > 0 {
			gamma := sy / yy
			for k := 0; k < n; k++ {
				d[k] *= gamma
			}
		}
		for j := sl.histLen - 1; j >= 0; j-- {
			i := idx(j)
			var yd float64
			for k := 0; k < n; k++ {
				yd += sl.y[i][k] * d[k]
			}
			beta := sl.rhoPairs[i] * yd
			for k := 0; k < n; k++ {
				d[k] += (alpha[j] - beta) * sl.s[i][k]
			}
		}
	}
	// Respect active bounds: a variable pinned at a bound with the
	// direction pointing outward stays pinned this iteration.
	for k := 0; k < n; k++ {
		if x[k] <= sl.p.lower(k)+1e-12 && d[k] < 0 {
			d[k] = 0
		}
		if x[k] >= sl.p.upper(k)-1e-12 && d[k] > 0 {
			d[k] = 0
		}
	}
}

func (sl *lbfgsSolver) minimize(x []float64, tol float64) (int, float64) {
	sl.reset()
	st := sl.st
	phi := st.merit(x, sl.grad)
	pg := projGradNorm(sl.p, x, sl.grad)
	iters := 0
	for ; iters < sl.opt.MaxInner && pg > tol; iters++ {
		if st.stop() {
			break
		}
		sl.direction(x, sl.grad)
		// Directional derivative along the projected direction.
		var gd float64
		for k := range x {
			gd += sl.grad[k] * sl.d[k]
		}
		if gd >= 0 {
			// Quasi-Newton direction failed; steepest descent.
			sl.reset()
			gd = 0
			for k := range x {
				sl.d[k] = -sl.grad[k]
				if x[k] <= sl.p.lower(k)+1e-12 && sl.d[k] < 0 {
					sl.d[k] = 0
				}
				if x[k] >= sl.p.upper(k)-1e-12 && sl.d[k] > 0 {
					sl.d[k] = 0
				}
				gd += sl.grad[k] * sl.d[k]
			}
			if gd >= 0 {
				break // projected gradient is zero: at a KKT point
			}
		}
		phiNew, ok := sl.lineSearch(x, phi, gd)
		if !ok {
			if sl.histLen > 0 {
				// Drop stale curvature and retry from scratch once.
				sl.reset()
				continue
			}
			break
		}
		sl.push(x, sl.xNew, sl.grad, sl.gNew)
		copy(x, sl.xNew)
		copy(sl.grad, sl.gNew)
		phi = phiNew
		pg = projGradNorm(sl.p, x, sl.grad)
		if st.rec != nil {
			st.rec.Event("lbfgs", "iter",
				telemetry.I("outer", st.outer),
				telemetry.I("iter", iters+1),
				telemetry.F("phi", phi),
				telemetry.F("pg", pg),
				telemetry.I("hist", sl.histLen),
			)
		}
	}
	return iters, pg
}

// lineSearch backtracks along the projected path from x in direction
// sl.d, writing the accepted point into sl.xNew and its gradient into
// sl.gNew. It returns the new merit value and whether a point
// satisfying the Armijo condition was found.
func (sl *lbfgsSolver) lineSearch(x []float64, phi, gd float64) (float64, bool) {
	return projectedArmijo(sl.p, sl.st, x, sl.grad, sl.d, sl.xNew, sl.gNew, phi, gd)
}

// projectedArmijo backtracks along the projected path
// x(alpha) = Proj(x + alpha*d), writing the accepted point and its
// merit gradient into xNew / gNew. The Armijo decrease reference uses
// the actual displacement times the gradient, which stays valid when
// projection shortens the step; gd (= grad . d) is the fallback for
// fully interior steps. A step that projection reduces to no movement
// is rejected — it cannot make progress.
//
// A trial whose merit or gradient evaluates non-finite (st.finite,
// screened in the merit fold) is treated exactly like a failed Armijo
// test: the step is halved and retried. This is the first line of
// non-finite recovery — a transient NaN/Inf is backtracked away from
// before it can be accepted into the iterate or the curvature history.
func projectedArmijo(p *Problem, st *almState, x, grad, d, xNew, gNew []float64, phi, gd float64) (float64, bool) {
	const (
		c1          = 1e-4
		maxHalvings = 30
	)
	alpha := 1.0
	for try := 0; try < maxHalvings; try++ {
		for k := range x {
			xNew[k] = x[k] + alpha*d[k]
		}
		p.project(xNew)
		phiNew := st.merit(xNew, gNew)
		if st.finite {
			var ref float64
			for k := range x {
				ref += grad[k] * (xNew[k] - x[k])
			}
			if ref > 0 {
				ref = alpha * gd
			}
			if phiNew <= phi+c1*ref {
				for k := range x {
					if xNew[k] != x[k] {
						return phiNew, true
					}
				}
				return phi, false
			}
		}
		alpha *= 0.5
	}
	return phi, false
}
