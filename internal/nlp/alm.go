package nlp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/telemetry"
)

// Method selects the inner bound-constrained minimizer.
type Method int

// Inner solver methods.
const (
	// LBFGS is a projected limited-memory BFGS method needing only
	// first derivatives.
	LBFGS Method = iota
	// NewtonCG is a truncated Newton conjugate-gradient method using
	// exact element Hessians, the LANCELOT-style second-order path.
	NewtonCG
	// ProjGrad is projected steepest descent with Armijo backtracking:
	// the slowest but most robust inner method, and the bottom rung of
	// the degradation ladder. It never consults curvature, so no
	// history can be poisoned by a transient numerical failure.
	ProjGrad
)

func (m Method) String() string {
	switch m {
	case LBFGS:
		return "lbfgs"
	case NewtonCG:
		return "newton-cg"
	case ProjGrad:
		return "projgrad"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Ladder returns the degradation ladder the solver walks when started
// at m: rung 0 is m itself, each later rung strictly more conservative.
// Supervisors resuming a NumericalFailure from a checkpoint consult it
// to step the Checkpoint.Rung down explicitly.
func Ladder(m Method) []Method { return ladderFor(m) }

// ladderFor returns the degradation ladder starting at m: each rung is
// strictly more conservative than the one before it.
func ladderFor(m Method) []Method {
	switch m {
	case NewtonCG:
		return []Method{NewtonCG, LBFGS, ProjGrad}
	case LBFGS:
		return []Method{LBFGS, ProjGrad}
	default:
		return []Method{ProjGrad}
	}
}

// Options tunes the solver. The zero value is usable: it selects
// LBFGS with the default tolerances.
type Options struct {
	Method Method
	// TolGrad is the convergence threshold on the projected gradient
	// infinity norm (default 1e-6).
	TolGrad float64
	// TolCon is the feasibility threshold on the constraint infinity
	// norm (default 1e-6).
	TolCon float64
	// MaxOuter bounds augmented-Lagrangian outer iterations
	// (default 50).
	MaxOuter int
	// MaxInner bounds iterations per inner minimization
	// (default 500).
	MaxInner int
	// RhoInit is the initial penalty parameter (default 10).
	RhoInit float64
	// RhoMax caps the penalty parameter (default 1e9).
	RhoMax float64
	// Memory is the number of L-BFGS correction pairs (default 10).
	Memory int
	// Workers bounds the worker goroutines of the element evaluation
	// engine: <= 0 uses one per CPU, 1 forces serial evaluation.
	// Results are bit-for-bit identical for every worker count — the
	// engine folds all accumulations in serial element order. When
	// Workers permits parallelism (and the problem has at least
	// engineMinElements elements), Eval/Grad/Hess callbacks of
	// *distinct* elements may run concurrently, so elements must not
	// share mutable state; one element's callbacks are never invoked
	// concurrently with each other.
	Workers int
	// RecoveryBudget bounds the automatic non-finite recovery attempts
	// per ladder rung (default 5). When a merit or gradient evaluation
	// at an accepted iterate turns out NaN/Inf, the solver restores the
	// last finite iterate, relaxes the penalty and retries; once the
	// budget is exhausted it steps down the degradation ladder, and
	// only with no rung left does it return NumericalFailure.
	RecoveryBudget int
	// CheckpointPath, when non-empty, makes the solver serialize its
	// resumable state (iterate, multipliers, penalty, counters) to this
	// file — atomically, via a temp file and rename — every
	// CheckpointEvery completed outer iterations and on cancellation.
	CheckpointPath string
	// CheckpointEvery is the outer-iteration interval between
	// checkpoint writes (default 1).
	CheckpointEvery int
	// Resume, when non-nil, restores the solver state captured by a
	// previous run's checkpoint before iterating. A resumed solve is
	// bit-identical to the uninterrupted one: every Result field except
	// the wall-clock durations matches exactly.
	Resume *Checkpoint
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Recorder, when non-nil, receives solver telemetry: one "alm.outer"
	// event per outer iteration (merit, KKT residual, constraint
	// violation, penalty, step norm), one "lbfgs.iter" / "newton.iter"
	// event per inner iteration, "alm.recover" / "alm.degrade" events
	// from the resilience layer, and the engine's evaluation counters
	// and dispatch timings at the end of the solve. Event content is
	// deterministic: traces are byte-identical for every Workers value.
	// A nil Recorder costs one branch and zero allocations per
	// instrumentation point.
	Recorder telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.TolGrad == 0 {
		o.TolGrad = 1e-6
	}
	if o.TolCon == 0 {
		o.TolCon = 1e-6
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 50
	}
	if o.MaxInner == 0 {
		o.MaxInner = 500
	}
	if o.RhoInit == 0 {
		o.RhoInit = 10
	}
	if o.RhoMax == 0 {
		o.RhoMax = 1e9
	}
	if o.Memory == 0 {
		o.Memory = 10
	}
	if o.RecoveryBudget == 0 {
		o.RecoveryBudget = 5
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// Status reports how the solver terminated.
type Status int

// Solver termination statuses. The integer values are stable: traces
// record them, so new statuses are appended, never reordered.
const (
	// Converged: KKT conditions met to tolerance.
	Converged Status = iota
	// MaxIterations: the outer iteration budget ran out.
	MaxIterations
	// Stalled: no further progress was possible (line-search failure
	// at the final tolerances), the result may still be usable.
	Stalled
	// Cancelled: the context was cancelled mid-solve; X carries the
	// best iterate reached before the cancellation was observed.
	Cancelled
	// DeadlineExceeded: the context deadline passed mid-solve; X
	// carries the best iterate reached before the deadline.
	DeadlineExceeded
	// NumericalFailure: non-finite merit/gradient values persisted
	// through the recovery budget on every rung of the degradation
	// ladder. X carries the last finite iterate.
	NumericalFailure
)

func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterations:
		return "max iterations"
	case Stalled:
		return "stalled"
	case Cancelled:
		return "cancelled"
	case DeadlineExceeded:
		return "deadline exceeded"
	case NumericalFailure:
		return "numerical failure"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Failed reports whether the status means the solve did not run to a
// normal completion: cancelled, past its deadline, or numerically
// broken. The iterate in Result.X is still the best one available.
func (s Status) Failed() bool {
	switch s {
	case Cancelled, DeadlineExceeded, NumericalFailure:
		return true
	}
	return false
}

// Result is the solver output.
type Result struct {
	X      []float64
	F      float64 // objective (not merit) value at X
	Status Status
	// Method is the inner method that produced the final iterate; it
	// differs from Options.Method when the degradation ladder stepped
	// down.
	Method Method
	// Outer and Inner count outer iterations and total inner
	// iterations.
	Outer, Inner int
	// Recoveries counts non-finite recovery events (alm.recover) over
	// the whole solve.
	Recoveries int
	// ProjGradNorm is the final projected-gradient infinity norm of
	// the augmented Lagrangian.
	ProjGradNorm float64
	// MaxViolation is the final constraint violation infinity norm.
	MaxViolation float64
	// LambdaEq and LambdaIneq are the final multiplier estimates.
	LambdaEq, LambdaIneq []float64
	// FuncEvals counts full merit (augmented-Lagrangian) evaluations:
	// each one evaluates every element of the problem exactly once,
	// plus the element gradients when the caller asked for them. It is
	// the paper's "function evaluations" cost measure for the inner
	// solvers.
	FuncEvals int
	// ObjEvals counts raw-objective-only evaluations (objective
	// elements, no constraints): the outer loop's progress logging and
	// the final F report. These were silently uncounted before the
	// counters were split; they are deliberately *not* part of
	// FuncEvals, which would overstate the merit cost.
	ObjEvals int
	// Duration is the total Solve wall time; SetupTime covers
	// validation plus engine/arena construction, InnerTime the time
	// spent inside the inner minimizations. The remainder is the outer
	// loop's own bookkeeping (multiplier updates, telemetry). These are
	// wall-clock measurements and, unlike every other Result field, are
	// not deterministic across runs.
	Duration, SetupTime, InnerTime time.Duration
}

// almState carries the augmented-Lagrangian data shared between the
// outer loop and the inner minimizers. All element evaluation goes
// through the engine, which owns the arena scratch.
type almState struct {
	p        *Problem
	eng      *engine
	rho      float64
	lamEq    []float64
	lamIneq  []float64
	cEq      []float64 // constraint values at the last eval point
	cIneq    []float64
	fnEvals  int
	objEvals int
	// rec is the telemetry sink (nil = disabled); outer is the current
	// outer iteration (1-based), tagged onto inner-solver events.
	rec   telemetry.Recorder
	outer int
	// stack is the coordinating goroutine's span-tree scope stack
	// (nil when rec has no tree sink): nlp.solve > alm.outer >
	// nlp.inner phase attribution with self- vs cumulative-time split.
	stack *telemetry.Stack
	// finite reports whether the last merit evaluation produced only
	// finite values (merit, element values, gradient); badElem is the
	// serial index of the first offending element, -1 when none. Both
	// are refreshed by every merit call.
	finite  bool
	badElem int
	// done is the solve context's cancellation channel (nil when the
	// context cannot be cancelled); stopped latches the first observed
	// cancellation. Polling is a single non-blocking select, so the
	// iteration-boundary checks stay allocation-free.
	done    <-chan struct{}
	stopped bool
}

func newALMState(p *Problem, rho float64, workers int, rec telemetry.Recorder) *almState {
	s := &almState{
		p:       p,
		rho:     rho,
		lamEq:   make([]float64, len(p.EqCons)),
		lamIneq: make([]float64, len(p.IneqCons)),
		cEq:     make([]float64, len(p.EqCons)),
		cIneq:   make([]float64, len(p.IneqCons)),
		rec:     rec,
		stack:   telemetry.NewStack(rec),
		finite:  true,
		badElem: -1,
	}
	s.eng = newEngine(p, s, workers)
	return s
}

// stop reports whether the solve's context has been cancelled. It is
// called at outer- and inner-iteration boundaries only; the engine's
// compute phases always run to their barrier, so a cancelled solve
// still holds a consistent state.
func (s *almState) stop() bool {
	if s.stopped {
		return true
	}
	if s.done == nil {
		return false
	}
	select {
	case <-s.done:
		s.stopped = true
		return true
	default:
		return false
	}
}

// objective returns the raw objective value at x.
func (s *almState) objective(x []float64) float64 {
	s.objEvals++
	e := s.eng
	e.x = x
	e.dispatch(modeObjEval)
	var f float64
	for i := 0; i < e.nObj; i++ {
		f += e.refs[i].val
	}
	return f
}

// merit evaluates the augmented Lagrangian and, when grad is non-nil,
// its gradient (grad is overwritten). Constraint values are cached in
// cEq / cIneq for the outer loop.
//
// The engine computes element values (and then gradients) in parallel;
// the folds below accumulate phi and scatter the gradient in exact
// serial element order, so the result is bit-identical for any worker
// count. The fold also fixes each element's gradient weight w (the ALM
// chain-rule factor), which the gradient dispatch uses to skip
// elements that cannot contribute — inactive inequalities exactly as
// the serial code always did.
//
// The fold doubles as the solver's non-finite guard: every element
// value and the assembled gradient are screened with the x-x != 0
// trick (true exactly for NaN and ±Inf), setting s.finite / s.badElem
// without branching into any allocation.
func (s *almState) merit(x []float64, grad []float64) float64 {
	s.fnEvals++
	s.finite, s.badElem = true, -1
	e := s.eng
	e.x = x
	e.dispatch(modeEval)
	var phi float64
	for i := range e.refs {
		r := &e.refs[i]
		if r.val-r.val != 0 {
			// NaN or ±Inf element value; an inactive inequality would
			// otherwise hide it from phi.
			if s.badElem < 0 {
				s.finite, s.badElem = false, i
			}
		}
		switch r.kind {
		case elObjective:
			phi += r.val
			r.w = 1
		case elEquality:
			c := r.val
			s.cEq[r.ci] = c
			phi += s.lamEq[r.ci]*c + 0.5*s.rho*c*c
			// The ALM gradient weight is lambda + rho*c.
			r.w = s.lamEq[r.ci] + s.rho*c
		case elInequality:
			c := r.val
			s.cIneq[r.ci] = c
			lam := s.lamIneq[r.ci]
			if m := lam + s.rho*c; m > 0 {
				phi += (m*m - lam*lam) / (2 * s.rho)
				r.w = m
			} else {
				phi += -lam * lam / (2 * s.rho)
				r.w = 0
			}
		}
	}
	if phi-phi != 0 {
		s.finite = false
	}
	if grad == nil {
		return phi
	}
	e.dispatch(modeGrad)
	for i := range grad {
		grad[i] = 0
	}
	for i := range e.refs {
		r := &e.refs[i]
		if r.w == 0 {
			continue
		}
		lg := e.slabG[r.off : r.off+r.n]
		for k, v := range r.el.Vars {
			grad[v] += r.w * lg[k]
		}
	}
	// One accumulation pass detects any non-finite gradient entry: a
	// NaN/Inf component makes the sum non-finite (a finite overflow
	// would too, and such a gradient is equally unusable).
	var acc float64
	for _, g := range grad {
		acc += g
	}
	if acc-acc != 0 {
		s.finite = false
	}
	return phi
}

// violation returns the constraint infinity norm at the last merit
// evaluation point (equalities: |c|; inequalities: max(0, c)).
func (s *almState) violation() float64 {
	var v float64
	for _, c := range s.cEq {
		if a := math.Abs(c); a > v {
			v = a
		}
	}
	for _, c := range s.cIneq {
		if c > v {
			v = c
		}
	}
	return v
}

// projGradNorm returns the infinity norm of the projected gradient:
// the gradient with components pointing out of the box zeroed.
func projGradNorm(p *Problem, x, grad []float64) float64 {
	var norm float64
	for i := range x {
		g := grad[i]
		if x[i] <= p.lower(i)+1e-12 && g > 0 {
			continue
		}
		if x[i] >= p.upper(i)-1e-12 && g < 0 {
			continue
		}
		if a := math.Abs(g); a > norm {
			norm = a
		}
	}
	return norm
}

// Solve runs the augmented-Lagrangian method from x0 without a
// cancellation context; see SolveCtx.
func Solve(p *Problem, x0 []float64, opt Options) (*Result, error) {
	return SolveCtx(context.Background(), p, x0, opt)
}

// SolveCtx runs the augmented-Lagrangian method from x0 under ctx.
// Cancellation is polled at outer- and inner-iteration boundaries
// (never mid-evaluation, so the zero-allocation hot paths are
// untouched); a cancelled run returns a Result with the Cancelled or
// DeadlineExceeded status and the best iterate reached, not an error.
func SolveCtx(ctx context.Context, p *Problem, x0 []float64, opt Options) (*Result, error) {
	t0 := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("nlp: x0 has length %d, want %d", len(x0), p.N)
	}
	opt = opt.withDefaults()
	if opt.Method == NewtonCG && !p.HasHessians() {
		return nil, fmt.Errorf("nlp: NewtonCG requires Hessians on every element")
	}

	x := append([]float64(nil), x0...)
	p.project(x)

	st := newALMState(p, opt.RhoInit, opt.Workers, opt.Recorder)
	defer st.eng.close()
	st.done = ctx.Done()
	res := &Result{}
	rec := opt.Recorder
	// xPrev backs the per-outer step norm; allocated only when someone
	// is listening.
	var xPrev []float64
	if rec != nil || opt.Logf != nil {
		xPrev = make([]float64, len(x))
	}
	// xSafe holds the last iterate whose merit evaluated finite: the
	// restore point of the non-finite recovery path.
	xSafe := make([]float64, len(x))
	haveSafe := false

	constrained := len(p.EqCons)+len(p.IneqCons) > 0
	// LANCELOT-style tolerance schedule.
	omega := 1.0 / st.rho // inner gradient tolerance
	eta := math.Pow(st.rho, -0.1)
	if !constrained {
		omega = opt.TolGrad
	}

	// The degradation ladder: rung 0 is the requested method; repeated
	// inner failure or an exhausted recovery budget steps down.
	ladder := ladderFor(opt.Method)
	rung := 0
	failStreak := 0
	recov := 0 // recoveries on the current rung
	makeInner := func(m Method) (innerSolver, error) {
		switch m {
		case LBFGS:
			return newLBFGSSolver(p, st, opt), nil
		case NewtonCG:
			return newNewtonSolver(p, st, opt), nil
		case ProjGrad:
			return newPGSolver(p, st, opt), nil
		default:
			return nil, fmt.Errorf("nlp: unknown method %v", m)
		}
	}

	outerStart := 0
	if ck := opt.Resume; ck != nil {
		if err := ck.validate(p); err != nil {
			return nil, err
		}
		outerStart = ck.Outer
		copy(x, ck.X)
		p.project(x)
		copy(st.lamEq, ck.LamEq)
		copy(st.lamIneq, ck.LamIneq)
		st.rho = ck.Rho
		omega, eta = ck.Omega, ck.Eta
		st.fnEvals, st.objEvals = ck.FuncEvals, ck.ObjEvals
		res.Inner = ck.Inner
		res.Outer = ck.Outer
		res.Recoveries = ck.Recoveries
		recov, failStreak = ck.RungRecoveries, ck.FailStreak
		if ck.Rung > 0 {
			if ck.Rung >= len(ladder) {
				return nil, fmt.Errorf("nlp: checkpoint rung %d exceeds the %v ladder", ck.Rung, opt.Method)
			}
			rung = ck.Rung
		}
		if ck.HaveSafe {
			copy(xSafe, ck.XSafe)
			haveSafe = true
		}
	}

	inner, err := makeInner(ladder[rung])
	if err != nil {
		return nil, err
	}

	// entry snapshots the state at the top of each outer iteration: a
	// boundary-consistent resume point. Interval writes flush it after
	// every CheckpointEvery completed iterations; a cancellation —
	// which can land mid-iteration, where the live state is *not* a
	// valid boundary — flushes the entry snapshot too, so resuming
	// always replays the interrupted iteration in full and the resumed
	// run stays bit-identical to an uninterrupted one.
	var entry *Checkpoint
	if opt.CheckpointPath != "" {
		entry = &Checkpoint{
			X:     make([]float64, len(x)),
			XSafe: make([]float64, len(x)),
			LamEq: make([]float64, len(st.lamEq)), LamIneq: make([]float64, len(st.lamIneq)),
		}
	}
	captureEntry := func(next int) {
		entry.Outer, entry.Inner = next, res.Inner
		entry.FuncEvals, entry.ObjEvals = st.fnEvals, st.objEvals
		entry.Recoveries, entry.RungRecoveries = res.Recoveries, recov
		entry.Rung, entry.FailStreak = rung, failStreak
		entry.Rho, entry.Omega, entry.Eta = st.rho, omega, eta
		copy(entry.X, x)
		copy(entry.XSafe, xSafe)
		copy(entry.LamEq, st.lamEq)
		copy(entry.LamIneq, st.lamIneq)
		entry.HaveSafe = haveSafe
	}

	res.SetupTime = time.Since(t0)
	// The scope stack brackets the whole solve; each outer iteration's
	// scope closes at the top of the next (PopTo handles the body's
	// continue/break exits uniformly).
	st.stack.Push("nlp.solve")
	for outer := outerStart; outer < opt.MaxOuter; outer++ {
		st.stack.PopTo(1)
		st.stack.Push("alm.outer")
		if entry != nil {
			captureEntry(outer)
			if outer > outerStart && (outer-outerStart)%opt.CheckpointEvery == 0 {
				if err := SaveCheckpoint(opt.CheckpointPath, entry); err != nil {
					return nil, err
				}
			}
		}
		if st.stop() {
			break
		}
		res.Outer = outer + 1
		st.outer = outer + 1
		if xPrev != nil {
			copy(xPrev, x)
		}
		tol := math.Max(omega, opt.TolGrad)
		tInner := time.Now()
		st.stack.Push("nlp.inner")
		iters, pg := inner.minimize(x, tol)
		st.stack.Pop()
		res.InnerTime += time.Since(tInner)
		res.Inner += iters
		res.ProjGradNorm = pg

		// Refresh constraint caches at the solution point.
		phi := st.merit(x, nil)
		if !st.finite {
			// Non-finite merit at the accepted iterate: restore the last
			// finite point, relax the penalty, and retry under the
			// recovery budget; an exhausted budget steps down the ladder
			// before giving up with NumericalFailure.
			res.Recoveries++
			recov++
			if rec != nil {
				rec.Event("alm", "recover",
					telemetry.I("iter", outer+1),
					telemetry.I("count", res.Recoveries),
					telemetry.I("elem", st.badElem),
					telemetry.F("rho", st.rho),
				)
			}
			if opt.Logf != nil {
				opt.Logf("outer %d: non-finite merit (element %d), recovery %d",
					outer+1, st.badElem, res.Recoveries)
			}
			if haveSafe {
				copy(x, xSafe)
			}
			if recov > opt.RecoveryBudget {
				if rung+1 < len(ladder) {
					rung++
					recov, failStreak = 0, 0
					if inner, err = makeInner(ladder[rung]); err != nil {
						return nil, err
					}
					if rec != nil {
						rec.Event("alm", "degrade",
							telemetry.I("iter", outer+1),
							telemetry.I("method", int(ladder[rung])),
						)
					}
					if opt.Logf != nil {
						opt.Logf("outer %d: degrading inner solver to %v", outer+1, ladder[rung])
					}
					continue
				}
				res.Status = NumericalFailure
				break
			}
			st.rho = math.Max(opt.RhoInit, st.rho/10)
			omega = 1.0 / st.rho
			eta = math.Pow(st.rho, -0.1)
			if !constrained {
				omega = opt.TolGrad
			}
			continue
		}
		copy(xSafe, x)
		haveSafe = true
		viol := st.violation()
		res.MaxViolation = viol
		if xPrev != nil {
			// One emission point feeds the JSONL trace, the metrics
			// census and the -v verbose log alike; every field is
			// deterministic under the engine's bit-identical-parallelism
			// contract.
			f := st.objective(x)
			var step float64
			for i := range x {
				d := x[i] - xPrev[i]
				step += d * d
			}
			step = math.Sqrt(step)
			if rec != nil {
				rec.Event("alm", "outer",
					telemetry.I("iter", outer+1),
					telemetry.F("merit", phi),
					telemetry.F("kkt", pg),
					telemetry.F("viol", viol),
					telemetry.F("rho", st.rho),
					telemetry.F("step", step),
					telemetry.I("inner", iters),
					telemetry.F("f", f),
				)
			}
			if opt.Logf != nil {
				opt.Logf("outer %d: rho=%.3g viol=%.3g pg=%.3g f=%.8g",
					outer+1, st.rho, viol, pg, f)
			}
		}

		if st.stop() {
			break
		}

		// Degradation ladder on repeated inner failure: an inner solve
		// that cannot take a single step while the projected gradient
		// still exceeds tolerance has broken down (poisoned curvature,
		// non-finite Hessian products); step down to a more conservative
		// method instead of stalling out.
		if iters == 0 && pg > tol {
			failStreak++
			if rung+1 < len(ladder) && (failStreak >= 2 || !constrained) {
				rung++
				recov, failStreak = 0, 0
				if inner, err = makeInner(ladder[rung]); err != nil {
					return nil, err
				}
				if rec != nil {
					rec.Event("alm", "degrade",
						telemetry.I("iter", outer+1),
						telemetry.I("method", int(ladder[rung])),
					)
				}
				if opt.Logf != nil {
					opt.Logf("outer %d: degrading inner solver to %v", outer+1, ladder[rung])
				}
				continue
			}
		} else {
			failStreak = 0
		}

		if !constrained {
			res.Status = Converged
			if pg > opt.TolGrad {
				res.Status = Stalled
			}
			break
		}

		if viol <= math.Max(eta, opt.TolCon) {
			if viol <= opt.TolCon && pg <= opt.TolGrad {
				res.Status = Converged
				break
			}
			// First-order multiplier update.
			for i := range st.lamEq {
				st.lamEq[i] += st.rho * st.cEq[i]
			}
			for i := range st.lamIneq {
				st.lamIneq[i] = math.Max(0, st.lamIneq[i]+st.rho*st.cIneq[i])
			}
			omega /= st.rho
			eta /= math.Pow(st.rho, 0.9)
		} else {
			if st.rho >= opt.RhoMax {
				res.Status = Stalled
				break
			}
			st.rho = math.Min(st.rho*10, opt.RhoMax)
			omega = 1.0 / st.rho
			eta = math.Pow(st.rho, -0.1)
		}
		res.Status = MaxIterations
	}

	st.stack.PopTo(0) // close any open alm.outer scope and nlp.solve

	if st.stopped && res.Status != NumericalFailure {
		res.Status = Cancelled
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			res.Status = DeadlineExceeded
		}
		// Persist the boundary-consistent resume point captured at the
		// top of the interrupted iteration.
		if entry != nil {
			if err := SaveCheckpoint(opt.CheckpointPath, entry); err != nil {
				return nil, err
			}
		}
	}
	if res.Status == NumericalFailure && haveSafe {
		copy(x, xSafe)
	}

	res.X = x
	res.F = st.objective(x)
	res.Method = ladder[rung]
	res.LambdaEq = st.lamEq
	res.LambdaIneq = st.lamIneq
	res.FuncEvals = st.fnEvals
	res.ObjEvals = st.objEvals
	res.Duration = time.Since(t0)
	if rec != nil {
		rec.Event("alm", "done",
			telemetry.I("status", int(res.Status)),
			telemetry.I("outer", res.Outer),
			telemetry.I("inner", res.Inner),
			telemetry.F("f", res.F),
			telemetry.F("kkt", res.ProjGradNorm),
			telemetry.F("viol", res.MaxViolation),
			telemetry.I("fn_evals", res.FuncEvals),
			telemetry.I("obj_evals", res.ObjEvals),
			telemetry.I("recoveries", res.Recoveries),
			telemetry.I("method", int(res.Method)),
		)
		st.eng.publish(rec)
		rec.Span("nlp.solve", res.Duration)
		rec.Span("nlp.inner", res.InnerTime)
		if t := telemetry.TreeOf(rec); t != nil {
			t.AddAt(res.SetupTime, 1, "nlp.solve", "setup")
		}
	}
	return res, nil
}
