package nlp

import (
	"fmt"
	"math"
)

// Method selects the inner bound-constrained minimizer.
type Method int

// Inner solver methods.
const (
	// LBFGS is a projected limited-memory BFGS method needing only
	// first derivatives.
	LBFGS Method = iota
	// NewtonCG is a truncated Newton conjugate-gradient method using
	// exact element Hessians, the LANCELOT-style second-order path.
	NewtonCG
)

func (m Method) String() string {
	switch m {
	case LBFGS:
		return "lbfgs"
	case NewtonCG:
		return "newton-cg"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tunes the solver. The zero value is usable: it selects
// LBFGS with the default tolerances.
type Options struct {
	Method Method
	// TolGrad is the convergence threshold on the projected gradient
	// infinity norm (default 1e-6).
	TolGrad float64
	// TolCon is the feasibility threshold on the constraint infinity
	// norm (default 1e-6).
	TolCon float64
	// MaxOuter bounds augmented-Lagrangian outer iterations
	// (default 50).
	MaxOuter int
	// MaxInner bounds iterations per inner minimization
	// (default 500).
	MaxInner int
	// RhoInit is the initial penalty parameter (default 10).
	RhoInit float64
	// RhoMax caps the penalty parameter (default 1e9).
	RhoMax float64
	// Memory is the number of L-BFGS correction pairs (default 10).
	Memory int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.TolGrad == 0 {
		o.TolGrad = 1e-6
	}
	if o.TolCon == 0 {
		o.TolCon = 1e-6
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 50
	}
	if o.MaxInner == 0 {
		o.MaxInner = 500
	}
	if o.RhoInit == 0 {
		o.RhoInit = 10
	}
	if o.RhoMax == 0 {
		o.RhoMax = 1e9
	}
	if o.Memory == 0 {
		o.Memory = 10
	}
	return o
}

// Status reports how the solver terminated.
type Status int

// Solver termination statuses.
const (
	// Converged: KKT conditions met to tolerance.
	Converged Status = iota
	// MaxIterations: the outer iteration budget ran out.
	MaxIterations
	// Stalled: no further progress was possible (line-search failure
	// at the final tolerances), the result may still be usable.
	Stalled
)

func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterations:
		return "max iterations"
	case Stalled:
		return "stalled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the solver output.
type Result struct {
	X      []float64
	F      float64 // objective (not merit) value at X
	Status Status
	// Outer and Inner count outer iterations and total inner
	// iterations.
	Outer, Inner int
	// ProjGradNorm is the final projected-gradient infinity norm of
	// the augmented Lagrangian.
	ProjGradNorm float64
	// MaxViolation is the final constraint violation infinity norm.
	MaxViolation float64
	// LambdaEq and LambdaIneq are the final multiplier estimates.
	LambdaEq, LambdaIneq []float64
	// FuncEvals counts merit-function evaluations.
	FuncEvals int
}

// almState carries the augmented-Lagrangian data shared between the
// outer loop and the inner minimizers.
type almState struct {
	p        *Problem
	rho      float64
	lamEq    []float64
	lamIneq  []float64
	cEq      []float64 // constraint values at the last eval point
	cIneq    []float64
	localX   []float64 // scratch: local variable gather
	localG   []float64 // scratch: local gradient
	fnEvals  int
	maxLocal int
}

func newALMState(p *Problem, rho float64) *almState {
	maxLocal := 1
	scan := func(el *Element) {
		if len(el.Vars) > maxLocal {
			maxLocal = len(el.Vars)
		}
	}
	for i := range p.Objective {
		scan(&p.Objective[i])
	}
	for i := range p.EqCons {
		scan(&p.EqCons[i].El)
	}
	for i := range p.IneqCons {
		scan(&p.IneqCons[i].El)
	}
	return &almState{
		p:        p,
		rho:      rho,
		lamEq:    make([]float64, len(p.EqCons)),
		lamIneq:  make([]float64, len(p.IneqCons)),
		cEq:      make([]float64, len(p.EqCons)),
		cIneq:    make([]float64, len(p.IneqCons)),
		localX:   make([]float64, maxLocal),
		localG:   make([]float64, maxLocal),
		maxLocal: maxLocal,
	}
}

// objective returns the raw objective value at x.
func (s *almState) objective(x []float64) float64 {
	var f float64
	for i := range s.p.Objective {
		f += evalElement(&s.p.Objective[i], x, s.localX)
	}
	return f
}

// merit evaluates the augmented Lagrangian and, when grad is non-nil,
// its gradient (grad is overwritten). Constraint values are cached in
// cEq / cIneq for the outer loop.
func (s *almState) merit(x []float64, grad []float64) float64 {
	s.fnEvals++
	if grad != nil {
		for i := range grad {
			grad[i] = 0
		}
	}
	var phi float64
	for i := range s.p.Objective {
		el := &s.p.Objective[i]
		if grad != nil {
			phi += gradElement(el, x, 1, grad, s.localX, s.localG)
		} else {
			phi += evalElement(el, x, s.localX)
		}
	}
	for i := range s.p.EqCons {
		el := &s.p.EqCons[i].El
		n := len(el.Vars)
		for k, v := range el.Vars {
			s.localX[k] = x[v]
		}
		c := el.Eval(s.localX[:n])
		s.cEq[i] = c
		phi += s.lamEq[i]*c + 0.5*s.rho*c*c
		if grad != nil {
			// The ALM gradient weight is lambda + rho*c.
			el.Grad(s.localX[:n], s.localG[:n])
			w := s.lamEq[i] + s.rho*c
			for k, v := range el.Vars {
				grad[v] += w * s.localG[k]
			}
		}
	}
	for i := range s.p.IneqCons {
		el := &s.p.IneqCons[i].El
		n := len(el.Vars)
		for k, v := range el.Vars {
			s.localX[k] = x[v]
		}
		c := el.Eval(s.localX[:n])
		s.cIneq[i] = c
		m := s.lamIneq[i] + s.rho*c
		if m > 0 {
			phi += (m*m - s.lamIneq[i]*s.lamIneq[i]) / (2 * s.rho)
			if grad != nil {
				el.Grad(s.localX[:n], s.localG[:n])
				for k, v := range el.Vars {
					grad[v] += m * s.localG[k]
				}
			}
		} else {
			phi += -s.lamIneq[i] * s.lamIneq[i] / (2 * s.rho)
		}
	}
	return phi
}

// violation returns the constraint infinity norm at the last merit
// evaluation point (equalities: |c|; inequalities: max(0, c)).
func (s *almState) violation() float64 {
	var v float64
	for _, c := range s.cEq {
		if a := math.Abs(c); a > v {
			v = a
		}
	}
	for _, c := range s.cIneq {
		if c > v {
			v = c
		}
	}
	return v
}

// projGradNorm returns the infinity norm of the projected gradient:
// the gradient with components pointing out of the box zeroed.
func projGradNorm(p *Problem, x, grad []float64) float64 {
	var norm float64
	for i := range x {
		g := grad[i]
		if x[i] <= p.lower(i)+1e-12 && g > 0 {
			continue
		}
		if x[i] >= p.upper(i)-1e-12 && g < 0 {
			continue
		}
		if a := math.Abs(g); a > norm {
			norm = a
		}
	}
	return norm
}

// Solve runs the augmented-Lagrangian method from x0.
func Solve(p *Problem, x0 []float64, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("nlp: x0 has length %d, want %d", len(x0), p.N)
	}
	opt = opt.withDefaults()
	if opt.Method == NewtonCG && !p.HasHessians() {
		return nil, fmt.Errorf("nlp: NewtonCG requires Hessians on every element")
	}

	x := append([]float64(nil), x0...)
	p.project(x)

	st := newALMState(p, opt.RhoInit)
	res := &Result{}

	constrained := len(p.EqCons)+len(p.IneqCons) > 0
	// LANCELOT-style tolerance schedule.
	omega := 1.0 / st.rho // inner gradient tolerance
	eta := math.Pow(st.rho, -0.1)
	if !constrained {
		omega = opt.TolGrad
	}

	var inner innerSolver
	switch opt.Method {
	case LBFGS:
		inner = newLBFGSSolver(p, st, opt)
	case NewtonCG:
		inner = newNewtonSolver(p, st, opt)
	default:
		return nil, fmt.Errorf("nlp: unknown method %v", opt.Method)
	}

	for outer := 0; outer < opt.MaxOuter; outer++ {
		res.Outer = outer + 1
		tol := math.Max(omega, opt.TolGrad)
		iters, pg := inner.minimize(x, tol)
		res.Inner += iters
		res.ProjGradNorm = pg

		// Refresh constraint caches at the solution point.
		st.merit(x, nil)
		viol := st.violation()
		res.MaxViolation = viol
		if opt.Logf != nil {
			opt.Logf("outer %d: rho=%.3g viol=%.3g pg=%.3g f=%.8g",
				outer+1, st.rho, viol, pg, st.objective(x))
		}

		if !constrained {
			res.Status = Converged
			if pg > opt.TolGrad {
				res.Status = Stalled
			}
			break
		}

		if viol <= math.Max(eta, opt.TolCon) {
			if viol <= opt.TolCon && pg <= opt.TolGrad {
				res.Status = Converged
				break
			}
			// First-order multiplier update.
			for i := range st.lamEq {
				st.lamEq[i] += st.rho * st.cEq[i]
			}
			for i := range st.lamIneq {
				st.lamIneq[i] = math.Max(0, st.lamIneq[i]+st.rho*st.cIneq[i])
			}
			omega /= st.rho
			eta /= math.Pow(st.rho, 0.9)
		} else {
			if st.rho >= opt.RhoMax {
				res.Status = Stalled
				break
			}
			st.rho = math.Min(st.rho*10, opt.RhoMax)
			omega = 1.0 / st.rho
			eta = math.Pow(st.rho, -0.1)
		}
		res.Status = MaxIterations
	}

	res.X = x
	res.F = st.objective(x)
	res.LambdaEq = st.lamEq
	res.LambdaIneq = st.lamIneq
	res.FuncEvals = st.fnEvals
	return res, nil
}
