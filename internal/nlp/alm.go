package nlp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/telemetry"
)

// Method selects the inner bound-constrained minimizer.
type Method int

// Inner solver methods.
const (
	// LBFGS is a projected limited-memory BFGS method needing only
	// first derivatives.
	LBFGS Method = iota
	// NewtonCG is a truncated Newton conjugate-gradient method using
	// exact element Hessians, the LANCELOT-style second-order path.
	NewtonCG
)

func (m Method) String() string {
	switch m {
	case LBFGS:
		return "lbfgs"
	case NewtonCG:
		return "newton-cg"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tunes the solver. The zero value is usable: it selects
// LBFGS with the default tolerances.
type Options struct {
	Method Method
	// TolGrad is the convergence threshold on the projected gradient
	// infinity norm (default 1e-6).
	TolGrad float64
	// TolCon is the feasibility threshold on the constraint infinity
	// norm (default 1e-6).
	TolCon float64
	// MaxOuter bounds augmented-Lagrangian outer iterations
	// (default 50).
	MaxOuter int
	// MaxInner bounds iterations per inner minimization
	// (default 500).
	MaxInner int
	// RhoInit is the initial penalty parameter (default 10).
	RhoInit float64
	// RhoMax caps the penalty parameter (default 1e9).
	RhoMax float64
	// Memory is the number of L-BFGS correction pairs (default 10).
	Memory int
	// Workers bounds the worker goroutines of the element evaluation
	// engine: <= 0 uses one per CPU, 1 forces serial evaluation.
	// Results are bit-for-bit identical for every worker count — the
	// engine folds all accumulations in serial element order. When
	// Workers permits parallelism (and the problem has at least
	// engineMinElements elements), Eval/Grad/Hess callbacks of
	// *distinct* elements may run concurrently, so elements must not
	// share mutable state; one element's callbacks are never invoked
	// concurrently with each other.
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Recorder, when non-nil, receives solver telemetry: one "alm.outer"
	// event per outer iteration (merit, KKT residual, constraint
	// violation, penalty, step norm), one "lbfgs.iter" / "newton.iter"
	// event per inner iteration, and the engine's evaluation counters
	// and dispatch timings at the end of the solve. Event content is
	// deterministic: traces are byte-identical for every Workers value.
	// A nil Recorder costs one branch and zero allocations per
	// instrumentation point.
	Recorder telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.TolGrad == 0 {
		o.TolGrad = 1e-6
	}
	if o.TolCon == 0 {
		o.TolCon = 1e-6
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 50
	}
	if o.MaxInner == 0 {
		o.MaxInner = 500
	}
	if o.RhoInit == 0 {
		o.RhoInit = 10
	}
	if o.RhoMax == 0 {
		o.RhoMax = 1e9
	}
	if o.Memory == 0 {
		o.Memory = 10
	}
	return o
}

// Status reports how the solver terminated.
type Status int

// Solver termination statuses.
const (
	// Converged: KKT conditions met to tolerance.
	Converged Status = iota
	// MaxIterations: the outer iteration budget ran out.
	MaxIterations
	// Stalled: no further progress was possible (line-search failure
	// at the final tolerances), the result may still be usable.
	Stalled
)

func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterations:
		return "max iterations"
	case Stalled:
		return "stalled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the solver output.
type Result struct {
	X      []float64
	F      float64 // objective (not merit) value at X
	Status Status
	// Outer and Inner count outer iterations and total inner
	// iterations.
	Outer, Inner int
	// ProjGradNorm is the final projected-gradient infinity norm of
	// the augmented Lagrangian.
	ProjGradNorm float64
	// MaxViolation is the final constraint violation infinity norm.
	MaxViolation float64
	// LambdaEq and LambdaIneq are the final multiplier estimates.
	LambdaEq, LambdaIneq []float64
	// FuncEvals counts full merit (augmented-Lagrangian) evaluations:
	// each one evaluates every element of the problem exactly once,
	// plus the element gradients when the caller asked for them. It is
	// the paper's "function evaluations" cost measure for the inner
	// solvers.
	FuncEvals int
	// ObjEvals counts raw-objective-only evaluations (objective
	// elements, no constraints): the outer loop's progress logging and
	// the final F report. These were silently uncounted before the
	// counters were split; they are deliberately *not* part of
	// FuncEvals, which would overstate the merit cost.
	ObjEvals int
	// Duration is the total Solve wall time; SetupTime covers
	// validation plus engine/arena construction, InnerTime the time
	// spent inside the inner minimizations. The remainder is the outer
	// loop's own bookkeeping (multiplier updates, telemetry). These are
	// wall-clock measurements and, unlike every other Result field, are
	// not deterministic across runs.
	Duration, SetupTime, InnerTime time.Duration
}

// almState carries the augmented-Lagrangian data shared between the
// outer loop and the inner minimizers. All element evaluation goes
// through the engine, which owns the arena scratch.
type almState struct {
	p        *Problem
	eng      *engine
	rho      float64
	lamEq    []float64
	lamIneq  []float64
	cEq      []float64 // constraint values at the last eval point
	cIneq    []float64
	fnEvals  int
	objEvals int
	// rec is the telemetry sink (nil = disabled); outer is the current
	// outer iteration (1-based), tagged onto inner-solver events.
	rec   telemetry.Recorder
	outer int
}

func newALMState(p *Problem, rho float64, workers int, rec telemetry.Recorder) *almState {
	s := &almState{
		p:       p,
		rho:     rho,
		lamEq:   make([]float64, len(p.EqCons)),
		lamIneq: make([]float64, len(p.IneqCons)),
		cEq:     make([]float64, len(p.EqCons)),
		cIneq:   make([]float64, len(p.IneqCons)),
		rec:     rec,
	}
	s.eng = newEngine(p, s, workers)
	return s
}

// objective returns the raw objective value at x.
func (s *almState) objective(x []float64) float64 {
	s.objEvals++
	e := s.eng
	e.x = x
	e.dispatch(modeObjEval)
	var f float64
	for i := 0; i < e.nObj; i++ {
		f += e.refs[i].val
	}
	return f
}

// merit evaluates the augmented Lagrangian and, when grad is non-nil,
// its gradient (grad is overwritten). Constraint values are cached in
// cEq / cIneq for the outer loop.
//
// The engine computes element values (and then gradients) in parallel;
// the folds below accumulate phi and scatter the gradient in exact
// serial element order, so the result is bit-identical for any worker
// count. The fold also fixes each element's gradient weight w (the ALM
// chain-rule factor), which the gradient dispatch uses to skip
// elements that cannot contribute — inactive inequalities exactly as
// the serial code always did.
func (s *almState) merit(x []float64, grad []float64) float64 {
	s.fnEvals++
	e := s.eng
	e.x = x
	e.dispatch(modeEval)
	var phi float64
	for i := range e.refs {
		r := &e.refs[i]
		switch r.kind {
		case elObjective:
			phi += r.val
			r.w = 1
		case elEquality:
			c := r.val
			s.cEq[r.ci] = c
			phi += s.lamEq[r.ci]*c + 0.5*s.rho*c*c
			// The ALM gradient weight is lambda + rho*c.
			r.w = s.lamEq[r.ci] + s.rho*c
		case elInequality:
			c := r.val
			s.cIneq[r.ci] = c
			lam := s.lamIneq[r.ci]
			if m := lam + s.rho*c; m > 0 {
				phi += (m*m - lam*lam) / (2 * s.rho)
				r.w = m
			} else {
				phi += -lam * lam / (2 * s.rho)
				r.w = 0
			}
		}
	}
	if grad == nil {
		return phi
	}
	e.dispatch(modeGrad)
	for i := range grad {
		grad[i] = 0
	}
	for i := range e.refs {
		r := &e.refs[i]
		if r.w == 0 {
			continue
		}
		lg := e.slabG[r.off : r.off+r.n]
		for k, v := range r.el.Vars {
			grad[v] += r.w * lg[k]
		}
	}
	return phi
}

// violation returns the constraint infinity norm at the last merit
// evaluation point (equalities: |c|; inequalities: max(0, c)).
func (s *almState) violation() float64 {
	var v float64
	for _, c := range s.cEq {
		if a := math.Abs(c); a > v {
			v = a
		}
	}
	for _, c := range s.cIneq {
		if c > v {
			v = c
		}
	}
	return v
}

// projGradNorm returns the infinity norm of the projected gradient:
// the gradient with components pointing out of the box zeroed.
func projGradNorm(p *Problem, x, grad []float64) float64 {
	var norm float64
	for i := range x {
		g := grad[i]
		if x[i] <= p.lower(i)+1e-12 && g > 0 {
			continue
		}
		if x[i] >= p.upper(i)-1e-12 && g < 0 {
			continue
		}
		if a := math.Abs(g); a > norm {
			norm = a
		}
	}
	return norm
}

// Solve runs the augmented-Lagrangian method from x0.
func Solve(p *Problem, x0 []float64, opt Options) (*Result, error) {
	t0 := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("nlp: x0 has length %d, want %d", len(x0), p.N)
	}
	opt = opt.withDefaults()
	if opt.Method == NewtonCG && !p.HasHessians() {
		return nil, fmt.Errorf("nlp: NewtonCG requires Hessians on every element")
	}

	x := append([]float64(nil), x0...)
	p.project(x)

	st := newALMState(p, opt.RhoInit, opt.Workers, opt.Recorder)
	defer st.eng.close()
	res := &Result{}
	rec := opt.Recorder
	// xPrev backs the per-outer step norm; allocated only when someone
	// is listening.
	var xPrev []float64
	if rec != nil || opt.Logf != nil {
		xPrev = make([]float64, len(x))
	}

	constrained := len(p.EqCons)+len(p.IneqCons) > 0
	// LANCELOT-style tolerance schedule.
	omega := 1.0 / st.rho // inner gradient tolerance
	eta := math.Pow(st.rho, -0.1)
	if !constrained {
		omega = opt.TolGrad
	}

	var inner innerSolver
	switch opt.Method {
	case LBFGS:
		inner = newLBFGSSolver(p, st, opt)
	case NewtonCG:
		inner = newNewtonSolver(p, st, opt)
	default:
		return nil, fmt.Errorf("nlp: unknown method %v", opt.Method)
	}

	res.SetupTime = time.Since(t0)
	for outer := 0; outer < opt.MaxOuter; outer++ {
		res.Outer = outer + 1
		st.outer = outer + 1
		if xPrev != nil {
			copy(xPrev, x)
		}
		tol := math.Max(omega, opt.TolGrad)
		tInner := time.Now()
		iters, pg := inner.minimize(x, tol)
		res.InnerTime += time.Since(tInner)
		res.Inner += iters
		res.ProjGradNorm = pg

		// Refresh constraint caches at the solution point.
		phi := st.merit(x, nil)
		viol := st.violation()
		res.MaxViolation = viol
		if xPrev != nil {
			// One emission point feeds the JSONL trace, the metrics
			// census and the -v verbose log alike; every field is
			// deterministic under the engine's bit-identical-parallelism
			// contract.
			f := st.objective(x)
			var step float64
			for i := range x {
				d := x[i] - xPrev[i]
				step += d * d
			}
			step = math.Sqrt(step)
			if rec != nil {
				rec.Event("alm", "outer",
					telemetry.I("iter", outer+1),
					telemetry.F("merit", phi),
					telemetry.F("kkt", pg),
					telemetry.F("viol", viol),
					telemetry.F("rho", st.rho),
					telemetry.F("step", step),
					telemetry.I("inner", iters),
					telemetry.F("f", f),
				)
			}
			if opt.Logf != nil {
				opt.Logf("outer %d: rho=%.3g viol=%.3g pg=%.3g f=%.8g",
					outer+1, st.rho, viol, pg, f)
			}
		}

		if !constrained {
			res.Status = Converged
			if pg > opt.TolGrad {
				res.Status = Stalled
			}
			break
		}

		if viol <= math.Max(eta, opt.TolCon) {
			if viol <= opt.TolCon && pg <= opt.TolGrad {
				res.Status = Converged
				break
			}
			// First-order multiplier update.
			for i := range st.lamEq {
				st.lamEq[i] += st.rho * st.cEq[i]
			}
			for i := range st.lamIneq {
				st.lamIneq[i] = math.Max(0, st.lamIneq[i]+st.rho*st.cIneq[i])
			}
			omega /= st.rho
			eta /= math.Pow(st.rho, 0.9)
		} else {
			if st.rho >= opt.RhoMax {
				res.Status = Stalled
				break
			}
			st.rho = math.Min(st.rho*10, opt.RhoMax)
			omega = 1.0 / st.rho
			eta = math.Pow(st.rho, -0.1)
		}
		res.Status = MaxIterations
	}

	res.X = x
	res.F = st.objective(x)
	res.LambdaEq = st.lamEq
	res.LambdaIneq = st.lamIneq
	res.FuncEvals = st.fnEvals
	res.ObjEvals = st.objEvals
	res.Duration = time.Since(t0)
	if rec != nil {
		rec.Event("alm", "done",
			telemetry.I("status", int(res.Status)),
			telemetry.I("outer", res.Outer),
			telemetry.I("inner", res.Inner),
			telemetry.F("f", res.F),
			telemetry.F("kkt", res.ProjGradNorm),
			telemetry.F("viol", res.MaxViolation),
			telemetry.I("fn_evals", res.FuncEvals),
			telemetry.I("obj_evals", res.ObjEvals),
		)
		st.eng.publish(rec)
		rec.Span("nlp.solve", res.Duration)
		rec.Span("nlp.inner", res.InnerTime)
	}
	return res, nil
}
