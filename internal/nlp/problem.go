// Package nlp implements a large-scale nonlinear programming solver in
// the algorithm family of LANCELOT (Conn, Gould & Toint), the package
// the paper uses to solve its gate-sizing formulations: an augmented
// Lagrangian outer loop over bound-constrained inner minimizations,
// with problems expressed in group-partially-separable form — the
// objective and every constraint are sums of small *element functions*
// that each touch only a few variables, so gradients and Hessians stay
// sparse at any scale.
//
// Two inner solvers are provided: a projected limited-memory BFGS
// method (robust default, first derivatives only) and a truncated
// Newton conjugate-gradient method using exact element Hessians (the
// LANCELOT-style second-order path the paper's analytical derivatives
// enable). Go has no established nonlinear-optimization ecosystem, so
// this package is a first-class substrate of the reproduction.
package nlp

import (
	"errors"
	"fmt"
	"math"
)

// Element is a function of a small subset of the problem variables.
// Eval, Grad and Hess all receive the *local* variable vector x with
// x[k] holding the value of problem variable Vars[k].
//
// When the solver runs with Options.Workers permitting parallelism,
// callbacks of *distinct* elements may be invoked concurrently, so
// they must not share mutable state (pure closures over immutable
// captures are ideal; a private scratch buffer per element is fine).
// One element's own callbacks are never run concurrently with each
// other.
type Element struct {
	// Vars lists the problem-variable indices the element touches.
	Vars []int
	// Eval returns the element value at the local point.
	Eval func(x []float64) float64
	// Grad writes the local gradient into g (len(g) == len(Vars)).
	Grad func(x []float64, g []float64)
	// Hess, if non-nil, writes the local dense Hessian into h
	// (row-major, len(Vars) x len(Vars), symmetric). Elements without
	// Hess restrict the solver to first-order inner methods.
	Hess func(x []float64, h [][]float64)
}

// Constraint is a named scalar constraint built from one element.
// Equality constraints require c(x) = 0; inequality constraints
// require c(x) <= 0.
type Constraint struct {
	Name string
	El   Element
}

// Problem is a nonlinear program
//
//	minimize    sum of objective elements
//	subject to  c_eq(x)  = 0
//	            c_ineq(x) <= 0
//	            Lower <= x <= Upper
type Problem struct {
	N         int
	Lower     []float64 // nil means -inf everywhere
	Upper     []float64 // nil means +inf everywhere
	Objective []Element
	EqCons    []Constraint
	IneqCons  []Constraint
}

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("nlp: problem has %d variables", p.N)
	}
	if p.Lower != nil && len(p.Lower) != p.N {
		return fmt.Errorf("nlp: lower bounds have length %d, want %d", len(p.Lower), p.N)
	}
	if p.Upper != nil && len(p.Upper) != p.N {
		return fmt.Errorf("nlp: upper bounds have length %d, want %d", len(p.Upper), p.N)
	}
	if p.Lower != nil && p.Upper != nil {
		for i := range p.Lower {
			if p.Lower[i] > p.Upper[i] {
				return fmt.Errorf("nlp: bounds cross at variable %d: [%v, %v]",
					i, p.Lower[i], p.Upper[i])
			}
		}
	}
	if len(p.Objective) == 0 {
		return errors.New("nlp: problem has no objective elements")
	}
	check := func(what string, k int, el Element) error {
		if el.Eval == nil || el.Grad == nil {
			return fmt.Errorf("nlp: %s %d lacks Eval or Grad", what, k)
		}
		if len(el.Vars) == 0 {
			return fmt.Errorf("nlp: %s %d touches no variables", what, k)
		}
		for _, v := range el.Vars {
			if v < 0 || v >= p.N {
				return fmt.Errorf("nlp: %s %d references variable %d out of range", what, k, v)
			}
		}
		return nil
	}
	for k, el := range p.Objective {
		if err := check("objective element", k, el); err != nil {
			return err
		}
	}
	for k, c := range p.EqCons {
		if err := check("equality constraint", k, c.El); err != nil {
			return err
		}
	}
	for k, c := range p.IneqCons {
		if err := check("inequality constraint", k, c.El); err != nil {
			return err
		}
	}
	return nil
}

// HasHessians reports whether every element supplies a Hessian, the
// precondition for the Newton inner solver.
func (p *Problem) HasHessians() bool {
	for _, el := range p.Objective {
		if el.Hess == nil {
			return false
		}
	}
	for _, c := range p.EqCons {
		if c.El.Hess == nil {
			return false
		}
	}
	for _, c := range p.IneqCons {
		if c.El.Hess == nil {
			return false
		}
	}
	return true
}

// lower/upper return effective bounds, treating nil as unbounded.
func (p *Problem) lower(i int) float64 {
	if p.Lower == nil {
		return math.Inf(-1)
	}
	return p.Lower[i]
}

func (p *Problem) upper(i int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[i]
}

// project clips x into the bound box in place.
func (p *Problem) project(x []float64) {
	for i := range x {
		if lo := p.lower(i); x[i] < lo {
			x[i] = lo
		}
		if hi := p.upper(i); x[i] > hi {
			x[i] = hi
		}
	}
}

// LinearElement returns an element computing sum_k coeffs[k] *
// x[vars[k]] + constant, with exact (constant) derivatives.
func LinearElement(vars []int, coeffs []float64, constant float64) Element {
	if len(vars) != len(coeffs) {
		panic("nlp: LinearElement vars/coeffs length mismatch")
	}
	c := append([]float64(nil), coeffs...)
	return Element{
		Vars: vars,
		Eval: func(x []float64) float64 {
			s := constant
			for k := range c {
				s += c[k] * x[k]
			}
			return s
		},
		Grad: func(_ []float64, g []float64) {
			copy(g, c)
		},
		Hess: func(_ []float64, h [][]float64) {
			for i := range c {
				for j := range c {
					h[i][j] = 0
				}
			}
		},
	}
}

// SquareElement returns an element computing 0.5 * w * x[v]^2.
func SquareElement(v int, w float64) Element {
	return Element{
		Vars: []int{v},
		Eval: func(x []float64) float64 { return 0.5 * w * x[0] * x[0] },
		Grad: func(x []float64, g []float64) { g[0] = w * x[0] },
		Hess: func(_ []float64, h [][]float64) { h[0][0] = w },
	}
}
