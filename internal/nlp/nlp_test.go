package nlp

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

var methods = []Method{LBFGS, NewtonCG}

// quadratic returns 0.5*sum w_i (x_i - c_i)^2 as a Problem.
func quadratic(w, c []float64) *Problem {
	n := len(w)
	els := make([]Element, n)
	for i := range els {
		i := i
		els[i] = Element{
			Vars: []int{i},
			Eval: func(x []float64) float64 { d := x[0] - c[i]; return 0.5 * w[i] * d * d },
			Grad: func(x []float64, g []float64) { g[0] = w[i] * (x[0] - c[i]) },
			Hess: func(_ []float64, h [][]float64) { h[0][0] = w[i] },
		}
	}
	return &Problem{N: n, Objective: els}
}

// rosenbrock builds the classic banana function as two elements per
// coordinate pair (fully separable groups, LANCELOT style).
func rosenbrock(n int) *Problem {
	var els []Element
	for i := 0; i+1 < n; i++ {
		i := i
		els = append(els, Element{
			Vars: []int{i, i + 1},
			Eval: func(x []float64) float64 {
				a := x[1] - x[0]*x[0]
				b := 1 - x[0]
				return 100*a*a + b*b
			},
			Grad: func(x []float64, g []float64) {
				a := x[1] - x[0]*x[0]
				g[0] = -400*a*x[0] - 2*(1-x[0])
				g[1] = 200 * a
			},
			Hess: func(x []float64, h [][]float64) {
				h[0][0] = -400*(x[1]-3*x[0]*x[0]) + 2
				h[0][1] = -400 * x[0]
				h[1][0] = -400 * x[0]
				h[1][1] = 200
			},
		})
	}
	return &Problem{N: n, Objective: els}
}

func TestValidate(t *testing.T) {
	good := quadratic([]float64{1}, []float64{0})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{N: 0},
		{N: 1},
		{N: 1, Objective: []Element{{Vars: []int{0}}}},                             // no Eval/Grad
		{N: 1, Objective: []Element{{Vars: []int{5}, Eval: dummyF, Grad: dummyG}}}, // var out of range
		{N: 1, Objective: []Element{{Vars: nil, Eval: dummyF, Grad: dummyG}}},      // no vars
		{N: 2, Lower: []float64{0}, Objective: []Element{{Vars: []int{0}, Eval: dummyF, Grad: dummyG}}},
		{N: 1, Lower: []float64{1}, Upper: []float64{0},
			Objective: []Element{{Vars: []int{0}, Eval: dummyF, Grad: dummyG}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func dummyF([]float64) float64    { return 0 }
func dummyG([]float64, []float64) {}

func TestSolveRejectsBadX0(t *testing.T) {
	p := quadratic([]float64{1}, []float64{0})
	if _, err := Solve(p, []float64{1, 2}, Options{}); err == nil {
		t.Error("wrong x0 length accepted")
	}
}

func TestNewtonRequiresHessians(t *testing.T) {
	p := &Problem{N: 1, Objective: []Element{{
		Vars: []int{0},
		Eval: func(x []float64) float64 { return x[0] * x[0] },
		Grad: func(x []float64, g []float64) { g[0] = 2 * x[0] },
	}}}
	if _, err := Solve(p, []float64{1}, Options{Method: NewtonCG}); err == nil {
		t.Error("NewtonCG without Hessians accepted")
	}
	// LBFGS is fine.
	if _, err := Solve(p, []float64{1}, Options{Method: LBFGS}); err != nil {
		t.Errorf("LBFGS rejected: %v", err)
	}
}

func TestUnconstrainedQuadratic(t *testing.T) {
	w := []float64{1, 4, 0.5, 10}
	c := []float64{1, -2, 3, 0.5}
	for _, m := range methods {
		p := quadratic(w, c)
		r, err := Solve(p, make([]float64, 4), Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Converged {
			t.Errorf("%v: status %v", m, r.Status)
		}
		for i := range c {
			if !approx(r.X[i], c[i], 1e-5) {
				t.Errorf("%v: x[%d] = %v, want %v", m, i, r.X[i], c[i])
			}
		}
	}
}

func TestRosenbrock(t *testing.T) {
	for _, m := range methods {
		p := rosenbrock(6)
		x0 := make([]float64, 6)
		for i := range x0 {
			x0[i] = -1.2
		}
		r, err := Solve(p, x0, Options{Method: m, MaxInner: 3000})
		if err != nil {
			t.Fatal(err)
		}
		for i := range r.X {
			if !approx(r.X[i], 1, 1e-4) {
				t.Errorf("%v: x[%d] = %v, want 1 (status %v, pg %v)",
					m, i, r.X[i], r.Status, r.ProjGradNorm)
			}
		}
	}
}

func TestBoundedQuadratic(t *testing.T) {
	// Unconstrained minimum at (1, -2, 3, 0.5); box forces some
	// variables onto the bounds.
	w := []float64{1, 4, 0.5, 10}
	c := []float64{1, -2, 3, 0.5}
	lower := []float64{0, 0, 0, 0}
	upper := []float64{2, 2, 2, 2}
	want := []float64{1, 0, 2, 0.5}
	for _, m := range methods {
		p := quadratic(w, c)
		p.Lower = lower
		p.Upper = upper
		r, err := Solve(p, []float64{1, 1, 1, 1}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !approx(r.X[i], want[i], 1e-5) {
				t.Errorf("%v: x[%d] = %v, want %v", m, i, r.X[i], want[i])
			}
		}
	}
}

func TestX0ProjectedIntoBox(t *testing.T) {
	p := quadratic([]float64{1}, []float64{5})
	p.Lower = []float64{0}
	p.Upper = []float64{2}
	r, err := Solve(p, []float64{-100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 2, 1e-8) {
		t.Errorf("x = %v, want 2", r.X[0])
	}
}

// hs6 is Hock-Schittkowski problem 6:
// min (1-x1)^2 s.t. 10(x2 - x1^2) = 0; solution (1, 1).
func hs6() *Problem {
	return &Problem{
		N: 2,
		Objective: []Element{{
			Vars: []int{0},
			Eval: func(x []float64) float64 { d := 1 - x[0]; return d * d },
			Grad: func(x []float64, g []float64) { g[0] = -2 * (1 - x[0]) },
			Hess: func(_ []float64, h [][]float64) { h[0][0] = 2 },
		}},
		EqCons: []Constraint{{
			Name: "parabola",
			El: Element{
				Vars: []int{0, 1},
				Eval: func(x []float64) float64 { return 10 * (x[1] - x[0]*x[0]) },
				Grad: func(x []float64, g []float64) { g[0] = -20 * x[0]; g[1] = 10 },
				Hess: func(_ []float64, h [][]float64) {
					h[0][0] = -20
					h[0][1], h[1][0], h[1][1] = 0, 0, 0
				},
			},
		}},
	}
}

func TestEqualityConstrainedHS6(t *testing.T) {
	for _, m := range methods {
		r, err := Solve(hs6(), []float64{-1.2, 1}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.X[0], 1, 1e-4) || !approx(r.X[1], 1, 1e-4) {
			t.Errorf("%v: x = %v, want (1,1); status %v viol %v",
				m, r.X, r.Status, r.MaxViolation)
		}
		if r.MaxViolation > 1e-5 {
			t.Errorf("%v: violation %v", m, r.MaxViolation)
		}
	}
}

func TestInequalityConstrained(t *testing.T) {
	// min x1^2 + x2^2 s.t. x1 + x2 >= 1  -> (0.5, 0.5), lambda = 1.
	for _, m := range methods {
		p := &Problem{
			N: 2,
			Objective: []Element{
				SquareElement(0, 2),
				SquareElement(1, 2),
			},
			IneqCons: []Constraint{{
				Name: "halfplane",
				El:   LinearElement([]int{0, 1}, []float64{-1, -1}, 1),
			}},
		}
		r, err := Solve(p, []float64{-3, 5}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.X[0], 0.5, 1e-4) || !approx(r.X[1], 0.5, 1e-4) {
			t.Errorf("%v: x = %v, want (0.5, 0.5)", m, r.X)
		}
		if !approx(r.LambdaIneq[0], 1, 1e-3) {
			t.Errorf("%v: multiplier = %v, want 1", m, r.LambdaIneq[0])
		}
	}
}

func TestInactiveInequalityIgnored(t *testing.T) {
	// min (x-1)^2 s.t. x <= 10: constraint inactive, solution x = 1.
	for _, m := range methods {
		p := quadratic([]float64{2}, []float64{1})
		p.IneqCons = []Constraint{{
			Name: "loose",
			El:   LinearElement([]int{0}, []float64{1}, -10),
		}}
		r, err := Solve(p, []float64{5}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.X[0], 1, 1e-5) {
			t.Errorf("%v: x = %v, want 1", m, r.X[0])
		}
		if !approx(r.LambdaIneq[0], 0, 1e-6) {
			t.Errorf("%v: inactive multiplier = %v", m, r.LambdaIneq[0])
		}
	}
}

// hs71-style: min x1*x4*(x1+x2+x3)+x3
// s.t. x1*x2*x3*x4 >= 25, x1^2+x2^2+x3^2+x4^2 = 40, 1 <= x <= 5.
// Known solution (1, 4.743, 3.8211..., 1.3794...), f* = 17.014.
func hs71() *Problem {
	return &Problem{
		N:     4,
		Lower: []float64{1, 1, 1, 1},
		Upper: []float64{5, 5, 5, 5},
		Objective: []Element{{
			Vars: []int{0, 1, 2, 3},
			Eval: func(x []float64) float64 {
				return x[0]*x[3]*(x[0]+x[1]+x[2]) + x[2]
			},
			Grad: func(x []float64, g []float64) {
				g[0] = x[3]*(x[0]+x[1]+x[2]) + x[0]*x[3]
				g[1] = x[0] * x[3]
				g[2] = x[0]*x[3] + 1
				g[3] = x[0] * (x[0] + x[1] + x[2])
			},
			Hess: func(x []float64, h [][]float64) {
				for i := range h {
					for j := range h[i] {
						h[i][j] = 0
					}
				}
				h[0][0] = 2 * x[3]
				h[0][1], h[1][0] = x[3], x[3]
				h[0][2], h[2][0] = x[3], x[3]
				h[0][3], h[3][0] = 2*x[0]+x[1]+x[2], 2*x[0]+x[1]+x[2]
				h[1][3], h[3][1] = x[0], x[0]
				h[2][3], h[3][2] = x[0], x[0]
			},
		}},
		IneqCons: []Constraint{{
			Name: "product",
			El: Element{
				Vars: []int{0, 1, 2, 3},
				Eval: func(x []float64) float64 { return 25 - x[0]*x[1]*x[2]*x[3] },
				Grad: func(x []float64, g []float64) {
					g[0] = -x[1] * x[2] * x[3]
					g[1] = -x[0] * x[2] * x[3]
					g[2] = -x[0] * x[1] * x[3]
					g[3] = -x[0] * x[1] * x[2]
				},
				Hess: func(x []float64, h [][]float64) {
					for i := range h {
						for j := range h[i] {
							h[i][j] = 0
						}
					}
					h[0][1], h[1][0] = -x[2]*x[3], -x[2]*x[3]
					h[0][2], h[2][0] = -x[1]*x[3], -x[1]*x[3]
					h[0][3], h[3][0] = -x[1]*x[2], -x[1]*x[2]
					h[1][2], h[2][1] = -x[0]*x[3], -x[0]*x[3]
					h[1][3], h[3][1] = -x[0]*x[2], -x[0]*x[2]
					h[2][3], h[3][2] = -x[0]*x[1], -x[0]*x[1]
				},
			},
		}},
		EqCons: []Constraint{{
			Name: "sphere",
			El: Element{
				Vars: []int{0, 1, 2, 3},
				Eval: func(x []float64) float64 {
					return x[0]*x[0] + x[1]*x[1] + x[2]*x[2] + x[3]*x[3] - 40
				},
				Grad: func(x []float64, g []float64) {
					for i := range g {
						g[i] = 2 * x[i]
					}
				},
				Hess: func(_ []float64, h [][]float64) {
					for i := range h {
						for j := range h[i] {
							h[i][j] = 0
						}
						h[i][i] = 2
					}
				},
			},
		}},
	}
}

func TestHS71(t *testing.T) {
	want := []float64{1, 4.7429994, 3.8211503, 1.3794082}
	for _, m := range methods {
		r, err := Solve(hs71(), []float64{1, 5, 5, 1}, Options{Method: m, MaxInner: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.F, 17.0140173, 1e-3) {
			t.Errorf("%v: f = %v, want 17.014 (status %v)", m, r.F, r.Status)
		}
		for i := range want {
			if !approx(r.X[i], want[i], 1e-2) {
				t.Errorf("%v: x[%d] = %v, want %v", m, i, r.X[i], want[i])
			}
		}
		if r.MaxViolation > 1e-5 {
			t.Errorf("%v: violation %v", m, r.MaxViolation)
		}
	}
}

func TestLargeSeparableProblem(t *testing.T) {
	// 2000 variables, separable quartic with a coupling equality
	// constraint sum x_i = n/2; solvable quickly by both methods.
	const n = 2000
	els := make([]Element, n)
	for i := range els {
		els[i] = Element{
			Vars: []int{i},
			Eval: func(x []float64) float64 {
				d := x[0] - 1
				return d*d + 0.1*d*d*d*d
			},
			Grad: func(x []float64, g []float64) {
				d := x[0] - 1
				g[0] = 2*d + 0.4*d*d*d
			},
			Hess: func(x []float64, h [][]float64) {
				d := x[0] - 1
				h[0][0] = 2 + 1.2*d*d
			},
		}
	}
	vars := make([]int, n)
	coeffs := make([]float64, n)
	for i := range vars {
		vars[i] = i
		coeffs[i] = 1
	}
	p := &Problem{
		N:         n,
		Objective: els,
		EqCons:    []Constraint{{Name: "sum", El: LinearElement(vars, coeffs, -n/2.0)}},
	}
	for _, m := range methods {
		x0 := make([]float64, n)
		r, err := Solve(p, x0, Options{Method: m, MaxInner: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxViolation > 1e-5 {
			t.Errorf("%v: violation %v", m, r.MaxViolation)
		}
		// By symmetry every x_i is n/2 / n = 0.5.
		for i := 0; i < n; i += 197 {
			if !approx(r.X[i], 0.5, 1e-3) {
				t.Errorf("%v: x[%d] = %v, want 0.5", m, i, r.X[i])
			}
		}
	}
}

func TestMaximizeViaNegation(t *testing.T) {
	// max -(x-3)^2 as min (x-3)^2 with an equality pinning context:
	// sanity that Stalled/Converged statuses behave and F reports the
	// raw objective.
	p := quadratic([]float64{2}, []float64{3})
	r, err := Solve(p, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.F, 0, 1e-8) {
		t.Errorf("F = %v", r.F)
	}
}

func TestLinearElement(t *testing.T) {
	el := LinearElement([]int{0, 3}, []float64{2, -1}, 5)
	x := []float64{1.5, 7}
	if got := el.Eval(x); !approx(got, 2*1.5-7+5, 1e-15) {
		t.Errorf("Eval = %v", got)
	}
	g := make([]float64, 2)
	el.Grad(x, g)
	if g[0] != 2 || g[1] != -1 {
		t.Errorf("Grad = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	LinearElement([]int{0}, []float64{1, 2}, 0)
}

func TestMethodAndStatusStrings(t *testing.T) {
	if LBFGS.String() != "lbfgs" || NewtonCG.String() != "newton-cg" {
		t.Error("method strings")
	}
	if Converged.String() != "converged" || Stalled.String() != "stalled" {
		t.Error("status strings")
	}
	if MaxIterations.String() != "max iterations" {
		t.Error("max iterations string")
	}
}

func TestFuncEvalsCounted(t *testing.T) {
	p := rosenbrock(2)
	r, err := Solve(p, []float64{-1.2, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.FuncEvals < 10 {
		t.Errorf("FuncEvals = %d, suspiciously few", r.FuncEvals)
	}
}

func TestEqualityWithBounds(t *testing.T) {
	// min x1 + x2 s.t. x1*x2 = 4, 1 <= x <= 10. Optimum at x1=x2=2.
	for _, m := range methods {
		p := &Problem{
			N:         2,
			Lower:     []float64{1, 1},
			Upper:     []float64{10, 10},
			Objective: []Element{LinearElement([]int{0, 1}, []float64{1, 1}, 0)},
			EqCons: []Constraint{{
				Name: "hyperbola",
				El: Element{
					Vars: []int{0, 1},
					Eval: func(x []float64) float64 { return x[0]*x[1] - 4 },
					Grad: func(x []float64, g []float64) { g[0] = x[1]; g[1] = x[0] },
					Hess: func(_ []float64, h [][]float64) {
						h[0][0], h[1][1] = 0, 0
						h[0][1], h[1][0] = 1, 1
					},
				},
			}},
		}
		r, err := Solve(p, []float64{1, 8}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(r.X[0], 2, 1e-3) || !approx(r.X[1], 2, 1e-3) {
			t.Errorf("%v: x = %v, want (2,2)", m, r.X)
		}
	}
}
