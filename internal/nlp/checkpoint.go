package nlp

import (
	"fmt"

	"repro/internal/checkpoint"
)

// checkpointKind tags ALM checkpoints inside the versioned envelope of
// internal/checkpoint.
const checkpointKind = "nlp.alm"

// Checkpoint is the resumable state of an augmented-Lagrangian solve,
// captured at an outer-iteration boundary. Loading one into
// Options.Resume replays the remaining iterations exactly: every
// Result field except the wall-clock durations is bit-identical to the
// uninterrupted run, because JSON round-trips float64 exactly and the
// solver trajectory is a pure function of this state.
type Checkpoint struct {
	// Outer is the 0-based index of the next outer iteration to run;
	// Inner, FuncEvals and ObjEvals restore the cost counters so the
	// resumed Result reports whole-solve totals.
	Outer     int `json:"outer"`
	Inner     int `json:"inner"`
	FuncEvals int `json:"func_evals"`
	ObjEvals  int `json:"obj_evals"`
	// Recoveries is the whole-solve non-finite recovery count;
	// RungRecoveries the count on the current ladder rung; Rung the
	// degradation-ladder position; FailStreak the consecutive
	// zero-progress inner solves.
	Recoveries     int `json:"recoveries"`
	RungRecoveries int `json:"rung_recoveries"`
	Rung           int `json:"rung"`
	FailStreak     int `json:"fail_streak"`
	// Rho, Omega and Eta are the penalty parameter and the LANCELOT
	// tolerance schedule.
	Rho   float64 `json:"rho"`
	Omega float64 `json:"omega"`
	Eta   float64 `json:"eta"`
	// X is the iterate; XSafe the last finite iterate (valid when
	// HaveSafe); LamEq/LamIneq the multiplier estimates.
	X        []float64 `json:"x"`
	XSafe    []float64 `json:"x_safe,omitempty"`
	HaveSafe bool      `json:"have_safe"`
	LamEq    []float64 `json:"lam_eq"`
	LamIneq  []float64 `json:"lam_ineq"`
	// RNGStreams reserves substream positions for samplers layered on
	// top of the solver (e.g. Monte Carlo validation shards); the core
	// ALM does not consume randomness, so it records none. The field
	// keeps the schema stable for those layers.
	RNGStreams []int64 `json:"rng_streams,omitempty"`
}

// validate checks that the checkpoint dimensions match the problem it
// is being resumed against.
func (c *Checkpoint) validate(p *Problem) error {
	if len(c.X) != p.N {
		return fmt.Errorf("nlp: checkpoint has %d variables, problem has %d", len(c.X), p.N)
	}
	if c.HaveSafe && len(c.XSafe) != p.N {
		return fmt.Errorf("nlp: checkpoint safe iterate has %d variables, problem has %d", len(c.XSafe), p.N)
	}
	if len(c.LamEq) != len(p.EqCons) {
		return fmt.Errorf("nlp: checkpoint has %d equality multipliers, problem has %d",
			len(c.LamEq), len(p.EqCons))
	}
	if len(c.LamIneq) != len(p.IneqCons) {
		return fmt.Errorf("nlp: checkpoint has %d inequality multipliers, problem has %d",
			len(c.LamIneq), len(p.IneqCons))
	}
	if c.Outer < 0 || c.Rung < 0 || c.Rho <= 0 {
		return fmt.Errorf("nlp: checkpoint is malformed (outer %d, rung %d, rho %g)",
			c.Outer, c.Rung, c.Rho)
	}
	return nil
}

// SaveCheckpoint atomically writes the checkpoint to path in the
// versioned JSON envelope of internal/checkpoint.
func SaveCheckpoint(path string, c *Checkpoint) error {
	return checkpoint.Save(path, checkpointKind, c)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint,
// validating the envelope version and kind.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{}
	if err := checkpoint.Load(path, checkpointKind, c); err != nil {
		return nil, err
	}
	return c, nil
}
