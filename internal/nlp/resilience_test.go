package nlp

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestStatusFailed(t *testing.T) {
	for _, s := range []Status{Converged, MaxIterations, Stalled} {
		if s.Failed() {
			t.Errorf("%v.Failed() = true, want false", s)
		}
	}
	for _, s := range []Status{Cancelled, DeadlineExceeded, NumericalFailure} {
		if !s.Failed() {
			t.Errorf("%v.Failed() = false, want true", s)
		}
	}
}

func TestLadderFor(t *testing.T) {
	if got := ladderFor(NewtonCG); len(got) != 3 || got[0] != NewtonCG || got[1] != LBFGS || got[2] != ProjGrad {
		t.Errorf("ladderFor(NewtonCG) = %v", got)
	}
	if got := ladderFor(LBFGS); len(got) != 2 || got[0] != LBFGS || got[1] != ProjGrad {
		t.Errorf("ladderFor(LBFGS) = %v", got)
	}
	if got := ladderFor(ProjGrad); len(got) != 1 || got[0] != ProjGrad {
		t.Errorf("ladderFor(ProjGrad) = %v", got)
	}
}

// TestProjGradConverges pins the ladder's bottom rung as a working
// solver in its own right.
func TestProjGradConverges(t *testing.T) {
	w := []float64{1, 4, 2, 8}
	c := []float64{0.5, -1, 2, 0.25}
	p := quadratic(w, c)
	res, err := Solve(p, make([]float64, 4), Options{Method: ProjGrad, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged {
		t.Fatalf("status = %v, want converged", res.Status)
	}
	if res.Method != ProjGrad {
		t.Fatalf("method = %v, want projgrad", res.Method)
	}
	for i := range c {
		if !approx(res.X[i], c[i], 1e-5) {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
}

func TestSolveCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := chainProblem(60)
	x0 := testPoint(60, 0.3)
	res, err := SolveCtx(ctx, p, x0, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Cancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if res.Outer != 0 {
		t.Fatalf("outer = %d, want 0 (no iteration may start after cancellation)", res.Outer)
	}
	// The best-so-far iterate of a run that never iterated is the
	// projected start point.
	want := append([]float64(nil), x0...)
	p.project(want)
	for i := range want {
		if res.X[i] != want[i] {
			t.Fatalf("x[%d] = %v, want projected x0 %v", i, res.X[i], want[i])
		}
	}
}

func TestSolveCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := SolveCtx(ctx, chainProblem(60), testPoint(60, 0.3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != DeadlineExceeded {
		t.Fatalf("status = %v, want deadline exceeded", res.Status)
	}
}

// cancelAfterRec is a telemetry sink that fires a context cancellation
// after a scripted number of "alm.outer" events — a deterministic way
// to interrupt a solve at a mid-run iteration boundary.
type cancelAfterRec struct {
	noopRec
	outers int
	after  int
	cancel context.CancelFunc
}

func (r *cancelAfterRec) Event(scope, name string, fields ...telemetry.KV) {
	if scope == "alm" && name == "outer" {
		r.outers++
		if r.outers == r.after {
			r.cancel()
		}
	}
}

// noopRec implements telemetry.Recorder with no-ops so test recorders
// only override what they watch.
type noopRec struct{}

func (noopRec) Event(string, string, ...telemetry.KV) {}
func (noopRec) Count(string, int64)                   {}
func (noopRec) Gauge(string, float64)                 {}
func (noopRec) Span(string, time.Duration)            {}

func TestCancelMidSolveReturnsBestSoFar(t *testing.T) {
	p := chainProblem(120)
	x0 := testPoint(120, 0.7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &cancelAfterRec{after: 2, cancel: cancel}
	res, err := SolveCtx(ctx, p, x0, Options{Workers: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Cancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if res.Outer < 2 {
		t.Fatalf("outer = %d, want >= 2 (cancellation fired after the 2nd outer event)", res.Outer)
	}
	if len(res.X) != p.N {
		t.Fatalf("len(X) = %d, want %d", len(res.X), p.N)
	}
	for i, v := range res.X {
		if v-v != 0 {
			t.Fatalf("x[%d] = %v is not finite", i, v)
		}
	}
	// The interrupted iterate must be no worse a start than x0: resolve
	// from it and confirm convergence to the same optimum.
	full, err := Solve(p, x0, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Solve(p, res.X, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cont.Status != Converged && cont.Status != full.Status {
		t.Fatalf("continuation status = %v, full-run status = %v", cont.Status, full.Status)
	}
	if !approx(cont.F, full.F, 1e-5) {
		t.Fatalf("continuation F = %v, full-run F = %v", cont.F, full.F)
	}
}

// TestCheckpointResumeBitIdentical is the tentpole's resume guarantee:
// a solve that is stopped after k outer iterations and resumed from its
// checkpoint must finish with exactly the result of the uninterrupted
// run — every deterministic Result field equal, the iterate bit for
// bit.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, m := range []Method{LBFGS, NewtonCG} {
		t.Run(m.String(), func(t *testing.T) {
			p := chainProblem(90)
			x0 := testPoint(90, 1.1)
			opt := Options{Method: m, Workers: 1}

			full, err := Solve(p, x0, opt)
			if err != nil {
				t.Fatal(err)
			}
			if full.Outer < 3 {
				t.Fatalf("full run finished in %d outer iterations; the fixture is too easy to interrupt", full.Outer)
			}

			// Interrupted leg: checkpoint every iteration, stop after 3.
			ckPath := filepath.Join(t.TempDir(), "alm.ckpt")
			optCk := opt
			optCk.CheckpointPath = ckPath
			optCk.MaxOuter = 3
			if _, err := Solve(p, x0, optCk); err != nil {
				t.Fatal(err)
			}
			ck, err := LoadCheckpoint(ckPath)
			if err != nil {
				t.Fatal(err)
			}

			// Resumed leg: restart from the checkpoint with the original
			// budget. x0 is deliberately garbage — resume must not need it.
			optRes := opt
			optRes.Resume = ck
			resumed, err := Solve(p, make([]float64, p.N), optRes)
			if err != nil {
				t.Fatal(err)
			}

			if resumed.Status != full.Status {
				t.Errorf("status: resumed %v, full %v", resumed.Status, full.Status)
			}
			if resumed.Outer != full.Outer || resumed.Inner != full.Inner {
				t.Errorf("iterations: resumed %d/%d, full %d/%d",
					resumed.Outer, resumed.Inner, full.Outer, full.Inner)
			}
			if resumed.FuncEvals != full.FuncEvals || resumed.ObjEvals != full.ObjEvals {
				t.Errorf("evals: resumed %d/%d, full %d/%d",
					resumed.FuncEvals, resumed.ObjEvals, full.FuncEvals, full.ObjEvals)
			}
			if resumed.F != full.F {
				t.Errorf("F: resumed %v, full %v (must be bit-identical)", resumed.F, full.F)
			}
			for i := range full.X {
				if resumed.X[i] != full.X[i] {
					t.Fatalf("x[%d]: resumed %v, full %v (must be bit-identical)",
						i, resumed.X[i], full.X[i])
				}
			}
			for i := range full.LambdaEq {
				if resumed.LambdaEq[i] != full.LambdaEq[i] {
					t.Fatalf("lamEq[%d] differs after resume", i)
				}
			}
			for i := range full.LambdaIneq {
				if resumed.LambdaIneq[i] != full.LambdaIneq[i] {
					t.Fatalf("lamIneq[%d] differs after resume", i)
				}
			}
		})
	}
}

// TestCheckpointWrittenOnCancel: a cancelled solve with a checkpoint
// path must leave a loadable, dimension-consistent checkpoint behind.
func TestCheckpointWrittenOnCancel(t *testing.T) {
	p := chainProblem(60)
	ckPath := filepath.Join(t.TempDir(), "cancel.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &cancelAfterRec{after: 1, cancel: cancel}
	res, err := SolveCtx(ctx, p, testPoint(60, 0.2), Options{
		Workers: 1, Recorder: rec, CheckpointPath: ckPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Cancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("no loadable checkpoint after cancel: %v", err)
	}
	if err := ck.validate(p); err != nil {
		t.Fatalf("checkpoint invalid: %v", err)
	}
	// The resumed run must complete from it.
	opt := Options{Workers: 1, Resume: ck}
	resumed, err := Solve(p, make([]float64, p.N), opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Status.Failed() {
		t.Fatalf("resumed status = %v", resumed.Status)
	}
}

func TestCheckpointRoundTripExactFloats(t *testing.T) {
	p := chainProblem(30)
	path := filepath.Join(t.TempDir(), "rt.ckpt")
	ck := &Checkpoint{
		Outer: 7, Inner: 123, FuncEvals: 456, ObjEvals: 7,
		Recoveries: 2, RungRecoveries: 1, Rung: 1, FailStreak: 1,
		Rho: 1e3, Omega: 1.0 / 3.0, Eta: math.Nextafter(0.1, 1),
		X:     testPoint(30, 0.9),
		XSafe: testPoint(30, 1.9), HaveSafe: true,
		LamEq:   make([]float64, len(p.EqCons)),
		LamIneq: make([]float64, len(p.IneqCons)),
	}
	for i := range ck.LamEq {
		ck.LamEq[i] = 1.0 / float64(3+i)
	}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outer != ck.Outer || got.Rung != ck.Rung || got.HaveSafe != ck.HaveSafe {
		t.Fatalf("counters differ: %+v vs %+v", got, ck)
	}
	if got.Rho != ck.Rho || got.Omega != ck.Omega || got.Eta != ck.Eta {
		t.Fatalf("schedule floats not bit-identical: %v/%v/%v vs %v/%v/%v",
			got.Rho, got.Omega, got.Eta, ck.Rho, ck.Omega, ck.Eta)
	}
	for i := range ck.X {
		if got.X[i] != ck.X[i] || got.XSafe[i] != ck.XSafe[i] {
			t.Fatalf("iterate float %d not bit-identical through JSON", i)
		}
	}
	for i := range ck.LamEq {
		if got.LamEq[i] != ck.LamEq[i] {
			t.Fatalf("lamEq[%d] not bit-identical through JSON", i)
		}
	}
	if err := got.validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointValidateRejectsMismatch(t *testing.T) {
	p := chainProblem(30)
	ck := &Checkpoint{
		Outer: 1, Rho: 10,
		X:     make([]float64, 12), // wrong dimension
		LamEq: make([]float64, len(p.EqCons)), LamIneq: make([]float64, len(p.IneqCons)),
	}
	if err := ck.validate(p); err == nil {
		t.Fatal("validate accepted a checkpoint with the wrong dimension")
	}
	ck.X = make([]float64, p.N)
	ck.Rho = -1
	if err := ck.validate(p); err == nil {
		t.Fatal("validate accepted a non-positive penalty")
	}
}

func TestResumeRejectsForeignRung(t *testing.T) {
	p := chainProblem(30)
	ck := &Checkpoint{
		Outer: 1, Rho: 10, Rung: 2, // NewtonCG ladder rung on an LBFGS solve
		X:     make([]float64, p.N),
		LamEq: make([]float64, len(p.EqCons)), LamIneq: make([]float64, len(p.IneqCons)),
	}
	_, err := Solve(p, make([]float64, p.N), Options{Method: LBFGS, Workers: 1, Resume: ck})
	if err == nil {
		t.Fatal("Solve accepted a checkpoint rung outside the method's ladder")
	}
}

func TestSaveCheckpointAtomic(t *testing.T) {
	// Save over an existing file must either fully replace it or leave
	// it intact — never truncate. Simulate by saving twice and checking
	// the temp file is cleaned up.
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	ck := &Checkpoint{Outer: 1, Rho: 10, X: []float64{1, 2}}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	ck.Outer = 2
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outer != 2 {
		t.Fatalf("Outer = %d after overwrite, want 2", got.Outer)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The overwrite keeps exactly two files: the new checkpoint and
	// the previous good version as .bak. No temp files survive.
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a.ckpt" || names[1] != "a.ckpt.bak" {
		t.Fatalf("dir after overwrite = %v, want [a.ckpt a.ckpt.bak]", names)
	}
	bak, err := LoadCheckpoint(path + ".bak")
	if err != nil {
		t.Fatal(err)
	}
	if bak.Outer != 1 {
		t.Fatalf("backup Outer = %d, want previous version 1", bak.Outer)
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("LoadCheckpoint accepted garbage")
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
}
