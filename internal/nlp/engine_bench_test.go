package nlp

import (
	"fmt"
	"runtime"
	"testing"
)

// Benchmarks for the element evaluation engine on a synthetic
// partially separable problem large enough to engage the parallel
// path. On a single-CPU host the workers>1 rows measure the pool's
// dispatch overhead rather than a speedup; results are bit-identical
// either way.

func benchWorkers() []int {
	ws := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		ws = append(ws, n)
	} else {
		ws = append(ws, 2)
	}
	return ws
}

func BenchmarkMeritGrad(b *testing.B) {
	const n = 2000
	p := chainProblem(n)
	x := testPoint(n, 0.7)
	grad := make([]float64, n)
	for _, w := range benchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			st := newTestState(p, w)
			defer st.eng.close()
			st.merit(x, grad) // warm up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.merit(x, grad)
			}
		})
	}
}

func BenchmarkHessVec(b *testing.B) {
	const n = 2000
	p := chainProblem(n)
	x := testPoint(n, 1.9)
	v := testPoint(n, 0.2)
	out := make([]float64, n)
	opt := Options{Method: NewtonCG}.withDefaults()
	for _, w := range benchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			st := newTestState(p, w)
			defer st.eng.close()
			ns := newNewtonSolver(p, st, opt)
			for i := range ns.free {
				ns.free[i] = true
			}
			ns.buildCache(x)
			ns.hessVec(v, out) // warm up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ns.hessVec(v, out)
			}
		})
	}
}

func BenchmarkSolveChain(b *testing.B) {
	const n = 1000
	p := chainProblem(n)
	for _, w := range benchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x0 := testPoint(n, 0.4)
				if _, err := Solve(p, x0, Options{Workers: w, MaxInner: 200}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
