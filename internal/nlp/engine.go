package nlp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file implements the partial-separability evaluation engine: the
// LANCELOT trick the rest of the solver stands on. A problem is a sum
// of small element functions, so every expensive whole-problem
// quantity — merit value, merit gradient, element Hessian cache,
// Hessian-vector product — decomposes into independent per-element
// computations followed by an order-sensitive accumulation. The engine
// splits those two halves explicitly:
//
//   - Compute phase: elements are statically partitioned into fixed
//     contiguous chunks and each chunk is evaluated by one worker.
//     An element writes only to its own arena slots (its local x/g/v
//     scratch, its flat Hessian block, its value/weight fields), so
//     scheduling cannot influence a single bit.
//   - Fold phase: the coordinating goroutine accumulates the
//     per-element results (merit sum, gradient scatter, H*v scatter)
//     in exact serial element order — the same discipline as the SSTA
//     adjoint sweep (ssta.BackwardWorkers) — so the result is
//     bit-for-bit identical for every worker count.
//
// All element scratch lives in a handful of []float64 slabs allocated
// once at engine construction and reused for the life of the solve:
// steady-state merit, gradient, Hessian-cache and Hessian-vector
// evaluation performs zero heap allocations (pinned by
// TestMeritSteadyStateAllocs / TestHessVecSteadyStateAllocs).
//
// Parallel evaluation runs on a persistent worker pool (spawning a
// goroutine per call would allocate); dispatch is a buffered channel
// send of a chunk index per worker plus one sync.WaitGroup barrier,
// both allocation-free. Problems below engineMinElements skip the
// pool entirely and evaluate inline.

// engineMinElements is the element count below which the engine
// evaluates serially regardless of Workers: with only a handful of
// elements (every reduced-formulation sizing problem, the small test
// batteries) the dispatch barrier costs more than the arithmetic it
// spreads.
const engineMinElements = 128

// elemKind tags an element's role; the merit fold gives each kind a
// different penalty term and gradient weight.
type elemKind uint8

const (
	elObjective elemKind = iota
	elEquality
	elInequality
)

// engineMode selects what runChunk computes for each element.
type engineMode uint8

const (
	modeEval      engineMode = iota // Eval every element into ref.val
	modeObjEval                     // Eval objective elements only
	modeGrad                        // Grad elements with weight != 0 into slabG
	modeHessCache                   // rebuild the second-order cache at e.x
	modeHessVec                     // per-element H*v contributions into slabHV
	numModes
)

// modeNames label the dispatch modes in telemetry output.
var modeNames = [numModes]string{"merit", "obj", "grad", "hess_cache", "hess_vec"}

// elemRef is the engine's handle on one element: its identity, its
// arena offsets, and the per-call outputs of the compute phase. Each
// element is owned by exactly one worker per dispatch, so the mutable
// fields need no synchronization beyond the dispatch barrier.
type elemRef struct {
	el   *Element
	kind elemKind
	ci   int // index within its constraint class (lamEq / lamIneq)
	n    int // len(el.Vars)
	off  int // offset into the per-variable slabs (slabX, slabG, ...)
	hOff int // offset into slabH, -1 when el.Hess == nil

	// rows aliases the element's flat Hessian block in slabH as the
	// row-major [][]float64 view the Element.Hess contract wants; the
	// headers are allocated once here and reused forever.
	rows [][]float64

	// Compute-phase outputs.
	val     float64 // element value (modeEval / modeObjEval)
	w       float64 // merit gradient scatter weight, set by the fold
	hw, gw  float64 // cached Hessian and Gauss-Newton weights
	active  bool    // cache: element contributes to the Hessian
	hasH    bool    // cache: rows hold a fresh local Hessian
	touched bool    // hessVec: the masked local v had a nonzero entry
}

// engine evaluates a Problem's elements over a reusable arena,
// optionally in parallel. It is owned by one almState and is not safe
// for concurrent use by multiple solvers; the parallelism is internal.
type engine struct {
	st   *almState
	refs []elemRef // objective, then equality, then inequality order
	nObj int

	// Arena slabs, indexed by elemRef.off (per-variable scratch) and
	// elemRef.hOff (flat row-major Hessian blocks). Separate slabs keep
	// the cached second-order data (slabLG, slabH) immune to merit
	// evaluations that happen between buildCache and hessVec calls
	// (the Armijo searches inside a Newton iteration).
	slabX  []float64 // local point gather
	slabG  []float64 // merit local gradients
	slabLG []float64 // cached constraint gradients (rank-one terms)
	slabV  []float64 // hessVec masked local input
	slabHV []float64 // hessVec per-element contributions
	slabH  []float64 // cached local Hessian blocks

	// Dispatch state, written by the coordinator before the barrier
	// opens and read-only for workers during a phase.
	mode engineMode
	x    []float64 // evaluation point (modeEval/ObjEval/HessCache)
	v    []float64 // hessVec input vector
	free []bool    // hessVec free-variable mask

	// Persistent pool: chunk c covers refs[chunks[c][0]:chunks[c][1]].
	// Worker i waits on workCh for chunk indices; the coordinator runs
	// chunk 0 itself. nil chunks means serial evaluation.
	chunks [][2]int
	workCh chan int
	wg     sync.WaitGroup
	closed bool

	// Telemetry. nDispatch counts dispatches per mode (plain ints,
	// always maintained — an increment is cheaper than a branch worth
	// guarding). The timing accumulators run only when rec is non-nil:
	// modeNS is the coordinator's wall time per mode, chunkNS[c] the
	// busy time of chunk c (each chunk is owned by exactly one worker
	// per dispatch and dispatches are separated by the pool barrier, so
	// the slots need no synchronization; the barrier's happens-before
	// makes them readable by publish). Everything here is metrics data —
	// none of it enters the deterministic event stream.
	rec       telemetry.Recorder
	nDispatch [numModes]int64
	modeNS    [numModes]int64
	chunkNS   []int64
}

// resolveWorkers maps the module-wide Workers convention onto a
// concrete count: <= 0 means one worker per CPU.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// newEngine builds the arena and, when the problem is large enough and
// workers allow, the persistent worker pool. The caller must close()
// the engine to release the pool goroutines.
func newEngine(p *Problem, st *almState, workers int) *engine {
	nEl := len(p.Objective) + len(p.EqCons) + len(p.IneqCons)
	e := &engine{
		st:   st,
		refs: make([]elemRef, 0, nEl),
		nObj: len(p.Objective),
		rec:  st.rec,
	}
	sumN, sumH := 0, 0
	add := func(el *Element, kind elemKind, ci int) {
		r := elemRef{el: el, kind: kind, ci: ci, n: len(el.Vars), off: sumN, hOff: -1}
		sumN += r.n
		if el.Hess != nil {
			r.hOff = sumH
			sumH += r.n * r.n
		}
		e.refs = append(e.refs, r)
	}
	for i := range p.Objective {
		add(&p.Objective[i], elObjective, i)
	}
	for i := range p.EqCons {
		add(&p.EqCons[i].El, elEquality, i)
	}
	for i := range p.IneqCons {
		add(&p.IneqCons[i].El, elInequality, i)
	}

	e.slabX = make([]float64, sumN)
	e.slabG = make([]float64, sumN)
	e.slabLG = make([]float64, sumN)
	e.slabV = make([]float64, sumN)
	e.slabHV = make([]float64, sumN)
	e.slabH = make([]float64, sumH)
	for i := range e.refs {
		r := &e.refs[i]
		if r.hOff < 0 {
			continue
		}
		r.rows = make([][]float64, r.n)
		for j := 0; j < r.n; j++ {
			lo := r.hOff + j*r.n
			r.rows[j] = e.slabH[lo : lo+r.n]
		}
	}

	w := resolveWorkers(workers)
	if w > 1 && len(e.refs) >= engineMinElements {
		if w > len(e.refs) {
			w = len(e.refs)
		}
		size := (len(e.refs) + w - 1) / w
		for lo := 0; lo < len(e.refs); lo += size {
			hi := min(lo+size, len(e.refs))
			e.chunks = append(e.chunks, [2]int{lo, hi})
		}
		// The buffered channel lets the coordinator publish every chunk
		// without blocking even under GOMAXPROCS=1.
		e.workCh = make(chan int, len(e.chunks))
		e.chunkNS = make([]int64, len(e.chunks))
		for c := 1; c < len(e.chunks); c++ {
			go e.worker()
		}
	}
	return e
}

// worker drains chunk indices until close() shuts the channel.
func (e *engine) worker() {
	for c := range e.workCh {
		if e.rec != nil {
			t0 := time.Now()
			e.runChunk(e.chunks[c][0], e.chunks[c][1])
			e.chunkNS[c] += time.Since(t0).Nanoseconds()
		} else {
			e.runChunk(e.chunks[c][0], e.chunks[c][1])
		}
		e.wg.Done()
	}
}

// close releases the pool goroutines; the engine stays usable in
// serial mode afterwards (Solve only closes on exit).
func (e *engine) close() {
	if e.chunks != nil && !e.closed {
		e.closed = true
		close(e.workCh)
		e.chunks = nil
	}
}

// dispatch runs one compute phase over every element and returns after
// the barrier: all per-element outputs are final. Allocation-free,
// with or without a recorder; with one, the only extra hot-path work
// is the clock reads bracketing the phase.
func (e *engine) dispatch(mode engineMode) {
	e.mode = mode
	e.nDispatch[mode]++
	var start time.Time
	if e.rec != nil {
		start = time.Now()
	}
	if e.chunks == nil {
		e.runChunk(0, len(e.refs))
	} else {
		nc := len(e.chunks)
		e.wg.Add(nc - 1)
		for c := 1; c < nc; c++ {
			e.workCh <- c
		}
		if e.rec != nil {
			t0 := time.Now()
			e.runChunk(e.chunks[0][0], e.chunks[0][1])
			e.chunkNS[0] += time.Since(t0).Nanoseconds()
		} else {
			e.runChunk(e.chunks[0][0], e.chunks[0][1])
		}
		e.wg.Wait()
	}
	if e.rec != nil {
		e.modeNS[mode] += time.Since(start).Nanoseconds()
	}
}

// publish pushes the accumulated evaluation counters and dispatch
// timings into rec; Solve calls it once at the end of a run, so the
// lazy metric-cell creation and name formatting below never touch the
// solver hot path.
func (e *engine) publish(rec telemetry.Recorder) {
	rec.Count("engine.merit_evals", e.nDispatch[modeEval])
	rec.Count("engine.obj_evals", e.nDispatch[modeObjEval])
	rec.Count("engine.grad_evals", e.nDispatch[modeGrad])
	rec.Count("engine.hess_cache_builds", e.nDispatch[modeHessCache])
	rec.Count("engine.hessvec_evals", e.nDispatch[modeHessVec])
	rec.Gauge("engine.elements", float64(len(e.refs)))
	rec.Gauge("engine.chunks", float64(len(e.chunks)))
	tree := telemetry.TreeOf(rec)
	for m, ns := range e.modeNS {
		if ns > 0 {
			rec.Span("engine.dispatch."+modeNames[m], time.Duration(ns))
			if tree != nil {
				// Publish-time fold into the span tree: the engine
				// aggregates its own per-mode dispatch wall time, so
				// the hot path pays no per-dispatch scope work.
				tree.AddAt(time.Duration(ns), e.nDispatch[m], "nlp.solve", "engine", modeNames[m])
			}
		}
	}
	for c, ns := range e.chunkNS {
		if ns > 0 {
			rec.Span(fmt.Sprintf("engine.chunk%02d", c), time.Duration(ns))
		}
	}
}

// runChunk executes the current mode for refs[lo:hi]. Every write
// lands in element-owned arena slots or elemRef fields, never in
// shared accumulators — the fold phases own those.
func (e *engine) runChunk(lo, hi int) {
	switch e.mode {
	case modeEval, modeObjEval:
		objOnly := e.mode == modeObjEval
		for i := lo; i < hi; i++ {
			r := &e.refs[i]
			if objOnly && r.kind != elObjective {
				continue
			}
			loc := e.slabX[r.off : r.off+r.n]
			for k, v := range r.el.Vars {
				loc[k] = e.x[v]
			}
			r.val = r.el.Eval(loc)
		}
	case modeGrad:
		// slabX still holds the modeEval gather at the same point; a
		// gradient dispatch always follows a value dispatch.
		for i := lo; i < hi; i++ {
			r := &e.refs[i]
			if r.w == 0 {
				continue
			}
			r.el.Grad(e.slabX[r.off:r.off+r.n], e.slabG[r.off:r.off+r.n])
		}
	case modeHessCache:
		st := e.st
		for i := lo; i < hi; i++ {
			r := &e.refs[i]
			loc := e.slabX[r.off : r.off+r.n]
			for k, v := range r.el.Vars {
				loc[k] = e.x[v]
			}
			switch r.kind {
			case elObjective:
				r.hw, r.gw, r.active = 1, 0, true
			case elEquality:
				c := r.el.Eval(loc)
				r.hw, r.gw, r.active = st.lamEq[r.ci]+st.rho*c, st.rho, true
				r.el.Grad(loc, e.slabLG[r.off:r.off+r.n])
			case elInequality:
				c := r.el.Eval(loc)
				m := st.lamIneq[r.ci] + st.rho*c
				if m <= 0 {
					r.active = false
					continue
				}
				r.hw, r.gw, r.active = m, st.rho, true
				r.el.Grad(loc, e.slabLG[r.off:r.off+r.n])
			}
			r.hasH = r.hw != 0 && r.el.Hess != nil
			if r.hasH {
				// Zero the block first: the Hess contract writes the
				// dense local Hessian, but partial writers historically
				// relied on fresh zeroed storage.
				hb := e.slabH[r.hOff : r.hOff+r.n*r.n]
				for k := range hb {
					hb[k] = 0
				}
				r.el.Hess(loc, r.rows)
			}
		}
	case modeHessVec:
		for i := lo; i < hi; i++ {
			r := &e.refs[i]
			if !r.active {
				continue
			}
			n := r.n
			lv := e.slabV[r.off : r.off+n]
			any := false
			for k, idx := range r.el.Vars {
				val := 0.0
				if e.free[idx] {
					val = e.v[idx]
				}
				lv[k] = val
				if val != 0 {
					any = true
				}
			}
			r.touched = any
			if !any {
				continue
			}
			hv := e.slabHV[r.off : r.off+n]
			if r.hasH {
				hb := e.slabH[r.hOff:]
				for j := 0; j < n; j++ {
					var s float64
					row := hb[j*n : j*n+n]
					for k := 0; k < n; k++ {
						s += row[k] * lv[k]
					}
					hv[j] = r.hw * s
				}
			} else {
				for j := 0; j < n; j++ {
					hv[j] = 0
				}
			}
			if r.gw != 0 {
				lg := e.slabLG[r.off : r.off+n]
				var dot float64
				for k := 0; k < n; k++ {
					dot += lg[k] * lv[k]
				}
				dot *= r.gw
				for k := 0; k < n; k++ {
					hv[k] += dot * lg[k]
				}
			}
		}
	}
}
