package nlp

import (
	"repro/internal/telemetry"
)

// pgSolver is projected steepest descent with Armijo backtracking: the
// bottom rung of the degradation ladder. It keeps no state between
// steps — no curvature history, no second-order cache — so nothing a
// transient numerical failure could poison survives into the next
// iteration. Convergence is slow but each accepted step is a plain
// sufficient-decrease move along the negative gradient, the most
// robust primitive the solver has.
type pgSolver struct {
	p   *Problem
	st  *almState
	opt Options

	grad, xNew, gNew, d []float64
}

func newPGSolver(p *Problem, st *almState, opt Options) *pgSolver {
	return &pgSolver{
		p: p, st: st, opt: opt,
		grad: make([]float64, p.N),
		xNew: make([]float64, p.N),
		gNew: make([]float64, p.N),
		d:    make([]float64, p.N),
	}
}

func (ps *pgSolver) minimize(x []float64, tol float64) (int, float64) {
	st := ps.st
	phi := st.merit(x, ps.grad)
	pg := projGradNorm(ps.p, x, ps.grad)
	iters := 0
	for ; iters < ps.opt.MaxInner && pg > tol; iters++ {
		if st.stop() {
			break
		}
		var gd float64
		for k := range x {
			ps.d[k] = -ps.grad[k]
			if x[k] <= ps.p.lower(k)+1e-12 && ps.d[k] < 0 {
				ps.d[k] = 0
			}
			if x[k] >= ps.p.upper(k)-1e-12 && ps.d[k] > 0 {
				ps.d[k] = 0
			}
			gd += ps.grad[k] * ps.d[k]
		}
		if gd >= 0 {
			break // projected gradient is zero: at a KKT point
		}
		phiNew, ok := projectedArmijo(ps.p, st, x, ps.grad, ps.d, ps.xNew, ps.gNew, phi, gd)
		if !ok {
			break
		}
		copy(x, ps.xNew)
		copy(ps.grad, ps.gNew)
		phi = phiNew
		pg = projGradNorm(ps.p, x, ps.grad)
		if st.rec != nil {
			st.rec.Event("projgrad", "iter",
				telemetry.I("outer", st.outer),
				telemetry.I("iter", iters+1),
				telemetry.F("phi", phi),
				telemetry.F("pg", pg),
			)
		}
	}
	return iters, pg
}
