package nlp

import (
	"math"

	"repro/internal/telemetry"
)

// newtonSolver is a truncated Newton conjugate-gradient inner solver:
// at each iteration the Hessian of the augmented Lagrangian is
// assembled implicitly from exact element Hessians (the LANCELOT-style
// use of the paper's analytical second derivatives), the Newton system
// restricted to the free variables is solved approximately by
// Steihaug-Toint conjugate gradients — CG truncated at a trust-region
// boundary, which also bounds steps along the near-null directions a
// feasible start gives the Gauss-Newton term — and the step is
// globalized by a projected Armijo search with an adaptive radius.
type newtonSolver struct {
	p   *Problem
	st  *almState
	opt Options

	grad, xNew, gNew, d []float64
	r, z, hz            []float64 // CG work vectors
	free                []bool
	// broken latches a non-finite Hessian-vector product within one
	// minimize call: the second-order model is unusable, so the whole
	// inner solve aborts and the outer loop's degradation ladder takes
	// over (rather than silently limping along on steepest descent).
	broken bool
}

func newNewtonSolver(p *Problem, st *almState, opt Options) *newtonSolver {
	return &newtonSolver{
		p: p, st: st, opt: opt,
		grad: make([]float64, p.N),
		xNew: make([]float64, p.N),
		gNew: make([]float64, p.N),
		d:    make([]float64, p.N),
		r:    make([]float64, p.N),
		z:    make([]float64, p.N),
		hz:   make([]float64, p.N),
		free: make([]bool, p.N),
	}
}

// buildCache evaluates every element's second-order data at x into the
// engine arena: the local Hessian block weighted by hw, plus for
// active constraints the local gradient contributing the Gauss-Newton
// rank-one term gw * lg lg^T. Elements are processed in parallel —
// every write lands in element-owned arena slots, so the cache is
// identical for any worker count — and inequality elements whose
// multiplier estimate is inactive (lambda + rho*c <= 0) are flagged
// out exactly as the serial code excluded them. All storage is
// reused across iterations; steady state allocates nothing.
func (ns *newtonSolver) buildCache(x []float64) {
	e := ns.st.eng
	e.x = x
	e.dispatch(modeHessCache)
}

// hessVec computes out = H*v restricted to the free variables (masked
// components of v are treated as zero and masked outputs are zeroed).
// Workers compute each element's local H*v contribution into private
// arena scratch; the fold below scatters them into out in exact serial
// element order, keeping the product bit-identical for any worker
// count.
func (ns *newtonSolver) hessVec(v, out []float64) {
	e := ns.st.eng
	e.v, e.free = v, ns.free
	e.dispatch(modeHessVec)
	for i := range out {
		out[i] = 0
	}
	for i := range e.refs {
		r := &e.refs[i]
		if !r.active || !r.touched {
			continue
		}
		hv := e.slabHV[r.off : r.off+r.n]
		for k, idx := range r.el.Vars {
			if ns.free[idx] {
				out[idx] += hv[k]
			}
		}
	}
	// Screen the product: one accumulation pass turns any NaN/Inf entry
	// into a non-finite sum (the x-x != 0 test is true exactly for
	// those), without allocating or branching per entry.
	var acc float64
	for _, o := range out {
		acc += o
	}
	if acc-acc != 0 {
		ns.broken = true
	}
}

func (ns *newtonSolver) minimize(x []float64, tol float64) (int, float64) {
	st := ns.st
	ns.broken = false
	phi := st.merit(x, ns.grad)
	pg := projGradNorm(ns.p, x, ns.grad)
	// Trust radius for the Steihaug CG; adapted across iterations.
	radius := 10.0
	iters := 0
	for ; iters < ns.opt.MaxInner && pg > tol; iters++ {
		if st.stop() {
			break
		}
		// Free variables: not pinned at a bound with an outward
		// gradient.
		for k := range x {
			ns.free[k] = true
			if x[k] <= ns.p.lower(k)+1e-12 && ns.grad[k] > 0 {
				ns.free[k] = false
			}
			if x[k] >= ns.p.upper(k)-1e-12 && ns.grad[k] < 0 {
				ns.free[k] = false
			}
		}
		ns.buildCache(x)

		// Inner attempt loop: shrink the radius on a failed line
		// search rather than giving up — a feasible warm start makes
		// the Gauss-Newton Hessian rank-deficient and the first CG
		// direction can be wildly long.
		progressed := false
		for attempt := 0; attempt < 20; attempt++ {
			ns.cg(radius)
			if ns.broken {
				// A non-finite H*v poisoned the CG state; abort the
				// inner solve so the outer loop can degrade to a
				// first-order method.
				return iters, pg
			}
			var gd float64
			for k := range x {
				gd += ns.grad[k] * ns.d[k]
			}
			if gd >= 0 {
				// Fall back to projected steepest descent clipped to
				// the radius.
				gd = 0
				var norm float64
				for k := range x {
					if ns.free[k] {
						ns.d[k] = -ns.grad[k]
						norm += ns.d[k] * ns.d[k]
					} else {
						ns.d[k] = 0
					}
				}
				norm = math.Sqrt(norm)
				if norm > radius {
					scale := radius / norm
					for k := range ns.d {
						ns.d[k] *= scale
					}
				}
				for k := range x {
					gd += ns.grad[k] * ns.d[k]
				}
				if gd >= 0 {
					break
				}
			}
			phiNew, ok := projectedArmijo(ns.p, st, x, ns.grad, ns.d, ns.xNew, ns.gNew, phi, gd)
			if ok {
				copy(x, ns.xNew)
				copy(ns.grad, ns.gNew)
				phi = phiNew
				pg = projGradNorm(ns.p, x, ns.grad)
				if radius < 1e6 {
					radius *= 1.5
				}
				progressed = true
				if st.rec != nil {
					st.rec.Event("newton", "iter",
						telemetry.I("outer", st.outer),
						telemetry.I("iter", iters+1),
						telemetry.F("phi", phi),
						telemetry.F("pg", pg),
						telemetry.F("radius", radius),
						telemetry.I("attempts", attempt+1),
					)
				}
				break
			}
			radius *= 0.25
			if radius < 1e-10 {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return iters, pg
}

// cg approximately solves H d = -grad on the free variables with
// Steihaug-Toint truncation, leaving the step in ns.d. It terminates
// on the Eisenstat-Walker forcing condition, at the trust-region
// boundary, on a negative-curvature direction (followed to the
// boundary) or at an iteration cap.
func (ns *newtonSolver) cg(radius float64) {
	n := ns.p.N
	d, r, z, hz := ns.d, ns.r, ns.z, ns.hz
	var gNorm float64
	for k := 0; k < n; k++ {
		d[k] = 0
		if ns.free[k] {
			r[k] = -ns.grad[k]
			gNorm += r[k] * r[k]
		} else {
			r[k] = 0
		}
		z[k] = r[k]
	}
	gNorm = math.Sqrt(gNorm)
	if gNorm == 0 {
		return
	}
	// Forcing term: solve to min(0.5, sqrt(gNorm)) * gNorm.
	tol := math.Min(0.5, math.Sqrt(gNorm)) * gNorm
	maxCG := n
	if maxCG > 250 {
		maxCG = 250
	}
	rr := gNorm * gNorm
	var dd float64 // ||d||^2
	for it := 0; it < maxCG; it++ {
		ns.hessVec(z, hz)
		if ns.broken {
			return
		}
		var zHz, zz, dz float64
		for k := 0; k < n; k++ {
			zHz += z[k] * hz[k]
			zz += z[k] * z[k]
			dz += d[k] * z[k]
		}
		if zHz <= 1e-12*zz {
			// Negative or vanishing curvature: follow z to the
			// trust-region boundary (Steihaug's prescription); from
			// the origin this is the steepest-descent direction.
			tau := boundaryStep(dd, dz, zz, radius)
			for k := 0; k < n; k++ {
				d[k] += tau * z[k]
			}
			return
		}
		alpha := rr / zHz
		// Would the step leave the trust region?
		newDD := dd + 2*alpha*dz + alpha*alpha*zz
		if newDD >= radius*radius {
			tau := boundaryStep(dd, dz, zz, radius)
			for k := 0; k < n; k++ {
				d[k] += tau * z[k]
			}
			return
		}
		var rrNew float64
		for k := 0; k < n; k++ {
			d[k] += alpha * z[k]
			r[k] -= alpha * hz[k]
			rrNew += r[k] * r[k]
		}
		dd = newDD
		if math.Sqrt(rrNew) <= tol {
			return
		}
		beta := rrNew / rr
		rr = rrNew
		for k := 0; k < n; k++ {
			z[k] = r[k] + beta*z[k]
		}
	}
}

// boundaryStep returns tau >= 0 with ||d + tau z|| = radius given
// dd = ||d||^2 and dz = d.z, zz = ||z||^2.
func boundaryStep(dd, dz, zz, radius float64) float64 {
	if zz == 0 {
		return 0
	}
	disc := dz*dz + zz*(radius*radius-dd)
	if disc < 0 {
		disc = 0
	}
	return (-dz + math.Sqrt(disc)) / zz
}
