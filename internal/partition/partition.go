// Package partition cuts a compiled netlist DAG into ~cache-sized
// blocks along topological frontiers, producing the block-level
// dependency DAG that drives the hierarchical block-parallel SSTA
// engine of internal/ssta (the "hierarchical statistical timing
// macro" decomposition of Li et al.'s hierarchical SSTA).
//
// The cut is deliberately conservative: a block never spans a level
// boundary. Every fanin edge strictly increases the topological
// level, so with level-pure blocks every block-to-block edge goes
// from a lower level to a higher one and the block dependency graph
// is acyclic by construction — no cycle detection, no merging, and a
// blocked evaluation with exact boundary arrivals is a pure
// reordering of the flat levelized sweep.
//
// Within a level, nodes are grouped by logic-cone affinity before
// chunking: each node carries a cluster id inherited from its first
// fanin driver (inputs seed the clusters), so the nodes of one cone
// land in the same block and a block's fanin blocks concentrate in
// the few blocks holding the cone's upstream logic. That keeps the
// block dependency lists short — which is what lets the dataflow
// scheduler run unrelated cones concurrently instead of meeting at a
// global level barrier — and keeps a block's working set (its slab
// span plus the boundary arrivals it reads) cache-resident.
//
// Everything here is a pure, deterministic function of the compiled
// graph and the options: no maps are iterated, no randomness is
// drawn, and the result is bit-for-bit identical across runs, worker
// counts, and platforms.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// DefaultBlockTarget is the aimed-for node count per block when
// Options.BlockTarget is unset. At 16 bytes per arrival moment pair
// plus the tape, a 512-node block's hot slabs fit comfortably in L1.
const DefaultBlockTarget = 512

// Options parameterizes the cut.
type Options struct {
	// BlockTarget is the aimed-for number of nodes per block;
	// <= 0 selects DefaultBlockTarget. Levels narrower than the
	// target form a single smaller block; wider levels are split
	// into balanced chunks of at most BlockTarget nodes.
	BlockTarget int
}

// Block is one unit of the cut: a set of same-level nodes evaluated
// as a whole by the block scheduler.
type Block struct {
	// Nodes lists the member node ids in evaluation order
	// (cluster-major within the level, stable within a cluster).
	Nodes []netlist.NodeID
	// Level is the topological level shared by every member node.
	Level int
	// Fanin lists the distinct predecessor blocks (blocks holding at
	// least one fanin of a member node), ascending. All entries are
	// strictly smaller than this block's id.
	Fanin []int32
	// Fanout lists the distinct successor blocks, ascending. All
	// entries are strictly larger than this block's id.
	Fanout []int32
}

// Partition is the block decomposition of a graph.
type Partition struct {
	G      *netlist.Graph
	Target int // the effective block target
	Blocks []Block
	// BlockOf[id] is the block holding node id.
	BlockOf []int32
}

// New cuts g into blocks. The result is a deterministic function of
// (g, opt): identical across runs and independent of any worker
// count the consumer later evaluates it with.
func New(g *netlist.Graph, opt Options) *Partition {
	target := opt.BlockTarget
	if target <= 0 {
		target = DefaultBlockTarget
	}
	n := len(g.C.Nodes)
	p := &Partition{G: g, Target: target, BlockOf: make([]int32, n)}

	// Cluster assignment: inputs seed one cluster each (dense by
	// discovery order); a gate inherits the cluster of its first
	// fanin, the pin that established its level in the generator and
	// the dominant driver in mapped netlists. Walking Topo guarantees
	// fanin clusters are assigned first.
	cluster := make([]int32, n)
	nextCluster := int32(0)
	for _, id := range g.Topo {
		if g.C.Nodes[id].Kind == netlist.KindInput {
			cluster[id] = nextCluster
			nextCluster++
			continue
		}
		cluster[id] = cluster[g.C.Nodes[id].Fanin[0]]
	}

	// Cut each level bucket: order by (cluster, bucket position) —
	// stable, so ties keep the canonical level order — then split
	// into balanced chunks of at most target nodes.
	scratch := make([]netlist.NodeID, 0, target)
	for lvl, bucket := range g.Levels {
		scratch = append(scratch[:0], bucket...)
		sort.SliceStable(scratch, func(i, j int) bool {
			return cluster[scratch[i]] < cluster[scratch[j]]
		})
		nb := (len(scratch) + target - 1) / target
		base, rem := len(scratch)/nb, len(scratch)%nb
		at := 0
		for c := 0; c < nb; c++ {
			size := base
			if c < rem {
				size++
			}
			id := int32(len(p.Blocks))
			nodes := make([]netlist.NodeID, size)
			copy(nodes, scratch[at:at+size])
			at += size
			for _, nd := range nodes {
				p.BlockOf[nd] = id
			}
			p.Blocks = append(p.Blocks, Block{Nodes: nodes, Level: lvl})
		}
	}

	// Block dependency lists. mark/gen dedupes without a map; the
	// fanin list is sorted ascending, and because blocks are visited
	// ascending, every fanout list comes out ascending too.
	mark := make([]int32, len(p.Blocks))
	for i := range mark {
		mark[i] = -1
	}
	for b := range p.Blocks {
		blk := &p.Blocks[b]
		for _, id := range blk.Nodes {
			for _, f := range g.C.Nodes[id].Fanin {
				pb := p.BlockOf[f]
				if mark[pb] != int32(b) {
					mark[pb] = int32(b)
					blk.Fanin = append(blk.Fanin, pb)
				}
			}
		}
		sort.Slice(blk.Fanin, func(i, j int) bool { return blk.Fanin[i] < blk.Fanin[j] })
		for _, pb := range blk.Fanin {
			p.Blocks[pb].Fanout = append(p.Blocks[pb].Fanout, int32(b))
		}
	}
	return p
}

// MaxBlock returns the size of the largest block.
func (p *Partition) MaxBlock() int {
	max := 0
	for i := range p.Blocks {
		if len(p.Blocks[i].Nodes) > max {
			max = len(p.Blocks[i].Nodes)
		}
	}
	return max
}

// Check validates the structural invariants the scheduler relies on:
// every node in exactly one block, level-pure blocks, bounded block
// sizes, and dependency lists that are sorted, deduplicated and
// strictly order-respecting (ancestors have smaller ids — the
// acyclicity witness). It is O(V+E) and intended for tests.
func (p *Partition) Check() error {
	g := p.G
	seen := make([]bool, len(g.C.Nodes))
	for b := range p.Blocks {
		blk := &p.Blocks[b]
		if len(blk.Nodes) == 0 {
			return fmt.Errorf("partition: block %d is empty", b)
		}
		if len(blk.Nodes) > p.Target {
			return fmt.Errorf("partition: block %d has %d nodes, target %d", b, len(blk.Nodes), p.Target)
		}
		for _, id := range blk.Nodes {
			if seen[id] {
				return fmt.Errorf("partition: node %d in more than one block", id)
			}
			seen[id] = true
			if g.Level[id] != blk.Level {
				return fmt.Errorf("partition: node %d level %d in level-%d block %d", id, g.Level[id], blk.Level, b)
			}
			if p.BlockOf[id] != int32(b) {
				return fmt.Errorf("partition: BlockOf[%d] = %d, want %d", id, p.BlockOf[id], b)
			}
		}
		for i, pb := range blk.Fanin {
			if pb >= int32(b) {
				return fmt.Errorf("partition: block %d fanin %d not an ancestor", b, pb)
			}
			if i > 0 && blk.Fanin[i-1] >= pb {
				return fmt.Errorf("partition: block %d fanin list not strictly ascending", b)
			}
		}
		for i, sb := range blk.Fanout {
			if sb <= int32(b) {
				return fmt.Errorf("partition: block %d fanout %d not a descendant", b, sb)
			}
			if i > 0 && blk.Fanout[i-1] >= sb {
				return fmt.Errorf("partition: block %d fanout list not strictly ascending", b)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: node %d not assigned to any block", id)
		}
	}
	return nil
}
