package partition

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/netlist"
)

// testGraphs covers the built-in circuits plus generated netlists of
// varying shape — wide shallow, narrow deep, heavily coned.
func testGraphs(t testing.TB) map[string]*netlist.Graph {
	t.Helper()
	graphs := map[string]*netlist.Graph{
		"tree7": netlist.MustCompile(netlist.Tree7()),
		"fig2":  netlist.MustCompile(netlist.Fig2Example()),
		"apex1": netlist.MustCompile(netlist.Apex1Like()),
		"k2":    netlist.MustCompile(netlist.K2Like()),
	}
	specs := []netlist.GenSpec{
		{Name: "wide", Gates: 900, Inputs: 120, Outputs: 30, Depth: 6, MaxFanin: 4, Seed: 7},
		{Name: "deep", Gates: 800, Inputs: 16, Outputs: 8, Depth: 60, MaxFanin: 3, Seed: 11},
		{Name: "cone", Gates: 1200, Inputs: 48, Outputs: 12, Depth: 18, MaxFanin: 4, Seed: 1234},
	}
	for _, sp := range specs {
		c, err := netlist.Generate(sp)
		if err != nil {
			t.Fatal(err)
		}
		graphs[sp.Name] = netlist.MustCompile(c)
	}
	return graphs
}

// TestPartitionInvariants runs the structural validator over every
// test graph at degenerate, small, default and whole-graph block
// targets.
func TestPartitionInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, target := range []int{1, 7, 64, 0, len(g.C.Nodes)} {
			p := New(g, Options{BlockTarget: target})
			if err := p.Check(); err != nil {
				t.Errorf("%s target=%d: %v", name, target, err)
			}
			want := target
			if want <= 0 {
				want = DefaultBlockTarget
			}
			if mb := p.MaxBlock(); mb > want {
				t.Errorf("%s target=%d: MaxBlock %d exceeds target", name, target, mb)
			}
		}
	}
}

// TestPartitionDeterminismFuzz partitions randomized netlists twice
// (recompiling the circuit in between) and asserts the cuts are deeply
// identical — block membership, order and dependency lists. The cut
// must be a pure function of (graph, options).
func TestPartitionDeterminismFuzz(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sp := netlist.GenSpec{
			Name:   fmt.Sprintf("fuzz%d", seed),
			Gates:  200 + int(seed)*137,
			Inputs: 8 + int(seed)*5, Outputs: 4 + int(seed)*2,
			Depth: 5 + int(seed)*3, MaxFanin: 2 + int(seed%3),
			Seed: seed,
		}
		c1, err := netlist.Generate(sp)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := netlist.Generate(sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []int{1, 31, 64, 0} {
			p1 := New(netlist.MustCompile(c1), Options{BlockTarget: target})
			p2 := New(netlist.MustCompile(c2), Options{BlockTarget: target})
			if err := p1.Check(); err != nil {
				t.Fatalf("seed=%d target=%d: %v", seed, target, err)
			}
			if !reflect.DeepEqual(p1.Blocks, p2.Blocks) {
				t.Fatalf("seed=%d target=%d: block structure not deterministic", seed, target)
			}
			if !reflect.DeepEqual(p1.BlockOf, p2.BlockOf) {
				t.Fatalf("seed=%d target=%d: BlockOf not deterministic", seed, target)
			}
		}
	}
}

// TestPartitionWholeLevelBlocks pins the degenerate upper bound: with
// the target at least the widest level, each level forms exactly one
// block and the block DAG is the level chain plus cross-level edges.
func TestPartitionWholeLevelBlocks(t *testing.T) {
	g := testGraphs(t)["cone"]
	p := New(g, Options{BlockTarget: len(g.C.Nodes)})
	if got, want := len(p.Blocks), len(g.Levels); got != want {
		t.Fatalf("whole-level cut has %d blocks, want %d (one per level)", got, want)
	}
	for b := range p.Blocks {
		if p.Blocks[b].Level != b {
			t.Fatalf("block %d holds level %d, want %d", b, p.Blocks[b].Level, b)
		}
		if len(p.Blocks[b].Nodes) != len(g.Levels[b]) {
			t.Fatalf("block %d has %d nodes, level has %d", b, len(p.Blocks[b].Nodes), len(g.Levels[b]))
		}
	}
}
