package dist

import (
	"math"
	"testing"
)

// TestPointMassQuantile: a point mass (Sigma == 0) has every quantile
// at Mu — including the p <= 0 and p >= 1 boundaries, where the naive
// Mu + 0*(±Inf) scaling would manufacture a NaN.
func TestPointMassQuantile(t *testing.T) {
	n := Normal{Mu: 3.5, Sigma: 0}
	for _, p := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
		if got := n.Quantile(p); got != 3.5 {
			t.Fatalf("Quantile(%v) = %v, want 3.5", p, got)
		}
	}
	if got := n.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
}

// TestNegativeSigmaIsNaN: a negative (or NaN) standard deviation has
// no density, CDF or quantiles; the guards return NaN rather than the
// sign-flipped garbage the formulas would produce.
func TestNegativeSigmaIsNaN(t *testing.T) {
	for _, sigma := range []float64{-1, -1e-300, math.NaN()} {
		n := Normal{Mu: 0, Sigma: sigma}
		if v := n.PDF(0); !math.IsNaN(v) {
			t.Fatalf("Sigma=%v: PDF = %v, want NaN", sigma, v)
		}
		if v := n.CDF(0); !math.IsNaN(v) {
			t.Fatalf("Sigma=%v: CDF = %v, want NaN", sigma, v)
		}
		if v := n.Quantile(0.5); !math.IsNaN(v) {
			t.Fatalf("Sigma=%v: Quantile = %v, want NaN", sigma, v)
		}
		if n.Validate() == nil {
			t.Fatalf("Sigma=%v: Validate accepted an invalid sigma", sigma)
		}
	}
}

// TestPointMassPDFandCDF: the degenerate branches stay exact.
func TestPointMassPDFandCDF(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0}
	if v := n.PDF(1); !math.IsInf(v, 1) {
		t.Fatalf("PDF at the atom = %v, want +Inf", v)
	}
	if v := n.PDF(2); v != 0 {
		t.Fatalf("PDF off the atom = %v, want 0", v)
	}
	if v := n.CDF(0.5); v != 0 {
		t.Fatalf("CDF below the atom = %v, want 0", v)
	}
	if v := n.CDF(1); v != 1 {
		t.Fatalf("CDF at the atom = %v, want 1", v)
	}
}
