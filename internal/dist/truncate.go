package dist

import "math"

// TruncatedBelowMoments returns the mean and standard deviation of a
// normal N(mu, sigma^2) truncated to [lo, +inf).
//
// Gate delays are physically non-negative; Monte Carlo validation can
// optionally draw from a delay distribution truncated at zero, and
// this helper quantifies how far such truncation moves the first two
// moments from the untruncated Gaussian the analytic model assumes.
func TruncatedBelowMoments(mu, sigma, lo float64) (tmu, tsigma float64) {
	if sigma == 0 {
		if mu >= lo {
			return mu, 0
		}
		return lo, 0
	}
	alpha := (lo - mu) / sigma
	z := 1 - CDF(alpha)
	if z <= 0 {
		// The entire mass sits below the truncation point; the
		// truncated law collapses onto the boundary.
		return lo, 0
	}
	lambda := PDF(alpha) / z
	tmu = mu + sigma*lambda
	delta := lambda * (lambda - alpha)
	v := sigma * sigma * (1 - delta)
	if v < 0 {
		v = 0
	}
	return tmu, math.Sqrt(v)
}

// KSNormal returns the Kolmogorov-Smirnov distance between the
// empirical distribution of the sorted sample xs and the normal law n.
// The sample must be sorted ascending; the function does not check.
func KSNormal(sorted []float64, n Normal) float64 {
	m := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := n.CDF(x)
		lo := f - float64(i)/m
		hi := float64(i+1)/m - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// SampleMoments returns the mean and (population) standard deviation
// of xs using a numerically stable one-pass Welford accumulation.
func SampleMoments(xs []float64) (mean, sigma float64) {
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	if len(xs) == 0 {
		return 0, 0
	}
	return m, math.Sqrt(m2 / float64(len(xs)))
}
