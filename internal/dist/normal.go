// Package dist provides scalar probability utilities for the normal
// distribution: density, cumulative distribution, quantile (inverse
// CDF), moments and simple truncation helpers.
//
// The statistical delay model of Jacobs & Berkelaar (DATE 2000) treats
// every arrival time and gate delay as a Gaussian random variable, so
// these scalar primitives underpin every other package in this module.
// Everything here is pure stdlib (math only) and allocation free.
package dist

import (
	"errors"
	"fmt"
	"math"
)

// InvSqrt2Pi is 1/sqrt(2*pi), the normalization constant of the
// standard normal density.
const InvSqrt2Pi = 0.3989422804014326779399460599343818684758586311649

// Sqrt2 is sqrt(2); kept as a named constant because the CDF is
// evaluated through erf(x/sqrt(2)) on the hot path.
const Sqrt2 = 1.4142135623730950488016887242096980785696718753769

// PDF returns the standard normal probability density at x,
// phi(x) = exp(-x^2/2)/sqrt(2*pi).
func PDF(x float64) float64 {
	return InvSqrt2Pi * math.Exp(-0.5*x*x)
}

// CDF returns the standard normal cumulative distribution at x,
// Phi(x) = P(Z <= x) for Z ~ N(0,1). This is the paper's phi-function
// (eq 11), implemented through the error function.
func CDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/Sqrt2)
}

// LogPDF returns log(phi(x)) without underflowing for large |x|.
func LogPDF(x float64) float64 {
	return -0.5*x*x - 0.9189385332046727417803297364056176398613974736378
}

// Mills returns the Mills ratio (1-Phi(x))/phi(x), computed stably for
// large positive x via a continued-fraction-free asymptotic fallback.
// It is used when evaluating conditional tail moments.
func Mills(x float64) float64 {
	if x < 30 {
		p := PDF(x)
		if p > 0 {
			return (1 - CDF(x)) / p
		}
	}
	// Asymptotic expansion 1/x - 1/x^3 + 3/x^5 - 15/x^7 for x -> inf.
	ix := 1 / x
	ix2 := ix * ix
	return ix * (1 - ix2*(1-ix2*(3-15*ix2)))
}

// Normal is a univariate normal distribution N(Mu, Sigma^2).
// Sigma must be non-negative; Sigma == 0 denotes a point mass at Mu,
// which arises naturally for primary-input arrival times.
type Normal struct {
	Mu    float64
	Sigma float64
}

// ErrBadSigma is returned by Validate for negative or non-finite
// standard deviations.
var ErrBadSigma = errors.New("dist: standard deviation must be finite and non-negative")

// Validate reports whether the distribution's parameters are usable.
func (n Normal) Validate() error {
	if math.IsNaN(n.Mu) || math.IsInf(n.Mu, 0) {
		return fmt.Errorf("dist: mean %v is not finite", n.Mu)
	}
	if n.Sigma < 0 || math.IsNaN(n.Sigma) || math.IsInf(n.Sigma, 0) {
		return fmt.Errorf("%w: got %v", ErrBadSigma, n.Sigma)
	}
	return nil
}

// Var returns the variance Sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// PDF returns the density of the distribution at x. For a point mass
// (Sigma == 0) it returns +Inf at Mu and 0 elsewhere. A negative (or
// NaN) Sigma has no density: the result is NaN, an explicit signal
// rather than the sign-flipped garbage the formula would produce.
func (n Normal) PDF(x float64) float64 {
	if !(n.Sigma >= 0) {
		return math.NaN()
	}
	if n.Sigma == 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	return PDF((x-n.Mu)/n.Sigma) / n.Sigma
}

// CDF returns P(X <= x). A negative (or NaN) Sigma returns NaN (see
// PDF).
func (n Normal) CDF(x float64) float64 {
	if !(n.Sigma >= 0) {
		return math.NaN()
	}
	if n.Sigma == 0 {
		if x >= n.Mu {
			return 1
		}
		return 0
	}
	return CDF((x - n.Mu) / n.Sigma)
}

// Quantile returns the p-quantile of the distribution; p must lie in
// (0, 1) for a non-degenerate result. Quantile(0.5) == Mu exactly. A
// point mass (Sigma == 0) has every quantile at Mu — including the
// p <= 0 and p >= 1 boundaries, where the naive Mu + 0*(±Inf) scaling
// would manufacture a NaN. A negative (or NaN) Sigma returns NaN.
func (n Normal) Quantile(p float64) float64 {
	if !(n.Sigma >= 0) {
		return math.NaN()
	}
	if n.Sigma == 0 {
		if math.IsNaN(p) {
			return math.NaN()
		}
		return n.Mu
	}
	return n.Mu + n.Sigma*Quantile(p)
}

// Add returns the distribution of the sum of two independent normals
// (the paper's eq 4).
func (n Normal) Add(m Normal) Normal {
	return Normal{
		Mu:    n.Mu + m.Mu,
		Sigma: math.Sqrt(n.Sigma*n.Sigma + m.Sigma*m.Sigma),
	}
}

// Shift returns the distribution translated by the constant d.
func (n Normal) Shift(d float64) Normal {
	return Normal{Mu: n.Mu + d, Sigma: n.Sigma}
}

// Scale returns the distribution of c*X. Negative c is allowed; the
// standard deviation stays non-negative.
func (n Normal) Scale(c float64) Normal {
	return Normal{Mu: c * n.Mu, Sigma: math.Abs(c) * n.Sigma}
}

// String renders the distribution as "N(mu, sigma)".
func (n Normal) String() string {
	return fmt.Sprintf("N(%.6g, %.6g)", n.Mu, n.Sigma)
}
