package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestPDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.3989422804014327},
		{1, 0.24197072451914337},
		{-1, 0.24197072451914337},
		{2, 0.05399096651318806},
		{3, 0.004431848411938008},
	}
	for _, c := range cases {
		if got := PDF(c.x); !almostEqual(got, c.want, 1e-15) {
			t.Errorf("PDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{3, 0.9986501019683699},
		{-3, 0.0013498980316300933},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := CDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 20)
		return almostEqual(CDF(x)+CDF(-x), 1, 1e-14)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		if a > b {
			a, b = b, a
		}
		return CDF(a) <= CDF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPDFIsDerivativeOfCDF(t *testing.T) {
	const h = 1e-6
	for x := -5.0; x <= 5.0; x += 0.25 {
		fd := (CDF(x+h) - CDF(x-h)) / (2 * h)
		if !almostEqual(fd, PDF(x), 1e-8) {
			t.Errorf("d/dx CDF(%v) = %v, PDF = %v", x, fd, PDF(x))
		}
	}
}

func TestLogPDF(t *testing.T) {
	for x := -10.0; x <= 10.0; x += 0.5 {
		if got, want := LogPDF(x), math.Log(PDF(x)); !almostEqual(got, want, 1e-12) {
			t.Errorf("LogPDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Must not underflow where PDF does.
	if got := LogPDF(100); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("LogPDF(100) = %v, want finite", got)
	}
}

func TestMills(t *testing.T) {
	for _, x := range []float64{-5, -1, 0, 1, 5, 10, 25} {
		want := (1 - CDF(x)) / PDF(x)
		if got := Mills(x); !almostEqual(got, want, 1e-9) {
			t.Errorf("Mills(%v) = %v, want %v", x, got, want)
		}
	}
	// Large-x asymptotic branch: Mills(x) ~ 1/x - 1/x^3.
	want := 1/50.0 - 1/math.Pow(50, 3)
	if got := Mills(50); !almostEqual(got, want, 1e-5) {
		t.Errorf("Mills(50) = %v, want approx %v", got, want)
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	for p := 1e-10; p < 1; p += 0.001 {
		x := Quantile(p)
		if got := CDF(x); !almostEqual(got, p, 1e-11) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestQuantileTails(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9986501019683699, 3},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{1e-15, -7.941345326170997},
	}
	for _, c := range cases {
		if got := Quantile(c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	if !math.IsInf(Quantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
}

func TestNormalValidate(t *testing.T) {
	good := []Normal{{0, 0}, {1, 2}, {-5, 0.1}}
	for _, n := range good {
		if err := n.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", n, err)
		}
	}
	bad := []Normal{
		{math.NaN(), 1},
		{math.Inf(1), 1},
		{0, -1},
		{0, math.NaN()},
		{0, math.Inf(1)},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", n)
		}
	}
}

func TestNormalPointMass(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0}
	if got := n.CDF(2.999); got != 0 {
		t.Errorf("point mass CDF below = %v", got)
	}
	if got := n.CDF(3); got != 1 {
		t.Errorf("point mass CDF at = %v", got)
	}
	if got := n.PDF(1); got != 0 {
		t.Errorf("point mass PDF off = %v", got)
	}
	if got := n.PDF(3); !math.IsInf(got, 1) {
		t.Errorf("point mass PDF at = %v", got)
	}
}

func TestNormalAdd(t *testing.T) {
	a := Normal{Mu: 1, Sigma: 3}
	b := Normal{Mu: 2, Sigma: 4}
	c := a.Add(b)
	if c.Mu != 3 || !almostEqual(c.Sigma, 5, 1e-15) {
		t.Errorf("Add = %v, want N(3,5)", c)
	}
}

func TestNormalAddCommutative(t *testing.T) {
	f := func(m1, s1, m2, s2 float64) bool {
		s1, s2 = math.Abs(math.Mod(s1, 10)), math.Abs(math.Mod(s2, 10))
		m1, m2 = math.Mod(m1, 100), math.Mod(m2, 100)
		a := Normal{m1, s1}
		b := Normal{m2, s2}
		x, y := a.Add(b), b.Add(a)
		return almostEqual(x.Mu, y.Mu, 1e-12) && almostEqual(x.Sigma, y.Sigma, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalShiftScale(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 1.5}
	if s := n.Shift(3); s.Mu != 5 || s.Sigma != 1.5 {
		t.Errorf("Shift = %v", s)
	}
	if s := n.Scale(-2); s.Mu != -4 || s.Sigma != 3 {
		t.Errorf("Scale = %v", s)
	}
}

func TestNormalQuantileMedian(t *testing.T) {
	n := Normal{Mu: 7, Sigma: 2}
	if got := n.Quantile(0.5); !almostEqual(got, 7, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if got := n.Quantile(0.8413447460685429); !almostEqual(got, 9, 1e-9) {
		t.Errorf("mu+sigma quantile = %v", got)
	}
}

func TestTruncatedBelowMoments(t *testing.T) {
	// Truncating far below the mean changes nothing.
	mu, sg := TruncatedBelowMoments(10, 1, -50)
	if !almostEqual(mu, 10, 1e-9) || !almostEqual(sg, 1, 1e-9) {
		t.Errorf("far truncation: mu=%v sigma=%v", mu, sg)
	}
	// Truncating a standard normal at its mean: mean = phi(0)/0.5,
	// known half-normal moments.
	mu, sg = TruncatedBelowMoments(0, 1, 0)
	wantMu := PDF(0) / 0.5
	wantSg := math.Sqrt(1 - wantMu*wantMu)
	if !almostEqual(mu, wantMu, 1e-12) || !almostEqual(sg, wantSg, 1e-12) {
		t.Errorf("half-normal: mu=%v sigma=%v want %v %v", mu, sg, wantMu, wantSg)
	}
	// Degenerate sigma.
	mu, sg = TruncatedBelowMoments(1, 0, 3)
	if mu != 3 || sg != 0 {
		t.Errorf("degenerate: %v %v", mu, sg)
	}
	// Entire mass below the cut collapses to the boundary.
	mu, sg = TruncatedBelowMoments(0, 1, 60)
	if mu != 60 || sg != 0 {
		t.Errorf("collapsed: %v %v", mu, sg)
	}
}

func TestTruncatedMomentsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 400000
	xs := make([]float64, 0, n)
	mu0, sg0, lo := 2.0, 1.5, 1.0
	for len(xs) < n {
		x := mu0 + sg0*rng.NormFloat64()
		if x >= lo {
			xs = append(xs, x)
		}
	}
	m, s := SampleMoments(xs)
	wm, ws := TruncatedBelowMoments(mu0, sg0, lo)
	if !almostEqual(m, wm, 5e-3) {
		t.Errorf("MC mean %v vs analytic %v", m, wm)
	}
	if !almostEqual(s, ws, 5e-3) {
		t.Errorf("MC sigma %v vs analytic %v", s, ws)
	}
}

func TestSampleMoments(t *testing.T) {
	m, s := SampleMoments([]float64{1, 2, 3, 4})
	if !almostEqual(m, 2.5, 1e-14) {
		t.Errorf("mean = %v", m)
	}
	if !almostEqual(s, math.Sqrt(1.25), 1e-14) {
		t.Errorf("sigma = %v", s)
	}
	if m, s := SampleMoments(nil); m != 0 || s != 0 {
		t.Errorf("empty moments = %v %v", m, s)
	}
}

func TestKSNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	sort.Float64s(xs)
	d := KSNormal(xs, Normal{Mu: 3, Sigma: 2})
	// For a correct law, KS distance should be around 1/sqrt(n).
	if d > 0.02 {
		t.Errorf("KS distance %v too large for matching law", d)
	}
	// A wrong law must be flagged.
	if d2 := KSNormal(xs, Normal{Mu: 0, Sigma: 2}); d2 < 0.3 {
		t.Errorf("KS distance %v too small for wrong law", d2)
	}
}

func TestNormalString(t *testing.T) {
	got := Normal{Mu: 1.5, Sigma: 0.25}.String()
	if got != "N(1.5, 0.25)" {
		t.Errorf("String = %q", got)
	}
}
