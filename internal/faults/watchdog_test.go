package faults

import (
	"testing"

	"repro/internal/nlp"
	"repro/internal/telemetry"
)

// TestWatchdogFiresOnNonConvergingSolve is the watchdog acceptance
// criterion: a solve whose objective element persistently evaluates to
// NaN cannot make progress — the recovery loop restores the last good
// iterate again and again, so the alm.outer merit plateaus — and the
// solve-health watchdog in the telemetry chain must raise
// solve.stalled while the solve is still running. The stall events are
// themselves deterministic (driven by worker-count-invariant event
// values), so the test also pins them across worker counts.
func TestWatchdogFiresOnNonConvergingSolve(t *testing.T) {
	run := func(workers int) *telemetry.Watchdog {
		const n = 8
		p := chain(n, true)
		wrapped, rec := Wrap(p, []Fault{{Elem: 0, Call: 4, Kind: EvalNaN, Persist: true}}, nil)
		wd := telemetry.NewWatchdog(telemetry.NewMetrics(), telemetry.WatchdogOptions{
			MinImprove: 1e-9,
			Patience:   4,
		})
		opt := nlp.Options{
			Method: nlp.LBFGS, Workers: workers,
			RecoveryBudget: 3, Recorder: wd,
		}
		res, err := nlp.Solve(wrapped, point(n), opt)
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		if res.Status != nlp.NumericalFailure {
			t.Fatalf("status = %v, want NumericalFailure (the fixture must not converge)", res.Status)
		}
		if rec.Count() == 0 {
			t.Fatal("persistent fault never fired")
		}
		return wd
	}

	wd := run(1)
	if !wd.Stalled() {
		t.Fatal("watchdog stayed silent on a non-converging fault-injected solve")
	}
	s := wd.Stalls()[0]
	if s.Scope != "alm" || s.Src != telemetry.StallSrcALM {
		t.Errorf("stall source = %s/%d, want alm/%d", s.Scope, s.Src, telemetry.StallSrcALM)
	}
	if s.Streak < 4 {
		t.Errorf("stall streak = %d, want >= patience 4", s.Streak)
	}

	// Determinism: the same stalls fire for any worker count.
	wd4 := run(4)
	a, b := wd.Stalls(), wd4.Stalls()
	if len(a) != len(b) {
		t.Fatalf("stall count differs across workers: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("stall %d differs across workers: %+v vs %+v", i, a[i], b[i])
		}
	}
}
