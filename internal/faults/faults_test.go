package faults

import (
	"context"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/nlp"
)

// chain builds a coupled quartic/quadratic test problem in the same
// shape as the nlp package's own fixtures (which an external package
// cannot reach): separable well terms plus coupling terms, all with
// exact local Hessians, and optionally a linear budget inequality that
// is active at the solution so the augmented-Lagrangian outer loop has
// real work to do. Element order — the order faults.Fault.Elem indexes
// — is objective elements first, then the inequality constraint.
func chain(n int, constrained bool) *nlp.Problem {
	p := &nlp.Problem{N: n}
	for i := 0; i < n; i++ {
		c := 1 + 0.5*math.Sin(float64(i))
		p.Objective = append(p.Objective, nlp.Element{
			Vars: []int{i},
			Eval: func(x []float64) float64 {
				d := x[0] - c
				return d*d + 0.1*d*d*d*d
			},
			Grad: func(x []float64, g []float64) {
				d := x[0] - c
				g[0] = 2*d + 0.4*d*d*d
			},
			Hess: func(x []float64, h [][]float64) {
				d := x[0] - c
				h[0][0] = 2 + 1.2*d*d
			},
		})
	}
	for i := 0; i+1 < n; i += 3 {
		p.Objective = append(p.Objective, nlp.Element{
			Vars: []int{i, i + 1},
			Eval: func(x []float64) float64 {
				d := x[1] - x[0]*x[0]
				return 0.5 * d * d
			},
			Grad: func(x []float64, g []float64) {
				d := x[1] - x[0]*x[0]
				g[0] = -2 * d * x[0]
				g[1] = d
			},
			Hess: func(x []float64, h [][]float64) {
				d := x[1] - x[0]*x[0]
				h[0][0] = 4*x[0]*x[0] - 2*d
				h[0][1], h[1][0] = -2*x[0], -2*x[0]
				h[1][1] = 1
			},
		})
	}
	if constrained {
		vars := make([]int, n)
		coeffs := make([]float64, n)
		for i := range vars {
			vars[i], coeffs[i] = i, 1
		}
		p.IneqCons = []nlp.Constraint{{
			Name: "budget",
			El:   nlp.LinearElement(vars, coeffs, -0.8*float64(n)),
		}}
	}
	return p
}

func point(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.2 + 0.03*float64(i%11)
	}
	return x
}

func allFinite(x []float64) bool {
	for _, v := range x {
		if v-v != 0 {
			return false
		}
	}
	return true
}

// TestTransientNaNRecoversToCleanObjective is the first acceptance
// criterion: scripted NaN/Inf evaluations — on an objective element and
// on the inequality constraint — must not derail the solve; the faulted
// run converges to the clean-run objective within tolerance.
func TestTransientNaNRecoversToCleanObjective(t *testing.T) {
	const n = 16
	p := chain(n, true)
	opt := nlp.Options{Method: nlp.LBFGS, Workers: 1}

	clean, err := nlp.Solve(p, point(n), opt)
	if err != nil {
		t.Fatalf("clean solve: %v", err)
	}
	if clean.Status != nlp.Converged {
		t.Fatalf("clean status = %v, want Converged", clean.Status)
	}

	ineqElem := len(p.Objective) // first (only) inequality element
	script := []Fault{
		{Elem: 0, Call: 6, Kind: EvalNaN},
		{Elem: 0, Call: 11, Kind: EvalNaN},
		{Elem: 2, Call: 9, Kind: EvalInf},
		{Elem: ineqElem, Call: 7, Kind: EvalNaN},
	}
	wrapped, rec := Wrap(p, script, nil)
	res, err := nlp.Solve(wrapped, point(n), opt)
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if rec.Count() == 0 {
		t.Fatal("no scripted fault fired")
	}
	if res.Status != nlp.Converged {
		t.Fatalf("faulted status = %v, want Converged (fired: %v)", res.Status, rec.Fired())
	}
	if diff := math.Abs(res.F - clean.F); diff > 1e-5*(1+math.Abs(clean.F)) {
		t.Fatalf("faulted F = %v, clean F = %v (diff %g)", res.F, clean.F, diff)
	}
	if !allFinite(res.X) {
		t.Fatalf("faulted X not finite: %v", res.X)
	}
}

// TestPersistentNaNExhaustsBudgetThenFails: an element that never again
// evaluates finite must drive the recovery loop (restore + penalty
// relax) through its per-rung budget, step down every ladder rung, and
// only then report NumericalFailure — with a finite iterate, not the
// poisoned one.
func TestPersistentNaNExhaustsBudgetThenFails(t *testing.T) {
	const n = 8
	p := chain(n, true)
	wrapped, rec := Wrap(p, []Fault{{Elem: 0, Call: 4, Kind: EvalNaN, Persist: true}}, nil)

	opt := nlp.Options{Method: nlp.LBFGS, Workers: 1, RecoveryBudget: 3}
	res, err := nlp.Solve(wrapped, point(n), opt)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Status != nlp.NumericalFailure {
		t.Fatalf("status = %v, want NumericalFailure", res.Status)
	}
	if !res.Status.Failed() {
		t.Fatal("NumericalFailure must report Failed()")
	}
	if res.Recoveries <= opt.RecoveryBudget {
		t.Fatalf("Recoveries = %d, want > per-rung budget %d", res.Recoveries, opt.RecoveryBudget)
	}
	if res.Method != nlp.ProjGrad {
		t.Fatalf("final method = %v, want ProjGrad (bottom of the LBFGS ladder)", res.Method)
	}
	if !allFinite(res.X) {
		t.Fatalf("X after failure not finite: %v", res.X)
	}
	if rec.Count() == 0 {
		t.Fatal("persistent fault never fired")
	}
}

// TestHessNaNDegradesNewtonToLBFGS is the degradation-ladder
// acceptance criterion: a Newton-CG solve whose Hessian products are
// persistently non-finite cannot take a step; the ladder must swap in
// L-BFGS and still converge to the clean objective.
func TestHessNaNDegradesNewtonToLBFGS(t *testing.T) {
	const n = 12
	p := chain(n, false) // unconstrained: ladder fires on the first stalled inner solve
	opt := nlp.Options{Method: nlp.NewtonCG, Workers: 1}

	clean, err := nlp.Solve(p, point(n), opt)
	if err != nil {
		t.Fatalf("clean solve: %v", err)
	}
	if clean.Status != nlp.Converged {
		t.Fatalf("clean status = %v, want Converged", clean.Status)
	}

	wrapped, rec := Wrap(p, []Fault{{Elem: 0, Call: 1, Kind: HessNaN, Persist: true}}, nil)
	res, err := nlp.Solve(wrapped, point(n), opt)
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if rec.Count() == 0 {
		t.Fatal("Hessian fault never fired")
	}
	if res.Method == nlp.NewtonCG {
		t.Fatalf("method stayed NewtonCG; ladder did not degrade (status %v)", res.Status)
	}
	if res.Status != nlp.Converged {
		t.Fatalf("degraded status = %v, want Converged", res.Status)
	}
	if diff := math.Abs(res.F - clean.F); diff > 1e-5*(1+math.Abs(clean.F)) {
		t.Fatalf("degraded F = %v, clean F = %v (diff %g)", res.F, clean.F, diff)
	}
}

// TestGradNaNIsRecoverable: a transient poisoned gradient entry must
// be caught by the non-finite screens (line search or recovery path)
// without corrupting the final iterate.
func TestGradNaNIsRecoverable(t *testing.T) {
	const n = 16
	p := chain(n, true)
	opt := nlp.Options{Method: nlp.LBFGS, Workers: 1}

	clean, err := nlp.Solve(p, point(n), opt)
	if err != nil {
		t.Fatalf("clean solve: %v", err)
	}
	wrapped, rec := Wrap(p, []Fault{{Elem: 1, Call: 5, Kind: GradNaN}}, nil)
	res, err := nlp.Solve(wrapped, point(n), opt)
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if rec.Count() != 1 {
		t.Fatalf("fired %d faults, want exactly 1", rec.Count())
	}
	if res.Status != nlp.Converged {
		t.Fatalf("status = %v, want Converged", res.Status)
	}
	if diff := math.Abs(res.F - clean.F); diff > 1e-5*(1+math.Abs(clean.F)) {
		t.Fatalf("F = %v, clean F = %v (diff %g)", res.F, clean.F, diff)
	}
}

// cancelRun drives one scripted-cancellation solve and returns the
// result plus the number of firings.
func cancelRun(t *testing.T, n, workers, call int) (*nlp.Result, int) {
	t.Helper()
	p := chain(n, true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped, rec := Wrap(p, []Fault{{Elem: 0, Call: call, Kind: Cancel}}, cancel)
	res, err := nlp.SolveCtx(ctx, wrapped, point(n), nlp.Options{Method: nlp.LBFGS, Workers: workers})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return res, rec.Count()
}

// TestCancelMidSolve is the cancellation acceptance criterion: a kill
// signal scripted at an exact element call must yield Cancelled with a
// finite best-so-far iterate, leak no goroutines, and produce a
// bit-identical trajectory for every worker count (the fault counter is
// per-element, so the logical cancellation point is schedule-free).
func TestCancelMidSolve(t *testing.T) {
	// Large enough to clear the engine's parallel threshold so Workers 4
	// actually spins up the pool whose shutdown we are checking.
	const n = 140
	const call = 30

	base := runtime.NumGoroutine()
	serial, fired := cancelRun(t, n, 1, call)
	if fired != 1 {
		t.Fatalf("cancel fault fired %d times, want 1", fired)
	}
	if serial.Status != nlp.Cancelled {
		t.Fatalf("status = %v, want Cancelled", serial.Status)
	}
	if !serial.Status.Failed() {
		t.Fatal("Cancelled must report Failed()")
	}
	if len(serial.X) != n || !allFinite(serial.X) {
		t.Fatalf("best-so-far X invalid: len %d", len(serial.X))
	}

	par, _ := cancelRun(t, n, 4, call)
	if par.Status != nlp.Cancelled {
		t.Fatalf("parallel status = %v, want Cancelled", par.Status)
	}
	if serial.Outer != par.Outer || serial.Inner != par.Inner || serial.FuncEvals != par.FuncEvals {
		t.Fatalf("cancellation point depends on workers: serial outer/inner/evals %d/%d/%d, parallel %d/%d/%d",
			serial.Outer, serial.Inner, serial.FuncEvals, par.Outer, par.Inner, par.FuncEvals)
	}
	for i := range serial.X {
		if serial.X[i] != par.X[i] {
			t.Fatalf("X[%d] differs across worker counts: %v vs %v", i, serial.X[i], par.X[i])
		}
	}

	// The engine pool must have wound down: no goroutine leaks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled solves: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFiringsDeterministic: the same script on the same problem fires
// the same injections and produces the same solve, run after run — the
// harness's core promise.
func TestFiringsDeterministic(t *testing.T) {
	const n = 16
	script := []Fault{
		{Elem: 0, Call: 6, Kind: EvalNaN},
		{Elem: 3, Call: 4, Kind: EvalInf},
		{Elem: 1, Call: 5, Kind: GradNaN},
	}
	run := func(workers int) (*nlp.Result, []Firing) {
		p := chain(n, true)
		wrapped, rec := Wrap(p, script, nil)
		res, err := nlp.Solve(wrapped, point(n), nlp.Options{Method: nlp.LBFGS, Workers: workers})
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		fired := rec.Fired()
		sort.Slice(fired, func(i, j int) bool {
			if fired[i].Elem != fired[j].Elem {
				return fired[i].Elem < fired[j].Elem
			}
			if fired[i].Call != fired[j].Call {
				return fired[i].Call < fired[j].Call
			}
			return fired[i].Kind < fired[j].Kind
		})
		return res, fired
	}

	r1, f1 := run(1)
	r2, f2 := run(1)
	if len(f1) == 0 {
		t.Fatal("no faults fired")
	}
	if len(f1) != len(f2) {
		t.Fatalf("firing counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("firing %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
	if r1.F != r2.F || r1.Outer != r2.Outer || r1.Inner != r2.Inner || r1.FuncEvals != r2.FuncEvals {
		t.Fatalf("repeat run diverged: F %v/%v outer %d/%d inner %d/%d evals %d/%d",
			r1.F, r2.F, r1.Outer, r2.Outer, r1.Inner, r2.Inner, r1.FuncEvals, r2.FuncEvals)
	}
}

// TestWrapLeavesOriginalClean: Wrap must hand back an independent copy;
// the pristine problem keeps solving cleanly after the faulted copy ran.
func TestWrapLeavesOriginalClean(t *testing.T) {
	const n = 8
	p := chain(n, true)
	wrapped, _ := Wrap(p, []Fault{{Elem: 0, Call: 1, Kind: EvalNaN, Persist: true}}, nil)
	if _, err := nlp.Solve(wrapped, point(n), nlp.Options{Workers: 1, RecoveryBudget: 1, MaxOuter: 10}); err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	res, err := nlp.Solve(p, point(n), nlp.Options{Workers: 1})
	if err != nil {
		t.Fatalf("original solve: %v", err)
	}
	if res.Status != nlp.Converged {
		t.Fatalf("original problem no longer converges: %v", res.Status)
	}
}
