// Package faults is a deterministic fault-injection harness for the
// solver stack's resilience layer. It wraps an nlp.Problem so that
// scripted element callbacks misbehave — returning NaN or Inf,
// poisoning a gradient or Hessian entry, or firing a context
// cancellation — at exact per-element call indices.
//
// Determinism is the whole point: faults are keyed on *per-element*
// call counters, not a global evaluation count. The NLP engine may
// evaluate distinct elements concurrently, so a global counter would
// fire at a schedule-dependent call, but one element's callbacks are
// never invoked concurrently with each other (and dispatches are
// separated by the engine barrier), so a per-element counter advances
// identically for every worker count. Every recovery path the
// resilience layer implements can therefore be exercised reproducibly,
// with bit-identical solver trajectories across -j values.
package faults

import (
	"context"
	"math"
	"sync"

	"repro/internal/nlp"
)

// Kind selects what a fault does when it fires.
type Kind int

// Fault kinds.
const (
	// EvalNaN makes the element's Eval return NaN.
	EvalNaN Kind = iota
	// EvalInf makes the element's Eval return +Inf.
	EvalInf
	// GradNaN poisons the first entry of the element's gradient.
	GradNaN
	// HessNaN poisons the (0,0) entry of the element's local Hessian.
	HessNaN
	// Cancel invokes the context.CancelFunc passed to Wrap when the
	// element's Eval is called; the evaluation itself returns the true
	// value, modelling an external kill signal arriving mid-solve.
	Cancel
)

func (k Kind) String() string {
	switch k {
	case EvalNaN:
		return "eval-nan"
	case EvalInf:
		return "eval-inf"
	case GradNaN:
		return "grad-nan"
	case HessNaN:
		return "hess-nan"
	case Cancel:
		return "cancel"
	default:
		return "unknown"
	}
}

// Fault schedules one injection. Elem indexes the problem's elements
// in the engine's serial order: objective elements first, then
// equality constraints, then inequality constraints. Call is the
// 1-based per-element invocation index of the targeted callback (Eval
// for EvalNaN/EvalInf/Cancel, Grad for GradNaN, Hess for HessNaN) at
// which the fault fires; with Persist set it keeps firing on every
// later call too.
type Fault struct {
	Elem    int
	Call    int
	Kind    Kind
	Persist bool
}

// Firing records one injection that actually happened.
type Firing struct {
	Elem, Call int
	Kind       Kind
}

// Recorder collects the injections that fired. The count and the set
// of firings are deterministic for a deterministic solve; the *order*
// across different elements is not (their callbacks may run
// concurrently), so assertions should compare sets or counts.
type Recorder struct {
	mu    sync.Mutex
	fired []Firing
}

func (r *Recorder) record(f Firing) {
	r.mu.Lock()
	r.fired = append(r.fired, f)
	r.mu.Unlock()
}

// Fired returns a copy of the recorded injections.
func (r *Recorder) Fired() []Firing {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Firing(nil), r.fired...)
}

// Count returns how many injections fired.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fired)
}

// counters tracks one wrapped element's per-callback call counts. The
// engine never runs one element's callbacks concurrently and separates
// dispatches with a barrier, so plain ints are race-free and advance
// identically for every worker count.
type counters struct {
	eval, grad, hess int
}

// hits reports whether fault f (targeting call index `call` of its
// callback) fires now.
func (f *Fault) hits(call int) bool {
	if f.Persist {
		return call >= f.Call
	}
	return call == f.Call
}

// Wrap returns a copy of p whose element callbacks inject the scripted
// faults, plus the Recorder collecting what fired. Cancel faults call
// cancel (which may be nil to make them inert). The wrapped problem
// shares the original element closures but owns its own element
// slices, so the original problem stays clean for reference runs.
func Wrap(p *nlp.Problem, faults []Fault, cancel context.CancelFunc) (*nlp.Problem, *Recorder) {
	rec := &Recorder{}
	q := *p
	q.Objective = append([]nlp.Element(nil), p.Objective...)
	q.EqCons = append([]nlp.Constraint(nil), p.EqCons...)
	q.IneqCons = append([]nlp.Constraint(nil), p.IneqCons...)

	idx := 0
	wrap := func(el *nlp.Element) {
		elem := idx
		idx++
		var mine []Fault
		for _, f := range faults {
			if f.Elem == elem {
				mine = append(mine, f)
			}
		}
		if len(mine) == 0 {
			return
		}
		orig := *el
		cnt := &counters{}
		el.Eval = func(x []float64) float64 {
			cnt.eval++
			v := orig.Eval(x)
			for i := range mine {
				f := &mine[i]
				switch f.Kind {
				case EvalNaN, EvalInf, Cancel:
					if !f.hits(cnt.eval) {
						continue
					}
					rec.record(Firing{Elem: elem, Call: cnt.eval, Kind: f.Kind})
					switch f.Kind {
					case EvalNaN:
						v = math.NaN()
					case EvalInf:
						v = math.Inf(1)
					case Cancel:
						if cancel != nil {
							cancel()
						}
					}
				}
			}
			return v
		}
		el.Grad = func(x []float64, g []float64) {
			cnt.grad++
			orig.Grad(x, g)
			for i := range mine {
				f := &mine[i]
				if f.Kind == GradNaN && f.hits(cnt.grad) {
					rec.record(Firing{Elem: elem, Call: cnt.grad, Kind: f.Kind})
					g[0] = math.NaN()
				}
			}
		}
		if orig.Hess != nil {
			el.Hess = func(x []float64, h [][]float64) {
				cnt.hess++
				orig.Hess(x, h)
				for i := range mine {
					f := &mine[i]
					if f.Kind == HessNaN && f.hits(cnt.hess) {
						rec.record(Firing{Elem: elem, Call: cnt.hess, Kind: f.Kind})
						h[0][0] = math.NaN()
					}
				}
			}
		}
	}

	for i := range q.Objective {
		wrap(&q.Objective[i])
	}
	for i := range q.EqCons {
		wrap(&q.EqCons[i].El)
	}
	for i := range q.IneqCons {
		wrap(&q.IneqCons[i].El)
	}
	return &q, rec
}
