package delay

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLibraryAddLookup(t *testing.T) {
	l := NewLibrary(1, 0, 0, 0)
	l.Add(CellType{Name: "x", Fanin: 2, TInt: 1, CIn: 2})
	if ct, ok := l.Cell("x"); !ok || ct.TInt != 1 {
		t.Errorf("Cell(x) = %+v %v", ct, ok)
	}
	if _, ok := l.Cell("y"); ok {
		t.Error("missing cell found")
	}
	if l.NumCells() != 1 {
		t.Errorf("NumCells = %d", l.NumCells())
	}
}

func TestDefaultLibraryCoversGeneratorTypes(t *testing.T) {
	l := Default()
	for _, typ := range []string{"inv", "buf", "nand2", "nor2", "nand3", "nor3", "nand4", "nor4"} {
		if _, ok := l.Cell(typ); !ok {
			t.Errorf("default library missing %s", typ)
		}
	}
}

func TestBindRejectsUnknownType(t *testing.T) {
	c := netlist.New("t")
	c.AddInput("a")
	c.AddGate("g", "weird9", "a")
	c.MarkOutput("g")
	g := netlist.MustCompile(c)
	if _, err := Bind(g, Default()); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestBindRejectsArityMismatch(t *testing.T) {
	c := netlist.New("t")
	c.AddInput("a")
	c.AddGate("g", "nand2", "a") // nand2 wants 2 inputs
	c.MarkOutput("g")
	g := netlist.MustCompile(c)
	if _, err := Bind(g, Default()); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// chain2 builds in -> g1(inv) -> g2(inv), output g2.
func chain2(t *testing.T) (*Model, netlist.NodeID, netlist.NodeID) {
	t.Helper()
	c := netlist.New("t")
	c.AddInput("in")
	c.AddGate("g1", "inv", "in")
	c.AddGate("g2", "inv", "g1")
	c.MarkOutput("g2")
	g := netlist.MustCompile(c)
	m, err := Bind(g, Default())
	if err != nil {
		t.Fatal(err)
	}
	return m, c.MustID("g1"), c.MustID("g2")
}

func TestBindLoads(t *testing.T) {
	m, g1, g2 := chain2(t)
	lib := Default()
	// g1 drives one fanout pin: CLoad = base + perFanout*1.
	if want := lib.WireBase + lib.WirePerFanout; !close(m.CLoad[g1], want, 1e-15) {
		t.Errorf("CLoad[g1] = %v, want %v", m.CLoad[g1], want)
	}
	// g2 is an output with no fanout: base + pad load.
	if want := lib.WireBase + lib.OutputLoad; !close(m.CLoad[g2], want, 1e-15) {
		t.Errorf("CLoad[g2] = %v, want %v", m.CLoad[g2], want)
	}
}

func TestGateMuMatchesEq14(t *testing.T) {
	m, g1, g2 := chain2(t)
	S := m.UnitSizes()
	S[g1] = 2
	S[g2] = 1.5
	// g1: t_int + c*(CLoad1 + CIn(inv)*S2)/S1.
	want := m.TInt[g1] + m.Coef*(m.CLoad[g1]+m.CIn[g2]*1.5)/2
	if got := m.GateMu(g1, S); !close(got, want, 1e-14) {
		t.Errorf("GateMu(g1) = %v, want %v", got, want)
	}
	// Larger S makes the gate faster, all else equal.
	S2 := append([]float64(nil), S...)
	S2[g1] = 3
	if m.GateMu(g1, S2) >= m.GateMu(g1, S) {
		t.Error("sizing up did not speed the gate up")
	}
	// Sizing the *fanout* up slows the driver down (more load).
	S3 := append([]float64(nil), S...)
	S3[g2] = 3
	if m.GateMu(g1, S3) <= m.GateMu(g1, S) {
		t.Error("fanout upsizing did not load the driver")
	}
}

func TestGateMVUsesSigmaModel(t *testing.T) {
	m, g1, _ := chain2(t)
	m.Sigma = Proportional{K: 0.25}
	S := m.UnitSizes()
	mv := m.GateMV(g1, S)
	mu := m.GateMu(g1, S)
	if !close(mv.Mu, mu, 1e-15) {
		t.Errorf("MV mu = %v, want %v", mv.Mu, mu)
	}
	if !close(mv.Var, (0.25*mu)*(0.25*mu), 1e-14) {
		t.Errorf("MV var = %v", mv.Var)
	}
}

func TestGateMuGradAgainstFD(t *testing.T) {
	// A diamond: in -> a; a -> b, c; b,c -> d. Exercises own-S and
	// fanout-S derivative paths plus multi-fanout accumulation.
	c := netlist.New("t")
	c.AddInput("in")
	c.AddGate("a", "inv", "in")
	c.AddGate("b", "inv", "a")
	c.AddGate("cc", "inv", "a")
	c.AddGate("d", "nand2", "b", "cc")
	c.MarkOutput("d")
	g := netlist.MustCompile(c)
	m, err := Bind(g, Default())
	if err != nil {
		t.Fatal(err)
	}
	S := m.UnitSizes()
	for i, id := range c.GateIDs() {
		S[id] = 1.2 + 0.3*float64(i)
	}
	for _, gid := range c.GateIDs() {
		grad := make([]float64, len(S))
		m.GateMuGrad(gid, S, 1, grad)
		for _, vid := range c.GateIDs() {
			h := 1e-7
			Sp := append([]float64(nil), S...)
			Sm := append([]float64(nil), S...)
			Sp[vid] += h
			Sm[vid] -= h
			fd := (m.GateMu(gid, Sp) - m.GateMu(gid, Sm)) / (2 * h)
			if !close(grad[vid], fd, 1e-5) {
				t.Errorf("d mu(%s)/d S(%s): analytic %v, FD %v",
					c.Nodes[gid].Name, c.Nodes[vid].Name, grad[vid], fd)
			}
		}
	}
}

func TestGateMuGradScaleAndAccumulate(t *testing.T) {
	m, g1, _ := chain2(t)
	S := m.UnitSizes()
	g := make([]float64, len(S))
	m.GateMuGrad(g1, S, 2, g)
	g2 := make([]float64, len(S))
	m.GateMuGrad(g1, S, 1, g2)
	m.GateMuGrad(g1, S, 1, g2) // accumulate twice
	for i := range g {
		if !close(g[i], g2[i], 1e-14) {
			t.Errorf("scale/accumulate mismatch at %d: %v vs %v", i, g[i], g2[i])
		}
	}
}

func TestClampAndSum(t *testing.T) {
	m, g1, g2 := chain2(t)
	S := m.UnitSizes()
	S[g1] = 0.2
	S[g2] = 99
	m.ClampSizes(S)
	if S[g1] != 1 || S[g2] != m.Limit {
		t.Errorf("clamp: %v %v", S[g1], S[g2])
	}
	if got := m.SumSizes(S); !close(got, 1+m.Limit, 1e-15) {
		t.Errorf("SumSizes = %v", got)
	}
}

func TestSigmaModels(t *testing.T) {
	models := []SigmaModel{
		Proportional{K: 0.25},
		Affine{A: 0.1, B: 0.2},
		Constant{S: 0.3},
		Zero{},
	}
	for _, sm := range models {
		if err := ValidateSigmaModel(sm, 0, 10); err != nil {
			t.Errorf("%T: %v", sm, err)
		}
		// DVar must be the derivative of Var.
		for _, mu := range []float64{0.5, 1, 3, 7} {
			h := 1e-6
			fd := (sm.Var(mu+h) - sm.Var(mu-h)) / (2 * h)
			if !close(sm.DVar(mu), fd, 1e-6) {
				t.Errorf("%T DVar(%v) = %v, FD %v", sm, mu, sm.DVar(mu), fd)
			}
			fd2 := (sm.DVar(mu+h) - sm.DVar(mu-h)) / (2 * h)
			if !close(sm.D2Var(mu), fd2, 1e-4) {
				t.Errorf("%T D2Var(%v) = %v, FD %v", sm, mu, sm.D2Var(mu), fd2)
			}
		}
	}
}

func TestValidateSigmaModelCatchesNegative(t *testing.T) {
	if err := ValidateSigmaModel(Affine{A: -5, B: 0}, 0, 10); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestQuickGateMuPositive(t *testing.T) {
	m, g1, g2 := chain2(t)
	f := func(s1, s2 float64) bool {
		S := m.UnitSizes()
		S[g1] = 1 + math.Abs(math.Mod(s1, 2))
		S[g2] = 1 + math.Abs(math.Mod(s2, 2))
		return m.GateMu(g1, S) > m.TInt[g1] && m.GateMu(g2, S) > m.TInt[g2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperTreeLibrary(t *testing.T) {
	l := PaperTree()
	if _, ok := l.Cell("nand2"); !ok {
		t.Fatal("paper tree library missing nand2")
	}
	g := netlist.MustCompile(netlist.Tree7())
	if _, err := Bind(g, l); err != nil {
		t.Fatal(err)
	}
}
