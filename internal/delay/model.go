package delay

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/stats"
)

// Model binds a compiled circuit to a library, flattening the per-gate
// electrical parameters into arrays indexed by netlist.NodeID. It is
// the single source of delay arithmetic for SSTA, Monte Carlo and both
// sizing formulations.
type Model struct {
	G *netlist.Graph

	// Per-node parameters; input nodes hold zeros.
	TInt  []float64 // internal delay t_int
	CIn   []float64 // input pin capacitance of this gate at S = 1
	CLoad []float64 // fixed wiring (+ output pad) capacitance
	Coef  float64   // the constant c of eq 14

	// PinOffset[id] holds the per-pin additive delays of eq 1 for
	// gate id, or nil when every pin is equal.
	PinOffset [][]float64

	// Limit bounds the speed factor: 1 <= S <= Limit.
	Limit float64

	// Sigma maps gate mean delay to delay variance.
	Sigma SigmaModel

	// Arrival holds the arrival-time distribution of each primary
	// input (indexed by NodeID; gate entries are ignored). The zero
	// value — all inputs arrive at t = 0 deterministically — matches
	// the paper's experiments.
	Arrival []stats.MV
}

// Bind flattens the circuit onto the library. Every gate type must
// exist in the library with a matching fan-in count.
func Bind(g *netlist.Graph, lib *Library) (*Model, error) {
	n := len(g.C.Nodes)
	m := &Model{
		G:         g,
		TInt:      make([]float64, n),
		CIn:       make([]float64, n),
		CLoad:     make([]float64, n),
		Coef:      lib.Coef,
		Limit:     3.0,
		Sigma:     Proportional{K: 0.25},
		Arrival:   make([]stats.MV, n),
		PinOffset: make([][]float64, n),
	}
	for i, nd := range g.C.Nodes {
		if nd.Kind != netlist.KindGate {
			continue
		}
		ct, ok := lib.Cell(nd.Type)
		if !ok {
			return nil, fmt.Errorf("delay: gate %q has unknown type %q", nd.Name, nd.Type)
		}
		if ct.Fanin != len(nd.Fanin) {
			return nil, fmt.Errorf("delay: gate %q type %q wants %d inputs, has %d",
				nd.Name, nd.Type, ct.Fanin, len(nd.Fanin))
		}
		if ct.PinOffsets != nil && len(ct.PinOffsets) != ct.Fanin {
			return nil, fmt.Errorf("delay: cell %q has %d pin offsets for %d pins",
				ct.Name, len(ct.PinOffsets), ct.Fanin)
		}
		id := netlist.NodeID(i)
		m.TInt[id] = ct.TInt
		m.CIn[id] = ct.CIn
		m.PinOffset[id] = ct.PinOffsets
		m.CLoad[id] = lib.WireBase + lib.WirePerFanout*float64(len(g.Fanout[id]))
		if g.IsOutput(id) {
			m.CLoad[id] += lib.OutputLoad
		}
	}
	return m, nil
}

// MustBind is Bind for known-good circuit/library pairs; it panics on
// error and is intended for built-ins and tests.
func MustBind(g *netlist.Graph, lib *Library) *Model {
	m, err := Bind(g, lib)
	if err != nil {
		panic(err)
	}
	return m
}

// Load returns the capacitive load seen by gate id under speed factors
// S: C_load + sum over fanout pins of C_in * S_fanout.
func (m *Model) Load(id netlist.NodeID, S []float64) float64 {
	load := m.CLoad[id]
	for _, f := range m.G.Fanout[id] {
		load += m.CIn[f] * S[f]
	}
	return load
}

// GateMu returns the mean gate delay of eq 14 for gate id under the
// speed-factor assignment S.
func (m *Model) GateMu(id netlist.NodeID, S []float64) float64 {
	return m.TInt[id] + m.Coef*m.Load(id, S)/S[id]
}

// GateMV returns the gate delay distribution (mean and variance) of
// gate id under S, applying the sigma model.
func (m *Model) GateMV(id netlist.NodeID, S []float64) stats.MV {
	mu := m.GateMu(id, S)
	return stats.MV{Mu: mu, Var: m.Sigma.Var(mu)}
}

// GateMVLoaded is GateMV with the capacitive load supplied by the
// caller. Load is a pure function of the fanout speed factors, so an
// engine that caches loads and invalidates them under the SDependents
// rule passes bitwise the value Load would recompute — the delay
// expressions here are exactly GateMu/GateMV's.
func (m *Model) GateMVLoaded(id netlist.NodeID, S []float64, load float64) stats.MV {
	mu := m.TInt[id] + m.Coef*load/S[id]
	return stats.MV{Mu: mu, Var: m.Sigma.Var(mu)}
}

// GateMuGrad accumulates scale * d(GateMu(id))/dS into grad. The mean
// delay of gate id depends on its own speed factor (through 1/S) and
// on the speed factors of its fanout gates (through the load):
//
//	d mu / d S_id = -c * load / S_id^2
//	d mu / d S_f  = +c * C_in,f / S_id   for each fanout pin f
//
// A gate driving the same fanout gate through k pins accumulates the
// pin term k times, matching the load model.
func (m *Model) GateMuGrad(id netlist.NodeID, S []float64, scale float64, grad []float64) {
	m.GateMuGradLoaded(id, S, m.Load(id, S), scale, grad)
}

// GateMuGradLoaded is GateMuGrad with a caller-supplied load (see
// GateMVLoaded for the caching contract).
func (m *Model) GateMuGradLoaded(id netlist.NodeID, S []float64, load, scale float64, grad []float64) {
	grad[id] += scale * -m.Coef * load / (S[id] * S[id])
	// The pin factor is hoisted out of the fanout loop — one divide
	// per gate instead of per pin. Every other producer of these
	// terms (GateMuGradTermsLoaded, the K-lane GateMuGradLanes) uses
	// the same (scale*c/S)*CIn expression shape, which is what keeps
	// their results bit-identical to this accumulation.
	pin := scale * m.Coef / S[id]
	for _, f := range m.G.Fanout[id] {
		grad[f] += pin * m.CIn[f]
	}
}

// GateMuGradTerms computes exactly the terms GateMuGrad would
// accumulate, but writes them to caller-owned slots instead of
// adding them into a shared gradient vector: self receives the
// d mu / d S_id term and pins[j] the term for fanout entry j
// (pins must have len(G.Fanout[id])). Each term is produced by the
// same floating-point expression as in GateMuGrad, so a caller that
// folds the slots in GateMuGrad's accumulation order reproduces its
// result bit for bit — the contract the block-parallel adjoint sweep
// of internal/ssta is built on.
func (m *Model) GateMuGradTerms(id netlist.NodeID, S []float64, scale float64, self *float64, pins []float64) {
	m.GateMuGradTermsLoaded(id, S, m.Load(id, S), scale, self, pins)
}

// GateMuGradTermsLoaded is GateMuGradTerms with a caller-supplied
// load (see GateMVLoaded for the caching contract).
func (m *Model) GateMuGradTermsLoaded(id netlist.NodeID, S []float64, load, scale float64, self *float64, pins []float64) {
	*self = scale * -m.Coef * load / (S[id] * S[id])
	pin := scale * m.Coef / S[id]
	for j, f := range m.G.Fanout[id] {
		pins[j] = pin * m.CIn[f]
	}
}

// SDependents calls visit for every gate whose mean delay depends on
// the speed factor S[id]: gate id itself (through the 1/S term and
// its own load) and each of id's fanin driver gates — their load term
// c * sum(C_in * S) includes C_in[id]*S[id]. Input fanins are
// skipped, since inputs carry no delay. This is the dirty rule of the
// incremental SSTA engine: after S[id] changes, exactly these gates
// need their delay re-evaluated. Visit order is deterministic: id
// first, then fanin drivers in pin order (a driver wired to several
// pins is visited once per pin; callers dedupe).
func (m *Model) SDependents(id netlist.NodeID, visit func(netlist.NodeID)) {
	visit(id)
	for _, f := range m.G.C.Nodes[id].Fanin {
		if m.G.C.Nodes[f].Kind == netlist.KindGate {
			visit(f)
		}
	}
}

// PinOff returns the additive delay of gate id's pin k (0 when the
// cell has uniform pins).
func (m *Model) PinOff(id netlist.NodeID, k int) float64 {
	if off := m.PinOffset[id]; off != nil {
		return off[k]
	}
	return 0
}

// UnitSizes returns an all-ones speed-factor vector sized for the
// model's circuit (indexed by NodeID; input entries are 1 and unused).
func (m *Model) UnitSizes() []float64 {
	S := make([]float64, len(m.G.C.Nodes))
	for i := range S {
		S[i] = 1
	}
	return S
}

// ClampSizes clips every gate's speed factor into [1, Limit] in place
// and returns S.
func (m *Model) ClampSizes(S []float64) []float64 {
	for _, id := range m.G.C.GateIDs() {
		if S[id] < 1 {
			S[id] = 1
		}
		if S[id] > m.Limit {
			S[id] = m.Limit
		}
	}
	return S
}

// SumSizes returns the paper's area measure: the sum of gate speed
// factors.
func (m *Model) SumSizes(S []float64) float64 {
	var sum float64
	for _, id := range m.G.C.GateIDs() {
		sum += S[id]
	}
	return sum
}
