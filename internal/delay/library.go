// Package delay implements the sizable gate delay model of the paper
// (equations 14 and 15, after Berkelaar & Jess 1990):
//
//	t_cell = t_int + c * (C_load + sum_i C_in,i * S_i) / S_cell
//
// where S_cell is the gate's speed factor (1 = unsized), t_int the
// internal delay that sizing cannot reduce, C_load the fixed wiring
// load, and each fanout pin contributes its gate-oxide capacitance
// C_in scaled by the fanout gate's own speed factor S_i. The standard
// deviation of the gate delay follows the sizing through a sigma model
// sigma_t = f(t_cell); the paper's experiments use f(t) = 0.25 t.
package delay

import (
	"fmt"
	"math"
)

// CellType describes one library cell.
type CellType struct {
	Name string
	// Fanin is the cell's input pin count; binding checks it against
	// the netlist.
	Fanin int
	// TInt is the internal (unsizable) delay t_int.
	TInt float64
	// CIn is the input capacitance of one input pin at S = 1; the
	// load it presents to a driver scales with this cell's S.
	CIn float64
	// PinOffsets holds an additive delay per input pin, realizing the
	// per-pin delays of the paper's eq 1 (T_out = max_i(T_i + t_i)):
	// the arrival through pin i is charged t_cell + PinOffsets[i].
	// nil means all pins equal, the simplification the paper itself
	// adopts "for the purpose of clarity" (section 2). When non-nil
	// the length must equal Fanin.
	PinOffsets []float64
}

// Library is a set of cell types plus the global electrical
// parameters of the delay model.
type Library struct {
	// Coef is the constant c relating capacitance to delay.
	Coef float64
	// WireBase and WirePerFanout define the fixed wiring load of a
	// gate: C_load = WireBase + WirePerFanout * (number of fanout
	// pins). The paper folds all wiring into one capacitance per gate
	// (section 2); this linear-in-fanout form is the simplest
	// placement-free estimate.
	WireBase      float64
	WirePerFanout float64
	// OutputLoad is the extra capacitance seen by primary-output
	// gates (pads or downstream blocks).
	OutputLoad float64

	cells map[string]CellType
}

// NewLibrary returns a library with the given electrical constants and
// no cells.
func NewLibrary(coef, wireBase, wirePerFanout, outputLoad float64) *Library {
	return &Library{
		Coef:          coef,
		WireBase:      wireBase,
		WirePerFanout: wirePerFanout,
		OutputLoad:    outputLoad,
		cells:         make(map[string]CellType),
	}
}

// Add registers a cell type. Re-registering a name replaces it.
func (l *Library) Add(ct CellType) { l.cells[ct.Name] = ct }

// Cell returns the named cell type.
func (l *Library) Cell(name string) (CellType, bool) {
	ct, ok := l.cells[name]
	return ct, ok
}

// Names returns the number of registered cells.
func (l *Library) NumCells() int { return len(l.cells) }

// Default returns the module's generic library: inverter, buffer and
// 2-4 input NAND/NOR cells with delay parameters of order one. The
// absolute values are placeholders for the paper's unstated 1990s
// process constants; what matters for reproducing the paper's
// *behaviour* is the structure of the model (fixed t_int, load-
// proportional sizable part) and the relative ordering (more inputs =
// slower and heavier), both of which these numbers follow.
func Default() *Library {
	l := NewLibrary(1.0, 0.3, 0.2, 1.0)
	l.Add(CellType{Name: "inv", Fanin: 1, TInt: 0.5, CIn: 0.6})
	l.Add(CellType{Name: "buf", Fanin: 1, TInt: 0.7, CIn: 0.5})
	l.Add(CellType{Name: "nand2", Fanin: 2, TInt: 0.8, CIn: 1.0})
	l.Add(CellType{Name: "nor2", Fanin: 2, TInt: 0.9, CIn: 1.1})
	l.Add(CellType{Name: "nand3", Fanin: 3, TInt: 1.0, CIn: 1.2,
		PinOffsets: []float64{0, 0.05, 0.1}})
	l.Add(CellType{Name: "nor3", Fanin: 3, TInt: 1.1, CIn: 1.3,
		PinOffsets: []float64{0, 0.05, 0.1}})
	l.Add(CellType{Name: "nand4", Fanin: 4, TInt: 1.2, CIn: 1.4,
		PinOffsets: []float64{0, 0.05, 0.1, 0.15}})
	l.Add(CellType{Name: "nor4", Fanin: 4, TInt: 1.3, CIn: 1.5,
		PinOffsets: []float64{0, 0.05, 0.1, 0.15}})
	// Non-inverting and XOR families cover ISCAS .bench netlists
	// (internally an extra stage, hence the larger t_int).
	l.Add(CellType{Name: "and2", Fanin: 2, TInt: 1.1, CIn: 1.0})
	l.Add(CellType{Name: "and3", Fanin: 3, TInt: 1.3, CIn: 1.2})
	l.Add(CellType{Name: "and4", Fanin: 4, TInt: 1.5, CIn: 1.4})
	l.Add(CellType{Name: "or2", Fanin: 2, TInt: 1.2, CIn: 1.1})
	l.Add(CellType{Name: "or3", Fanin: 3, TInt: 1.4, CIn: 1.3})
	l.Add(CellType{Name: "or4", Fanin: 4, TInt: 1.6, CIn: 1.5})
	l.Add(CellType{Name: "xor2", Fanin: 2, TInt: 1.6, CIn: 1.8})
	l.Add(CellType{Name: "xnor2", Fanin: 2, TInt: 1.6, CIn: 1.8})
	return l
}

// PaperTree returns the library used for the Table 2 / Table 3 tree
// experiments: a single NAND2 cell whose constants were calibrated
// (internal/bench, CalibrateTree) so the Figure 3 tree reproduces the
// paper's anchors: unsized mu/sigma 7.38/0.82 vs the paper's
// 7.4/0.811, fully-sized mu 5.39 at SumS = 21 vs 5.4/21, and the
// Table 3 min-area speed-factor pattern.
func PaperTree() *Library {
	l := NewLibrary(1.0, 0.845918116422389, 0, 0.18312769990508404)
	l.Add(CellType{Name: "nand2", Fanin: 2, TInt: 1.2157916775901505, CIn: 0.14950378854004523})
	return l
}

// SigmaModel maps a gate's mean delay to its delay variance. The
// sizing formulation works in variances (w = sigma^2) to stay smooth,
// so the interface exposes the variance and its derivatives with
// respect to the mean.
type SigmaModel interface {
	// Sigma returns f(mu).
	Sigma(mu float64) float64
	// DSigma returns df/dmu.
	DSigma(mu float64) float64
	// D2Sigma returns d^2f/dmu^2.
	D2Sigma(mu float64) float64
	// Var returns w = f(mu)^2.
	Var(mu float64) float64
	// DVar returns dw/dmu.
	DVar(mu float64) float64
	// D2Var returns d^2w/dmu^2.
	D2Var(mu float64) float64
}

// Proportional is the paper's sigma model sigma = K * mu (the
// experiments use K = 0.25). Its variance K^2 mu^2 is a smooth
// quadratic, which is why the paper prefers the squared form.
type Proportional struct{ K float64 }

// Sigma implements SigmaModel.
func (p Proportional) Sigma(mu float64) float64 { return p.K * mu }

// DSigma implements SigmaModel.
func (p Proportional) DSigma(float64) float64 { return p.K }

// D2Sigma implements SigmaModel.
func (p Proportional) D2Sigma(float64) float64 { return 0 }

// Var implements SigmaModel.
func (p Proportional) Var(mu float64) float64 { return p.K * p.K * mu * mu }

// DVar implements SigmaModel.
func (p Proportional) DVar(mu float64) float64 { return 2 * p.K * p.K * mu }

// D2Var implements SigmaModel.
func (p Proportional) D2Var(mu float64) float64 { return 2 * p.K * p.K }

// Affine is sigma = A + B*mu, a strictly positive uncertainty floor
// plus a proportional part; useful for modeling wire-dominated
// uncertainty that sizing cannot remove.
type Affine struct{ A, B float64 }

// Sigma implements SigmaModel.
func (a Affine) Sigma(mu float64) float64 { return a.A + a.B*mu }

// DSigma implements SigmaModel.
func (a Affine) DSigma(float64) float64 { return a.B }

// D2Sigma implements SigmaModel.
func (a Affine) D2Sigma(float64) float64 { return 0 }

// Var implements SigmaModel.
func (a Affine) Var(mu float64) float64 {
	s := a.A + a.B*mu
	return s * s
}

// DVar implements SigmaModel.
func (a Affine) DVar(mu float64) float64 { return 2 * a.B * (a.A + a.B*mu) }

// D2Var implements SigmaModel.
func (a Affine) D2Var(mu float64) float64 { return 2 * a.B * a.B }

// Constant is a mean-independent sigma, degenerating the statistical
// model to fixed per-gate uncertainty.
type Constant struct{ S float64 }

// Sigma implements SigmaModel.
func (c Constant) Sigma(float64) float64 { return c.S }

// DSigma implements SigmaModel.
func (c Constant) DSigma(float64) float64 { return 0 }

// D2Sigma implements SigmaModel.
func (c Constant) D2Sigma(float64) float64 { return 0 }

// Var implements SigmaModel.
func (c Constant) Var(float64) float64 { return c.S * c.S }

// DVar implements SigmaModel.
func (c Constant) DVar(float64) float64 { return 0 }

// D2Var implements SigmaModel.
func (c Constant) D2Var(float64) float64 { return 0 }

// Zero is the deterministic limit sigma = 0, used by the
// deterministic sizing baseline.
type Zero struct{}

// Sigma implements SigmaModel.
func (Zero) Sigma(float64) float64 { return 0 }

// DSigma implements SigmaModel.
func (Zero) DSigma(float64) float64 { return 0 }

// D2Sigma implements SigmaModel.
func (Zero) D2Sigma(float64) float64 { return 0 }

// Var implements SigmaModel.
func (Zero) Var(float64) float64 { return 0 }

// DVar implements SigmaModel.
func (Zero) DVar(float64) float64 { return 0 }

// D2Var implements SigmaModel.
func (Zero) D2Var(float64) float64 { return 0 }

// ValidateSigmaModel checks basic sanity of a model over a mean range:
// non-negative sigma and Var consistent with Sigma.
func ValidateSigmaModel(m SigmaModel, lo, hi float64) error {
	for i := 0; i <= 64; i++ {
		mu := lo + (hi-lo)*float64(i)/64
		s := m.Sigma(mu)
		if s < 0 || math.IsNaN(s) {
			return fmt.Errorf("delay: sigma model returns %v at mu=%v", s, mu)
		}
		if w := m.Var(mu); math.Abs(w-s*s) > 1e-9*(1+s*s) {
			return fmt.Errorf("delay: Var(%v)=%v inconsistent with Sigma^2=%v", mu, w, s*s)
		}
	}
	return nil
}
