package delay

import "repro/internal/netlist"

// This file holds the K-lane gate kernel behind the batched
// structure-of-arrays sweeps of internal/ssta: the same delay
// arithmetic as GateMu/GateMV/GateMuGrad, evaluated for K scenarios
// per call over contiguous K-strided slices. The lane-stride contract
// shared with ssta.Batch is
//
//	slab[int(id)*K + lane]
//
// for every per-node slab, so one gate's K lanes are adjacent in
// memory and the inner lane loops run over contiguous float64 spans
// the compiler can keep in registers (and, where profitable,
// vectorize).
//
// Bit-identity contract: for every lane l, the value each kernel
// computes is produced by exactly the floating-point operations of
// its scalar counterpart, in the same order — LoadLanes accumulates
// fanout pins in fanout order like Load, GateMuLanes applies
// TInt + Coef*load/S like GateMu — so a batched sweep is bit-identical
// to K independent scalar sweeps by construction, not by tolerance.

// LoadLanes writes the capacitive load seen by gate id in every lane
// into out[0:K]: CLoad + sum over fanout pins of C_in * S_lane, with
// the speed factors read from the K-strided slab sLanes. out must
// have room for K values.
func (m *Model) LoadLanes(id netlist.NodeID, K int, sLanes, out []float64) {
	cl := m.CLoad[id]
	out = out[:K]
	for l := range out {
		out[l] = cl
	}
	for _, f := range m.G.Fanout[id] {
		cin := m.CIn[f]
		lane := sLanes[int(f)*K : int(f)*K+K]
		for l := range out {
			out[l] += cin * lane[l]
		}
	}
}

// GateMuLanes writes gate id's mean delay in every lane into out[0:K]:
// eq 14's t_int + c*load/S evaluated per lane over the K-strided
// speed-factor slab. Per lane it performs exactly GateMu's operations
// in GateMu's order.
func (m *Model) GateMuLanes(id netlist.NodeID, K int, sLanes, out []float64) {
	m.LoadLanes(id, K, sLanes, out)
	ti := m.TInt[id]
	c := m.Coef
	s := sLanes[int(id)*K : int(id)*K+K]
	out = out[:K]
	for l := range out {
		out[l] = ti + c*out[l]/s[l]
	}
}

// GateMuGradLanes accumulates scale[l] * d(GateMu(id))/dS into the
// K-strided gradient slab for every lane — the lane form of
// GateMuGrad, with the same term order (the gate's own 1/S term
// first, then the fanout pin terms in fanout order). load must hold
// the per-lane loads of LoadLanes at the lanes' current speed
// factors; scale is the per-lane adjoint weight.
func (m *Model) GateMuGradLanes(id netlist.NodeID, K int, sLanes, load, scale, grad []float64) {
	c := m.Coef
	s := sLanes[int(id)*K : int(id)*K+K]
	g := grad[int(id)*K : int(id)*K+K]
	for l := 0; l < K; l++ {
		g[l] += scale[l] * -c * load[l] / (s[l] * s[l])
	}
	for _, f := range m.G.Fanout[id] {
		cin := m.CIn[f]
		gf := grad[int(f)*K : int(f)*K+K]
		for l := 0; l < K; l++ {
			// (scale*c/s)*cin — the scalar GateMuGrad's hoisted pin
			// expression shape, kept bitwise in lockstep.
			gf[l] += scale[l] * c / s[l] * cin
		}
	}
}
