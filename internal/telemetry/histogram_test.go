package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistIndexMonotone pins the bucketing scheme's two structural
// invariants: the bucket index never decreases as the value grows, and
// a value never lands in a bucket whose upper edge is below it.
func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex(%d) = %d < previous index %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		if up := bucketUpperNS(idx); up < v {
			t.Fatalf("bucketUpperNS(histIndex(%d)) = %d < value", v, up)
		}
		prev = idx
	}
	// Bucket upper edges ascend strictly.
	for i := 1; i < histBuckets; i++ {
		if bucketUpperNS(i) <= bucketUpperNS(i-1) {
			t.Fatalf("bucket edges not strictly increasing at %d: %d <= %d",
				i, bucketUpperNS(i), bucketUpperNS(i-1))
		}
	}
}

// TestHistogramQuantile cross-checks the nearest-rank quantiles
// against a sorted reference: the reported quantile must be the bucket
// upper edge of the reference value at the same rank, which bounds the
// relative error by one sub-bucket width (2^-5 ≈ 3%).
func TestHistogramQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var ref []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 1e6) // microsecond-scale spread
		ref = append(ref, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for _, p := range []float64{0.01, 0.5, 0.9, 0.99} {
		// Nearest rank: the 1-based ceil(p*n)-th smallest value's
		// bucket upper edge, clamped to the exact max.
		rank := int(math.Ceil(p * float64(len(ref))))
		want := bucketUpperNS(histIndex(ref[rank-1]))
		if want > ref[len(ref)-1] {
			want = ref[len(ref)-1]
		}
		if got := h.Quantile(p); got != time.Duration(want) {
			t.Errorf("Quantile(%v) = %v, want bucket edge %v of reference value %d",
				p, got, time.Duration(want), ref[rank-1])
		}
	}
	if got, want := h.Quantile(1), time.Duration(ref[len(ref)-1]); got != want {
		t.Errorf("Quantile(1) = %v, want exact maximum %v", got, want)
	}
	if got, want := h.Max(), time.Duration(ref[len(ref)-1]); got != want {
		t.Errorf("Max = %v, want exact maximum %v", got, want)
	}
	if got := h.Count(); got != int64(len(ref)) {
		t.Errorf("Count = %d, want %d", got, len(ref))
	}
	var sum int64
	for _, v := range ref {
		sum += v
	}
	if got := h.Sum(); got != time.Duration(sum) {
		t.Errorf("Sum = %v, want %v", got, time.Duration(sum))
	}
}

// TestHistogramEmpty pins the zero-value behavior.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("zero histogram not empty: count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty histogram = %v, want 0", q)
	}
}

// TestHistogramRecordAllocationFree pins the hot path at zero
// allocations — the contract that lets spans and tree pops run inside
// solver loops.
func TestHistogramRecordAllocationFree(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %v times per call, want 0", n)
	}
}
