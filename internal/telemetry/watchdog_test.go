package telemetry

import (
	"math"
	"testing"
)

// feedOuter feeds alm.outer events with the given merits.
func feedOuter(w *Watchdog, merits ...float64) {
	for i, v := range merits {
		w.Event("alm", "outer", I("iter", i+1), F("merit", v))
	}
}

// TestWatchdogStallsOnFlatSeries: a merit that stops improving for
// Patience iterations raises exactly one solve.stalled event, injected
// into the wrapped sink.
func TestWatchdogStallsOnFlatSeries(t *testing.T) {
	m := NewMetrics()
	wd := NewWatchdog(m, WatchdogOptions{Patience: 4})
	feedOuter(wd, 10, 9, 8, 8, 8, 8, 8, 8, 8)
	stalls := wd.Stalls()
	if len(stalls) != 1 {
		t.Fatalf("stalls = %d, want exactly 1", len(stalls))
	}
	s := stalls[0]
	if s.Scope != "alm" || s.Src != StallSrcALM {
		t.Errorf("stall source = %s/%d, want alm/%d", s.Scope, s.Src, StallSrcALM)
	}
	if s.Best != 8 || s.Last != 8 || s.Streak != 4 {
		t.Errorf("stall = %+v, want best 8, last 8, streak 4", s)
	}
	if got := m.CounterValue("event.solve.stalled"); got != 1 {
		t.Errorf("forwarded solve.stalled count = %d, want 1", got)
	}
	if !wd.Stalled() {
		t.Error("Stalled() = false after a stall")
	}
}

// TestWatchdogSilentOnImproving: steady relative improvement never
// fires.
func TestWatchdogSilentOnImproving(t *testing.T) {
	wd := NewWatchdog(nil, WatchdogOptions{Patience: 3})
	v := 100.0
	for i := 0; i < 50; i++ {
		wd.Event("alm", "outer", F("merit", v))
		v *= 0.99
	}
	if wd.Stalled() {
		t.Fatalf("watchdog fired on an improving series: %+v", wd.Stalls())
	}
}

// TestWatchdogRearms: after a stall, an improvement re-arms the
// detector so a second plateau raises a second stall.
func TestWatchdogRearms(t *testing.T) {
	wd := NewWatchdog(nil, WatchdogOptions{Patience: 2})
	feedOuter(wd, 10, 10, 10) // first stall (streak 2)
	feedOuter(wd, 5)          // improvement re-arms
	feedOuter(wd, 5, 5)       // second stall
	if got := len(wd.Stalls()); got != 2 {
		t.Fatalf("stalls = %d, want 2 (re-arm after improvement)", got)
	}
}

// TestWatchdogTracksSourcesIndependently: alm merit and inc/hier mu
// advance separate detectors.
func TestWatchdogTracksSourcesIndependently(t *testing.T) {
	wd := NewWatchdog(nil, WatchdogOptions{Patience: 2})
	for i := 0; i < 5; i++ {
		wd.Event("inc", "update", F("mu", 7.0))
		wd.Event("hier", "update", F("mu", 3.0))
	}
	stalls := wd.Stalls()
	if len(stalls) != 2 {
		t.Fatalf("stalls = %d, want one per source", len(stalls))
	}
	srcs := map[int]bool{}
	for _, s := range stalls {
		srcs[s.Src] = true
	}
	if !srcs[StallSrcInc] || !srcs[StallSrcHier] {
		t.Fatalf("sources = %+v, want inc and hier", stalls)
	}
}

// TestWatchdogIgnoresNaN: NaN figures are not evidence either way.
func TestWatchdogIgnoresNaN(t *testing.T) {
	wd := NewWatchdog(nil, WatchdogOptions{Patience: 2})
	for i := 0; i < 10; i++ {
		wd.Event("alm", "outer", F("merit", math.NaN()))
	}
	if wd.Stalled() {
		t.Fatal("watchdog fired on NaN-only series")
	}
}

// TestWatchdogOnStallCallback: the service hook sees the stall.
func TestWatchdogOnStallCallback(t *testing.T) {
	var got []Stall
	wd := NewWatchdog(nil, WatchdogOptions{
		Patience: 2,
		OnStall:  func(s Stall) { got = append(got, s) },
	})
	feedOuter(wd, 1, 1, 1)
	if len(got) != 1 {
		t.Fatalf("OnStall calls = %d, want 1", len(got))
	}
}

// TestWatchdogKKTProgress: near a constrained optimum the ALM merit
// plateaus while the KKT residual keeps dropping — that is
// convergence, so the escape hatch must hold the watchdog off; once
// the residual also plateaus (new lows under the 1% margin don't
// count) the stall fires.
func TestWatchdogKKTProgress(t *testing.T) {
	wd := NewWatchdog(nil, WatchdogOptions{Patience: 4})
	kkt := 1.0
	for i := 0; i < 20; i++ { // flat merit, decade-dropping residual
		wd.Event("alm", "outer", F("merit", 50), F("kkt", kkt))
		kkt *= 0.5
	}
	if wd.Stalled() {
		t.Fatalf("watchdog fired while the KKT residual was improving: %+v", wd.Stalls())
	}
	for i := 0; i < 6; i++ { // residual wobbles within the 1% margin
		wd.Event("alm", "outer", F("merit", 50), F("kkt", kkt*(1-0.001*float64(i))))
	}
	if !wd.Stalled() {
		t.Fatal("watchdog silent after merit and residual both plateaued")
	}
}

// TestWatchdogCountsRecoveries: alm.recover events are non-improving
// iterations outright — a solver stuck in its recovery loop trips the
// watchdog even though no alm.outer event ever fires.
func TestWatchdogCountsRecoveries(t *testing.T) {
	wd := NewWatchdog(nil, WatchdogOptions{Patience: 4})
	for i := 0; i < 4; i++ {
		wd.Event("alm", "recover", I("iter", i+1), I("count", i+1))
	}
	if !wd.Stalled() {
		t.Fatal("watchdog silent after Patience consecutive recoveries")
	}
	// An outer improvement re-arms.
	wd.Event("alm", "outer", F("merit", 100))
	wd.Event("alm", "outer", F("merit", 50))
	if got := len(wd.Stalls()); got != 1 {
		t.Fatalf("stalls = %d, want still 1 after improvement", got)
	}
}
