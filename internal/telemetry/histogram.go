package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is an HDR-style log-bucketed latency histogram: fixed
// memory, lock-free, and allocation-free on the record path, with
// ~3% relative resolution across the full nanosecond-to-hours range.
//
// Bucketing scheme. Durations are recorded in nanoseconds. Values
// below 2^histSubBits land in exact unit buckets; above that, each
// power of two is split into 2^histSubBits linear sub-buckets, so the
// bucket index is
//
//	shift = max(0, msb(v) - histSubBits)
//	index = shift<<histSubBits + (v>>shift) - [shift>0]*2^histSubBits
//
// which is monotone in v and bounds the relative error of a bucket's
// upper edge by 2^-histSubBits. With histSubBits = 5 (32 sub-buckets
// per octave) the whole int64 nanosecond range needs histBuckets =
// 1920 counters — 15 KiB per histogram, paid once per span name.
//
// Quantiles use the nearest-rank convention on bucket upper edges, so
// a reported p99 is an upper bound of the true p99 within the bucket
// resolution; Max is tracked exactly.
const (
	histSubBits = 5
	histSubHalf = 1 << histSubBits // first linear range and sub-buckets per octave
	// 64-histSubBits possible shift values (0..58 used by positive
	// int64 values) plus the linear range; sized to cover every
	// int64 without bounds checks on the hot path.
	histBuckets = (64 - histSubBits) * histSubHalf
)

// Histogram's zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// histIndex maps a nanosecond value to its bucket. Negative values
// clamp to bucket 0.
func histIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	u := uint64(ns)
	msb := bits.Len64(u) - 1 // position of the highest set bit
	if msb < histSubBits {
		return int(u)
	}
	shift := uint(msb - histSubBits)
	return int(shift+1)<<histSubBits + int(u>>shift) - histSubHalf
}

// bucketUpperNS returns the largest nanosecond value mapping to
// bucket idx — the bucket's inclusive upper edge.
func bucketUpperNS(idx int) int64 {
	block := idx >> histSubBits
	pos := int64(idx & (histSubHalf - 1))
	if block == 0 {
		return pos
	}
	shift := uint(block - 1)
	return (pos+histSubHalf+1)<<shift - 1
}

// Record folds one duration into the histogram. It is safe for
// concurrent use and performs no allocations.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	h.counts[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded durations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total recorded duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Max returns the largest recorded duration (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Quantile returns an upper bound of the p-quantile (0 < p <= 1) of
// the recorded durations, by nearest rank over the bucket upper
// edges. An empty histogram and p = NaN return 0; p >= 1 returns the
// exact max; p <= 0 returns the lower edge (the smallest recorded
// bucket's upper bound).
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 || math.IsNaN(p) {
		return 0
	}
	if p >= 1 {
		return h.Max()
	}
	rank := int64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			ub := bucketUpperNS(i)
			if max := h.maxNS.Load(); ub > max {
				ub = max // the top bucket's edge can overshoot the data
			}
			return time.Duration(ub)
		}
	}
	return h.Max()
}

// Buckets calls fn for every non-empty bucket in ascending order with
// the bucket's inclusive upper edge and its count (not cumulative).
// It is the iteration primitive behind the Prometheus exposition.
func (h *Histogram) Buckets(fn func(upper time.Duration, count int64)) {
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			fn(time.Duration(bucketUpperNS(i)), c)
		}
	}
}
