package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// TraceWriter is the JSONL trace sink: every Event becomes one JSON
// line with a writer-assigned sequence number and the fields in
// emission order. Counters, gauges and spans carry wall-clock data and
// are deliberately ignored — the trace contains only deterministic
// content, so two runs of the same solve produce byte-identical files
// regardless of worker count (see the package comment).
//
// Line schema:
//
//	{"seq":1,"scope":"alm","event":"outer","iter":1,"merit":12.5,...}
//
// Floats are formatted with strconv's shortest round-trip form;
// non-finite values, which JSON cannot represent as numbers, are
// encoded as the strings "NaN", "+Inf" and "-Inf".
type TraceWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	seq int64
	buf []byte
	err error
}

// NewTraceWriter wraps w in a JSONL trace sink. The caller owns w;
// Close flushes buffered lines but does not close it.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// CreateTrace creates (truncating) the trace file at path, creating
// missing parent directories, so a -trace flag pointing into a fresh
// output directory works on the first event instead of surfacing a
// bare open error; Close flushes and closes it.
func CreateTrace(path string) (*TraceWriter, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trace directory: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTraceWriter(f)
	t.c = f
	return t, nil
}

// Event writes one JSONL line.
func (t *TraceWriter) Event(scope, name string, fields ...KV) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, `,"scope":`...)
	b = strconv.AppendQuote(b, scope)
	b = append(b, `,"event":`...)
	b = strconv.AppendQuote(b, name)
	for _, f := range fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		b = appendFloat(b, f.Val)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// Count is a no-op: counters are nondeterministic aggregate data.
func (t *TraceWriter) Count(string, int64) {}

// Gauge is a no-op: gauges are nondeterministic aggregate data.
func (t *TraceWriter) Gauge(string, float64) {}

// Span is a no-op: wall-clock durations must not enter the trace.
func (t *TraceWriter) Span(string, time.Duration) {}

// Close flushes the trace and closes the underlying file when the
// writer owns one. It reports the first write error encountered.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// appendFloat appends the canonical trace encoding of v: shortest
// round-trip decimal for finite values, quoted "NaN"/"+Inf"/"-Inf"
// otherwise.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// TraceEvent is one parsed trace line; Fields preserves the on-disk
// key order, so re-emitting the events through a TraceWriter
// reproduces the file byte for byte.
type TraceEvent struct {
	Seq    int64
	Scope  string
	Name   string
	Fields []KV
}

// Get returns the named field value.
func (e *TraceEvent) Get(key string) (float64, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Val, true
		}
	}
	return 0, false
}

// ParseTrace reads a JSONL trace, preserving field order. It is the
// inverse of TraceWriter: parse followed by re-emission round-trips
// byte-identically (pinned by TestTraceRoundTrip).
func ParseTrace(r io.Reader) ([]TraceEvent, error) {
	var events []TraceEvent
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		ev, err := parseEvent(dec)
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
}

// parseEvent token-walks one JSON object so the field order survives.
func parseEvent(dec *json.Decoder) (TraceEvent, error) {
	var ev TraceEvent
	tok, err := dec.Token()
	if err != nil {
		return ev, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return ev, fmt.Errorf("expected object, got %v", tok)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return ev, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return ev, fmt.Errorf("expected key, got %v", keyTok)
		}
		valTok, err := dec.Token()
		if err != nil {
			return ev, err
		}
		switch key {
		case "seq":
			n, ok := valTok.(float64)
			if !ok {
				return ev, fmt.Errorf("seq is %T, want number", valTok)
			}
			ev.Seq = int64(n)
		case "scope":
			s, ok := valTok.(string)
			if !ok {
				return ev, fmt.Errorf("scope is %T, want string", valTok)
			}
			ev.Scope = s
		case "event":
			s, ok := valTok.(string)
			if !ok {
				return ev, fmt.Errorf("event is %T, want string", valTok)
			}
			ev.Name = s
		default:
			v, err := fieldValue(valTok)
			if err != nil {
				return ev, fmt.Errorf("field %q: %w", key, err)
			}
			ev.Fields = append(ev.Fields, KV{Key: key, Val: v})
		}
	}
	// Consume the closing '}'. A clean EOF here means the object was
	// truncated — do not let it masquerade as end-of-trace.
	if _, err := dec.Token(); err != nil {
		if err == io.EOF {
			return ev, io.ErrUnexpectedEOF
		}
		return ev, err
	}
	return ev, nil
}

// fieldValue decodes a field value: a number, or the non-finite
// sentinels appendFloat writes.
func fieldValue(tok json.Token) (float64, error) {
	switch v := tok.(type) {
	case float64:
		return v, nil
	case string:
		switch v {
		case "NaN":
			return math.NaN(), nil
		case "+Inf":
			return math.Inf(1), nil
		case "-Inf":
			return math.Inf(-1), nil
		}
	}
	return 0, fmt.Errorf("unsupported value %v", tok)
}

// ValidateTrace checks the structural schema of a parsed trace: the
// sequence numbers count 1..n with no gaps, every event names a scope
// and an event kind, and the solver-iteration events carry the fields
// the convergence tooling depends on. It is the sanity check behind
// `tables -checktrace` and `make trace`.
func ValidateTrace(events []TraceEvent) error {
	if len(events) == 0 {
		return fmt.Errorf("trace is empty")
	}
	for i := range events {
		ev := &events[i]
		if ev.Seq != int64(i+1) {
			return fmt.Errorf("event %d: seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Scope == "" || ev.Name == "" {
			return fmt.Errorf("event %d: empty scope or event name", i)
		}
		seen := map[string]bool{}
		for _, f := range ev.Fields {
			if f.Key == "" {
				return fmt.Errorf("event %d (%s.%s): empty field key", i, ev.Scope, ev.Name)
			}
			if seen[f.Key] {
				return fmt.Errorf("event %d (%s.%s): duplicate field %q", i, ev.Scope, ev.Name, f.Key)
			}
			seen[f.Key] = true
		}
		if ev.Scope == "alm" && ev.Name == "outer" {
			for _, k := range []string{"iter", "merit", "kkt", "viol", "rho"} {
				if _, ok := ev.Get(k); !ok {
					return fmt.Errorf("event %d: alm.outer missing field %q", i, k)
				}
			}
		}
	}
	return nil
}
