package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical span trees. The flat Recorder.Span sink answers "how
// long did phase X take in total"; the span tree answers "where under
// what": nested phases (nlp.solve → alm.outer → nlp.inner →
// engine.eval) record parent/child edges with self- vs
// cumulative-time attribution, so a solve's wall clock decomposes
// exactly onto the tree.
//
// The concurrency design follows the module's telemetry contract:
//
//   - A Stack is single-goroutine state — push/pop touch only the
//     goroutine's own preallocated frames, so workers never contend on
//     the way in or out of a scope. The ssta.Hier dataflow workers and
//     the Monte Carlo shards each own one.
//   - Tree nodes are shared aggregation points: counts and times are
//     atomics, and child lookup on the hot path is a lock-free
//     sync.Map read. Mutation (first sighting of a child name) takes
//     the tree mutex — a cold path that runs once per distinct edge.
//
// Wall-clock data stays in the metrics sinks: tree timings never
// enter the JSONL event stream, so traces remain byte-identical for
// every worker count with span trees enabled.
//
// A popped scope also lands in the owning Metrics' span histogram
// under the node's full slash-joined path ("nlp.solve/alm.outer"), so
// tree phases get p50/p90/p99/max like any flat span, and appear in
// the Prometheus exposition.

// TreeProvider is the optional Recorder capability behind NewStack:
// sinks that aggregate a span tree return it; combinators forward to
// the first capable sink.
type TreeProvider interface {
	SpanTree() *Tree
}

// Tree is the shared aggregation structure. The zero value is not
// usable; trees are created by NewMetrics (every Metrics owns one) or
// NewTree.
type Tree struct {
	mu   sync.Mutex // guards node creation
	root *TreeNode
	m    *Metrics // optional: popped scopes feed per-path histograms
}

// NewTree returns an empty span tree unattached to a Metrics sink.
func NewTree() *Tree {
	t := &Tree{}
	t.root = &TreeNode{}
	return t
}

// TreeNode is one aggregated scope: every Push/Pop pair of the same
// name under the same parent folds into one node.
type TreeNode struct {
	name string
	path string // slash-joined from the root, "" for the root

	children sync.Map // string -> *TreeNode; lock-free hot lookup

	count  atomic.Int64
	cumNS  atomic.Int64 // wall time inside the scope, children included
	selfNS atomic.Int64 // cum minus time attributed to child scopes

	sv *spanVar // per-path histogram cell, nil without a Metrics
}

// Name returns the node's scope name ("alm.outer").
func (n *TreeNode) Name() string { return n.name }

// Path returns the slash-joined path from the root ("nlp.solve/alm.outer").
func (n *TreeNode) Path() string { return n.path }

// Count returns how many scopes folded into the node.
func (n *TreeNode) Count() int64 { return n.count.Load() }

// Cum returns the cumulative wall time (children included).
func (n *TreeNode) Cum() time.Duration { return time.Duration(n.cumNS.Load()) }

// Self returns the self time (children excluded).
func (n *TreeNode) Self() time.Duration { return time.Duration(n.selfNS.Load()) }

// child returns the named child, creating it on first sighting.
func (t *Tree) child(parent *TreeNode, name string) *TreeNode {
	if c, ok := parent.children.Load(name); ok {
		return c.(*TreeNode)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := parent.children.Load(name); ok {
		return c.(*TreeNode)
	}
	path := name
	if parent.path != "" {
		path = parent.path + "/" + name
	}
	c := &TreeNode{name: name, path: path}
	if t.m != nil {
		// Tree cells live under a "tree/" prefix in the flat span
		// namespace so a root-level scope ("nlp.solve") never collides
		// with the flat span of the same name.
		c.sv = t.m.span("tree/" + path)
	}
	parent.children.Store(name, c)
	return c
}

// Walk visits every node below the root depth-first, siblings in
// lexical name order, calling fn with the node and its depth (root
// children are depth 0). Aggregation may race with Walk; the visit
// sees each counter's value at load time.
func (t *Tree) Walk(fn func(n *TreeNode, depth int)) {
	walkNode(t.root, 0, fn)
}

func walkNode(n *TreeNode, depth int, fn func(*TreeNode, int)) {
	var names []string
	n.children.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	for _, name := range names {
		c, _ := n.children.Load(name)
		node := c.(*TreeNode)
		fn(node, depth)
		walkNode(node, depth+1, fn)
	}
}

// Empty reports whether the tree has aggregated no scopes.
func (t *Tree) Empty() bool {
	empty := true
	t.root.children.Range(func(_, _ any) bool {
		empty = false
		return false
	})
	return empty
}

// AddAt folds an externally timed phase into the node at path,
// creating intermediate nodes as needed — the publish-time hook for
// subsystems that aggregate their own timings (the NLP element engine
// folds its per-mode dispatch totals under nlp.solve/engine this
// way). The duration counts as self time: callers attribute
// exclusive, already-decomposed figures.
func (t *Tree) AddAt(d time.Duration, count int64, path ...string) {
	n := t.root
	for _, name := range path {
		n = t.child(n, name)
	}
	if n == t.root {
		return
	}
	ns := d.Nanoseconds()
	n.count.Add(count)
	n.cumNS.Add(ns)
	n.selfNS.Add(ns)
	if n.sv != nil {
		n.sv.record(d)
	}
}

// WriteJSONL renders the tree as JSON lines, one node per line in
// Walk (depth-first, lexical) order:
//
//	{"span":"nlp.solve/alm.outer","count":12,"ns":48210031,"self_ns":901221}
//
// This is the span-tree sidecar format the CLIs write with -spans and
// tracetool reads with its -spans flag: wall-clock data travels in
// its own file, never in the deterministic event trace.
func (t *Tree) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	t.Walk(func(n *TreeNode, _ int) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "{\"span\":%q,\"count\":%d,\"ns\":%d,\"self_ns\":%d}\n",
			n.Path(), n.Count(), n.Cum().Nanoseconds(), n.Self().Nanoseconds())
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the WriteJSONL rendering to path, creating parent
// directories as needed (mirroring CreateTrace).
func (t *Tree) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("telemetry: spans %s: %w", path, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: spans %s: %w", path, err)
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stackFrame is one live scope on a Stack.
type stackFrame struct {
	node    *TreeNode
	start   time.Time
	childNS int64
}

// Stack is one goroutine's scope stack. It must not be shared between
// goroutines; create one per worker (NewStack/StackAt). The nil Stack
// is a valid no-op — Push and Pop on it cost one branch — so disabled
// telemetry needs no call-site guards beyond the usual rec == nil
// check.
type Stack struct {
	tree   *Tree
	base   *TreeNode // the stack's root scope
	frames []stackFrame
}

// TreeOf returns rec's span tree, or nil when rec is nil or has no
// tree sink.
func TreeOf(rec Recorder) *Tree {
	if tp, ok := rec.(TreeProvider); ok {
		return tp.SpanTree()
	}
	return nil
}

// NewStack returns a scope stack over rec's span tree, rooted at the
// tree root, or nil when rec is nil or has no tree sink (nil is the
// allocation-free disabled stack).
func NewStack(rec Recorder) *Stack {
	if t := TreeOf(rec); t != nil {
		return t.NewStack()
	}
	return nil
}

// StackAt is NewStack rooted under path — worker goroutines use it to
// attribute their time under the coordinator's logical phase
// ("hier.sweep", "mc.run") without sharing the coordinator's stack.
func StackAt(rec Recorder, path ...string) *Stack {
	if t := TreeOf(rec); t != nil {
		return t.StackAt(path...)
	}
	return nil
}

// NewStack returns a scope stack rooted at the tree root.
func (t *Tree) NewStack() *Stack {
	return &Stack{tree: t, base: t.root, frames: make([]stackFrame, 0, 16)}
}

// StackAt returns a scope stack rooted at the node named by path,
// creating intermediate nodes as needed.
func (t *Tree) StackAt(path ...string) *Stack {
	n := t.root
	for _, name := range path {
		n = t.child(n, name)
	}
	return &Stack{tree: t, base: n, frames: make([]stackFrame, 0, 16)}
}

// Push opens a scope named name under the current scope (or the
// stack's root when empty). Allocation-free once the edge exists.
func (s *Stack) Push(name string) {
	if s == nil {
		return
	}
	parent := s.base
	if len(s.frames) > 0 {
		parent = s.frames[len(s.frames)-1].node
	}
	node := s.tree.child(parent, name)
	s.frames = append(s.frames, stackFrame{node: node, start: time.Now()})
}

// Pop closes the innermost scope, folding its wall time into the
// node: cumulative gets the full elapsed time, self gets the elapsed
// time minus what child scopes consumed, and the per-path histogram
// records the cumulative duration. Pop on an empty or nil stack is a
// no-op.
func (s *Stack) Pop() {
	if s == nil || len(s.frames) == 0 {
		return
	}
	f := &s.frames[len(s.frames)-1]
	d := time.Since(f.start)
	ns := d.Nanoseconds()
	n := f.node
	n.count.Add(1)
	n.cumNS.Add(ns)
	n.selfNS.Add(ns - f.childNS)
	if n.sv != nil {
		n.sv.record(d)
	}
	s.frames = s.frames[:len(s.frames)-1]
	if len(s.frames) > 0 {
		s.frames[len(s.frames)-1].childNS += ns
	}
}

// Depth returns the number of open scopes.
func (s *Stack) Depth() int {
	if s == nil {
		return 0
	}
	return len(s.frames)
}

// PopTo pops scopes until at most depth remain — the loop-top idiom
// for scopes whose body exits through continue/break paths:
//
//	for ... {
//		stack.PopTo(1) // close the previous iteration's scope
//		stack.Push("alm.outer")
//		...
//	}
//	stack.PopTo(1)
func (s *Stack) PopTo(depth int) {
	for s.Depth() > depth {
		s.Pop()
	}
}
