package telemetry

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// LogSink renders events as human-readable lines — the verbose (-v)
// output of the CLIs. It consumes the same event stream as the JSONL
// trace, so verbose logging and traces cannot drift apart: one
// emission point in the solver feeds both.
//
// Line format:
//
//	alm.outer iter=3 merit=12.5 kkt=0.0021 viol=0 rho=10
type LogSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewLogSink returns a log sink writing to w (typically os.Stderr).
func NewLogSink(w io.Writer) *LogSink {
	return &LogSink{w: w}
}

// Event writes one formatted line.
func (l *LogSink) Event(scope, name string, fields ...KV) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, scope...)
	b = append(b, '.')
	b = append(b, name...)
	for _, f := range fields {
		b = append(b, ' ')
		b = append(b, f.Key...)
		b = append(b, '=')
		b = strconv.AppendFloat(b, f.Val, 'g', 6, 64)
	}
	b = append(b, '\n')
	l.buf = b
	l.w.Write(b)
}

// Count is a no-op; aggregate data is the metrics sink's job.
func (l *LogSink) Count(string, int64) {}

// Gauge is a no-op.
func (l *LogSink) Gauge(string, float64) {}

// Span is a no-op.
func (l *LogSink) Span(string, time.Duration) {}
