// Package telemetry is the module's instrumentation layer: a small
// Recorder interface the solver and analysis kernels emit into, plus
// the sinks the CLIs wire behind it (a deterministic JSONL trace
// writer, an expvar-backed metrics aggregator, a human-readable log
// sink, and runtime-profiling helpers).
//
// The layer is built around two contracts:
//
//   - Zero overhead when disabled. Every instrumented hot path guards
//     its recorder with a nil check; a nil Recorder costs one branch
//     and no allocations (pinned by AllocsPerRun regression tests in
//     internal/nlp). The Noop recorder gives the same guarantee for
//     callers that want a non-nil sink.
//
//   - Deterministic traces. Structured events (Recorder.Event) carry
//     only values that are bit-identical for every worker count under
//     the module's deterministic-parallelism contract, and they are
//     emitted serially by the coordinating goroutine, so a JSONL trace
//     is byte-for-byte identical for -j 1 and -j 64. Wall-clock data —
//     spans, counters, gauges — is inherently nondeterministic and is
//     therefore routed to the metrics sinks only, never into the event
//     stream.
package telemetry

import "time"

// KV is one key/value field of a structured event. Values are float64;
// integers are exact up to 2^53, which covers every counter the module
// emits.
type KV struct {
	Key string
	Val float64
}

// F builds a KV from a float64.
func F(key string, v float64) KV { return KV{Key: key, Val: v} }

// I builds a KV from an int.
func I(key string, v int) KV { return KV{Key: key, Val: float64(v)} }

// Recorder receives telemetry. Implementations must be safe for
// concurrent use: counters, gauges and spans may be recorded from
// worker goroutines. Events, by convention, are emitted only by the
// coordinating goroutine of a solve so their order is deterministic;
// sinks still serialize internally and do not rely on it for safety.
type Recorder interface {
	// Event records one structured event. Callers must only pass
	// fields whose values are deterministic (identical for every
	// worker count); wall-clock data belongs in Span/Count/Gauge.
	Event(scope, name string, fields ...KV)
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named last-value gauge.
	Gauge(name string, v float64)
	// Span records one completed timed phase; sinks aggregate the
	// count and total duration per name.
	Span(name string, d time.Duration)
}

// noop discards everything. Its methods perform no allocations, so it
// is interchangeable with a nil Recorder on hot paths.
type noop struct{}

func (noop) Event(string, string, ...KV) {}
func (noop) Count(string, int64)         {}
func (noop) Gauge(string, float64)       {}
func (noop) Span(string, time.Duration)  {}

// Noop is the do-nothing Recorder: non-nil, allocation-free.
var Noop Recorder = noop{}

// StartSpan returns the span start time, or the zero time when rec is
// nil — pairing with EndSpan gives an allocation-free timed phase:
//
//	t0 := telemetry.StartSpan(rec)
//	... work ...
//	telemetry.EndSpan(rec, "phase", t0)
func StartSpan(rec Recorder) time.Time {
	if rec == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndSpan records the phase duration since start; a nil rec is a no-op.
func EndSpan(rec Recorder, name string, start time.Time) {
	if rec != nil {
		rec.Span(name, time.Since(start))
	}
}

// multi fans out to several sinks in order.
type multi []Recorder

func (m multi) Event(scope, name string, fields ...KV) {
	for _, r := range m {
		r.Event(scope, name, fields...)
	}
}

func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

func (m multi) Gauge(name string, v float64) {
	for _, r := range m {
		r.Gauge(name, v)
	}
}

func (m multi) Span(name string, d time.Duration) {
	for _, r := range m {
		r.Span(name, d)
	}
}

// SpanTree forwards the TreeProvider capability to the first sink
// that has one, so NewStack finds a Metrics sink through the fan-out.
func (m multi) SpanTree() *Tree {
	for _, r := range m {
		if tp, ok := r.(TreeProvider); ok {
			if t := tp.SpanTree(); t != nil {
				return t
			}
		}
	}
	return nil
}

// Multi combines sinks into one Recorder, dropping nils. It returns
// nil when no sink remains — callers can hand the result directly to
// the nil-guarded instrumentation points — and the sink itself when
// only one remains.
func Multi(recs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}
