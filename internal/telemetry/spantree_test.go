package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestStackSelfCum verifies the self/cumulative decomposition: a
// parent's cumulative time covers its children, and its self time is
// exactly the cumulative minus the children's cumulative.
func TestStackSelfCum(t *testing.T) {
	m := NewMetrics()
	s := NewStack(m)
	s.Push("solve")
	s.Push("inner")
	time.Sleep(time.Millisecond)
	s.Pop()
	s.Pop()

	var solve, inner *TreeNode
	m.SpanTree().Walk(func(n *TreeNode, _ int) {
		switch n.Path() {
		case "solve":
			solve = n
		case "solve/inner":
			inner = n
		}
	})
	if solve == nil || inner == nil {
		t.Fatal("tree missing solve or solve/inner node")
	}
	if solve.Count() != 1 || inner.Count() != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", solve.Count(), inner.Count())
	}
	if solve.Cum() < inner.Cum() {
		t.Fatalf("parent cum %v < child cum %v", solve.Cum(), inner.Cum())
	}
	if got, want := solve.Self(), solve.Cum()-inner.Cum(); got != want {
		t.Fatalf("parent self = %v, want cum-child = %v", got, want)
	}
	if inner.Self() != inner.Cum() {
		t.Fatalf("leaf self %v != cum %v", inner.Self(), inner.Cum())
	}
}

// TestStackPopTo pins the loop-top idiom: PopTo closes exactly the
// scopes above the given depth, wherever the loop body exited.
func TestStackPopTo(t *testing.T) {
	m := NewMetrics()
	s := NewStack(m)
	s.Push("root")
	for i := 0; i < 3; i++ {
		s.PopTo(1)
		s.Push("iter")
		if i == 1 {
			s.Push("deep") // simulate an exit with an extra scope open
		}
	}
	s.PopTo(0)
	if d := s.Depth(); d != 0 {
		t.Fatalf("depth after PopTo(0) = %d, want 0", d)
	}
	counts := map[string]int64{}
	m.SpanTree().Walk(func(n *TreeNode, _ int) { counts[n.Path()] = n.Count() })
	if counts["root"] != 1 || counts["root/iter"] != 3 || counts["root/iter/deep"] != 1 {
		t.Fatalf("counts = %v, want root:1 root/iter:3 root/iter/deep:1", counts)
	}
}

// TestStackAtRootsUnderPath verifies worker stacks attribute under the
// coordinator's phase node.
func TestStackAtRootsUnderPath(t *testing.T) {
	m := NewMetrics()
	s := StackAt(m, "mc.run")
	s.Push("mc.shard")
	s.Pop()
	found := false
	m.SpanTree().Walk(func(n *TreeNode, _ int) {
		if n.Path() == "mc.run/mc.shard" && n.Count() == 1 {
			found = true
		}
	})
	if !found {
		t.Fatal("mc.run/mc.shard node missing or count != 1")
	}
}

// TestAddAt verifies publish-time attribution: intermediate nodes are
// created, and the duration lands as self time at the leaf.
func TestAddAt(t *testing.T) {
	tree := NewTree()
	tree.AddAt(10*time.Millisecond, 4, "solve", "engine", "grad")
	var leaf *TreeNode
	tree.Walk(func(n *TreeNode, _ int) {
		if n.Path() == "solve/engine/grad" {
			leaf = n
		}
	})
	if leaf == nil {
		t.Fatal("AddAt did not create solve/engine/grad")
	}
	if leaf.Count() != 4 || leaf.Cum() != 10*time.Millisecond || leaf.Self() != 10*time.Millisecond {
		t.Fatalf("leaf = n:%d cum:%v self:%v, want 4/10ms/10ms", leaf.Count(), leaf.Cum(), leaf.Self())
	}
	// Empty AddAt path is a no-op, not a root mutation.
	tree.AddAt(time.Second, 1)
}

// TestNilStackNoop pins the disabled path: a nil stack absorbs every
// operation.
func TestNilStackNoop(t *testing.T) {
	var s *Stack
	s.Push("x")
	s.Pop()
	s.PopTo(0)
	if s.Depth() != 0 {
		t.Fatal("nil stack depth != 0")
	}
	if NewStack(nil) != nil {
		t.Fatal("NewStack(nil) != nil")
	}
	if StackAt(nil, "a") != nil {
		t.Fatal("StackAt(nil) != nil")
	}
	if TreeOf(nil) != nil {
		t.Fatal("TreeOf(nil) != nil")
	}
}

// TestTreeHistogramNamespace pins the "tree/" prefix: tree scopes and
// flat spans of the same name stay separate cells, so a stack rooted
// at "nlp.solve" does not double-count the flat nlp.solve span.
func TestTreeHistogramNamespace(t *testing.T) {
	m := NewMetrics()
	m.Span("solve", time.Millisecond)
	s := NewStack(m)
	s.Push("solve")
	s.Pop()
	if got, _ := m.SpanValue("solve"); got != 1 {
		t.Fatalf("flat span count = %d after tree pop, want 1", got)
	}
	if got, _ := m.SpanValue("tree/solve"); got != 1 {
		t.Fatalf("tree span cell count = %d, want 1", got)
	}
}

// TestStackAllocationFree pins the hot path: once an edge exists,
// push/pop allocate nothing (frames are preallocated, node lookup is a
// lock-free map read, the histogram is fixed-size).
func TestStackAllocationFree(t *testing.T) {
	m := NewMetrics()
	s := NewStack(m)
	s.Push("a")
	s.Push("b")
	s.Pop()
	s.Pop() // edges now exist
	if n := testing.AllocsPerRun(1000, func() {
		s.Push("a")
		s.Push("b")
		s.Pop()
		s.Pop()
	}); n != 0 {
		t.Fatalf("warm Push/Pop allocates %v times per run, want 0", n)
	}
	var nilStack *Stack
	if n := testing.AllocsPerRun(1000, func() {
		nilStack.Push("a")
		nilStack.Pop()
	}); n != 0 {
		t.Fatalf("nil-stack Push/Pop allocates %v times per run, want 0", n)
	}
}

// TestTreeWriteJSONL pins the sidecar format tracetool consumes.
func TestTreeWriteJSONL(t *testing.T) {
	tree := NewTree()
	tree.AddAt(2*time.Millisecond, 1, "solve")
	tree.AddAt(time.Millisecond, 3, "solve", "inner")
	var sb strings.Builder
	if err := tree.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := "{\"span\":\"solve\",\"count\":1,\"ns\":2000000,\"self_ns\":2000000}\n" +
		"{\"span\":\"solve/inner\",\"count\":3,\"ns\":1000000,\"self_ns\":1000000}\n"
	if sb.String() != want {
		t.Fatalf("WriteJSONL =\n%s\nwant\n%s", sb.String(), want)
	}
}

// TestTreeWriteFileCreatesParents mirrors CreateTrace: the -spans flag
// must work into a directory that does not exist yet.
func TestTreeWriteFileCreatesParents(t *testing.T) {
	tree := NewTree()
	tree.AddAt(time.Millisecond, 1, "a")
	path := t.TempDir() + "/x/y/spans.jsonl"
	if err := tree.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestMultiForwardsSpanTree pins capability discovery through the
// Multi combinator and the Watchdog middleware.
func TestMultiForwardsSpanTree(t *testing.T) {
	m := NewMetrics()
	rec := Multi(NewTraceWriter(&strings.Builder{}), m)
	if TreeOf(rec) != m.SpanTree() {
		t.Fatal("Multi does not forward SpanTree to the metrics sink")
	}
	wd := NewWatchdog(rec, WatchdogOptions{})
	if TreeOf(wd) != m.SpanTree() {
		t.Fatal("Watchdog does not forward SpanTree")
	}
}
