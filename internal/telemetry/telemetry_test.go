package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenEvents is the synthetic event stream behind the golden-file
// test: it covers integer-valued fields, shortest-round-trip floats,
// the non-finite sentinels, subnormals, exponent notation and an event
// with no fields at all.
func goldenEvents(rec Recorder) {
	rec.Event("alm", "outer",
		I("iter", 1), F("merit", 12.5), F("kkt", 0.0021), F("viol", 0), F("rho", 10))
	rec.Event("lbfgs", "iter",
		I("outer", 1), I("iter", 3),
		F("phi", 27.63984032778785), F("pg", 0.3954198231038851), I("hist", 3))
	rec.Event("edge", "case",
		F("nan", math.NaN()), F("pinf", math.Inf(1)), F("ninf", math.Inf(-1)),
		F("tiny", 5e-324), F("neg", -1.25e10))
	rec.Event("empty", "fields")
}

// TestTraceGolden pins the JSONL encoding byte for byte against the
// checked-in golden file. Run with -update to regenerate it.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	goldenEvents(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.jsonl")
	if update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace encoding drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceRoundTrip checks that ParseTrace followed by re-emission
// through a fresh TraceWriter reproduces the file byte for byte — the
// property the workers=1-vs-4 determinism tests and `tables
// -checktrace` rely on.
func TestTraceRoundTrip(t *testing.T) {
	var orig bytes.Buffer
	w := NewTraceWriter(&orig)
	goldenEvents(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ParseTrace(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(events))
	}
	if err := ValidateTrace(events); err != nil {
		t.Fatal(err)
	}

	var re bytes.Buffer
	w2 := NewTraceWriter(&re)
	for _, ev := range events {
		w2.Event(ev.Scope, ev.Name, ev.Fields...)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), re.Bytes()) {
		t.Errorf("round trip is not byte-identical:\norig:\n%s\nre-emitted:\n%s", orig.Bytes(), re.Bytes())
	}

	// Spot-check parsed values, including the non-finite sentinels.
	if got, _ := events[0].Get("merit"); got != 12.5 {
		t.Errorf("merit = %v, want 12.5", got)
	}
	if got, _ := events[2].Get("nan"); !math.IsNaN(got) {
		t.Errorf("nan field = %v, want NaN", got)
	}
	if got, _ := events[2].Get("pinf"); !math.IsInf(got, 1) {
		t.Errorf("pinf field = %v, want +Inf", got)
	}
	if got, _ := events[2].Get("ninf"); !math.IsInf(got, -1) {
		t.Errorf("ninf field = %v, want -Inf", got)
	}
	if _, ok := events[3].Get("anything"); ok {
		t.Error("empty event reported a field")
	}
}

// TestTraceIgnoresAggregates checks that wall-clock data never reaches
// the trace: the determinism contract of the package comment.
func TestTraceIgnoresAggregates(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	w.Count("n", 42)
	w.Gauge("g", 3.14)
	w.Span("phase", time.Second)
	w.Event("a", "b")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"seq":1,"scope":"a","event":"b"}`+"\n" {
		t.Errorf("trace = %q; counters/gauges/spans must not produce lines", got)
	}
}

func TestValidateTraceErrors(t *testing.T) {
	ok := []TraceEvent{
		{Seq: 1, Scope: "alm", Name: "outer", Fields: []KV{
			F("iter", 1), F("merit", 1), F("kkt", 0), F("viol", 0), F("rho", 10)}},
		{Seq: 2, Scope: "alm", Name: "done"},
	}
	if err := ValidateTrace(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	cases := []struct {
		name   string
		events []TraceEvent
		want   string
	}{
		{"empty", nil, "empty"},
		{"seq gap", []TraceEvent{{Seq: 2, Scope: "a", Name: "b"}}, "seq"},
		{"missing scope", []TraceEvent{{Seq: 1, Name: "b"}}, "scope"},
		{"dup field", []TraceEvent{{Seq: 1, Scope: "a", Name: "b",
			Fields: []KV{F("k", 1), F("k", 2)}}}, "duplicate"},
		{"empty key", []TraceEvent{{Seq: 1, Scope: "a", Name: "b",
			Fields: []KV{F("", 1)}}}, "empty field"},
		{"outer missing kkt", []TraceEvent{{Seq: 1, Scope: "alm", Name: "outer",
			Fields: []KV{F("iter", 1), F("merit", 1), F("viol", 0), F("rho", 10)}}}, "kkt"},
	}
	for _, tc := range cases {
		err := ValidateTrace(tc.events)
		if err == nil {
			t.Errorf("%s: validated, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics()
	m.Count("evals", 3)
	m.Count("evals", 4)
	m.Gauge("levels", 12)
	m.Gauge("levels", 14)
	m.Span("sweep", 2*time.Millisecond)
	m.Span("sweep", 4*time.Millisecond)
	m.Event("alm", "outer", F("iter", 1))
	m.Event("alm", "outer", F("iter", 2))

	if got := m.CounterValue("evals"); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := m.GaugeValue("levels"); got != 14 {
		t.Errorf("gauge = %g, want 14 (last value wins)", got)
	}
	if n, total := m.SpanValue("sweep"); n != 2 || total != 6*time.Millisecond {
		t.Errorf("span = (%d, %v), want (2, 6ms)", n, total)
	}
	if got := m.CounterValue("event.alm.outer"); got != 2 {
		t.Errorf("event census counter = %d, want 2", got)
	}
	if got := m.CounterValue("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}

	// The expvar.Var rendering must be valid JSON.
	var snapshot map[string]any
	if err := json.Unmarshal([]byte(m.String()), &snapshot); err != nil {
		t.Fatalf("String() is not valid JSON: %v\n%s", err, m.String())
	}
	if snapshot["evals"] != 7.0 {
		t.Errorf("snapshot[evals] = %v, want 7", snapshot["evals"])
	}

	var buf bytes.Buffer
	if err := m.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"counter  evals", "gauge    levels", "span     sweep", "n=2", "event.alm.outer",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	m := NewMetrics()
	if Multi(nil, m, nil) != Recorder(m) {
		t.Error("Multi with one live sink should return it unwrapped")
	}

	a, b := NewMetrics(), NewMetrics()
	rec := Multi(a, nil, b)
	rec.Event("s", "e")
	rec.Count("c", 2)
	rec.Gauge("g", 1.5)
	rec.Span("p", time.Millisecond)
	for i, m := range []*Metrics{a, b} {
		if got := m.CounterValue("event.s.e"); got != 1 {
			t.Errorf("sink %d: event counter = %d, want 1", i, got)
		}
		if got := m.CounterValue("c"); got != 2 {
			t.Errorf("sink %d: counter = %d, want 2", i, got)
		}
		if got := m.GaugeValue("g"); got != 1.5 {
			t.Errorf("sink %d: gauge = %g, want 1.5", i, got)
		}
		if n, _ := m.SpanValue("p"); n != 1 {
			t.Errorf("sink %d: span count = %d, want 1", i, n)
		}
	}
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogSink(&buf)
	l.Event("alm", "outer", I("iter", 3), F("merit", 12.5), F("kkt", 0.0021))
	l.Count("n", 1)
	l.Gauge("g", 2)
	l.Span("p", time.Second)
	want := "alm.outer iter=3 merit=12.5 kkt=0.0021\n"
	if got := buf.String(); got != want {
		t.Errorf("log line = %q, want %q", got, want)
	}
}

func TestSpanHelpers(t *testing.T) {
	// Nil recorder: both helpers are no-ops and allocation-free.
	if got := StartSpan(nil); !got.IsZero() {
		t.Errorf("StartSpan(nil) = %v, want zero time", got)
	}
	EndSpan(nil, "phase", time.Time{}) // must not panic
	if allocs := testing.AllocsPerRun(100, func() {
		t0 := StartSpan(nil)
		EndSpan(nil, "phase", t0)
	}); allocs != 0 {
		t.Errorf("nil-recorder span helpers allocate %g per run, want 0", allocs)
	}

	m := NewMetrics()
	t0 := StartSpan(m)
	if t0.IsZero() {
		t.Error("StartSpan(live recorder) returned zero time")
	}
	EndSpan(m, "phase", t0)
	if n, _ := m.SpanValue("phase"); n != 1 {
		t.Errorf("span count = %d, want 1", n)
	}
}

func TestNoopAllocationFree(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() {
		Noop.Event("a", "b")
		Noop.Count("c", 1)
		Noop.Gauge("g", 1)
		Noop.Span("s", time.Millisecond)
	}); allocs != 0 {
		t.Errorf("Noop recorder allocates %g per run, want 0", allocs)
	}
}

func TestTraceWriterEventAllocationFree(t *testing.T) {
	w := NewTraceWriter(&bytes.Buffer{})
	fields := []KV{F("iter", 1), F("merit", 12.5), F("kkt", 2.1e-3)}
	w.Event("alm", "outer", fields...) // warm the line buffer
	if allocs := testing.AllocsPerRun(100, func() {
		w.Event("alm", "outer", fields...)
	}); allocs != 0 {
		t.Errorf("TraceWriter.Event allocates %g per run after warm-up, want 0", allocs)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"not an object", `[1,2]`},
		{"seq not number", `{"seq":"x","scope":"a","event":"b"}`},
		{"scope not string", `{"seq":1,"scope":3,"event":"b"}`},
		{"bad field value", `{"seq":1,"scope":"a","event":"b","k":"bogus"}`},
		{"truncated", `{"seq":1,"scope":"a"`},
	}
	for _, tc := range cases {
		if _, err := ParseTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ParseTrace accepted %q", tc.name, tc.in)
		}
	}
}
