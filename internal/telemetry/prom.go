package telemetry

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	rtm "runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition of a Metrics snapshot, plus the opt-in
// HTTP server that mounts it next to the expvar and pprof debug
// endpoints, and a background runtime/metrics sampler feeding process
// health gauges — the scrape surface a long-running sizing service
// needs.
//
// Mapping:
//
//   - counters  -> "<name>_total" counter families
//   - gauges    -> "<name>" gauge families
//   - spans     -> one histogram family "span_duration_seconds" with a
//     span="<name>" label: cumulative le buckets from the HDR
//     histogram's non-empty buckets plus +Inf, _sum and _count, so
//     p50/p99 are derivable with histogram_quantile()
//   - span tree -> "span_tree_seconds_total"/"span_tree_self_seconds_total"/
//     "span_tree_count_total" families labelled path="<a/b/c>"
//
// Metric names are sanitized to the Prometheus charset ([a-zA-Z0-9_:],
// '.' and every other byte become '_'); span and path labels keep the
// original dotted/slashed names. Families and series render in sorted
// order, so the exposition of a fixed snapshot is deterministic
// (pinned by a golden-file test).

// promName sanitizes a metric name to the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in the exposition's canonical form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeconds renders a duration as seconds.
func promSeconds(d time.Duration) string {
	return promFloat(d.Seconds())
}

// WriteProm renders the snapshot in Prometheus text exposition format
// (version 0.0.4). The output for a fixed snapshot is deterministic:
// families and series are sorted, bucket edges ascend.
func (m *Metrics) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	m.mu.Lock()
	counterNames := sortedKeys(m.counters)
	counterVals := make([]int64, len(counterNames))
	for i, name := range counterNames {
		counterVals[i] = m.counters[name].Value()
	}
	gaugeNames := sortedKeys(m.gauges)
	gaugeVals := make([]float64, len(gaugeNames))
	for i, name := range gaugeNames {
		gaugeVals[i] = m.gauges[name].Value()
	}
	spanNames := sortedKeys(m.spans)
	spanCells := make([]*spanVar, len(spanNames))
	for i, name := range spanNames {
		spanCells[i] = m.spans[name]
	}
	tree := m.tree
	m.mu.Unlock()

	for i, name := range counterNames {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, counterVals[i])
	}
	for i, name := range gaugeNames {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gaugeVals[i]))
	}

	if len(spanNames) > 0 {
		fmt.Fprintf(bw, "# TYPE span_duration_seconds histogram\n")
		for i, name := range spanNames {
			s := spanCells[i]
			var cum int64
			s.h.Buckets(func(upper time.Duration, count int64) {
				cum += count
				fmt.Fprintf(bw, "span_duration_seconds_bucket{span=%q,le=%q} %d\n",
					name, promSeconds(upper), cum)
			})
			fmt.Fprintf(bw, "span_duration_seconds_bucket{span=%q,le=\"+Inf\"} %d\n",
				name, s.h.Count())
			fmt.Fprintf(bw, "span_duration_seconds_sum{span=%q} %s\n",
				name, promSeconds(s.h.Sum()))
			fmt.Fprintf(bw, "span_duration_seconds_count{span=%q} %d\n",
				name, s.h.Count())
		}
	}

	if tree != nil && !tree.Empty() {
		type row struct {
			path      string
			n         int64
			cum, self time.Duration
		}
		var rows []row
		tree.Walk(func(n *TreeNode, _ int) {
			rows = append(rows, row{n.Path(), n.Count(), n.Cum(), n.Self()})
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].path < rows[j].path })
		fmt.Fprintf(bw, "# TYPE span_tree_seconds_total counter\n")
		for _, r := range rows {
			fmt.Fprintf(bw, "span_tree_seconds_total{path=%q} %s\n", r.path, promSeconds(r.cum))
		}
		fmt.Fprintf(bw, "# TYPE span_tree_self_seconds_total counter\n")
		for _, r := range rows {
			fmt.Fprintf(bw, "span_tree_self_seconds_total{path=%q} %s\n", r.path, promSeconds(r.self))
		}
		fmt.Fprintf(bw, "# TYPE span_tree_count_total counter\n")
		for _, r := range rows {
			fmt.Fprintf(bw, "span_tree_count_total{path=%q} %d\n", r.path, r.n)
		}
	}

	return bw.Flush()
}

// runtimeSamples is the runtime/metrics set the sampler publishes.
var runtimeSamples = []struct {
	name  string // runtime/metrics key
	gauge string // Metrics gauge name
}{
	{"/memory/classes/heap/objects:bytes", "runtime.heap_bytes"},
	{"/memory/classes/total:bytes", "runtime.total_bytes"},
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles"},
	{"/gc/pauses:seconds", "runtime.gc_pause_max_seconds"},
}

// SampleRuntime reads the runtime/metrics set once into m's gauges:
// heap and total memory, goroutine count, GC cycles, and the largest
// observed GC pause.
func SampleRuntime(m *Metrics) {
	samples := make([]rtm.Sample, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples[i].Name = s.name
	}
	rtm.Read(samples)
	for i, s := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case rtm.KindUint64:
			m.Gauge(s.gauge, float64(samples[i].Value.Uint64()))
		case rtm.KindFloat64:
			m.Gauge(s.gauge, samples[i].Value.Float64())
		case rtm.KindFloat64Histogram:
			// Publish the upper edge of the highest non-empty bucket —
			// for /gc/pauses:seconds, the worst pause seen.
			h := samples[i].Value.Float64Histogram()
			max := 0.0
			for b := len(h.Counts) - 1; b >= 0; b-- {
				if h.Counts[b] > 0 {
					// Buckets[b+1] is the bucket's upper edge; the last
					// bucket's edge can be +Inf, fall back to its lower.
					edge := h.Buckets[b+1]
					if math.IsInf(edge, 1) {
						edge = h.Buckets[b]
					}
					max = edge
					break
				}
			}
			m.Gauge(s.gauge, max)
		}
	}
}

// StartRuntimeSampler samples the runtime into m immediately and then
// every interval until stop is called. interval <= 0 defaults to 2s.
func StartRuntimeSampler(m *Metrics, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	SampleRuntime(m)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(m)
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// Serve starts the observability HTTP server on addr: Prometheus
// exposition at /metrics, the expvar snapshot at /debug/vars, and the
// standard pprof endpoints under /debug/pprof/, all on one private
// mux (importing this package never mutates global HTTP state). It
// also starts the background runtime sampler feeding m's runtime.*
// gauges. Binding is synchronous — a bad address errors immediately —
// then the server runs in a background goroutine for the life of the
// process. It returns the bound address (useful with ":0").
func Serve(addr string, m *Metrics) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: serve: %w", err)
	}
	StartRuntimeSampler(m, 0)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		SampleRuntime(m) // scrape-coherent runtime gauges
		m.WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
