package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// ServeDebug starts an HTTP debug server on addr exposing the standard
// pprof endpoints under /debug/pprof/ and the expvar snapshot
// (including any published Metrics) at /debug/vars. It binds
// synchronously — so the caller learns about a bad address immediately
// — then serves in a background goroutine for the life of the process.
// It returns the bound address (useful with ":0").
//
// The handlers are registered on a private mux, not
// http.DefaultServeMux, so importing this package never mutates global
// HTTP state.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// StartCPUProfile starts a CPU profile writing to path and returns the
// function that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		rpprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a garbage-collected heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize the live set
	if err := rpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
