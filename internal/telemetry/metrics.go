package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metrics is the aggregate sink: counters, gauges and span timers
// stored in expvar cells (atomic, cheap to bump from worker
// goroutines). Events are not stored individually — each one bumps the
// counter "event.<scope>.<event>", which makes the summary table a
// compact census of the trace stream.
//
// A Metrics value implements expvar.Var; Publish exposes it in the
// process-wide expvar namespace so the -pprof debug server serves the
// live snapshot at /debug/vars.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*expvar.Int
	gauges   map[string]*expvar.Float
	spans    map[string]*spanVar
}

// spanVar aggregates one span name: invocation count and total
// nanoseconds.
type spanVar struct {
	n  expvar.Int
	ns expvar.Int
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*expvar.Int),
		gauges:   make(map[string]*expvar.Float),
		spans:    make(map[string]*spanVar),
	}
}

func (m *Metrics) counter(name string) *expvar.Int {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = new(expvar.Int)
		m.counters[name] = c
	}
	return c
}

// Event bumps the per-kind event counter.
func (m *Metrics) Event(scope, name string, fields ...KV) {
	m.counter("event." + scope + "." + name).Add(1)
}

// Count adds delta to the named counter.
func (m *Metrics) Count(name string, delta int64) {
	m.counter(name).Add(delta)
}

// Gauge sets the named gauge.
func (m *Metrics) Gauge(name string, v float64) {
	m.mu.Lock()
	g := m.gauges[name]
	if g == nil {
		g = new(expvar.Float)
		m.gauges[name] = g
	}
	m.mu.Unlock()
	g.Set(v)
}

// Span folds one completed phase into the per-name timer.
func (m *Metrics) Span(name string, d time.Duration) {
	m.mu.Lock()
	s := m.spans[name]
	if s == nil {
		s = new(spanVar)
		m.spans[name] = s
	}
	m.mu.Unlock()
	s.n.Add(1)
	s.ns.Add(d.Nanoseconds())
}

// CounterValue returns the named counter's current value.
func (m *Metrics) CounterValue(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.counters[name]; c != nil {
		return c.Value()
	}
	return 0
}

// GaugeValue returns the named gauge's current value.
func (m *Metrics) GaugeValue(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g := m.gauges[name]; g != nil {
		return g.Value()
	}
	return 0
}

// SpanValue returns the named span's invocation count and total time.
func (m *Metrics) SpanValue(name string) (count int64, total time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.spans[name]; s != nil {
		return s.n.Value(), time.Duration(s.ns.Value())
	}
	return 0, 0
}

// String renders the snapshot as a JSON object, satisfying expvar.Var.
func (m *Metrics) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := "{"
	sep := ""
	for _, name := range sortedKeys(m.counters) {
		out += fmt.Sprintf("%s%q:%s", sep, name, m.counters[name].String())
		sep = ","
	}
	for _, name := range sortedKeys(m.gauges) {
		out += fmt.Sprintf("%s%q:%s", sep, name, m.gauges[name].String())
		sep = ","
	}
	for _, name := range sortedKeys(m.spans) {
		s := m.spans[name]
		out += fmt.Sprintf("%s%q:{\"count\":%s,\"ns\":%s}", sep, name, s.n.String(), s.ns.String())
		sep = ","
	}
	return out + "}"
}

// Publish registers the snapshot under name in the process-wide expvar
// namespace (and thus at the debug server's /debug/vars). Publishing
// the same name twice panics, per expvar's contract; CLIs publish
// exactly once.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, m)
}

// WriteSummary prints the snapshot as a sorted, aligned table:
//
//	counter  engine.merit_evals            412
//	gauge    ssta.levels                   12
//	span     ssta.forward                  n=824  total=1.204s  avg=1.46ms
func (m *Metrics) WriteSummary(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	width := 0
	for _, set := range []([]string){sortedKeys(m.counters), sortedKeys(m.gauges), sortedKeys(m.spans)} {
		for _, name := range set {
			if len(name) > width {
				width = len(name)
			}
		}
	}
	for _, name := range sortedKeys(m.counters) {
		if _, err := fmt.Fprintf(w, "counter  %-*s  %d\n", width, name, m.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.gauges) {
		if _, err := fmt.Fprintf(w, "gauge    %-*s  %g\n", width, name, m.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.spans) {
		s := m.spans[name]
		n, total := s.n.Value(), time.Duration(s.ns.Value())
		avg := time.Duration(0)
		if n > 0 {
			avg = total / time.Duration(n)
		}
		if _, err := fmt.Fprintf(w, "span     %-*s  n=%d  total=%v  avg=%v\n", width, name, n, total, avg); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
