package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is the aggregate sink: counters, gauges and span timers
// stored in expvar cells (atomic, cheap to bump from worker
// goroutines), with an HDR-style latency histogram per span name and
// a hierarchical span tree (see spantree.go) for phase attribution.
// Events are not stored individually — each one bumps the counter
// "event.<scope>.<event>", which makes the summary table a compact
// census of the trace stream.
//
// A Metrics value implements expvar.Var; Publish exposes it in the
// process-wide expvar namespace so the -pprof debug server serves the
// live snapshot at /debug/vars. WriteProm (prom.go) renders the same
// snapshot in Prometheus text exposition format.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*expvar.Int
	gauges   map[string]*expvar.Float
	spans    map[string]*spanVar
	tree     *Tree
}

// spanVar aggregates one span name: invocation count, total
// nanoseconds, and the latency histogram behind the quantile columns.
type spanVar struct {
	n  expvar.Int
	ns expvar.Int
	h  Histogram
}

// record folds one completed duration into the cell.
func (s *spanVar) record(d time.Duration) {
	s.n.Add(1)
	s.ns.Add(d.Nanoseconds())
	s.h.Record(d)
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	m := &Metrics{
		counters: make(map[string]*expvar.Int),
		gauges:   make(map[string]*expvar.Float),
		spans:    make(map[string]*spanVar),
	}
	m.tree = NewTree()
	m.tree.m = m
	return m
}

// SpanTree returns the sink's span tree (the TreeProvider capability
// NewStack discovers).
func (m *Metrics) SpanTree() *Tree { return m.tree }

func (m *Metrics) counter(name string) *expvar.Int {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = new(expvar.Int)
		m.counters[name] = c
	}
	return c
}

// span returns the named span cell, creating it on first use.
func (m *Metrics) span(name string) *spanVar {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.spans[name]
	if s == nil {
		s = new(spanVar)
		m.spans[name] = s
	}
	return s
}

// Event bumps the per-kind event counter.
func (m *Metrics) Event(scope, name string, fields ...KV) {
	m.counter("event." + scope + "." + name).Add(1)
}

// Count adds delta to the named counter.
func (m *Metrics) Count(name string, delta int64) {
	m.counter(name).Add(delta)
}

// Gauge sets the named gauge.
func (m *Metrics) Gauge(name string, v float64) {
	m.mu.Lock()
	g := m.gauges[name]
	if g == nil {
		g = new(expvar.Float)
		m.gauges[name] = g
	}
	m.mu.Unlock()
	g.Set(v)
}

// Span folds one completed phase into the per-name timer and its
// latency histogram.
func (m *Metrics) Span(name string, d time.Duration) {
	m.span(name).record(d)
}

// CounterValue returns the named counter's current value.
func (m *Metrics) CounterValue(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.counters[name]; c != nil {
		return c.Value()
	}
	return 0
}

// GaugeValue returns the named gauge's current value.
func (m *Metrics) GaugeValue(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g := m.gauges[name]; g != nil {
		return g.Value()
	}
	return 0
}

// SpanValue returns the named span's invocation count and total time.
func (m *Metrics) SpanValue(name string) (count int64, total time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.spans[name]; s != nil {
		return s.n.Value(), time.Duration(s.ns.Value())
	}
	return 0, 0
}

// SpanQuantile returns an upper bound of the p-quantile of the named
// span's recorded durations (see Histogram.Quantile), or 0 for an
// unknown name.
func (m *Metrics) SpanQuantile(name string, p float64) time.Duration {
	m.mu.Lock()
	s := m.spans[name]
	m.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.h.Quantile(p)
}

// SpanMax returns the named span's largest recorded duration.
func (m *Metrics) SpanMax(name string) time.Duration {
	m.mu.Lock()
	s := m.spans[name]
	m.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.h.Max()
}

// String renders the snapshot as a JSON object, satisfying
// expvar.Var. Spans carry their histogram quantiles alongside the
// count/total pair. Keys render in sorted order within each kind, so
// the output is stable for a fixed snapshot.
func (m *Metrics) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	b.WriteByte('{')
	sep := ""
	for _, name := range sortedKeys(m.counters) {
		fmt.Fprintf(&b, "%s%q:%s", sep, name, m.counters[name].String())
		sep = ","
	}
	for _, name := range sortedKeys(m.gauges) {
		fmt.Fprintf(&b, "%s%q:%s", sep, name, m.gauges[name].String())
		sep = ","
	}
	for _, name := range sortedKeys(m.spans) {
		s := m.spans[name]
		fmt.Fprintf(&b, "%s%q:{\"count\":%s,\"ns\":%s,\"p50_ns\":%d,\"p90_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d}",
			sep, name, s.n.String(), s.ns.String(),
			s.h.Quantile(0.50).Nanoseconds(), s.h.Quantile(0.90).Nanoseconds(),
			s.h.Quantile(0.99).Nanoseconds(), s.h.Max().Nanoseconds())
		sep = ","
	}
	b.WriteByte('}')
	return b.String()
}

// Publish registers the snapshot under name in the process-wide expvar
// namespace (and thus at the debug server's /debug/vars). Publishing
// the same name twice panics, per expvar's contract; CLIs publish
// exactly once.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, m)
}

// durUnit is one rendering unit of the summary's duration columns.
type durUnit struct {
	div  float64
	name string
}

var durUnits = []durUnit{
	{1, "ns"},
	{1e3, "µs"},
	{1e6, "ms"},
	{1e9, "s"},
}

// pickUnit chooses the unit that renders max below 10000, so a column
// formatted with one shared unit never mixes µs and ms rows.
func pickUnit(max time.Duration) durUnit {
	u := durUnits[0]
	for _, cand := range durUnits[1:] {
		if float64(max) < cand.div*10 {
			break
		}
		u = cand
	}
	return u
}

// fmtDur renders d in unit u with three decimals ("1.461ms").
func fmtDur(d time.Duration, u durUnit) string {
	return fmt.Sprintf("%.3f%s", float64(d)/u.div, u.name)
}

// spanRow is one span line of the summary, pre-extracted under the
// lock so the quantile walks happen once.
type spanRow struct {
	name                              string
	n                                 int64
	total, avg, p50, p90, p99, maxDur time.Duration
}

// WriteSummary prints the snapshot as a sorted, aligned table:
//
//	counter  engine.merit_evals  412
//	gauge    ssta.levels          12
//	span     ssta.forward   n=824  total=1204.000ms  avg=1.461ms  p50=1.380ms  p90=2.110ms  p99=3.530ms  max=4.120ms
//	tree     nlp.solve      n=1    cum=1374.210ms    self=12.004ms
//	tree       alm.outer    n=12   cum=1362.206ms    self=204.112ms
//
// Rows of each kind render in sorted name order. Every duration
// column uses one shared unit (chosen from the column's largest
// value) with fixed decimals, so mixed-magnitude spans stay aligned;
// columns are padded to the column's widest cell.
func (m *Metrics) WriteSummary(w io.Writer) error {
	m.mu.Lock()
	counterNames := sortedKeys(m.counters)
	gaugeNames := sortedKeys(m.gauges)
	rows := make([]spanRow, 0, len(m.spans))
	var maxTotal, maxAvg, maxQ time.Duration
	for _, name := range sortedKeys(m.spans) {
		s := m.spans[name]
		r := spanRow{
			name:   name,
			n:      s.n.Value(),
			total:  time.Duration(s.ns.Value()),
			p50:    s.h.Quantile(0.50),
			p90:    s.h.Quantile(0.90),
			p99:    s.h.Quantile(0.99),
			maxDur: s.h.Max(),
		}
		if r.n > 0 {
			r.avg = r.total / time.Duration(r.n)
		}
		rows = append(rows, r)
		if r.total > maxTotal {
			maxTotal = r.total
		}
		if r.avg > maxAvg {
			maxAvg = r.avg
		}
		if r.maxDur > maxQ {
			maxQ = r.maxDur
		}
	}
	counterVals := make([]int64, len(counterNames))
	for i, name := range counterNames {
		counterVals[i] = m.counters[name].Value()
	}
	gaugeVals := make([]float64, len(gaugeNames))
	for i, name := range gaugeNames {
		gaugeVals[i] = m.gauges[name].Value()
	}
	tree := m.tree
	m.mu.Unlock()

	// Tree rows: depth-first with two-space indentation; durations
	// share the span columns' units so the sections align.
	type treeRow struct {
		disp      string
		n         int64
		cum, self time.Duration
	}
	var treeRows []treeRow
	if tree != nil {
		tree.Walk(func(n *TreeNode, depth int) {
			r := treeRow{
				disp: strings.Repeat("  ", depth) + n.Name(),
				n:    n.Count(),
				cum:  n.Cum(),
				self: n.Self(),
			}
			treeRows = append(treeRows, r)
			if r.cum > maxTotal {
				maxTotal = r.cum
			}
		})
	}

	width := 0
	for _, set := range [][]string{counterNames, gaugeNames} {
		for _, name := range set {
			if len(name) > width {
				width = len(name)
			}
		}
	}
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	for _, r := range treeRows {
		if len(r.disp) > width {
			width = len(r.disp)
		}
	}

	uTotal := pickUnit(maxTotal)
	uAvg := pickUnit(maxAvg)
	uQ := pickUnit(maxQ)
	maxN := int64(0)
	for _, r := range rows {
		if r.n > maxN {
			maxN = r.n
		}
	}
	for _, r := range treeRows {
		if r.n > maxN {
			maxN = r.n
		}
	}
	nW := len(fmt.Sprintf("%d", maxN))
	dW := len(fmtDur(maxTotal, uTotal))
	aW := len(fmtDur(maxAvg, uAvg))
	qW := len(fmtDur(maxQ, uQ))

	for i, name := range counterNames {
		if _, err := fmt.Fprintf(w, "counter  %-*s  %d\n", width, name, counterVals[i]); err != nil {
			return err
		}
	}
	for i, name := range gaugeNames {
		if _, err := fmt.Fprintf(w, "gauge    %-*s  %g\n", width, name, gaugeVals[i]); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w,
			"span     %-*s  n=%-*d  total=%*s  avg=%*s  p50=%*s  p90=%*s  p99=%*s  max=%*s\n",
			width, r.name, nW, r.n,
			dW, fmtDur(r.total, uTotal), aW, fmtDur(r.avg, uAvg),
			qW, fmtDur(r.p50, uQ), qW, fmtDur(r.p90, uQ),
			qW, fmtDur(r.p99, uQ), qW, fmtDur(r.maxDur, uQ)); err != nil {
			return err
		}
	}
	for _, r := range treeRows {
		if _, err := fmt.Fprintf(w,
			"tree     %-*s  n=%-*d  cum=%*s  self=%*s\n",
			width, r.disp, nW, r.n,
			dW, fmtDur(r.cum, uTotal), dW, fmtDur(r.self, uTotal)); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
