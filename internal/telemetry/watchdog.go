package telemetry

import (
	"sync"
	"time"
)

// Watchdog is the solve-health monitor: a Recorder middleware that
// forwards everything to the wrapped sink while tailing the solver's
// progress events — "alm.outer" (merit), "inc.update" and
// "hier.sweep"/"hier.update" (mu) — and raising a "solve.stalled"
// event when the tracked figure of merit stops improving for Patience
// consecutive iterations. For "alm.outer" an improvement in the KKT
// residual also counts as progress: near a constrained optimum the
// augmented-Lagrangian merit plateaus by construction (that is
// convergence, not a stall) while the residual keeps dropping, so a
// healthy long solve stays silent; a stuck one improves neither.
// "alm.recover" events count as non-improving iterations outright: a
// recovery means the solver restored the last good iterate instead of
// stepping, so a persistently faulting solve that never reaches an
// outer event still trips the watchdog. The paper's ALM outer loop
// has no intrinsic progress guarantee, so a long-running service
// needs exactly this hook to park or kill jobs that have stopped
// converging.
//
// Determinism: the watchdog's state advances only on Event values,
// which are worker-count-invariant by the module's telemetry
// contract, so the injected solve.stalled events are themselves
// deterministic — traces stay byte-identical for every worker count
// with a watchdog in the chain. Every tracked figure is
// lower-is-better (merit, mu).
//
// One stall event fires per episode: after raising solve.stalled the
// watchdog arms again only once the figure improves.

// Watched-source codes carried in the solve.stalled "src" field.
const (
	StallSrcALM  = 0 // alm.outer merit
	StallSrcInc  = 1 // inc.update mu
	StallSrcHier = 2 // hier.sweep / hier.update mu
)

// WatchdogOptions tunes stall detection.
type WatchdogOptions struct {
	// MinImprove is the minimum relative improvement per iteration,
	// (best-v)/max(|best|,1), that counts as progress. Default 1e-9.
	MinImprove float64
	// Patience is how many consecutive non-improving iterations raise
	// a stall. Default 16.
	Patience int
	// OnStall, when non-nil, is called (on the emitting goroutine)
	// for every raised stall — the job-health hook for a service.
	OnStall func(Stall)
}

// Stall describes one raised solve.stalled event.
type Stall struct {
	Scope  string  // source scope: "alm", "inc" or "hier"
	Src    int     // StallSrc* code
	Iter   int     // iterations seen on the source when it fired
	Best   float64 // best figure of merit seen
	Last   float64 // figure at the stall
	Streak int     // consecutive non-improving iterations
}

// kktImproveFrac is the new-low margin for the KKT escape hatch: the
// residual must undercut its best by 1% to count as progress. Near a
// plateau the residual wobbles by fractions of a percent around a
// slowly drifting floor; without the margin those noise lows would
// reset the streak forever and a genuinely stuck solve would never
// fire.
const kktImproveFrac = 0.01

// watchState tracks one source's progress.
type watchState struct {
	src       int
	seen      int
	best      float64
	last      float64
	altBest   float64 // best KKT residual (alm only)
	altPrimed bool
	streak    int
	fired     bool
	primed    bool
}

// Watchdog implements Recorder. Create with NewWatchdog.
type Watchdog struct {
	next Recorder
	opt  WatchdogOptions

	mu      sync.Mutex
	sources map[string]*watchState // keyed by scope
	stalls  []Stall
}

// NewWatchdog wraps next with stall detection. A nil next is allowed:
// the watchdog then only accumulates state (Stalls, OnStall) without
// forwarding.
func NewWatchdog(next Recorder, opt WatchdogOptions) *Watchdog {
	if opt.MinImprove <= 0 {
		opt.MinImprove = 1e-9
	}
	if opt.Patience <= 0 {
		opt.Patience = 16
	}
	return &Watchdog{next: next, opt: opt, sources: make(map[string]*watchState)}
}

// Stalls returns a copy of every stall raised so far.
func (w *Watchdog) Stalls() []Stall {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Stall, len(w.stalls))
	copy(out, w.stalls)
	return out
}

// Stalled reports whether any stall has been raised.
func (w *Watchdog) Stalled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.stalls) > 0
}

// SpanTree forwards the TreeProvider capability, so stacks reach a
// wrapped Metrics sink through the watchdog.
func (w *Watchdog) SpanTree() *Tree {
	if tp, ok := w.next.(TreeProvider); ok {
		return tp.SpanTree()
	}
	return nil
}

// Event forwards the event, then advances stall detection when it is
// one of the watched progress events.
func (w *Watchdog) Event(scope, name string, fields ...KV) {
	if w.next != nil {
		w.next.Event(scope, name, fields...)
	}
	var key string
	var src int
	var metric, altMetric string
	switch {
	case scope == "alm" && name == "recover":
		w.tick("alm", StallSrcALM)
		return
	case scope == "alm" && name == "outer":
		key, src, metric, altMetric = "alm", StallSrcALM, "merit", "kkt"
	case scope == "inc" && name == "update":
		key, src, metric = "inc", StallSrcInc, "mu"
	case scope == "hier" && (name == "sweep" || name == "update"):
		key, src, metric = "hier", StallSrcHier, "mu"
	default:
		return
	}
	var v, alt float64
	found, hasAlt := false, false
	for _, f := range fields {
		if f.Key == metric {
			v, found = f.Val, true
		}
		if altMetric != "" && f.Key == altMetric {
			alt, hasAlt = f.Val, true
		}
	}
	if !found || v != v { // missing or NaN: not evidence either way
		return
	}
	if hasAlt && alt != alt { // NaN residual: no escape hatch
		hasAlt = false
	}
	w.observe(key, src, v, alt, hasAlt)
}

// state returns (creating if needed) the watch state for key. Caller
// holds w.mu.
func (w *Watchdog) state(key string, src int) *watchState {
	st := w.sources[key]
	if st == nil {
		st = &watchState{src: src}
		w.sources[key] = st
	}
	return st
}

// observe advances one source's state with the next figure of merit
// and, for the ALM source, the KKT residual escape hatch.
func (w *Watchdog) observe(key string, src int, v, alt float64, hasAlt bool) {
	w.mu.Lock()
	st := w.state(key, src)
	st.seen++
	if !st.primed {
		st.primed = true
		st.best, st.last = v, v
		if hasAlt {
			st.altBest, st.altPrimed = alt, true
		}
		w.mu.Unlock()
		return
	}
	st.last = v
	denom := st.best
	if denom < 0 {
		denom = -denom
	}
	if denom < 1 {
		denom = 1
	}
	progress := false
	if (st.best-v)/denom >= w.opt.MinImprove {
		st.best = v
		progress = true
	}
	if hasAlt {
		if !st.altPrimed {
			st.altBest, st.altPrimed = alt, true
		} else if st.altBest-alt >= kktImproveFrac*st.altBest {
			st.altBest = alt
			progress = true
		}
	}
	if progress {
		st.streak = 0
		st.fired = false
		w.mu.Unlock()
		return
	}
	st.streak++
	w.maybeFire(st, key)
}

// tick records a non-improving iteration without a figure of merit —
// the recovery path, where the solver restored an iterate instead of
// stepping.
func (w *Watchdog) tick(key string, src int) {
	w.mu.Lock()
	st := w.state(key, src)
	st.seen++
	st.streak++
	w.maybeFire(st, key)
}

// maybeFire raises a stall when the streak reaches Patience. It must
// be entered with w.mu held and always unlocks it; the stall event and
// the OnStall hook run outside the lock (the sink chain may be slow,
// and OnStall is user code).
func (w *Watchdog) maybeFire(st *watchState, key string) {
	if st.fired || st.streak < w.opt.Patience {
		w.mu.Unlock()
		return
	}
	st.fired = true
	stall := Stall{
		Scope: key, Src: st.src, Iter: st.seen,
		Best: st.best, Last: st.last, Streak: st.streak,
	}
	w.stalls = append(w.stalls, stall)
	w.mu.Unlock()

	if w.next != nil {
		w.next.Event("solve", "stalled",
			I("src", stall.Src),
			I("iter", stall.Iter),
			F("best", stall.Best),
			F("last", stall.Last),
			I("streak", stall.Streak),
		)
	}
	if w.opt.OnStall != nil {
		w.opt.OnStall(stall)
	}
}

// Count forwards to the wrapped sink.
func (w *Watchdog) Count(name string, delta int64) {
	if w.next != nil {
		w.next.Count(name, delta)
	}
}

// Gauge forwards to the wrapped sink.
func (w *Watchdog) Gauge(name string, v float64) {
	if w.next != nil {
		w.next.Gauge(name, v)
	}
}

// Span forwards to the wrapped sink.
func (w *Watchdog) Span(name string, d time.Duration) {
	if w.next != nil {
		w.next.Span(name, d)
	}
}
