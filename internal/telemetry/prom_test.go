package telemetry

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promFixture builds a Metrics snapshot whose exposition is fully
// deterministic: counters, gauges, explicitly recorded span durations
// and AddAt tree nodes — no wall clock anywhere.
func promFixture() *Metrics {
	m := NewMetrics()
	m.Count("engine.grad_evals", 42)
	m.Count("mc.samples", 100000)
	m.Gauge("ssta.levels", 18)
	m.Span("nlp.solve", 150*time.Millisecond)
	m.Span("nlp.solve", 250*time.Millisecond)
	m.Span("ssta.forward", 750*time.Microsecond)
	m.SpanTree().AddAt(400*time.Millisecond, 1, "nlp.solve")
	m.SpanTree().AddAt(380*time.Millisecond, 2, "nlp.solve", "alm.outer")
	return m
}

// TestWritePromGolden pins the exposition byte for byte.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promFixture().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s (re-run with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestWritePromDeterministic: two renders of the same snapshot are
// identical (map iteration must not leak into the output).
func TestWritePromDeterministic(t *testing.T) {
	m := promFixture()
	var a, b bytes.Buffer
	if err := m.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of one snapshot differ")
	}
}

// TestPromName pins the charset sanitization.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine.grad_evals": "engine_grad_evals",
		"mc.samples":        "mc_samples",
		"9lives":            "_9lives",
		"a:b":               "a:b",
		"sp ace":            "sp_ace",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSampleRuntime: the sampler publishes live process gauges.
func TestSampleRuntime(t *testing.T) {
	m := NewMetrics()
	SampleRuntime(m)
	if v := m.GaugeValue("runtime.goroutines"); v < 1 {
		t.Errorf("runtime.goroutines = %v, want >= 1", v)
	}
	if v := m.GaugeValue("runtime.heap_bytes"); v <= 0 {
		t.Errorf("runtime.heap_bytes = %v, want > 0", v)
	}
}

// TestServe is the end-to-end scrape check: bind :0, GET /metrics and
// /debug/vars, and confirm the exposition carries the solver metrics
// and the runtime gauges.
func TestServe(t *testing.T) {
	m := promFixture()
	addr, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (string, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ctype)
	}
	for _, want := range []string{
		"engine_grad_evals_total 42",
		"mc_samples_total 100000",
		"ssta_levels 18",
		"# TYPE span_duration_seconds histogram",
		`span_duration_seconds_count{span="nlp.solve"} 2`,
		`span_tree_seconds_total{path="nlp.solve/alm.outer"} 0.38`,
		"runtime_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	vars, _ := get("/debug/vars")
	if !strings.HasPrefix(strings.TrimSpace(vars), "{") {
		t.Errorf("/debug/vars is not a JSON object:\n%.200s", vars)
	}
	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", idx)
	}
}

// TestServeBadAddr: binding errors surface synchronously.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:99999", NewMetrics()); err == nil {
		t.Fatal("Serve on a bad address did not error")
	}
}
