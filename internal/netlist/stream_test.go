package netlist

import (
	"bytes"
	"testing"
)

// TestGenerateStreamDeterministic asserts the streamed emission is
// byte-identical across runs of the same spec and differs across
// seeds.
func TestGenerateStreamDeterministic(t *testing.T) {
	spec := GenSpec{
		Name: "stream2k", Gates: 2000, Inputs: 64, Outputs: 16,
		Depth: 24, MaxFanin: 4, Seed: 77,
	}
	var a, b bytes.Buffer
	if err := GenerateStream(&a, spec); err != nil {
		t.Fatal(err)
	}
	if err := GenerateStream(&b, spec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same spec produced different bytes")
	}
	spec.Seed = 78
	b.Reset()
	if err := GenerateStream(&b, spec); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different seeds produced identical bytes")
	}
}

// TestGenerateStreamWellFormed round-trips the stream through the
// .ckt reader and the compiler, pinning the structural contract: exact
// gate count and depth, bounded fan-in, at least the requested
// outputs, no dangling gates.
func TestGenerateStreamWellFormed(t *testing.T) {
	spec := GenSpec{
		Name: "stream3k", Gates: 3000, Inputs: 96, Outputs: 24,
		Depth: 30, MaxFanin: 4, Seed: 5,
	}
	var buf bytes.Buffer
	if err := GenerateStream(&buf, spec); err != nil {
		t.Fatal(err)
	}
	c, err := ReadCKT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := MustCompile(c)
	gates := 0
	for _, nd := range c.Nodes {
		if nd.Kind != KindGate {
			continue
		}
		gates++
		if len(nd.Fanin) < 1 || len(nd.Fanin) > spec.MaxFanin {
			t.Fatalf("gate %s has %d fanins", nd.Name, len(nd.Fanin))
		}
	}
	if gates != spec.Gates {
		t.Fatalf("got %d gates, want %d", gates, spec.Gates)
	}
	if got := len(g.Levels) - 1; got != spec.Depth {
		t.Fatalf("depth %d, want %d", got, spec.Depth)
	}
	if len(c.Outputs) < spec.Outputs {
		t.Fatalf("got %d outputs, want >= %d", len(c.Outputs), spec.Outputs)
	}
	if d := g.DanglingGates(); len(d) != 0 {
		t.Fatalf("%d dangling gates", len(d))
	}
}

// TestGenPresetSpecsValid pins the canonical benchmark specs.
func TestGenPresetSpecsValid(t *testing.T) {
	for _, spec := range []GenSpec{Gen100kSpec(), Gen1MSpec()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}
