package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// sampleBench is ISCAS-C17 (the classic 6-NAND benchmark), with gates
// deliberately out of declaration order.
const sampleBench = `
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

22 = NAND(10, 16)
23 = NAND(16, 19)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
`

func TestReadBenchC17(t *testing.T) {
	c, err := ReadBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 5 || c.NumGates() != 6 || len(c.Outputs) != 2 {
		t.Fatalf("c17 structure: %d/%d/%d", c.NumInputs(), c.NumGates(), len(c.Outputs))
	}
	g22 := c.Nodes[c.MustID("22")]
	if g22.Type != "nand2" || len(g22.Fanin) != 2 {
		t.Errorf("gate 22 = %+v", g22)
	}
	s, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != 3 {
		t.Errorf("c17 depth = %d, want 3", s.Depth)
	}
}

func TestReadBenchFunctions(t *testing.T) {
	in := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
n1 = NOT(a)
n2 = BUFF(b)
n3 = AND(a, b, c)
n4 = OR(n1, n2)
n5 = XOR(n3, n4)
z = XNOR(n5, c)
`
	cir, err := ReadBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"n1": "inv", "n2": "buf", "n3": "and3", "n4": "or2",
		"n5": "xor2", "z": "xnor2",
	}
	for name, typ := range want {
		if got := cir.Nodes[cir.MustID(name)].Type; got != typ {
			t.Errorf("%s type = %q, want %q", name, got, typ)
		}
	}
}

func TestReadBenchErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"dff", "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"},
		{"unknown fn", "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"},
		{"bad arity not", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NOT(a, b)\n"},
		{"bad arity nand", "INPUT(a)\nOUTPUT(z)\nz = NAND(a)\n"},
		{"too many", "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\nz = NAND(a,b,c,d,e)\n"},
		{"malformed paren", "INPUT a\n"},
		{"no assignment", "INPUT(a)\nz NAND(a, a)\n"},
		{"empty operand", "INPUT(a)\nOUTPUT(z)\nz = NAND(a, )\n"},
		{"undriven", "INPUT(a)\nOUTPUT(z)\nz = NAND(a, ghost)\n"},
		{"double drive", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\nz = NAND(b, a)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(x)\nx = NAND(a, y)\ny = NOT(x)\n"},
	}
	for _, tc := range cases {
		if _, err := ReadBench(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	orig, err := ReadBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadBench(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	sa, _ := orig.ComputeStats()
	sb, _ := rt.ComputeStats()
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestWriteBenchRejectsUnmappableType(t *testing.T) {
	c := New("t")
	c.AddInput("a")
	c.AddGate("g", "weird", "a")
	c.MarkOutput("g")
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err == nil {
		t.Error("unmappable type accepted")
	}
}
