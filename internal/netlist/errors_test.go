package netlist

import (
	"errors"
	"strings"
	"testing"
)

// readBLIF parses BLIF source expecting a structural error.
func readBLIFErr(t *testing.T, src string) error {
	t.Helper()
	c, err := ReadBLIF(strings.NewReader(src))
	if err == nil {
		t.Fatalf("ReadBLIF accepted a defective netlist: %v", c.Name)
	}
	return err
}

func TestBLIFUndrivenNet(t *testing.T) {
	err := readBLIFErr(t, `
.model bad
.inputs a
.outputs y
.gate nand2 A=a B=ghost O=y
.end
`)
	if !errors.Is(err, ErrUndriven) {
		t.Fatalf("err = %v, want ErrUndriven", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not a *ParseError", err)
	}
	if pe.Format != "blif" || pe.Line != 5 {
		t.Fatalf("position = %s:%d, want blif:5", pe.Format, pe.Line)
	}
	if !strings.HasPrefix(err.Error(), "blif:5: ") {
		t.Fatalf("rendering %q lacks the blif:5: prefix", err.Error())
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("rendering %q does not name the undriven net", err.Error())
	}
}

func TestBLIFRedrivenNet(t *testing.T) {
	err := readBLIFErr(t, `
.model bad
.inputs a b
.outputs y
.gate inv A=a O=y
.gate inv A=b O=y
.end
`)
	if !errors.Is(err, ErrRedriven) {
		t.Fatalf("err = %v, want ErrRedriven", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 6 {
		t.Fatalf("err %v not anchored at the second driver (line 6)", err)
	}
	// The message points back to the first driver too.
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("rendering %q does not cite the first driver's line", err.Error())
	}
}

func TestBLIFGateDrivesPrimaryInput(t *testing.T) {
	err := readBLIFErr(t, `
.model bad
.inputs a b
.outputs b
.gate inv A=a O=b
.end
`)
	if !errors.Is(err, ErrRedriven) {
		t.Fatalf("err = %v, want ErrRedriven", err)
	}
}

func TestBLIFCycleNamesGates(t *testing.T) {
	err := readBLIFErr(t, `
.model bad
.inputs a
.outputs y
.gate nand2 A=a B=q O=p
.gate nand2 A=a B=p O=q
.gate inv A=p O=y
.end
`)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	msg := err.Error()
	// The diagnostic names the stuck gates with their source lines.
	if !strings.Contains(msg, "p (line 5)") || !strings.Contains(msg, "q (line 6)") {
		t.Fatalf("cycle diagnostic %q does not name the cycle gates", msg)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 0 {
		t.Fatalf("cycle diagnostic should have no single line anchor, got %v", err)
	}
}

func TestBLIFDuplicateInput(t *testing.T) {
	err := readBLIFErr(t, `
.model bad
.inputs a a
.outputs y
.gate inv A=a O=y
.end
`)
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Format != "blif" {
		t.Fatalf("err %v should surface as a blif ParseError", err)
	}
}

func TestBLIFUnknownOutput(t *testing.T) {
	err := readBLIFErr(t, `
.model bad
.inputs a
.outputs nope
.gate inv A=a O=y
.end
`)
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestBenchPositionalErrors(t *testing.T) {
	_, err := ReadBench(strings.NewReader(`INPUT(a)
OUTPUT(y)
y = DFF(a)
`))
	if err == nil {
		t.Fatal("ReadBench accepted a sequential element")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not a *ParseError", err)
	}
	if pe.Format != "bench" || pe.Line != 3 {
		t.Fatalf("position = %s:%d, want bench:3", pe.Format, pe.Line)
	}
	if !strings.HasPrefix(err.Error(), "bench:3: ") {
		t.Fatalf("rendering %q lacks the bench:3: prefix", err.Error())
	}
}

func TestBenchUndrivenNet(t *testing.T) {
	_, err := ReadBench(strings.NewReader(`INPUT(a)
OUTPUT(y)
y = NAND(a, ghost)
`))
	if err == nil {
		t.Fatal("ReadBench accepted an undriven fanin")
	}
	if !errors.Is(err, ErrUndriven) {
		t.Fatalf("err = %v, want ErrUndriven", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Format != "bench" {
		t.Fatalf("err %v should surface as a bench ParseError", err)
	}
}

func TestParseErrorRendering(t *testing.T) {
	withLine := &ParseError{Format: "blif", Line: 12, Err: errors.New("boom")}
	if got := withLine.Error(); got != "blif:12: boom" {
		t.Fatalf("rendering = %q, want \"blif:12: boom\"", got)
	}
	spanning := &ParseError{Format: "bench", Err: errors.New("boom")}
	if got := spanning.Error(); got != "bench: boom" {
		t.Fatalf("rendering = %q, want \"bench: boom\"", got)
	}
}

// TestGoodNetlistStillParses guards against the validation layer
// rejecting well-formed input.
func TestGoodNetlistStillParses(t *testing.T) {
	c, err := ReadBLIF(strings.NewReader(`
.model ok
.inputs a b
.outputs y
.gate nand2 A=a B=b O=n1
.gate inv A=n1 O=y
.end
`))
	if err != nil {
		t.Fatalf("ReadBLIF: %v", err)
	}
	if len(c.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1", len(c.Outputs))
	}
}
