package netlist

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCKT = `
# a small tree
circuit mini
input a b c d
gate g1 nand2 a b
gate g2 nand2 c d   # trailing comment
gate g3 nand2 g1 g2
output g3
`

func TestReadCKT(t *testing.T) {
	c, err := ReadCKT(strings.NewReader(sampleCKT))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mini" {
		t.Errorf("name = %q", c.Name)
	}
	if c.NumInputs() != 4 || c.NumGates() != 3 || len(c.Outputs) != 1 {
		t.Errorf("structure: %d/%d/%d", c.NumInputs(), c.NumGates(), len(c.Outputs))
	}
	g3 := c.Nodes[c.MustID("g3")]
	if g3.Type != "nand2" || len(g3.Fanin) != 2 {
		t.Errorf("g3 = %+v", g3)
	}
}

func TestReadCKTErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"unknown keyword", "frob x\n"},
		{"bad circuit", "circuit a b\n"},
		{"gate no fanin", "input a\ngate g inv\n"},
		{"unknown fanin", "input a\ngate g inv b\noutput g\n"},
		{"dup name", "input a a\n"},
		{"output missing", "input a\ngate g inv a\noutput h\n"},
		{"no outputs", "input a\ngate g inv a\n"},
		{"empty", ""},
		{"input no names", "input\n"},
		{"output no names", "input a\ngate g inv a\noutput\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCKT(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCKTRoundTrip(t *testing.T) {
	circuits := []*Circuit{Tree7(), Fig2Example(), Apex2Like()}
	for _, c := range circuits {
		var buf bytes.Buffer
		if err := WriteCKT(&buf, c); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadCKT(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", c.Name, err)
		}
		assertSameCircuit(t, c, rt)
	}
}

func assertSameCircuit(t *testing.T, a, b *Circuit) {
	t.Helper()
	if a.Name != b.Name {
		t.Errorf("names %q vs %q", a.Name, b.Name)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: node count %d vs %d", a.Name, len(a.Nodes), len(b.Nodes))
	}
	for _, nd := range a.Nodes {
		id, ok := b.Lookup(nd.Name)
		if !ok {
			t.Fatalf("node %q missing after round trip", nd.Name)
		}
		nb := b.Nodes[id]
		if nb.Kind != nd.Kind || nb.Type != nd.Type || len(nb.Fanin) != len(nd.Fanin) {
			t.Fatalf("node %q differs: %+v vs %+v", nd.Name, nd, nb)
		}
		for i := range nd.Fanin {
			if a.Nodes[nd.Fanin[i]].Name != b.Nodes[nb.Fanin[i]].Name {
				t.Fatalf("node %q fanin %d differs", nd.Name, i)
			}
		}
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("output counts differ")
	}
	for i := range a.Outputs {
		if a.Nodes[a.Outputs[i]].Name != b.Nodes[b.Outputs[i]].Name {
			t.Errorf("output %d differs", i)
		}
	}
}

const sampleBLIF = `
.model mini
.inputs a b \
        c d
.outputs g3
.gate nand2 A=a B=b O=g1
# gates may appear out of order
.gate nand2 A=g1 B=g2 O=g3
.gate nand2 A=c B=d O=g2
.end
`

func TestReadBLIF(t *testing.T) {
	c, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mini" {
		t.Errorf("name = %q", c.Name)
	}
	if c.NumInputs() != 4 || c.NumGates() != 3 || len(c.Outputs) != 1 {
		t.Errorf("structure: %d/%d/%d", c.NumInputs(), c.NumGates(), len(c.Outputs))
	}
	g3 := c.Nodes[c.MustID("g3")]
	if len(g3.Fanin) != 2 {
		t.Fatalf("g3 fanin = %d", len(g3.Fanin))
	}
	if c.Nodes[g3.Fanin[0]].Name != "g1" || c.Nodes[g3.Fanin[1]].Name != "g2" {
		t.Errorf("g3 fanin wrong: %v", g3.Fanin)
	}
}

func TestReadBLIFOutputPinDetection(t *testing.T) {
	// Output pin recognized by name regardless of position.
	in := `
.model m
.inputs a
.outputs y
.gate inv Z=y A=a
.end
`
	c, err := ReadBLIF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	y := c.Nodes[c.MustID("y")]
	if len(y.Fanin) != 1 || c.Nodes[y.Fanin[0]].Name != "a" {
		t.Errorf("y = %+v", y)
	}
}

func TestReadBLIFErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"names", ".model m\n.inputs a\n.names a b\n1 1\n.end\n"},
		{"latch", ".model m\n.latch a b\n.end\n"},
		{"subckt", ".model m\n.subckt foo a=b\n.end\n"},
		{"unknown", ".model m\n.wibble\n.end\n"},
		{"bad pin", ".model m\n.inputs a\n.outputs y\n.gate inv a O=y\n.end\n"},
		{"double drive", ".model m\n.inputs a\n.outputs y\n.gate inv A=a O=y\n.gate inv A=a O=y\n.end\n"},
		{"undriven", ".model m\n.inputs a\n.outputs y\n.gate inv A=zz O=y\n.end\n"},
		{"drives input", ".model m\n.inputs a b\n.outputs b\n.gate inv A=a O=b\n.end\n"},
		{"cycle", ".model m\n.inputs a\n.outputs x\n.gate nand2 A=a B=y O=x\n.gate inv A=x O=y\n.end\n"},
		{"no output pin", ".model m\n.inputs a\n.outputs y\n.gate inv\n.end\n"},
	}
	for _, tc := range cases {
		if _, err := ReadBLIF(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBLIFRoundTrip(t *testing.T) {
	circuits := []*Circuit{Tree7(), Fig2Example(), Apex2Like()}
	for _, c := range circuits {
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", c.Name, err)
		}
		// BLIF names gates after output nets, which matches our IR
		// convention, so the circuits must be structurally identical
		// up to node order. Compare via stats plus name-wise fanin.
		sa, _ := c.ComputeStats()
		sb, _ := rt.ComputeStats()
		if sa != sb {
			t.Errorf("%s: stats differ %+v vs %+v", c.Name, sa, sb)
		}
		for _, nd := range c.Nodes {
			id, ok := rt.Lookup(nd.Name)
			if !ok {
				t.Fatalf("%s: node %q missing", c.Name, nd.Name)
			}
			if len(rt.Nodes[id].Fanin) != len(nd.Fanin) {
				t.Errorf("%s: node %q fanin differs", c.Name, nd.Name)
			}
		}
	}
}
