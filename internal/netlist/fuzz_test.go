package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// The parser fuzz targets assert one invariant: arbitrary input never
// panics, and accepted input yields a circuit that passes Validate
// and survives a write/read round trip. `go test` runs the seed
// corpus; `go test -fuzz FuzzReadCKT ./internal/netlist` explores.

func FuzzReadCKT(f *testing.F) {
	f.Add(sampleCKT)
	f.Add("circuit x\ninput a\ngate g inv a\noutput g\n")
	f.Add("input a b\ngate g nand2 a b\ngate h inv g\noutput h g\n")
	f.Add("#only a comment")
	f.Add("gate g inv missing\n")
	f.Add("circuit\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCKT(strings.NewReader(in))
		if err != nil {
			return
		}
		if vErr := c.Validate(); vErr != nil {
			t.Fatalf("accepted circuit fails validation: %v", vErr)
		}
		var buf bytes.Buffer
		if wErr := WriteCKT(&buf, c); wErr != nil {
			t.Fatalf("write failed: %v", wErr)
		}
		if _, rErr := ReadCKT(bytes.NewReader(buf.Bytes())); rErr != nil {
			t.Fatalf("round trip failed: %v", rErr)
		}
	})
}

func FuzzReadBLIF(f *testing.F) {
	f.Add(sampleBLIF)
	f.Add(".model m\n.inputs a\n.outputs y\n.gate inv A=a O=y\n.end\n")
	f.Add(".inputs a\n.gate inv A=a O=y\n")
	f.Add(".names a b\n1 1\n")
	f.Add(".gate\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadBLIF(strings.NewReader(in))
		if err != nil {
			return
		}
		if vErr := c.Validate(); vErr != nil {
			t.Fatalf("accepted circuit fails validation: %v", vErr)
		}
	})
}

func FuzzReadBench(f *testing.F) {
	f.Add(sampleBench)
	f.Add("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	f.Add("INPUT(a)\nz = DFF(a)\n")
	f.Add("garbage")
	f.Add("x = NAND(")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadBench(strings.NewReader(in))
		if err != nil {
			return
		}
		if vErr := c.Validate(); vErr != nil {
			t.Fatalf("accepted circuit fails validation: %v", vErr)
		}
		// Accepted .bench circuits use default-library-compatible
		// types, so the writer must succeed too.
		var buf bytes.Buffer
		if wErr := WriteBench(&buf, c); wErr != nil {
			t.Fatalf("write failed: %v", wErr)
		}
	})
}
