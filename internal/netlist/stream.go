package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
)

// streamWindow is the lookback horizon of the streaming generator:
// fanins are drawn from at most this many preceding levels, so only
// that window of node records is ever held in memory.
const streamWindow = 8

// Gen100kSpec is the canonical 100k-gate benchmark spec used by the
// hierarchical-timing benchmarks (cmd/circuitgen -preset gen100k).
func Gen100kSpec() GenSpec {
	return GenSpec{
		Name: "gen100k", Gates: 100_000, Inputs: 512, Outputs: 64,
		Depth: 96, MaxFanin: 4, Seed: 100_001,
	}
}

// Gen1MSpec is the canonical million-gate benchmark spec
// (cmd/circuitgen -preset gen1m).
func Gen1MSpec() GenSpec {
	return GenSpec{
		Name: "gen1m", Gates: 1_000_000, Inputs: 2048, Outputs: 256,
		Depth: 160, MaxFanin: 4, Seed: 1_000_003,
	}
}

// streamNode is the windowed record of an emitted node: its name, how
// many pins it drives so far (for fanout balancing and dangling
// detection; -1 once marked as an output).
type streamNode struct {
	name   string
	fanout int
}

// GenerateStream emits a synthetic circuit in .ckt format directly to
// w without ever materializing it: memory is O(streamWindow * level
// width) — the lookback window of node records — independent of the
// total gate count, which is what makes the gen100k/gen1m presets
// viable on small machines.
//
// The construction mirrors Generate (levelized, mid-heavy width
// profile, cone-affine fanout-balanced fanin selection, dangling
// gates become primary outputs) but bounds the fanin lookback to
// streamWindow levels so retired levels can be dropped; the emitted
// netlist is therefore a structural sibling of Generate's, not
// byte-equivalent to it. Like Generate, the output is fully
// deterministic in the spec (including Seed): equal specs produce
// byte-identical files on every run and platform.
func GenerateStream(w io.Writer, spec GenSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "circuit %s\n", spec.Name)

	// Emit the inputs 16 per line (WriteCKT's layout) and seed the
	// level-0 window records.
	level0 := make([]streamNode, spec.Inputs)
	for i := range level0 {
		level0[i] = streamNode{name: inputName(i)}
		if i%16 == 0 {
			if i > 0 {
				fmt.Fprintln(bw)
			}
			fmt.Fprint(bw, "input")
		}
		fmt.Fprintf(bw, " %s", level0[i].name)
	}
	fmt.Fprintln(bw)

	sizes := levelSizes(spec.Gates, spec.Depth)
	nCones := spec.Cones
	if nCones <= 0 {
		nCones = spec.Outputs
		if lim := spec.Inputs / 3; nCones > lim {
			nCones = lim
		}
		if nCones < 1 {
			nCones = 1
		}
		if nCones > 12 {
			nCones = 12
		}
	}

	// levels[l] holds the window records of level l, nil once retired.
	// Cones are contiguous index ranges of a level: cone c of a
	// width-W level spans [c*W/nCones, (c+1)*W/nCones).
	levels := make([][]streamNode, spec.Depth+1)
	levels[0] = level0
	pickIn := func(pool []streamNode) *streamNode {
		best := &pool[rng.Intn(len(pool))]
		for k := 0; k < 2; k++ {
			cand := &pool[rng.Intn(len(pool))]
			if cand.fanout < best.fanout {
				best = cand
			}
		}
		return best
	}
	pickLevel := func(lvl, cone int) *streamNode {
		nodes := levels[lvl]
		lo, hi := cone*len(nodes)/nCones, (cone+1)*len(nodes)/nCones
		if hi > lo && rng.Float64() < 0.88 {
			return pickIn(nodes[lo:hi])
		}
		return pickIn(nodes)
	}
	lowest := func(lvl int) int {
		if lo := lvl - streamWindow; lo > 0 {
			return lo
		}
		return 0
	}
	pickEarlier := func(lvl, cone int) *streamNode {
		src := lvl - 1
		for src > lowest(lvl) && rng.Float64() < 0.35 {
			src--
		}
		return pickLevel(src, cone)
	}

	// Unused primary inputs are soaked up as extra (non-first) pins
	// until drained; a level-0 extra pin never changes the consuming
	// gate's level, so soaking is safe at any level.
	unused := make([]int, spec.Inputs)
	for i := range unused {
		unused[i] = i
	}
	rng.Shuffle(len(unused), func(i, j int) { unused[i], unused[j] = unused[j], unused[i] })

	// outputs accumulates dangling-gate names as levels retire; its
	// growth is bounded by the (small) dangling count, not the gate
	// count.
	var outputs []string
	retire := func(lvl int) {
		if lvl >= 1 {
			// A retired gate is out of every future window: if nothing
			// drives off it yet, nothing ever will — it is dangling
			// and becomes a primary output, exactly like Generate's
			// DanglingGates pass.
			for i := range levels[lvl] {
				if levels[lvl][i].fanout == 0 {
					outputs = append(outputs, levels[lvl][i].name)
				}
			}
		}
		levels[lvl] = nil
	}

	faninNames := make([]string, 0, 4)
	contains := func(name string) bool {
		for _, f := range faninNames {
			if f == name {
				return true
			}
		}
		return false
	}
	gateIdx := 0
	for lvl := 1; lvl <= spec.Depth; lvl++ {
		width := sizes[lvl-1]
		levels[lvl] = make([]streamNode, 0, width)
		for k := 0; k < width; k++ {
			cone := k * nCones / width
			nf := drawFanin(rng, spec.MaxFanin)
			faninNames = faninNames[:0]
			// First pin: previous level, establishing the level.
			first := pickLevel(lvl-1, cone)
			first.fanout++
			faninNames = append(faninNames, first.name)
			for len(faninNames) < nf {
				if len(unused) > 0 {
					in := unused[len(unused)-1]
					if name := inputName(in); !contains(name) {
						unused = unused[:len(unused)-1]
						if levels[0] != nil { // else retired: name is derivable
							levels[0][in].fanout++
						}
						faninNames = append(faninNames, name)
						continue
					}
				}
				src := pickEarlier(lvl, cone)
				if contains(src.name) {
					src = pickEarlier(lvl, cone)
					if contains(src.name) {
						break // accept a smaller fan-in over looping
					}
				}
				src.fanout++
				faninNames = append(faninNames, src.name)
			}
			typ := typeByFanin[len(faninNames)][rng.Intn(len(typeByFanin[len(faninNames)]))]
			fmt.Fprintf(bw, "gate %s %s", gateName(gateIdx), typ)
			for _, f := range faninNames {
				fmt.Fprintf(bw, " %s", f)
			}
			fmt.Fprintln(bw)
			levels[lvl] = append(levels[lvl], streamNode{name: gateName(gateIdx)})
			gateIdx++
		}
		if lvl-streamWindow >= 0 {
			retire(lvl - streamWindow)
		}
	}
	if len(unused) > 0 {
		return fmt.Errorf("netlist: %d inputs exceed the pin capacity of spec %q", len(unused), spec.Name)
	}

	// Mark the dangling gates of the levels still in the window, then
	// top up from the deepest levels until at least spec.Outputs names
	// are marked (spec.Outputs is a minimum, as in Generate).
	for lvl := lowest(spec.Depth + 1); lvl <= spec.Depth; lvl++ {
		for i := range levels[lvl] {
			if levels[lvl][i].fanout == 0 {
				outputs = append(outputs, levels[lvl][i].name)
				levels[lvl][i].fanout = -1
			}
		}
	}
	for lvl := spec.Depth; lvl >= 1 && len(outputs) < spec.Outputs; lvl-- {
		if levels[lvl] == nil {
			break // older levels retired; their danglings are marked
		}
		for i := range levels[lvl] {
			if len(outputs) >= spec.Outputs {
				break
			}
			if levels[lvl][i].fanout != -1 {
				outputs = append(outputs, levels[lvl][i].name)
				levels[lvl][i].fanout = -1
			}
		}
	}
	for at := 0; at < len(outputs); at += 16 {
		hi := at + 16
		if hi > len(outputs) {
			hi = len(outputs)
		}
		fmt.Fprint(bw, "output")
		for _, name := range outputs[at:hi] {
			fmt.Fprintf(bw, " %s", name)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
