package netlist

import (
	"fmt"
	"math"
	"math/rand"
)

// GenSpec parameterizes the deterministic synthetic benchmark
// generator. The generator stands in for the MCNC circuits of the
// paper's Table 1 (apex1, apex2, k2), which are not distributable with
// this module: it produces a mapped combinational DAG with the same
// cell count, a bounded fan-in mix typical of technology-mapped
// netlists, and a controlled logic depth. The sizing formulation only
// observes circuit structure and loads, so a structurally comparable
// DAG exercises the identical optimization problem at the same scale.
type GenSpec struct {
	Name     string
	Gates    int   // number of gate instances (cells)
	Inputs   int   // number of primary inputs
	Outputs  int   // minimum number of primary outputs
	Depth    int   // target logic depth in gates
	MaxFanin int   // maximum gate fan-in, 2..4
	Seed     int64 // RNG seed; equal specs generate identical circuits
	// Cones is the number of mostly-disjoint logic cones the circuit
	// is organized into; 0 picks a default from the output count.
	// Real multi-output netlists consist of output cones that share
	// only part of their logic, which bounds the path correlation the
	// paper's independence assumption ignores; a fully mixed random
	// DAG would be far more correlated than any real circuit.
	Cones int
}

// Validate checks the spec for feasibility.
func (s GenSpec) Validate() error {
	if s.Gates < 1 {
		return fmt.Errorf("netlist: spec needs at least one gate, got %d", s.Gates)
	}
	if s.Inputs < 1 {
		return fmt.Errorf("netlist: spec needs at least one input, got %d", s.Inputs)
	}
	if s.Depth < 1 || s.Depth > s.Gates {
		return fmt.Errorf("netlist: depth %d infeasible for %d gates", s.Depth, s.Gates)
	}
	if s.MaxFanin < 1 || s.MaxFanin > 4 {
		return fmt.Errorf("netlist: max fanin %d out of range [1,4]", s.MaxFanin)
	}
	if s.Outputs < 1 {
		return fmt.Errorf("netlist: spec needs at least one output, got %d", s.Outputs)
	}
	return nil
}

// typeByFanin maps a fan-in count to alternating gate types, giving
// the generated netlists a mixed library population.
var typeByFanin = [5][]string{
	nil,
	{"inv", "buf"},
	{"nand2", "nor2"},
	{"nand3", "nor3"},
	{"nand4", "nor4"},
}

// Generate builds a synthetic circuit from the spec. Generation is
// fully deterministic in the spec (including Seed).
//
// Construction is levelized: gates are distributed over Depth levels
// with a mid-heavy profile, each gate draws its first fanin from the
// previous level (which makes the level assignment exact and the
// depth hit the target), and the remaining fanins from earlier levels
// with a recency bias. Every primary input is forced to drive at
// least one first-level gate pin; gates left without fanout are
// marked as primary outputs (topping up to at least spec.Outputs).
func Generate(spec GenSpec) (*Circuit, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	c := New(spec.Name)

	inputs := make([]NodeID, spec.Inputs)
	for i := range inputs {
		id, err := c.AddInput(inputName(i))
		if err != nil {
			return nil, err
		}
		inputs[i] = id
	}

	sizes := levelSizes(spec.Gates, spec.Depth)

	nCones := spec.Cones
	if nCones <= 0 {
		nCones = spec.Outputs
		if lim := spec.Inputs / 3; nCones > lim {
			nCones = lim
		}
		if nCones < 1 {
			nCones = 1
		}
		if nCones > 12 {
			nCones = 12
		}
	}

	// levelNodes[0] holds the primary inputs; levelNodes[l] for l >= 1
	// holds the gates at logic level l. coneNodes additionally splits
	// each level into cones; fanin selection strongly prefers the
	// gate's own cone.
	levelNodes := make([][]NodeID, spec.Depth+1)
	levelNodes[0] = inputs
	coneNodes := make([][][]NodeID, spec.Depth+1)
	for l := range coneNodes {
		coneNodes[l] = make([][]NodeID, nCones)
	}
	for i, in := range inputs {
		coneNodes[0][i%nCones] = append(coneNodes[0][i%nCones], in)
	}

	// fanoutCount tracks how many pins each node already drives.
	// Fanin selection is fanout-balanced: among a few random
	// candidates the least-loaded node wins. This avoids hot nodes,
	// keeps pairwise path correlation low (matching the modest
	// reconvergence of real mapped netlists, which is what lets the
	// paper's independence approximation hold), and leaves almost no
	// fanout-free gates behind.
	fanoutCount := make([]int, spec.Gates+spec.Inputs)

	// Pending round-robin of unused PIs so each one gets a pin.
	unused := append([]NodeID(nil), inputs...)
	rng.Shuffle(len(unused), func(i, j int) { unused[i], unused[j] = unused[j], unused[i] })

	gateIdx := 0
	for lvl := 1; lvl <= spec.Depth; lvl++ {
		width := sizes[lvl-1]
		for k := 0; k < width; k++ {
			cone := k * nCones / width
			pick := func() NodeID {
				return pickEarlier(rng, levelNodes, coneNodes, lvl, cone, fanoutCount)
			}
			nf := drawFanin(rng, spec.MaxFanin)
			fanin := make([]NodeID, 0, nf)
			// First pin: previous level, establishing the level.
			fanin = append(fanin, pickLevel(rng, levelNodes[lvl-1], coneNodes[lvl-1][cone], fanoutCount))
			// First-level gates soak up unused inputs.
			if lvl == 1 && len(unused) > 0 {
				fanin[0] = unused[len(unused)-1]
				unused = unused[:len(unused)-1]
			}
			for len(fanin) < nf {
				var src NodeID
				if lvl == 1 && len(unused) > 0 {
					src = unused[len(unused)-1]
					unused = unused[:len(unused)-1]
				} else {
					src = pick()
				}
				if containsID(fanin, src) {
					// Retry once, then accept a smaller fan-in
					// rather than loop.
					src = pick()
					if containsID(fanin, src) {
						break
					}
				}
				fanin = append(fanin, src)
			}
			for _, f := range fanin {
				fanoutCount[f]++
			}
			typ := typeByFanin[len(fanin)][rng.Intn(len(typeByFanin[len(fanin)]))]
			names := make([]string, len(fanin))
			for i, f := range fanin {
				names[i] = c.Nodes[f].Name
			}
			id, err := c.AddGate(gateName(gateIdx), typ, names...)
			if err != nil {
				return nil, err
			}
			gateIdx++
			levelNodes[lvl] = append(levelNodes[lvl], id)
			coneNodes[lvl][cone] = append(coneNodes[lvl][cone], id)
		}
	}

	// Any input still unused drives an extra pin of a random
	// first-level gate; structural rewiring is simpler than leaving
	// floating inputs.
	for _, in := range unused {
		g := levelNodes[1][rng.Intn(len(levelNodes[1]))]
		nd := &c.Nodes[g]
		if !containsID(nd.Fanin, in) && len(nd.Fanin) < 4 {
			nd.Fanin = append(nd.Fanin, in)
			nd.Type = typeByFanin[len(nd.Fanin)][0]
		}
	}

	// Outputs: every fanout-free gate, topped up from the deepest
	// levels to reach the requested count.
	g, err := Compile(c)
	if err != nil {
		return nil, err
	}
	marked := make(map[NodeID]bool)
	for _, id := range g.DanglingGates() {
		if err := c.MarkOutput(c.Nodes[id].Name); err != nil {
			return nil, err
		}
		marked[id] = true
	}
	for lvl := spec.Depth; lvl >= 1 && len(c.Outputs) < spec.Outputs; lvl-- {
		for _, id := range levelNodes[lvl] {
			if len(c.Outputs) >= spec.Outputs {
				break
			}
			if !marked[id] {
				if err := c.MarkOutput(c.Nodes[id].Name); err != nil {
					return nil, err
				}
				marked[id] = true
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// levelSizes splits n gates over d levels with a mid-heavy profile
// (levels near 40% of the depth are widest, the last level is narrow),
// resembling the shape of technology-mapped multi-level logic.
func levelSizes(n, d int) []int {
	if d == 1 {
		return []int{n}
	}
	weights := make([]float64, d)
	var sum float64
	for i := range weights {
		x := float64(i) / float64(d-1) // 0..1 across levels
		// Asymmetric bump peaking at x = 0.4.
		dx := x - 0.4
		weights[i] = 0.25 + math.Exp(-dx*dx/0.18)
		sum += weights[i]
	}
	sizes := make([]int, d)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(n) * weights[i] / sum)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Distribute the rounding remainder (positive or negative) over
	// the widest levels while keeping every level at least 1.
	for assigned != n {
		for i := range sizes {
			if assigned == n {
				break
			}
			if assigned < n {
				sizes[i]++
				assigned++
			} else if sizes[i] > 1 {
				sizes[i]--
				assigned--
			}
		}
	}
	return sizes
}

// drawFanin samples a gate fan-in with a mapped-netlist-like mix:
// mostly 2-input cells, some inverters, fewer 3- and 4-input cells.
func drawFanin(rng *rand.Rand, max int) int {
	r := rng.Float64()
	switch {
	case r < 0.15 || max == 1:
		return 1
	case r < 0.70 || max == 2:
		return 2
	case r < 0.92 || max == 3:
		return 3
	default:
		return 4
	}
}

// pickEarlier draws a node from a level strictly below lvl with a
// strong bias toward the immediately preceding levels (short wires)
// and toward the gate's own cone (bounded cross-cone sharing).
func pickEarlier(rng *rand.Rand, levels [][]NodeID, cones [][][]NodeID, lvl, cone int, fanout []int) NodeID {
	src := lvl - 1
	for src > 0 && rng.Float64() < 0.35 {
		src--
	}
	return pickLevel(rng, levels[src], cones[src][cone], fanout)
}

// pickLevel draws from the gate's own cone with high probability,
// falling back to the whole level; within the pool the draw is
// fanout-balanced (least-loaded of three candidates), which avoids
// hot nodes and leaves almost no fanout-free gates behind.
func pickLevel(rng *rand.Rand, level, cone []NodeID, fanout []int) NodeID {
	pool := level
	if len(cone) > 0 && rng.Float64() < 0.88 {
		pool = cone
	}
	best := pool[rng.Intn(len(pool))]
	for k := 0; k < 2; k++ {
		cand := pool[rng.Intn(len(pool))]
		if fanout[cand] < fanout[best] {
			best = cand
		}
	}
	return best
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Apex1Like returns a synthetic circuit matching the scale of MCNC
// apex1 as reported in the paper's Table 1 (982 cells).
func Apex1Like() *Circuit {
	c, err := Generate(GenSpec{
		Name: "apex1-like", Gates: 982, Inputs: 45, Outputs: 45,
		Depth: 18, MaxFanin: 4, Seed: 9821,
	})
	if err != nil {
		panic(err)
	}
	return c
}

// Apex2Like returns a synthetic circuit matching the scale of MCNC
// apex2 as reported in the paper's Table 1 (117 cells).
func Apex2Like() *Circuit {
	c, err := Generate(GenSpec{
		Name: "apex2-like", Gates: 117, Inputs: 39, Outputs: 3,
		Depth: 10, MaxFanin: 4, Seed: 1172,
	})
	if err != nil {
		panic(err)
	}
	return c
}

// K2Like returns a synthetic circuit matching the scale of MCNC k2 as
// reported in the paper's Table 1 (1692 cells).
func K2Like() *Circuit {
	c, err := Generate(GenSpec{
		Name: "k2-like", Gates: 1692, Inputs: 45, Outputs: 45,
		Depth: 22, MaxFanin: 4, Seed: 16923,
	})
	if err != nil {
		panic(err)
	}
	return c
}
