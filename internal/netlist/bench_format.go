package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadBench parses an ISCAS-85 style .bench netlist:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	f = NAND(a, b)
//	g = NOT(f)
//
// Gate functions map onto the default library's type names by arity
// (NAND with two inputs becomes nand2, and so on). Sequential
// elements (DFF) are rejected: the sizing model is combinational.
// Gates may be declared in any order.
func ReadBench(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		inputs  []string
		outputs []string
		gates   []blifGate
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "INPUT ("):
			name, err := parenArg(line, lineNo)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(upper, "OUTPUT(") || strings.HasPrefix(upper, "OUTPUT ("):
			name, err := parenArg(line, lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, name)
		default:
			g, err := parseBenchGate(line, lineNo)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return assembleNetlist("bench", "bench", inputs, outputs, gates)
}

// parenArg extracts NAME from "KEYWORD(NAME)".
func parenArg(line string, lineNo int) (string, error) {
	open := strings.IndexByte(line, '(')
	closing := strings.LastIndexByte(line, ')')
	if open < 0 || closing <= open+1 {
		return "", parseErr("bench", lineNo, "malformed %q", line)
	}
	return strings.TrimSpace(line[open+1 : closing]), nil
}

// benchTypeByFn maps a .bench function name and arity to a library
// type name.
func benchTypeByFn(fn string, arity, lineNo int) (string, error) {
	fn = strings.ToUpper(fn)
	switch fn {
	case "NOT", "INV":
		if arity != 1 {
			return "", parseErr("bench", lineNo, "NOT with %d inputs", arity)
		}
		return "inv", nil
	case "BUF", "BUFF":
		if arity != 1 {
			return "", parseErr("bench", lineNo, "BUFF with %d inputs", arity)
		}
		return "buf", nil
	case "DFF", "LATCH":
		return "", parseErr("bench", lineNo, "sequential element %s not supported", fn)
	case "NAND", "NOR", "AND", "OR", "XOR", "XNOR":
		if arity < 2 || arity > 4 {
			return "", parseErr("bench", lineNo, "%s with %d inputs (supported: 2-4)", fn, arity)
		}
		return fmt.Sprintf("%s%d", strings.ToLower(fn), arity), nil
	default:
		return "", parseErr("bench", lineNo, "unknown function %q", fn)
	}
}

// parseBenchGate parses "out = FN(in1, in2, ...)".
func parseBenchGate(line string, lineNo int) (blifGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq <= 0 {
		return blifGate{}, parseErr("bench", lineNo, "expected assignment, got %q", line)
	}
	out := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	closing := strings.LastIndexByte(rhs, ')')
	if open <= 0 || closing <= open {
		return blifGate{}, parseErr("bench", lineNo, "malformed function %q", rhs)
	}
	fn := strings.TrimSpace(rhs[:open])
	var fanin []string
	for _, a := range strings.Split(rhs[open+1:closing], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return blifGate{}, parseErr("bench", lineNo, "empty operand")
		}
		fanin = append(fanin, a)
	}
	typ, err := benchTypeByFn(fn, len(fanin), lineNo)
	if err != nil {
		return blifGate{}, err
	}
	return blifGate{typ: typ, fanin: fanin, output: out, line: lineNo}, nil
}

// WriteBench renders the circuit in .bench format. Gate types must be
// expressible as .bench functions (the default library's names are).
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, nd := range c.Nodes {
		if nd.Kind == KindInput {
			fmt.Fprintf(bw, "INPUT(%s)\n", nd.Name)
		}
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[o].Name)
	}
	for _, nd := range c.Nodes {
		if nd.Kind != KindGate {
			continue
		}
		fn, err := benchFnByType(nd.Type)
		if err != nil {
			return fmt.Errorf("netlist: gate %q: %w", nd.Name, err)
		}
		names := make([]string, len(nd.Fanin))
		for i, f := range nd.Fanin {
			names[i] = c.Nodes[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nd.Name, fn, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// benchFnByType inverts benchTypeByFn.
func benchFnByType(typ string) (string, error) {
	switch typ {
	case "inv":
		return "NOT", nil
	case "buf":
		return "BUFF", nil
	}
	base := strings.TrimRight(typ, "234")
	switch base {
	case "nand", "nor", "and", "or", "xor", "xnor":
		return strings.ToUpper(base), nil
	}
	return "", fmt.Errorf("type %q has no .bench function", typ)
}
