package netlist

// Fig2Example returns the four-gate circuit of the paper's Section 5
// (Figure 2): gates A, B, C driven by primary inputs a, b, c, all
// three feeding gate D; the primary outputs are C and D, exactly as
// the output maximum in eq 18a is taken over T_C and T_D, and D's
// input maximum in eq 18b runs over T_A, T_B and T_C.
func Fig2Example() *Circuit {
	c := New("fig2")
	mustAddInput(c, "a")
	mustAddInput(c, "b")
	mustAddInput(c, "c")
	mustAddGate(c, "A", "nand2", "a", "b")
	mustAddGate(c, "B", "nand2", "b", "c")
	mustAddGate(c, "C", "nand2", "a", "c")
	mustAddGate(c, "D", "nand3", "A", "B", "C")
	mustMarkOutput(c, "C")
	mustMarkOutput(c, "D")
	return c
}

// Tree7 returns the seven-NAND balanced tree of the paper's Figure 3
// (Tables 2 and 3): four first-level gates A, B, D, E each driven by
// two primary inputs, second-level gates C (from A, B) and F (from
// D, E), and the output gate G (from C, F). The gate naming follows
// Table 3 so the per-gate speed factors line up with the paper's rows.
func Tree7() *Circuit {
	c := New("tree7")
	for _, in := range []string{"i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7"} {
		mustAddInput(c, in)
	}
	mustAddGate(c, "A", "nand2", "i0", "i1")
	mustAddGate(c, "B", "nand2", "i2", "i3")
	mustAddGate(c, "D", "nand2", "i4", "i5")
	mustAddGate(c, "E", "nand2", "i6", "i7")
	mustAddGate(c, "C", "nand2", "A", "B")
	mustAddGate(c, "F", "nand2", "D", "E")
	mustAddGate(c, "G", "nand2", "C", "F")
	mustMarkOutput(c, "G")
	return c
}

// Chain returns a linear chain of n inverters, a minimal workload used
// by tests and microbenchmarks.
func Chain(n int) *Circuit {
	c := New("chain")
	mustAddInput(c, "in")
	prev := "in"
	for i := 0; i < n; i++ {
		name := gateName(i)
		mustAddGate(c, name, "inv", prev)
		prev = name
	}
	mustMarkOutput(c, prev)
	return c
}

// BalancedTree returns a complete binary tree of NAND2 gates with the
// given number of levels (levels >= 1), 2^levels primary inputs and a
// single output. Tree7 is BalancedTree(3) with the paper's naming.
func BalancedTree(levels int) *Circuit {
	if levels < 1 {
		panic("netlist: BalancedTree needs at least one level")
	}
	c := New("btree")
	n := 1 << levels
	prev := make([]string, n)
	for i := 0; i < n; i++ {
		prev[i] = inputName(i)
		mustAddInput(c, prev[i])
	}
	id := 0
	for len(prev) > 1 {
		next := make([]string, len(prev)/2)
		for i := range next {
			name := gateName(id)
			id++
			mustAddGate(c, name, "nand2", prev[2*i], prev[2*i+1])
			next[i] = name
		}
		prev = next
	}
	mustMarkOutput(c, prev[0])
	return c
}

// RippleAdder returns an n-bit ripple-carry adder built from
// XOR/AND/OR gates (nine gates per full adder, using two-input cells
// only). Inputs a0..a(n-1), b0..b(n-1) and cin; outputs s0..s(n-1) and
// cout. The carry chain makes it the classic deep, heavily
// reconvergent structure: every sum bit shares the whole carry prefix,
// which maximally stresses the independence assumption of the paper's
// statistical model (see the canonical-SSTA comparisons).
func RippleAdder(n int) *Circuit {
	if n < 1 {
		panic("netlist: RippleAdder needs at least one bit")
	}
	c := New("rca" + itoa(n))
	for i := 0; i < n; i++ {
		mustAddInput(c, "a"+itoa(i))
		mustAddInput(c, "b"+itoa(i))
	}
	mustAddInput(c, "cin")
	carry := "cin"
	for i := 0; i < n; i++ {
		a, b := "a"+itoa(i), "b"+itoa(i)
		axb := "axb" + itoa(i)
		mustAddGate(c, axb, "xor2", a, b)
		s := "s" + itoa(i)
		mustAddGate(c, s, "xor2", axb, carry)
		mustMarkOutput(c, s)
		andAB := "ab" + itoa(i)
		mustAddGate(c, andAB, "and2", a, b)
		andXC := "xc" + itoa(i)
		mustAddGate(c, andXC, "and2", axb, carry)
		cnext := "c" + itoa(i+1)
		mustAddGate(c, cnext, "or2", andAB, andXC)
		carry = cnext
	}
	mustMarkOutput(c, carry)
	return c
}

func gateName(i int) string  { return "g" + itoa(i) }
func inputName(i int) string { return "i" + itoa(i) }

// itoa is a minimal non-negative integer formatter kept local to avoid
// pulling strconv into the hot construction path of large generators.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func mustAddInput(c *Circuit, name string) {
	if _, err := c.AddInput(name); err != nil {
		panic(err)
	}
}

func mustAddGate(c *Circuit, name, typ string, fanin ...string) {
	if _, err := c.AddGate(name, typ, fanin...); err != nil {
		panic(err)
	}
}

func mustMarkOutput(c *Circuit, name string) {
	if err := c.MarkOutput(name); err != nil {
		panic(err)
	}
}
