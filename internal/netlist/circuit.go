// Package netlist provides the combinational-circuit intermediate
// representation used throughout the module: named nodes (primary
// inputs and gates) forming a DAG, with topological utilities, a small
// text netlist format, a mapped-BLIF subset reader, the paper's two
// built-in example circuits and a deterministic synthetic benchmark
// generator standing in for the MCNC circuits of Table 1.
package netlist

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID indexes a node within a Circuit. IDs are dense and stable:
// the node order is the insertion order.
type NodeID int

// NodeKind distinguishes primary inputs from gates.
type NodeKind uint8

// Node kinds.
const (
	KindInput NodeKind = iota
	KindGate
)

func (k NodeKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Node is a primary input or a gate instance.
type Node struct {
	Name  string
	Kind  NodeKind
	Type  string   // library cell type for gates; empty for inputs
	Fanin []NodeID // driver nodes; empty for inputs
}

// Circuit is a named combinational network. Construct with New and
// the Add* methods; most consumers then compile it once into a Graph
// (see topo.go) for traversal.
type Circuit struct {
	Name    string
	Nodes   []Node
	Outputs []NodeID

	byName map[string]NodeID
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]NodeID)}
}

// ErrDuplicateName is returned when a node name is reused.
var ErrDuplicateName = errors.New("netlist: duplicate node name")

// ErrUnknownNode is returned when a referenced node does not exist.
var ErrUnknownNode = errors.New("netlist: unknown node")

// AddInput adds a primary input and returns its id.
func (c *Circuit) AddInput(name string) (NodeID, error) {
	return c.add(Node{Name: name, Kind: KindInput})
}

// AddGate adds a gate of the given library type driven by the named
// fanin nodes, which must already exist.
func (c *Circuit) AddGate(name, typ string, fanin ...string) (NodeID, error) {
	ids := make([]NodeID, len(fanin))
	for i, f := range fanin {
		id, ok := c.byName[f]
		if !ok {
			return -1, fmt.Errorf("%w: %q (fanin of %q)", ErrUnknownNode, f, name)
		}
		ids[i] = id
	}
	return c.add(Node{Name: name, Kind: KindGate, Type: typ, Fanin: ids})
}

func (c *Circuit) add(n Node) (NodeID, error) {
	if _, dup := c.byName[n.Name]; dup {
		return -1, fmt.Errorf("%w: %q", ErrDuplicateName, n.Name)
	}
	id := NodeID(len(c.Nodes))
	c.Nodes = append(c.Nodes, n)
	c.byName[n.Name] = id
	return id, nil
}

// MarkOutput marks the named node as a primary output. Marking the
// same node twice is an error, as is marking a primary input (the
// paper's circuits never route an input straight to an output, and
// allowing it would put a zero-delay node in the output max).
func (c *Circuit) MarkOutput(name string) error {
	id, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q (output)", ErrUnknownNode, name)
	}
	if c.Nodes[id].Kind == KindInput {
		return fmt.Errorf("netlist: output %q is a primary input", name)
	}
	for _, o := range c.Outputs {
		if o == id {
			return fmt.Errorf("netlist: output %q marked twice", name)
		}
	}
	c.Outputs = append(c.Outputs, id)
	return nil
}

// Lookup returns the id of the named node.
func (c *Circuit) Lookup(name string) (NodeID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MustID returns the id of the named node, panicking if absent. It is
// intended for tests and built-in circuits.
func (c *Circuit) MustID(name string) NodeID {
	id, ok := c.byName[name]
	if !ok {
		panic("netlist: unknown node " + name)
	}
	return id
}

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.Kind == KindInput {
			n++
		}
	}
	return n
}

// NumGates returns the number of gate instances.
func (c *Circuit) NumGates() int { return len(c.Nodes) - c.NumInputs() }

// InputIDs returns the ids of all primary inputs in insertion order.
func (c *Circuit) InputIDs() []NodeID {
	var ids []NodeID
	for i, nd := range c.Nodes {
		if nd.Kind == KindInput {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// GateIDs returns the ids of all gates in insertion order.
func (c *Circuit) GateIDs() []NodeID {
	var ids []NodeID
	for i, nd := range c.Nodes {
		if nd.Kind == KindGate {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// Validate checks structural invariants: at least one gate and one
// output, no dangling fanin references, gates have at least one fanin,
// inputs none, output list is consistent, and the fanin relation is
// acyclic (guaranteed by construction through AddGate name resolution,
// but re-checked here to guard hand-built circuits).
func (c *Circuit) Validate() error {
	if len(c.Nodes) == 0 {
		return errors.New("netlist: empty circuit")
	}
	if len(c.Outputs) == 0 {
		return errors.New("netlist: no primary outputs")
	}
	for i, nd := range c.Nodes {
		switch nd.Kind {
		case KindInput:
			if len(nd.Fanin) != 0 {
				return fmt.Errorf("netlist: input %q has fanin", nd.Name)
			}
		case KindGate:
			if len(nd.Fanin) == 0 {
				return fmt.Errorf("netlist: gate %q has no fanin", nd.Name)
			}
			if nd.Type == "" {
				return fmt.Errorf("netlist: gate %q has no type", nd.Name)
			}
			for _, f := range nd.Fanin {
				if f < 0 || int(f) >= len(c.Nodes) {
					return fmt.Errorf("netlist: gate %q references node %d out of range", nd.Name, f)
				}
			}
		default:
			return fmt.Errorf("netlist: node %q has invalid kind %v", nd.Name, nd.Kind)
		}
		if got, ok := c.byName[nd.Name]; !ok || got != NodeID(i) {
			return fmt.Errorf("netlist: name index inconsistent for %q", nd.Name)
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || int(o) >= len(c.Nodes) {
			return fmt.Errorf("netlist: output id %d out of range", o)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := New(c.Name)
	cp.Nodes = make([]Node, len(c.Nodes))
	for i, nd := range c.Nodes {
		nd.Fanin = append([]NodeID(nil), nd.Fanin...)
		cp.Nodes[i] = nd
		cp.byName[nd.Name] = NodeID(i)
	}
	cp.Outputs = append([]NodeID(nil), c.Outputs...)
	return cp
}

// Stats summarizes circuit structure for reporting.
type Stats struct {
	Inputs, Gates, Outputs int
	Depth                  int // longest input-to-output path in gates
	MaxFanin, MaxFanout    int
}

// ComputeStats returns structural statistics. The circuit must be
// acyclic.
func (c *Circuit) ComputeStats() (Stats, error) {
	g, err := Compile(c)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Inputs:  c.NumInputs(),
		Gates:   c.NumGates(),
		Outputs: len(c.Outputs),
	}
	for _, nd := range c.Nodes {
		if len(nd.Fanin) > s.MaxFanin {
			s.MaxFanin = len(nd.Fanin)
		}
	}
	for _, fo := range g.Fanout {
		if len(fo) > s.MaxFanout {
			s.MaxFanout = len(fo)
		}
	}
	for _, id := range c.Outputs {
		if l := g.Level[id]; l > s.Depth {
			s.Depth = l
		}
	}
	return s, nil
}

// SortedNames returns all node names sorted, for deterministic output.
func (c *Circuit) SortedNames() []string {
	names := make([]string, 0, len(c.Nodes))
	for _, nd := range c.Nodes {
		names = append(names, nd.Name)
	}
	sort.Strings(names)
	return names
}
