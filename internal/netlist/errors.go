package netlist

import (
	"errors"
	"fmt"
)

// Structural defect categories the netlist readers diagnose. They are
// wrapped inside ParseError values, so callers classify failures with
// errors.Is without parsing message text:
//
//	if errors.Is(err, netlist.ErrCycle) { ... }
//
// ErrCycle (topo.go) joins this set: the readers wrap it when gate
// definitions are mutually dependent. ErrDuplicateName and
// ErrUnknownNode (circuit.go) surface through ParseError the same way.
var (
	// ErrUndriven marks a net that is referenced as a fanin but is
	// neither a primary input nor any gate's output.
	ErrUndriven = errors.New("undriven net")
	// ErrRedriven marks a net with more than one driver (two gates, or
	// a gate driving a primary input).
	ErrRedriven = errors.New("net driven twice")
)

// ParseError is a positional netlist diagnostic: the format being read
// ("blif" or "bench"), the 1-based source line of the offending
// construct, and the underlying cause. Line 0 means the defect spans
// lines (e.g. a cycle) and has no single anchor. The rendering follows
// the compiler convention ("blif:12: ...") so editors and CI log
// scrapers pick the position up directly.
type ParseError struct {
	Format string
	Line   int
	Err    error
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %v", e.Format, e.Line, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Format, e.Err)
}

// Unwrap exposes the cause, so errors.Is reaches the sentinel
// categories above (and circuit.go's ErrDuplicateName/ErrUnknownNode).
func (e *ParseError) Unwrap() error { return e.Err }

// parseErr builds a ParseError with a formatted cause.
func parseErr(format string, line int, f string, args ...any) error {
	return &ParseError{Format: format, Line: line, Err: fmt.Errorf(f, args...)}
}
