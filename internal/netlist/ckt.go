package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The .ckt format is a minimal line-oriented gate-level netlist:
//
//	# comment
//	circuit tree7
//	input i0 i1 i2
//	gate A nand2 i0 i1
//	gate B nand2 i1 i2
//	gate G nand2 A B
//	output G
//
// Keywords: circuit (optional, first), input, gate, output. Gates must
// be declared after all of their fanins; names are arbitrary
// whitespace-free tokens. Multiple input/output lines accumulate.

// ReadCKT parses a circuit in .ckt format.
func ReadCKT(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	c := New("circuit")
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ckt line %d: circuit takes one name", lineNo)
			}
			c.Name = fields[1]
		case "input":
			if len(fields) < 2 {
				return nil, fmt.Errorf("ckt line %d: input needs names", lineNo)
			}
			for _, n := range fields[1:] {
				if _, err := c.AddInput(n); err != nil {
					return nil, fmt.Errorf("ckt line %d: %w", lineNo, err)
				}
			}
		case "gate":
			if len(fields) < 4 {
				return nil, fmt.Errorf("ckt line %d: gate needs name, type and fanins", lineNo)
			}
			if _, err := c.AddGate(fields[1], fields[2], fields[3:]...); err != nil {
				return nil, fmt.Errorf("ckt line %d: %w", lineNo, err)
			}
		case "output":
			if len(fields) < 2 {
				return nil, fmt.Errorf("ckt line %d: output needs names", lineNo)
			}
			for _, n := range fields[1:] {
				if err := c.MarkOutput(n); err != nil {
					return nil, fmt.Errorf("ckt line %d: %w", lineNo, err)
				}
			}
		default:
			return nil, fmt.Errorf("ckt line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteCKT renders the circuit in .ckt format. The output round-trips
// through ReadCKT to an identical circuit.
func WriteCKT(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	line := 0
	for _, nd := range c.Nodes {
		if nd.Kind != KindInput {
			continue
		}
		if line == 0 {
			fmt.Fprint(bw, "input")
		}
		fmt.Fprintf(bw, " %s", nd.Name)
		line++
		if line == 16 {
			fmt.Fprintln(bw)
			line = 0
		}
	}
	if line > 0 {
		fmt.Fprintln(bw)
	}
	for _, nd := range c.Nodes {
		if nd.Kind != KindGate {
			continue
		}
		fmt.Fprintf(bw, "gate %s %s", nd.Name, nd.Type)
		for _, f := range nd.Fanin {
			fmt.Fprintf(bw, " %s", c.Nodes[f].Name)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprint(bw, "output")
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, " %s", c.Nodes[o].Name)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}
