package netlist

import (
	"errors"
	"strings"
	"testing"
)

func mustBuild(t *testing.T, f func(c *Circuit) error) *Circuit {
	t.Helper()
	c := New("t")
	if err := f(c); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddAndLookup(t *testing.T) {
	c := New("t")
	ia, err := c.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := c.AddGate("g", "inv", "a")
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := c.Lookup("a"); !ok || id != ia {
		t.Errorf("lookup a = %v %v", id, ok)
	}
	if id, ok := c.Lookup("g"); !ok || id != ig {
		t.Errorf("lookup g = %v %v", id, ok)
	}
	if _, ok := c.Lookup("zz"); ok {
		t.Error("lookup of missing node succeeded")
	}
	if c.MustID("g") != ig {
		t.Error("MustID mismatch")
	}
}

func TestDuplicateName(t *testing.T) {
	c := New("t")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddInput("a"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate input err = %v", err)
	}
	if _, err := c.AddGate("a", "inv", "a"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate gate err = %v", err)
	}
}

func TestUnknownFanin(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("g", "inv", "missing"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown fanin err = %v", err)
	}
}

func TestMarkOutputErrors(t *testing.T) {
	c := New("t")
	c.AddInput("a")
	c.AddGate("g", "inv", "a")
	if err := c.MarkOutput("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown output err = %v", err)
	}
	if err := c.MarkOutput("a"); err == nil {
		t.Error("marking an input as output succeeded")
	}
	if err := c.MarkOutput("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput("g"); err == nil {
		t.Error("double-marking output succeeded")
	}
}

func TestCounts(t *testing.T) {
	c := Tree7()
	if c.NumInputs() != 8 {
		t.Errorf("inputs = %d", c.NumInputs())
	}
	if c.NumGates() != 7 {
		t.Errorf("gates = %d", c.NumGates())
	}
	if len(c.InputIDs()) != 8 || len(c.GateIDs()) != 7 {
		t.Error("id lists inconsistent")
	}
}

func TestValidateGood(t *testing.T) {
	for _, c := range []*Circuit{Tree7(), Fig2Example(), Chain(5), BalancedTree(4)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := Tree7()
	c.Nodes[c.MustID("G")].Fanin[0] = NodeID(999)
	if err := c.Validate(); err == nil {
		t.Error("out-of-range fanin not caught")
	}

	c = Tree7()
	c.Outputs = nil
	if err := c.Validate(); err == nil {
		t.Error("missing outputs not caught")
	}

	c = Tree7()
	// Introduce a cycle: make A depend on G.
	a := c.MustID("A")
	c.Nodes[a].Fanin = append(c.Nodes[a].Fanin, c.MustID("G"))
	if err := c.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle err = %v", err)
	}
}

func TestTopoOrderRespectsFanin(t *testing.T) {
	c := Fig2Example()
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i, nd := range c.Nodes {
		for _, f := range nd.Fanin {
			if pos[f] >= pos[NodeID(i)] {
				t.Errorf("%s before its fanin %s", nd.Name, c.Nodes[f].Name)
			}
		}
	}
}

func TestCompileLevelsAndFanout(t *testing.T) {
	g := MustCompile(Tree7())
	c := g.C
	wantLevels := map[string]int{
		"i0": 0, "A": 1, "B": 1, "D": 1, "E": 1, "C": 2, "F": 2, "G": 3,
	}
	for name, lvl := range wantLevels {
		if got := g.Level[c.MustID(name)]; got != lvl {
			t.Errorf("level(%s) = %d, want %d", name, got, lvl)
		}
	}
	// A drives only C.
	fo := g.Fanout[c.MustID("A")]
	if len(fo) != 1 || fo[0] != c.MustID("C") {
		t.Errorf("fanout(A) = %v", fo)
	}
	// G drives nothing and is the output.
	if len(g.Fanout[c.MustID("G")]) != 0 || !g.IsOutput(c.MustID("G")) {
		t.Error("G fanout/output inconsistent")
	}
	if !g.IsOutput(c.MustID("G")) || g.IsOutput(c.MustID("A")) {
		t.Error("IsOutput wrong")
	}
}

func TestFanoutCountsMultiplePins(t *testing.T) {
	// A gate using the same driver on two pins contributes two loads.
	c := New("t")
	c.AddInput("a")
	c.AddGate("g1", "inv", "a")
	if _, err := c.AddGate("g2", "nand2", "g1", "g1"); err != nil {
		t.Fatal(err)
	}
	c.MarkOutput("g2")
	g := MustCompile(c)
	if n := len(g.Fanout[c.MustID("g1")]); n != 2 {
		t.Errorf("fanout pins = %d, want 2", n)
	}
}

func TestDanglingGates(t *testing.T) {
	c := New("t")
	c.AddInput("a")
	c.AddGate("used", "inv", "a")
	c.AddGate("dead", "inv", "a")
	c.AddGate("out", "inv", "used")
	c.MarkOutput("out")
	g := MustCompile(c)
	d := g.DanglingGates()
	if len(d) != 1 || c.Nodes[d[0]].Name != "dead" {
		t.Errorf("dangling = %v", d)
	}
}

func TestClone(t *testing.T) {
	c := Tree7()
	cp := c.Clone()
	cp.Nodes[cp.MustID("G")].Fanin[0] = 0
	if c.Nodes[c.MustID("G")].Fanin[0] == 0 {
		t.Error("clone shares fanin storage")
	}
	if _, ok := cp.Lookup("G"); !ok {
		t.Error("clone lost name index")
	}
}

func TestComputeStats(t *testing.T) {
	s, err := Tree7().ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Inputs: 8, Gates: 7, Outputs: 1, Depth: 3, MaxFanin: 2, MaxFanout: 1}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
}

func TestChain(t *testing.T) {
	c := Chain(10)
	if c.NumGates() != 10 || len(c.Outputs) != 1 {
		t.Errorf("chain: %d gates %d outs", c.NumGates(), len(c.Outputs))
	}
	s, _ := c.ComputeStats()
	if s.Depth != 10 {
		t.Errorf("chain depth = %d", s.Depth)
	}
}

func TestBalancedTree(t *testing.T) {
	c := BalancedTree(3)
	if c.NumGates() != 7 || c.NumInputs() != 8 {
		t.Errorf("btree(3): %d gates %d inputs", c.NumGates(), c.NumInputs())
	}
	s, _ := c.ComputeStats()
	if s.Depth != 3 {
		t.Errorf("btree depth = %d", s.Depth)
	}
	defer func() {
		if recover() == nil {
			t.Error("BalancedTree(0) did not panic")
		}
	}()
	BalancedTree(0)
}

func TestRippleAdder(t *testing.T) {
	c := RippleAdder(4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5 gates per bit: axb, s, ab, xc, c(i+1).
	if c.NumGates() != 20 {
		t.Errorf("gates = %d, want 20", c.NumGates())
	}
	if c.NumInputs() != 9 { // 2n + cin
		t.Errorf("inputs = %d, want 9", c.NumInputs())
	}
	if len(c.Outputs) != 5 { // n sums + cout
		t.Errorf("outputs = %d, want 5", len(c.Outputs))
	}
	s, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	// The carry chain dominates the depth: 2 gates per bit plus the
	// sum stage.
	if s.Depth < 8 {
		t.Errorf("depth = %d, want a carry chain", s.Depth)
	}
	defer func() {
		if recover() == nil {
			t.Error("RippleAdder(0) did not panic")
		}
	}()
	RippleAdder(0)
}

func TestFig2Structure(t *testing.T) {
	c := Fig2Example()
	if c.NumGates() != 4 || len(c.Outputs) != 2 {
		t.Fatalf("fig2: %d gates %d outs", c.NumGates(), len(c.Outputs))
	}
	d := c.Nodes[c.MustID("D")]
	if len(d.Fanin) != 3 {
		t.Errorf("D fanin = %d", len(d.Fanin))
	}
	names := map[string]bool{}
	for _, f := range d.Fanin {
		names[c.Nodes[f].Name] = true
	}
	for _, want := range []string{"A", "B", "C"} {
		if !names[want] {
			t.Errorf("D missing fanin %s", want)
		}
	}
}

func TestSortedNames(t *testing.T) {
	c := Fig2Example()
	names := c.SortedNames()
	if len(names) != 7 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if KindInput.String() != "input" || KindGate.String() != "gate" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(NodeKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}
