package netlist

import "testing"

// TestLevelsBuckets validates the per-level buckets the parallel SSTA
// sweep relies on: every node appears in exactly the bucket of its
// level, buckets preserve topological order, every fanin edge crosses
// strictly upward in level, and level 0 is exactly the inputs.
func TestLevelsBuckets(t *testing.T) {
	circuits := []*Circuit{Tree7(), Fig2Example(), Apex1Like(), K2Like(), Chain(5)}
	gen, err := Generate(GenSpec{
		Name: "lvl", Gates: 300, Inputs: 24, Outputs: 6,
		Depth: 12, MaxFanin: 4, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	circuits = append(circuits, gen)

	for _, c := range circuits {
		g := MustCompile(c)
		pos := make(map[NodeID]int, len(g.Topo))
		for i, id := range g.Topo {
			pos[id] = i
		}
		seen := 0
		for l, bucket := range g.Levels {
			prev := -1
			for _, id := range bucket {
				seen++
				if g.Level[id] != l {
					t.Fatalf("%s: node %d in bucket %d has level %d", c.Name, id, l, g.Level[id])
				}
				if pos[id] <= prev {
					t.Fatalf("%s: bucket %d not in topological order", c.Name, l)
				}
				prev = pos[id]
				for _, f := range c.Nodes[id].Fanin {
					if g.Level[f] >= l {
						t.Fatalf("%s: fanin %d (level %d) not below node %d (level %d)",
							c.Name, f, g.Level[f], id, l)
					}
				}
			}
		}
		if seen != len(c.Nodes) {
			t.Fatalf("%s: buckets hold %d of %d nodes", c.Name, seen, len(c.Nodes))
		}
		for _, id := range g.Levels[0] {
			if c.Nodes[id].Kind != KindInput {
				t.Fatalf("%s: non-input node %d at level 0", c.Name, id)
			}
		}
	}
}
