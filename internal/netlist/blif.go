package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadBLIF parses a technology-mapped BLIF netlist (the format the
// MCNC benchmarks of the paper's Table 1 are distributed in after
// mapping). Supported constructs:
//
//	.model NAME
//	.inputs a b c        (accumulating, with \ continuation)
//	.outputs x y
//	.gate TYPE pin=net pin=net ... opin=net
//	.end
//
// The gate's output pin is the assignment named O, Z, Y, OUT or Q
// (case-insensitive); if none matches, the last assignment is taken.
// Gates are named after their output net. Unmapped constructs
// (.names, .latch, .subckt) are rejected: this reader is for mapped
// combinational netlists only.
func ReadBLIF(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var (
		name    = "blif"
		inputs  []string
		outputs []string
		gates   []blifGate
		lineNo  int
		pending string
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if pending != "" {
			line = pending + " " + line
			pending = ""
		}
		if strings.HasSuffix(line, "\\") {
			pending = strings.TrimSpace(strings.TrimSuffix(line, "\\"))
			continue
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				name = fields[1]
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".gate":
			g, err := parseBlifGate(fields, lineNo)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
		case ".end":
			// Accept and keep scanning; trailing content is ignored
			// as in common BLIF tooling.
		case ".names", ".latch", ".subckt":
			return nil, parseErr("blif", lineNo, "%s is not supported (mapped netlists only)", fields[0])
		default:
			return nil, parseErr("blif", lineNo, "unknown construct %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return assembleNetlist("blif", name, inputs, outputs, gates)
}

type blifGate struct {
	typ    string
	fanin  []string // input nets in pin order
	output string   // output net
	line   int
}

var outputPinNames = map[string]bool{
	"o": true, "z": true, "y": true, "out": true, "q": true,
}

func parseBlifGate(fields []string, lineNo int) (blifGate, error) {
	if len(fields) < 3 {
		return blifGate{}, parseErr("blif", lineNo, ".gate needs a type and pin assignments")
	}
	g := blifGate{typ: strings.ToLower(fields[1]), line: lineNo}
	type pin struct{ name, net string }
	var pins []pin
	for _, a := range fields[2:] {
		eq := strings.IndexByte(a, '=')
		if eq <= 0 || eq == len(a)-1 {
			return blifGate{}, parseErr("blif", lineNo, "bad pin assignment %q", a)
		}
		pins = append(pins, pin{strings.ToLower(a[:eq]), a[eq+1:]})
	}
	outIdx := len(pins) - 1
	for i, p := range pins {
		if outputPinNames[p.name] {
			outIdx = i
			break
		}
	}
	for i, p := range pins {
		if i == outIdx {
			g.output = p.net
		} else {
			g.fanin = append(g.fanin, p.net)
		}
	}
	if g.output == "" {
		return blifGate{}, parseErr("blif", lineNo, "gate has no output pin")
	}
	return g, nil
}

// assembleNetlist orders collected gate records topologically (BLIF
// and .bench place no ordering requirement on gate lines) and builds
// the Circuit. Gates are named after their output nets. format tags
// the diagnostics ("blif" or "bench"); every structural defect comes
// back as a *ParseError anchored at the offending gate's source line
// and wrapping one of the sentinel categories in errors.go.
func assembleNetlist(format, name string, inputs, outputs []string, gates []blifGate) (*Circuit, error) {
	c := New(name)
	for _, in := range inputs {
		if _, err := c.AddInput(in); err != nil {
			return nil, &ParseError{Format: format, Err: err}
		}
	}
	driver := make(map[string]int, len(gates)) // net -> gate index
	for i, g := range gates {
		if j, dup := driver[g.output]; dup {
			return nil, parseErr(format, g.line, "net %q already driven at line %d: %w",
				g.output, gates[j].line, ErrRedriven)
		}
		if _, isIn := c.Lookup(g.output); isIn {
			return nil, parseErr(format, g.line, "net %q drives a primary input: %w",
				g.output, ErrRedriven)
		}
		driver[g.output] = i
	}
	// Kahn's algorithm over the gate dependency graph.
	indeg := make([]int, len(gates))
	succ := make([][]int, len(gates))
	for i, g := range gates {
		for _, f := range g.fanin {
			if j, ok := driver[f]; ok {
				indeg[i]++
				succ[j] = append(succ[j], i)
			} else if _, isIn := c.Lookup(f); !isIn {
				return nil, parseErr(format, g.line, "net %q (fanin of %q): %w",
					f, g.output, ErrUndriven)
			}
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	placed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		g := gates[i]
		if _, err := c.AddGate(g.output, g.typ, g.fanin...); err != nil {
			return nil, &ParseError{Format: format, Line: g.line, Err: err}
		}
		placed++
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if placed != len(gates) {
		// Kahn leaves exactly the gates on cycles (and their downstream
		// cone) unplaced; name them so the report points into the file.
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, fmt.Sprintf("%s (line %d)", gates[i].output, gates[i].line))
			}
			if len(stuck) == 8 {
				stuck = append(stuck, "...")
				break
			}
		}
		return nil, parseErr(format, 0, "%w: %d gates on or behind the cycle: %s",
			ErrCycle, len(gates)-placed, strings.Join(stuck, ", "))
	}
	for _, o := range outputs {
		if err := c.MarkOutput(o); err != nil {
			return nil, &ParseError{Format: format, Err: err}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteBLIF renders the circuit as mapped BLIF with generic pin names
// (A, B, C, D in fan-in order and O for the output).
func WriteBLIF(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", c.Name)
	fmt.Fprint(bw, ".inputs")
	for _, nd := range c.Nodes {
		if nd.Kind == KindInput {
			fmt.Fprintf(bw, " %s", nd.Name)
		}
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, " %s", c.Nodes[o].Name)
	}
	fmt.Fprintln(bw)
	pinNames := []string{"A", "B", "C", "D"}
	for _, nd := range c.Nodes {
		if nd.Kind != KindGate {
			continue
		}
		fmt.Fprintf(bw, ".gate %s", nd.Type)
		for i, f := range nd.Fanin {
			pin := pinNames[i%len(pinNames)]
			if i >= len(pinNames) {
				pin = fmt.Sprintf("A%d", i)
			}
			fmt.Fprintf(bw, " %s=%s", pin, c.Nodes[f].Name)
		}
		fmt.Fprintf(bw, " O=%s\n", nd.Name)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
