package netlist

import (
	"errors"
	"fmt"
)

// Graph is the compiled traversal view of a Circuit: topological
// order, fanout lists and levels. It shares the Circuit's node ids.
type Graph struct {
	C *Circuit

	// Topo lists all node ids in a topological order (every node
	// appears after all of its fanins). Inputs come first within the
	// order Kahn's algorithm discovers them.
	Topo []NodeID

	// Fanout[id] lists the gates driven by node id. A gate driving a
	// fanout gate through k of its input pins appears k times, because
	// each pin contributes its own input-capacitance load in the
	// sizable delay model.
	Fanout [][]NodeID

	// Level[id] is the length in gates of the longest path from any
	// primary input to the node (inputs are level 0).
	Level []int

	// Levels buckets the node ids by Level, preserving topological
	// order inside each bucket: Levels[l] lists every node with
	// Level[id] == l. Because the level strictly increases along every
	// fanin edge, all nodes in one bucket are mutually independent —
	// the parallel SSTA sweep processes one bucket at a time behind a
	// level barrier. Levels[0] holds exactly the primary inputs.
	//
	// Levels — like every derived table on the Graph — is computed
	// exactly once, in Compile. Sweep engines must index these
	// memoized tables rather than re-derive level buckets or edge
	// offsets per sweep: on large graphs that bookkeeping is O(V+E)
	// per call and dominates repeated evaluations.
	Levels [][]NodeID

	// LevelPos[id] is the index of id inside its level bucket:
	// Levels[Level[id]][LevelPos[id]] == id. The adjoint sweeps use
	// (Level, LevelPos) as the canonical serial accumulation order.
	LevelPos []int

	// FaninOff is the CSR offset table over fanin edges: node id's
	// fanin pins own the edge slots [FaninOff[id], FaninOff[id+1]).
	// Len is len(Nodes)+1; FaninOff[len(Nodes)] == Edges.
	FaninOff []int

	// FanoutOff is the CSR offset table over the Fanout lists: node
	// id's fanout entries own the edge slots
	// [FanoutOff[id], FanoutOff[id+1]). Len is len(Nodes)+1.
	FanoutOff []int

	// Edges is the total fanin pin count (== total fanout entries).
	Edges int

	// gateTopo memoizes GateTopo.
	gateTopo []NodeID
}

// ErrCycle is returned when the fanin relation is cyclic.
var ErrCycle = errors.New("netlist: circuit contains a cycle")

// TopoOrder returns a topological order of the circuit's nodes, or
// ErrCycle if the fanin relation is cyclic.
func (c *Circuit) TopoOrder() ([]NodeID, error) {
	n := len(c.Nodes)
	indeg := make([]int, n)
	fanout := make([][]NodeID, n)
	for i, nd := range c.Nodes {
		indeg[i] = len(nd.Fanin)
		for _, f := range nd.Fanin {
			fanout[f] = append(fanout[f], NodeID(i))
		}
	}
	queue := make([]NodeID, 0, n)
	for i := range c.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range fanout[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w: %d of %d nodes unreachable from sources",
			ErrCycle, n-len(order), n)
	}
	return order, nil
}

// Compile builds the traversal view. It fails on cyclic circuits.
func Compile(c *Circuit) (*Graph, error) {
	topo, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(c.Nodes)
	g := &Graph{
		C:      c,
		Topo:   topo,
		Fanout: make([][]NodeID, n),
		Level:  make([]int, n),
	}
	for i, nd := range c.Nodes {
		for _, f := range nd.Fanin {
			g.Fanout[f] = append(g.Fanout[f], NodeID(i))
		}
	}
	maxLvl := 0
	for _, id := range topo {
		lvl := 0
		for _, f := range c.Nodes[id].Fanin {
			if l := g.Level[f] + 1; l > lvl {
				lvl = l
			}
		}
		if c.Nodes[id].Kind == KindInput {
			lvl = 0
		}
		g.Level[id] = lvl
		if lvl > maxLvl {
			maxLvl = lvl
		}
	}
	g.Levels = make([][]NodeID, maxLvl+1)
	g.LevelPos = make([]int, n)
	for _, id := range topo {
		g.LevelPos[id] = len(g.Levels[g.Level[id]])
		g.Levels[g.Level[id]] = append(g.Levels[g.Level[id]], id)
	}
	g.FaninOff = make([]int, n+1)
	g.FanoutOff = make([]int, n+1)
	for i := range c.Nodes {
		g.FaninOff[i+1] = g.FaninOff[i] + len(c.Nodes[i].Fanin)
		g.FanoutOff[i+1] = g.FanoutOff[i] + len(g.Fanout[i])
	}
	g.Edges = g.FaninOff[n]
	for _, id := range topo {
		if c.Nodes[id].Kind == KindGate {
			g.gateTopo = append(g.gateTopo, id)
		}
	}
	return g, nil
}

// MustCompile is Compile for circuits known to be valid; it panics on
// error and is intended for built-ins and tests.
func MustCompile(c *Circuit) *Graph {
	g, err := Compile(c)
	if err != nil {
		panic(err)
	}
	return g
}

// GateTopo returns only the gate ids of the topological order. The
// slice is memoized on the graph (computed once in Compile); callers
// must not mutate it.
func (g *Graph) GateTopo() []NodeID {
	return g.gateTopo
}

// IsOutput reports whether id is marked as a primary output.
func (g *Graph) IsOutput(id NodeID) bool {
	for _, o := range g.C.Outputs {
		if o == id {
			return true
		}
	}
	return false
}

// DanglingGates returns gates with no fanout that are not primary
// outputs. Such gates are legal but usually indicate a malformed
// netlist; generators must not produce any.
func (g *Graph) DanglingGates() []NodeID {
	var out []NodeID
	for i, nd := range g.C.Nodes {
		if nd.Kind != KindGate {
			continue
		}
		id := NodeID(i)
		if len(g.Fanout[id]) == 0 && !g.IsOutput(id) {
			out = append(out, id)
		}
	}
	return out
}
