package netlist

import (
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	spec := GenSpec{Name: "g", Gates: 200, Inputs: 20, Outputs: 5,
		Depth: 8, MaxFanin: 4, Seed: 1}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 200 {
		t.Errorf("gates = %d, want 200", c.NumGates())
	}
	if c.NumInputs() != 20 {
		t.Errorf("inputs = %d", c.NumInputs())
	}
	if len(c.Outputs) < 5 {
		t.Errorf("outputs = %d, want >= 5", len(c.Outputs))
	}
	s, err := c.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != 8 {
		t.Errorf("depth = %d, want 8", s.Depth)
	}
	if s.MaxFanin > 4 {
		t.Errorf("max fanin = %d", s.MaxFanin)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Name: "g", Gates: 150, Inputs: 12, Outputs: 3,
		Depth: 7, MaxFanin: 3, Seed: 99}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ")
	}
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na.Name != nb.Name || na.Type != nb.Type || len(na.Fanin) != len(nb.Fanin) {
			t.Fatalf("node %d differs: %+v vs %+v", i, na, nb)
		}
		for j := range na.Fanin {
			if na.Fanin[j] != nb.Fanin[j] {
				t.Fatalf("node %d fanin differs", i)
			}
		}
	}
	// A different seed must give a different circuit.
	spec.Seed = 100
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nodes {
		if len(a.Nodes[i].Fanin) != len(c.Nodes[i].Fanin) {
			same = false
			break
		}
		for j := range a.Nodes[i].Fanin {
			if a.Nodes[i].Fanin[j] != c.Nodes[i].Fanin[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical wiring")
	}
}

func TestGenerateNoDanglingNoFloating(t *testing.T) {
	c, err := Generate(GenSpec{Name: "g", Gates: 300, Inputs: 30, Outputs: 10,
		Depth: 12, MaxFanin: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := MustCompile(c)
	if d := g.DanglingGates(); len(d) != 0 {
		t.Errorf("%d dangling gates", len(d))
	}
	for _, in := range c.InputIDs() {
		if len(g.Fanout[in]) == 0 {
			t.Errorf("floating input %s", c.Nodes[in].Name)
		}
	}
}

func TestGenerateSpecValidation(t *testing.T) {
	bad := []GenSpec{
		{Gates: 0, Inputs: 1, Outputs: 1, Depth: 1, MaxFanin: 2},
		{Gates: 10, Inputs: 0, Outputs: 1, Depth: 1, MaxFanin: 2},
		{Gates: 10, Inputs: 1, Outputs: 1, Depth: 0, MaxFanin: 2},
		{Gates: 10, Inputs: 1, Outputs: 1, Depth: 11, MaxFanin: 2},
		{Gates: 10, Inputs: 1, Outputs: 1, Depth: 2, MaxFanin: 9},
		{Gates: 10, Inputs: 1, Outputs: 0, Depth: 2, MaxFanin: 2},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestLevelSizes(t *testing.T) {
	for _, c := range []struct{ n, d int }{{100, 10}, {17, 5}, {1692, 22}, {5, 5}, {7, 1}} {
		sizes := levelSizes(c.n, c.d)
		if len(sizes) != c.d {
			t.Fatalf("levels = %d, want %d", len(sizes), c.d)
		}
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				t.Errorf("empty level in %v", sizes)
			}
			sum += s
		}
		if sum != c.n {
			t.Errorf("sizes sum to %d, want %d", sum, c.n)
		}
	}
}

func TestBenchmarkPresets(t *testing.T) {
	cases := []struct {
		c     *Circuit
		cells int
	}{
		{Apex1Like(), 982},
		{Apex2Like(), 117},
		{K2Like(), 1692},
	}
	for _, tc := range cases {
		if tc.c.NumGates() != tc.cells {
			t.Errorf("%s: %d cells, want %d", tc.c.Name, tc.c.NumGates(), tc.cells)
		}
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.c.Name, err)
		}
	}
}
