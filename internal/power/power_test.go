package power

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestProbabilitiesKnownGates(t *testing.T) {
	c := netlist.New("p")
	c.AddInput("a")
	c.AddInput("b")
	c.AddGate("n", "nand2", "a", "b")
	c.AddGate("i", "inv", "n")
	c.AddGate("o", "nor2", "a", "b")
	c.MarkOutput("i")
	c.MarkOutput("o")
	g := netlist.MustCompile(c)
	p, err := Probabilities(g)
	if err != nil {
		t.Fatal(err)
	}
	if !close(p[c.MustID("n")], 0.75, 1e-12) {
		t.Errorf("P(nand) = %v", p[c.MustID("n")])
	}
	if !close(p[c.MustID("i")], 0.25, 1e-12) {
		t.Errorf("P(inv(nand)) = %v", p[c.MustID("i")])
	}
	if !close(p[c.MustID("o")], 0.25, 1e-12) {
		t.Errorf("P(nor) = %v", p[c.MustID("o")])
	}
}

func TestProbabilitiesXor(t *testing.T) {
	c := netlist.New("x")
	c.AddInput("a")
	c.AddInput("b")
	c.AddGate("x", "xor2", "a", "b")
	c.AddGate("nx", "xnor2", "a", "b")
	c.MarkOutput("x")
	c.MarkOutput("nx")
	g := netlist.MustCompile(c)
	p, err := Probabilities(g)
	if err != nil {
		t.Fatal(err)
	}
	if !close(p[c.MustID("x")], 0.5, 1e-12) || !close(p[c.MustID("nx")], 0.5, 1e-12) {
		t.Errorf("xor/xnor = %v %v", p[c.MustID("x")], p[c.MustID("nx")])
	}
}

func TestProbabilitiesUnknownType(t *testing.T) {
	c := netlist.New("u")
	c.AddInput("a")
	c.AddGate("g", "mystery", "a")
	c.MarkOutput("g")
	if _, err := Probabilities(netlist.MustCompile(c)); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestActivitiesPeakAtHalf(t *testing.T) {
	g := netlist.MustCompile(netlist.Tree7())
	a, err := Activities(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a {
		if v < 0 || v > 0.5+1e-12 {
			t.Errorf("activity[%d] = %v outside [0, 0.5]", i, v)
		}
	}
	// Inputs at p = 0.5 have the maximum activity 0.5.
	for _, id := range g.C.InputIDs() {
		if !close(a[id], 0.5, 1e-12) {
			t.Errorf("input activity = %v", a[id])
		}
	}
}

func TestWeightsNormalized(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Apex2Like()), delay.Default())
	w, err := Weights(m)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for _, id := range m.G.C.GateIDs() {
		if w[id] < 0 {
			t.Errorf("negative weight %v", w[id])
		}
		sum += w[id]
		n++
	}
	if !close(sum, float64(n), 1e-9) {
		t.Errorf("weights sum to %v, want %v", sum, float64(n))
	}
}

func TestEstimateGrowsWithSizing(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	S1 := m.UnitSizes()
	S3 := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		S3[id] = 3
	}
	p1, err := Estimate(m, S1)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Estimate(m, S3)
	if err != nil {
		t.Fatal(err)
	}
	if p3 <= p1 {
		t.Errorf("upsizing did not increase power: %v -> %v", p1, p3)
	}
}
