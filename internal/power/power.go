// Package power estimates zero-delay switching activity and the
// power-proportional sizing weights of the paper's section 4: "if we
// take into account capacitances and switching activity under zero
// delay model in the weights", the weighted sum of sizing factors
// models power (following the paper's reference [8], Jacobs, "Using
// Gate Sizing to Reduce Glitch Power").
//
// Signal probabilities propagate through the gates assuming spatially
// independent, temporally independent inputs with P(1) = 0.5; the
// zero-delay toggle activity of a net is then 2 p (1 - p), and the
// power weight of a gate is its activity times the capacitance its
// sizing scales.
package power

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// Probabilities returns P(output = 1) per node under the independence
// assumption, for the gate types of the default library. Unknown types
// return an error rather than a silent 0.5.
func Probabilities(g *netlist.Graph) ([]float64, error) {
	p := make([]float64, len(g.C.Nodes))
	for _, id := range g.Topo {
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			p[id] = 0.5
			continue
		}
		// Gather fanin probabilities.
		var pin []float64
		for _, f := range nd.Fanin {
			pin = append(pin, p[f])
		}
		v, err := gateProb(nd.Type, pin)
		if err != nil {
			return nil, fmt.Errorf("power: gate %q: %w", nd.Name, err)
		}
		p[id] = v
	}
	return p, nil
}

// gateProb returns P(out = 1) for one gate given fanin probabilities.
func gateProb(typ string, pin []float64) (float64, error) {
	andAll := func() float64 {
		v := 1.0
		for _, q := range pin {
			v *= q
		}
		return v
	}
	orAll := func() float64 {
		v := 1.0
		for _, q := range pin {
			v *= 1 - q
		}
		return 1 - v
	}
	switch typ {
	case "inv", "not":
		return 1 - pin[0], nil
	case "buf":
		return pin[0], nil
	case "nand2", "nand3", "nand4", "nand":
		return 1 - andAll(), nil
	case "and2", "and3", "and4", "and":
		return andAll(), nil
	case "nor2", "nor3", "nor4", "nor":
		return 1 - orAll(), nil
	case "or2", "or3", "or4", "or":
		return orAll(), nil
	case "xor2", "xor":
		// P(a xor b) for independent operands.
		return pin[0] + pin[1] - 2*pin[0]*pin[1], nil
	case "xnor2", "xnor":
		v := pin[0] + pin[1] - 2*pin[0]*pin[1]
		return 1 - v, nil
	default:
		return 0, fmt.Errorf("unknown gate type %q", typ)
	}
}

// Activities returns the zero-delay toggle activity 2 p (1-p) per
// node.
func Activities(g *netlist.Graph) ([]float64, error) {
	p, err := Probabilities(g)
	if err != nil {
		return nil, err
	}
	a := make([]float64, len(p))
	for i, q := range p {
		a[i] = 2 * q * (1 - q)
	}
	return a, nil
}

// Weights returns per-gate power weights for the weighted-area sizing
// objective: the activity of the gate's output times the input
// capacitance its sizing scales (sizing a gate up scales its own gate
// capacitance, which is charged every time the gate's *inputs* toggle;
// the dominant sizing-dependent term is CIn * activity of the driving
// nets, approximated here by the gate's own output activity as in
// zero-delay power models). Weights are normalized to average 1 so
// the weighted area remains comparable to the plain gate count.
func Weights(m *delay.Model) ([]float64, error) {
	act, err := Activities(m.G)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(act))
	gates := m.G.C.GateIDs()
	var sum float64
	for _, id := range gates {
		w[id] = act[id] * m.CIn[id]
		sum += w[id]
	}
	if sum == 0 {
		return nil, fmt.Errorf("power: all weights vanished")
	}
	scale := float64(len(gates)) / sum
	for _, id := range gates {
		w[id] *= scale
	}
	return w, nil
}

// Estimate returns the total zero-delay switching power estimate
// sum over gates of activity * (CLoad + sum CIn*S_fanout) * S-scaled
// terms — the quantity the weighted objective is a linear proxy for.
func Estimate(m *delay.Model, S []float64) (float64, error) {
	act, err := Activities(m.G)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, id := range m.G.C.GateIDs() {
		total += act[id] * m.Load(id, S)
	}
	return total, nil
}
