package stats

import (
	"math"

	"repro/internal/ad"
)

// This file provides the stochastic max in the (mean, standard
// deviation) parameterization used by the paper's full-space sizing
// formulation (eq 17 passes mu/sigma pairs to max_mu and max_sigma).
// The moments are the same Clark formulas as Max2; only the
// parameterization of the inputs and of the second output changes.

// sigmaCFloor keeps the sigma-output derivatives finite when the max
// collapses to a deterministic value.
const sigmaCFloor = 1e-12

// Max2Sigma returns the mean and standard deviation of max(A, B) for
// operands given as (mu, sigma) pairs.
func Max2Sigma(muA, sigmaA, muB, sigmaB float64) (muC, sigmaC float64) {
	c := Max2(MV{muA, sigmaA * sigmaA}, MV{muB, sigmaB * sigmaB})
	return c.Mu, math.Sqrt(c.Var)
}

// Max2SigmaJac returns the max moments in (mu, sigma) form together
// with the 2x4 Jacobian with respect to (muA, sigmaA, muB, sigmaB).
// It chains the variance-form Jacobian of Max2Jac:
//
//	d sigmaC/dx = (d varC/dx) / (2 sigmaC)
//	d /d sigmaA = (d/d varA) * 2 sigmaA
func Max2SigmaJac(muA, sigmaA, muB, sigmaB float64) (muC, sigmaC float64, jac Jac2x4) {
	c, jv := Max2Jac(MV{muA, sigmaA * sigmaA}, MV{muB, sigmaB * sigmaB})
	muC = c.Mu
	sigmaC = math.Sqrt(c.Var)
	den := 2 * math.Max(sigmaC, sigmaCFloor)

	// Row 0: d muC. Columns 1 and 3 convert var -> sigma inputs.
	jac[0][0] = jv[0][0]
	jac[0][1] = jv[0][1] * 2 * sigmaA
	jac[0][2] = jv[0][2]
	jac[0][3] = jv[0][3] * 2 * sigmaB
	// Row 1: d sigmaC.
	jac[1][0] = jv[1][0] / den
	jac[1][1] = jv[1][1] * 2 * sigmaA / den
	jac[1][2] = jv[1][2] / den
	jac[1][3] = jv[1][3] * 2 * sigmaB / den
	return muC, sigmaC, jac
}

// max2SigmaHD evaluates the sigma-parameterized max on hyper-dual
// inputs ordered (muA, sigmaA, muB, sigmaB); sel 0 returns muC, 1
// returns sigmaC.
func max2SigmaHD(x []ad.HyperDual, sel int) ad.HyperDual {
	q := []ad.HyperDual{x[0], x[1].Sqr(), x[2], x[3].Sqr()}
	if sel == 0 {
		return max2HD(q, 0)
	}
	return max2HD(q, 1).Sqrt()
}

// Max2SigmaHessians returns the exact 4x4 Hessians of muC and sigmaC
// with respect to (muA, sigmaA, muB, sigmaB), computed with hyper-dual
// AD. The point must be non-degenerate (sigmaA^2 + sigmaB^2 above the
// internal floor).
func Max2SigmaHessians(muA, sigmaA, muB, sigmaB float64) (hMu, hSigma [4][4]float64) {
	x := []float64{muA, sigmaA, muB, sigmaB}
	_, _, hm := ad.Hessian(func(v []ad.HyperDual) ad.HyperDual { return max2SigmaHD(v, 0) }, x)
	_, _, hs := ad.Hessian(func(v []ad.HyperDual) ad.HyperDual { return max2SigmaHD(v, 1) }, x)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			hMu[i][j] = hm[i][j]
			hSigma[i][j] = hs[i][j]
		}
	}
	return hMu, hSigma
}
