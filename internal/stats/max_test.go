package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ad"
	"repro/internal/dist"
)

func close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestAdd(t *testing.T) {
	c := Add(MV{1, 4}, MV{2, 9})
	if c.Mu != 3 || c.Var != 13 {
		t.Errorf("Add = %+v", c)
	}
}

func TestMax2SymmetricOperands(t *testing.T) {
	// Two iid N(0,1): known result mu = 1/sqrt(pi), var = 1 - 1/pi.
	c := Max2(MV{0, 1}, MV{0, 1})
	wantMu := 1 / math.Sqrt(math.Pi)
	wantVar := 1 - 1/math.Pi
	if !close(c.Mu, wantMu, 1e-12) {
		t.Errorf("mu = %v, want %v", c.Mu, wantMu)
	}
	if !close(c.Var, wantVar, 1e-12) {
		t.Errorf("var = %v, want %v", c.Var, wantVar)
	}
}

func TestMax2Commutative(t *testing.T) {
	f := func(m1, v1, m2, v2 float64) bool {
		a := MV{math.Mod(m1, 50), math.Abs(math.Mod(v1, 10))}
		b := MV{math.Mod(m2, 50), math.Abs(math.Mod(v2, 10))}
		x := Max2(a, b)
		y := Max2(b, a)
		return close(x.Mu, y.Mu, 1e-11) && close(x.Var, y.Var, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax2DominatesOperandMeans(t *testing.T) {
	// E[max(A,B)] >= max(E[A], E[B]) always.
	f := func(m1, v1, m2, v2 float64) bool {
		a := MV{math.Mod(m1, 50), math.Abs(math.Mod(v1, 10))}
		b := MV{math.Mod(m2, 50), math.Abs(math.Mod(v2, 10))}
		c := Max2(a, b)
		return c.Mu >= math.Max(a.Mu, b.Mu)-1e-9 && c.Var >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax2ShiftInvariance(t *testing.T) {
	// max(A+s, B+s) = max(A,B)+s in mean, identical variance.
	f := func(m1, v1, m2, v2, s float64) bool {
		a := MV{math.Mod(m1, 20), math.Abs(math.Mod(v1, 5))}
		b := MV{math.Mod(m2, 20), math.Abs(math.Mod(v2, 5))}
		s = math.Mod(s, 1e4)
		c := Max2(a, b)
		cs := Max2(MV{a.Mu + s, a.Var}, MV{b.Mu + s, b.Var})
		return close(cs.Mu, c.Mu+s, 1e-9) && close(cs.Var, c.Var, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax2DegeneratesToDeterministicMax(t *testing.T) {
	// Zero variances: exact deterministic max.
	c := Max2(MV{3, 0}, MV{5, 0})
	if c.Mu != 5 || c.Var != 0 {
		t.Errorf("det max = %+v", c)
	}
	// One dominant operand: result converges to the winner.
	c = Max2(MV{100, 1}, MV{0, 1})
	if !close(c.Mu, 100, 1e-12) || !close(c.Var, 1, 1e-9) {
		t.Errorf("dominant = %+v", c)
	}
	// Far-apart with small sigma must not produce negative variance.
	c = Max2(MV{1e6, 1e-6}, MV{0, 1e-6})
	if c.Var < 0 {
		t.Errorf("negative variance %v", c.Var)
	}
	if !close(c.Mu, 1e6, 1e-12) || !close(c.Var, 1e-6, 1e-6) {
		t.Errorf("far apart = %+v", c)
	}
}

func TestMax2AgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := [][2]MV{
		{{0, 1}, {0, 1}},
		{{5, 4}, {6, 1}},
		{{10, 0.25}, {9.5, 2.25}},
		{{-3, 9}, {2, 0.01}},
		{{0, 0}, {0.1, 1}}, // one deterministic operand
	}
	for _, c := range cases {
		want := Max2(c[0], c[1])
		got := SampleMax2(c[0], c[1], 600000, rng)
		if !close(got.Mu, want.Mu, 8e-3) {
			t.Errorf("max(%+v,%+v): MC mu %v vs analytic %v", c[0], c[1], got.Mu, want.Mu)
		}
		sa, sw := math.Sqrt(got.Var), math.Sqrt(want.Var)
		if math.Abs(sa-sw) > 8e-3*math.Max(1, sw) {
			t.Errorf("max(%+v,%+v): MC sigma %v vs analytic %v", c[0], c[1], sa, sw)
		}
	}
}

func TestMax2MomentsMatchDensityIntegral(t *testing.T) {
	// Numerically integrate x f_C(x) and x^2 f_C(x) against eq 9 and
	// compare with the closed-form moments (eqs 10, 12, 13).
	a := MV{2, 1.44}
	b := MV{2.5, 0.49}
	c := Max2(a, b)
	const n = 200000
	lo, hi := -10.0, 15.0
	h := (hi - lo) / n
	var m0, m1, m2 float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*h
		w := h
		if i == 0 || i == n {
			w = h / 2
		}
		f := MaxDensity(a, b, x)
		m0 += w * f
		m1 += w * f * x
		m2 += w * f * x * x
	}
	if !close(m0, 1, 1e-6) {
		t.Errorf("density mass = %v", m0)
	}
	if !close(m1, c.Mu, 1e-6) {
		t.Errorf("integral mean %v vs analytic %v", m1, c.Mu)
	}
	if v := m2 - m1*m1; !close(v, c.Var, 1e-5) {
		t.Errorf("integral var %v vs analytic %v", v, c.Var)
	}
}

func TestMaxCDFIsProduct(t *testing.T) {
	a := MV{1, 1}
	b := MV{0, 4}
	for x := -5.0; x < 8; x += 0.5 {
		want := a.Normal().CDF(x) * b.Normal().CDF(x)
		if got := MaxCDF(a, b, x); !close(got, want, 1e-14) {
			t.Errorf("MaxCDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNormalApproxErrorSmall(t *testing.T) {
	// The paper's claim: the max of two normals is close to normal.
	// Worst case is comparable operands; the KS-style CDF gap should
	// stay within a couple of percent.
	e := NormalApproxError(MV{0, 1}, MV{0, 1}, 5, 2001)
	if e > 0.03 {
		t.Errorf("normal approximation error %v too large", e)
	}
	// Dominated case: essentially exact.
	e = NormalApproxError(MV{10, 1}, MV{0, 1}, 5, 2001)
	if e > 1e-6 {
		t.Errorf("dominated approximation error %v", e)
	}
}

func TestMaxN(t *testing.T) {
	ms := []MV{{1, 0.5}, {2, 0.25}, {1.5, 1}}
	want := Max2(Max2(ms[0], ms[1]), ms[2])
	got := MaxN(ms)
	if got != want {
		t.Errorf("MaxN = %+v, want %+v", got, want)
	}
	if got := MaxN([]MV{{3, 7}}); got != (MV{3, 7}) {
		t.Errorf("MaxN single = %+v", got)
	}
}

func TestMaxNPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxN(nil) did not panic")
		}
	}()
	MaxN(nil)
}

func TestMax2NormalWrapper(t *testing.T) {
	a := dist.Normal{Mu: 1, Sigma: 2}
	b := dist.Normal{Mu: 2, Sigma: 1}
	got := Max2Normal(a, b)
	want := Max2(FromNormal(a), FromNormal(b))
	if !close(got.Mu, want.Mu, 1e-15) || !close(got.Sigma, want.Sigma(), 1e-15) {
		t.Errorf("wrapper = %v", got)
	}
}

// jacCases are representative operand pairs covering comparable,
// skewed, dominant and near-deterministic regimes.
var jacCases = [][2]MV{
	{{0, 1}, {0, 1}},
	{{5, 4}, {6, 1}},
	{{10, 0.25}, {9.5, 2.25}},
	{{-3, 9}, {2, 0.01}},
	{{1, 2}, {1, 2}},
	{{7, 1e-6}, {7.001, 1e-6}},
	{{2, 0}, {1, 1}},
	{{200, 1}, {100, 3}},
}

func TestMax2JacValueMatchesMax2(t *testing.T) {
	for _, c := range jacCases {
		v1 := Max2(c[0], c[1])
		v2, _ := Max2Jac(c[0], c[1])
		if !close(v1.Mu, v2.Mu, 1e-14) || !close(v1.Var, v2.Var, 1e-12) {
			t.Errorf("value mismatch for %+v: %+v vs %+v", c, v1, v2)
		}
	}
}

func TestMax2JacAgainstHyperDual(t *testing.T) {
	for _, c := range jacCases {
		if Degenerate(c[0], c[1]) {
			continue
		}
		_, j := Max2Jac(c[0], c[1])
		x := []float64{c[0].Mu, c[0].Var, c[1].Mu, c[1].Var}
		_, gMu := ad.Gradient(func(v []ad.HyperDual) ad.HyperDual { return max2HD(v, 0) }, x)
		_, gVar := ad.Gradient(func(v []ad.HyperDual) ad.HyperDual { return max2HD(v, 1) }, x)
		for k := 0; k < 4; k++ {
			if !close(j[0][k], gMu[k], 1e-9) {
				t.Errorf("case %+v dmu[%d]: analytic %v, AD %v", c, k, j[0][k], gMu[k])
			}
			if !close(j[1][k], gVar[k], 1e-9) {
				t.Errorf("case %+v dvar[%d]: analytic %v, AD %v", c, k, j[1][k], gVar[k])
			}
		}
	}
}

func TestMax2JacAgainstFiniteDifferences(t *testing.T) {
	for _, c := range jacCases {
		if Degenerate(c[0], c[1]) || c[0].Var < 1e-4 || c[1].Var < 1e-4 {
			continue // FD is unreliable near the variance boundary
		}
		_, j := Max2Jac(c[0], c[1])
		x := []float64{c[0].Mu, c[0].Var, c[1].Mu, c[1].Var}
		eval := func(x []float64) MV { return Max2(MV{x[0], x[1]}, MV{x[2], x[3]}) }
		for k := 0; k < 4; k++ {
			h := 1e-6 * math.Max(1, math.Abs(x[k]))
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[k] += h
			xm[k] -= h
			vp, vm := eval(xp), eval(xm)
			fdMu := (vp.Mu - vm.Mu) / (2 * h)
			fdVar := (vp.Var - vm.Var) / (2 * h)
			if !close(j[0][k], fdMu, 2e-5) {
				t.Errorf("case %+v FD dmu[%d]: analytic %v, FD %v", c, k, j[0][k], fdMu)
			}
			if !close(j[1][k], fdVar, 2e-5) {
				t.Errorf("case %+v FD dvar[%d]: analytic %v, FD %v", c, k, j[1][k], fdVar)
			}
		}
	}
}

func TestMax2JacDegenerate(t *testing.T) {
	// Deterministic winner.
	v, j := Max2Jac(MV{5, 0}, MV{3, 0})
	if v.Mu != 5 || j[0][0] != 1 || j[0][2] != 0 || j[1][1] != 1 {
		t.Errorf("winner jac = %+v %+v", v, j)
	}
	v, j = Max2Jac(MV{3, 0}, MV{5, 0})
	if v.Mu != 5 || j[0][2] != 1 || j[0][0] != 0 || j[1][3] != 1 {
		t.Errorf("winner jac (swapped) = %+v %+v", v, j)
	}
	// Exact tie: split derivative.
	_, j = Max2Jac(MV{4, 0}, MV{4, 0})
	if j[0][0] != 0.5 || j[0][2] != 0.5 {
		t.Errorf("tie jac = %+v", j)
	}
}

func TestMax2AndMax2JacAgreeOnDegenerateTie(t *testing.T) {
	// Regression: on an exact mean tie in the degenerate branch Max2
	// used to return a.Var while Max2Jac returned max(a.Var, b.Var),
	// so taped and untaped sweeps could diverge. Both must now return
	// the larger residual variance, whichever operand holds it.
	cases := [][2]MV{
		{{4, 1e-26}, {4, 3e-26}},
		{{4, 3e-26}, {4, 1e-26}},
		{{-2, 0}, {-2, 5e-25}},
		{{0, 0}, {0, 0}},
	}
	for _, c := range cases {
		if !Degenerate(c[0], c[1]) {
			t.Fatalf("case %+v not degenerate", c)
		}
		v1 := Max2(c[0], c[1])
		v2, _ := Max2Jac(c[0], c[1])
		if v1 != v2 {
			t.Errorf("tie disagreement for %+v: Max2 %+v vs Max2Jac %+v", c, v1, v2)
		}
		if want := math.Max(c[0].Var, c[1].Var); v1.Var != want {
			t.Errorf("tie var for %+v = %v, want %v", c, v1.Var, want)
		}
	}
}

func TestMax2JacFiniteDifferencesNearDegenerateTie(t *testing.T) {
	// Spot-check the analytic Jacobian just above the degenerate
	// floor, where the operands tie in mean and carry tiny variances —
	// the regime the degenerate branch hands over to Clark's formulas.
	// Means sit at zero so central differences do not lose the signal
	// to cancellation against a large common mean.
	cases := [][2]MV{
		{{0, 1e-4}, {0, 2.25e-4}},
		{{0, 1e-6}, {0, 1e-6}},
		{{1e-9, 4e-5}, {0, 4e-5}},
	}
	for _, c := range cases {
		if Degenerate(c[0], c[1]) {
			t.Fatalf("case %+v fell below the degenerate floor", c)
		}
		_, j := Max2Jac(c[0], c[1])
		x := []float64{c[0].Mu, c[0].Var, c[1].Mu, c[1].Var}
		theta := math.Sqrt(c[0].Var + c[1].Var)
		eval := func(x []float64) MV { return Max2(MV{x[0], x[1]}, MV{x[2], x[3]}) }
		for k := 0; k < 4; k++ {
			// Means vary on the scale of theta, variances on their own
			// magnitude; step well inside both scales.
			h := 1e-6 * theta
			if k == 1 || k == 3 {
				h = 1e-4 * x[k]
			}
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[k] += h
			xm[k] -= h
			vp, vm := eval(xp), eval(xm)
			fdMu := (vp.Mu - vm.Mu) / (2 * h)
			fdVar := (vp.Var - vm.Var) / (2 * h)
			if !close(j[0][k], fdMu, 1e-4) {
				t.Errorf("case %+v near-tie dmu[%d]: analytic %v, FD %v", c, k, j[0][k], fdMu)
			}
			if !close(j[1][k], fdVar, 1e-4) {
				t.Errorf("case %+v near-tie dvar[%d]: analytic %v, FD %v", c, k, j[1][k], fdVar)
			}
		}
	}
}

func TestMax2JacRowSumProperty(t *testing.T) {
	// Shift invariance implies d muC/d muA + d muC/d muB = 1.
	f := func(m1, v1, m2, v2 float64) bool {
		a := MV{math.Mod(m1, 20), 0.01 + math.Abs(math.Mod(v1, 5))}
		b := MV{math.Mod(m2, 20), 0.01 + math.Abs(math.Mod(v2, 5))}
		_, j := Max2Jac(a, b)
		return close(j[0][0]+j[0][2], 1, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax2HessiansAgainstFiniteDifferences(t *testing.T) {
	a := MV{2, 1.2}
	b := MV{2.4, 0.8}
	hMu, hVar := Max2Hessians(a, b)
	x := []float64{a.Mu, a.Var, b.Mu, b.Var}
	grad := func(x []float64) Jac2x4 {
		_, j := Max2Jac(MV{x[0], x[1]}, MV{x[2], x[3]})
		return j
	}
	for k := 0; k < 4; k++ {
		h := 1e-6
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[k] += h
		xm[k] -= h
		jp, jm := grad(xp), grad(xm)
		for l := 0; l < 4; l++ {
			fdMu := (jp[0][l] - jm[0][l]) / (2 * h)
			fdVar := (jp[1][l] - jm[1][l]) / (2 * h)
			if !close(hMu[k][l], fdMu, 1e-4) {
				t.Errorf("hMu[%d][%d] = %v, FD %v", k, l, hMu[k][l], fdMu)
			}
			if !close(hVar[k][l], fdVar, 1e-4) {
				t.Errorf("hVar[%d][%d] = %v, FD %v", k, l, hVar[k][l], fdVar)
			}
		}
	}
}

func TestMax2HessianSymmetry(t *testing.T) {
	hMu, hVar := Max2Hessians(MV{1, 0.7}, MV{1.1, 1.3})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !close(hMu[i][j], hMu[j][i], 1e-12) {
				t.Errorf("hMu asymmetric at %d,%d", i, j)
			}
			if !close(hVar[i][j], hVar[j][i], 1e-12) {
				t.Errorf("hVar asymmetric at %d,%d", i, j)
			}
		}
	}
}

func TestPaperExampleChainNumbers(t *testing.T) {
	// Sanity numbers for a balanced two-level merge, computed from
	// the closed forms and checked here against literal constants so
	// regressions in the operator change a visible quantity.
	// max of two iid N(2.8, 0.7^2):
	c := Max2(MV{2.8, 0.49}, MV{2.8, 0.49})
	theta := 0.7 * math.Sqrt2
	wantMu := 2.8 + theta*dist.PDF(0)
	if !close(c.Mu, wantMu, 1e-12) {
		t.Errorf("chain mu = %v, want %v", c.Mu, wantMu)
	}
	// For iid operands var(max) = s^2 (1 - 1/pi), independent of the
	// common mean; check the centered pair against the closed form
	// and the shifted pair against the centered one.
	cc := Max2(MV{0, 0.49}, MV{0, 0.49})
	if !close(cc.Var, 0.49*(1-1/math.Pi), 1e-12) {
		t.Errorf("centered var = %v, want %v", cc.Var, 0.49*(1-1/math.Pi))
	}
	if !close(c.Var, cc.Var, 1e-12) {
		t.Errorf("shift changed variance: %v vs %v", c.Var, cc.Var)
	}
}
