package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// The paper's core operator: the analytic moments of the maximum of
// two Gaussian arrival times (eqs 10, 12, 13).
func ExampleMax2() {
	a := stats.MV{Mu: 5.0, Var: 1.0}  // N(5, 1)
	b := stats.MV{Mu: 5.5, Var: 0.25} // N(5.5, 0.5^2)
	c := stats.Max2(a, b)
	fmt.Printf("mu = %.4f, sigma = %.4f\n", c.Mu, c.Sigma())
	// Output:
	// mu = 5.7399, sigma = 0.5639
}

// The Jacobian feeds the gate-sizing optimizer's gradients.
func ExampleMax2Jac() {
	a := stats.MV{Mu: 5.0, Var: 1.0}
	b := stats.MV{Mu: 5.5, Var: 0.25}
	_, jac := stats.Max2Jac(a, b)
	// d muC / d muA is the "tightness": the probability that A wins.
	fmt.Printf("P(A is the max) = %.4f\n", jac[0][0])
	// Output:
	// P(A is the max) = 0.3274
}

// ExactMaxN is the quadrature reference for the paper's second
// future-work item: multi-operand maxima without repeated folding.
func ExampleExactMaxN() {
	ms := []stats.MV{{Mu: 0, Var: 1}, {Mu: 0, Var: 1}, {Mu: 0, Var: 1}}
	fold := stats.MaxN(ms)
	exact := stats.ExactMaxN(ms)
	fmt.Printf("fold mu = %.4f, exact mu = %.4f\n", fold.Mu, exact.Mu)
	// Output:
	// fold mu = 0.8476, exact mu = 0.8463
}
