package stats

import (
	"math"
	"testing"
)

// TestQuantileMaxNEdges: the p-range guards, table-driven in the style
// of dist's edge tests. Before the guards a NaN p made every
// F(mid) < p comparison false — the bisection silently converged to
// the lower bracket endpoint and returned a finite garbage value —
// and p <= 0 / p >= 1 returned the arbitrary ±(12*sigma + 1) bracket
// endpoints instead of the true ∓Inf limits.
func TestQuantileMaxNEdges(t *testing.T) {
	gauss := []MV{{0, 1}, {0.5, 2}}
	mixed := []MV{{0, 1}, {3, 0}, {-1, 0.5}} // point mass at 3 floors the max
	points := []MV{{1, 0}, {4, 0}, {2, 0}}   // all point masses: max is the point 4
	cases := []struct {
		name string
		ms   []MV
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"nan-p", gauss, math.NaN(), math.NaN()},
		{"p-zero", gauss, 0, math.Inf(-1)},
		{"p-negative", gauss, -0.5, math.Inf(-1)},
		{"p-one", gauss, 1, math.Inf(1)},
		{"p-above-one", gauss, 1.5, math.Inf(1)},
		{"mixed-p-zero", mixed, 0, 3},          // essential infimum is the point mass
		{"mixed-p-one", mixed, 1, math.Inf(1)}, // spread operands keep the right tail
		{"points-p-zero", points, 0, 4},
		{"points-p-half", points, 0.5, 4},
		{"points-p-one", points, 1, 4},
		{"points-nan-p", points, math.NaN(), math.NaN()},
	}
	for _, c := range cases {
		got := QuantileMaxN(c.ms, c.p)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: QuantileMaxN(%v, %v) = %v, want NaN", c.name, c.ms, c.p, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s: QuantileMaxN(%v, %v) = %v, want %v", c.name, c.ms, c.p, got, c.want)
		}
	}
}

// TestQuantileMaxNInteriorUnchanged: the guards must not disturb the
// interior; the bisection result still inverts the product CDF.
func TestQuantileMaxNInteriorUnchanged(t *testing.T) {
	ms := []MV{{0, 1}, {0.5, 2}, {-1, 0.5}}
	for _, p := range []float64{1e-6, 0.1, 0.5, 0.9, 1 - 1e-9} {
		x := QuantileMaxN(ms, p)
		F := 1.0
		for _, m := range ms {
			F *= m.Normal().CDF(x)
		}
		if math.Abs(F-p) > 1e-9 {
			t.Errorf("p=%v: F(q)=%v", p, F)
		}
	}
}

// TestQuantileMaxNDegenerateVariance: negative and NaN operand
// variances normalize to point masses (the Max2 entry convention)
// instead of poisoning the bisection with NaN CDFs.
func TestQuantileMaxNDegenerateVariance(t *testing.T) {
	ms := []MV{{0, 1}, {2, math.NaN()}, {1, -0.5}}
	got := QuantileMaxN(ms, 0)
	if got != 2 {
		t.Errorf("p=0 with NaN-var point mass: got %v, want 2", got)
	}
	// The product CDF is 0 below the point mass at 2 and jumps to
	// Phi(2) ~ 0.977 there, so the median is the jump point itself.
	mid := QuantileMaxN(ms, 0.5)
	if math.Abs(mid-2) > 1e-9 {
		t.Errorf("interior quantile with degenerate operands = %v, want 2", mid)
	}
}
