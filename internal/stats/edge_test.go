package stats

import (
	"math"
	"testing"
)

// TestSigmaClampsNegativeVar: a slightly negative variance — the
// residue of catastrophic cancellation upstream — must clamp to 0, not
// poison the caller with sqrt(-eps) = NaN.
func TestSigmaClampsNegativeVar(t *testing.T) {
	for _, v := range []float64{0, -0.0, -1e-300, -1e-12, -1} {
		if got := (MV{Mu: 1, Var: v}).Sigma(); got != 0 {
			t.Fatalf("Sigma with Var=%v = %v, want 0", v, got)
		}
	}
	if got := (MV{Var: 4}).Sigma(); got != 2 {
		t.Fatalf("Sigma with Var=4 = %v, want 2", got)
	}
}

// TestMax2NegativeVarOperands: both Max2 and Max2Jac clamp slightly
// negative operand variances at entry; the result must stay finite,
// and the two paths (plain and taped) must keep agreeing exactly.
func TestMax2NegativeVarOperands(t *testing.T) {
	cases := []struct{ a, b MV }{
		{MV{Mu: 1, Var: -1e-18}, MV{Mu: 0.9, Var: 0.04}},
		{MV{Mu: 1, Var: 0.01}, MV{Mu: 1.2, Var: -1e-15}},
		{MV{Mu: 2, Var: -1e-20}, MV{Mu: 2, Var: -1e-20}}, // both degenerate
		{MV{Mu: 1, Var: math.NaN()}, MV{Mu: 0.5, Var: 0.09}},
	}
	for i, c := range cases {
		m := Max2(c.a, c.b)
		if m.Mu != m.Mu || m.Var != m.Var || m.Var < 0 {
			t.Fatalf("case %d: Max2 = %+v, want finite with Var >= 0", i, m)
		}
		mj, j := Max2Jac(c.a, c.b)
		if mj != m {
			t.Fatalf("case %d: Max2Jac moments %+v != Max2 %+v", i, mj, m)
		}
		for r := 0; r < 2; r++ {
			for k := 0; k < 4; k++ {
				if j[r][k] != j[r][k] {
					t.Fatalf("case %d: Jacobian[%d][%d] is NaN", i, r, k)
				}
			}
		}
	}
}

// TestMax2DegenerateTie: on an exact mean tie between two point masses
// the larger residual variance wins in both the plain and taped paths.
func TestMax2DegenerateTie(t *testing.T) {
	a := MV{Mu: 1, Var: 0}
	b := MV{Mu: 1, Var: 1e-26} // below the theta floor but larger
	m := Max2(a, b)
	if m.Mu != 1 || m.Var != 1e-26 {
		t.Fatalf("Max2 tie = %+v, want {1, 1e-26}", m)
	}
	mj, _ := Max2Jac(a, b)
	if mj != m {
		t.Fatalf("Max2Jac tie %+v != Max2 %+v", mj, m)
	}
}
