// Package stats implements the statistical delay operators of
// Jacobs & Berkelaar (DATE 2000): the analytical mean and variance of
// the maximum of two independent normal random variables (the paper's
// equations 10, 12 and 13 — Clark's moment formulas, re-derived in the
// paper's Appendix A), the sum operator (equation 4), and their exact
// first and second derivatives.
//
// The analytical expressions are the paper's enabling contribution:
// they make the stochastic maximum a smooth closed-form function of
// the operand moments, so the gate-sizing nonlinear program has exact
// analytic derivatives and can be solved by a Newton-type method.
//
// All optimization-facing code works in the (mean, variance)
// parameterization because the paper's formulation uses squared
// standard deviations throughout to keep the constraints smooth.
package stats

import (
	"math"

	"repro/internal/ad"
	"repro/internal/dist"
)

// MV holds the first two moments of a random variable in the
// (mean, variance) parameterization used by the sizing formulation.
type MV struct {
	Mu  float64 // mean
	Var float64 // variance (sigma squared), >= 0
}

// Sigma returns the standard deviation sqrt(Var). A slightly negative
// Var — the residue of a catastrophic cancellation upstream — clamps
// to 0 instead of poisoning the caller with sqrt(-eps) = NaN.
func (m MV) Sigma() float64 {
	if m.Var <= 0 {
		return 0
	}
	return math.Sqrt(m.Var)
}

// Normal converts the moment pair to a dist.Normal.
func (m MV) Normal() dist.Normal { return dist.Normal{Mu: m.Mu, Sigma: m.Sigma()} }

// FromNormal converts a dist.Normal to a moment pair.
func FromNormal(n dist.Normal) MV { return MV{Mu: n.Mu, Var: n.Sigma * n.Sigma} }

// Add returns the moments of A + B for independent A, B (paper eq 4).
func Add(a, b MV) MV { return MV{Mu: a.Mu + b.Mu, Var: a.Var + b.Var} }

// thetaEps is the variance-combination floor below which the
// stochastic max degenerates to the deterministic max. It is an
// absolute threshold on theta = sqrt(varA + varB); the delay unit in
// this module is of order one, so 1e-12 is far below any physically
// meaningful uncertainty yet far above rounding noise.
const thetaEps = 1e-12

// Max2 returns the moments of C = max(A, B) for independent normals
// A, B described by their moment pairs (paper eqs 10, 12, 13).
//
// Means are internally shifted by max(muA, muB) before applying
// Clark's formulas so that the variance, which the textbook form
// computes as a difference of second moments, never suffers
// catastrophic cancellation when one operand dominates.
func Max2(a, b MV) MV {
	// Entry clamp: a negative operand variance (rounding residue) would
	// otherwise reach sqrt(theta2) and turn the whole sweep NaN.
	a.Var = nnegVar(a.Var)
	b.Var = nnegVar(b.Var)
	theta2 := a.Var + b.Var
	if theta2 <= thetaEps*thetaEps {
		// Degenerate: both operands are (numerically) deterministic.
		// On an exact mean tie the larger residual variance wins —
		// the same choice Max2Jac makes, so taped and untaped sweeps
		// agree on every input.
		switch {
		case a.Mu > b.Mu:
			return MV{Mu: a.Mu, Var: a.Var}
		case b.Mu > a.Mu:
			return MV{Mu: b.Mu, Var: b.Var}
		default:
			return MV{Mu: a.Mu, Var: math.Max(a.Var, b.Var)}
		}
	}
	theta := math.Sqrt(theta2)
	shift := math.Max(a.Mu, b.Mu)
	am := a.Mu - shift
	bm := b.Mu - shift
	alpha := (am - bm) / theta

	cdfP := dist.CDF(alpha)  // Phi(alpha)
	cdfN := dist.CDF(-alpha) // Phi(-alpha)
	pdf := dist.PDF(alpha)

	mu := am*cdfP + bm*cdfN + theta*pdf
	ex2 := (a.Var+am*am)*cdfP + (b.Var+bm*bm)*cdfN + (am+bm)*theta*pdf
	v := ex2 - mu*mu
	if v < 0 {
		v = 0
	}
	return MV{Mu: mu + shift, Var: v}
}

// MaxN left-folds Max2 over the operands, exactly as the paper
// combines multi-input maxima "two at a time" (eq 18b). It panics on
// an empty slice because the maximum of nothing is undefined.
func MaxN(ms []MV) MV {
	if len(ms) == 0 {
		panic("stats: MaxN of no operands")
	}
	acc := ms[0]
	for _, m := range ms[1:] {
		acc = Max2(acc, m)
	}
	return acc
}

// Max2Normal is a convenience wrapper operating on dist.Normal values.
func Max2Normal(a, b dist.Normal) dist.Normal {
	return Max2(FromNormal(a), FromNormal(b)).Normal()
}

// Jac2x4 is the Jacobian of (muC, varC) with respect to
// (muA, varA, muB, varB), row-major: row 0 is d muC, row 1 is d varC.
type Jac2x4 [2][4]float64

// Max2Jac returns the moments of C = max(A, B) together with the exact
// analytic Jacobian of (muC, varC) with respect to the four operand
// moments. The closed forms follow by differentiating Clark's
// formulas; each entry is written in a shift-invariant arrangement
// (differences of means rather than raw means) for numerical
// stability. At the degenerate point theta -> 0 the operator becomes
// the deterministic max and the Jacobian its (one-sided) selector; on
// an exact tie the derivative is split evenly between the operands,
// the standard subgradient choice.
func Max2Jac(a, b MV) (MV, Jac2x4) {
	// Same entry clamp as Max2, so taped and untaped sweeps keep
	// agreeing on every input including invalid ones.
	a.Var = nnegVar(a.Var)
	b.Var = nnegVar(b.Var)
	theta2 := a.Var + b.Var
	if theta2 <= thetaEps*thetaEps {
		var j Jac2x4
		switch {
		case a.Mu > b.Mu:
			j[0][0], j[1][1] = 1, 1
			return MV{a.Mu, a.Var}, j
		case b.Mu > a.Mu:
			j[0][2], j[1][3] = 1, 1
			return MV{b.Mu, b.Var}, j
		default:
			j[0][0], j[0][2] = 0.5, 0.5
			j[1][1], j[1][3] = 0.5, 0.5
			return MV{a.Mu, math.Max(a.Var, b.Var)}, j
		}
	}
	theta := math.Sqrt(theta2)
	shift := math.Max(a.Mu, b.Mu)
	am := a.Mu - shift
	bm := b.Mu - shift
	alpha := (am - bm) / theta

	cdfP := dist.CDF(alpha)
	cdfN := dist.CDF(-alpha)
	pdf := dist.PDF(alpha)

	muS := am*cdfP + bm*cdfN + theta*pdf // shifted mean
	ex2 := (a.Var+am*am)*cdfP + (b.Var+bm*bm)*cdfN + (am+bm)*theta*pdf
	v := ex2 - muS*muS
	if v < 0 {
		v = 0
	}
	c := MV{Mu: muS + shift, Var: v}

	var j Jac2x4
	// d muC: Phi(alpha), phi(alpha)/(2 theta), Phi(-alpha), same.
	pdfOver2Theta := pdf / (2 * theta)
	j[0][0] = cdfP
	j[0][1] = pdfOver2Theta
	j[0][2] = cdfN
	j[0][3] = pdfOver2Theta

	// d varC, shift-invariant forms (da = muA - muC, db = muB - muC):
	//   d/dmuA = 2 Phi(alpha) da + 2 varA phi(alpha)/theta
	//   d/dmuB = 2 Phi(-alpha) db + 2 varB phi(alpha)/theta
	//   d/dvarA = Phi(alpha) + phi(alpha) (theta(da+db) - alpha(varA-varB)) / (2 theta^2)
	//   d/dvarB = Phi(-alpha) + the same phi-term.
	da := am - muS
	db := bm - muS
	pdfOverTheta := pdf / theta
	j[1][0] = 2*cdfP*da + 2*a.Var*pdfOverTheta
	j[1][2] = 2*cdfN*db + 2*b.Var*pdfOverTheta
	varTerm := pdf * (theta*(da+db) - alpha*(a.Var-b.Var)) / (2 * theta2)
	j[1][1] = cdfP + varTerm
	j[1][3] = cdfN + varTerm
	return c, j
}

// max2HD evaluates the shifted Clark formulas on hyper-dual inputs
// ordered (muA, varA, muB, varB); sel selects the output component:
// 0 for muC, 1 for varC.
func max2HD(x []ad.HyperDual, sel int) ad.HyperDual {
	muA, varA, muB, varB := x[0], x[1], x[2], x[3]
	shift := math.Max(muA.V, muB.V)
	am := muA.AddConst(-shift)
	bm := muB.AddConst(-shift)
	theta := varA.Add(varB).Sqrt()
	alpha := am.Sub(bm).Div(theta)
	cdfP := alpha.NormCDF()
	cdfN := alpha.Neg().NormCDF()
	pdf := alpha.NormPDF()
	mu := am.Mul(cdfP).Add(bm.Mul(cdfN)).Add(theta.Mul(pdf))
	if sel == 0 {
		return mu.AddConst(shift)
	}
	ex2 := varA.Add(am.Sqr()).Mul(cdfP).
		Add(varB.Add(bm.Sqr()).Mul(cdfN)).
		Add(am.Add(bm).Mul(theta).Mul(pdf))
	return ex2.Sub(mu.Sqr())
}

// Max2Hessians returns the exact 4x4 Hessians of muC and varC with
// respect to (muA, varA, muB, varB), computed with hyper-dual forward
// AD over the closed-form expressions (machine precision, no finite
// differences). It is used by the full-space sizing formulation to
// supply exact second derivatives to the Newton inner solver, playing
// the role of LANCELOT's exact element Hessians.
//
// The point must be non-degenerate (varA + varB above the internal
// floor); degenerate maxima have no curvature and callers should pass
// a zero Hessian there.
func Max2Hessians(a, b MV) (hMu, hVar [4][4]float64) {
	x := []float64{a.Mu, a.Var, b.Mu, b.Var}
	_, _, hm := ad.Hessian(func(v []ad.HyperDual) ad.HyperDual { return max2HD(v, 0) }, x)
	_, _, hv := ad.Hessian(func(v []ad.HyperDual) ad.HyperDual { return max2HD(v, 1) }, x)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			hMu[i][j] = hm[i][j]
			hVar[i][j] = hv[i][j]
		}
	}
	return hMu, hVar
}

// Degenerate reports whether the pair of operands falls below the
// variance floor at which Max2 switches to the deterministic max.
func Degenerate(a, b MV) bool { return a.Var+b.Var <= thetaEps*thetaEps }

// nnegVar clamps a variance to the non-negative range, treating NaN as
// 0 as well (any comparison with NaN is false, so the <= 0 branch does
// not catch it alone).
func nnegVar(v float64) float64 {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
