package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactMaxNTwoOperands(t *testing.T) {
	// For two operands the fold IS Clark's exact result (up to the
	// normality of the inputs, which holds here), so quadrature and
	// closed form must agree to integration precision.
	cases := [][2]MV{
		{{0, 1}, {0, 1}},
		{{5, 4}, {6, 1}},
		{{10, 0.25}, {9.5, 2.25}},
		{{-3, 9}, {2, 0.01}},
	}
	for _, c := range cases {
		exact := ExactMaxN(c[:])
		clark := Max2(c[0], c[1])
		if !close(exact.Mu, clark.Mu, 1e-9) {
			t.Errorf("case %+v: exact mu %v vs Clark %v", c, exact.Mu, clark.Mu)
		}
		if !close(exact.Var, clark.Var, 1e-8) {
			t.Errorf("case %+v: exact var %v vs Clark %v", c, exact.Var, clark.Var)
		}
	}
}

func TestExactMaxNSingleAndPoint(t *testing.T) {
	if got := ExactMaxN([]MV{{3, 2}}); got != (MV{3, 2}) {
		t.Errorf("single = %+v", got)
	}
	if got := ExactMaxN([]MV{{3, 0}, {5, 0}, {4, 0}}); got.Mu != 5 || got.Var != 0 {
		t.Errorf("points = %+v", got)
	}
}

func TestExactMaxNPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	ExactMaxN(nil)
}

func TestExactMaxNAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := [][]MV{
		{{0, 1}, {0, 1}, {0, 1}},
		{{1, 0.5}, {1.5, 1}, {0.5, 2}, {1.2, 0.8}},
		{{10, 1}, {9, 1}, {8, 1}, {7, 1}, {6, 1}},
		{{0, 1}, {0.1, 0}, {0, 4}}, // one deterministic operand
	}
	for _, ms := range cases {
		exact := ExactMaxN(ms)
		const n = 400000
		var mean, m2 float64
		for i := 0; i < n; i++ {
			best := math.Inf(-1)
			for _, m := range ms {
				x := m.Mu + math.Sqrt(m.Var)*rng.NormFloat64()
				if x > best {
					best = x
				}
			}
			d := best - mean
			mean += d / float64(i+1)
			m2 += d * (best - mean)
		}
		mcVar := m2 / n
		if !close(exact.Mu, mean, 8e-3) {
			t.Errorf("case %v: exact mu %v vs MC %v", ms, exact.Mu, mean)
		}
		if math.Abs(math.Sqrt(exact.Var)-math.Sqrt(mcVar)) > 8e-3*math.Max(1, math.Sqrt(mcVar)) {
			t.Errorf("case %v: exact sigma %v vs MC %v",
				ms, math.Sqrt(exact.Var), math.Sqrt(mcVar))
		}
	}
}

func TestFoldBiasSmallAndPessimistic(t *testing.T) {
	// The paper folds multi-input maxima two at a time; quantify the
	// bias on symmetric operands (worst case). The fold's mean error
	// should be under ~2% of sigma and biased high (pessimistic),
	// which is the safe direction for timing.
	ms := []MV{{0, 1}, {0, 1}, {0, 1}, {0, 1}}
	muBias, sigmaBias := FoldBias(ms)
	if muBias < 0 {
		t.Errorf("fold mean bias %v is optimistic", muBias)
	}
	if muBias > 0.05 {
		t.Errorf("fold mean bias %v too large", muBias)
	}
	if math.Abs(sigmaBias) > 0.05 {
		t.Errorf("fold sigma bias %v too large", sigmaBias)
	}
	// Dominated case: no bias at all.
	muBias, sigmaBias = FoldBias([]MV{{0, 1}, {10, 1}, {-5, 1}})
	if math.Abs(muBias) > 1e-6 || math.Abs(sigmaBias) > 1e-6 {
		t.Errorf("dominated fold bias %v %v", muBias, sigmaBias)
	}
}

func TestMaxDensityNIntegratesToExactMoments(t *testing.T) {
	ms := []MV{{1, 0.49}, {1.5, 1}, {0.8, 0.25}}
	exact := ExactMaxN(ms)
	const n = 100000
	lo, hi := -6.0, 8.0
	h := (hi - lo) / n
	var m0, m1 float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*h
		w := h
		if i == 0 || i == n {
			w = h / 2
		}
		f := MaxDensityN(ms, x)
		m0 += w * f
		m1 += w * f * x
	}
	if !close(m0, 1, 1e-6) {
		t.Errorf("density mass = %v", m0)
	}
	if !close(m1, exact.Mu, 1e-6) {
		t.Errorf("density mean %v vs exact %v", m1, exact.Mu)
	}
}

func TestQuantileMaxN(t *testing.T) {
	ms := []MV{{0, 1}, {0.5, 2}, {-1, 0.5}}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.998} {
		x := QuantileMaxN(ms, p)
		// Verify via the product CDF.
		F := 1.0
		for _, m := range ms {
			F *= m.Normal().CDF(x)
		}
		if !close(F, p, 1e-9) {
			t.Errorf("p=%v: F(q)=%v", p, F)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty")
		}
	}()
	QuantileMaxN(nil, 0.5)
}

func TestExactMaxNMonotoneInOperands(t *testing.T) {
	// Adding an operand can only increase the mean of the max.
	f := func(m1, v1, m2, v2, m3, v3 float64) bool {
		a := MV{math.Mod(m1, 10), 0.1 + math.Abs(math.Mod(v1, 4))}
		b := MV{math.Mod(m2, 10), 0.1 + math.Abs(math.Mod(v2, 4))}
		c := MV{math.Mod(m3, 10), 0.1 + math.Abs(math.Mod(v3, 4))}
		two := ExactMaxN([]MV{a, b})
		three := ExactMaxN([]MV{a, b, c})
		return three.Mu >= two.Mu-1e-9
	}
	cfg := &quick.Config{MaxCount: 25} // quadrature is not free
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
