package stats

import "math"

// This file addresses the paper's second future-work item (section 7):
// "express the mean and standard deviation of the maximum of multiple
// (more than two) operandi explicitly, rather than as the repeated
// maximum of two operandi". No elementary closed form exists for
// three or more normals, but the exact moments are one-dimensional
// integrals of the product-CDF distribution
//
//	F_max(x) = prod_i F_i(x)
//	E[max^k]  = integral x^k dF_max(x)
//
// evaluated here with adaptive Simpson quadrature to near machine
// precision. ExactMaxN is the reference the left-fold MaxN is measured
// against (see the fold-bias tests and benchmarks): the fold
// approximates every intermediate max as normal, which biases the
// moments slightly; the exact integral has no such assumption beyond
// the independence of the operands.

// ExactMaxN returns the exact mean and variance of the maximum of
// independent normals, by quadrature. Operands with zero variance are
// handled as step factors in the product CDF. It panics on an empty
// slice, like MaxN.
func ExactMaxN(ms []MV) MV {
	if len(ms) == 0 {
		panic("stats: ExactMaxN of no operands")
	}
	if len(ms) == 1 {
		return ms[0]
	}
	// Integration window: generous cover of every operand's support.
	lo, hi := math.Inf(1), math.Inf(-1)
	allPoint := true
	for _, m := range ms {
		s := math.Sqrt(m.Var)
		if s > 0 {
			allPoint = false
		}
		if l := m.Mu - 10*s - 1e-12; l < lo {
			lo = l
		}
		if h := m.Mu + 10*s + 1e-12; h > hi {
			hi = h
		}
	}
	if allPoint {
		best := ms[0]
		for _, m := range ms[1:] {
			if m.Mu > best.Mu {
				best = m
			}
		}
		return MV{Mu: best.Mu, Var: 0}
	}

	// E[max] = hi - integral(F) over [lo, hi] + (lo - lo)*... use the
	// survival/CDF identity to avoid differentiating the product:
	//   E[X]   = hi - int_lo^hi F(x) dx            (X >= lo a.s. here)
	//   E[X^2] = hi^2 - int_lo^hi 2x F(x) dx
	// both derived by parts with F(lo) ~ 0, F(hi) ~ 1.
	F := func(x float64) float64 {
		p := 1.0
		for _, m := range ms {
			p *= m.Normal().CDF(x)
			if p == 0 {
				return 0
			}
		}
		return p
	}
	intF := adaptiveSimpson(F, lo, hi, 1e-12, 48)
	intXF := adaptiveSimpson(func(x float64) float64 { return 2 * x * F(x) }, lo, hi, 1e-12, 48)
	mean := hi - intF
	ex2 := hi*hi - intXF
	v := ex2 - mean*mean
	if v < 0 {
		v = 0
	}
	return MV{Mu: mean, Var: v}
}

// adaptiveSimpson integrates f over [a, b] with the classic recursive
// error control (Richardson on the Simpson halves).
func adaptiveSimpson(f func(float64) float64, a, b, tol float64, depth int) float64 {
	c := 0.5 * (a + b)
	fa, fb, fc := f(a), f(b), f(c)
	s := simpson(fa, fc, fb, b-a)
	return adaptiveSimpsonRec(f, a, b, fa, fb, fc, s, tol, depth)
}

func simpson(fa, fm, fb, h float64) float64 {
	return h / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonRec(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := 0.5 * (a + b)
	lm := 0.5 * (a + c)
	rm := 0.5 * (c + b)
	flm, frm := f(lm), f(rm)
	left := simpson(fa, flm, fc, c-a)
	right := simpson(fc, frm, fb, b-c)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonRec(f, a, c, fa, fc, flm, left, tol/2, depth-1) +
		adaptiveSimpsonRec(f, c, b, fc, fb, frm, right, tol/2, depth-1)
}

// FoldBias returns the moment error of the repeated two-operand fold
// against the exact N-way maximum: (muFold - muExact, sigmaFold -
// sigmaExact). A positive mean bias means the fold is pessimistic.
func FoldBias(ms []MV) (muBias, sigmaBias float64) {
	fold := MaxN(ms)
	exact := ExactMaxN(ms)
	return fold.Mu - exact.Mu, fold.Sigma() - exact.Sigma()
}

// MaxDensityN returns the exact density of the N-way maximum at x:
// f(x) = sum_i f_i(x) prod_{j != i} F_j(x), the N-operand
// generalization of the paper's eq 9.
func MaxDensityN(ms []MV, x float64) float64 {
	var total float64
	for i, mi := range ms {
		term := mi.Normal().PDF(x)
		for j, mj := range ms {
			if j == i {
				continue
			}
			term *= mj.Normal().CDF(x)
			if term == 0 {
				break
			}
		}
		total += term
	}
	return total
}

// QuantileMaxN returns the p-quantile of the N-way maximum by
// bisection on the product CDF; used by the distribution reports in
// cmd/ssta. Edge conventions follow dist.Quantile: a NaN p returns
// NaN (bisection against NaN would silently converge to the lower
// bracket endpoint), p >= 1 returns +Inf when any operand has
// positive variance, and p <= 0 returns the distribution's essential
// infimum — -Inf for all-Gaussian operands, or the largest point-mass
// mean when zero-variance (point-mass) operands floor the maximum.
// When every operand is a point mass the maximum is itself a point
// mass and every quantile is its value. Negative or NaN operand
// variances are treated as zero, the same normalization Max2 applies
// on entry.
func QuantileMaxN(ms []MV, p float64) float64 {
	if len(ms) == 0 {
		panic("stats: QuantileMaxN of no operands")
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	// pointFloor is the largest point-mass mean: the maximum can
	// never fall below it, so it is the p -> 0 limit of the quantile
	// whenever a degenerate operand exists.
	pointFloor, havePoint, haveSpread := math.Inf(-1), false, false
	for _, m := range ms {
		if nnegVar(m.Var) > 0 {
			haveSpread = true
			continue
		}
		havePoint = true
		if m.Mu > pointFloor {
			pointFloor = m.Mu
		}
	}
	if !haveSpread {
		// A maximum of point masses is a point mass: its value at
		// every p, matching dist.Quantile on a zero-sigma normal.
		return pointFloor
	}
	if p <= 0 {
		if havePoint {
			return pointFloor
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range ms {
		s := math.Sqrt(nnegVar(m.Var))
		if l := m.Mu - 12*s - 1; l < lo {
			lo = l
		}
		if h := m.Mu + 12*s + 1; h > hi {
			hi = h
		}
	}
	F := func(x float64) float64 {
		v := 1.0
		for _, m := range ms {
			v *= (MV{Mu: m.Mu, Var: nnegVar(m.Var)}).Normal().CDF(x)
		}
		return v
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if F(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
