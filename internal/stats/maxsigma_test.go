package stats

import (
	"math"
	"testing"
)

func TestMax2SigmaMatchesMax2(t *testing.T) {
	for _, c := range jacCases {
		mu, sigma := Max2Sigma(c[0].Mu, c[0].Sigma(), c[1].Mu, c[1].Sigma())
		want := Max2(c[0], c[1])
		if !close(mu, want.Mu, 1e-13) || !close(sigma, want.Sigma(), 1e-13) {
			t.Errorf("case %+v: (%v, %v) want (%v, %v)",
				c, mu, sigma, want.Mu, want.Sigma())
		}
	}
}

func TestMax2SigmaJacAgainstFD(t *testing.T) {
	for _, c := range jacCases {
		if Degenerate(c[0], c[1]) || c[0].Var < 1e-4 || c[1].Var < 1e-4 {
			continue
		}
		x := []float64{c[0].Mu, c[0].Sigma(), c[1].Mu, c[1].Sigma()}
		_, _, jac := Max2SigmaJac(x[0], x[1], x[2], x[3])
		eval := func(x []float64) (float64, float64) {
			return Max2Sigma(x[0], x[1], x[2], x[3])
		}
		for k := 0; k < 4; k++ {
			h := 1e-6 * math.Max(1, math.Abs(x[k]))
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[k] += h
			xm[k] -= h
			mp, sp := eval(xp)
			mm, sm := eval(xm)
			if fd := (mp - mm) / (2 * h); !close(jac[0][k], fd, 2e-5) {
				t.Errorf("case %+v dmu[%d]: %v, FD %v", c, k, jac[0][k], fd)
			}
			if fd := (sp - sm) / (2 * h); !close(jac[1][k], fd, 2e-5) {
				t.Errorf("case %+v dsigma[%d]: %v, FD %v", c, k, jac[1][k], fd)
			}
		}
	}
}

func TestMax2SigmaHessiansAgainstFD(t *testing.T) {
	x := []float64{2, 1.1, 2.4, 0.9}
	hMu, hSigma := Max2SigmaHessians(x[0], x[1], x[2], x[3])
	grad := func(x []float64) Jac2x4 {
		_, _, j := Max2SigmaJac(x[0], x[1], x[2], x[3])
		return j
	}
	for k := 0; k < 4; k++ {
		h := 1e-6
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[k] += h
		xm[k] -= h
		jp, jm := grad(xp), grad(xm)
		for l := 0; l < 4; l++ {
			if fd := (jp[0][l] - jm[0][l]) / (2 * h); !close(hMu[k][l], fd, 1e-4) {
				t.Errorf("hMu[%d][%d] = %v, FD %v", k, l, hMu[k][l], fd)
			}
			if fd := (jp[1][l] - jm[1][l]) / (2 * h); !close(hSigma[k][l], fd, 1e-4) {
				t.Errorf("hSigma[%d][%d] = %v, FD %v", k, l, hSigma[k][l], fd)
			}
		}
	}
}

func TestMax2SigmaDegenerateStaysFinite(t *testing.T) {
	// A deterministic winner must not produce NaN or Inf derivatives.
	mu, sigma, jac := Max2SigmaJac(5, 0, 3, 0)
	if mu != 5 || sigma != 0 {
		t.Errorf("degenerate value: %v %v", mu, sigma)
	}
	for r := 0; r < 2; r++ {
		for k := 0; k < 4; k++ {
			if math.IsNaN(jac[r][k]) || math.IsInf(jac[r][k], 0) {
				t.Errorf("jac[%d][%d] = %v", r, k, jac[r][k])
			}
		}
	}
}
