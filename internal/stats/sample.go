package stats

import "math/rand"

// SampleMax2 estimates the moments of max(A, B) by direct sampling.
// It is the approach the paper's precursors ([1], [2]) used to obtain
// the max moments and serves here as an independent cross-check of the
// analytical operator. The returned moments carry Monte Carlo noise of
// order 1/sqrt(n).
func SampleMax2(a, b MV, n int, rng *rand.Rand) MV {
	an := a.Normal()
	bn := b.Normal()
	var m, m2 float64
	for i := 0; i < n; i++ {
		x := an.Mu + an.Sigma*rng.NormFloat64()
		y := bn.Mu + bn.Sigma*rng.NormFloat64()
		if y > x {
			x = y
		}
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	return MV{Mu: m, Var: m2 / float64(n)}
}

// MaxDensity returns the exact probability density of max(A, B) at x
// for independent normals (the paper's eq 9):
//
//	f_C(x) = f_A(x) F_B(x) + F_A(x) f_B(x)
//
// The paper observes this density is close to, but not exactly, a
// normal density; NormalApproxError quantifies the gap.
func MaxDensity(a, b MV, x float64) float64 {
	an := a.Normal()
	bn := b.Normal()
	return an.PDF(x)*bn.CDF(x) + an.CDF(x)*bn.PDF(x)
}

// MaxCDF returns the exact distribution function of max(A, B) at x
// (the paper's eq 6): F_C(x) = F_A(x) F_B(x).
func MaxCDF(a, b MV, x float64) float64 {
	return a.Normal().CDF(x) * b.Normal().CDF(x)
}

// NormalApproxError returns the maximum absolute difference between
// the exact CDF of max(A, B) and the CDF of the moment-matched normal
// returned by Max2, scanned over mu +- span*sigma of the result with
// the given number of grid points. This is the quantitative form of
// the paper's claim that the max of two normals "approximates the
// normal distribution close enough".
func NormalApproxError(a, b MV, span float64, points int) float64 {
	c := Max2(a, b)
	cn := c.Normal()
	if cn.Sigma == 0 {
		return 0
	}
	lo := c.Mu - span*cn.Sigma
	hi := c.Mu + span*cn.Sigma
	var worst float64
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		d := MaxCDF(a, b, x) - cn.CDF(x)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
