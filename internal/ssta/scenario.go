package ssta

import (
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// A Scenario is one lane of a batched sweep: a complete speed-factor
// assignment plus a delay skew. The skew scales every gate's mean
// delay by (1 + Skew), floored at zero — the rise/fall convention of
// AnalyzeRiseFall — before the sigma model maps the scaled mean to a
// variance; Skew = 0 reproduces the plain Analyze delay model exactly
// (no floor is applied, matching Analyze bit for bit even on negative
// mean delays).
type Scenario struct {
	// S is the speed-factor assignment, indexed by NodeID. Batch
	// copies it into its lane slab; the caller keeps ownership.
	S []float64
	// Skew scales gate mean delays by (1 + Skew), floored at zero.
	// Must satisfy Skew > -1 is NOT required — a skew at or below -1
	// simply floors every gate at zero, like AnalyzeRiseFall.
	Skew float64
}

// scenarioGateMV is the single definition of a scenario's gate delay
// distribution, shared by the scalar reference sweep and (in lane
// form) by Batch: mu' = floor0((1+Skew) * GateMu), var = Sigma(mu').
// With Skew == 0 it performs exactly GateMV's operations.
func scenarioGateMV(m *delay.Model, id netlist.NodeID, sc Scenario) stats.MV {
	mu := m.GateMu(id, sc.S)
	if sc.Skew != 0 {
		mu *= 1 + sc.Skew
		if mu < 0 {
			mu = 0
		}
	}
	return stats.MV{Mu: mu, Var: m.Sigma.Var(mu)}
}

// AnalyzeScenario runs the serial taped forward sweep for one
// scenario. It is the scalar reference the batched engine is measured
// against: Batch lane l is bit-identical to
// AnalyzeScenario(m, scenario_l) by construction, and a zero-skew
// scenario is bit-identical to Analyze(m, S, true).
func AnalyzeScenario(m *delay.Model, sc Scenario) *Result {
	g := m.G
	n := len(g.C.Nodes)
	if len(sc.S) != n {
		panic("ssta: AnalyzeScenario scenario sizes do not match the circuit")
	}
	r := &Result{
		Arrival:   make([]stats.MV, n),
		GateDelay: make([]stats.MV, n),
		withTape:  true,
		gateFold:  make([][]stats.Jac2x4, n),
	}
	for _, id := range g.Topo {
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			r.Arrival[id] = m.Arrival[id]
			continue
		}
		u := shiftMV(r.Arrival[nd.Fanin[0]], m.PinOff(id, 0))
		if len(nd.Fanin) > 1 {
			steps := make([]stats.Jac2x4, len(nd.Fanin)-1)
			r.gateFold[id] = steps
			for k, f := range nd.Fanin[1:] {
				u, steps[k] = stats.Max2Jac(u, shiftMV(r.Arrival[f], m.PinOff(id, k+1)))
			}
		}
		t := scenarioGateMV(m, id, sc)
		r.GateDelay[id] = t
		r.Arrival[id] = stats.Add(u, t)
	}
	foldOutputs(r, g, true)
	return r
}

// BackwardScenario runs the serial adjoint sweep for a Result produced
// by AnalyzeScenario under the same scenario, returning d phi/d S. It
// differs from Backward only in the chain-rule factor of the skew: a
// scaled gate mean contributes (1 + Skew) per unit of GateMu, and a
// lane floored at zero contributes nothing (the one-sided subgradient
// at the floor). With Skew == 0 every operation matches Backward
// exactly.
func (r *Result) BackwardScenario(m *delay.Model, sc Scenario, seedMu, seedVar float64) []float64 {
	if !r.withTape {
		panic("ssta: BackwardScenario requires a taped sweep")
	}
	g := m.G
	n := len(g.C.Nodes)
	adjMu := make([]float64, n)
	adjVar := make([]float64, n)
	grad := make([]float64, n)
	r.seedAdjoint(g, seedMu, seedVar, adjMu, adjVar)
	scale := 1 + sc.Skew
	for l := len(g.Levels) - 1; l >= 1; l-- {
		for _, id := range g.Levels[l] {
			am, av := adjMu[id], adjVar[id]
			if am == 0 && av == 0 {
				continue
			}
			muT := r.GateDelay[id].Mu
			d := am + av*m.Sigma.DVar(muT)
			w := d
			if sc.Skew != 0 {
				if muT == 0 {
					w = 0 // floored lane: no sensitivity to GateMu
				} else {
					w = d * scale
				}
			}
			m.GateMuGrad(id, sc.S, w, grad)
			fanin := g.C.Nodes[id].Fanin
			uMu, uVar := am, av
			steps := r.gateFold[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				j := steps[k-1]
				f := fanin[k]
				adjMu[f] += uMu*j[0][2] + uVar*j[1][2]
				adjVar[f] += uMu*j[0][3] + uVar*j[1][3]
				uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
			}
			adjMu[fanin[0]] += uMu
			adjVar[fanin[0]] += uVar
		}
	}
	return grad
}

// GradScenarioMuPlusKSigma is the scalar scenario reference for
// Batch.GradsMuPlusKSigma: one taped scenario sweep plus one scenario
// adjoint pass, returning phi = mu + k*sigma and d phi/d S.
func GradScenarioMuPlusKSigma(m *delay.Model, sc Scenario, k float64) (float64, []float64) {
	checkRiskFactor(k, "GradScenarioMuPlusKSigma")
	r := AnalyzeScenario(m, sc)
	phi, sMu, sVar := ObjectiveMuPlusKSigma(r.Tmax, k)
	return phi, r.BackwardScenario(m, sc, sMu, sVar)
}

// checkRiskFactor rejects NaN and infinite risk factors at the API
// boundary: a non-finite k would otherwise poison every lane of a
// sweep with NaN and surface as a silently absurd circuit delay far
// from its cause (the PR 5 clamp work floored quantiles, but a NaN k
// sails through any clamp because every comparison with NaN is
// false).
func checkRiskFactor(k float64, where string) {
	if math.IsNaN(k) || math.IsInf(k, 0) {
		panic("ssta: " + where + " requires a finite risk factor k, got " +
			formatFloat(k))
	}
}

// formatFloat renders k for panic messages without pulling fmt into
// the hot-path file.
func formatFloat(k float64) string {
	switch {
	case math.IsNaN(k):
		return "NaN"
	case math.IsInf(k, 1):
		return "+Inf"
	case math.IsInf(k, -1):
		return "-Inf"
	}
	return "non-finite"
}
