package ssta

import (
	"repro/internal/delay"
	"repro/internal/netlist"
)

// DetResult holds a deterministic (mean-only) timing sweep, the
// traditional static analysis the paper's statistical model replaces.
type DetResult struct {
	// Arrival[id] is the deterministic arrival time at node id.
	Arrival []float64
	// Tmax is the worst arrival over the primary outputs.
	Tmax float64
	// CriticalOutput is the output node realizing Tmax.
	CriticalOutput netlist.NodeID
}

// DetAnalyze runs a deterministic timing sweep using the mean gate
// delays of the model (sigma ignored). Note that the statistical mean
// circuit delay is always at least the deterministic one, because the
// stochastic max inflates means at every path merge — the effect the
// paper's references [1], [2] emphasize.
func DetAnalyze(m *delay.Model, S []float64) *DetResult {
	g := m.G
	n := len(g.C.Nodes)
	r := &DetResult{Arrival: make([]float64, n), CriticalOutput: -1}
	for _, id := range g.Topo {
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			r.Arrival[id] = m.Arrival[id].Mu
			continue
		}
		u := r.Arrival[nd.Fanin[0]] + m.PinOff(id, 0)
		for k, f := range nd.Fanin[1:] {
			if a := r.Arrival[f] + m.PinOff(id, k+1); a > u {
				u = a
			}
		}
		r.Arrival[id] = u + m.GateMu(id, S)
	}
	for _, o := range g.C.Outputs {
		if r.CriticalOutput < 0 || r.Arrival[o] > r.Tmax {
			r.Tmax = r.Arrival[o]
			r.CriticalOutput = o
		}
	}
	return r
}

// CriticalPath walks back from the critical output picking the latest
// fanin at every gate, returning the path from a primary input to the
// output (inclusive).
func (r *DetResult) CriticalPath(m *delay.Model) []netlist.NodeID {
	g := m.G
	var rev []netlist.NodeID
	id := r.CriticalOutput
	for {
		rev = append(rev, id)
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			break
		}
		best := nd.Fanin[0]
		bestA := r.Arrival[best] + m.PinOff(id, 0)
		for k, f := range nd.Fanin[1:] {
			if a := r.Arrival[f] + m.PinOff(id, k+1); a > bestA {
				best, bestA = f, a
			}
		}
		id = best
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
