package ssta

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

func TestPolarityOf(t *testing.T) {
	cases := map[string]Polarity{
		"inv": Inverting, "not": Inverting, "nand2": Inverting,
		"nand4": Inverting, "nor3": Inverting,
		"buf": NonInverting, "and2": NonInverting, "or4": NonInverting,
		"xor2": Mixing, "xnor2": Mixing, "mystery": Mixing,
	}
	for typ, want := range cases {
		if got := PolarityOf(typ); got != want {
			t.Errorf("PolarityOf(%q) = %v, want %v", typ, got, want)
		}
	}
}

func TestRiseFallZeroSkewMatchesPlain(t *testing.T) {
	// With zero skew the two senses collapse and Tmax must equal the
	// single-sense analysis on inverting-only circuits.
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Chain(6), netlist.Fig2Example()} {
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(netlist.MustCompile(c), lib)
		S := m.UnitSizes()
		plain := Analyze(m, S, false).Tmax
		rf := AnalyzeRiseFall(m, S, 0)
		// Rise and fall are identical, so max(rise, fall) of two
		// identical (and perfectly dependent) arrivals equals each —
		// but the independent Max2 inflates slightly; compare the
		// per-sense delays instead.
		if !approxEq(rf.TmaxRise.Mu, plain.Mu, 1e-9) || !approxEq(rf.TmaxFall.Mu, plain.Mu, 1e-9) {
			t.Errorf("%s: per-sense mu %v/%v vs plain %v",
				c.Name, rf.TmaxRise.Mu, rf.TmaxFall.Mu, plain.Mu)
		}
		if !approxEq(rf.TmaxRise.Var, plain.Var, 1e-9) {
			t.Errorf("%s: per-sense var %v vs plain %v", c.Name, rf.TmaxRise.Var, plain.Var)
		}
	}
}

func TestRiseFallSkewAlternatesOnInverterChain(t *testing.T) {
	// On an inverter chain, a rising output at stage i comes from a
	// falling output at stage i-1: the senses alternate, so each
	// path mixes (1+skew) and (1-skew) delays roughly evenly and the
	// worst sense exceeds the zero-skew delay by much less than
	// skew * depth.
	m := delay.MustBind(netlist.MustCompile(netlist.Chain(10)), delay.Default())
	S := m.UnitSizes()
	base := AnalyzeRiseFall(m, S, 0)
	skewed := AnalyzeRiseFall(m, S, 0.3)
	if skewed.Tmax.Mu <= base.Tmax.Mu {
		t.Errorf("skew did not increase worst delay: %v vs %v", skewed.Tmax.Mu, base.Tmax.Mu)
	}
	// Full-corner bound would be (1+0.3)*base; alternation keeps the
	// mean far below that.
	if skewed.Tmax.Mu >= 1.2*base.Tmax.Mu {
		t.Errorf("alternation lost: %v vs bound %v", skewed.Tmax.Mu, 1.3*base.Tmax.Mu)
	}
}

func TestRiseFallNonInvertingChainAccumulatesSkew(t *testing.T) {
	// A buffer chain preserves the sense, so the rising output delay
	// accumulates the full (1+skew) factor at every stage.
	c := netlist.New("bufchain")
	c.AddInput("in")
	prev := "in"
	for i := 0; i < 8; i++ {
		name := "b" + string(rune('0'+i))
		c.AddGate(name, "buf", prev)
		prev = name
	}
	c.MarkOutput(prev)
	m := delay.MustBind(netlist.MustCompile(c), delay.Default())
	S := m.UnitSizes()
	base := AnalyzeRiseFall(m, S, 0)
	skewed := AnalyzeRiseFall(m, S, 0.3)
	if !approxEq(skewed.TmaxRise.Mu, 1.3*base.TmaxRise.Mu, 1e-9) {
		t.Errorf("buffer chain rise %v, want %v", skewed.TmaxRise.Mu, 1.3*base.TmaxRise.Mu)
	}
	if !approxEq(skewed.TmaxFall.Mu, 0.7*base.TmaxFall.Mu, 1e-9) {
		t.Errorf("buffer chain fall %v, want %v", skewed.TmaxFall.Mu, 0.7*base.TmaxFall.Mu)
	}
}

func TestRiseFallMixingGateUsesWorstSense(t *testing.T) {
	// An XOR after a skewed buffer must see the max of rise and fall.
	c := netlist.New("x")
	c.AddInput("a")
	c.AddInput("b")
	c.AddGate("bufa", "buf", "a")
	c.AddGate("x", "xor2", "bufa", "b")
	c.MarkOutput("x")
	m := delay.MustBind(netlist.MustCompile(c), delay.Default())
	S := m.UnitSizes()
	rf := AnalyzeRiseFall(m, S, 0.4)
	// The XOR's inputs' worst sense is the slow rising buffer; both
	// XOR output senses must be at least that plus the XOR's faster
	// (falling) delay.
	bufRise := rf.Rise[m.G.C.MustID("bufa")]
	xorFall := m.GateMu(m.G.C.MustID("x"), S) * (1 - 0.4)
	if rf.TmaxFall.Mu < bufRise.Mu+xorFall-1e-9 {
		t.Errorf("mixing gate ignored worst input sense: %v < %v",
			rf.TmaxFall.Mu, bufRise.Mu+xorFall)
	}
}

// TestRiseFallExtremeSkewStaysMonotone pins the symmetric floor: a
// skew beyond +/-1 would make one sense's gate delay negative without
// it, letting an arrival precede its own cause. Both senses must stay
// non-negative and monotone along fanin edges for deep skews of either
// sign. (The floor used to apply to falling delays only, so skew < -1
// produced negative rising delays.)
func TestRiseFallExtremeSkewStaysMonotone(t *testing.T) {
	models := map[string]*delay.Model{
		"tree7": delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree()),
		"apex1": delay.MustBind(netlist.MustCompile(netlist.Apex1Like()), delay.Default()),
		"chain": delay.MustBind(netlist.MustCompile(netlist.Chain(8)), delay.Default()),
	}
	for _, skew := range []float64{-1.5, 1.5} {
		for name, m := range models {
			rf := AnalyzeRiseFall(m, m.UnitSizes(), skew)
			g := m.G
			for _, id := range g.Topo {
				if rf.Rise[id].Mu < 0 || rf.Fall[id].Mu < 0 {
					t.Fatalf("%s skew %v: node %d negative arrival: rise %v fall %v",
						name, skew, id, rf.Rise[id].Mu, rf.Fall[id].Mu)
				}
				nd := &g.C.Nodes[id]
				if nd.Kind == netlist.KindInput {
					continue
				}
				pol := PolarityOf(nd.Type)
				for k, f := range nd.Fanin {
					off := m.PinOff(id, k)
					// Lower bounds on the folded input arrival per
					// output sense, mirroring the polarity coupling.
					var riseLB, fallLB float64
					switch pol {
					case Inverting:
						riseLB, fallLB = rf.Fall[f].Mu, rf.Rise[f].Mu
					case NonInverting:
						riseLB, fallLB = rf.Rise[f].Mu, rf.Fall[f].Mu
					default:
						worst := rf.Rise[f].Mu
						if rf.Fall[f].Mu > worst {
							worst = rf.Fall[f].Mu
						}
						riseLB, fallLB = worst, worst
					}
					if rf.Rise[id].Mu < riseLB+off-1e-12 {
						t.Fatalf("%s skew %v: node %d rise %v below fanin %d bound %v",
							name, skew, id, rf.Rise[id].Mu, f, riseLB+off)
					}
					if rf.Fall[id].Mu < fallLB+off-1e-12 {
						t.Fatalf("%s skew %v: node %d fall %v below fanin %d bound %v",
							name, skew, id, rf.Fall[id].Mu, f, fallLB+off)
					}
				}
			}
			if rf.Tmax.Mu < 0 {
				t.Fatalf("%s skew %v: negative Tmax %v", name, skew, rf.Tmax.Mu)
			}
		}
	}
}
