package ssta

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

func TestPolarityOf(t *testing.T) {
	cases := map[string]Polarity{
		"inv": Inverting, "not": Inverting, "nand2": Inverting,
		"nand4": Inverting, "nor3": Inverting,
		"buf": NonInverting, "and2": NonInverting, "or4": NonInverting,
		"xor2": Mixing, "xnor2": Mixing, "mystery": Mixing,
	}
	for typ, want := range cases {
		if got := PolarityOf(typ); got != want {
			t.Errorf("PolarityOf(%q) = %v, want %v", typ, got, want)
		}
	}
}

func TestRiseFallZeroSkewMatchesPlain(t *testing.T) {
	// With zero skew the two senses collapse and Tmax must equal the
	// single-sense analysis on inverting-only circuits.
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Chain(6), netlist.Fig2Example()} {
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(netlist.MustCompile(c), lib)
		S := m.UnitSizes()
		plain := Analyze(m, S, false).Tmax
		rf := AnalyzeRiseFall(m, S, 0)
		// Rise and fall are identical, so max(rise, fall) of two
		// identical (and perfectly dependent) arrivals equals each —
		// but the independent Max2 inflates slightly; compare the
		// per-sense delays instead.
		if !close(rf.TmaxRise.Mu, plain.Mu, 1e-9) || !close(rf.TmaxFall.Mu, plain.Mu, 1e-9) {
			t.Errorf("%s: per-sense mu %v/%v vs plain %v",
				c.Name, rf.TmaxRise.Mu, rf.TmaxFall.Mu, plain.Mu)
		}
		if !close(rf.TmaxRise.Var, plain.Var, 1e-9) {
			t.Errorf("%s: per-sense var %v vs plain %v", c.Name, rf.TmaxRise.Var, plain.Var)
		}
	}
}

func TestRiseFallSkewAlternatesOnInverterChain(t *testing.T) {
	// On an inverter chain, a rising output at stage i comes from a
	// falling output at stage i-1: the senses alternate, so each
	// path mixes (1+skew) and (1-skew) delays roughly evenly and the
	// worst sense exceeds the zero-skew delay by much less than
	// skew * depth.
	m := delay.MustBind(netlist.MustCompile(netlist.Chain(10)), delay.Default())
	S := m.UnitSizes()
	base := AnalyzeRiseFall(m, S, 0)
	skewed := AnalyzeRiseFall(m, S, 0.3)
	if skewed.Tmax.Mu <= base.Tmax.Mu {
		t.Errorf("skew did not increase worst delay: %v vs %v", skewed.Tmax.Mu, base.Tmax.Mu)
	}
	// Full-corner bound would be (1+0.3)*base; alternation keeps the
	// mean far below that.
	if skewed.Tmax.Mu >= 1.2*base.Tmax.Mu {
		t.Errorf("alternation lost: %v vs bound %v", skewed.Tmax.Mu, 1.3*base.Tmax.Mu)
	}
}

func TestRiseFallNonInvertingChainAccumulatesSkew(t *testing.T) {
	// A buffer chain preserves the sense, so the rising output delay
	// accumulates the full (1+skew) factor at every stage.
	c := netlist.New("bufchain")
	c.AddInput("in")
	prev := "in"
	for i := 0; i < 8; i++ {
		name := "b" + string(rune('0'+i))
		c.AddGate(name, "buf", prev)
		prev = name
	}
	c.MarkOutput(prev)
	m := delay.MustBind(netlist.MustCompile(c), delay.Default())
	S := m.UnitSizes()
	base := AnalyzeRiseFall(m, S, 0)
	skewed := AnalyzeRiseFall(m, S, 0.3)
	if !close(skewed.TmaxRise.Mu, 1.3*base.TmaxRise.Mu, 1e-9) {
		t.Errorf("buffer chain rise %v, want %v", skewed.TmaxRise.Mu, 1.3*base.TmaxRise.Mu)
	}
	if !close(skewed.TmaxFall.Mu, 0.7*base.TmaxFall.Mu, 1e-9) {
		t.Errorf("buffer chain fall %v, want %v", skewed.TmaxFall.Mu, 0.7*base.TmaxFall.Mu)
	}
}

func TestRiseFallMixingGateUsesWorstSense(t *testing.T) {
	// An XOR after a skewed buffer must see the max of rise and fall.
	c := netlist.New("x")
	c.AddInput("a")
	c.AddInput("b")
	c.AddGate("bufa", "buf", "a")
	c.AddGate("x", "xor2", "bufa", "b")
	c.MarkOutput("x")
	m := delay.MustBind(netlist.MustCompile(c), delay.Default())
	S := m.UnitSizes()
	rf := AnalyzeRiseFall(m, S, 0.4)
	// The XOR's inputs' worst sense is the slow rising buffer; both
	// XOR output senses must be at least that plus the XOR's faster
	// (falling) delay.
	bufRise := rf.Rise[m.G.C.MustID("bufa")]
	xorFall := m.GateMu(m.G.C.MustID("x"), S) * (1 - 0.4)
	if rf.TmaxFall.Mu < bufRise.Mu+xorFall-1e-9 {
		t.Errorf("mixing gate ignored worst input sense: %v < %v",
			rf.TmaxFall.Mu, bufRise.Mu+xorFall)
	}
}
