package ssta

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

func TestSlacksChainDecomposition(t *testing.T) {
	// On a chain with k = 0 the slack at every node equals
	// deadline - deterministic circuit delay (one path, exact
	// decomposition).
	g := netlist.MustCompile(netlist.Chain(5))
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	det := DetAnalyze(m, S)
	deadline := det.Tmax + 2
	sr := Slacks(m, S, 0, deadline)
	for _, id := range g.C.GateIDs() {
		if !approxEq(sr.Slack[id], 2, 1e-9) {
			t.Errorf("slack(%s) = %v, want 2", g.C.Nodes[id].Name, sr.Slack[id])
		}
	}
	if !approxEq(sr.WorstSlack, 2, 1e-9) {
		t.Errorf("worst slack = %v", sr.WorstSlack)
	}
}

func TestSlacksNegativeWhenDeadlineMissed(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	S := m.UnitSizes()
	r := Analyze(m, S, false)
	// Deadline below the mean circuit delay: worst slack negative.
	sr := Slacks(m, S, 0, r.Tmax.Mu-1)
	if sr.WorstSlack >= 0 {
		t.Errorf("worst slack = %v, want negative", sr.WorstSlack)
	}
	// Deadline above it by a margin: everything positive at k = 0.
	sr = Slacks(m, S, 0, r.Tmax.Mu+1)
	if sr.WorstSlack <= 0 {
		t.Errorf("worst slack = %v, want positive", sr.WorstSlack)
	}
}

func TestSlacksQuantileTighter(t *testing.T) {
	// Raising k can only shrink slack (larger arrival quantiles,
	// larger per-stage budgets).
	m := delay.MustBind(netlist.MustCompile(netlist.Apex2Like()), delay.Default())
	S := m.UnitSizes()
	det := DetAnalyze(m, S)
	d := det.Tmax * 1.3
	s0 := Slacks(m, S, 0, d)
	s3 := Slacks(m, S, 3, d)
	if s3.WorstSlack >= s0.WorstSlack {
		t.Errorf("k=3 worst slack %v not below k=0 %v", s3.WorstSlack, s0.WorstSlack)
	}
}

func TestSlacksConservativeVsCircuitCheck(t *testing.T) {
	// If the circuit-level quantile check passes with margin eps,
	// per-node slacks can be negative (conservative decomposition)
	// but the output node's slack must be >= the true margin is not
	// guaranteed either; what IS guaranteed: if worst slack >= 0 then
	// the circuit quantile meets the deadline.
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	S := m.UnitSizes()
	r := Analyze(m, S, false)
	d := r.Tmax.Mu + 3*r.Tmax.Sigma() + 0.8
	sr := Slacks(m, S, 3, d)
	if sr.WorstSlack >= 0 {
		if q := r.Tmax.Mu + 3*r.Tmax.Sigma(); q > d {
			t.Errorf("positive slacks but quantile %v misses deadline %v", q, d)
		}
	}
}

func TestCriticalNodesSorted(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Apex2Like()), delay.Default())
	S := m.UnitSizes()
	det := DetAnalyze(m, S)
	sr := Slacks(m, S, 0, det.Tmax*0.9) // infeasible: many negatives
	crit := sr.CriticalNodes(0)
	if len(crit) == 0 {
		t.Fatal("no critical nodes under an infeasible deadline")
	}
	for i := 1; i < len(crit); i++ {
		if sr.Slack[crit[i]] < sr.Slack[crit[i-1]]-1e-12 {
			t.Errorf("critical list not sorted at %d", i)
		}
	}
	// All listed nodes are actually below threshold.
	for _, id := range crit {
		if sr.Slack[id] >= 0 {
			t.Errorf("node %d has non-negative slack %v", id, sr.Slack[id])
		}
	}
}

func TestSlacksUnreachedNodesInfinite(t *testing.T) {
	// A dangling gate (not an output, no fanout) has no requirement.
	c := netlist.New("t")
	c.AddInput("a")
	c.AddGate("used", "inv", "a")
	c.AddGate("dead", "inv", "a")
	c.MarkOutput("used")
	m := delay.MustBind(netlist.MustCompile(c), delay.Default())
	sr := Slacks(m, m.UnitSizes(), 0, 10)
	if !math.IsInf(sr.Required[c.MustID("dead")], 1) {
		t.Errorf("dead requirement = %v, want +Inf", sr.Required[c.MustID("dead")])
	}
}
