package ssta

import (
	"math"

	"repro/internal/delay"
	"repro/internal/dist"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// This file implements the correlation-aware extension the paper's
// section 7 names as future work: arrival times carry a canonical
// first-order form
//
//	T = a0 + sum_g a_g * z_g + independent residual
//
// over one unit-normal source z_g per delay element (each gate's delay
// contributes its own source, as does each primary input with
// uncertain arrival). Shared ancestry between reconverging paths then
// shows up as a nonzero covariance at every merge, and the stochastic
// maximum uses Clark's correlated moment formulas with
// tightness-weighted linear mixing — the construction later made
// standard by parameterized SSTA. The residual keeps the represented
// variance exact: whatever variance the linear mixing loses at a max
// is re-injected as an independent term.
//
// Cost: one coefficient per gate per node, O(V * G) time and memory —
// a factor G above the independence sweep, the price of tracking
// correlation exactly to first order.

// canonicalForm is one arrival time in canonical form. The coeff
// vector is indexed by NodeID (sources live in the node id space).
type canonicalForm struct {
	mean  float64
	coeff []float64
	indep float64 // variance of the independent residual
}

func (f *canonicalForm) variance() float64 {
	v := f.indep
	for _, c := range f.coeff {
		v += c * c
	}
	return v
}

// CanonicalResult reports a correlation-aware statistical sweep.
type CanonicalResult struct {
	// Tmax holds the circuit delay moments with path correlations
	// tracked to first order.
	Tmax stats.MV
	// Arrival holds per-node arrival moments.
	Arrival []stats.MV
	// OutputCorr is the correlation coefficient between the first two
	// primary outputs (NaN when the circuit has fewer than two); it
	// quantifies how far the independence assumption of the paper's
	// eq 18a is from the truth on this circuit.
	OutputCorr float64
}

// AnalyzeCanonical runs the correlation-aware forward sweep.
func AnalyzeCanonical(m *delay.Model, S []float64) *CanonicalResult {
	g := m.G
	n := len(g.C.Nodes)
	forms := make([]*canonicalForm, n)
	res := &CanonicalResult{Arrival: make([]stats.MV, n), OutputCorr: math.NaN()}

	for _, id := range g.Topo {
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			f := &canonicalForm{mean: m.Arrival[id].Mu, coeff: make([]float64, n)}
			// The input's own uncertainty is its own source.
			f.coeff[id] = m.Arrival[id].Sigma()
			forms[id] = f
			res.Arrival[id] = m.Arrival[id]
			continue
		}
		// Max over fanins, two at a time, each shifted by its pin
		// offset (eq 1).
		acc := shiftForm(forms[nd.Fanin[0]], m.PinOff(id, 0))
		for k, fi := range nd.Fanin[1:] {
			acc = maxCanonical(acc, shiftForm(forms[fi], m.PinOff(id, k+1)))
		}
		// Add the gate delay: mean plus the gate's own source.
		mv := m.GateMV(id, S)
		f := &canonicalForm{mean: acc.mean + mv.Mu, coeff: make([]float64, n), indep: acc.indep}
		copy(f.coeff, acc.coeff)
		f.coeff[id] += mv.Sigma()
		forms[id] = f
		res.Arrival[id] = stats.MV{Mu: f.mean, Var: f.variance()}
	}

	outs := g.C.Outputs
	if len(outs) >= 2 {
		res.OutputCorr = correlation(forms[outs[0]], forms[outs[1]])
	}
	acc := forms[outs[0]]
	for _, o := range outs[1:] {
		acc = maxCanonical(acc, forms[o])
	}
	res.Tmax = stats.MV{Mu: acc.mean, Var: acc.variance()}
	return res
}

// correlation returns the correlation coefficient of two forms.
func correlation(x, y *canonicalForm) float64 {
	var cov float64
	for i, xc := range x.coeff {
		cov += xc * y.coeff[i]
	}
	d := math.Sqrt(x.variance() * y.variance())
	if d == 0 {
		return 0
	}
	return cov / d
}

// maxCanonical computes the canonical form of max(X, Y) using Clark's
// correlated moments and tightness mixing.
func maxCanonical(x, y *canonicalForm) *canonicalForm {
	varX := x.variance()
	varY := y.variance()
	var cov float64
	for i, xc := range x.coeff {
		cov += xc * y.coeff[i]
	}
	theta2 := varX + varY - 2*cov
	if theta2 < 0 {
		theta2 = 0
	}

	// Degenerate: the difference X - Y is (numerically)
	// deterministic, so the max is whichever operand has the larger
	// mean.
	if theta2 <= 1e-24 {
		if x.mean >= y.mean {
			return cloneForm(x)
		}
		return cloneForm(y)
	}
	theta := math.Sqrt(theta2)
	alpha := (x.mean - y.mean) / theta
	// Far-separated operands: copy the winner (also avoids useless
	// mixing work on long topological chains).
	if alpha > 8 {
		return cloneForm(x)
	}
	if alpha < -8 {
		return cloneForm(y)
	}

	tx := dist.CDF(alpha) // tightness: P(X >= Y)
	ty := 1 - tx
	pdf := dist.PDF(alpha)

	mean := x.mean*tx + y.mean*ty + theta*pdf
	ex2 := (varX+x.mean*x.mean)*tx + (varY+y.mean*y.mean)*ty +
		(x.mean+y.mean)*theta*pdf
	varC := ex2 - mean*mean
	if varC < 0 {
		varC = 0
	}

	out := &canonicalForm{mean: mean, coeff: make([]float64, len(x.coeff))}
	var linVar float64
	for i := range out.coeff {
		c := tx*x.coeff[i] + ty*y.coeff[i]
		out.coeff[i] = c
		linVar += c * c
	}
	// Independent residuals mix by squared tightness (they are
	// mutually independent and independent of every shared source).
	mixedIndep := tx*tx*x.indep + ty*ty*y.indep
	// Residual keeps the total variance exact.
	resid := varC - linVar - mixedIndep
	if resid < 0 {
		// The linear mixing can slightly overshoot the exact variance
		// when the operands are strongly correlated; rescale the
		// coefficients to preserve the total.
		scale := math.Sqrt(varC / (linVar + mixedIndep))
		for i := range out.coeff {
			out.coeff[i] *= scale
		}
		mixedIndep *= scale * scale
		resid = 0
	}
	out.indep = mixedIndep + resid
	return out
}

// shiftForm translates a form's mean by a constant; zero shifts share
// the input (maxCanonical never mutates its operands).
func shiftForm(f *canonicalForm, off float64) *canonicalForm {
	if off == 0 {
		return f
	}
	c := cloneForm(f)
	c.mean += off
	return c
}

func cloneForm(f *canonicalForm) *canonicalForm {
	c := &canonicalForm{mean: f.mean, coeff: make([]float64, len(f.coeff)), indep: f.indep}
	copy(c.coeff, f.coeff)
	return c
}
