package ssta

import (
	"testing"
)

// The BatchCorner/BatchForward benchmark families measure what the
// K-lane structure-of-arrays sweep buys over K independent scalar
// traversals on the 1200-gate netlist. One scalar op is one full
// traversal, one BatchK op is K sweeps in one traversal, so the
// speedup at K is K * scalar / batchK. `make bench-batch` collects
// both sides into BENCH_batch.json.

func benchCornerScalar(b *testing.B, sweeps int) {
	m := parallelTestModels(b)["gen1200"]
	S := rampSizes(m)
	ks := []float64{-3, -2, -1, 0, 0.5, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < sweeps; s++ {
			cornerSweep(m, S, ks[s])
		}
	}
}

func benchCornerBatch(b *testing.B, K int) {
	m := parallelTestModels(b)["gen1200"]
	S := rampSizes(m)
	ks := []float64{-3, -2, -1, 0, 0.5, 1, 2, 3}
	db := NewDetBatch(m, ks[:K], 1)
	db.Sweep(S)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Sweep(S)
	}
}

// One scalar corner traversal: the per-sweep baseline.
func BenchmarkCornerScalarGen1200(b *testing.B) { benchCornerScalar(b, 1) }

// Eight scalar traversals: the work BatchK8 replaces in one pass.
func BenchmarkCornerScalarX8Gen1200(b *testing.B) { benchCornerScalar(b, 8) }

func BenchmarkCornerBatchK1Gen1200(b *testing.B) { benchCornerBatch(b, 1) }
func BenchmarkCornerBatchK4Gen1200(b *testing.B) { benchCornerBatch(b, 4) }
func BenchmarkCornerBatchK8Gen1200(b *testing.B) { benchCornerBatch(b, 8) }

func benchForwardScalar(b *testing.B, sweeps int) {
	m := parallelTestModels(b)["gen1200"]
	S := rampSizes(m)
	sc := Scenario{S: S}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < sweeps; s++ {
			AnalyzeScenario(m, sc)
		}
	}
}

func benchForwardBatch(b *testing.B, K int) {
	m := parallelTestModels(b)["gen1200"]
	S := rampSizes(m)
	bt := NewBatch(m, K, BatchOptions{Workers: 1})
	for l := 0; l < K; l++ {
		bt.SetScenario(l, Scenario{S: S})
	}
	bt.Forward()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Forward()
	}
}

func benchGradBatch(b *testing.B, K int) {
	m := parallelTestModels(b)["gen1200"]
	S := rampSizes(m)
	bt := NewBatch(m, K, BatchOptions{Workers: 1})
	for l := 0; l < K; l++ {
		bt.SetScenario(l, Scenario{S: S})
	}
	bt.GradsMuPlusKSigma(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.GradsMuPlusKSigma(3)
	}
}

func BenchmarkForwardScalarGen1200(b *testing.B)   { benchForwardScalar(b, 1) }
func BenchmarkForwardScalarX8Gen1200(b *testing.B) { benchForwardScalar(b, 8) }

func BenchmarkForwardBatchK1Gen1200(b *testing.B) { benchForwardBatch(b, 1) }
func BenchmarkForwardBatchK4Gen1200(b *testing.B) { benchForwardBatch(b, 4) }
func BenchmarkForwardBatchK8Gen1200(b *testing.B) { benchForwardBatch(b, 8) }

func BenchmarkGradBatchK8Gen1200(b *testing.B) { benchGradBatch(b, 8) }
