package ssta

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// This file implements the hierarchical block-parallel SSTA engine.
// The flat levelized sweeps walk one global topological order: every
// forward/adjoint pass streams the whole arrival/tape arena through
// cache and the per-level barriers serialize unrelated logic cones.
// Hier instead runs on a partition.Partition — the DAG cut into
// ~cache-sized, level-pure blocks — and schedules *blocks*:
//
//   - Forward: a dataflow scheduler where workers claim whole blocks
//     as their fanin blocks complete. No global level barrier: a deep
//     narrow cone does not stall a wide independent one. Each node's
//     moments are a pure function of its fanins' final moments and
//     every node owns its slots, so any dependency-respecting
//     schedule produces bit-identical arrivals — block-topological
//     evaluation with exact boundary arrivals is a pure reordering
//     of the flat sweep's float ops.
//   - Adjoint: the same scheduler on the reversed block DAG. Bitwise
//     determinism needs more care because adjoints *accumulate*
//     across fanout edges; Hier therefore never accumulates
//     concurrently. Every contribution goes to a writer-owned slot
//     (per fanin-pin for arrival adjoints, per fanout-pin plus a
//     self slot for the speed-factor gradient), and each node folds
//     its incoming slots in the exact accumulation order of the
//     serial Backward sweep — consumers ordered by (level desc,
//     level position asc), pins in the serial write order. The fold
//     performs the same additions in the same order as Backward, so
//     the gradient is bit-identical for any worker count and any
//     block size.
//   - Statistical timing macros: the engine is persistent. A block
//     whose member sizes and input boundary arrivals are unchanged
//     since its last evaluation simply keeps its slab contents — the
//     cached macro outputs are replayed by not touching them, an
//     O(1) skip. SetSize dirties exactly the blocks holding the
//     S-dependent gates (delay.Model.SDependents — the same dirty
//     rule as ssta.Inc, lifted to block granularity), and Update
//     re-evaluates dirty blocks level by level with bitwise early
//     cutoff on block boundary outputs: a re-evaluated block whose
//     arrivals come back bit-identical does not dirty its fanout
//     blocks.
//
// Slab layout: arrivals and gate delays live in NodeID-indexed slabs
// shared with the flat sweeps' code paths, while the adjoint tape is
// one arena carved in block order — a block's tape span is
// contiguous, so re-evaluating or back-propagating a block walks a
// dense cache-resident range.

// HierOptions configures a hierarchical engine.
type HierOptions struct {
	// BlockTarget is the aimed-for nodes per block;
	// <= 0 uses partition.DefaultBlockTarget.
	BlockTarget int
	// Workers bounds the dataflow scheduler's parallelism: <= 0 uses
	// one worker per CPU, 1 forces serial execution. Results are
	// bit-identical for every worker count; only the serial path is
	// allocation-free in the steady state.
	Workers int
	// Recorder, when non-nil, receives worker-invariant "hier.block"
	// and "hier.update" events per Update with work pending, and one
	// "hier.sweep" event per full resweep. Nil disables
	// instrumentation at zero cost.
	Recorder telemetry.Recorder
}

// Hier is a persistent hierarchical block-parallel SSTA engine. It is
// not safe for concurrent use; one engine serves one evaluation loop.
type Hier struct {
	m       *delay.Model
	p       *partition.Partition
	workers int
	rec     telemetry.Recorder

	// s is the engine's current speed-factor assignment (owned copy).
	s []float64

	// res holds the forward state; res.gateFold[id] is a fixed
	// subslice of tapeArena, carved once in block order so a block's
	// tape span is contiguous.
	res       Result
	tapeArena []stats.Jac2x4

	// load caches every gate's capacitive load (delay.Model.Load, a
	// pure function of the fanout speed factors). SetSize recomputes
	// exactly the fanin drivers' entries — the only loads S[id]
	// appears in — so warm sweeps skip the per-gate fanout scan in
	// both the forward delay and the gradient accumulation. Cached
	// values are bitwise what Load would recompute.
	load []float64

	// Adjoint state. cMu/cVar are per fanin-pin arrival-adjoint
	// contribution slots (offsets G.FaninOff); gSelf/gPin are the
	// gradient's self and per fanout-pin slots (offsets G.FanoutOff).
	// active[id] records whether gate id's folded adjoint was nonzero
	// this sweep — the serial sweep's skip condition, needed so folds
	// ignore slots of skipped writers exactly like Backward never
	// accumulates them.
	active      []bool
	dmu, grad   []float64
	cMu, cVar   []float64
	gSelf, gPin []float64
	// adj is the interleaved adjoint slab: adj[2id] / adj[2id+1] hold
	// node id's (mu, var) arrival adjoint. The serial sweep
	// accumulates into it directly and a node's pair shares a cache
	// line, halving the lines touched by the scattered fanin
	// accumulation; the parallel path only seeds it (outputs) and
	// reads each node's pair once before folding slots.
	adj []float64
	// inAdjSlot/inAdjFrom list, per node (CSR offsets G.FanoutOff —
	// one incoming contribution per fanout pin), the cMu/cVar slot
	// indices and their writer gates in the serial accumulation
	// order. inGrad* is the analogue for gradient pin terms (CSR
	// offsets inGradOff — one entry per gate-driven fanin pin).
	inAdjSlot, inAdjFrom   []int32
	inGradOff              []int
	inGradSlot, inGradFrom []int32

	// Dataflow scheduler scratch and bound method values (created
	// once so the hot paths do not allocate).
	pending   []int32
	evalFwdFn func(int)
	evalBwdFn func(int)
	markFn    func(netlist.NodeID)

	// Dirty tracking at block granularity: flags plus per-level
	// pending block lists (insertion-ordered, deterministic because
	// all marking happens on the coordinating goroutine), the dirty
	// level span, per-node changed flags and per-block changed
	// counts (written in the compute phase, each block owns its
	// slot).
	dirtyB         []bool
	dirtyByLevel   [][]int32
	minLvl, maxLvl int
	changed        []bool
	blkChanged     []int32
	evalList       []int32

	updates int // Update calls that had work, for the event stream
}

// NewHier partitions the model's graph and builds an engine at the
// speed-factor assignment S (copied), running the initial full taped
// sweep through the dataflow scheduler.
func NewHier(m *delay.Model, S []float64, opt HierOptions) *Hier {
	g := m.G
	n := len(g.C.Nodes)
	if len(S) != n {
		panic(fmt.Sprintf("ssta: NewHier got %d sizes for %d nodes", len(S), n))
	}
	p := partition.New(g, partition.Options{BlockTarget: opt.BlockTarget})
	h := &Hier{
		m:       m,
		p:       p,
		workers: resolveWorkers(opt.Workers),
		rec:     opt.Recorder,
		s:       append([]float64(nil), S...),
		res: Result{
			Arrival:   make([]stats.MV, n),
			GateDelay: make([]stats.MV, n),
			withTape:  true,
			gateFold:  make([][]stats.Jac2x4, n),
		},
		load:         make([]float64, n),
		active:       make([]bool, n),
		dmu:          make([]float64, n),
		grad:         make([]float64, n),
		cMu:          make([]float64, g.Edges),
		cVar:         make([]float64, g.Edges),
		gSelf:        make([]float64, n),
		gPin:         make([]float64, g.Edges),
		adj:          make([]float64, 2*n),
		pending:      make([]int32, len(p.Blocks)),
		dirtyB:       make([]bool, len(p.Blocks)),
		dirtyByLevel: make([][]int32, len(g.Levels)),
		changed:      make([]bool, n),
		blkChanged:   make([]int32, len(p.Blocks)),
	}
	h.clearSpan()
	h.evalFwdFn = h.evalBlockForward
	h.evalBwdFn = h.evalBlockBackward
	h.markFn = func(id netlist.NodeID) { h.markBlock(p.BlockOf[id]) }
	for i := range g.C.Nodes {
		if g.C.Nodes[i].Kind == netlist.KindGate {
			h.load[i] = m.Load(netlist.NodeID(i), h.s)
		}
	}

	// Carve the per-gate tape slots from one arena in block order:
	// a block's tape span is contiguous.
	total := 0
	for i := range g.C.Nodes {
		if k := len(g.C.Nodes[i].Fanin); k > 1 {
			total += k - 1
		}
	}
	h.tapeArena = make([]stats.Jac2x4, total)
	at := 0
	for b := range p.Blocks {
		for _, id := range p.Blocks[b].Nodes {
			if k := len(g.C.Nodes[id].Fanin); k > 1 {
				h.res.gateFold[id] = h.tapeArena[at : at+k-1 : at+k-1]
				at += k - 1
			}
		}
	}
	if no := len(g.C.Outputs); no > 1 {
		h.res.outFold = make([]stats.Jac2x4, no-1)
	}

	h.buildFoldOrders()
	h.Resweep()
	return h
}

// buildFoldOrders precomputes, for every node, its incoming adjoint
// and gradient contribution slots in the exact accumulation order of
// the serial Backward sweep: consumers visited by (level desc, level
// position asc), fanin pins in the serial write order (high pin to
// pin 0), gradient fanout pins ascending. Appending while iterating
// consumers in that global order builds each node's list already
// sorted — one O(E) pass, no per-node sorts.
func (h *Hier) buildFoldOrders() {
	g := h.m.G
	n := len(g.C.Nodes)
	h.inAdjSlot = make([]int32, g.Edges)
	h.inAdjFrom = make([]int32, g.Edges)
	cur := make([]int, n)
	copy(cur, g.FanoutOff[:n])
	for l := len(g.Levels) - 1; l >= 1; l-- {
		for _, v := range g.Levels[l] {
			fanin := g.C.Nodes[v].Fanin
			for k := len(fanin) - 1; k >= 0; k-- {
				f := fanin[k]
				h.inAdjSlot[cur[f]] = int32(g.FaninOff[v] + k)
				h.inAdjFrom[cur[f]] = int32(v)
				cur[f]++
			}
		}
	}

	h.inGradOff = make([]int, n+1)
	for i := range g.C.Nodes {
		cnt := 0
		for _, f := range g.C.Nodes[i].Fanin {
			if g.C.Nodes[f].Kind == netlist.KindGate {
				cnt++
			}
		}
		h.inGradOff[i+1] = h.inGradOff[i] + cnt
	}
	h.inGradSlot = make([]int32, h.inGradOff[n])
	h.inGradFrom = make([]int32, h.inGradOff[n])
	copy(cur, h.inGradOff[:n])
	for l := len(g.Levels) - 1; l >= 1; l-- {
		for _, u := range g.Levels[l] {
			for j, v := range g.Fanout[u] {
				h.inGradSlot[cur[v]] = int32(g.FanoutOff[u] + j)
				h.inGradFrom[cur[v]] = int32(u)
				cur[v]++
			}
		}
	}
}

// clearSpan resets the dirty level span to the empty sentinel.
func (h *Hier) clearSpan() {
	h.minLvl, h.maxLvl = len(h.m.G.Levels), -1
}

// markBlock queues a block for re-evaluation (idempotent).
func (h *Hier) markBlock(b int32) {
	if h.dirtyB[b] {
		return
	}
	h.dirtyB[b] = true
	l := h.p.Blocks[b].Level
	h.dirtyByLevel[l] = append(h.dirtyByLevel[l], b)
	if l < h.minLvl {
		h.minLvl = l
	}
	if l > h.maxLvl {
		h.maxLvl = l
	}
}

// SetSize sets gate id's speed factor and invalidates the macros of
// the blocks holding the S-dependent gates (delay.Model.SDependents).
// A bit-identical size is a no-op. The change takes effect at the
// next Update.
func (h *Hier) SetSize(id netlist.NodeID, s float64) {
	if h.m.G.C.Nodes[id].Kind != netlist.KindGate {
		panic("ssta: Hier.SetSize on a non-gate node")
	}
	if h.s[id] == s {
		return
	}
	h.s[id] = s
	h.m.SDependents(id, h.markFn)
	// S[id] appears in exactly the fanin drivers' load sums; their
	// cached loads are recomputed from scratch (bitwise what Load
	// returns). A driver wired through several pins is recomputed once
	// per pin — idempotent.
	for _, f := range h.m.G.C.Nodes[id].Fanin {
		if h.m.G.C.Nodes[f].Kind == netlist.KindGate {
			h.load[f] = h.m.Load(f, h.s)
		}
	}
}

// runBlocks executes eval for every block, honoring the block DAG:
// forward order uses fanin-block dependencies, backward the reversed
// DAG. With one worker the blocks run inline in (reverse) id order —
// a valid dependency-respecting schedule, allocation-free. With more
// workers a dataflow pool claims blocks as their dependencies
// complete: per-block atomic pending counters, a buffered ready
// queue, no level barriers.
func (h *Hier) runBlocks(backward bool, eval func(int)) {
	blocks := h.p.Blocks
	nb := len(blocks)
	// Per-worker scope stacks attribute each worker's busy time under
	// the shared hier.sweep tree node (wall clock only; never in the
	// event stream, so traces stay worker-count-invariant).
	scope := "hier.block.fwd"
	if backward {
		scope = "hier.block.bwd"
	}
	if h.workers <= 1 || nb < 2 {
		st := telemetry.StackAt(h.rec, "hier.sweep")
		if backward {
			for b := nb - 1; b >= 0; b-- {
				st.Push(scope)
				eval(b)
				st.Pop()
			}
		} else {
			for b := 0; b < nb; b++ {
				st.Push(scope)
				eval(b)
				st.Pop()
			}
		}
		return
	}
	pending := h.pending
	ready := make(chan int32, nb)
	for b := range blocks {
		deps := len(blocks[b].Fanin)
		if backward {
			deps = len(blocks[b].Fanout)
		}
		pending[b] = int32(deps)
		if deps == 0 {
			ready <- int32(b)
		}
	}
	var done atomic.Int32
	var wg sync.WaitGroup
	work := func() {
		defer wg.Done()
		st := telemetry.StackAt(h.rec, "hier.sweep")
		for b := range ready {
			st.Push(scope)
			eval(int(b))
			st.Pop()
			succs := blocks[b].Fanout
			if backward {
				succs = blocks[b].Fanin
			}
			for _, s := range succs {
				if atomic.AddInt32(&pending[s], -1) == 0 {
					ready <- s
				}
			}
			if int(done.Add(1)) == nb {
				close(ready)
			}
		}
	}
	w := h.workers
	if w > nb {
		w = nb
	}
	wg.Add(w)
	for i := 1; i < w; i++ {
		go work()
	}
	work()
	wg.Wait()
}

// evalBlockForward re-evaluates every node of block b. Fanins are in
// completed blocks, so their arrivals are final; each node writes
// only its own slots.
func (h *Hier) evalBlockForward(b int) {
	for _, id := range h.p.Blocks[b].Nodes {
		forwardNodeLoaded(&h.res, h.m, h.s, id, true, h.load[id])
	}
}

// evalBlockDirty is evalBlockForward plus bitwise change tracking for
// the macro cutoff: changed flags per node and the block's changed
// count in its owned blkChanged slot.
func (h *Hier) evalBlockDirty(b int) {
	blk := &h.p.Blocks[b]
	n := int32(0)
	for _, id := range blk.Nodes {
		old := h.res.Arrival[id]
		forwardNodeLoaded(&h.res, h.m, h.s, id, true, h.load[id])
		ch := h.res.Arrival[id] != old
		h.changed[id] = ch
		if ch {
			n++
		}
	}
	h.blkChanged[b] = n
}

// evalBlockBackward runs the adjoint step for block b: each node
// folds its incoming contribution slots in the serial accumulation
// order (seed first, then consumers by level desc / position asc,
// pins in write order), then writes its own fanin and gradient
// contribution slots. All writers of a node's slots live in fanout
// blocks, which the reversed schedule completed first.
func (h *Hier) evalBlockBackward(b int) {
	blk := &h.p.Blocks[b]
	if blk.Level == 0 {
		return // primary inputs carry no adjoint work
	}
	g := h.m.G
	inOff := g.FanoutOff
	for _, id := range blk.Nodes {
		am, av := h.adj[2*id], h.adj[2*id+1]
		for t := inOff[id]; t < inOff[id+1]; t++ {
			if !h.active[h.inAdjFrom[t]] {
				continue
			}
			s := h.inAdjSlot[t]
			am += h.cMu[s]
			av += h.cVar[s]
		}
		if am == 0 && av == 0 {
			h.active[id] = false
			h.dmu[id] = 0
			continue
		}
		h.active[id] = true
		d := am + av*h.m.Sigma.DVar(h.res.GateDelay[id].Mu)
		h.dmu[id] = d
		h.m.GateMuGradTermsLoaded(id, h.s, h.load[id], d, &h.gSelf[id], h.gPin[g.FanoutOff[id]:g.FanoutOff[id+1]])
		fanin := g.C.Nodes[id].Fanin
		base := g.FaninOff[id]
		uMu, uVar := am, av
		steps := h.res.gateFold[id]
		for k := len(fanin) - 1; k >= 1; k-- {
			j := steps[k-1]
			h.cMu[base+k] = uMu*j[0][2] + uVar*j[1][2]
			h.cVar[base+k] = uMu*j[0][3] + uVar*j[1][3]
			uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
		}
		h.cMu[base] = uMu
		h.cVar[base] = uVar
	}
}

// seed unfolds the output max in reverse, exactly like the serial
// sweep's seedAdjoint, into the outputs' interleaved adjoint slots —
// the values the block folds (and the serial recursion) start from.
func (h *Hier) seed(seedMu, seedVar float64) {
	outs := h.m.G.C.Outputs
	for _, o := range outs {
		h.adj[2*o], h.adj[2*o+1] = 0, 0
	}
	aMu, aVar := seedMu, seedVar
	for i := len(outs) - 1; i >= 1; i-- {
		j := h.res.outFold[i-1]
		o := outs[i]
		h.adj[2*o] += aMu*j[0][2] + aVar*j[1][2]
		h.adj[2*o+1] += aMu*j[0][3] + aVar*j[1][3]
		aMu, aVar = aMu*j[0][0]+aVar*j[1][0], aMu*j[0][1]+aVar*j[1][1]
	}
	h.adj[2*outs[0]] += aMu
	h.adj[2*outs[0]+1] += aVar
}

// foldGrad gathers every gate's gradient from its self slot and the
// pin-term slots of its fanin drivers, folded in the serial
// accumulation order: the gate's own term first (it is processed
// before its lower-level drivers in the serial sweep), then driver
// terms by (level desc, position asc, fanout pin asc). Slots of
// skipped (zero-adjoint) writers are skipped exactly as the serial
// sweep never accumulates them.
func (h *Hier) foldGrad() {
	g := h.m.G
	for i := range g.C.Nodes {
		if g.C.Nodes[i].Kind != netlist.KindGate {
			continue // inputs carry no gradient; grad stays 0
		}
		acc := 0.0
		if h.active[i] {
			acc += h.gSelf[i]
		}
		for t := h.inGradOff[i]; t < h.inGradOff[i+1]; t++ {
			if !h.active[h.inGradFrom[t]] {
				continue
			}
			acc += h.gPin[h.inGradSlot[t]]
		}
		h.grad[i] = acc
	}
}

// Resweep unconditionally re-evaluates every block through the
// dataflow scheduler — the initial full sweep, and the full blocked
// forward pass of the benchmarks. Pending dirty marks are subsumed.
func (h *Hier) Resweep() stats.MV {
	for l := h.minLvl; l >= 0 && l < len(h.dirtyByLevel); l++ {
		for _, b := range h.dirtyByLevel[l] {
			h.dirtyB[b] = false
		}
		h.dirtyByLevel[l] = h.dirtyByLevel[l][:0]
	}
	h.clearSpan()
	h.runBlocks(false, h.evalFwdFn)
	foldOutputs(&h.res, h.m.G, true)
	if h.rec != nil {
		h.rec.Event("hier", "sweep",
			telemetry.I("blocks", len(h.p.Blocks)),
			telemetry.I("nodes", len(h.m.G.C.Nodes)),
			telemetry.F("mu", h.res.Tmax.Mu),
			telemetry.F("var", h.res.Tmax.Var),
		)
	}
	return h.res.Tmax
}

// Update re-evaluates the dirty blocks level by level and returns the
// circuit delay moments. A clean block is a statistical timing macro
// replay: its slabs already hold what a fresh sweep would recompute,
// so it is skipped in O(1) by never being queued. A re-evaluated
// block whose arrivals are bit-identical to before does not dirty
// its fanout blocks (early cutoff). The resulting state is
// bit-identical to a fresh taped Analyze/AnalyzeWorkers at the
// current sizes, for any worker count and block size. With nothing
// dirty it returns the cached Tmax untouched.
func (h *Hier) Update() stats.MV {
	if h.maxLvl < h.minLvl {
		return h.res.Tmax
	}
	g := h.m.G
	blocks := h.p.Blocks
	h.evalList = h.evalList[:0]
	sweptGates, changedGates := 0, 0
	// maxLvl may grow while we scan (changed blocks dirty fanout
	// blocks at strictly higher levels), so walk every level from
	// minLvl up and skip the empty buckets.
	for l := h.minLvl; l < len(h.dirtyByLevel); l++ {
		bucket := h.dirtyByLevel[l]
		if len(bucket) == 0 {
			continue
		}
		// Compute phase: level-pure blocks of one level are mutually
		// independent, so they evaluate concurrently; the changed
		// flags are bit-compares, identical for every worker count.
		// The serial path stays inline — the runLevel closure
		// escapes, and the steady state must not allocate.
		if h.workers == 1 {
			for _, b := range bucket {
				h.evalBlockDirty(int(b))
			}
		} else {
			runLevel(h.workers, len(bucket), func(i int) {
				h.evalBlockDirty(int(bucket[i]))
			})
		}
		// Apply phase: serial, in insertion order — changed arrivals
		// invalidate the macros of their fanout gates' blocks, all
		// at strictly higher levels.
		for _, b := range bucket {
			h.dirtyB[b] = false
			blk := &blocks[b]
			sweptGates += len(blk.Nodes)
			changedGates += int(h.blkChanged[b])
			if h.blkChanged[b] > 0 {
				for _, id := range blk.Nodes {
					if !h.changed[id] {
						continue
					}
					for _, f := range g.Fanout[id] {
						h.markBlock(h.p.BlockOf[f])
					}
				}
			}
			h.evalList = append(h.evalList, b)
		}
		h.dirtyByLevel[l] = bucket[:0]
	}
	h.clearSpan()
	// The output fold is rebuilt in the fixed output order, matching
	// a fresh sweep's fold bit for bit.
	foldOutputs(&h.res, g, true)
	h.updates++
	if h.rec != nil {
		// All values are worker-count-invariant: the evaluated list
		// and changed counts come from deterministic marking and
		// bit-compares, emitted in the serial apply order.
		for _, b := range h.evalList {
			h.rec.Event("hier", "block",
				telemetry.I("block", int(b)),
				telemetry.I("gates", len(blocks[b].Nodes)),
				telemetry.I("changed", int(h.blkChanged[b])),
			)
		}
		h.rec.Event("hier", "update",
			telemetry.I("update", h.updates),
			telemetry.I("evaluated", len(h.evalList)),
			telemetry.I("replayed", len(blocks)-len(h.evalList)),
			telemetry.I("gates", sweptGates),
			telemetry.I("changed", changedGates),
			telemetry.F("mu", h.res.Tmax.Mu),
			telemetry.F("var", h.res.Tmax.Var),
		)
	}
	return h.res.Tmax
}

// backward dispatches one adjoint sweep. The slot-fold machinery
// exists for deterministic parallel accumulation; with one worker the
// flat canonical recursion runs in place instead — levels descending,
// in-level nodes in bucket order, which visits the level-pure blocks
// in (level desc, bucket asc) order, exactly the flat sweep's node
// order. Accumulating adjoints and gradients directly is then the
// same float program as Result.Backward — bit-identical by
// construction — and skips the slot-write plus fold double pass and
// the O(V+E) gradient gather.
func (h *Hier) backward(seedMu, seedVar float64) {
	if h.workers <= 1 {
		clear(h.adj)
		clear(h.grad)
		clear(h.dmu)
		h.seed(seedMu, seedVar)
		g := h.m.G
		adj := h.adj
		for l := len(g.Levels) - 1; l >= 1; l-- {
			for _, id := range g.Levels[l] {
				am, av := adj[2*id], adj[2*id+1]
				if am == 0 && av == 0 {
					continue
				}
				// The body of Result.backwardNodeActive over the
				// interleaved slab: the same float ops in the same
				// order (a node's pair shares a cache line, which is
				// the point of the layout).
				d := am + av*h.m.Sigma.DVar(h.res.GateDelay[id].Mu)
				h.dmu[id] = d
				h.m.GateMuGradLoaded(id, h.s, h.load[id], d, h.grad)
				fanin := g.C.Nodes[id].Fanin
				uMu, uVar := am, av
				steps := h.res.gateFold[id]
				for k := len(fanin) - 1; k >= 1; k-- {
					j := steps[k-1]
					f := fanin[k]
					adj[2*f] += uMu*j[0][2] + uVar*j[1][2]
					adj[2*f+1] += uMu*j[0][3] + uVar*j[1][3]
					uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
				}
				adj[2*fanin[0]] += uMu
				adj[2*fanin[0]+1] += uVar
			}
		}
		return
	}
	h.seed(seedMu, seedVar)
	h.runBlocks(true, h.evalBwdFn)
	h.foldGrad()
}

// Backward flushes pending updates and runs the block-parallel
// adjoint sweep with the given seed, returning d phi/d S indexed by
// NodeID. The returned slice is engine-owned scratch, overwritten by
// the next Backward — copy it to keep it. Bit-identical to
// Result.Backward/BackwardWorkers for any worker count and block
// size; allocation-free in the steady state with Workers == 1.
func (h *Hier) Backward(seedMu, seedVar float64) []float64 {
	h.Update()
	h.backward(seedMu, seedVar)
	return h.grad
}

// GradMuPlusKSigma flushes pending updates and returns phi =
// mu + k*sigma of the circuit delay plus d phi/d S (engine-owned, see
// Backward) — bit-identical to GradMuPlusKSigmaWorkers at the
// engine's current sizes.
func (h *Hier) GradMuPlusKSigma(k float64) (float64, []float64) {
	tmax := h.Update()
	phi, sMu, sVar := ObjectiveMuPlusKSigma(tmax, k)
	return phi, h.Backward(sMu, sVar)
}

// Criticality flushes pending updates and returns d muTmax / d
// mu_t(gate) for every gate — the blocked equivalent of
// CriticalityWorkers, bit-identical to it. The returned slice is
// engine-owned scratch, overwritten by the next adjoint pass.
func (h *Hier) Criticality() []float64 {
	h.Update()
	h.backward(1, 0)
	return h.dmu
}

// Tmax returns the circuit delay moments as of the last Update.
func (h *Hier) Tmax() stats.MV { return h.res.Tmax }

// Arrival returns node id's arrival moments as of the last Update.
func (h *Hier) Arrival(id netlist.NodeID) stats.MV { return h.res.Arrival[id] }

// GateDelay returns gate id's delay moments as of the last Update.
func (h *Hier) GateDelay(id netlist.NodeID) stats.MV { return h.res.GateDelay[id] }

// Sizes returns the engine's current speed factors as a read-only
// view (indexed by NodeID). Mutate through SetSize only.
func (h *Hier) Sizes() []float64 { return h.s }

// Model returns the engine's delay model. The engine assumes every
// model parameter except the speed factors is frozen for its
// lifetime.
func (h *Hier) Model() *delay.Model { return h.m }

// Partition returns the engine's block decomposition.
func (h *Hier) Partition() *partition.Partition { return h.p }
