package ssta

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func treeModel(t *testing.T) *delay.Model {
	t.Helper()
	g := netlist.MustCompile(netlist.Tree7())
	return delay.MustBind(g, delay.PaperTree())
}

func TestAnalyzeChainIsSumOfDelays(t *testing.T) {
	// A single-fanin chain has no maxima: moments just add.
	g := netlist.MustCompile(netlist.Chain(5))
	m := delay.MustBind(g, delay.Default())
	m.Sigma = delay.Proportional{K: 0.25}
	S := m.UnitSizes()
	r := Analyze(m, S, false)
	var wantMu, wantVar float64
	for _, id := range g.C.GateIDs() {
		mv := m.GateMV(id, S)
		wantMu += mv.Mu
		wantVar += mv.Var
	}
	if !approxEq(r.Tmax.Mu, wantMu, 1e-12) {
		t.Errorf("chain mu = %v, want %v", r.Tmax.Mu, wantMu)
	}
	if !approxEq(r.Tmax.Var, wantVar, 1e-12) {
		t.Errorf("chain var = %v, want %v", r.Tmax.Var, wantVar)
	}
}

func TestAnalyzeTreeMatchesManualFold(t *testing.T) {
	m := treeModel(t)
	S := m.UnitSizes()
	c := m.G.C
	r := Analyze(m, S, false)

	// Recompute by hand: levels are symmetric under unit sizing.
	tA := m.GateMV(c.MustID("A"), S) // == B, D, E
	TA := tA                         // inputs arrive at 0 deterministic
	u := stats.Max2(TA, TA)
	tC := m.GateMV(c.MustID("C"), S)
	TC := stats.Add(u, tC)
	uG := stats.Max2(TC, TC)
	tG := m.GateMV(c.MustID("G"), S)
	TG := stats.Add(uG, tG)

	if !approxEq(r.Tmax.Mu, TG.Mu, 1e-12) || !approxEq(r.Tmax.Var, TG.Var, 1e-12) {
		t.Errorf("tree Tmax = %+v, manual %+v", r.Tmax, TG)
	}
	if !approxEq(r.Arrival[c.MustID("C")].Mu, TC.Mu, 1e-12) {
		t.Errorf("arrival(C) = %+v, manual %+v", r.Arrival[c.MustID("C")], TC)
	}
}

func TestAnalyzeTapeMatchesUntaped(t *testing.T) {
	g := netlist.MustCompile(netlist.Fig2Example())
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	a := Analyze(m, S, false)
	b := Analyze(m, S, true)
	if a.Tmax != b.Tmax {
		t.Errorf("taped %+v vs untaped %+v", b.Tmax, a.Tmax)
	}
}

func TestStatisticalMeanAboveDeterministic(t *testing.T) {
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Fig2Example(), netlist.Apex2Like()} {
		g := netlist.MustCompile(c)
		m := delay.MustBind(g, delay.Default())
		S := m.UnitSizes()
		stat := Analyze(m, S, false)
		det := DetAnalyze(m, S)
		if stat.Tmax.Mu < det.Tmax-1e-9 {
			t.Errorf("%s: statistical mean %v below deterministic %v",
				c.Name, stat.Tmax.Mu, det.Tmax)
		}
	}
}

func TestZeroSigmaMatchesDeterministic(t *testing.T) {
	g := netlist.MustCompile(netlist.Apex2Like())
	m := delay.MustBind(g, delay.Default())
	m.Sigma = delay.Zero{}
	S := m.UnitSizes()
	stat := Analyze(m, S, false)
	det := DetAnalyze(m, S)
	if !approxEq(stat.Tmax.Mu, det.Tmax, 1e-9) {
		t.Errorf("zero-sigma statistical %v vs deterministic %v", stat.Tmax.Mu, det.Tmax)
	}
	if stat.Tmax.Var > 1e-12 {
		t.Errorf("zero-sigma variance %v", stat.Tmax.Var)
	}
}

func TestInputArrivalsRespected(t *testing.T) {
	g := netlist.MustCompile(netlist.Chain(1))
	m := delay.MustBind(g, delay.Default())
	in := g.C.MustID("in")
	m.Arrival[in] = stats.MV{Mu: 5, Var: 0.04}
	S := m.UnitSizes()
	r := Analyze(m, S, false)
	gd := m.GateMV(g.C.GateIDs()[0], S)
	if !approxEq(r.Tmax.Mu, 5+gd.Mu, 1e-12) {
		t.Errorf("Tmax.Mu = %v", r.Tmax.Mu)
	}
	if !approxEq(r.Tmax.Var, 0.04+gd.Var, 1e-12) {
		t.Errorf("Tmax.Var = %v", r.Tmax.Var)
	}
}

func gradFD(m *delay.Model, S []float64, k float64, id netlist.NodeID) float64 {
	h := 1e-6
	Sp := append([]float64(nil), S...)
	Sm := append([]float64(nil), S...)
	Sp[id] += h
	Sm[id] -= h
	rp := Analyze(m, Sp, false)
	rm := Analyze(m, Sm, false)
	pp, _, _ := ObjectiveMuPlusKSigma(rp.Tmax, k)
	pm, _, _ := ObjectiveMuPlusKSigma(rm.Tmax, k)
	return (pp - pm) / (2 * h)
}

func TestBackwardGradientAgainstFD(t *testing.T) {
	circuits := []*netlist.Circuit{
		netlist.Tree7(),
		netlist.Fig2Example(),
		netlist.Chain(4),
		netlist.Apex2Like(),
	}
	for _, c := range circuits {
		g := netlist.MustCompile(c)
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(g, lib)
		S := m.UnitSizes()
		// Non-uniform sizes so no accidental symmetry hides errors.
		for i, id := range c.GateIDs() {
			S[id] = 1 + 0.1*float64(i%7)
		}
		for _, k := range []float64{0, 1, 3} {
			_, grad := GradMuPlusKSigma(m, S, k)
			// Spot-check a spread of gates (all gates for small
			// circuits, a sample for apex2).
			ids := c.GateIDs()
			step := 1
			if len(ids) > 20 {
				step = len(ids) / 10
			}
			for i := 0; i < len(ids); i += step {
				id := ids[i]
				fd := gradFD(m, S, k, id)
				if !approxEq(grad[id], fd, 2e-4) {
					t.Errorf("%s k=%v d/dS[%s]: adjoint %v, FD %v",
						c.Name, k, c.Nodes[id].Name, grad[id], fd)
				}
			}
		}
	}
}

func TestBackwardRequiresTape(t *testing.T) {
	m := treeModel(t)
	S := m.UnitSizes()
	r := Analyze(m, S, false)
	defer func() {
		if recover() == nil {
			t.Error("Backward without tape did not panic")
		}
	}()
	r.Backward(m, S, 1, 0)
}

func TestObjectiveMuPlusKSigma(t *testing.T) {
	mv := stats.MV{Mu: 10, Var: 4}
	phi, sMu, sVar := ObjectiveMuPlusKSigma(mv, 3)
	if !approxEq(phi, 16, 1e-12) {
		t.Errorf("phi = %v", phi)
	}
	if sMu != 1 || !approxEq(sVar, 3.0/(2*2), 1e-12) {
		t.Errorf("seeds = %v %v", sMu, sVar)
	}
	// k = 0 short-circuits.
	phi, sMu, sVar = ObjectiveMuPlusKSigma(mv, 0)
	if phi != 10 || sMu != 1 || sVar != 0 {
		t.Errorf("k=0: %v %v %v", phi, sMu, sVar)
	}
	// Zero variance stays finite.
	_, _, sVar = ObjectiveMuPlusKSigma(stats.MV{Mu: 1, Var: 0}, 1)
	if math.IsInf(sVar, 0) || math.IsNaN(sVar) {
		t.Errorf("seedVar at zero variance = %v", sVar)
	}
}

func TestCriticalityTree(t *testing.T) {
	m := treeModel(t)
	S := m.UnitSizes()
	crit := Criticality(m, S)
	c := m.G.C
	// The output gate is fully critical.
	if g := crit[c.MustID("G")]; !approxEq(g, 1, 1e-9) {
		t.Errorf("crit(G) = %v", g)
	}
	// Symmetric gates share criticality. Note the split is not an
	// exact halving: mu_t also feeds Tmax through the sigma model
	// (larger mu_t -> larger var_t -> larger downstream max mean), so
	// sibling criticalities sum to slightly more than the parent's.
	cC, cF := crit[c.MustID("C")], crit[c.MustID("F")]
	if !approxEq(cC, cF, 1e-9) {
		t.Errorf("crit(C,F) differ: %v %v", cC, cF)
	}
	cA, cB := crit[c.MustID("A")], crit[c.MustID("B")]
	if !approxEq(cA, cB, 1e-9) {
		t.Errorf("crit(A,B) differ: %v %v", cA, cB)
	}
	// Criticality grows toward the output.
	if !(cA < cC && cC < 1+1e-9) {
		t.Errorf("criticality ordering violated: A=%v C=%v G=1", cA, cC)
	}
}

func TestCriticalityMatchesBackwardSeed(t *testing.T) {
	// Criticality must equal d muTmax / d mu_t; check against a
	// finite difference on TInt.
	g := netlist.MustCompile(netlist.Fig2Example())
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	crit := Criticality(m, S)
	for _, id := range g.C.GateIDs() {
		h := 1e-6
		old := m.TInt[id]
		m.TInt[id] = old + h
		up := Analyze(m, S, false).Tmax.Mu
		m.TInt[id] = old - h
		dn := Analyze(m, S, false).Tmax.Mu
		m.TInt[id] = old
		fd := (up - dn) / (2 * h)
		// The sigma model couples var_t to mu_t, so the FD includes
		// d var/d mu effects exactly as Criticality does.
		if !approxEq(crit[id], fd, 1e-4) {
			t.Errorf("crit(%s) = %v, FD %v", g.C.Nodes[id].Name, crit[id], fd)
		}
	}
}

func TestDetAnalyzeChain(t *testing.T) {
	g := netlist.MustCompile(netlist.Chain(3))
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	r := DetAnalyze(m, S)
	var want float64
	for _, id := range g.C.GateIDs() {
		want += m.GateMu(id, S)
	}
	if !approxEq(r.Tmax, want, 1e-12) {
		t.Errorf("det chain = %v, want %v", r.Tmax, want)
	}
	path := r.CriticalPath(m)
	if len(path) != 4 { // input + 3 gates
		t.Errorf("path length = %d", len(path))
	}
	if g.C.Nodes[path[0]].Kind != netlist.KindInput {
		t.Error("path does not start at an input")
	}
	if path[len(path)-1] != r.CriticalOutput {
		t.Error("path does not end at critical output")
	}
}

func TestDetCriticalPathIsMonotone(t *testing.T) {
	g := netlist.MustCompile(netlist.Apex2Like())
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	r := DetAnalyze(m, S)
	path := r.CriticalPath(m)
	for i := 1; i < len(path); i++ {
		if r.Arrival[path[i]] < r.Arrival[path[i-1]]-1e-12 {
			t.Errorf("arrival decreases along path at %d", i)
		}
	}
}

func TestSizingUpReducesTmax(t *testing.T) {
	// Upsizing everything to the limit must reduce both the mean
	// circuit delay and the deterministic delay on the tree.
	m := treeModel(t)
	S1 := m.UnitSizes()
	S3 := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		S3[id] = m.Limit
	}
	r1 := Analyze(m, S1, false)
	r3 := Analyze(m, S3, false)
	if r3.Tmax.Mu >= r1.Tmax.Mu {
		t.Errorf("upsizing did not reduce mean delay: %v -> %v", r1.Tmax.Mu, r3.Tmax.Mu)
	}
	if r3.Tmax.Var >= r1.Tmax.Var {
		t.Errorf("upsizing did not reduce variance: %v -> %v", r1.Tmax.Var, r3.Tmax.Var)
	}
}
