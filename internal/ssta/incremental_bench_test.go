package ssta

import (
	"testing"
)

// The Inc/FullSweep benchmark pairs measure what the incremental
// engine buys a sizing loop: one "step" is a single-gate size change
// followed by a full gradient evaluation (forward + adjoint). The
// full-sweep variant pays a fresh allocating taped O(V) sweep; the
// incremental variant re-evaluates only the changed cone and reuses
// every slab. `make bench-inc` collects both into
// BENCH_incremental.json.

func benchIncUpdate(b *testing.B, name string) {
	m := parallelTestModels(b)[name]
	gates := m.G.C.GateIDs()
	inc := NewInc(m, m.UnitSizes(), IncOptions{Workers: 1})
	inc.GradMuPlusKSigma(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := gates[(i*31)%len(gates)]
		inc.SetSize(id, 1+0.3*float64(i%5))
		inc.GradMuPlusKSigma(3)
	}
}

func benchFullSweep(b *testing.B, name string) {
	m := parallelTestModels(b)[name]
	gates := m.G.C.GateIDs()
	S := m.UnitSizes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := gates[(i*31)%len(gates)]
		S[id] = 1 + 0.3*float64(i%5)
		GradMuPlusKSigmaWorkers(m, S, 3, 1)
	}
}

func BenchmarkIncUpdateTree7(b *testing.B)   { benchIncUpdate(b, "tree7") }
func BenchmarkIncUpdateGen1200(b *testing.B) { benchIncUpdate(b, "gen1200") }

func BenchmarkFullSweepTree7(b *testing.B)   { benchFullSweep(b, "tree7") }
func BenchmarkFullSweepGen1200(b *testing.B) { benchFullSweep(b, "gen1200") }
