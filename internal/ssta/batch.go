package ssta

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// This file implements the batched multi-scenario analysis engine.
// Corners, sigma levels, k-sweeps and Monte Carlo replicas all
// re-walk the same topology with different numbers; a Batch walks it
// once and evaluates K scenarios per node visit over
// structure-of-arrays slabs. The layout contract, shared with the
// K-lane gate kernel in internal/delay:
//
//	slab[int(id)*K + lane]
//
// Every per-node quantity — speed factor, arrival mean/variance, gate
// delay mean/variance, adjoint — lives in one flat float64 slab with
// the K lanes of a node adjacent, so the per-gate inner loops run
// over contiguous K-strided spans: one traversal amortizes the graph
// overhead (node metadata, fanin walks, pin offsets, load
// recomputation) across all K scenarios and leaves the lane loops
// free for the compiler to vectorize. The fold tape is laid out the
// same way, K Jacobians per fold step, so the adjoint sweep is
// batched too.
//
// Determinism: lane l performs exactly the floating-point operations
// of the scalar scenario sweep (AnalyzeScenario / BackwardScenario),
// in the same order — lanes never mix. On top of the lanes sits the
// existing worker-parallel levelization: workers split level buckets,
// lanes split scenarios, and the adjoint keeps the compute/apply
// split of backwardInto, so results are bit-identical to K
// independent scalar runs for every (K, workers) pair.

// BatchOptions configures a Batch.
type BatchOptions struct {
	// Workers bounds the level parallelism: <= 0 uses one worker per
	// CPU, 1 forces the serial sweep. Results are bit-identical for
	// every worker count; only the serial path is allocation-free in
	// the steady state.
	Workers int
	// Recorder, when non-nil, receives one worker-invariant
	// "batch.sweep" event per Forward (lane count, node count, sweep
	// index, lane-0 circuit moments). Nil disables instrumentation at
	// zero cost.
	Recorder telemetry.Recorder
}

// Batch is a persistent K-scenario structure-of-arrays sweep engine.
// It is not safe for concurrent use; one Batch serves one evaluation
// loop, and all returned slices are engine-owned scratch overwritten
// by the next call unless documented otherwise.
type Batch struct {
	m       *delay.Model
	k       int
	workers int
	rec     telemetry.Recorder

	// Scenario lanes: speed factors (K-strided), per-lane skew and
	// the derived scale factor 1 + skew.
	sLanes []float64
	skew   []float64
	scale  []float64

	// Forward slabs, K-strided per node.
	arrMu, arrVar []float64
	gdMu, gdVar   []float64

	// Fold tape: node id's step s lane l Jacobian sits at
	// tape[tapeOff[id] + s*K + l]; outFold holds the output fold the
	// same way ((len(outputs)-1) steps).
	tape    []stats.Jac2x4
	tapeOff []int
	outFold []stats.Jac2x4

	tmax []stats.MV // per-lane circuit moments of the last Forward

	// Adjoint slabs (K-strided) plus the per-lane fold accumulators
	// and kernel scratch used by the serial phases.
	adjMu, adjVar  []float64
	grad           []float64
	dmu            []float64
	accMu, accVar  []float64
	loadBuf, wBuf  []float64
	seedMu, phis   []float64
	seedVar        []float64
	cMu, cVar      []float64 // parallel adjoint contribution slots
	off            []int     // per-node fanin offsets for cMu/cVar
	sweeps, adjRun int
}

// NewBatch builds a K-lane engine for the model. Scenarios default to
// unit sizes with zero skew; set them with SetScenario before the
// first Forward.
func NewBatch(m *delay.Model, K int, opt BatchOptions) *Batch {
	if K < 1 {
		panic(fmt.Sprintf("ssta: NewBatch needs at least 1 lane, got %d", K))
	}
	g := m.G
	n := len(g.C.Nodes)
	b := &Batch{
		m:       m,
		k:       K,
		workers: resolveWorkers(opt.Workers),
		rec:     opt.Recorder,
		sLanes:  make([]float64, n*K),
		skew:    make([]float64, K),
		scale:   make([]float64, K),
		arrMu:   make([]float64, n*K),
		arrVar:  make([]float64, n*K),
		gdMu:    make([]float64, n*K),
		gdVar:   make([]float64, n*K),
		tapeOff: make([]int, n),
		tmax:    make([]stats.MV, K),
		adjMu:   make([]float64, n*K),
		adjVar:  make([]float64, n*K),
		grad:    make([]float64, n*K),
		dmu:     make([]float64, n*K),
		accMu:   make([]float64, K),
		accVar:  make([]float64, K),
		loadBuf: make([]float64, K),
		wBuf:    make([]float64, K),
		seedMu:  make([]float64, K),
		seedVar: make([]float64, K),
		phis:    make([]float64, K),
		off:     make([]int, n),
	}
	for l := range b.scale {
		b.scale[l] = 1
	}
	for i := range b.sLanes {
		b.sLanes[i] = 1
	}
	// Carve the K-strided tape out of one arena, and size the
	// parallel adjoint contribution slots (one per fanin pin per
	// lane, like backwardInto's cMu/cVar times K).
	tapeTotal, pinTotal := 0, 0
	for i := range g.C.Nodes {
		b.tapeOff[i] = tapeTotal
		if f := len(g.C.Nodes[i].Fanin); f > 1 {
			tapeTotal += (f - 1) * K
		}
		b.off[i] = pinTotal
		pinTotal += len(g.C.Nodes[i].Fanin)
	}
	b.tape = make([]stats.Jac2x4, tapeTotal)
	if no := len(g.C.Outputs); no > 1 {
		b.outFold = make([]stats.Jac2x4, (no-1)*K)
	}
	b.cMu = make([]float64, pinTotal*K)
	b.cVar = make([]float64, pinTotal*K)
	return b
}

// K returns the engine's lane count.
func (b *Batch) K() int { return b.k }

// SetScenario installs sc as lane l, copying the speed factors into
// the lane slab. The change takes effect at the next Forward.
func (b *Batch) SetScenario(l int, sc Scenario) {
	if l < 0 || l >= b.k {
		panic(fmt.Sprintf("ssta: Batch.SetScenario lane %d out of range [0,%d)", l, b.k))
	}
	n := len(b.m.G.C.Nodes)
	if len(sc.S) != n {
		panic(fmt.Sprintf("ssta: Batch.SetScenario got %d sizes for %d nodes", len(sc.S), n))
	}
	K := b.k
	for id, s := range sc.S {
		b.sLanes[id*K+l] = s
	}
	b.skew[l] = sc.Skew
	b.scale[l] = 1 + sc.Skew
}

// forwardNodeLanes evaluates node id's K lanes from its fanins'
// already-final lanes, writing only id-owned slab spans (the node's
// own arrival, gate delay and tape lanes) so a level bucket can run
// in parallel. Per lane the operation sequence matches
// AnalyzeScenario exactly.
func (b *Batch) forwardNodeLanes(id netlist.NodeID) {
	K := b.k
	m := b.m
	nd := &m.G.C.Nodes[id]
	base := int(id) * K
	aMu := b.arrMu[base : base+K]
	aVar := b.arrVar[base : base+K]
	if nd.Kind == netlist.KindInput {
		in := m.Arrival[id]
		for l := 0; l < K; l++ {
			aMu[l] = in.Mu
			aVar[l] = in.Var
		}
		return
	}
	// U = max over fanin arrival lanes, folded two at a time with the
	// node's own arrival lanes as the accumulator. The off == 0 guard
	// mirrors shiftMV, which skips the add entirely (an add of +0
	// would flip a -0 mean).
	f0 := int(nd.Fanin[0]) * K
	if off := m.PinOff(id, 0); off != 0 {
		for l := 0; l < K; l++ {
			aMu[l] = b.arrMu[f0+l] + off
			aVar[l] = b.arrVar[f0+l]
		}
	} else {
		copy(aMu, b.arrMu[f0:f0+K])
		copy(aVar, b.arrVar[f0:f0+K])
	}
	tapeAt := b.tapeOff[id]
	for k, f := range nd.Fanin[1:] {
		off := m.PinOff(id, k+1)
		fb := int(f) * K
		steps := b.tape[tapeAt+k*K : tapeAt+k*K+K]
		for l := 0; l < K; l++ {
			bMV := stats.MV{Mu: b.arrMu[fb+l], Var: b.arrVar[fb+l]}
			if off != 0 {
				bMV.Mu += off
			}
			var res stats.MV
			res, steps[l] = stats.Max2Jac(stats.MV{Mu: aMu[l], Var: aVar[l]}, bMV)
			aMu[l], aVar[l] = res.Mu, res.Var
		}
	}
	// T = U + t, with t from the K-lane gate kernel plus the per-lane
	// skew scaling of scenarioGateMV.
	gMu := b.gdMu[base : base+K]
	gVar := b.gdVar[base : base+K]
	m.GateMuLanes(id, K, b.sLanes, gMu)
	for l := 0; l < K; l++ {
		mu := gMu[l]
		if b.skew[l] != 0 { // branch on the skew, like scenarioGateMV
			mu *= b.scale[l]
			if mu < 0 {
				mu = 0
			}
			gMu[l] = mu
		}
		gVar[l] = m.Sigma.Var(mu)
		aMu[l] += mu
		aVar[l] += gVar[l]
	}
}

// foldOutputLanes computes the per-lane circuit delay: the stochastic
// max over the primary outputs in the fixed output order, recording
// the K-strided output fold tape.
func (b *Batch) foldOutputLanes() {
	K := b.k
	outs := b.m.G.C.Outputs
	o0 := int(outs[0]) * K
	for l := 0; l < K; l++ {
		b.tmax[l] = stats.MV{Mu: b.arrMu[o0+l], Var: b.arrVar[o0+l]}
	}
	for i, o := range outs[1:] {
		ob := int(o) * K
		steps := b.outFold[i*K : i*K+K]
		for l := 0; l < K; l++ {
			b.tmax[l], steps[l] = stats.Max2Jac(b.tmax[l],
				stats.MV{Mu: b.arrMu[ob+l], Var: b.arrVar[ob+l]})
		}
	}
}

// Forward runs the batched taped forward sweep over all K lanes and
// returns the per-lane circuit delay moments (engine-owned,
// overwritten by the next Forward). Allocation-free when warm with
// Workers == 1.
func (b *Batch) Forward() []stats.MV {
	g := b.m.G
	if b.workers == 1 {
		for _, id := range g.Topo {
			b.forwardNodeLanes(id)
		}
	} else {
		for _, bucket := range g.Levels {
			bucket := bucket
			runLevel(b.workers, len(bucket), func(i int) {
				b.forwardNodeLanes(bucket[i])
			})
		}
	}
	b.foldOutputLanes()
	b.sweeps++
	if b.rec != nil {
		b.rec.Event("batch", "sweep",
			telemetry.I("sweep", b.sweeps),
			telemetry.I("lanes", b.k),
			telemetry.I("nodes", len(g.C.Nodes)),
			telemetry.F("mu0", b.tmax[0].Mu),
			telemetry.F("var0", b.tmax[0].Var),
		)
	}
	return b.tmax
}

// Tmax returns lane l's circuit delay moments as of the last Forward.
func (b *Batch) Tmax(l int) stats.MV { return b.tmax[l] }

// Arrival returns node id's lane-l arrival moments.
func (b *Batch) Arrival(id netlist.NodeID, l int) stats.MV {
	return stats.MV{Mu: b.arrMu[int(id)*b.k+l], Var: b.arrVar[int(id)*b.k+l]}
}

// GateDelay returns gate id's lane-l delay moments.
func (b *Batch) GateDelay(id netlist.NodeID, l int) stats.MV {
	return stats.MV{Mu: b.gdMu[int(id)*b.k+l], Var: b.gdVar[int(id)*b.k+l]}
}

// seedAdjointLanes unfolds the output max of every lane in reverse,
// seeding the adjoint slabs from the per-lane seed pairs. Runs on the
// coordinating goroutine, like seedAdjoint.
func (b *Batch) seedAdjointLanes(seedMu, seedVar []float64) {
	K := b.k
	outs := b.m.G.C.Outputs
	copy(b.accMu, seedMu)
	copy(b.accVar, seedVar)
	for i := len(outs) - 1; i >= 1; i-- {
		ob := int(outs[i]) * K
		steps := b.outFold[(i-1)*K : (i-1)*K+K]
		for l := 0; l < K; l++ {
			j := steps[l]
			aMu, aVar := b.accMu[l], b.accVar[l]
			b.adjMu[ob+l] += aMu*j[0][2] + aVar*j[1][2]
			b.adjVar[ob+l] += aMu*j[0][3] + aVar*j[1][3]
			b.accMu[l] = aMu*j[0][0] + aVar*j[1][0]
			b.accVar[l] = aMu*j[0][1] + aVar*j[1][1]
		}
	}
	o0 := int(outs[0]) * K
	for l := 0; l < K; l++ {
		b.adjMu[o0+l] += b.accMu[l]
		b.adjVar[o0+l] += b.accVar[l]
	}
}

// gradWeights converts the per-lane mean-delay adjoints of gate id
// (already in b.dmu) into GateMu gradient weights, applying the skew
// chain rule: a scaled lane contributes (1 + skew) per unit of
// GateMu, a lane floored at zero contributes nothing (the one-sided
// subgradient BackwardScenario uses).
func (b *Batch) gradWeights(base int) []float64 {
	K := b.k
	for l := 0; l < K; l++ {
		d := b.dmu[base+l]
		if b.skew[l] != 0 {
			if b.gdMu[base+l] == 0 {
				d = 0
			} else {
				d *= b.scale[l]
			}
		}
		b.wBuf[l] = d
	}
	return b.wBuf
}

// allZero reports whether every lane of a node's adjoint pair is
// zero, the batched form of backwardNode's early-out.
func allZero(mu, va []float64) bool {
	for i := range mu {
		if mu[i] != 0 || va[i] != 0 {
			return false
		}
	}
	return true
}

// backwardNodeLanes pushes gate id's adjoint lanes into the gradient
// slab and its fanins' adjoint lanes — the serial path, performing
// per lane exactly BackwardScenario's operations in its order.
func (b *Batch) backwardNodeLanes(id netlist.NodeID) {
	K := b.k
	m := b.m
	base := int(id) * K
	amL := b.adjMu[base : base+K]
	avL := b.adjVar[base : base+K]
	if allZero(amL, avL) {
		return
	}
	for l := 0; l < K; l++ {
		b.dmu[base+l] = amL[l] + avL[l]*m.Sigma.DVar(b.gdMu[base+l])
	}
	m.LoadLanes(id, K, b.sLanes, b.loadBuf)
	m.GateMuGradLanes(id, K, b.sLanes, b.loadBuf, b.gradWeights(base), b.grad)

	fanin := m.G.C.Nodes[id].Fanin
	copy(b.accMu, amL)
	copy(b.accVar, avL)
	tapeAt := b.tapeOff[id]
	for k := len(fanin) - 1; k >= 1; k-- {
		fb := int(fanin[k]) * K
		steps := b.tape[tapeAt+(k-1)*K : tapeAt+(k-1)*K+K]
		for l := 0; l < K; l++ {
			j := steps[l]
			uMu, uVar := b.accMu[l], b.accVar[l]
			b.adjMu[fb+l] += uMu*j[0][2] + uVar*j[1][2]
			b.adjVar[fb+l] += uMu*j[0][3] + uVar*j[1][3]
			b.accMu[l] = uMu*j[0][0] + uVar*j[1][0]
			b.accVar[l] = uMu*j[0][1] + uVar*j[1][1]
		}
	}
	f0 := int(fanin[0]) * K
	for l := 0; l < K; l++ {
		b.adjMu[f0+l] += b.accMu[l]
		b.adjVar[f0+l] += b.accVar[l]
	}
}

// Backward runs the batched adjoint sweep from per-lane seed pairs
// (d phi_l / d muTmax_l, d phi_l / d varTmax_l) over the tape of the
// last Forward and returns the K-strided gradient slab
// grad[int(id)*K + lane] (engine-owned, overwritten by the next
// Backward; gather a lane with Grad). Allocation-free when warm with
// Workers == 1; bit-identical for every worker count.
func (b *Batch) Backward(seedMu, seedVar []float64) []float64 {
	K := b.k
	if len(seedMu) != K || len(seedVar) != K {
		panic(fmt.Sprintf("ssta: Batch.Backward got %d/%d seeds for %d lanes",
			len(seedMu), len(seedVar), K))
	}
	g := b.m.G
	clear(b.adjMu)
	clear(b.adjVar)
	clear(b.grad)
	clear(b.dmu)
	b.seedAdjointLanes(seedMu, seedVar)
	if b.workers == 1 {
		// Level 0 holds only primary inputs, which have no gradient.
		for l := len(g.Levels) - 1; l >= 1; l-- {
			for _, id := range g.Levels[l] {
				b.backwardNodeLanes(id)
			}
		}
		b.adjRun++
		return b.grad
	}
	for lv := len(g.Levels) - 1; lv >= 1; lv-- {
		bucket := g.Levels[lv]
		// Compute phase: per-node contributions into the node's own
		// cMu/cVar lanes, with the pin-0 slot doubling as the fold
		// accumulator; pure reads of finalized adjoints and the tape.
		runLevel(b.workers, len(bucket), func(i int) {
			id := bucket[i]
			base := int(id) * K
			amL := b.adjMu[base : base+K]
			avL := b.adjVar[base : base+K]
			if allZero(amL, avL) {
				return
			}
			for l := 0; l < K; l++ {
				b.dmu[base+l] = amL[l] + avL[l]*b.m.Sigma.DVar(b.gdMu[base+l])
			}
			fanin := b.m.G.C.Nodes[id].Fanin
			cb := b.off[id] * K
			acc, accV := b.cMu[cb:cb+K], b.cVar[cb:cb+K]
			copy(acc, amL)
			copy(accV, avL)
			tapeAt := b.tapeOff[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				steps := b.tape[tapeAt+(k-1)*K : tapeAt+(k-1)*K+K]
				pb := (b.off[id] + k) * K
				for l := 0; l < K; l++ {
					j := steps[l]
					uMu, uVar := acc[l], accV[l]
					b.cMu[pb+l] = uMu*j[0][2] + uVar*j[1][2]
					b.cVar[pb+l] = uMu*j[0][3] + uVar*j[1][3]
					acc[l] = uMu*j[0][0] + uVar*j[1][0]
					accV[l] = uMu*j[0][1] + uVar*j[1][1]
				}
			}
		})
		// Apply phase: fixed bucket order on the coordinating
		// goroutine, mirroring the serial per-node order (gradient
		// first, then fanin pins high to low, pin 0 last).
		for _, id := range bucket {
			base := int(id) * K
			if allZero(b.adjMu[base:base+K], b.adjVar[base:base+K]) {
				continue
			}
			b.m.LoadLanes(id, K, b.sLanes, b.loadBuf)
			b.m.GateMuGradLanes(id, K, b.sLanes, b.loadBuf, b.gradWeights(base), b.grad)
			fanin := b.m.G.C.Nodes[id].Fanin
			for k := len(fanin) - 1; k >= 1; k-- {
				fb := int(fanin[k]) * K
				pb := (b.off[id] + k) * K
				for l := 0; l < K; l++ {
					b.adjMu[fb+l] += b.cMu[pb+l]
					b.adjVar[fb+l] += b.cVar[pb+l]
				}
			}
			f0 := int(fanin[0]) * K
			cb := b.off[id] * K
			for l := 0; l < K; l++ {
				b.adjMu[f0+l] += b.cMu[cb+l]
				b.adjVar[f0+l] += b.cVar[cb+l]
			}
		}
	}
	b.adjRun++
	return b.grad
}

// Grad gathers lane l of the last Backward's gradient into dst
// (allocated when nil), indexed by NodeID.
func (b *Batch) Grad(l int, dst []float64) []float64 {
	n := len(b.m.G.C.Nodes)
	if dst == nil {
		dst = make([]float64, n)
	}
	for id := 0; id < n; id++ {
		dst[id] = b.grad[id*b.k+l]
	}
	return dst
}

// Criticality gathers lane l's per-gate mean-delay adjoints (the
// statistical criticality under a (1, 0) seed) into dst.
func (b *Batch) Criticality(l int, dst []float64) []float64 {
	n := len(b.m.G.C.Nodes)
	if dst == nil {
		dst = make([]float64, n)
	}
	for id := 0; id < n; id++ {
		dst[id] = b.dmu[id*b.k+l]
	}
	return dst
}

// GradsMuPlusKSigma runs one batched forward plus one batched adjoint
// sweep for the objective phi = mu + k*sigma in every lane, returning
// the per-lane phi values (engine-owned). Gradients are left in the
// engine's gradient slab; gather them with Grad. Lane l is
// bit-identical to GradScenarioMuPlusKSigma of its scenario (and,
// with zero skew, to GradMuPlusKSigma).
func (b *Batch) GradsMuPlusKSigma(k float64) []float64 {
	checkRiskFactor(k, "Batch.GradsMuPlusKSigma")
	b.Forward()
	for l := 0; l < b.k; l++ {
		b.phis[l], b.seedMu[l], b.seedVar[l] = ObjectiveMuPlusKSigma(b.tmax[l], k)
	}
	b.Backward(b.seedMu, b.seedVar)
	return b.phis
}
