package ssta

import (
	"runtime"
	"sync"

	"repro/internal/delay"
	"repro/internal/stats"
)

// The parallel sweeps exploit the levelized structure of the circuit:
// all nodes of one level are mutually independent (every fanin edge
// crosses strictly upward in level), so a level can be processed by a
// worker pool behind a barrier. Determinism is by construction:
//
//   - Forward: each node's moments are a pure function of its fanins'
//     already-final moments, and every node owns its result slots, so
//     the scheduling order cannot change a single bit.
//   - Backward: workers only *compute* per-node adjoint contributions
//     into per-node scratch; the contributions are *applied* by the
//     coordinating goroutine in the fixed bucket order after the level
//     barrier, reproducing the serial accumulation order exactly.
//
// Both sweeps are therefore bit-identical to the serial Analyze and
// Backward for any worker count.

// parallelMinNodes is the circuit size below which the parallel entry
// points fall back to the serial sweep: below a few hundred nodes the
// per-level synchronization costs more than the arithmetic it spreads.
const parallelMinNodes = 256

// minLevelParallel is the bucket size below which a level is processed
// inline by the coordinating goroutine instead of being fanned out.
const minLevelParallel = 32

// resolveWorkers maps the shared Workers convention onto a concrete
// count: <= 0 means one worker per CPU, anything else is taken as-is.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// runLevel executes fn(i) for every i in [0, n) on up to workers
// goroutines (the caller included) and returns only when all calls
// are done — the level barrier. Work is handed out as contiguous
// chunks; fn must write only to slots owned by item i.
func runLevel(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minLevelParallel {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	for i := 0; i < chunk; i++ {
		fn(i)
	}
	wg.Wait()
}

// AnalyzeWorkers is the levelized parallel variant of Analyze. The
// result is bit-identical to Analyze for any worker count; workers <= 0
// uses one worker per CPU, and small circuits fall back to the serial
// sweep.
func AnalyzeWorkers(m *delay.Model, S []float64, withTape bool, workers int) *Result {
	workers = resolveWorkers(workers)
	g := m.G
	n := len(g.C.Nodes)
	if workers == 1 || n < parallelMinNodes {
		return Analyze(m, S, withTape)
	}
	r := &Result{
		Arrival:   make([]stats.MV, n),
		GateDelay: make([]stats.MV, n),
		withTape:  withTape,
	}
	if withTape {
		r.gateFold = make([][]stats.Jac2x4, n)
	}
	for _, bucket := range g.Levels {
		runLevel(workers, len(bucket), func(i int) {
			forwardNode(r, m, S, bucket[i], withTape)
		})
	}
	foldOutputs(r, g, withTape)
	return r
}

// BackwardWorkers is the levelized parallel variant of Backward,
// bit-identical to it for any worker count. Workers compute each
// node's fanin contributions into per-node scratch; after the level
// barrier the contributions are applied serially in bucket order, so
// every floating-point accumulation happens in the same order as the
// serial sweep.
func (r *Result) BackwardWorkers(m *delay.Model, S []float64, seedMu, seedVar float64, workers int) []float64 {
	if !r.withTape {
		panic("ssta: BackwardWorkers requires a taped Analyze")
	}
	var sc adjointScratch
	return r.backwardInto(m, S, seedMu, seedVar, resolveWorkers(workers), &sc)
}

// GradMuPlusKSigmaWorkers is GradMuPlusKSigma on the parallel sweeps:
// one taped levelized forward pass plus one levelized adjoint pass.
func GradMuPlusKSigmaWorkers(m *delay.Model, S []float64, k float64, workers int) (float64, []float64) {
	r := AnalyzeWorkers(m, S, true, workers)
	phi, sMu, sVar := ObjectiveMuPlusKSigma(r.Tmax, k)
	return phi, r.BackwardWorkers(m, S, sMu, sVar, workers)
}
