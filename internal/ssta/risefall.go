package ssta

import (
	"strings"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// This file implements the rise/fall half of the paper's section 2
// delay model ("different rise and fall times are allowed"), which
// the paper's own experiments simplify away. Every node carries two
// arrival distributions — for rising and falling output transitions —
// and gates couple them by logical polarity: an inverting gate's
// output rises when its inputs fall, a non-inverting gate preserves
// the sense, and a parity gate (XOR/XNOR) mixes both. Rise and fall
// gate delays differ by the cell's skew factor.

// Polarity classifies how a gate couples input and output transitions.
type Polarity int

// Gate polarities.
const (
	// Inverting: output rise <- input fall (inv, nand, nor).
	Inverting Polarity = iota
	// NonInverting: output rise <- input rise (buf, and, or).
	NonInverting
	// Mixing: output transitions depend on both input senses
	// (xor, xnor, unknown cells — the conservative choice).
	Mixing
)

// PolarityOf classifies a library type name. Parity gates are matched
// first so "xnor" is not mistaken for a "nor" prefix.
func PolarityOf(typ string) Polarity {
	switch {
	case strings.HasPrefix(typ, "xor") || strings.HasPrefix(typ, "xnor"):
		return Mixing
	case typ == "inv" || typ == "not" ||
		strings.HasPrefix(typ, "nand") || strings.HasPrefix(typ, "nor"):
		return Inverting
	case typ == "buf" || strings.HasPrefix(typ, "and") || strings.HasPrefix(typ, "or"):
		return NonInverting
	default:
		return Mixing
	}
}

// RiseFallResult holds a dual-polarity statistical sweep.
type RiseFallResult struct {
	// Rise[id] and Fall[id] are the arrival distributions of rising
	// and falling transitions at node id.
	Rise, Fall []stats.MV
	// TmaxRise and TmaxFall are the circuit delays per sense; Tmax is
	// their stochastic max (a transition of either sense must settle).
	TmaxRise, TmaxFall, Tmax stats.MV
}

// AnalyzeRiseFall runs the dual-polarity statistical sweep. The skew
// parameter makes rising gate delays slower by (1 + skew) and falling
// ones faster by (1 - skew), modeling the P/N drive asymmetry the
// paper's general model allows; skew = 0 reduces exactly to Analyze.
func AnalyzeRiseFall(m *delay.Model, S []float64, skew float64) *RiseFallResult {
	g := m.G
	n := len(g.C.Nodes)
	r := &RiseFallResult{
		Rise: make([]stats.MV, n),
		Fall: make([]stats.MV, n),
	}
	for _, id := range g.Topo {
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			r.Rise[id] = m.Arrival[id]
			r.Fall[id] = m.Arrival[id]
			continue
		}
		pol := PolarityOf(nd.Type)
		// Fold the relevant input arrivals per output sense.
		foldInputs := func(rising bool) stats.MV {
			pick := func(f netlist.NodeID) stats.MV {
				switch pol {
				case Inverting:
					if rising {
						return r.Fall[f]
					}
					return r.Rise[f]
				case NonInverting:
					if rising {
						return r.Rise[f]
					}
					return r.Fall[f]
				default: // Mixing: either sense can trigger either edge
					return stats.Max2(r.Rise[f], r.Fall[f])
				}
			}
			acc := shiftMV(pick(nd.Fanin[0]), m.PinOff(id, 0))
			for k, f := range nd.Fanin[1:] {
				acc = stats.Max2(acc, shiftMV(pick(f), m.PinOff(id, k+1)))
			}
			return acc
		}
		mu := m.GateMu(id, S)
		// Both senses floor at zero symmetrically: a skew below -1
		// would otherwise produce negative rising gate delays (and a
		// skew above +1 negative falling ones), breaking arrival
		// monotonicity along fanin edges.
		riseDelay := mu * (1 + skew)
		if riseDelay < 0 {
			riseDelay = 0
		}
		fallDelay := mu * (1 - skew)
		if fallDelay < 0 {
			fallDelay = 0
		}
		r.Rise[id] = stats.Add(foldInputs(true),
			stats.MV{Mu: riseDelay, Var: m.Sigma.Var(riseDelay)})
		r.Fall[id] = stats.Add(foldInputs(false),
			stats.MV{Mu: fallDelay, Var: m.Sigma.Var(fallDelay)})
	}
	outs := g.C.Outputs
	r.TmaxRise = r.Rise[outs[0]]
	r.TmaxFall = r.Fall[outs[0]]
	for _, o := range outs[1:] {
		r.TmaxRise = stats.Max2(r.TmaxRise, r.Rise[o])
		r.TmaxFall = stats.Max2(r.TmaxFall, r.Fall[o])
	}
	r.Tmax = stats.Max2(r.TmaxRise, r.TmaxFall)
	return r
}
