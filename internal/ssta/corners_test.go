package ssta

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
)

func TestCornersOrdering(t *testing.T) {
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Apex2Like(), netlist.Chain(10)} {
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(netlist.MustCompile(c), lib)
		S := m.UnitSizes()
		cr := Corners(m, S, 3)
		if !(cr.Best < cr.Typical && cr.Typical < cr.Worst) {
			t.Errorf("%s: corners not ordered: %v %v %v", c.Name, cr.Best, cr.Typical, cr.Worst)
		}
		// The paper's motivating claim: the worst corner is (much)
		// more pessimistic than the statistical quantile.
		if cr.Pessimism <= 0 {
			t.Errorf("%s: no pessimism: worst %v vs quantile %v",
				c.Name, cr.Worst, cr.StatQuantile)
		}
	}
}

func TestCornerPessimismGrowsWithDepth(t *testing.T) {
	// Per-gate sigmas add linearly at the corner but as sqrt(depth)
	// statistically, so the relative pessimism grows with depth.
	rel := func(n int) float64 {
		m := delay.MustBind(netlist.MustCompile(netlist.Chain(n)), delay.Default())
		cr := Corners(m, m.UnitSizes(), 3)
		return cr.Pessimism / cr.Typical
	}
	if !(rel(4) < rel(16) && rel(16) < rel(64)) {
		t.Errorf("pessimism not growing with depth: %v %v %v", rel(4), rel(16), rel(64))
	}
}

func TestStatQuantileCalibratedOnChain(t *testing.T) {
	// On a chain the statistical quantile is exact (sum of
	// independent normals): Monte Carlo's 99.8% point must match
	// mu + 3*sigma, while the worst corner overshoots it.
	m := delay.MustBind(netlist.MustCompile(netlist.Chain(12)), delay.Default())
	S := m.UnitSizes()
	cr := Corners(m, S, 3)
	mc, err := montecarlo.Run(m, S, montecarlo.Options{
		Samples: 200000, Seed: 3, KeepSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := mc.Quantile(0.998)
	if !close(cr.StatQuantile, q, 0.02*q) {
		t.Errorf("stat quantile %v vs MC 99.8%% point %v", cr.StatQuantile, q)
	}
	if cr.Worst < q*1.1 {
		t.Errorf("worst corner %v not clearly pessimistic vs %v", cr.Worst, q)
	}
}

func TestCornerWithZeroSigmaCollapses(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	m.Sigma = delay.Zero{}
	cr := Corners(m, m.UnitSizes(), 3)
	if cr.Best != cr.Worst || cr.Pessimism != 0 {
		t.Errorf("zero sigma: %+v", cr)
	}
}
