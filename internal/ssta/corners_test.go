package ssta

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/stats"
)

func TestCornersOrdering(t *testing.T) {
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Apex2Like(), netlist.Chain(10)} {
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(netlist.MustCompile(c), lib)
		S := m.UnitSizes()
		cr := Corners(m, S, 3)
		if !(cr.Best < cr.Typical && cr.Typical < cr.Worst) {
			t.Errorf("%s: corners not ordered: %v %v %v", c.Name, cr.Best, cr.Typical, cr.Worst)
		}
		// The paper's motivating claim: the worst corner is (much)
		// more pessimistic than the statistical quantile.
		if cr.Pessimism <= 0 {
			t.Errorf("%s: no pessimism: worst %v vs quantile %v",
				c.Name, cr.Worst, cr.StatQuantile)
		}
	}
}

func TestCornerPessimismGrowsWithDepth(t *testing.T) {
	// Per-gate sigmas add linearly at the corner but as sqrt(depth)
	// statistically, so the relative pessimism grows with depth.
	rel := func(n int) float64 {
		m := delay.MustBind(netlist.MustCompile(netlist.Chain(n)), delay.Default())
		cr := Corners(m, m.UnitSizes(), 3)
		return cr.Pessimism / cr.Typical
	}
	if !(rel(4) < rel(16) && rel(16) < rel(64)) {
		t.Errorf("pessimism not growing with depth: %v %v %v", rel(4), rel(16), rel(64))
	}
}

func TestStatQuantileCalibratedOnChain(t *testing.T) {
	// On a chain the statistical quantile is exact (sum of
	// independent normals): Monte Carlo's 99.8% point must match
	// mu + 3*sigma, while the worst corner overshoots it.
	m := delay.MustBind(netlist.MustCompile(netlist.Chain(12)), delay.Default())
	S := m.UnitSizes()
	cr := Corners(m, S, 3)
	mc, err := montecarlo.Run(m, S, montecarlo.Options{
		Samples: 200000, Seed: 3, KeepSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := mc.Quantile(0.998)
	if !approxEq(cr.StatQuantile, q, 0.02*q) {
		t.Errorf("stat quantile %v vs MC 99.8%% point %v", cr.StatQuantile, q)
	}
	if cr.Worst < q*1.1 {
		t.Errorf("worst corner %v not clearly pessimistic vs %v", cr.Worst, q)
	}
}

func TestCornerWithZeroSigmaCollapses(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	m.Sigma = delay.Zero{}
	cr := Corners(m, m.UnitSizes(), 3)
	if cr.Best != cr.Worst || cr.Pessimism != 0 {
		t.Errorf("zero sigma: %+v", cr)
	}
}

// TestCornerClampsInputArrivals pins the corner convention: every
// physical time floors at zero, input arrival quantiles included. A
// stochastic primary input whose best-case quantile mu - k*sigma is
// deep negative must enter the sweep at t = 0, not manufacture a
// negative circuit delay. (Gate delays were clamped but input
// arrivals were not, so wide input distributions used to push the
// best corner below zero on shallow circuits.)
func TestCornerClampsInputArrivals(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Chain(2)), delay.Default())
	for i := range m.G.C.Nodes {
		if m.G.C.Nodes[i].Kind == netlist.KindInput {
			m.Arrival[i] = stats.MV{Mu: 0.1, Var: 4} // mu - 3*sigma = -5.9
		}
	}
	cr := Corners(m, m.UnitSizes(), 3)
	if cr.Best < 0 {
		t.Fatalf("best corner went negative: %v", cr.Best)
	}
	if !(cr.Best < cr.Typical && cr.Typical < cr.Worst) {
		t.Fatalf("corners not ordered: %v %v %v", cr.Best, cr.Typical, cr.Worst)
	}
	// The clamped input contributes exactly zero at the best corner, so
	// the best corner equals the all-gates-fast sweep with a t=0 start:
	// recompute it with deterministic zero-arrival inputs and compare.
	for i := range m.G.C.Nodes {
		if m.G.C.Nodes[i].Kind == netlist.KindInput {
			m.Arrival[i] = stats.MV{}
		}
	}
	if ref := Corners(m, m.UnitSizes(), 3); cr.Best != ref.Best {
		t.Fatalf("clamped best corner %v, want the t=0 reference %v", cr.Best, ref.Best)
	}
}
