package ssta

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

func TestCanonicalMatchesIndependenceOnTree(t *testing.T) {
	// Trees have no reconvergence: every merge has zero covariance,
	// so the canonical sweep must agree with the independence sweep.
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Chain(6), netlist.BalancedTree(4)} {
		g := netlist.MustCompile(c)
		lib := delay.Default()
		if c.Name == "tree7" {
			lib = delay.PaperTree()
		}
		m := delay.MustBind(g, lib)
		S := m.UnitSizes()
		ind := Analyze(m, S, false).Tmax
		can := AnalyzeCanonical(m, S).Tmax
		if !approxEq(can.Mu, ind.Mu, 1e-9) {
			t.Errorf("%s: canonical mu %v vs independence %v", c.Name, can.Mu, ind.Mu)
		}
		if !approxEq(can.Var, ind.Var, 1e-9) {
			t.Errorf("%s: canonical var %v vs independence %v", c.Name, can.Var, ind.Var)
		}
	}
}

func TestCanonicalPerNodeMomentsOnChain(t *testing.T) {
	g := netlist.MustCompile(netlist.Chain(4))
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	can := AnalyzeCanonical(m, S)
	var want stats.MV
	for _, id := range g.C.GateIDs() {
		want = stats.Add(want, m.GateMV(id, S))
		got := can.Arrival[id]
		if !approxEq(got.Mu, want.Mu, 1e-12) || !approxEq(got.Var, want.Var, 1e-12) {
			t.Errorf("arrival(%s) = %+v, want %+v", g.C.Nodes[id].Name, got, want)
		}
	}
}

func TestCanonicalSharedPathCorrelation(t *testing.T) {
	// Two outputs sharing a long common prefix: in -> chain -> two
	// inverters. Their arrivals must be almost perfectly correlated.
	c := netlist.New("shared")
	c.AddInput("in")
	c.AddGate("g1", "inv", "in")
	c.AddGate("g2", "inv", "g1")
	c.AddGate("g3", "inv", "g2")
	c.AddGate("o1", "inv", "g3")
	c.AddGate("o2", "inv", "g3")
	c.MarkOutput("o1")
	c.MarkOutput("o2")
	g := netlist.MustCompile(c)
	m := delay.MustBind(g, delay.Default())
	can := AnalyzeCanonical(m, m.UnitSizes())
	if can.OutputCorr < 0.5 {
		t.Errorf("shared-prefix correlation = %v, want substantial", can.OutputCorr)
	}
	// The max of two nearly identical variables barely inflates the
	// mean: Tmax.Mu must sit well below the independent estimate.
	ind := Analyze(m, m.UnitSizes(), false).Tmax
	if can.Tmax.Mu >= ind.Mu {
		t.Errorf("correlation-aware mean %v not below independent %v", can.Tmax.Mu, ind.Mu)
	}
	// And the sigma must stay closer to the single-path sigma.
	if can.Tmax.Var <= ind.Var {
		t.Errorf("correlation-aware var %v not above independent %v", can.Tmax.Var, ind.Var)
	}
}

func TestCanonicalIdenticalOperandsExact(t *testing.T) {
	// max(X, X) = X exactly; the canonical form detects the perfect
	// correlation (theta = 0) while the independence model wrongly
	// inflates the mean.
	c := netlist.New("dup")
	c.AddInput("in")
	c.AddGate("g1", "inv", "in")
	c.AddGate("g2", "nand2", "g1", "g1")
	c.MarkOutput("g2")
	g := netlist.MustCompile(c)
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	can := AnalyzeCanonical(m, S)
	want := stats.Add(m.GateMV(g.C.MustID("g1"), S), m.GateMV(g.C.MustID("g2"), S))
	if !approxEq(can.Tmax.Mu, want.Mu, 1e-9) || !approxEq(can.Tmax.Var, want.Var, 1e-9) {
		t.Errorf("dup-pin Tmax = %+v, want %+v", can.Tmax, want)
	}
	ind := Analyze(m, S, false).Tmax
	if ind.Mu <= want.Mu {
		t.Errorf("independence model should inflate the duplicated max: %v vs %v", ind.Mu, want.Mu)
	}
}

func TestCanonicalOutputCorrNaNForSingleOutput(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	can := AnalyzeCanonical(m, m.UnitSizes())
	if !math.IsNaN(can.OutputCorr) {
		t.Errorf("single-output correlation = %v, want NaN", can.OutputCorr)
	}
}

func TestCanonicalVarianceNonNegative(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Apex1Like()), delay.Default())
	can := AnalyzeCanonical(m, m.UnitSizes())
	for id, a := range can.Arrival {
		if a.Var < 0 {
			t.Errorf("node %d variance %v", id, a.Var)
		}
	}
	if can.Tmax.Var < 0 {
		t.Errorf("Tmax variance %v", can.Tmax.Var)
	}
}
