// Package ssta implements statistical static timing analysis in the
// style of Berkelaar's linear-time method (the paper's refs [1], [2]):
// one topological forward sweep propagating Gaussian arrival-time
// moments through the analytic add and max operators of
// internal/stats.
//
// Beyond the paper, the package also implements the exact adjoint
// (reverse-mode) sweep: because every operator has closed-form
// derivatives, the gradient of any function of the circuit delay
// moments with respect to all gate speed factors is available in one
// additional backward pass. The reduced sizing formulation in
// internal/sizing is built on this.
package ssta

import (
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// shiftMV translates a moment pair by a constant delay.
func shiftMV(mv stats.MV, off float64) stats.MV {
	if off == 0 {
		return mv
	}
	return stats.MV{Mu: mv.Mu + off, Var: mv.Var}
}

// Result holds the outcome of a statistical timing sweep.
type Result struct {
	// Arrival[id] is the arrival-time distribution at node id's
	// output (for inputs: the input arrival itself).
	Arrival []stats.MV
	// GateDelay[id] is the gate delay distribution used for gate id.
	GateDelay []stats.MV
	// Tmax is the circuit delay distribution: the stochastic max over
	// all primary outputs.
	Tmax stats.MV

	withTape bool
	// gateFold[id] holds the Jacobian of each two-operand max in the
	// left fold over gate id's fanins (k fanins produce k-1 steps).
	gateFold [][]stats.Jac2x4
	// outFold holds the Jacobians of the fold over primary outputs.
	outFold []stats.Jac2x4
}

// forwardNode computes node id's arrival (and, for gates, the gate
// delay and fold tape) from its fanins' already-final arrivals. Each
// call writes only slots owned by id, so independent nodes — all
// nodes of one level — may run concurrently.
func forwardNode(r *Result, m *delay.Model, S []float64, id netlist.NodeID, withTape bool) {
	nd := &m.G.C.Nodes[id]
	if nd.Kind == netlist.KindInput {
		r.Arrival[id] = m.Arrival[id]
		return
	}
	// U = max over fanin arrivals, folded two at a time
	// (paper eq 18b); each operand is shifted by its pin's
	// additive delay (eq 1's per-pin t_i). Constant shifts leave
	// the max Jacobians valid as-is, so the tape is unchanged.
	u := shiftMV(r.Arrival[nd.Fanin[0]], m.PinOff(id, 0))
	if withTape && len(nd.Fanin) > 1 {
		steps := make([]stats.Jac2x4, 0, len(nd.Fanin)-1)
		for k, f := range nd.Fanin[1:] {
			var jac stats.Jac2x4
			u, jac = stats.Max2Jac(u, shiftMV(r.Arrival[f], m.PinOff(id, k+1)))
			steps = append(steps, jac)
		}
		r.gateFold[id] = steps
	} else {
		for k, f := range nd.Fanin[1:] {
			u = stats.Max2(u, shiftMV(r.Arrival[f], m.PinOff(id, k+1)))
		}
	}
	// T = U + t (paper eq 18c), with t from the sizable model.
	t := m.GateMV(id, S)
	r.GateDelay[id] = t
	r.Arrival[id] = stats.Add(u, t)
}

// foldOutputs computes the circuit delay: the stochastic max over the
// primary outputs (paper eq 18a), folded in the fixed output order.
func foldOutputs(r *Result, g *netlist.Graph, withTape bool) {
	outs := g.C.Outputs
	tmax := r.Arrival[outs[0]]
	if withTape && len(outs) > 1 {
		r.outFold = make([]stats.Jac2x4, 0, len(outs)-1)
		for _, o := range outs[1:] {
			var jac stats.Jac2x4
			tmax, jac = stats.Max2Jac(tmax, r.Arrival[o])
			r.outFold = append(r.outFold, jac)
		}
	} else {
		for _, o := range outs[1:] {
			tmax = stats.Max2(tmax, r.Arrival[o])
		}
	}
	r.Tmax = tmax
}

// Analyze runs the forward statistical sweep for the model under the
// speed-factor assignment S (indexed by NodeID). When withTape is set,
// the per-max Jacobians are recorded so Backward can run. Analyze is
// the serial sweep; AnalyzeWorkers is the parallel variant and
// produces bit-identical results.
func Analyze(m *delay.Model, S []float64, withTape bool) *Result {
	g := m.G
	n := len(g.C.Nodes)
	r := &Result{
		Arrival:   make([]stats.MV, n),
		GateDelay: make([]stats.MV, n),
		withTape:  withTape,
	}
	if withTape {
		r.gateFold = make([][]stats.Jac2x4, n)
	}
	for _, id := range g.Topo {
		forwardNode(r, m, S, id, withTape)
	}
	foldOutputs(r, g, withTape)
	return r
}

// seedAdjoint unfolds the output max in reverse, seeding the adjoint
// arrays from (d phi/d muTmax, d phi/d varTmax).
func (r *Result) seedAdjoint(g *netlist.Graph, seedMu, seedVar float64, adjMu, adjVar []float64) {
	outs := g.C.Outputs
	aMu, aVar := seedMu, seedVar // adjoint of the fold accumulator
	for i := len(outs) - 1; i >= 1; i-- {
		j := r.outFold[i-1]
		o := outs[i]
		// Operand B of the step is output i.
		adjMu[o] += aMu*j[0][2] + aVar*j[1][2]
		adjVar[o] += aMu*j[0][3] + aVar*j[1][3]
		// Accumulator A feeds the previous step.
		aMu, aVar = aMu*j[0][0]+aVar*j[1][0], aMu*j[0][1]+aVar*j[1][1]
	}
	adjMu[outs[0]] += aMu
	adjVar[outs[0]] += aVar
}

// backwardNode pushes gate id's adjoint into its speed-factor gradient
// and its fanins' adjoints. All of id's own adjoint contributions must
// already be final — guaranteed when levels are processed in
// decreasing order, because every fanout sits at a strictly higher
// level.
func (r *Result) backwardNode(m *delay.Model, S []float64, id netlist.NodeID, adjMu, adjVar, grad []float64) {
	am, av := adjMu[id], adjVar[id]
	if am == 0 && av == 0 {
		return
	}
	// T = U + t: both summands inherit the adjoint unchanged.
	// Gate delay: var_t = Sigma.Var(mu_t), so the variance
	// adjoint folds into the mean-delay adjoint...
	muT := r.GateDelay[id].Mu
	dmu := am + av*m.Sigma.DVar(muT)
	m.GateMuGrad(id, S, dmu, grad)

	// U side: unfold the fanin max in reverse.
	fanin := m.G.C.Nodes[id].Fanin
	uMu, uVar := am, av
	steps := r.gateFold[id]
	for k := len(fanin) - 1; k >= 1; k-- {
		j := steps[k-1]
		f := fanin[k]
		adjMu[f] += uMu*j[0][2] + uVar*j[1][2]
		adjVar[f] += uMu*j[0][3] + uVar*j[1][3]
		uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
	}
	adjMu[fanin[0]] += uMu
	adjVar[fanin[0]] += uVar
}

// Backward propagates the adjoint seed (d phi/d muTmax, d phi/d
// varTmax) back through the recorded sweep, returning d phi/d S as a
// vector indexed by NodeID (input entries are zero). The Result must
// have been produced with withTape set and the same (m, S).
//
// The sweep visits levels in decreasing order and nodes inside a
// level in bucket order — the canonical adjoint accumulation order
// that BackwardWorkers reproduces exactly for any worker count.
func (r *Result) Backward(m *delay.Model, S []float64, seedMu, seedVar float64) []float64 {
	if !r.withTape {
		panic("ssta: Backward requires a taped Analyze")
	}
	g := m.G
	n := len(g.C.Nodes)
	// adjMu/adjVar accumulate d phi / d Arrival[id].{Mu, Var}.
	adjMu := make([]float64, n)
	adjVar := make([]float64, n)
	grad := make([]float64, n)
	r.seedAdjoint(g, seedMu, seedVar, adjMu, adjVar)
	// Level 0 holds only primary inputs, which have no gradient.
	for l := len(g.Levels) - 1; l >= 1; l-- {
		for _, id := range g.Levels[l] {
			r.backwardNode(m, S, id, adjMu, adjVar, grad)
		}
	}
	return grad
}

// ObjectiveMuPlusKSigma returns phi = mu + k*sigma of the circuit
// delay together with the adjoint seed pair for Backward. At sigma ->
// 0 with k != 0 the seed saturates using a variance floor to keep the
// gradient finite.
func ObjectiveMuPlusKSigma(tmax stats.MV, k float64) (phi, seedMu, seedVar float64) {
	if k == 0 {
		return tmax.Mu, 1, 0
	}
	v := tmax.Var
	const floor = 1e-18
	if v < floor {
		v = floor
	}
	sigma := math.Sqrt(v)
	return tmax.Mu + k*sigma, 1, k / (2 * sigma)
}

// GradMuPlusKSigma is a convenience wrapper: one taped sweep plus one
// backward pass, returning phi and d phi/d S.
func GradMuPlusKSigma(m *delay.Model, S []float64, k float64) (float64, []float64) {
	r := Analyze(m, S, true)
	phi, sMu, sVar := ObjectiveMuPlusKSigma(r.Tmax, k)
	return phi, r.Backward(m, S, sMu, sVar)
}

// Criticality returns d muTmax / d mu_t(gate) for every gate: how much
// the mean circuit delay moves per unit of that gate's mean delay. In
// deterministic STA this is the 0/1 indicator of critical-path
// membership; statistically it is a smooth weight in [0, 1] spread
// over competing paths — the "statistical criticality" used for
// reporting in cmd/ssta.
func Criticality(m *delay.Model, S []float64) []float64 {
	g := m.G
	r := Analyze(m, S, true)
	n := len(g.C.Nodes)
	adjMu := make([]float64, n)
	adjVar := make([]float64, n)
	crit := make([]float64, n)
	r.seedAdjoint(g, 1, 0, adjMu, adjVar)

	for l := len(g.Levels) - 1; l >= 1; l-- {
		for _, id := range g.Levels[l] {
			am, av := adjMu[id], adjVar[id]
			muT := r.GateDelay[id].Mu
			crit[id] = am + av*m.Sigma.DVar(muT)
			fanin := g.C.Nodes[id].Fanin
			uMu, uVar := am, av
			steps := r.gateFold[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				j := steps[k-1]
				f := fanin[k]
				adjMu[f] += uMu*j[0][2] + uVar*j[1][2]
				adjVar[f] += uMu*j[0][3] + uVar*j[1][3]
				uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
			}
			adjMu[fanin[0]] += uMu
			adjVar[fanin[0]] += uVar
		}
	}
	return crit
}
