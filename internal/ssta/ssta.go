// Package ssta implements statistical static timing analysis in the
// style of Berkelaar's linear-time method (the paper's refs [1], [2]):
// one topological forward sweep propagating Gaussian arrival-time
// moments through the analytic add and max operators of
// internal/stats.
//
// Beyond the paper, the package also implements the exact adjoint
// (reverse-mode) sweep: because every operator has closed-form
// derivatives, the gradient of any function of the circuit delay
// moments with respect to all gate speed factors is available in one
// additional backward pass. The reduced sizing formulation in
// internal/sizing is built on this.
package ssta

import (
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// shiftMV translates a moment pair by a constant delay.
func shiftMV(mv stats.MV, off float64) stats.MV {
	if off == 0 {
		return mv
	}
	return stats.MV{Mu: mv.Mu + off, Var: mv.Var}
}

// Result holds the outcome of a statistical timing sweep.
type Result struct {
	// Arrival[id] is the arrival-time distribution at node id's
	// output (for inputs: the input arrival itself).
	Arrival []stats.MV
	// GateDelay[id] is the gate delay distribution used for gate id.
	GateDelay []stats.MV
	// Tmax is the circuit delay distribution: the stochastic max over
	// all primary outputs.
	Tmax stats.MV

	withTape bool
	// gateFold[id] holds the Jacobian of each two-operand max in the
	// left fold over gate id's fanins (k fanins produce k-1 steps).
	gateFold [][]stats.Jac2x4
	// outFold holds the Jacobians of the fold over primary outputs.
	outFold []stats.Jac2x4
}

// forwardNode computes node id's arrival (and, for gates, the gate
// delay and fold tape) from its fanins' already-final arrivals. Each
// call writes only slots owned by id, so independent nodes — all
// nodes of one level — may run concurrently.
func forwardNode(r *Result, m *delay.Model, S []float64, id netlist.NodeID, withTape bool) {
	nd := &m.G.C.Nodes[id]
	if nd.Kind == netlist.KindInput {
		r.Arrival[id] = m.Arrival[id]
		return
	}
	forwardGate(r, m, nd, id, m.GateMV(id, S), withTape)
}

// forwardNodeLoaded is forwardNode with the gate's capacitive load
// supplied by the caller — the hierarchical engine caches loads under
// the SDependents invalidation rule, so warm sweeps skip the
// per-node fanout scan. Bit-identical to forwardNode when the cached
// load equals the recomputed one (delay.Model.GateMVLoaded).
func forwardNodeLoaded(r *Result, m *delay.Model, S []float64, id netlist.NodeID, withTape bool, load float64) {
	nd := &m.G.C.Nodes[id]
	if nd.Kind == netlist.KindInput {
		r.Arrival[id] = m.Arrival[id]
		return
	}
	forwardGate(r, m, nd, id, m.GateMVLoaded(id, S, load), withTape)
}

// forwardGate is the shared gate body of the forward sweep: the fanin
// max fold (taped or not) plus the delay add, with the gate delay
// moments t already evaluated.
func forwardGate(r *Result, m *delay.Model, nd *netlist.Node, id netlist.NodeID, t stats.MV, withTape bool) {
	// U = max over fanin arrivals, folded two at a time
	// (paper eq 18b); each operand is shifted by its pin's
	// additive delay (eq 1's per-pin t_i). Constant shifts leave
	// the max Jacobians valid as-is, so the tape is unchanged.
	u := shiftMV(r.Arrival[nd.Fanin[0]], m.PinOff(id, 0))
	if withTape && len(nd.Fanin) > 1 {
		// Reuse the node's tape slots when already sized (the
		// incremental engine pre-carves them from one arena, so
		// re-evaluating a node is allocation-free); a fresh Result
		// allocates them here once.
		steps := r.gateFold[id]
		if len(steps) != len(nd.Fanin)-1 {
			steps = make([]stats.Jac2x4, len(nd.Fanin)-1)
			r.gateFold[id] = steps
		}
		for k, f := range nd.Fanin[1:] {
			u, steps[k] = stats.Max2Jac(u, shiftMV(r.Arrival[f], m.PinOff(id, k+1)))
		}
	} else {
		for k, f := range nd.Fanin[1:] {
			u = stats.Max2(u, shiftMV(r.Arrival[f], m.PinOff(id, k+1)))
		}
	}
	// T = U + t (paper eq 18c), with t from the sizable model.
	r.GateDelay[id] = t
	r.Arrival[id] = stats.Add(u, t)
}

// foldOutputs computes the circuit delay: the stochastic max over the
// primary outputs (paper eq 18a), folded in the fixed output order.
func foldOutputs(r *Result, g *netlist.Graph, withTape bool) {
	outs := g.C.Outputs
	tmax := r.Arrival[outs[0]]
	if withTape && len(outs) > 1 {
		// As in forwardNode, reuse the fold slots when already sized.
		if len(r.outFold) != len(outs)-1 {
			r.outFold = make([]stats.Jac2x4, len(outs)-1)
		}
		for i, o := range outs[1:] {
			tmax, r.outFold[i] = stats.Max2Jac(tmax, r.Arrival[o])
		}
	} else {
		for _, o := range outs[1:] {
			tmax = stats.Max2(tmax, r.Arrival[o])
		}
	}
	r.Tmax = tmax
}

// Analyze runs the forward statistical sweep for the model under the
// speed-factor assignment S (indexed by NodeID). When withTape is set,
// the per-max Jacobians are recorded so Backward can run. Analyze is
// the serial sweep; AnalyzeWorkers is the parallel variant and
// produces bit-identical results.
func Analyze(m *delay.Model, S []float64, withTape bool) *Result {
	g := m.G
	n := len(g.C.Nodes)
	r := &Result{
		Arrival:   make([]stats.MV, n),
		GateDelay: make([]stats.MV, n),
		withTape:  withTape,
	}
	if withTape {
		r.gateFold = make([][]stats.Jac2x4, n)
	}
	for _, id := range g.Topo {
		forwardNode(r, m, S, id, withTape)
	}
	foldOutputs(r, g, withTape)
	return r
}

// seedAdjoint unfolds the output max in reverse, seeding the adjoint
// arrays from (d phi/d muTmax, d phi/d varTmax).
func (r *Result) seedAdjoint(g *netlist.Graph, seedMu, seedVar float64, adjMu, adjVar []float64) {
	outs := g.C.Outputs
	aMu, aVar := seedMu, seedVar // adjoint of the fold accumulator
	for i := len(outs) - 1; i >= 1; i-- {
		j := r.outFold[i-1]
		o := outs[i]
		// Operand B of the step is output i.
		adjMu[o] += aMu*j[0][2] + aVar*j[1][2]
		adjVar[o] += aMu*j[0][3] + aVar*j[1][3]
		// Accumulator A feeds the previous step.
		aMu, aVar = aMu*j[0][0]+aVar*j[1][0], aMu*j[0][1]+aVar*j[1][1]
	}
	adjMu[outs[0]] += aMu
	adjVar[outs[0]] += aVar
}

// backwardNode pushes gate id's adjoint into its speed-factor gradient
// and its fanins' adjoints, recording the gate's mean-delay adjoint in
// dmu (the statistical criticality of the gate when the seed is
// (1, 0)). All of id's own adjoint contributions must already be
// final — guaranteed when levels are processed in decreasing order,
// because every fanout sits at a strictly higher level.
func (r *Result) backwardNode(m *delay.Model, S []float64, id netlist.NodeID, adjMu, adjVar, grad, dmu []float64) {
	am, av := adjMu[id], adjVar[id]
	if am == 0 && av == 0 {
		return
	}
	r.backwardNodeActive(m, S, id, m.Load(id, S), am, av, adjMu, adjVar, grad, dmu)
}

// backwardNodeActive is backwardNode's body past the zero-adjoint
// skip, with the gate's capacitive load supplied by the caller. The
// flat sweeps recompute it (above); the hierarchical engine passes
// its cached load — bitwise the same value — so warm adjoint sweeps
// skip the fanout scan inside the gradient accumulation.
func (r *Result) backwardNodeActive(m *delay.Model, S []float64, id netlist.NodeID, load, am, av float64, adjMu, adjVar, grad, dmu []float64) {
	// T = U + t: both summands inherit the adjoint unchanged.
	// Gate delay: var_t = Sigma.Var(mu_t), so the variance
	// adjoint folds into the mean-delay adjoint...
	muT := r.GateDelay[id].Mu
	d := am + av*m.Sigma.DVar(muT)
	dmu[id] = d
	m.GateMuGradLoaded(id, S, load, d, grad)

	// U side: unfold the fanin max in reverse.
	fanin := m.G.C.Nodes[id].Fanin
	uMu, uVar := am, av
	steps := r.gateFold[id]
	for k := len(fanin) - 1; k >= 1; k-- {
		j := steps[k-1]
		f := fanin[k]
		adjMu[f] += uMu*j[0][2] + uVar*j[1][2]
		adjVar[f] += uMu*j[0][3] + uVar*j[1][3]
		uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
	}
	adjMu[fanin[0]] += uMu
	adjVar[fanin[0]] += uVar
}

// adjointScratch holds every slab one adjoint sweep needs. The
// entry-point wrappers allocate one per call; the incremental engine
// owns one persistently so repeated backward passes are
// allocation-free.
type adjointScratch struct {
	// adjMu/adjVar accumulate d phi / d Arrival[id].{Mu, Var}; grad
	// receives d phi / d S; dmu receives each gate's mean-delay
	// adjoint (the statistical criticality under a (1, 0) seed).
	adjMu, adjVar, grad, dmu []float64
	// cMu/cVar are the per-fanin-pin contribution slots of the
	// parallel apply phase, laid out flat with the graph's memoized
	// FaninOff offsets (computed once in netlist.Compile — the scratch
	// must not re-derive the O(V+E) edge bookkeeping per sweep).
	cMu, cVar []float64
}

// ensure sizes and zeroes the scratch for graph g; the parallel slots
// are only (re)built when workers > 1 will use them.
func (sc *adjointScratch) ensure(g *netlist.Graph, parallel bool) {
	n := len(g.C.Nodes)
	if len(sc.adjMu) != n {
		sc.adjMu = make([]float64, n)
		sc.adjVar = make([]float64, n)
		sc.grad = make([]float64, n)
		sc.dmu = make([]float64, n)
	} else {
		clear(sc.adjMu)
		clear(sc.adjVar)
		clear(sc.grad)
		clear(sc.dmu)
	}
	if !parallel {
		return
	}
	if len(sc.cMu) != g.Edges {
		sc.cMu = make([]float64, g.Edges)
		sc.cVar = make([]float64, g.Edges)
	}
	// cMu/cVar need no zeroing: the apply phase reads exactly the
	// slots the compute phase just wrote.
}

// backwardInto is the single implementation behind Backward,
// BackwardWorkers and the incremental engine's adjoint pass: it runs
// the sweep with all state in sc and returns sc.grad. The serial and
// parallel paths fold every floating-point accumulation in the same
// order, so the result is bit-identical for any worker count.
func (r *Result) backwardInto(m *delay.Model, S []float64, seedMu, seedVar float64, workers int, sc *adjointScratch) []float64 {
	if !r.withTape {
		panic("ssta: adjoint sweep requires a taped Analyze")
	}
	g := m.G
	n := len(g.C.Nodes)
	if workers > 1 && n < parallelMinNodes {
		workers = 1
	}
	sc.ensure(g, workers > 1)
	r.seedAdjoint(g, seedMu, seedVar, sc.adjMu, sc.adjVar)
	if workers <= 1 {
		// Level 0 holds only primary inputs, which have no gradient.
		for l := len(g.Levels) - 1; l >= 1; l-- {
			for _, id := range g.Levels[l] {
				r.backwardNode(m, S, id, sc.adjMu, sc.adjVar, sc.grad, sc.dmu)
			}
		}
		return sc.grad
	}
	adjMu, adjVar, dmu := sc.adjMu, sc.adjVar, sc.dmu
	cMu, cVar, off := sc.cMu, sc.cVar, g.FaninOff
	for l := len(g.Levels) - 1; l >= 1; l-- {
		bucket := g.Levels[l]
		// Compute phase: pure reads of finalized adjoints and the
		// tape; writes only to slots owned by the node.
		runLevel(workers, len(bucket), func(i int) {
			id := bucket[i]
			am, av := adjMu[id], adjVar[id]
			if am == 0 && av == 0 {
				return
			}
			dmu[id] = am + av*m.Sigma.DVar(r.GateDelay[id].Mu)
			fanin := g.C.Nodes[id].Fanin
			uMu, uVar := am, av
			steps := r.gateFold[id]
			base := off[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				j := steps[k-1]
				cMu[base+k] = uMu*j[0][2] + uVar*j[1][2]
				cVar[base+k] = uMu*j[0][3] + uVar*j[1][3]
				uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
			}
			cMu[base] = uMu
			cVar[base] = uVar
		})
		// Apply phase: fixed bucket order, mirroring the serial
		// per-node write order (fanin pins high to low, pin 0 last).
		for _, id := range bucket {
			am, av := adjMu[id], adjVar[id]
			if am == 0 && av == 0 {
				continue
			}
			m.GateMuGrad(id, S, dmu[id], sc.grad)
			fanin := g.C.Nodes[id].Fanin
			base := off[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				adjMu[fanin[k]] += cMu[base+k]
				adjVar[fanin[k]] += cVar[base+k]
			}
			adjMu[fanin[0]] += cMu[base]
			adjVar[fanin[0]] += cVar[base]
		}
	}
	return sc.grad
}

// Backward propagates the adjoint seed (d phi/d muTmax, d phi/d
// varTmax) back through the recorded sweep, returning d phi/d S as a
// vector indexed by NodeID (input entries are zero). The Result must
// have been produced with withTape set and the same (m, S).
//
// The sweep visits levels in decreasing order and nodes inside a
// level in bucket order — the canonical adjoint accumulation order
// that BackwardWorkers reproduces exactly for any worker count.
func (r *Result) Backward(m *delay.Model, S []float64, seedMu, seedVar float64) []float64 {
	if !r.withTape {
		panic("ssta: Backward requires a taped Analyze")
	}
	var sc adjointScratch
	return r.backwardInto(m, S, seedMu, seedVar, 1, &sc)
}

// ObjectiveMuPlusKSigma returns phi = mu + k*sigma of the circuit
// delay together with the adjoint seed pair for Backward. At sigma ->
// 0 with k != 0 the seed saturates using a variance floor to keep the
// gradient finite. A non-finite k panics here, the single funnel every
// mu + k*sigma objective path (serial, workers, ctx, batch) flows
// through, so a NaN risk factor cannot surface downstream as a
// silently absurd circuit delay.
func ObjectiveMuPlusKSigma(tmax stats.MV, k float64) (phi, seedMu, seedVar float64) {
	checkRiskFactor(k, "ObjectiveMuPlusKSigma")
	if k == 0 {
		return tmax.Mu, 1, 0
	}
	v := tmax.Var
	const floor = 1e-18
	if v < floor {
		v = floor
	}
	sigma := math.Sqrt(v)
	return tmax.Mu + k*sigma, 1, k / (2 * sigma)
}

// GradMuPlusKSigma is a convenience wrapper: one taped sweep plus one
// backward pass, returning phi and d phi/d S.
func GradMuPlusKSigma(m *delay.Model, S []float64, k float64) (float64, []float64) {
	r := Analyze(m, S, true)
	phi, sMu, sVar := ObjectiveMuPlusKSigma(r.Tmax, k)
	return phi, r.Backward(m, S, sMu, sVar)
}

// Criticality returns d muTmax / d mu_t(gate) for every gate: how much
// the mean circuit delay moves per unit of that gate's mean delay. In
// deterministic STA this is the 0/1 indicator of critical-path
// membership; statistically it is a smooth weight in [0, 1] spread
// over competing paths — the "statistical criticality" used for
// reporting in cmd/ssta.
func Criticality(m *delay.Model, S []float64) []float64 {
	return CriticalityWorkers(m, S, 1)
}

// CriticalityWorkers is Criticality on the shared workers-aware
// sweeps (AnalyzeWorkers plus the levelized adjoint), bit-identical
// to the serial Criticality for any worker count. The per-gate
// criticality is exactly the gate's mean-delay adjoint under the
// (d muTmax, d varTmax) = (1, 0) seed, which the adjoint sweep
// records as a byproduct.
func CriticalityWorkers(m *delay.Model, S []float64, workers int) []float64 {
	r := AnalyzeWorkers(m, S, true, workers)
	var sc adjointScratch
	r.backwardInto(m, S, 1, 0, resolveWorkers(workers), &sc)
	crit := make([]float64, len(sc.dmu))
	copy(crit, sc.dmu)
	return crit
}
