package ssta

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// This file implements the persistent incremental analysis engine.
// Statistical-timing-driven sizers are dominated by repeated localized
// re-evaluations — one gate's speed factor changes, everything else
// stays put — yet a fresh Analyze pays an allocating O(V) sweep every
// time. Inc keeps the whole forward state (arrivals, gate delays, the
// adjoint tape) alive in arena-backed slabs across evaluations and
// re-runs only the dirty cone:
//
//   - SetSize(g, s) marks dirty exactly the gates whose delay depends
//     on S[g]: g itself and its fanin drivers, whose load term
//     c*sum(C_in*S) contains C_in[g]*S[g] (delay.Model.SDependents).
//   - Update() re-evaluates dirty nodes level by level; a node whose
//     recomputed arrival moments are bit-identical to before does not
//     propagate to its fanout (early cutoff), so the dirty region is
//     the true changed cone, not the full structural cone.
//   - Every recomputation runs the same forwardNode fold in the same
//     order as a fresh sweep, and unchanged nodes hold values a fresh
//     sweep would recompute identically — so the engine state is
//     bit-identical to Analyze/AnalyzeWorkers at the current sizes,
//     for any worker count.
//
// Trial/Commit/Rollback bound what-if moves: Rollback restores every
// overwritten slab entry (and the speed factors) from an undo log, so
// a rejected move costs O(touched) instead of a recompute.

// IncOptions configures an incremental engine.
type IncOptions struct {
	// Workers bounds the parallelism of the level sweeps inside
	// Update and the adjoint pass: <= 0 uses one worker per CPU, 1
	// forces serial execution. Results are bit-identical for every
	// worker count; only the serial path is allocation-free in the
	// steady state (the parallel path spawns goroutines per level).
	Workers int
	// Recorder, when non-nil, receives one "inc.update" event per
	// Update that had work pending, carrying the dirty-node and
	// frontier counts (worker-count-invariant by construction). Nil
	// disables instrumentation at zero cost.
	Recorder telemetry.Recorder
}

// Inc is a persistent incremental SSTA engine. It is not safe for
// concurrent use; one engine serves one evaluation loop.
type Inc struct {
	m       *delay.Model
	workers int
	rec     telemetry.Recorder

	// s is the engine's current speed-factor assignment (owned copy).
	s []float64

	// res holds the forward state. res.gateFold[id] is a fixed
	// subslice of tapeArena, carved once at construction, so
	// re-evaluating a node rewrites its tape slots in place.
	res       Result
	tapeArena []stats.Jac2x4

	// sc is the persistent adjoint scratch behind Backward.
	sc adjointScratch

	// markDirtyFn is the bound markDirty method, created once so the
	// SetSize hot path does not allocate a method value per call.
	markDirtyFn func(netlist.NodeID)

	// Dirty tracking: dirty flags plus per-level pending lists
	// (insertion-ordered, deterministic because all marking happens
	// on the coordinating goroutine), and the dirty level span.
	dirty          []bool
	byLevel        [][]netlist.NodeID
	changed        []bool
	minLvl, maxLvl int

	updates int // Update calls that had work, for the event stream

	// Trial state: a generation-stamped undo log. gen identifies the
	// open trial; nodeGen/sGen record which slabs and sizes were
	// already saved this trial so each is logged at most once.
	inTrial      bool
	gen          uint64
	nodeGen      []uint64
	sGen         []uint64
	logNodes     []nodeSave
	logTape      []stats.Jac2x4
	logS         []sizeSave
	savedOutFold []stats.Jac2x4
	savedTmax    stats.MV
}

// nodeSave is one undo-log entry: the node's pre-trial arrival and
// gate delay, plus the offset of its saved tape steps in logTape
// (the count is implied by the node's fanin arity).
type nodeSave struct {
	id      netlist.NodeID
	arr, gd stats.MV
	tapeAt  int
}

// sizeSave is one undo-log entry for a speed factor.
type sizeSave struct {
	id netlist.NodeID
	s  float64
}

// NewInc builds an engine for the model at the speed-factor
// assignment S (copied) and runs the initial full taped sweep.
func NewInc(m *delay.Model, S []float64, opt IncOptions) *Inc {
	g := m.G
	n := len(g.C.Nodes)
	if len(S) != n {
		panic(fmt.Sprintf("ssta: NewInc got %d sizes for %d nodes", len(S), n))
	}
	inc := &Inc{
		m:       m,
		workers: resolveWorkers(opt.Workers),
		rec:     opt.Recorder,
		s:       append([]float64(nil), S...),
		res: Result{
			Arrival:   make([]stats.MV, n),
			GateDelay: make([]stats.MV, n),
			withTape:  true,
			gateFold:  make([][]stats.Jac2x4, n),
		},
		dirty:   make([]bool, n),
		changed: make([]bool, n),
		byLevel: make([][]netlist.NodeID, len(g.Levels)),
		nodeGen: make([]uint64, n),
		sGen:    make([]uint64, n),
	}
	inc.clearSpan()
	inc.markDirtyFn = inc.markDirty
	// Carve the per-gate tape slots out of one arena so the whole
	// tape is two allocations and re-evaluations are in-place.
	total := 0
	for i := range g.C.Nodes {
		if k := len(g.C.Nodes[i].Fanin); k > 1 {
			total += k - 1
		}
	}
	inc.tapeArena = make([]stats.Jac2x4, total)
	at := 0
	for i := range g.C.Nodes {
		if k := len(g.C.Nodes[i].Fanin); k > 1 {
			inc.res.gateFold[i] = inc.tapeArena[at : at+k-1 : at+k-1]
			at += k - 1
		}
	}
	if no := len(g.C.Outputs); no > 1 {
		inc.res.outFold = make([]stats.Jac2x4, no-1)
		inc.savedOutFold = make([]stats.Jac2x4, no-1)
	}
	// Initial full sweep, level by level — identical fold order to
	// AnalyzeWorkers, writing straight into the slabs.
	for _, bucket := range g.Levels {
		bucket := bucket
		runLevel(inc.workers, len(bucket), func(i int) {
			forwardNode(&inc.res, m, inc.s, bucket[i], true)
		})
	}
	foldOutputs(&inc.res, g, true)
	return inc
}

// clearSpan resets the dirty level span to the empty sentinel.
func (inc *Inc) clearSpan() {
	inc.minLvl, inc.maxLvl = len(inc.m.G.Levels), -1
}

// markDirty queues a gate for re-evaluation (idempotent).
func (inc *Inc) markDirty(id netlist.NodeID) {
	if inc.dirty[id] {
		return
	}
	inc.dirty[id] = true
	l := inc.m.G.Level[id]
	inc.byLevel[l] = append(inc.byLevel[l], id)
	if l < inc.minLvl {
		inc.minLvl = l
	}
	if l > inc.maxLvl {
		inc.maxLvl = l
	}
}

// SetSize sets gate id's speed factor and marks the load-dependent
// gates dirty (id and its fanin drivers — the SDependents rule). A
// bit-identical size is a no-op. The change takes effect at the next
// Update.
//
// A non-finite size panics at this API boundary (the checkRiskFactor
// convention): NaN would poison the slabs and, being != to itself,
// could never even no-op out through the bit-compare guard below, so
// it must not reach the engine at all. Callers exposing SetSize to
// untrusted input (the service's PATCH path) validate first.
func (inc *Inc) SetSize(id netlist.NodeID, s float64) {
	if inc.m.G.C.Nodes[id].Kind != netlist.KindGate {
		panic("ssta: Inc.SetSize on a non-gate node")
	}
	if math.IsNaN(s) || math.IsInf(s, 0) {
		panic("ssta: Inc.SetSize requires a finite speed factor, got " + formatFloat(s))
	}
	if inc.s[id] == s {
		return
	}
	if inc.inTrial && inc.sGen[id] != inc.gen {
		inc.sGen[id] = inc.gen
		inc.logS = append(inc.logS, sizeSave{id: id, s: inc.s[id]})
	}
	inc.s[id] = s
	inc.m.SDependents(id, inc.markDirtyFn)
}

// saveNode logs a node's slabs once per trial before they are
// overwritten.
func (inc *Inc) saveNode(id netlist.NodeID) {
	if inc.nodeGen[id] == inc.gen {
		return
	}
	inc.nodeGen[id] = inc.gen
	at := len(inc.logTape)
	inc.logTape = append(inc.logTape, inc.res.gateFold[id]...)
	inc.logNodes = append(inc.logNodes, nodeSave{
		id: id, arr: inc.res.Arrival[id], gd: inc.res.GateDelay[id], tapeAt: at,
	})
}

// Update re-evaluates the dirty cone level by level and returns the
// circuit delay moments. Nodes whose recomputed arrival is
// bit-identical to before stop propagating (early cutoff). The
// resulting state — arrivals, gate delays, tape, Tmax — is
// bit-identical to a fresh taped Analyze/AnalyzeWorkers at the
// current sizes, for any worker count. With nothing dirty it returns
// the cached Tmax untouched.
func (inc *Inc) Update() stats.MV {
	if inc.maxLvl < inc.minLvl {
		return inc.res.Tmax
	}
	g := inc.m.G
	dirtyN, frontierN := 0, 0
	// maxLvl may grow while we scan (changed nodes push fanouts to
	// strictly higher levels), so walk every level from minLvl up and
	// skip the empty buckets.
	for l := inc.minLvl; l < len(inc.byLevel); l++ {
		bucket := inc.byLevel[l]
		if len(bucket) == 0 {
			continue
		}
		if inc.inTrial {
			for _, id := range bucket {
				inc.saveNode(id)
			}
		}
		// Compute phase: each node re-runs the exact forwardNode fold
		// (fanins at lower levels are final), writing only its own
		// slots; the changed flag is a pure bit-compare, so it is
		// identical for every worker count. The serial path stays
		// inline — the runLevel closure escapes into goroutines, and
		// the steady state must not allocate.
		if inc.workers == 1 {
			for _, id := range bucket {
				old := inc.res.Arrival[id]
				forwardNode(&inc.res, inc.m, inc.s, id, true)
				inc.changed[id] = inc.res.Arrival[id] != old
			}
		} else {
			runLevel(inc.workers, len(bucket), func(i int) {
				id := bucket[i]
				old := inc.res.Arrival[id]
				forwardNode(&inc.res, inc.m, inc.s, id, true)
				inc.changed[id] = inc.res.Arrival[id] != old
			})
		}
		// Apply phase: serial, in insertion order — propagate changed
		// arrivals to fanout gates (all at strictly higher levels).
		for _, id := range bucket {
			inc.dirty[id] = false
			if !inc.changed[id] {
				continue
			}
			frontierN++
			for _, f := range g.Fanout[id] {
				inc.markDirty(f)
			}
		}
		dirtyN += len(bucket)
		inc.byLevel[l] = bucket[:0]
	}
	inc.clearSpan()
	// The output fold is always rebuilt in the fixed output order, so
	// it matches a fresh sweep's fold bit for bit.
	foldOutputs(&inc.res, g, true)
	inc.updates++
	if inc.rec != nil {
		inc.rec.Event("inc", "update",
			telemetry.I("update", inc.updates),
			telemetry.I("dirty", dirtyN),
			telemetry.I("frontier", frontierN),
			telemetry.F("mu", inc.res.Tmax.Mu),
			telemetry.F("var", inc.res.Tmax.Var),
		)
	}
	return inc.res.Tmax
}

// Backward flushes pending updates and runs the adjoint sweep over
// the engine's tape with the given seed, returning d phi/d S indexed
// by NodeID. The returned slice is engine-owned scratch, overwritten
// by the next Backward — copy it to keep it. Allocation-free in the
// steady state with Workers == 1.
func (inc *Inc) Backward(seedMu, seedVar float64) []float64 {
	inc.Update()
	return inc.res.backwardInto(inc.m, inc.s, seedMu, seedVar, inc.workers, &inc.sc)
}

// GradMuPlusKSigma flushes pending updates and returns phi =
// mu + k*sigma of the circuit delay plus d phi/d S (engine-owned, see
// Backward) — the incremental equivalent of GradMuPlusKSigmaWorkers,
// bit-identical to it at the engine's current sizes.
func (inc *Inc) GradMuPlusKSigma(k float64) (float64, []float64) {
	tmax := inc.Update()
	phi, sMu, sVar := ObjectiveMuPlusKSigma(tmax, k)
	return phi, inc.Backward(sMu, sVar)
}

// Trial opens a what-if scope (pending updates are flushed first so
// the snapshot is consistent). Until Commit or Rollback, every slab
// entry and speed factor is logged before its first overwrite.
// Trials do not nest.
func (inc *Inc) Trial() {
	if inc.inTrial {
		panic("ssta: Inc.Trial does not nest")
	}
	inc.Update()
	inc.inTrial = true
	inc.gen++
	inc.logNodes = inc.logNodes[:0]
	inc.logTape = inc.logTape[:0]
	inc.logS = inc.logS[:0]
	inc.savedTmax = inc.res.Tmax
	copy(inc.savedOutFold, inc.res.outFold)
}

// Commit accepts the trial's changes and drops the undo log. Dirty
// marks from SetSize calls not yet flushed stay pending for the next
// Update.
func (inc *Inc) Commit() {
	if !inc.inTrial {
		panic("ssta: Inc.Commit outside a trial")
	}
	inc.inTrial = false
}

// Rollback restores the engine — slabs, tape, speed factors, Tmax —
// to the state at the matching Trial call, bit for bit, and returns
// the restored circuit moments. Cost is O(nodes touched since Trial).
func (inc *Inc) Rollback() stats.MV {
	if !inc.inTrial {
		panic("ssta: Inc.Rollback outside a trial")
	}
	// Discard pending dirty marks: the restored slabs are consistent,
	// so nothing is left to re-evaluate.
	for l := inc.minLvl; l < len(inc.byLevel); l++ {
		for _, id := range inc.byLevel[l] {
			inc.dirty[id] = false
		}
		inc.byLevel[l] = inc.byLevel[l][:0]
	}
	inc.clearSpan()
	// Restore in reverse log order; each node was logged once with
	// its pre-trial state, so order only matters for symmetry.
	for i := len(inc.logNodes) - 1; i >= 0; i-- {
		sv := inc.logNodes[i]
		inc.res.Arrival[sv.id] = sv.arr
		inc.res.GateDelay[sv.id] = sv.gd
		steps := inc.res.gateFold[sv.id]
		copy(steps, inc.logTape[sv.tapeAt:sv.tapeAt+len(steps)])
	}
	for i := len(inc.logS) - 1; i >= 0; i-- {
		inc.s[inc.logS[i].id] = inc.logS[i].s
	}
	copy(inc.res.outFold, inc.savedOutFold)
	inc.res.Tmax = inc.savedTmax
	inc.logNodes = inc.logNodes[:0]
	inc.logTape = inc.logTape[:0]
	inc.logS = inc.logS[:0]
	inc.inTrial = false
	return inc.res.Tmax
}

// Criticality flushes pending updates and returns each gate's
// statistical criticality d muTmax / d mu_t — the adjoint sweep over
// the engine's warm tape under a (1, 0) seed, bit-identical to
// CriticalityWorkers at the engine's current sizes but without the
// fresh O(V) taped sweep that entry point pays. The returned slice is
// engine-owned scratch, overwritten by the next adjoint pass
// (Backward/GradMuPlusKSigma included) — copy it to keep it.
func (inc *Inc) Criticality() []float64 {
	inc.Update()
	inc.res.backwardInto(inc.m, inc.s, 1, 0, inc.workers, &inc.sc)
	return inc.sc.dmu
}

// MemoryBytes estimates the engine's resident slab footprint: the
// forward/adjoint slabs, the tape arena and the trial log backing
// arrays. It is the byte cost a cache of warm engines pays to keep
// this one alive (the session LRU's budget unit), not an exact
// accounting of every header.
func (inc *Inc) MemoryBytes() int64 {
	const (
		mvSize  = 16 // stats.MV: 2 float64
		jacSize = 64 // stats.Jac2x4: 2x4 float64
	)
	n := int64(len(inc.s))
	b := n * 8          // s
	b += 2 * n * mvSize // Arrival, GateDelay
	b += 2 * n * 8      // nodeGen, sGen
	b += 2 * n          // dirty, changed
	b += n * 24         // gateFold subslice headers
	b += int64(len(inc.tapeArena)) * jacSize
	b += 2 * int64(len(inc.res.outFold)) * jacSize // outFold + savedOutFold
	for _, bucket := range inc.byLevel {
		b += int64(cap(bucket)) * 8
	}
	// Adjoint scratch (present after the first Backward).
	b += int64(cap(inc.sc.adjMu)+cap(inc.sc.adjVar)+cap(inc.sc.grad)+cap(inc.sc.dmu)) * 8
	b += int64(cap(inc.sc.cMu)+cap(inc.sc.cVar)) * 8
	// Trial undo log backing arrays.
	b += int64(cap(inc.logTape)) * jacSize
	b += int64(cap(inc.logNodes)) * 48 // nodeSave: id + 2 MV + offset
	b += int64(cap(inc.logS)) * 16
	return b
}

// Tmax returns the circuit delay moments as of the last Update.
func (inc *Inc) Tmax() stats.MV { return inc.res.Tmax }

// Arrival returns node id's arrival moments as of the last Update.
func (inc *Inc) Arrival(id netlist.NodeID) stats.MV { return inc.res.Arrival[id] }

// GateDelay returns gate id's delay moments as of the last Update.
func (inc *Inc) GateDelay(id netlist.NodeID) stats.MV { return inc.res.GateDelay[id] }

// Sizes returns the engine's current speed factors as a read-only
// view (indexed by NodeID). Mutate through SetSize only.
func (inc *Inc) Sizes() []float64 { return inc.s }

// Model returns the engine's delay model. The engine assumes every
// model parameter except the speed factors is frozen for its
// lifetime.
func (inc *Inc) Model() *delay.Model { return inc.m }
