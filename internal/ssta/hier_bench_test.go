package ssta

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// gen100k is the canonical 100k-gate benchmark netlist (the
// cmd/circuitgen gen100k preset), streamed and compiled once per test
// binary.
var (
	gen100kOnce sync.Once
	gen100kM    *delay.Model
)

func gen100kModel(b *testing.B) *delay.Model {
	b.Helper()
	gen100kOnce.Do(func() {
		var buf bytes.Buffer
		if err := netlist.GenerateStream(&buf, netlist.Gen100kSpec()); err != nil {
			panic(err)
		}
		c, err := netlist.ReadCKT(&buf)
		if err != nil {
			panic(err)
		}
		gen100kM = delay.MustBind(netlist.MustCompile(c), delay.Default())
	})
	return gen100kM
}

// benchFlatGrad is the baseline: one full taped forward sweep plus the
// adjoint pass through the flat levelized path, allocating its Result
// and tape per evaluation.
func benchFlatGrad(b *testing.B, workers int) {
	m := gen100kModel(b)
	S := m.UnitSizes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GradMuPlusKSigmaWorkers(m, S, 3, workers)
	}
}

func BenchmarkFlatGradGen100kW1(b *testing.B) { benchFlatGrad(b, 1) }
func BenchmarkFlatGradGen100kW4(b *testing.B) { benchFlatGrad(b, 4) }
func BenchmarkFlatGradGen100kW8(b *testing.B) { benchFlatGrad(b, 8) }

// benchHierGrad is the same full forward+adjoint evaluation through
// the persistent blocked engine: dataflow-scheduled blocks over
// arena-backed slabs, no per-evaluation allocation.
func benchHierGrad(b *testing.B, workers int) {
	m := gen100kModel(b)
	h := NewHier(m, m.UnitSizes(), HierOptions{Workers: workers})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Resweep()
		h.GradMuPlusKSigma(3)
	}
}

func BenchmarkHierGradGen100kW1(b *testing.B) { benchHierGrad(b, 1) }
func BenchmarkHierGradGen100kW4(b *testing.B) { benchHierGrad(b, 4) }
func BenchmarkHierGradGen100kW8(b *testing.B) { benchHierGrad(b, 8) }

// BenchmarkFlatStepGen100k is one warm sizing step through the flat
// path: a single-gate size change forces a full 100k-gate resweep.
func BenchmarkFlatStepGen100k(b *testing.B) {
	m := gen100kModel(b)
	S := m.UnitSizes()
	gates := m.G.C.GateIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		S[gates[(i*7919)%len(gates)]] = 1 + 0.3*float64(i%5)
		GradMuPlusKSigmaWorkers(m, S, 3, 1)
	}
}

// BenchmarkHierStepGen100k is the same warm sizing step through the
// hierarchical engine: only the dirty cone's blocks re-evaluate, every
// clean block replays as a cached macro, and the warm serial loop runs
// at zero allocations per step.
func BenchmarkHierStepGen100k(b *testing.B) {
	m := gen100kModel(b)
	h := NewHier(m, m.UnitSizes(), HierOptions{Workers: 1})
	gates := m.G.C.GateIDs()
	for i := 0; i < 50; i++ { // stretch the dirty buckets to steady state
		h.SetSize(gates[(i*7919)%len(gates)], 1+0.3*float64(i%5))
		h.GradMuPlusKSigma(3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SetSize(gates[(i*7919)%len(gates)], 1+0.3*float64(i%5))
		h.GradMuPlusKSigma(3)
	}
}
