package ssta

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestCtxVariantsBitIdenticalUncancelled: with a background context
// the ctx-aware sweeps must reproduce the plain parallel sweeps bit
// for bit, for serial and parallel worker counts alike.
func TestCtxVariantsBitIdenticalUncancelled(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		ref := AnalyzeWorkers(m, S, true, 1)
		refPhi, refGrad := GradMuPlusKSigmaWorkers(m, S, 3, 1)
		for _, workers := range []int{1, 4} {
			r, err := AnalyzeWorkersCtx(context.Background(), m, S, true, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: AnalyzeWorkersCtx: %v", name, workers, err)
			}
			if r.Tmax != ref.Tmax {
				t.Fatalf("%s workers=%d: Tmax %v != %v", name, workers, r.Tmax, ref.Tmax)
			}
			for i := range r.Arrival {
				if r.Arrival[i] != ref.Arrival[i] {
					t.Fatalf("%s workers=%d: Arrival[%d] differs", name, workers, i)
				}
			}
			phi, grad, err := GradMuPlusKSigmaWorkersCtx(context.Background(), m, S, 3, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: GradMuPlusKSigmaWorkersCtx: %v", name, workers, err)
			}
			if phi != refPhi {
				t.Fatalf("%s workers=%d: phi %v != %v", name, workers, phi, refPhi)
			}
			for i := range grad {
				if grad[i] != refGrad[i] {
					t.Fatalf("%s workers=%d: grad[%d] %v != %v", name, workers, i, grad[i], refGrad[i])
				}
			}
		}
	}
}

// TestCtxCancelledReturnsErr: a context cancelled before the sweep
// starts must yield (nil, ctx.Err()) from every ctx variant and no
// partial result.
func TestCtxCancelledReturnsErr(t *testing.T) {
	m := parallelTestModels(t)["tree7"]
	S := m.UnitSizes()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if r, err := AnalyzeWorkersCtx(ctx, m, S, true, 2); err != context.Canceled || r != nil {
		t.Fatalf("AnalyzeWorkersCtx = (%v, %v), want (nil, context.Canceled)", r, err)
	}
	if phi, grad, err := GradMuPlusKSigmaWorkersCtx(ctx, m, S, 3, 2); err != context.Canceled || grad != nil || phi != 0 {
		t.Fatalf("GradMuPlusKSigmaWorkersCtx = (%v, %v, %v), want (0, nil, context.Canceled)", phi, grad, err)
	}
	// Backward on a tape from an uncancelled forward pass.
	r, err := AnalyzeWorkersCtx(context.Background(), m, S, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if grad, err := r.BackwardWorkersCtx(ctx, m, S, 1, 0, 2); err != context.Canceled || grad != nil {
		t.Fatalf("BackwardWorkersCtx = (%v, %v), want (nil, context.Canceled)", grad, err)
	}
}

// TestCtxCancelMidSweepNoGoroutineLeak: cancelling while parallel
// sweeps are in flight must never strand level workers — cancellation
// is polled between levels, so every runLevel barrier completes.
func TestCtxCancelMidSweepNoGoroutineLeak(t *testing.T) {
	models := parallelTestModels(t)
	m := models["gen1200"] // large enough for the parallel path
	S := rampSizes(m)
	base := runtime.NumGoroutine()

	sawCancel := false
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // races the sweep: either outcome is legal
		if _, err := AnalyzeWorkersCtx(ctx, m, S, true, 4); err != nil {
			if err != context.Canceled {
				t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
			}
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Log("no trial observed a mid-sweep cancellation; leak check still valid")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled sweeps: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
