package ssta

import (
	"repro/internal/delay"
	"repro/internal/netlist"
)

// CornerResult holds the traditional best/typical/worst-case timing
// the paper's introduction positions statistical analysis against:
// every gate simultaneously at mu - k*sigma (best), mu (typical) or
// mu + k*sigma (worst). The paper (after its refs [1], [2]) points out
// that worst-case corners are "very pessimistic": all gates being
// simultaneously slow is a probability-zero event, and the statistical
// quantile mu_Tmax + k*sigma_Tmax sits far below the worst corner
// because independent per-gate deviations cancel along paths
// (sigma of a sum grows like sqrt(depth), not depth).
type CornerResult struct {
	K                    float64
	Best, Typical, Worst float64
	// StatQuantile is the statistical mu + k*sigma circuit quantile,
	// the apples-to-apples replacement for the worst corner.
	StatQuantile float64
	// Pessimism is Worst - StatQuantile: the margin the traditional
	// methodology wastes.
	Pessimism float64
}

// Corners runs the three deterministic corner sweeps plus the
// statistical sweep at quantile multiplier k. A non-finite k panics
// (see checkRiskFactor); the sign of k is ignored — corners are
// symmetric by construction, so Corners(m, S, -3) is Corners(m, S, 3),
// keeping the Best <= Worst invariant instead of silently swapping
// the corners' meanings.
func Corners(m *delay.Model, S []float64, k float64) *CornerResult {
	return CornersWorkers(m, S, k, 1)
}

// CornersWorkers is Corners with the three deterministic corners
// evaluated as lanes of one batched sweep (DetBatch) — one traversal
// computing each gate's delay distribution once for all three risk
// levels — and the statistical sweep routed through the shared
// workers-aware entry point (AnalyzeWorkers). Results are
// bit-identical to three scalar corner sweeps for any worker count.
func CornersWorkers(m *delay.Model, S []float64, k float64, workers int) *CornerResult {
	checkRiskFactor(k, "Corners")
	if k < 0 {
		k = -k
	}
	res := &CornerResult{K: k}
	t := NewDetBatch(m, []float64{-k, 0, k}, workers).Sweep(S)
	res.Best, res.Typical, res.Worst = t[0], t[1], t[2]
	r := AnalyzeWorkers(m, S, false, workers)
	res.StatQuantile = r.Tmax.Mu + k*r.Tmax.Sigma()
	res.Pessimism = res.Worst - res.StatQuantile
	return res
}

// cornerSweep is a deterministic sweep with every gate delay set to
// mu + k*sigma. The corner convention clamps every physical time at
// zero — gate delays and primary-input arrival quantiles alike: a
// best-case corner (negative k) may not start an event before t = 0
// any more than a gate may anticipate its inputs, so deep-negative
// input skews cannot manufacture negative circuit delays.
func cornerSweep(m *delay.Model, S []float64, k float64) float64 {
	g := m.G
	n := len(g.C.Nodes)
	arr := make([]float64, n)
	for _, id := range g.Topo {
		nd := &g.C.Nodes[id]
		if nd.Kind == netlist.KindInput {
			a := m.Arrival[id]
			t := a.Mu + k*a.Sigma()
			if t < 0 {
				t = 0
			}
			arr[id] = t
			continue
		}
		u := arr[nd.Fanin[0]] + m.PinOff(id, 0)
		for pin, f := range nd.Fanin[1:] {
			if a := arr[f] + m.PinOff(id, pin+1); a > u {
				u = a
			}
		}
		mv := m.GateMV(id, S)
		d := mv.Mu + k*mv.Sigma()
		if d < 0 {
			d = 0
		}
		arr[id] = u + d
	}
	var tmax float64
	for i, o := range g.C.Outputs {
		if i == 0 || arr[o] > tmax {
			tmax = arr[o]
		}
	}
	return tmax
}
