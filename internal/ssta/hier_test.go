package ssta

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// hierBlockTargets spans the degenerate cut (one node per block), a
// small realistic cut and the whole-graph-per-level cut.
func hierBlockTargets(m *delay.Model) []int {
	return []int{1, 64, len(m.G.C.Nodes)}
}

// checkHierMatchesFresh asserts the engine's full forward state, the
// objective and the gradient are bit-identical to a fresh flat taped
// sweep at the engine's current sizes.
func checkHierMatchesFresh(t *testing.T, h *Hier, m *delay.Model, k float64) {
	t.Helper()
	phiH, gradH := h.GradMuPlusKSigma(k)
	S := h.Sizes()
	fresh := Analyze(m, S, true)
	if h.Tmax() != fresh.Tmax {
		t.Fatalf("Tmax diverged: hier %+v fresh %+v", h.Tmax(), fresh.Tmax)
	}
	for id := range fresh.Arrival {
		nid := netlist.NodeID(id)
		if h.Arrival(nid) != fresh.Arrival[id] {
			t.Fatalf("node %d arrival diverged: hier %+v fresh %+v",
				id, h.Arrival(nid), fresh.Arrival[id])
		}
		if h.GateDelay(nid) != fresh.GateDelay[id] {
			t.Fatalf("node %d gate delay diverged: hier %+v fresh %+v",
				id, h.GateDelay(nid), fresh.GateDelay[id])
		}
	}
	phiF, sMu, sVar := ObjectiveMuPlusKSigma(fresh.Tmax, k)
	if phiH != phiF {
		t.Fatalf("phi diverged: hier %v fresh %v", phiH, phiF)
	}
	gradF := fresh.Backward(m, S, sMu, sVar)
	for id := range gradF {
		if gradH[id] != gradF[id] {
			t.Fatalf("grad[%d] diverged: hier %v fresh %v", id, gradH[id], gradF[id])
		}
	}
}

// TestHierInitialSweepBitIdentical pins the construction-time blocked
// forward pass against the flat sweeps for every circuit, worker
// count and block target — including the dataflow-scheduler paths.
func TestHierInitialSweepBitIdentical(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		want := Analyze(m, S, true)
		for _, w := range []int{1, 4} {
			for _, target := range hierBlockTargets(m) {
				h := NewHier(m, S, HierOptions{BlockTarget: target, Workers: w})
				if err := h.Partition().Check(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if h.Tmax() != want.Tmax {
					t.Fatalf("%s w=%d target=%d: Tmax %+v != flat %+v",
						name, w, target, h.Tmax(), want.Tmax)
				}
				for id := range want.Arrival {
					if h.Arrival(netlist.NodeID(id)) != want.Arrival[id] {
						t.Fatalf("%s w=%d target=%d: Arrival[%d] differs", name, w, target, id)
					}
				}
			}
		}
	}
}

// TestHierMatchesFlatFuzz drives the engine with random size bursts,
// no-op updates and full resweeps for worker counts {1, 4} crossed
// with block targets {1, 64, whole graph}, asserting bit-identity
// against fresh flat sweeps throughout — macro replay included, since
// most blocks stay clean across the small bursts.
func TestHierMatchesFlatFuzz(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		for _, workers := range []int{1, 4} {
			for _, target := range hierBlockTargets(m) {
				t.Run(fmt.Sprintf("%s/j%d/t%d", name, workers, target), func(t *testing.T) {
					rng := rand.New(rand.NewSource(99))
					gates := m.G.C.GateIDs()
					h := NewHier(m, m.UnitSizes(), HierOptions{BlockTarget: target, Workers: workers})
					randSize := func() float64 { return 1 + rng.Float64()*(m.Limit-1) }
					for step := 0; step < 24; step++ {
						switch rng.Intn(4) {
						case 0: // a burst of size changes, then one Update
							for i := 0; i < 1+rng.Intn(4); i++ {
								h.SetSize(gates[rng.Intn(len(gates))], randSize())
							}
							h.Update()
						case 1: // bit-identical write must replay everything
							id := gates[rng.Intn(len(gates))]
							h.SetSize(id, h.Sizes()[id])
							h.Update()
						case 2: // full blocked resweep with marks pending
							h.SetSize(gates[rng.Intn(len(gates))], randSize())
							h.Resweep()
						case 3: // no-op Update (cached Tmax path)
							h.Update()
						}
						if step%4 == 0 {
							checkHierMatchesFresh(t, h, m, 3)
						}
					}
					checkHierMatchesFresh(t, h, m, 3)
				})
			}
		}
	}
}

// TestHierCriticalityMatches pins the blocked adjoint's dmu byproduct
// against the flat criticality sweep.
func TestHierCriticalityMatches(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		want := Criticality(m, S)
		for _, w := range []int{1, 4} {
			h := NewHier(m, S, HierOptions{BlockTarget: 64, Workers: w})
			got := h.Criticality()
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("%s w=%d: criticality[%d] = %v, want %v", name, w, id, got[id], want[id])
				}
			}
		}
	}
}

// TestHierBackwardSeeds sweeps the adjoint seeds the objective paths
// use, pinning the blocked backward pass against Result.Backward.
func TestHierBackwardSeeds(t *testing.T) {
	seeds := [][2]float64{{1, 0}, {1, 0.35}, {0, 1}}
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		r := Analyze(m, S, true)
		h := NewHier(m, S, HierOptions{BlockTarget: 64, Workers: 4})
		for _, sd := range seeds {
			want := r.Backward(m, S, sd[0], sd[1])
			got := h.Backward(sd[0], sd[1])
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("%s seed=%v: grad[%d] = %v, want %v", name, sd, id, got[id], want[id])
				}
			}
		}
	}
}

// TestHierMacroReplayCounts asserts the telemetry stream proves whole
// clean blocks are skipped: a single-gate bump on the big generated
// netlist must replay (not evaluate) most blocks.
func TestHierMacroReplayCounts(t *testing.T) {
	m := parallelTestModels(t)["gen1200"]
	gates := m.G.C.GateIDs()
	sink := &eventSink{}
	h := NewHier(m, m.UnitSizes(), HierOptions{BlockTarget: 16, Workers: 1, Recorder: sink})
	total := len(h.Partition().Blocks)
	sink.lines = nil
	h.SetSize(gates[len(gates)/2], 2.0)
	h.Update()
	var evaluated, replayed int
	found := false
	for _, ln := range sink.lines {
		var upd int
		if n, _ := fmt.Sscanf(ln, "hier.update update=%d evaluated=%d replayed=%d",
			&upd, &evaluated, &replayed); n == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no hier.update event in %q", sink.lines)
	}
	if evaluated+replayed != total {
		t.Fatalf("evaluated %d + replayed %d != %d blocks", evaluated, replayed, total)
	}
	if evaluated == 0 || replayed < total/2 {
		t.Fatalf("single bump evaluated %d / replayed %d of %d blocks; expected mostly replays",
			evaluated, replayed, total)
	}
	// A no-op Update must not emit anything: the whole netlist is one
	// cached macro.
	sink.lines = nil
	h.Update()
	if len(sink.lines) != 0 {
		t.Fatalf("no-op Update emitted %q", sink.lines)
	}
}

// TestHierTraceByteIdentical runs the same bump script through JSONL
// trace sinks with 1 and 4 workers and asserts the trace bytes are
// identical — the worker-invariance contract of the hier events.
func TestHierTraceByteIdentical(t *testing.T) {
	m := parallelTestModels(t)["gen1200"]
	gates := m.G.C.GateIDs()
	run := func(workers int) []byte {
		var buf bytes.Buffer
		tw := telemetry.NewTraceWriter(&buf)
		h := NewHier(m, m.UnitSizes(), HierOptions{BlockTarget: 32, Workers: workers, Recorder: tw})
		for step := 0; step < 12; step++ {
			h.SetSize(gates[(step*37)%len(gates)], 1+0.2*float64(step%7))
			h.Update()
			if step%5 == 4 {
				h.Resweep()
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := run(1), run(4)
	if len(serial) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("traces differ between 1 and 4 workers:\n j1 %d bytes\n j4 %d bytes", len(serial), len(parallel))
	}
}

// TestHierSteadyStateAllocFree asserts the serial engine's warm
// macro-replay loop — SetSize, Update, blocked adjoint — performs zero
// heap allocations per step.
func TestHierSteadyStateAllocFree(t *testing.T) {
	m := parallelTestModels(t)["gen1200"]
	gates := m.G.C.GateIDs()
	h := NewHier(m, m.UnitSizes(), HierOptions{BlockTarget: 64, Workers: 1})
	step := 0
	doStep := func() {
		id := gates[(step*31)%len(gates)]
		h.SetSize(id, 1+0.3*float64(step%5))
		h.GradMuPlusKSigma(3)
		step = (step + 1) % 50
	}
	for i := 0; i < 50; i++ {
		doStep()
	}
	allocs := testing.AllocsPerRun(50, doStep)
	if allocs != 0 {
		t.Fatalf("steady-state SetSize+Update+Backward allocates %.1f per step, want 0", allocs)
	}
}

// TestHierSetSizePanics pins the misuse contract.
func TestHierSetSizePanics(t *testing.T) {
	m := parallelTestModels(t)["tree7"]
	h := NewHier(m, m.UnitSizes(), HierOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("SetSize on an input did not panic")
		}
	}()
	for i := range m.G.C.Nodes {
		if m.G.C.Nodes[i].Kind == netlist.KindInput {
			h.SetSize(netlist.NodeID(i), 2)
			return
		}
	}
	t.Fatal("no input node found")
}
