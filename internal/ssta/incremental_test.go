package ssta

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// checkIncMatchesFresh asserts the engine's full forward state and the
// adjoint gradient are bit-identical to a fresh taped sweep at the
// engine's current sizes.
func checkIncMatchesFresh(t *testing.T, inc *Inc, m *delay.Model, k float64) {
	t.Helper()
	phiI, gradI := inc.GradMuPlusKSigma(k)
	S := inc.Sizes()
	fresh := Analyze(m, S, true)
	if inc.Tmax() != fresh.Tmax {
		t.Fatalf("Tmax diverged: inc %+v fresh %+v", inc.Tmax(), fresh.Tmax)
	}
	for id := range fresh.Arrival {
		nid := netlist.NodeID(id)
		if inc.Arrival(nid) != fresh.Arrival[id] {
			t.Fatalf("node %d arrival diverged: inc %+v fresh %+v",
				id, inc.Arrival(nid), fresh.Arrival[id])
		}
		if inc.GateDelay(nid) != fresh.GateDelay[id] {
			t.Fatalf("node %d gate delay diverged: inc %+v fresh %+v",
				id, inc.GateDelay(nid), fresh.GateDelay[id])
		}
	}
	phiF, sMu, sVar := ObjectiveMuPlusKSigma(fresh.Tmax, k)
	if phiI != phiF {
		t.Fatalf("phi diverged: inc %v fresh %v", phiI, phiF)
	}
	gradF := fresh.Backward(m, S, sMu, sVar)
	for id := range gradF {
		if gradI[id] != gradF[id] {
			t.Fatalf("grad[%d] diverged: inc %v fresh %v", id, gradI[id], gradF[id])
		}
	}
}

// TestIncMatchesAnalyzeFuzz drives the incremental engine with random
// size bumps, trials, rollbacks and commits on every test circuit
// (including a generated netlist large enough for the parallel path)
// and asserts bit-identity against fresh taped sweeps throughout, for
// worker counts 1 and 4.
func TestIncMatchesAnalyzeFuzz(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/j%d", name, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				gates := m.G.C.GateIDs()
				inc := NewInc(m, m.UnitSizes(), IncOptions{Workers: workers})
				randSize := func() float64 { return 1 + rng.Float64()*(m.Limit-1) }
				for step := 0; step < 40; step++ {
					switch rng.Intn(4) {
					case 0: // a burst of size changes, then one Update
						for i := 0; i < 1+rng.Intn(4); i++ {
							inc.SetSize(gates[rng.Intn(len(gates))], randSize())
						}
						inc.Update()
					case 1: // rejected what-if move
						before := inc.Update()
						inc.Trial()
						for i := 0; i < 1+rng.Intn(3); i++ {
							inc.SetSize(gates[rng.Intn(len(gates))], randSize())
						}
						inc.Update()
						if got := inc.Rollback(); got != before {
							t.Fatalf("rollback Tmax %+v, want %+v", got, before)
						}
					case 2: // accepted what-if move
						inc.Trial()
						inc.SetSize(gates[rng.Intn(len(gates))], randSize())
						inc.Update()
						inc.Commit()
					case 3: // no-op Update (cached path)
						inc.Update()
					}
					if step%5 == 0 {
						checkIncMatchesFresh(t, inc, m, 3)
					}
				}
				checkIncMatchesFresh(t, inc, m, 3)
			})
		}
	}
}

// TestIncRollbackRestores asserts Rollback restores every slab the
// trial touched bit for bit — including sizes changed and then changed
// back, and a rollback taken with dirty marks still pending.
func TestIncRollbackRestores(t *testing.T) {
	m := parallelTestModels(t)["apex1"]
	gates := m.G.C.GateIDs()
	inc := NewInc(m, m.UnitSizes(), IncOptions{})
	inc.SetSize(gates[0], 1.5)
	want := inc.Update()

	n := len(m.G.C.Nodes)
	arr := make([]float64, 0, 2*n)
	for id := 0; id < n; id++ {
		a := inc.Arrival(netlist.NodeID(id))
		arr = append(arr, a.Mu, a.Var)
	}
	sizes := append([]float64(nil), inc.Sizes()...)

	inc.Trial()
	for i, id := range gates {
		if i%3 == 0 {
			inc.SetSize(id, 2.5)
		}
	}
	inc.Update()
	inc.SetSize(gates[1], 1.1) // left pending: Rollback must discard it
	if got := inc.Rollback(); got != want {
		t.Fatalf("rollback Tmax %+v, want %+v", got, want)
	}
	if got := inc.Update(); got != want {
		t.Fatalf("post-rollback Update Tmax %+v, want %+v", got, want)
	}
	for id := 0; id < n; id++ {
		a := inc.Arrival(netlist.NodeID(id))
		if a.Mu != arr[2*id] || a.Var != arr[2*id+1] {
			t.Fatalf("node %d arrival not restored", id)
		}
	}
	for id, s := range inc.Sizes() {
		if s != sizes[id] {
			t.Fatalf("size[%d] not restored: %v != %v", id, s, sizes[id])
		}
	}
}

// eventSink captures Event calls as formatted lines; the metric
// channels (which may carry wall-clock data) are discarded.
type eventSink struct{ lines []string }

func (e *eventSink) Event(scope, name string, fields ...telemetry.KV) {
	line := scope + "." + name
	for _, f := range fields {
		line += fmt.Sprintf(" %s=%g", f.Key, f.Val)
	}
	e.lines = append(e.lines, line)
}
func (e *eventSink) Count(string, int64)        {}
func (e *eventSink) Gauge(string, float64)      {}
func (e *eventSink) Span(string, time.Duration) {}

// TestIncUpdateEventsWorkerInvariant replays the same bump script with
// 1 and 4 workers and asserts the "inc.update" event stream — dirty
// and frontier counts included — is identical.
func TestIncUpdateEventsWorkerInvariant(t *testing.T) {
	m := parallelTestModels(t)["gen1200"]
	gates := m.G.C.GateIDs()
	run := func(workers int) []string {
		sink := &eventSink{}
		inc := NewInc(m, m.UnitSizes(), IncOptions{Workers: workers, Recorder: sink})
		for step := 0; step < 10; step++ {
			inc.SetSize(gates[(step*37)%len(gates)], 1+0.2*float64(step%7))
			inc.Update()
		}
		return sink.lines
	}
	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("event counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("event %d differs:\n  j1: %s\n  j4: %s", i, serial[i], parallel[i])
		}
	}
	if len(serial) == 0 {
		t.Fatal("no inc.update events recorded")
	}
}

// TestIncSteadyStateAllocFree asserts the serial engine's steady-state
// loop — SetSize, Update, Backward — performs zero heap allocations
// per step once warm.
func TestIncSteadyStateAllocFree(t *testing.T) {
	m := parallelTestModels(t)["gen1200"]
	gates := m.G.C.GateIDs()
	inc := NewInc(m, m.UnitSizes(), IncOptions{Workers: 1})
	// The schedule is cyclic so one warm pass stretches every per-level
	// dirty bucket and the adjoint scratch to its steady-state size.
	step := 0
	doStep := func() {
		id := gates[(step*31)%len(gates)]
		inc.SetSize(id, 1+0.3*float64(step%5))
		inc.GradMuPlusKSigma(3)
		step = (step + 1) % 50
	}
	for i := 0; i < 50; i++ {
		doStep()
	}
	allocs := testing.AllocsPerRun(50, doStep)
	if allocs != 0 {
		t.Fatalf("steady-state SetSize+Update+Backward allocates %.1f per step, want 0", allocs)
	}
}

// TestIncTrialSteadyStateAllocFree asserts a warm trial/rollback cycle
// is also allocation-free: the undo log and its tape buffer are
// reused across trials.
func TestIncTrialSteadyStateAllocFree(t *testing.T) {
	m := parallelTestModels(t)["tree7"]
	gates := m.G.C.GateIDs()
	inc := NewInc(m, m.UnitSizes(), IncOptions{Workers: 1})
	step := 0
	cycle := func() {
		inc.Trial()
		inc.SetSize(gates[step%len(gates)], 1+0.4*float64(step%4))
		inc.Update()
		inc.Rollback()
		step = (step + 1) % 28 // lcm of the gate and size cycles
	}
	for i := 0; i < 28; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(50, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state trial cycle allocates %.1f per step, want 0", allocs)
	}
}

// TestIncSetSizePanics pins the misuse contracts: sizing a non-gate
// node and nesting trials both panic.
func TestIncSetSizePanics(t *testing.T) {
	m := parallelTestModels(t)["tree7"]
	inc := NewInc(m, m.UnitSizes(), IncOptions{})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	input := netlist.NodeID(-1)
	for i := range m.G.C.Nodes {
		if m.G.C.Nodes[i].Kind == netlist.KindInput {
			input = netlist.NodeID(i)
			break
		}
	}
	mustPanic("SetSize(input)", func() { inc.SetSize(input, 2) })
	gate := m.G.C.GateIDs()[0]
	mustPanic("SetSize(NaN)", func() { inc.SetSize(gate, math.NaN()) })
	mustPanic("SetSize(+Inf)", func() { inc.SetSize(gate, math.Inf(1)) })
	mustPanic("SetSize(-Inf)", func() { inc.SetSize(gate, math.Inf(-1)) })
	inc.Trial()
	mustPanic("nested Trial", func() { inc.Trial() })
	inc.Commit()
	mustPanic("Commit outside trial", func() { inc.Commit() })
	mustPanic("Rollback outside trial", func() { inc.Rollback() })
	// The rejected non-finite sizes must not have poisoned the engine:
	// its state still matches a fresh sweep bit for bit.
	checkIncMatchesFresh(t, inc, m, 3)
}

// TestIncCriticalityMatchesWorkers pins the warm-engine criticality
// accessor against the fresh-sweep entry point after a trajectory of
// size nudges, for worker counts 1 and 4.
func TestIncCriticalityMatchesWorkers(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/j%d", name, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				gates := m.G.C.GateIDs()
				inc := NewInc(m, m.UnitSizes(), IncOptions{Workers: workers})
				for step := 0; step < 8; step++ {
					g := gates[rng.Intn(len(gates))]
					inc.SetSize(g, 1+rng.Float64()*(m.Limit-1))
					warm := inc.Criticality()
					fresh := CriticalityWorkers(m, inc.Sizes(), workers)
					for id := range fresh {
						if warm[id] != fresh[id] {
							t.Fatalf("step %d: criticality[%d] diverged: warm %v fresh %v",
								step, id, warm[id], fresh[id])
						}
					}
				}
			})
		}
	}
}

// TestIncMemoryBytes sanity-checks the footprint estimate: positive,
// larger for larger circuits, and covering at least the dominant
// moment slabs.
func TestIncMemoryBytes(t *testing.T) {
	models := parallelTestModels(t)
	small := NewInc(models["tree7"], models["tree7"].UnitSizes(), IncOptions{})
	large := NewInc(models["k2"], models["k2"].UnitSizes(), IncOptions{})
	sb, lb := small.MemoryBytes(), large.MemoryBytes()
	if sb <= 0 || lb <= 0 {
		t.Fatalf("non-positive footprints: %d, %d", sb, lb)
	}
	if lb <= sb {
		t.Fatalf("k2 footprint %d not larger than tree7's %d", lb, sb)
	}
	if min := int64(len(models["k2"].G.C.Nodes)) * 2 * 16; lb < min {
		t.Fatalf("k2 footprint %d below its moment slabs alone (%d)", lb, min)
	}
}
