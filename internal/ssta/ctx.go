package ssta

import (
	"context"

	"repro/internal/delay"
	"repro/internal/stats"
)

// Context-aware variants of the parallel sweeps. Cancellation is
// polled between levels only — never inside one — so every runLevel
// barrier completes and no worker goroutine can outlive a cancelled
// sweep. A run that is not cancelled is bit-identical to the plain
// AnalyzeWorkers / BackwardWorkers for every worker count; a cancelled
// run returns ctx.Err() and no partial result.

// cancelled polls ctx without blocking.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// AnalyzeWorkersCtx is AnalyzeWorkers under a cancellation context.
// It returns (nil, ctx.Err()) when ctx is cancelled before or between
// levels; otherwise the result is bit-identical to AnalyzeWorkers.
func AnalyzeWorkersCtx(ctx context.Context, m *delay.Model, S []float64, withTape bool, workers int) (*Result, error) {
	done := ctx.Done()
	if cancelled(done) {
		return nil, ctx.Err()
	}
	workers = resolveWorkers(workers)
	g := m.G
	n := len(g.C.Nodes)
	if workers == 1 || n < parallelMinNodes {
		workers = 1
	}
	r := &Result{
		Arrival:   make([]stats.MV, n),
		GateDelay: make([]stats.MV, n),
		withTape:  withTape,
	}
	if withTape {
		r.gateFold = make([][]stats.Jac2x4, n)
	}
	for _, bucket := range g.Levels {
		if cancelled(done) {
			return nil, ctx.Err()
		}
		runLevel(workers, len(bucket), func(i int) {
			forwardNode(r, m, S, bucket[i], withTape)
		})
	}
	foldOutputs(r, g, withTape)
	return r, nil
}

// BackwardWorkersCtx is BackwardWorkers under a cancellation context:
// (nil, ctx.Err()) when cancelled between levels, otherwise
// bit-identical to BackwardWorkers for every worker count.
func (r *Result) BackwardWorkersCtx(ctx context.Context, m *delay.Model, S []float64, seedMu, seedVar float64, workers int) ([]float64, error) {
	if !r.withTape {
		panic("ssta: BackwardWorkersCtx requires a taped Analyze")
	}
	done := ctx.Done()
	if cancelled(done) {
		return nil, ctx.Err()
	}
	workers = resolveWorkers(workers)
	g := m.G
	n := len(g.C.Nodes)
	if workers == 1 || n < parallelMinNodes {
		workers = 1
	}
	adjMu := make([]float64, n)
	adjVar := make([]float64, n)
	grad := make([]float64, n)
	r.seedAdjoint(g, seedMu, seedVar, adjMu, adjVar)

	off := make([]int, n)
	total := 0
	for i := range g.C.Nodes {
		off[i] = total
		total += len(g.C.Nodes[i].Fanin)
	}
	cMu := make([]float64, total)
	cVar := make([]float64, total)
	dmu := make([]float64, n)

	for l := len(g.Levels) - 1; l >= 1; l-- {
		if cancelled(done) {
			return nil, ctx.Err()
		}
		bucket := g.Levels[l]
		runLevel(workers, len(bucket), func(i int) {
			id := bucket[i]
			am, av := adjMu[id], adjVar[id]
			if am == 0 && av == 0 {
				return
			}
			dmu[id] = am + av*m.Sigma.DVar(r.GateDelay[id].Mu)
			fanin := g.C.Nodes[id].Fanin
			uMu, uVar := am, av
			steps := r.gateFold[id]
			base := off[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				j := steps[k-1]
				cMu[base+k] = uMu*j[0][2] + uVar*j[1][2]
				cVar[base+k] = uMu*j[0][3] + uVar*j[1][3]
				uMu, uVar = uMu*j[0][0]+uVar*j[1][0], uMu*j[0][1]+uVar*j[1][1]
			}
			cMu[base] = uMu
			cVar[base] = uVar
		})
		for _, id := range bucket {
			am, av := adjMu[id], adjVar[id]
			if am == 0 && av == 0 {
				continue
			}
			m.GateMuGrad(id, S, dmu[id], grad)
			fanin := g.C.Nodes[id].Fanin
			base := off[id]
			for k := len(fanin) - 1; k >= 1; k-- {
				adjMu[fanin[k]] += cMu[base+k]
				adjVar[fanin[k]] += cVar[base+k]
			}
			adjMu[fanin[0]] += cMu[base]
			adjVar[fanin[0]] += cVar[base]
		}
	}
	return grad, nil
}

// GradMuPlusKSigmaWorkersCtx is GradMuPlusKSigmaWorkers under a
// cancellation context.
func GradMuPlusKSigmaWorkersCtx(ctx context.Context, m *delay.Model, S []float64, k float64, workers int) (float64, []float64, error) {
	r, err := AnalyzeWorkersCtx(ctx, m, S, true, workers)
	if err != nil {
		return 0, nil, err
	}
	phi, sMu, sVar := ObjectiveMuPlusKSigma(r.Tmax, k)
	grad, err := r.BackwardWorkersCtx(ctx, m, S, sMu, sVar, workers)
	if err != nil {
		return 0, nil, err
	}
	return phi, grad, nil
}
