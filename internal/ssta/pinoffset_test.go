package ssta

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// offsetModel builds a 2-input gate whose second pin is slower,
// exercising eq 1's per-pin delays.
func offsetModel(t *testing.T, off float64) *delay.Model {
	t.Helper()
	c := netlist.New("off")
	c.AddInput("a")
	c.AddInput("b")
	c.AddGate("g", "slow2", "a", "b")
	c.MarkOutput("g")
	lib := delay.NewLibrary(1, 0.5, 0, 0)
	lib.Add(delay.CellType{
		Name: "slow2", Fanin: 2, TInt: 1, CIn: 1,
		PinOffsets: []float64{0, off},
	})
	return delay.MustBind(netlist.MustCompile(c), lib)
}

func TestPinOffsetsShiftDeterministicArrival(t *testing.T) {
	m := offsetModel(t, 0.7)
	m.Sigma = delay.Zero{}
	S := m.UnitSizes()
	r := DetAnalyze(m, S)
	// Inputs arrive at 0; pin b contributes 0 + 0.7, so
	// Tmax = 0.7 + gate delay.
	g := m.G.C.MustID("g")
	want := 0.7 + m.GateMu(g, S)
	if !approxEq(r.Tmax, want, 1e-12) {
		t.Errorf("det Tmax = %v, want %v", r.Tmax, want)
	}
	// The critical path must come through input b.
	path := r.CriticalPath(m)
	if m.G.C.Nodes[path[0]].Name != "b" {
		t.Errorf("critical path starts at %s, want b", m.G.C.Nodes[path[0]].Name)
	}
}

func TestPinOffsetsShiftStatisticalArrival(t *testing.T) {
	// With deterministic inputs at 0 and a large offset, the max is
	// dominated by the offset pin: mu = off + gate mu.
	m := offsetModel(t, 5)
	S := m.UnitSizes()
	r := Analyze(m, S, false)
	g := m.G.C.MustID("g")
	want := 5 + m.GateMu(g, S)
	if !approxEq(r.Tmax.Mu, want, 1e-9) {
		t.Errorf("stat Tmax.Mu = %v, want %v", r.Tmax.Mu, want)
	}
	// Canonical agrees.
	can := AnalyzeCanonical(m, S)
	if !approxEq(can.Tmax.Mu, want, 1e-9) {
		t.Errorf("canonical Tmax.Mu = %v, want %v", can.Tmax.Mu, want)
	}
}

func TestPinOffsetsGradientStillExact(t *testing.T) {
	// The adjoint must remain exact with offsets in play (constant
	// shifts do not change the max Jacobians). Use the default
	// library, whose nand3/nand4 carry offsets, on a circuit that
	// contains them.
	g := netlist.MustCompile(netlist.Fig2Example()) // D is a nand3
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	for i, id := range g.C.GateIDs() {
		S[id] = 1 + 0.15*float64(i)
	}
	_, grad := GradMuPlusKSigma(m, S, 3)
	for _, id := range g.C.GateIDs() {
		fd := gradFD(m, S, 3, id)
		if !approxEq(grad[id], fd, 2e-4) {
			t.Errorf("d/dS[%s]: adjoint %v, FD %v", g.C.Nodes[id].Name, grad[id], fd)
		}
	}
}

func TestBindRejectsBadOffsets(t *testing.T) {
	c := netlist.New("bad")
	c.AddInput("a")
	c.AddInput("b")
	c.AddGate("g", "bad2", "a", "b")
	c.MarkOutput("g")
	lib := delay.NewLibrary(1, 0, 0, 0)
	lib.Add(delay.CellType{
		Name: "bad2", Fanin: 2, TInt: 1, CIn: 1,
		PinOffsets: []float64{0}, // wrong length
	})
	if _, err := delay.Bind(netlist.MustCompile(c), lib); err == nil {
		t.Error("mismatched pin offsets accepted")
	}
}
