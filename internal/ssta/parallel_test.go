package ssta

import (
	"runtime"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// parallelTestModels covers the built-in circuits plus a randomized
// generated netlist large enough to take the parallel path.
func parallelTestModels(t testing.TB) map[string]*delay.Model {
	t.Helper()
	models := map[string]*delay.Model{
		"tree7": delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree()),
		"fig2":  delay.MustBind(netlist.MustCompile(netlist.Fig2Example()), delay.Default()),
		"apex1": delay.MustBind(netlist.MustCompile(netlist.Apex1Like()), delay.Default()),
		"k2":    delay.MustBind(netlist.MustCompile(netlist.K2Like()), delay.Default()),
	}
	gen, err := netlist.Generate(netlist.GenSpec{
		Name: "par1200", Gates: 1200, Inputs: 48, Outputs: 12,
		Depth: 18, MaxFanin: 4, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	models["gen1200"] = delay.MustBind(netlist.MustCompile(gen), delay.Default())
	return models
}

// sizes exercises non-uniform speed factors so the load terms differ
// per gate.
func rampSizes(m *delay.Model) []float64 {
	S := m.UnitSizes()
	for i, id := range m.G.C.GateIDs() {
		S[id] = 1 + 0.7*float64(i%5)/4
	}
	return S
}

var workerCounts = []int{1, 2, 3, runtime.NumCPU()}

func TestAnalyzeWorkersBitIdenticalToSerial(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		for _, withTape := range []bool{false, true} {
			want := Analyze(m, S, withTape)
			for _, w := range workerCounts {
				got := AnalyzeWorkers(m, S, withTape, w)
				if got.Tmax != want.Tmax {
					t.Errorf("%s workers=%d tape=%v: Tmax %+v != serial %+v",
						name, w, withTape, got.Tmax, want.Tmax)
				}
				for id := range want.Arrival {
					if got.Arrival[id] != want.Arrival[id] {
						t.Fatalf("%s workers=%d tape=%v: Arrival[%d] %+v != %+v",
							name, w, withTape, id, got.Arrival[id], want.Arrival[id])
					}
					if got.GateDelay[id] != want.GateDelay[id] {
						t.Fatalf("%s workers=%d tape=%v: GateDelay[%d] differs", name, w, withTape, id)
					}
				}
			}
		}
	}
}

func TestBackwardWorkersBitIdenticalToSerial(t *testing.T) {
	seeds := [][2]float64{{1, 0}, {1, 0.35}, {0, 1}}
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		r := Analyze(m, S, true)
		for _, seed := range seeds {
			want := r.Backward(m, S, seed[0], seed[1])
			for _, w := range workerCounts {
				rp := AnalyzeWorkers(m, S, true, w)
				got := rp.BackwardWorkers(m, S, seed[0], seed[1], w)
				for id := range want {
					if got[id] != want[id] {
						t.Fatalf("%s workers=%d seed=%v: grad[%d] = %v != serial %v",
							name, w, seed, id, got[id], want[id])
					}
				}
			}
		}
	}
}

func TestGradMuPlusKSigmaWorkersMatchesSerial(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		phiWant, gradWant := GradMuPlusKSigma(m, S, 3)
		for _, w := range workerCounts {
			phi, grad := GradMuPlusKSigmaWorkers(m, S, 3, w)
			if phi != phiWant {
				t.Errorf("%s workers=%d: phi %v != %v", name, w, phi, phiWant)
			}
			for id := range gradWant {
				if grad[id] != gradWant[id] {
					t.Fatalf("%s workers=%d: grad[%d] differs", name, w, id)
				}
			}
		}
	}
}

func TestBackwardWorkersRequiresTape(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	r := Analyze(m, m.UnitSizes(), false)
	defer func() {
		if recover() == nil {
			t.Error("BackwardWorkers without tape did not panic")
		}
	}()
	r.BackwardWorkers(m, m.UnitSizes(), 1, 0, 2)
}
