package ssta

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// DetBatch is the deterministic sibling of Batch: a K-lane
// structure-of-arrays sweep where every lane is a corner at a
// different risk level k, all sharing one speed-factor assignment.
// The expensive per-gate work — the fanout load scan and the sigma
// model behind GateMV — runs once per node visit and is amortized
// across all lanes (CornerDelayLanes), which is where the batched
// corner sweep earns its speedup. The slab layout is the shared
// lane-stride contract slab[int(id)*K + lane]; lane l is
// bit-identical to the scalar cornerSweep at ks[l] by construction.
type DetBatch struct {
	m       *delay.Model
	ks      []float64
	workers int
	arr     []float64 // n*K lane-strided arrival times
	tmax    []float64
}

// NewDetBatch builds a corner-sweep engine with one lane per risk
// level in ks (copied; non-finite levels are rejected).
func NewDetBatch(m *delay.Model, ks []float64, workers int) *DetBatch {
	if len(ks) == 0 {
		panic("ssta: NewDetBatch needs at least one risk level")
	}
	for _, k := range ks {
		checkRiskFactor(k, "NewDetBatch")
	}
	n := len(m.G.C.Nodes)
	b := &DetBatch{
		m:       m,
		ks:      append([]float64(nil), ks...),
		workers: resolveWorkers(workers),
		arr:     make([]float64, n*len(ks)),
		tmax:    make([]float64, len(ks)),
	}
	return b
}

// sweepNode fills node id's arrival lanes under speed factors S,
// writing only id-owned slab spans so a level bucket can run in
// parallel. Per lane the arithmetic matches cornerSweep exactly: the
// zero clamp applies to gate delays and input arrival quantiles
// alike, and the fanin max folds in pin order. The loops run
// fanin-outer / lane-inner with the pin offset hoisted, so every
// inner loop walks two contiguous K-spans — the layout the batching
// exists for — and the gate's delay distribution is computed once for
// all lanes.
func (b *DetBatch) sweepNode(id netlist.NodeID, S []float64) {
	K := len(b.ks)
	m := b.m
	nd := &m.G.C.Nodes[id]
	base := int(id) * K
	slot := b.arr[base : base+K]
	if nd.Kind == netlist.KindInput {
		a := m.Arrival[id]
		sigma := a.Sigma()
		for l, k := range b.ks {
			t := a.Mu + k*sigma
			if t < 0 {
				t = 0
			}
			slot[l] = t
		}
		return
	}
	fanin := nd.Fanin
	mv := m.GateMV(id, S)
	mu, sigma := mv.Mu, mv.Sigma()
	arr, ks := b.arr, b.ks
	lane := func(p int) []float64 {
		base := int(fanin[p]) * K
		return arr[base : base+K]
	}
	// Fanin-count-specialized inner loops: every operand is a length-K
	// subslice indexed by l < K, so the compiler drops the bounds
	// checks, the fold accumulator stays in a register across pins,
	// and each lane costs one store. Per lane the operation order is
	// cornerSweep's exactly: fold in pin order, then u + d.
	switch len(fanin) {
	case 1:
		a0, o0 := lane(0), m.PinOff(id, 0)
		for l := 0; l < K; l++ {
			d := mu + ks[l]*sigma
			if d < 0 {
				d = 0
			}
			slot[l] = (a0[l] + o0) + d
		}
	case 2:
		a0, o0 := lane(0), m.PinOff(id, 0)
		a1, o1 := lane(1), m.PinOff(id, 1)
		for l := 0; l < K; l++ {
			u := a0[l] + o0
			if a := a1[l] + o1; a > u {
				u = a
			}
			d := mu + ks[l]*sigma
			if d < 0 {
				d = 0
			}
			slot[l] = u + d
		}
	case 3:
		a0, o0 := lane(0), m.PinOff(id, 0)
		a1, o1 := lane(1), m.PinOff(id, 1)
		a2, o2 := lane(2), m.PinOff(id, 2)
		for l := 0; l < K; l++ {
			u := a0[l] + o0
			if a := a1[l] + o1; a > u {
				u = a
			}
			if a := a2[l] + o2; a > u {
				u = a
			}
			d := mu + ks[l]*sigma
			if d < 0 {
				d = 0
			}
			slot[l] = u + d
		}
	case 4:
		a0, o0 := lane(0), m.PinOff(id, 0)
		a1, o1 := lane(1), m.PinOff(id, 1)
		a2, o2 := lane(2), m.PinOff(id, 2)
		a3, o3 := lane(3), m.PinOff(id, 3)
		for l := 0; l < K; l++ {
			u := a0[l] + o0
			if a := a1[l] + o1; a > u {
				u = a
			}
			if a := a2[l] + o2; a > u {
				u = a
			}
			if a := a3[l] + o3; a > u {
				u = a
			}
			d := mu + ks[l]*sigma
			if d < 0 {
				d = 0
			}
			slot[l] = u + d
		}
	default:
		for l := 0; l < K; l++ {
			u := arr[int(fanin[0])*K+l] + m.PinOff(id, 0)
			for p := 1; p < len(fanin); p++ {
				if a := arr[int(fanin[p])*K+l] + m.PinOff(id, p); a > u {
					u = a
				}
			}
			d := mu + ks[l]*sigma
			if d < 0 {
				d = 0
			}
			slot[l] = u + d
		}
	}
}

// Sweep runs the batched deterministic sweep under S and returns the
// per-lane circuit delay (engine-owned, overwritten by the next
// Sweep). Allocation-free when warm with workers == 1; bit-identical
// for every worker count.
func (b *DetBatch) Sweep(S []float64) []float64 {
	g := b.m.G
	if len(S) != len(g.C.Nodes) {
		panic(fmt.Sprintf("ssta: DetBatch.Sweep got %d sizes for %d nodes",
			len(S), len(g.C.Nodes)))
	}
	if b.workers == 1 {
		for _, id := range g.Topo {
			b.sweepNode(id, S)
		}
	} else {
		for _, bucket := range g.Levels {
			bucket := bucket
			runLevel(b.workers, len(bucket), func(i int) {
				b.sweepNode(bucket[i], S)
			})
		}
	}
	K := len(b.ks)
	for l := 0; l < K; l++ {
		var tmax float64
		for i, o := range g.C.Outputs {
			if a := b.arr[int(o)*K+l]; i == 0 || a > tmax {
				tmax = a
			}
		}
		b.tmax[l] = tmax
	}
	return b.tmax
}

// Ks returns the engine's risk levels (engine-owned; do not mutate).
func (b *DetBatch) Ks() []float64 { return b.ks }

// KSweep evaluates the deterministic corner sweep at every risk level
// in ks in one batched traversal and returns the per-lane circuit
// delays — the one-shot form of DetBatch for callers without an
// evaluation loop. Non-finite risk levels panic; lane l is
// bit-identical to a scalar corner sweep at ks[l].
func KSweep(m *delay.Model, S []float64, ks []float64, workers int) []float64 {
	return append([]float64(nil), NewDetBatch(m, ks, workers).Sweep(S)...)
}
