package ssta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

var batchLaneCounts = []int{1, 2, 3, 8}
var batchWorkerCounts = []int{1, 4}

// batchScenarios builds K scenarios with distinct speed factors and a
// mix of skews: zero (the plain Analyze model), moderate rise/fall
// style skews, and a deep negative skew that floors every gate at
// zero (degenerate zero-variance delays).
func batchScenarios(m *delay.Model, K int, rng *rand.Rand) []Scenario {
	skews := []float64{0, 0.15, -0.08, 0, -1.2, 0.3, 0, 0.05}
	scs := make([]Scenario, K)
	for l := range scs {
		S := m.UnitSizes()
		for _, id := range m.G.C.GateIDs() {
			S[id] = 1 + 2*rng.Float64()
		}
		scs[l] = Scenario{S: S, Skew: skews[l%len(skews)]}
	}
	return scs
}

func newTestBatch(m *delay.Model, scs []Scenario, workers int) *Batch {
	b := NewBatch(m, len(scs), BatchOptions{Workers: workers})
	for l, sc := range scs {
		b.SetScenario(l, sc)
	}
	return b
}

func TestBatchForwardBitIdenticalToScenarios(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		rng := rand.New(rand.NewSource(7))
		for _, K := range batchLaneCounts {
			scs := batchScenarios(m, K, rng)
			for _, w := range batchWorkerCounts {
				b := newTestBatch(m, scs, w)
				tmax := b.Forward()
				for l, sc := range scs {
					want := AnalyzeScenario(m, sc)
					if tmax[l] != want.Tmax {
						t.Fatalf("%s K=%d w=%d lane=%d: Tmax %+v != scalar %+v",
							name, K, w, l, tmax[l], want.Tmax)
					}
					for id := range want.Arrival {
						nid := netlist.NodeID(id)
						if b.Arrival(nid, l) != want.Arrival[id] {
							t.Fatalf("%s K=%d w=%d lane=%d: Arrival[%d] differs", name, K, w, l, id)
						}
						if b.GateDelay(nid, l) != want.GateDelay[id] {
							t.Fatalf("%s K=%d w=%d lane=%d: GateDelay[%d] differs", name, K, w, l, id)
						}
					}
				}
			}
		}
	}
}

func TestBatchZeroSkewLaneMatchesAnalyze(t *testing.T) {
	// A zero-skew lane must reproduce the plain sweep bit for bit —
	// the contract that lets CornersWorkers and the CLIs batch their
	// reports without changing a single reported digit.
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		want := Analyze(m, S, true)
		b := NewBatch(m, 3, BatchOptions{})
		for l := 0; l < 3; l++ {
			b.SetScenario(l, Scenario{S: S})
		}
		tmax := b.Forward()
		for l := 0; l < 3; l++ {
			if tmax[l] != want.Tmax {
				t.Fatalf("%s lane %d: Tmax %+v != Analyze %+v", name, l, tmax[l], want.Tmax)
			}
		}
	}
}

func TestBatchBackwardBitIdenticalToScenarios(t *testing.T) {
	const k = 3.0
	for name, m := range parallelTestModels(t) {
		rng := rand.New(rand.NewSource(11))
		for _, K := range batchLaneCounts {
			scs := batchScenarios(m, K, rng)
			for _, w := range batchWorkerCounts {
				b := newTestBatch(m, scs, w)
				phis := b.GradsMuPlusKSigma(k)
				var lane []float64
				for l, sc := range scs {
					phiWant, gradWant := GradScenarioMuPlusKSigma(m, sc, k)
					if phis[l] != phiWant {
						t.Fatalf("%s K=%d w=%d lane=%d: phi %v != scalar %v",
							name, K, w, l, phis[l], phiWant)
					}
					lane = b.Grad(l, lane)
					for id := range gradWant {
						if lane[id] != gradWant[id] {
							t.Fatalf("%s K=%d w=%d lane=%d: grad[%d] = %v != scalar %v",
								name, K, w, l, id, lane[id], gradWant[id])
						}
					}
				}
			}
		}
	}
}

// TestBatchFuzzRandomNetlists drives the full (K, workers) grid over
// randomly generated netlists and random scenarios, including a
// zero-variance sigma model (every gate delay a point mass), checking
// forward and adjoint bit-identity against the scalar scenario sweep.
func TestBatchFuzzRandomNetlists(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 6; trial++ {
		spec := netlist.GenSpec{
			Name:     "fuzz",
			Gates:    40 + rng.Intn(260),
			Inputs:   3 + rng.Intn(12),
			Outputs:  1 + rng.Intn(6),
			Depth:    3 + rng.Intn(10),
			MaxFanin: 2 + rng.Intn(3),
			Seed:     rng.Int63(),
		}
		g, err := netlist.Generate(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := delay.MustBind(netlist.MustCompile(g), delay.Default())
		if trial%3 == 2 {
			// Degenerate zero-variance gates: the max operator's
			// point-mass branches and the adjoint's zero-variance
			// seeds all get exercised.
			m.Sigma = delay.Proportional{K: 0}
		}
		for _, K := range batchLaneCounts {
			scs := batchScenarios(m, K, rng)
			for _, w := range batchWorkerCounts {
				b := newTestBatch(m, scs, w)
				phis := b.GradsMuPlusKSigma(3)
				var lane []float64
				for l, sc := range scs {
					phiWant, gradWant := GradScenarioMuPlusKSigma(m, sc, 3)
					if phis[l] != phiWant {
						t.Fatalf("trial %d K=%d w=%d lane %d: phi %v != %v",
							trial, K, w, l, phis[l], phiWant)
					}
					if b.Tmax(l) != AnalyzeScenario(m, sc).Tmax {
						t.Fatalf("trial %d K=%d w=%d lane %d: Tmax differs", trial, K, w, l)
					}
					lane = b.Grad(l, lane)
					for id := range gradWant {
						if lane[id] != gradWant[id] {
							t.Fatalf("trial %d K=%d w=%d lane %d: grad[%d] %v != %v",
								trial, K, w, l, id, lane[id], gradWant[id])
						}
					}
				}
			}
		}
	}
}

func TestDetBatchBitIdenticalToCornerSweeps(t *testing.T) {
	ks := []float64{-3, -1, 0, 1, 2.5, 3}
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		want := make([]float64, len(ks))
		for i, k := range ks {
			want[i] = cornerSweep(m, S, k)
		}
		for _, w := range batchWorkerCounts {
			got := KSweep(m, S, ks, w)
			for i := range ks {
				if got[i] != want[i] {
					t.Fatalf("%s w=%d k=%v: batched %v != scalar %v",
						name, w, ks[i], got[i], want[i])
				}
			}
		}
	}
}

func TestCornersMatchAcrossWorkersAndSign(t *testing.T) {
	for name, m := range parallelTestModels(t) {
		S := rampSizes(m)
		want := Corners(m, S, 3)
		for _, w := range batchWorkerCounts {
			if got := CornersWorkers(m, S, 3, w); *got != *want {
				t.Errorf("%s workers=%d: %+v != %+v", name, w, got, want)
			}
		}
		// The sign of k is documentation only: corners are symmetric.
		if got := Corners(m, S, -3); *got != *want {
			t.Errorf("%s: Corners(-3) %+v != Corners(3) %+v", name, got, want)
		}
	}
}

// TestNonFiniteRiskFactorPanics is the regression test for the k-path
// audit: a NaN or infinite risk factor must be rejected at the API
// boundary instead of flowing through the sweeps as a silent NaN
// circuit delay.
func TestNonFiniteRiskFactorPanics(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	S := m.UnitSizes()
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		call func()
	}{
		{"Corners-NaN", func() { Corners(m, S, nan) }},
		{"CornersWorkers-Inf", func() { CornersWorkers(m, S, inf, 2) }},
		{"KSweep-NaN", func() { KSweep(m, S, []float64{0, nan}, 1) }},
		{"NewDetBatch-negInf", func() { NewDetBatch(m, []float64{math.Inf(-1)}, 1) }},
		{"Objective-NaN", func() { ObjectiveMuPlusKSigma(stats.MV{Mu: 1, Var: 1}, nan) }},
		{"GradMuPlusKSigma-Inf", func() { GradMuPlusKSigma(m, S, inf) }},
		{"GradWorkers-NaN", func() { GradMuPlusKSigmaWorkers(m, S, nan, 2) }},
		{"GradScenario-NaN", func() { GradScenarioMuPlusKSigma(m, Scenario{S: S}, nan) }},
		{"Batch-NaN", func() {
			b := NewBatch(m, 1, BatchOptions{})
			b.SetScenario(0, Scenario{S: S})
			b.GradsMuPlusKSigma(nan)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.call()
		}()
	}
}

// TestBatchWarmSweepsAllocFree pins the steady-state serial batch
// paths at zero allocations per sweep: all slabs are arena-allocated
// at construction, so an evaluation loop never touches the heap.
func TestBatchWarmSweepsAllocFree(t *testing.T) {
	m := parallelTestModels(t)["gen1200"]
	scs := batchScenarios(m, 8, rand.New(rand.NewSource(3)))
	b := newTestBatch(m, scs, 1)
	seedMu := make([]float64, 8)
	seedVar := make([]float64, 8)
	for l := range seedMu {
		seedMu[l] = 1
	}
	b.Forward()
	b.Backward(seedMu, seedVar)
	if n := testing.AllocsPerRun(10, func() { b.Forward() }); n != 0 {
		t.Errorf("warm Batch.Forward allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		b.Forward()
		b.Backward(seedMu, seedVar)
	}); n != 0 {
		t.Errorf("warm Batch forward+backward allocates %v/op, want 0", n)
	}

	S := rampSizes(m)
	db := NewDetBatch(m, []float64{-3, 0, 3}, 1)
	db.Sweep(S)
	if n := testing.AllocsPerRun(10, func() { db.Sweep(S) }); n != 0 {
		t.Errorf("warm DetBatch.Sweep allocates %v/op, want 0", n)
	}
}
