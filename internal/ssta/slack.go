package ssta

import (
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// SlackResult holds a required-time / slack analysis against a
// deadline. Arrival times are the statistical mean + K*sigma
// quantiles; required times propagate backward deterministically from
// the deadline, so Slack < 0 flags the nodes whose K-quantile arrival
// breaks the deadline — the statistical generalization of classic
// slack reporting.
type SlackResult struct {
	// K is the quantile multiplier the analysis was run at (0 = mean).
	K float64
	// Deadline is the required circuit delay.
	Deadline float64
	// Required[id] is the latest acceptable arrival at node id.
	Required []float64
	// Slack[id] = Required[id] - (mu + K*sigma of the arrival).
	Slack []float64
	// WorstSlack is the minimum slack over all nodes.
	WorstSlack float64
}

// Slacks runs the forward statistical sweep and a backward
// required-time sweep at quantile mu + k*sigma against the deadline.
//
// Required times use mean gate delays plus k times the gate sigma as
// the per-stage budget, mirroring how the forward quantile
// accumulates; the resulting slack is a conservative per-node
// decomposition of the circuit-level timing check (conservative
// because sigma is sub-additive along a path: sqrt(sum of variances)
// <= sum of sigmas).
func Slacks(m *delay.Model, S []float64, k, deadline float64) *SlackResult {
	return SlacksWorkers(m, S, k, deadline, 1)
}

// SlacksWorkers is Slacks with the forward sweep routed through the
// shared workers-aware entry point (AnalyzeWorkers); the backward
// required-time sweep is a cheap deterministic scan and stays serial.
// Results are bit-identical to Slacks for any worker count.
func SlacksWorkers(m *delay.Model, S []float64, k, deadline float64, workers int) *SlackResult {
	g := m.G
	n := len(g.C.Nodes)
	fw := AnalyzeWorkers(m, S, false, workers)

	req := make([]float64, n)
	for i := range req {
		req[i] = math.Inf(1)
	}
	for _, o := range g.C.Outputs {
		req[o] = deadline
	}
	// Backward sweep in reverse topological order: the requirement at
	// a fanin is the gate's requirement minus the gate's (quantile)
	// delay and the pin offset.
	topo := g.Topo
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		nd := &g.C.Nodes[id]
		if nd.Kind != netlist.KindGate || math.IsInf(req[id], 1) {
			continue
		}
		t := fw.GateDelay[id]
		budget := t.Mu + k*t.Sigma()
		for pin, f := range nd.Fanin {
			if r := req[id] - budget - m.PinOff(id, pin); r < req[f] {
				req[f] = r
			}
		}
	}

	res := &SlackResult{
		K:          k,
		Deadline:   deadline,
		Required:   req,
		Slack:      make([]float64, n),
		WorstSlack: math.Inf(1),
	}
	for i := range res.Slack {
		a := fw.Arrival[i]
		res.Slack[i] = req[i] - (a.Mu + k*a.Sigma())
		if res.Slack[i] < res.WorstSlack {
			res.WorstSlack = res.Slack[i]
		}
	}
	return res
}

// CriticalNodes returns the node ids with slack below the threshold,
// in ascending slack order (most critical first).
func (s *SlackResult) CriticalNodes(threshold float64) []netlist.NodeID {
	var ids []netlist.NodeID
	for i, sl := range s.Slack {
		if sl < threshold {
			ids = append(ids, netlist.NodeID(i))
		}
	}
	// Insertion sort by slack (lists are short in practice).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && s.Slack[ids[j]] < s.Slack[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
