package ssta_test

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/ssta"
)

// One linear-time sweep yields the circuit delay distribution.
func ExampleAnalyze() {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	r := ssta.Analyze(m, m.UnitSizes(), false)
	fmt.Printf("mu = %.2f, sigma = %.2f\n", r.Tmax.Mu, r.Tmax.Sigma())
	// Output:
	// mu = 7.38, sigma = 0.82
}

// The adjoint sweep gives the exact gradient of mu + k*sigma with
// respect to every speed factor in one backward pass.
func ExampleGradMuPlusKSigma() {
	c := netlist.Tree7()
	m := delay.MustBind(netlist.MustCompile(c), delay.PaperTree())
	phi, grad := ssta.GradMuPlusKSigma(m, m.UnitSizes(), 3)
	// Upsizing the output gate G helps the most (most negative).
	fmt.Printf("phi = %.2f, d phi/d S_G = %.2f\n", phi, grad[c.MustID("G")])
	// Output:
	// phi = 9.83, d phi/d S_G = -1.34
}

// Corner analysis quantifies the pessimism of traditional worst-case
// timing (the paper's introduction).
func ExampleCorners() {
	m := delay.MustBind(netlist.MustCompile(netlist.Chain(16)), delay.Default())
	cr := ssta.Corners(m, m.UnitSizes(), 3)
	fmt.Printf("worst corner exceeds the true 99.8%% quantile: %v\n",
		cr.Pessimism > 0)
	// Output:
	// worst corner exceeds the true 99.8% quantile: true
}
