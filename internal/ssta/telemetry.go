package ssta

import (
	"time"

	"repro/internal/delay"
	"repro/internal/telemetry"
)

// This file holds the instrumented variants of the sweep entry points.
// A nil Recorder falls straight through to the plain functions, so the
// instrumentation costs one branch when telemetry is off. All recorded
// data is wall-clock/aggregate (spans, counters, gauges) and therefore
// flows to the metrics sinks only — sweep results themselves are
// bit-identical for every worker count, so there is nothing
// nondeterministic to keep out of the event stream here.

// AnalyzeWorkersRec is AnalyzeWorkers with telemetry: it times the
// forward sweep into the "ssta.forward" span, counts sweeps, and
// publishes the levelization-shape gauges the parallel sweep's
// performance depends on.
func AnalyzeWorkersRec(m *delay.Model, S []float64, withTape bool, workers int, rec telemetry.Recorder) *Result {
	if rec == nil {
		return AnalyzeWorkers(m, S, withTape, workers)
	}
	t0 := time.Now()
	r := AnalyzeWorkers(m, S, withTape, workers)
	rec.Span("ssta.forward", time.Since(t0))
	rec.Count("ssta.forward_sweeps", 1)
	recordGraphShape(m, rec)
	return r
}

// BackwardWorkersRec is BackwardWorkers with telemetry: the adjoint
// sweep is timed into the "ssta.adjoint" span.
func (r *Result) BackwardWorkersRec(m *delay.Model, S []float64, seedMu, seedVar float64, workers int, rec telemetry.Recorder) []float64 {
	if rec == nil {
		return r.BackwardWorkers(m, S, seedMu, seedVar, workers)
	}
	t0 := time.Now()
	grad := r.BackwardWorkers(m, S, seedMu, seedVar, workers)
	rec.Span("ssta.adjoint", time.Since(t0))
	rec.Count("ssta.adjoint_sweeps", 1)
	return grad
}

// GradMuPlusKSigmaWorkersRec is GradMuPlusKSigmaWorkers on the
// instrumented sweeps.
func GradMuPlusKSigmaWorkersRec(m *delay.Model, S []float64, k float64, workers int, rec telemetry.Recorder) (float64, []float64) {
	r := AnalyzeWorkersRec(m, S, true, workers, rec)
	phi, sMu, sVar := ObjectiveMuPlusKSigma(r.Tmax, k)
	return phi, r.BackwardWorkersRec(m, S, sMu, sVar, workers, rec)
}

// recordGraphShape publishes the level structure driving the parallel
// sweeps: level count, widest level, node count. The values are
// properties of the compiled graph, so repeated sets are idempotent.
func recordGraphShape(m *delay.Model, rec telemetry.Recorder) {
	g := m.G
	maxw := 0
	for _, b := range g.Levels {
		if len(b) > maxw {
			maxw = len(b)
		}
	}
	rec.Gauge("ssta.levels", float64(len(g.Levels)))
	rec.Gauge("ssta.max_level_width", float64(maxw))
	rec.Gauge("ssta.nodes", float64(len(g.C.Nodes)))
}
