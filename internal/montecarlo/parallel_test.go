package montecarlo

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

func TestRunBitIdenticalForAnyWorkerCount(t *testing.T) {
	// The shard grid depends only on (Samples, Seed), so every worker
	// count must reproduce the same moments and the same sorted sample
	// set bit for bit. 3*shardSamples+7 samples spans four shards, one
	// of them partial.
	gen, err := netlist.Generate(netlist.GenSpec{
		Name: "mcgen", Gates: 400, Inputs: 24, Outputs: 8,
		Depth: 12, MaxFanin: 4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*netlist.Circuit{netlist.Tree7(), netlist.Apex2Like(), gen} {
		m := delay.MustBind(netlist.MustCompile(c), delay.Default())
		S := m.UnitSizes()
		opt := Options{Samples: 3*shardSamples + 7, Seed: 42, KeepSamples: true}
		opt.Workers = 1
		want, err := Run(m, S, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8, runtime.NumCPU()} {
			opt.Workers = w
			got, err := Run(m, S, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got.Mu != want.Mu || got.Sigma != want.Sigma {
				t.Errorf("%s workers=%d: (mu, sigma) = (%v, %v) != serial (%v, %v)",
					c.Name, w, got.Mu, got.Sigma, want.Mu, want.Sigma)
			}
			if len(got.Samples) != len(want.Samples) {
				t.Fatalf("%s workers=%d: %d samples != %d", c.Name, w, len(got.Samples), len(want.Samples))
			}
			for i := range want.Samples {
				if got.Samples[i] != want.Samples[i] {
					t.Fatalf("%s workers=%d: sample %d differs", c.Name, w, i)
				}
			}
		}
	}
}

func TestSigmaUsesBesselDivisor(t *testing.T) {
	m := model(t, netlist.Chain(2))
	S := m.UnitSizes()
	r, err := Run(m, S, Options{Samples: 5, Seed: 4, KeepSamples: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, x := range r.Samples {
		mean += x
	}
	mean /= float64(len(r.Samples))
	var ss float64
	for _, x := range r.Samples {
		ss += (x - mean) * (x - mean)
	}
	want := math.Sqrt(ss / float64(len(r.Samples)-1))
	if !close(r.Sigma, want, 1e-12) {
		t.Errorf("Sigma = %v, want sample (N-1) estimate %v", r.Sigma, want)
	}
}

func TestSigmaSingleSampleIsZero(t *testing.T) {
	m := model(t, netlist.Chain(2))
	r, err := Run(m, m.UnitSizes(), Options{Samples: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sigma != 0 {
		t.Errorf("Sigma for a single sample = %v, want 0", r.Sigma)
	}
	if math.IsNaN(r.Mu) || math.IsInf(r.Mu, 0) {
		t.Errorf("Mu for a single sample = %v", r.Mu)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	// Table-driven check of the documented nearest-rank convention
	// Samples[ceil(p*n)-1] on a small hand-built sample set.
	r := &Result{Samples: []float64{10, 20, 30, 40}}
	cases := []struct {
		p, want float64
	}{
		{-0.5, 10},
		{0, 10},
		{0.1, 10},  // ceil(0.4) = 1
		{0.25, 10}, // ceil(1.0) = 1
		{0.26, 20}, // ceil(1.04) = 2
		{0.5, 20},  // ceil(2.0) = 2
		{0.51, 30}, // ceil(2.04) = 3
		{0.75, 30},
		{0.76, 40},
		{1, 40},
		{1.5, 40},
	}
	for _, c := range cases {
		if got := r.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileConsistentWithYield(t *testing.T) {
	// Nearest-rank makes Quantile a right inverse of Yield:
	// Yield(Quantile(p)) >= p for every p in (0, 1].
	m := model(t, netlist.Tree7())
	r, err := Run(m, m.UnitSizes(), Options{Samples: 1000, Seed: 8, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.001, 0.01, 0.25, 0.5, 0.75, 0.9, 0.999, 1} {
		if y := r.Yield(r.Quantile(p)); y < p {
			t.Errorf("Yield(Quantile(%v)) = %v < p", p, y)
		}
	}
	// And the other boundary: no quantile sits below the minimum or
	// above the maximum sample.
	if r.Quantile(0.0001) < r.Samples[0] || r.Quantile(0.9999) > r.Samples[len(r.Samples)-1] {
		t.Error("quantile escaped the sample range")
	}
}
