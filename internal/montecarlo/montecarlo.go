// Package montecarlo implements sampling-based statistical timing
// analysis: per-sample gate delays are drawn from their distributions
// and propagated with deterministic max/add. This is the approach of
// the paper's reference [9] (Jyu), which the paper dismisses for
// optimization inner loops as too slow — a claim quantified by the
// ablation benchmarks — but which serves here as the ground-truth
// validator for the analytic operators: Monte Carlo makes no
// independence assumption across reconvergent paths, so the gap
// between its estimate and the analytic sweep bounds the error the
// paper accepts in section 3.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/delay"
	"repro/internal/dist"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// Options configures a Monte Carlo run.
type Options struct {
	// Samples is the number of circuit delay samples to draw.
	Samples int
	// Seed seeds the generator; equal options reproduce runs exactly.
	Seed int64
	// TruncateAtZero redraws negative gate-delay samples at zero,
	// acknowledging that physical delays are non-negative even though
	// the Gaussian model has a left tail.
	TruncateAtZero bool
	// KeepSamples retains the per-sample circuit delays (sorted) in
	// the result for quantile and KS computations.
	KeepSamples bool
}

// Result summarizes a Monte Carlo timing run.
type Result struct {
	// Mu and Sigma are the sample moments of the circuit delay.
	Mu, Sigma float64
	// Samples holds the sorted circuit delays if requested.
	Samples []float64
}

// Run samples the circuit delay distribution of model m under speed
// factors S.
func Run(m *delay.Model, S []float64, opt Options) (*Result, error) {
	if opt.Samples < 1 {
		return nil, fmt.Errorf("montecarlo: need at least 1 sample, got %d", opt.Samples)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g := m.G
	n := len(g.C.Nodes)

	// Pre-compute per-gate delay distributions once; they do not vary
	// across samples.
	gateMu := make([]float64, n)
	gateSigma := make([]float64, n)
	for _, id := range g.C.GateIDs() {
		mv := m.GateMV(id, S)
		gateMu[id] = mv.Mu
		gateSigma[id] = mv.Sigma()
	}

	arr := make([]float64, n)
	var keep []float64
	if opt.KeepSamples {
		keep = make([]float64, 0, opt.Samples)
	}
	var mean, m2 float64
	for s := 0; s < opt.Samples; s++ {
		for _, id := range g.Topo {
			nd := &g.C.Nodes[id]
			if nd.Kind == netlist.KindInput {
				a := m.Arrival[id]
				arr[id] = a.Mu + a.Sigma()*rng.NormFloat64()
				continue
			}
			u := arr[nd.Fanin[0]] + m.PinOff(id, 0)
			for k, f := range nd.Fanin[1:] {
				if a := arr[f] + m.PinOff(id, k+1); a > u {
					u = a
				}
			}
			d := gateMu[id] + gateSigma[id]*rng.NormFloat64()
			if opt.TruncateAtZero && d < 0 {
				d = 0
			}
			arr[id] = u + d
		}
		tmax := arr[g.C.Outputs[0]]
		for _, o := range g.C.Outputs[1:] {
			if a := arr[o]; a > tmax {
				tmax = a
			}
		}
		d := tmax - mean
		mean += d / float64(s+1)
		m2 += d * (tmax - mean)
		if opt.KeepSamples {
			keep = append(keep, tmax)
		}
	}
	r := &Result{Mu: mean, Sigma: sqrt(m2 / float64(opt.Samples))}
	if opt.KeepSamples {
		sort.Float64s(keep)
		r.Samples = keep
	}
	return r, nil
}

// Yield returns the fraction of samples meeting the deadline. The
// result must have been produced with KeepSamples set.
func (r *Result) Yield(deadline float64) float64 {
	if r.Samples == nil {
		panic("montecarlo: Yield requires KeepSamples")
	}
	// First index with sample > deadline.
	i := sort.SearchFloat64s(r.Samples, deadline)
	// SearchFloat64s returns the first index with s >= deadline;
	// samples equal to the deadline meet it, so advance over ties.
	for i < len(r.Samples) && r.Samples[i] == deadline {
		i++
	}
	return float64(i) / float64(len(r.Samples))
}

// Quantile returns the empirical p-quantile of the sampled delays.
func (r *Result) Quantile(p float64) float64 {
	if r.Samples == nil {
		panic("montecarlo: Quantile requires KeepSamples")
	}
	if p <= 0 {
		return r.Samples[0]
	}
	if p >= 1 {
		return r.Samples[len(r.Samples)-1]
	}
	i := int(p * float64(len(r.Samples)))
	return r.Samples[i]
}

// KSAgainst returns the Kolmogorov-Smirnov distance between the
// sampled delays and the normal law with the given moments, the
// module's measure of "how Gaussian" the true circuit delay is
// (paper section 3 argues the normal approximation is adequate).
func (r *Result) KSAgainst(mv stats.MV) float64 {
	if r.Samples == nil {
		panic("montecarlo: KSAgainst requires KeepSamples")
	}
	return dist.KSNormal(r.Samples, mv.Normal())
}

// Compare holds the analytic-vs-Monte-Carlo moment gap for a circuit.
type Compare struct {
	Analytic stats.MV
	MC       Result
	// MuErr and SigmaErr are |analytic - MC| for mean and sigma.
	MuErr, SigmaErr float64
}

// CompareAnalytic runs Monte Carlo and reports the gap to the analytic
// moments computed by the caller (typically ssta.Analyze(...).Tmax).
func CompareAnalytic(m *delay.Model, S []float64, analytic stats.MV, opt Options) (*Compare, error) {
	r, err := Run(m, S, opt)
	if err != nil {
		return nil, err
	}
	c := &Compare{Analytic: analytic, MC: *r}
	c.MuErr = abs(analytic.Mu - r.Mu)
	c.SigmaErr = abs(analytic.Sigma() - r.Sigma)
	return c, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sqrt guards math.Sqrt so a tiny negative from Welford rounding
// cannot produce NaN.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
