// Package montecarlo implements sampling-based statistical timing
// analysis: per-sample gate delays are drawn from their distributions
// and propagated with deterministic max/add. This is the approach of
// the paper's reference [9] (Jyu), which the paper dismisses for
// optimization inner loops as too slow — a claim quantified by the
// ablation benchmarks — but which serves here as the ground-truth
// validator for the analytic operators: Monte Carlo makes no
// independence assumption across reconvergent paths, so the gap
// between its estimate and the analytic sweep bounds the error the
// paper accepts in section 3.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/delay"
	"repro/internal/dist"
	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Options configures a Monte Carlo run.
type Options struct {
	// Samples is the number of circuit delay samples to draw.
	Samples int
	// Seed seeds the generator; equal options reproduce runs exactly.
	Seed int64
	// TruncateAtZero clamps negative gate-delay samples to zero,
	// acknowledging that physical delays are non-negative even though
	// the Gaussian model has a left tail.
	TruncateAtZero bool
	// KeepSamples retains the per-sample circuit delays (sorted) in
	// the result for quantile and KS computations.
	KeepSamples bool
	// Workers sets how many goroutines draw samples: <= 0 uses one
	// per CPU. The sample loop is sharded into fixed-size blocks with
	// substream generators derived from Seed, so the result is
	// bit-identical for every worker count.
	Workers int
	// LaneWidth sets how many samples a shard propagates per node
	// visit (the batched structure-of-arrays path): <= 0 uses the
	// default width, 1 forces the scalar per-sample loop. Per-sample
	// values are drawn in the scalar order and propagated over
	// K-strided lanes, so the result is bit-identical for every
	// (LaneWidth, Workers) pair — the lane width is purely a
	// performance knob.
	LaneWidth int
	// Recorder, when non-nil, receives aggregate run telemetry: the
	// "mc.run" span, one "mc.shard" span per sample block (count and
	// busy time, exposing shard balance), the sample counter and the
	// shard-grid gauge. A nil Recorder costs one branch.
	Recorder telemetry.Recorder
}

// Result summarizes a Monte Carlo timing run.
type Result struct {
	// Mu and Sigma are the sample moments of the circuit delay; Sigma
	// uses the unbiased sample (Bessel, N-1) divisor and is 0 for a
	// single sample.
	Mu, Sigma float64
	// Samples holds the sorted circuit delays if requested.
	Samples []float64
}

// shardSamples is the fixed number of samples per shard. The shard
// grid depends only on Options.Samples — never on the worker count —
// so every worker count draws the identical sample set.
const shardSamples = 4096

// shardSeed derives shard i's substream seed from the run seed with a
// splitmix64-style finalizer, giving well-separated streams for
// adjacent shard indices.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// shardMoments holds one shard's Welford accumulators.
type shardMoments struct {
	n        int
	mean, m2 float64
	keep     []float64
}

// Run samples the circuit delay distribution of model m under speed
// factors S. The sample loop is sharded: each fixed-size block of
// samples is drawn from its own substream generator and the per-shard
// Welford moments are merged with Chan's pairwise combination in shard
// order, so the result depends only on (Samples, Seed), not on
// Options.Workers.
func Run(m *delay.Model, S []float64, opt Options) (*Result, error) {
	return RunCtx(context.Background(), m, S, opt)
}

// RunCtx is Run under a cancellation context. Cancellation is polled
// at shard boundaries only — a worker always finishes the shard it is
// drawing — so every worker goroutine joins the barrier and none can
// leak. A cancelled run returns (nil, ctx.Err()) and no partial
// moments; an uncancelled run is bit-identical to Run for every
// worker count.
func RunCtx(ctx context.Context, m *delay.Model, S []float64, opt Options) (*Result, error) {
	if opt.Samples < 1 {
		return nil, fmt.Errorf("montecarlo: need at least 1 sample, got %d", opt.Samples)
	}
	done := ctx.Done()
	g := m.G
	n := len(g.C.Nodes)

	// Pre-compute per-gate delay distributions once; they do not vary
	// across samples.
	gateMu := make([]float64, n)
	gateSigma := make([]float64, n)
	for _, id := range g.C.GateIDs() {
		mv := m.GateMV(id, S)
		gateMu[id] = mv.Mu
		gateSigma[id] = mv.Sigma()
	}

	rec := opt.Recorder
	tRun := telemetry.StartSpan(rec)
	nShards := (opt.Samples + shardSamples - 1) / shardSamples
	shards := make([]shardMoments, nShards)
	K := opt.LaneWidth
	if K <= 0 {
		K = defaultLaneWidth
	}
	// runShard draws shard i's block of samples into shards[i] using
	// the caller's per-worker scratch slabs. With a recorder attached
	// each block's busy time folds into the "mc.shard" span (workers
	// record concurrently; the metrics cells are atomic) and into the
	// worker's own scope stack under the mc.run tree node.
	runShard := func(sc *mcScratch, st *telemetry.Stack, i int) {
		t0 := telemetry.StartSpan(rec)
		defer telemetry.EndSpan(rec, "mc.shard", t0)
		st.Push("mc.shard")
		defer st.Pop()
		rng := rand.New(rand.NewSource(shardSeed(opt.Seed, i)))
		count := min(shardSamples, opt.Samples-i*shardSamples)
		sm := &shards[i]
		sm.n = count
		if opt.KeepSamples {
			sm.keep = make([]float64, 0, count)
		}
		if K > 1 {
			runShardLanes(m, gateMu, gateSigma, opt, K, sc, count, sm, rng)
			return
		}
		arr := sc.arr
		for s := 0; s < count; s++ {
			for _, id := range g.Topo {
				nd := &g.C.Nodes[id]
				if nd.Kind == netlist.KindInput {
					a := m.Arrival[id]
					arr[id] = a.Mu + a.Sigma()*rng.NormFloat64()
					continue
				}
				u := arr[nd.Fanin[0]] + m.PinOff(id, 0)
				for k, f := range nd.Fanin[1:] {
					if a := arr[f] + m.PinOff(id, k+1); a > u {
						u = a
					}
				}
				d := gateMu[id] + gateSigma[id]*rng.NormFloat64()
				if opt.TruncateAtZero && d < 0 {
					d = 0
				}
				arr[id] = u + d
			}
			tmax := arr[g.C.Outputs[0]]
			for _, o := range g.C.Outputs[1:] {
				if a := arr[o]; a > tmax {
					tmax = a
				}
			}
			d := tmax - sm.mean
			sm.mean += d / float64(s+1)
			sm.m2 += d * (tmax - sm.mean)
			if opt.KeepSamples {
				sm.keep = append(sm.keep, tmax)
			}
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > nShards {
		workers = nShards
	}
	if workers == 1 {
		sc := newMCScratch(n, K)
		st := telemetry.StackAt(rec, "mc.run")
		for i := range shards {
			if cancelled(done) {
				return nil, ctx.Err()
			}
			runShard(sc, st, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newMCScratch(n, K)
				st := telemetry.StackAt(rec, "mc.run")
				for {
					if cancelled(done) {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= nShards {
						return
					}
					runShard(sc, st, i)
				}
			}()
		}
		wg.Wait()
		if cancelled(done) {
			return nil, ctx.Err()
		}
	}

	// Merge the per-shard moments with Chan's pairwise combination,
	// folding in fixed shard order so the merge itself is
	// deterministic.
	var (
		tot      int
		mean, m2 float64
	)
	for i := range shards {
		sm := &shards[i]
		if tot == 0 {
			tot, mean, m2 = sm.n, sm.mean, sm.m2
			continue
		}
		na, nb := float64(tot), float64(sm.n)
		delta := sm.mean - mean
		tot += sm.n
		nt := float64(tot)
		mean += delta * nb / nt
		m2 += sm.m2 + delta*delta*na*nb/nt
	}
	sigma := 0.0
	if tot > 1 {
		// Sample (Bessel) divisor: unbiased variance estimate for
		// small-sample comparison against the analytic sigma.
		sigma = sqrt(m2 / float64(tot-1))
	}
	if rec != nil {
		rec.Count("mc.samples", int64(opt.Samples))
		rec.Gauge("mc.shards", float64(nShards))
		rec.Gauge("mc.lanes", float64(K))
		telemetry.EndSpan(rec, "mc.run", tRun)
	}
	r := &Result{Mu: mean, Sigma: sigma}
	if opt.KeepSamples {
		keep := make([]float64, 0, opt.Samples)
		for i := range shards {
			keep = append(keep, shards[i].keep...)
		}
		sort.Float64s(keep)
		r.Samples = keep
	}
	return r, nil
}

// cancelled polls a context's done channel without blocking.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Yield returns the fraction of samples meeting the deadline. The
// result must have been produced with KeepSamples set; an empty
// sample set has no defined yield and returns NaN.
func (r *Result) Yield(deadline float64) float64 {
	if r.Samples == nil {
		panic("montecarlo: Yield requires KeepSamples")
	}
	if len(r.Samples) == 0 {
		return math.NaN()
	}
	// First index with sample > deadline.
	i := sort.SearchFloat64s(r.Samples, deadline)
	// SearchFloat64s returns the first index with s >= deadline;
	// samples equal to the deadline meet it, so advance over ties.
	for i < len(r.Samples) && r.Samples[i] == deadline {
		i++
	}
	return float64(i) / float64(len(r.Samples))
}

// Quantile returns the empirical p-quantile of the sampled delays
// using the nearest-rank convention: the smallest sample x such that
// at least ceil(p*n) of the n samples are <= x, i.e.
// Samples[ceil(p*n)-1]. This makes Quantile the inverse of Yield at
// the boundaries: Yield(Quantile(p)) >= p for every p in (0, 1].
// p <= 0 returns the minimum sample, p >= 1 the maximum. An empty
// sample set has no quantiles, and a NaN p selects none: both return
// NaN instead of panicking on an impossible rank (guarding callers
// that filtered every sample away before asking).
func (r *Result) Quantile(p float64) float64 {
	if r.Samples == nil {
		panic("montecarlo: Quantile requires KeepSamples")
	}
	n := len(r.Samples)
	if n == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return r.Samples[i]
}

// KSAgainst returns the Kolmogorov-Smirnov distance between the
// sampled delays and the normal law with the given moments, the
// module's measure of "how Gaussian" the true circuit delay is
// (paper section 3 argues the normal approximation is adequate).
func (r *Result) KSAgainst(mv stats.MV) float64 {
	if r.Samples == nil {
		panic("montecarlo: KSAgainst requires KeepSamples")
	}
	return dist.KSNormal(r.Samples, mv.Normal())
}

// Compare holds the analytic-vs-Monte-Carlo moment gap for a circuit.
type Compare struct {
	Analytic stats.MV
	MC       Result
	// MuErr and SigmaErr are |analytic - MC| for mean and sigma.
	MuErr, SigmaErr float64
}

// CompareAnalytic runs Monte Carlo and reports the gap to the analytic
// moments computed by the caller (typically ssta.Analyze(...).Tmax).
func CompareAnalytic(m *delay.Model, S []float64, analytic stats.MV, opt Options) (*Compare, error) {
	return CompareAnalyticCtx(context.Background(), m, S, analytic, opt)
}

// CompareAnalyticCtx is CompareAnalytic under a cancellation context;
// a cancelled run returns (nil, ctx.Err()).
func CompareAnalyticCtx(ctx context.Context, m *delay.Model, S []float64, analytic stats.MV, opt Options) (*Compare, error) {
	r, err := RunCtx(ctx, m, S, opt)
	if err != nil {
		return nil, err
	}
	c := &Compare{Analytic: analytic, MC: *r}
	c.MuErr = abs(analytic.Mu - r.Mu)
	c.SigmaErr = abs(analytic.Sigma() - r.Sigma)
	return c, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sqrt guards math.Sqrt so a tiny negative from Welford rounding
// cannot produce NaN.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
