package montecarlo

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// TestLaneWidthBitIdentical: the lane width is a pure performance
// knob — every (LaneWidth, Workers) pair must reproduce the scalar
// single-worker run exactly, moments and sorted samples alike,
// including a sample count that is not a multiple of the lane width
// and spans multiple shards.
func TestLaneWidthBitIdentical(t *testing.T) {
	gen, err := netlist.Generate(netlist.GenSpec{
		Name: "mc300", Gates: 300, Inputs: 12, Outputs: 6,
		Depth: 9, MaxFanin: 4, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := delay.MustBind(netlist.MustCompile(gen), delay.Default())
	S := m.UnitSizes()
	for _, truncate := range []bool{false, true} {
		base := Options{
			Samples: 2*shardSamples + 1037, Seed: 42,
			TruncateAtZero: truncate, KeepSamples: true,
			Workers: 1, LaneWidth: 1,
		}
		want, err := Run(m, S, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, K := range []int{1, 2, 3, 8, 0} { // 0 = default width
			for _, w := range []int{1, 4} {
				opt := base
				opt.LaneWidth = K
				opt.Workers = w
				got, err := Run(m, S, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Mu != want.Mu || got.Sigma != want.Sigma {
					t.Fatalf("truncate=%v K=%d w=%d: moments (%v, %v) != scalar (%v, %v)",
						truncate, K, w, got.Mu, got.Sigma, want.Mu, want.Sigma)
				}
				for i := range want.Samples {
					if got.Samples[i] != want.Samples[i] {
						t.Fatalf("truncate=%v K=%d w=%d: sample[%d] differs", truncate, K, w, i)
					}
				}
			}
		}
	}
}
