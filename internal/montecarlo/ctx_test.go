package montecarlo

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/stats"
)

func ctxTestModel(t *testing.T) *delay.Model {
	t.Helper()
	return delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
}

// TestRunCtxUncancelledMatchesRun: a background context must not
// perturb the sampler — RunCtx reproduces Run bit for bit for every
// worker count.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	m := ctxTestModel(t)
	S := m.UnitSizes()
	opt := Options{Samples: 20000, Seed: 42, KeepSamples: true, Workers: 1}
	ref, err := Run(m, S, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opt.Workers = workers
		r, err := RunCtx(context.Background(), m, S, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Mu != ref.Mu || r.Sigma != ref.Sigma {
			t.Fatalf("workers=%d: moments (%v, %v) != (%v, %v)", workers, r.Mu, r.Sigma, ref.Mu, ref.Sigma)
		}
		for i := range r.Samples {
			if r.Samples[i] != ref.Samples[i] {
				t.Fatalf("workers=%d: sample %d differs", workers, i)
			}
		}
	}
}

// TestRunCtxCancelled: a pre-cancelled context yields (nil, ctx.Err())
// and no partial moments; CompareAnalyticCtx forwards the error.
func TestRunCtxCancelled(t *testing.T) {
	m := ctxTestModel(t)
	S := m.UnitSizes()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Samples: 20000, Seed: 7, Workers: 2}
	if r, err := RunCtx(ctx, m, S, opt); err != context.Canceled || r != nil {
		t.Fatalf("RunCtx = (%v, %v), want (nil, context.Canceled)", r, err)
	}
	if c, err := CompareAnalyticCtx(ctx, m, S, stats.MV{Mu: 1, Var: 0.01}, opt); err != context.Canceled || c != nil {
		t.Fatalf("CompareAnalyticCtx = (%v, %v), want (nil, context.Canceled)", c, err)
	}
}

// TestRunCtxCancelMidRunNoGoroutineLeak: cancellation is polled at
// shard boundaries, so a worker always finishes its shard and joins
// the barrier — no goroutine outlives a cancelled run.
func TestRunCtxCancelMidRunNoGoroutineLeak(t *testing.T) {
	m := ctxTestModel(t)
	S := m.UnitSizes()
	base := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // races the run: either outcome is legal
		if _, err := RunCtx(ctx, m, S, Options{Samples: 200000, Seed: int64(trial), Workers: 4}); err != nil && err != context.Canceled {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled runs: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEmptySampleGuards: Yield and Quantile on a kept-but-empty sample
// set (every sample filtered away upstream) return NaN instead of
// panicking or indexing out of range; a NaN p selects no quantile.
func TestEmptySampleGuards(t *testing.T) {
	empty := &Result{Samples: []float64{}}
	if v := empty.Yield(1.0); !math.IsNaN(v) {
		t.Fatalf("Yield on empty samples = %v, want NaN", v)
	}
	if v := empty.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("Quantile on empty samples = %v, want NaN", v)
	}
	full := &Result{Samples: []float64{1, 2, 3}}
	if v := full.Quantile(math.NaN()); !math.IsNaN(v) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", v)
	}
	// Boundary ranks stay in range.
	if v := full.Quantile(0); v != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", v)
	}
	if v := full.Quantile(1); v != 3 {
		t.Fatalf("Quantile(1) = %v, want 3", v)
	}
}
