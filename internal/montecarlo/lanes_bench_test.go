package montecarlo

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// The MCLane benchmarks measure the batched shard runner against the
// scalar per-sample loop on the 1200-gate netlist; both draw the same
// 4096-sample shard, so ns/op is directly comparable and the scalar/
// lane ratio is the batching speedup collected by `make bench-batch`.

func benchMCLanes(b *testing.B, laneWidth int) {
	gen, err := netlist.Generate(netlist.GenSpec{
		Name: "par1200", Gates: 1200, Inputs: 48, Outputs: 12,
		Depth: 18, MaxFanin: 4, Seed: 1234,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := delay.MustBind(netlist.MustCompile(gen), delay.Default())
	S := m.UnitSizes()
	opt := Options{Samples: 4096, Seed: 7, Workers: 1, LaneWidth: laneWidth}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, S, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCLanes1Gen1200(b *testing.B) { benchMCLanes(b, 1) }
func BenchmarkMCLanes4Gen1200(b *testing.B) { benchMCLanes(b, 4) }
func BenchmarkMCLanes8Gen1200(b *testing.B) { benchMCLanes(b, 8) }
