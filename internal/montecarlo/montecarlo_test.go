package montecarlo

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/ssta"
	"repro/internal/stats"
)

func close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func model(t *testing.T, c *netlist.Circuit) *delay.Model {
	t.Helper()
	return delay.MustBind(netlist.MustCompile(c), delay.Default())
}

func TestRunRejectsBadOptions(t *testing.T) {
	m := model(t, netlist.Chain(2))
	if _, err := Run(m, m.UnitSizes(), Options{Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	m := model(t, netlist.Tree7())
	S := m.UnitSizes()
	a, err := Run(m, S, Options{Samples: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(m, S, Options{Samples: 1000, Seed: 5})
	if a.Mu != b.Mu || a.Sigma != b.Sigma {
		t.Error("same seed, different results")
	}
	c, _ := Run(m, S, Options{Samples: 1000, Seed: 6})
	if a.Mu == c.Mu {
		t.Error("different seed, identical mean (suspicious)")
	}
}

func TestChainMCMatchesExactConvolution(t *testing.T) {
	// On a chain the circuit delay is an exact sum of independent
	// normals, so both the analytic sweep and MC must agree with the
	// closed form to sampling error.
	g := netlist.MustCompile(netlist.Chain(6))
	m := delay.MustBind(g, delay.Default())
	S := m.UnitSizes()
	var want stats.MV
	for _, id := range g.C.GateIDs() {
		want = stats.Add(want, m.GateMV(id, S))
	}
	r, err := Run(m, S, Options{Samples: 400000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !close(r.Mu, want.Mu, 3e-3) {
		t.Errorf("MC mu %v vs exact %v", r.Mu, want.Mu)
	}
	if !close(r.Sigma, want.Sigma(), 5e-3) {
		t.Errorf("MC sigma %v vs exact %v", r.Sigma, want.Sigma())
	}
}

func TestAnalyticCloseToMCOnTree(t *testing.T) {
	// Tree7 has no reconvergence, so the independence assumption is
	// exact and analytic SSTA must match MC to sampling error.
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	S := m.UnitSizes()
	an := ssta.Analyze(m, S, false).Tmax
	cmp, err := CompareAnalytic(m, S, an, Options{Samples: 400000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MuErr > 5e-3*an.Mu {
		t.Errorf("mu error %v too large (analytic %v, MC %v)", cmp.MuErr, an.Mu, cmp.MC.Mu)
	}
	if cmp.SigmaErr > 2e-2*an.Sigma() {
		t.Errorf("sigma error %v too large (analytic %v, MC %v)",
			cmp.SigmaErr, an.Sigma(), cmp.MC.Sigma)
	}
}

func TestAnalyticCloseToMCOnReconvergent(t *testing.T) {
	// Fig2 reconverges (a, b, c fan out to multiple gates; C feeds
	// both the output max and D). The independence approximation
	// introduces a small error the paper's ref [2] reports as minor;
	// assert it stays within a few percent.
	m := model(t, netlist.Fig2Example())
	S := m.UnitSizes()
	an := ssta.Analyze(m, S, false).Tmax
	cmp, err := CompareAnalytic(m, S, an, Options{Samples: 400000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MuErr > 0.03*an.Mu {
		t.Errorf("reconvergent mu error %v (analytic %v, MC %v)", cmp.MuErr, an.Mu, cmp.MC.Mu)
	}
	if cmp.SigmaErr > 0.15*an.Sigma() {
		t.Errorf("reconvergent sigma error %v (analytic %v, MC %v)",
			cmp.SigmaErr, an.Sigma(), cmp.MC.Sigma)
	}
}

func TestCanonicalBeatsIndependenceOnReconvergence(t *testing.T) {
	// The correlation-aware canonical sweep (the paper's section 7
	// future work, implemented in ssta.AnalyzeCanonical) must close
	// most of the moment gap to Monte Carlo on reconvergent circuits.
	for _, c := range []*netlist.Circuit{netlist.Fig2Example(), netlist.Apex2Like()} {
		m := delay.MustBind(netlist.MustCompile(c), delay.Default())
		S := m.UnitSizes()
		ind := ssta.Analyze(m, S, false).Tmax
		can := ssta.AnalyzeCanonical(m, S).Tmax
		mc, err := Run(m, S, Options{Samples: 60000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		indMuErr := math.Abs(ind.Mu - mc.Mu)
		canMuErr := math.Abs(can.Mu - mc.Mu)
		if canMuErr > indMuErr+1e-6 {
			t.Errorf("%s: canonical mean error %v worse than independence %v",
				c.Name, canMuErr, indMuErr)
		}
		indSigErr := math.Abs(ind.Sigma() - mc.Sigma)
		canSigErr := math.Abs(can.Sigma() - mc.Sigma)
		if canSigErr > 0.5*indSigErr+1e-6 {
			t.Errorf("%s: canonical sigma error %v did not halve independence error %v",
				c.Name, canSigErr, indSigErr)
		}
		// Absolute quality: canonical sigma within 15% of MC.
		if canSigErr > 0.15*mc.Sigma {
			t.Errorf("%s: canonical sigma %v vs MC %v", c.Name, can.Sigma(), mc.Sigma)
		}
	}
}

func TestYieldAndQuantile(t *testing.T) {
	m := model(t, netlist.Tree7())
	S := m.UnitSizes()
	r, err := Run(m, S, Options{Samples: 200000, Seed: 23, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	an := ssta.Analyze(m, S, false).Tmax
	// The paper's section 4: deadlines at mu, mu+sigma, mu+3sigma
	// give ~50%, ~84.1%, ~99.8% yield.
	sigma := an.Sigma()
	cases := []struct {
		k, want, tol float64
	}{
		{0, 0.5, 0.02},
		{1, 0.841, 0.02},
		{3, 0.998, 0.005},
	}
	for _, c := range cases {
		y := r.Yield(an.Mu + c.k*sigma)
		if math.Abs(y-c.want) > c.tol {
			t.Errorf("yield at mu+%vsigma = %v, want ~%v", c.k, y, c.want)
		}
	}
	// Quantiles bracket the mean.
	if q := r.Quantile(0.5); !close(q, r.Mu, 0.02) {
		t.Errorf("median %v vs mean %v", q, r.Mu)
	}
	if r.Quantile(0) > r.Quantile(1) {
		t.Error("quantile extremes inverted")
	}
	if r.Quantile(0.999) <= r.Quantile(0.001) {
		t.Error("quantiles not increasing")
	}
}

func TestCircuitDelayIsNearlyNormal(t *testing.T) {
	// Paper section 3: the circuit delay distribution is close to
	// normal. Check the KS distance of the sampled delays to the
	// normal with the *sample* moments — the shape claim, independent
	// of the moment bias introduced by the independence assumption.
	m := model(t, netlist.Apex2Like())
	S := m.UnitSizes()
	r, err := Run(m, S, Options{Samples: 100000, Seed: 31, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := r.KSAgainst(stats.MV{Mu: r.Mu, Var: r.Sigma * r.Sigma}); d > 0.03 {
		t.Errorf("KS distance to moment-matched normal = %v", d)
	}
}

func TestReconvergenceErrorBounded(t *testing.T) {
	// The independence assumption (paper section 3, future work in
	// section 7) biases the analytic moments on reconvergent
	// circuits: the mean inflates slightly and sigma deflates.
	// Quantify and bound the effect on the Table 1 stand-ins: mean
	// within 5%, sigma within a factor of 3.
	for _, c := range []*netlist.Circuit{netlist.Apex2Like(), netlist.Apex1Like()} {
		m := delay.MustBind(netlist.MustCompile(c), delay.Default())
		S := m.UnitSizes()
		an := ssta.Analyze(m, S, false).Tmax
		r, err := Run(m, S, Options{Samples: 30000, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(an.Mu-r.Mu) / r.Mu; e > 0.05 {
			t.Errorf("%s: mean error %.1f%% (analytic %v, MC %v)", c.Name, 100*e, an.Mu, r.Mu)
		}
		if an.Mu < r.Mu-3*r.Sigma/math.Sqrt(30000)*r.Mu {
			t.Errorf("%s: analytic mean below MC mean (impossible for max-inflation)", c.Name)
		}
		ratio := r.Sigma / an.Sigma()
		if ratio > 3 || ratio < 1.0/1.5 {
			t.Errorf("%s: sigma ratio MC/analytic = %v out of bounds", c.Name, ratio)
		}
	}
}

func TestPanicsWithoutSamples(t *testing.T) {
	r := &Result{Mu: 1, Sigma: 1}
	for name, f := range map[string]func(){
		"Yield":     func() { r.Yield(1) },
		"Quantile":  func() { r.Quantile(0.5) },
		"KSAgainst": func() { r.KSAgainst(stats.MV{Mu: 1, Var: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without samples did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTruncateAtZero(t *testing.T) {
	// With a huge sigma, truncation must pull the mean up.
	m := model(t, netlist.Chain(1))
	m.Sigma = delay.Constant{S: 10}
	S := m.UnitSizes()
	plain, _ := Run(m, S, Options{Samples: 100000, Seed: 1})
	trunc, _ := Run(m, S, Options{Samples: 100000, Seed: 1, TruncateAtZero: true})
	if trunc.Mu <= plain.Mu {
		t.Errorf("truncation did not raise mean: %v vs %v", trunc.Mu, plain.Mu)
	}
}

func TestInputArrivalSampling(t *testing.T) {
	m := model(t, netlist.Chain(1))
	in := m.G.C.MustID("in")
	m.Arrival[in] = stats.MV{Mu: 100, Var: 0}
	r, err := Run(m, m.UnitSizes(), Options{Samples: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mu < 100 {
		t.Errorf("input arrival ignored: mean %v", r.Mu)
	}
}
