package montecarlo

import (
	"math/rand"

	"repro/internal/delay"
	"repro/internal/netlist"
)

// This file holds the batched shard runner: instead of propagating
// one sample per topology walk, a shard propagates blocks of K
// samples over K-strided structure-of-arrays slabs
// (slab[int(id)*K + lane], the layout shared with ssta.Batch), so one
// traversal's graph overhead — node metadata, fanin walks, pin
// offsets — is amortized across K samples and the per-node inner
// loops run over contiguous spans.
//
// Bit-identity: the random values are drawn in exactly the scalar
// order (sample-major: for each sample in turn, one normal variate
// per node in topo order) and only then propagated lane-parallel, and
// each lane's propagation performs the scalar loop's floating-point
// operations in the scalar order. The Welford update consumes the
// block's circuit delays in sample order. A batched run is therefore
// bit-identical to the scalar path for every (LaneWidth, Workers)
// pair.

// defaultLaneWidth is the block size used when Options.LaneWidth is
// unset. Eight lanes fill a cache line per node visit and measure
// near the knee of the amortization curve on the benchmark netlists.
const defaultLaneWidth = 8

// mcScratch is one worker's reusable slabs: arr doubles as the scalar
// arrival array (K == 1) and the K-strided lane arrival slab; vals
// holds a block's pre-drawn per-node values (input arrivals and gate
// delays), K-strided.
type mcScratch struct {
	arr  []float64
	vals []float64
}

func newMCScratch(n, K int) *mcScratch {
	sc := &mcScratch{arr: make([]float64, n*K)}
	if K > 1 {
		sc.vals = make([]float64, n*K)
	}
	return sc
}

// runShardLanes draws and propagates one shard's count samples in
// blocks of up to K lanes.
func runShardLanes(m *delay.Model, gateMu, gateSigma []float64, opt Options,
	K int, sc *mcScratch, count int, sm *shardMoments, rng *rand.Rand) {
	g := m.G
	arr, vals := sc.arr, sc.vals
	for s0 := 0; s0 < count; s0 += K {
		kb := min(K, count-s0)
		// Draw phase, sample-major: lane l's variates are drawn
		// exactly when the scalar loop would draw sample s0+l's, kept
		// in a node-major slab for the propagation phase. Gate-delay
		// truncation applies at draw time — the scalar path clamps
		// before the add, so the stored value is the clamped one.
		for l := 0; l < kb; l++ {
			for _, id := range g.Topo {
				if g.C.Nodes[id].Kind == netlist.KindInput {
					a := m.Arrival[id]
					vals[int(id)*K+l] = a.Mu + a.Sigma()*rng.NormFloat64()
					continue
				}
				d := gateMu[id] + gateSigma[id]*rng.NormFloat64()
				if opt.TruncateAtZero && d < 0 {
					d = 0
				}
				vals[int(id)*K+l] = d
			}
		}
		// Propagation phase, lane-parallel: per node, fold the fanin
		// max into the node's own arrival lanes (pin order preserved),
		// then add the pre-drawn gate delay lanes.
		for _, id := range g.Topo {
			base := int(id) * K
			nd := &g.C.Nodes[id]
			if nd.Kind == netlist.KindInput {
				copy(arr[base:base+kb], vals[base:base+kb])
				continue
			}
			f0 := int(nd.Fanin[0]) * K
			off0 := m.PinOff(id, 0)
			for l := 0; l < kb; l++ {
				arr[base+l] = arr[f0+l] + off0
			}
			for k, f := range nd.Fanin[1:] {
				fb := int(f) * K
				off := m.PinOff(id, k+1)
				for l := 0; l < kb; l++ {
					if a := arr[fb+l] + off; a > arr[base+l] {
						arr[base+l] = a
					}
				}
			}
			for l := 0; l < kb; l++ {
				arr[base+l] += vals[base+l]
			}
		}
		// Reduce phase, sample order: per-lane output max, then the
		// scalar Welford recurrence over the block's delays.
		o0 := int(g.C.Outputs[0]) * K
		for l := 0; l < kb; l++ {
			tmax := arr[o0+l]
			for _, o := range g.C.Outputs[1:] {
				if a := arr[int(o)*K+l]; a > tmax {
					tmax = a
				}
			}
			d := tmax - sm.mean
			sm.mean += d / float64(s0+l+1)
			sm.m2 += d * (tmax - sm.mean)
			if opt.KeepSamples {
				sm.keep = append(sm.keep, tmax)
			}
		}
	}
}
