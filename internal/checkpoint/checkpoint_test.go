package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	N int       `json:"n"`
	X []float64 `json:"x"`
}

func TestRoundTripExactFloats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	// Values chosen to stress shortest-round-trip encoding.
	in := payload{N: 3, X: []float64{0.1, 1.0 / 3.0, math.Nextafter(1, 2), 4.647929556139247}}
	if err := Save(path, "test.kind", &in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test.kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || len(out.X) != len(in.X) {
		t.Fatalf("shape mismatch: %+v vs %+v", out, in)
	}
	for i := range in.X {
		if out.X[i] != in.X[i] {
			t.Fatalf("X[%d] = %b, want %b (not bit-identical)", i, out.X[i], in.X[i])
		}
	}
}

func TestKindMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := Save(path, "nlp.alm", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := Load(path, "other.kind", &out)
	if !errors.Is(err, ErrKind) {
		t.Fatalf("err = %v, want ErrKind", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version":999,"kind":"test.kind","data":{}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := Load(path, "test.kind", &out)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestAtomicOverwriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	for i := 0; i < 3; i++ {
		if err := Save(path, "test.kind", &payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 2 {
		t.Fatalf("directory holds %d entries, want the checkpoint and its .bak", len(entries))
	}
	var out payload
	if err := Load(path, "test.kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Fatalf("latest write lost: N = %d, want 2", out.N)
	}
	// The backup always lags the primary by exactly one good envelope.
	if err := loadFile(BackupPath(path), "test.kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 1 {
		t.Fatalf("backup holds N = %d, want the previous write 1", out.N)
	}
}

// TestBackupFallback covers the durability contract: when the primary
// is truncated or corrupted after a successful Save, Load silently
// falls back to the .bak of the previous good envelope instead of
// failing the resume.
func TestBackupFallback(t *testing.T) {
	corruptions := map[string]string{
		"truncated":   `{"version":1,"kind":"test.ki`,
		"garbage":     "\x00\x00not json at all",
		"empty":       "",
		"bad-version": `{"version":999,"kind":"test.kind","data":{"n":9,"x":null}}`,
		"bad-payload": `{"version":1,"kind":"test.kind","data":{"n":"not a number"}}`,
	}
	for name, body := range corruptions {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.json")
			if err := Save(path, "test.kind", &payload{N: 1}); err != nil {
				t.Fatal(err)
			}
			if err := Save(path, "test.kind", &payload{N: 2}); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
				t.Fatal(err)
			}
			var out payload
			if err := Load(path, "test.kind", &out); err != nil {
				t.Fatalf("Load did not fall back to the backup: %v", err)
			}
			if out.N != 1 {
				t.Fatalf("fallback N = %d, want the previous good envelope 1", out.N)
			}
		})
	}
}

// TestNoFallbackWithoutBackup pins that a corrupt primary with no .bak
// still fails with the primary's error.
func TestNoFallbackWithoutBackup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test.kind", &out); err == nil {
		t.Fatal("Load accepted a corrupt primary with no backup")
	}
}

// TestKindMismatchNeverFallsBack pins that resuming the wrong
// subsystem's file is reported even when a backup exists: the backup
// holds the same kind, and silently loading it would mask the caller's
// bug.
func TestKindMismatchNeverFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := Save(path, "nlp.alm", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "nlp.alm", &payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "other.kind", &out); !errors.Is(err, ErrKind) {
		t.Fatalf("err = %v, want ErrKind", err)
	}
}

// TestMissingPrimaryUsesBackup covers the crash window between the
// backup link and the rename: the primary is gone but the .bak is the
// previous good envelope.
func TestMissingPrimaryUsesBackup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := Save(path, "test.kind", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "test.kind", &payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test.kind", &out); err != nil {
		t.Fatalf("Load did not fall back to the backup: %v", err)
	}
	if out.N != 1 {
		t.Fatalf("fallback N = %d, want 1", out.N)
	}
}

func TestLoadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test.kind", &out); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if err := Load(filepath.Join(t.TempDir(), "absent.json"), "test.kind", &out); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file err = %v, want fs.ErrNotExist", err)
	}
}
