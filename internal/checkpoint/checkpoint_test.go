package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	N int       `json:"n"`
	X []float64 `json:"x"`
}

func TestRoundTripExactFloats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	// Values chosen to stress shortest-round-trip encoding.
	in := payload{N: 3, X: []float64{0.1, 1.0 / 3.0, math.Nextafter(1, 2), 4.647929556139247}}
	if err := Save(path, "test.kind", &in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test.kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || len(out.X) != len(in.X) {
		t.Fatalf("shape mismatch: %+v vs %+v", out, in)
	}
	for i := range in.X {
		if out.X[i] != in.X[i] {
			t.Fatalf("X[%d] = %b, want %b (not bit-identical)", i, out.X[i], in.X[i])
		}
	}
}

func TestKindMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := Save(path, "nlp.alm", &payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := Load(path, "other.kind", &out)
	if !errors.Is(err, ErrKind) {
		t.Fatalf("err = %v, want ErrKind", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version":999,"kind":"test.kind","data":{}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := Load(path, "test.kind", &out)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestAtomicOverwriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	for i := 0; i < 3; i++ {
		if err := Save(path, "test.kind", &payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the checkpoint", len(entries))
	}
	var out payload
	if err := Load(path, "test.kind", &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Fatalf("latest write lost: N = %d, want 2", out.N)
	}
}

func TestLoadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test.kind", &out); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if err := Load(filepath.Join(t.TempDir(), "absent.json"), "test.kind", &out); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file err = %v, want fs.ErrNotExist", err)
	}
}
