// Package checkpoint is a small versioned-JSON persistence codec for
// resumable solver state. A checkpoint file is a single JSON envelope
//
//	{"version": 1, "kind": "nlp.alm", "data": {...}}
//
// whose data payload is owned by the writing package. The envelope
// carries the two facts a resuming process must verify before trusting
// a file written by an arbitrary earlier run: the schema version and
// the producing subsystem. Writes are atomic (temp file in the target
// directory, then rename), so a run killed mid-write never corrupts an
// existing checkpoint.
//
// JSON is the serialization deliberately: encoding/json emits float64
// values in shortest round-trip form and parses them back exactly, so
// a resumed solve sees bit-identical state — the property the
// resume-equals-uninterrupted tests pin.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current envelope schema version. Bump it only when
// the envelope itself changes shape; payload evolution is the owning
// package's concern.
const Version = 1

// Sentinel errors, matchable with errors.Is after the %w wrapping
// below.
var (
	// ErrVersion reports an envelope written by an incompatible schema
	// version.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrKind reports an envelope written by a different subsystem than
	// the one resuming.
	ErrKind = errors.New("checkpoint: kind mismatch")
)

// envelope is the on-disk frame around a payload.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Data    json.RawMessage `json:"data"`
}

// Save atomically writes payload under the given kind to path: the
// envelope is marshalled to a temporary file in path's directory and
// renamed into place, so readers never observe a torn write.
func Save(path, kind string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %s payload: %w", kind, err)
	}
	raw, err := json.Marshal(envelope{Version: Version, Kind: kind, Data: data})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads the envelope at path, validates its version and kind, and
// unmarshals the payload into payload.
func Load(path, kind string, payload any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if env.Version != Version {
		return fmt.Errorf("%w: file %s has version %d, this build reads %d",
			ErrVersion, path, env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("%w: file %s holds %q, want %q", ErrKind, path, env.Kind, kind)
	}
	if err := json.Unmarshal(env.Data, payload); err != nil {
		return fmt.Errorf("checkpoint: %s payload: %w", path, err)
	}
	return nil
}
