// Package checkpoint is a small versioned-JSON persistence codec for
// resumable solver state. A checkpoint file is a single JSON envelope
//
//	{"version": 1, "kind": "nlp.alm", "data": {...}}
//
// whose data payload is owned by the writing package. The envelope
// carries the two facts a resuming process must verify before trusting
// a file written by an arbitrary earlier run: the schema version and
// the producing subsystem. Writes are atomic and durable: the payload
// goes to a temp file in the target directory, is fsynced, and is then
// renamed into place, so a run killed mid-write never corrupts an
// existing checkpoint and a machine crash after Save returns cannot
// lose the write. Each Save also preserves the previous good envelope
// as path+".bak", and Load falls back to it when the primary fails
// validation (truncated or corrupt JSON, or an incompatible envelope
// version) — a kill between the backup link and the rename, or a torn
// sector in the primary, still leaves one loadable boundary snapshot.
//
// JSON is the serialization deliberately: encoding/json emits float64
// values in shortest round-trip form and parses them back exactly, so
// a resumed solve sees bit-identical state — the property the
// resume-equals-uninterrupted tests pin.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current envelope schema version. Bump it only when
// the envelope itself changes shape; payload evolution is the owning
// package's concern.
const Version = 1

// Sentinel errors, matchable with errors.Is after the %w wrapping
// below.
var (
	// ErrVersion reports an envelope written by an incompatible schema
	// version.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrKind reports an envelope written by a different subsystem than
	// the one resuming.
	ErrKind = errors.New("checkpoint: kind mismatch")
)

// envelope is the on-disk frame around a payload.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Data    json.RawMessage `json:"data"`
}

// BackupPath returns the path of the previous-good-envelope backup
// Save keeps alongside a checkpoint file.
func BackupPath(path string) string { return path + ".bak" }

// Save atomically and durably writes payload under the given kind to
// path: the envelope is marshalled to a temporary file in path's
// directory, fsynced, and renamed into place, so readers never observe
// a torn write and the data survives a machine crash after Save
// returns. An existing file at path is preserved as BackupPath(path)
// before the rename, giving Load a fallback when the primary is later
// found truncated or corrupt.
func Save(path, kind string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %s payload: %w", kind, err)
	}
	raw, err := json.Marshal(envelope{Version: Version, Kind: kind, Data: data})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	// The temp file must be on disk before the rename publishes it: a
	// rename is metadata-only, and a crash right after it would
	// otherwise reveal an empty or partial "complete" checkpoint.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	backup(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	syncDir(dir)
	return nil
}

// backup hard-links the current file at path to BackupPath(path),
// falling back to a copy on filesystems without hard links. Best
// effort: a missing primary (first Save) or a failed link only means
// there is no fallback, never a failed Save.
func backup(path string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	bak := BackupPath(path)
	os.Remove(bak)
	if err := os.Link(path, bak); err == nil {
		return
	}
	if data, err := os.ReadFile(path); err == nil {
		os.WriteFile(bak, data, 0o644)
	}
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load reads the envelope at path, validates its version and kind, and
// unmarshals the payload into payload. A primary that fails validation
// — unreadable, truncated or corrupt JSON, or an incompatible envelope
// version — falls back to the BackupPath(path) envelope kept by Save,
// so a crash that tears the newest checkpoint costs one boundary
// snapshot, not the resume. A kind mismatch never falls back: it means
// the caller is resuming the wrong subsystem's file, and the backup
// would hold the same kind.
func Load(path, kind string, payload any) error {
	err := loadFile(path, kind, payload)
	if err == nil || errors.Is(err, ErrKind) {
		return err
	}
	if bakErr := loadFile(BackupPath(path), kind, payload); bakErr == nil {
		return nil
	}
	return err
}

// loadFile reads and validates one envelope file.
func loadFile(path, kind string, payload any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if env.Version != Version {
		return fmt.Errorf("%w: file %s has version %d, this build reads %d",
			ErrVersion, path, env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("%w: file %s holds %q, want %q", ErrKind, path, env.Kind, kind)
	}
	if err := json.Unmarshal(env.Data, payload); err != nil {
		return fmt.Errorf("checkpoint: %s payload: %w", path, err)
	}
	return nil
}
