package simplex

import (
	"math"
	"testing"
)

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSolveBasic(t *testing.T) {
	// min -x1 - 2x2 s.t. x1 + x2 + s1 = 4, x1 + 3x2 + s2 = 6, x >= 0.
	// Optimum at x1 = 3, x2 = 1, objective -5.
	c := []float64{-1, -2, 0, 0}
	a := [][]float64{
		{1, 1, 1, 0},
		{1, 3, 0, 1},
	}
	b := []float64{4, 6}
	r, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if !close(r.X[0], 3, 1e-9) || !close(r.X[1], 1, 1e-9) {
		t.Errorf("x = %v", r.X)
	}
	if !close(r.Objective, -5, 1e-9) {
		t.Errorf("objective = %v", r.Objective)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x1 - x2 = -3 with x >= 0, minimize x1: x1 = 0, x2 = 3.
	c := []float64{1, 0}
	a := [][]float64{{-1, -1}}
	b := []float64{-3}
	r, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !close(r.X[0], 0, 1e-9) || !close(r.X[1], 3, 1e-9) {
		t.Errorf("r = %+v", r)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x1 = 1 and x1 = 2 simultaneously.
	c := []float64{1}
	a := [][]float64{{1}, {1}}
	b := []float64{1, 2}
	r, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Errorf("status = %v", r.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x1 s.t. x1 - x2 = 0: both can grow forever.
	c := []float64{-1, 0}
	a := [][]float64{{1, -1}}
	b := []float64{0}
	r, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Errorf("status = %v", r.Status)
	}
}

func TestSolveNoConstraints(t *testing.T) {
	r, err := Solve([]float64{1, 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.X[0] != 0 || r.X[1] != 0 {
		t.Errorf("r = %+v", r)
	}
	r, err = Solve([]float64{-1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Errorf("status = %v", r.Status)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched b accepted")
	}
	if _, err := Solve([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("mismatched row accepted")
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A degenerate vertex (redundant constraint); Bland's rule must
	// still terminate at the optimum.
	c := []float64{-1, -1, 0, 0, 0}
	a := [][]float64{
		{1, 0, 1, 0, 0},
		{0, 1, 0, 1, 0},
		{1, 1, 0, 0, 1},
	}
	b := []float64{1, 1, 2} // third row redundant at the optimum
	r, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !close(r.Objective, -2, 1e-9) {
		t.Errorf("r = %+v", r)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero.
	c := []float64{1, 1}
	a := [][]float64{
		{1, 1},
		{1, 1},
		{2, 2},
	}
	b := []float64{2, 2, 4}
	r, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !close(r.Objective, 2, 1e-9) {
		t.Errorf("r = %+v", r)
	}
}

func TestLPBuilderBounds(t *testing.T) {
	// min x + y with 1 <= x <= 3, y free, x + y >= 5.
	lp := NewLP()
	x := lp.AddVar("x", 1, 1, 3)
	y := lp.AddVar("y", 1, math.Inf(-1), math.Inf(1))
	lp.Constrain(map[int]float64{x: 1, y: 1}, ">=", 5)
	res, sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if !close(sol[x]+sol[y], 5, 1e-8) {
		t.Errorf("constraint violated: %v", sol)
	}
	if !close(res.Objective, 5, 1e-8) {
		t.Errorf("objective = %v", res.Objective)
	}
	if sol[x] < 1-1e-9 || sol[x] > 3+1e-9 {
		t.Errorf("bound violated: x = %v", sol[x])
	}
}

func TestLPBuilderUpperOnly(t *testing.T) {
	// max x (min -x) with x <= 7: x = 7.
	lp := NewLP()
	x := lp.AddVar("x", -1, math.Inf(-1), 7)
	// Need at least one row to exercise the row path.
	lp.Constrain(map[int]float64{x: 1}, "<=", 100)
	res, sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !close(sol[x], 7, 1e-8) {
		t.Errorf("res = %+v sol = %v", res, sol)
	}
}

func TestLPBuilderEquality(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x, y >= 0: x = 10, y = 0.
	lp := NewLP()
	x := lp.AddVar("x", 2, 0, math.Inf(1))
	y := lp.AddVar("y", 3, 0, math.Inf(1))
	lp.Constrain(map[int]float64{x: 1, y: 1}, "=", 10)
	res, sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol[x], 10, 1e-8) || !close(sol[y], 0, 1e-8) {
		t.Errorf("sol = %v", sol)
	}
	if !close(res.Objective, 20, 1e-8) {
		t.Errorf("objective = %v", res.Objective)
	}
}

func TestLPBuilderInfeasible(t *testing.T) {
	lp := NewLP()
	x := lp.AddVar("x", 1, 0, 1)
	lp.Constrain(map[int]float64{x: 1}, ">=", 5)
	res, _, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v", res.Status)
	}
}

func TestLPBuilderErrors(t *testing.T) {
	lp := NewLP()
	lp.AddVar("x", 1, 3, 1) // crossed bounds
	if _, _, err := lp.Solve(); err == nil {
		t.Error("crossed bounds accepted")
	}
	lp = NewLP()
	x := lp.AddVar("x", 1, 0, 1)
	lp.Constrain(map[int]float64{x: 1}, "!!", 1)
	if _, _, err := lp.Solve(); err == nil {
		t.Error("bad operator accepted")
	}
	lp = NewLP()
	lp.Constrain(map[int]float64{5: 1}, "<=", 1)
	if _, _, err := lp.Solve(); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestLPBuilderNames(t *testing.T) {
	lp := NewLP()
	x := lp.AddVar("speed", 1, 0, 1)
	if lp.Name(x) != "speed" || lp.NumVars() != 1 {
		t.Error("metadata wrong")
	}
}

func TestLPBuilderShiftedObjective(t *testing.T) {
	// Lower-bound shift must be reflected in the reported objective:
	// min x with 2 <= x <= 5 (and a slack row) -> objective 2.
	lp := NewLP()
	x := lp.AddVar("x", 1, 2, 5)
	lp.Constrain(map[int]float64{x: 1}, "<=", 10)
	res, sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !close(sol[x], 2, 1e-8) || !close(res.Objective, 2, 1e-8) {
		t.Errorf("sol = %v obj = %v", sol, res.Objective)
	}
}

func TestLPRandomVsBruteForce(t *testing.T) {
	// Tiny 2-variable LPs with random constraints, cross-checked by
	// dense vertex enumeration.
	rng := newLCG(99)
	for trial := 0; trial < 200; trial++ {
		c := []float64{rng.sym(), rng.sym()}
		var rowsA [][3]float64 // a1, a2, rhs of a1 x + a2 y <= rhs
		lp := NewLP()
		x := lp.AddVar("x", c[0], 0, 10)
		y := lp.AddVar("y", c[1], 0, 10)
		for k := 0; k < 3; k++ {
			a1, a2 := rng.sym(), rng.sym()
			rhs := 5 * rng.unit()
			rowsA = append(rowsA, [3]float64{a1, a2, rhs})
			lp.Constrain(map[int]float64{x: a1, y: a2}, "<=", rhs)
		}
		res, sol, err := lp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		bestVal, feasible := bruteForce2D(c, rowsA)
		if !feasible {
			if res.Status == Optimal {
				// Grid may just have missed a thin feasible sliver;
				// verify the simplex point is genuinely feasible.
				for _, r := range rowsA {
					if r[0]*sol[x]+r[1]*sol[y] > r[2]+1e-6 {
						t.Fatalf("trial %d: infeasible optimum %v", trial, sol)
					}
				}
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v but brute force found %v", trial, res.Status, bestVal)
		}
		if res.Objective > bestVal+1e-4 {
			t.Errorf("trial %d: simplex %v worse than brute force %v", trial, res.Objective, bestVal)
		}
	}
}

// bruteForce2D grids [0,10]^2 and returns the best feasible objective.
func bruteForce2D(c []float64, rows [][3]float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	const n = 200
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			x := 10 * float64(i) / n
			y := 10 * float64(j) / n
			ok := true
			for _, r := range rows {
				if r[0]*x+r[1]*y > r[2]+1e-9 {
					ok = false
					break
				}
			}
			if ok {
				found = true
				if v := c[0]*x + c[1]*y; v < best {
					best = v
				}
			}
		}
	}
	return best, found
}

// lcg is a tiny deterministic generator to keep the test hermetic.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

func (l *lcg) unit() float64 { return float64(l.next()>>11) / (1 << 53) }
func (l *lcg) sym() float64  { return 2*l.unit() - 1 }
