// Package simplex implements a dense two-phase primal simplex solver
// for linear programs, with Bland's anti-cycling rule.
//
// It backs the deterministic LP-based sizing baseline of the paper's
// reference [3] (Berkelaar & Jess, "Gate Sizing in MOS Digital
// Circuits with Linear Programming", EDAC 1990): the comparator the
// statistical method is positioned against. The solver handles the
// standard form
//
//	minimize  c.x   subject to  A x = b,  x >= 0
//
// and a builder (lp.go) converts general bounded/inequality programs
// into it.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the LP outcome.
type Status int

// LP outcomes.
const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the solver output.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Pivots counts simplex pivot operations across both phases.
	Pivots int
}

// ErrIterationLimit is returned when the pivot budget runs out, which
// with Bland's rule indicates an extremely degenerate problem or a
// bug in the caller's formulation.
var ErrIterationLimit = errors.New("simplex: iteration limit exceeded")

const pivotEps = 1e-9

// Solve minimizes c.x subject to A x = b, x >= 0 using the two-phase
// tableau method. Rows of A must all have len(c) entries; b entries
// may be negative (rows are flipped internally).
func Solve(c []float64, a [][]float64, b []float64) (*Result, error) {
	m := len(a)
	n := len(c)
	if len(b) != m {
		return nil, fmt.Errorf("simplex: %d rows but %d right-hand sides", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("simplex: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if m == 0 {
		// No constraints: optimum is 0 if c >= 0, else unbounded.
		for _, ci := range c {
			if ci < 0 {
				return &Result{Status: Unbounded}, nil
			}
		}
		return &Result{Status: Optimal, X: make([]float64, n)}, nil
	}

	// Phase-1 tableau: columns = n structural + m artificial + RHS.
	width := n + m + 1
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		sign := 1.0
		if b[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * a[i][j]
		}
		t[i][n+i] = 1
		t[i][width-1] = sign * b[i]
		basis[i] = n + i
	}

	// Phase-1 objective: sum of artificials. The reduced cost row is
	// the cost row (1 on artificial columns, 0 elsewhere) minus the
	// sum of the basic (artificial) rows, which leaves exactly 0 on
	// the artificial columns and -sum(column) elsewhere.
	obj := make([]float64, width)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			obj[j] -= t[i][j]
		}
	}
	for i := 0; i < m; i++ {
		obj[width-1] -= t[i][width-1]
	}

	res := &Result{}
	maxPivots := 50 * (m + n + 10)
	if err := iterate(t, obj, basis, n+m, &res.Pivots, maxPivots); err != nil {
		return nil, err
	}
	if phase1 := -obj[width-1]; phase1 > 1e-7 {
		res.Status = Infeasible
		return res, nil
	}
	// Drive any artificial variables out of the basis (degenerate
	// feasible rows); rows where no structural pivot exists are
	// redundant and can stay (their artificial is zero).
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		for j := 0; j < n; j++ {
			if math.Abs(t[i][j]) > pivotEps {
				pivot(t, basis, i, j)
				res.Pivots++
				break
			}
		}
	}

	// Phase-2 objective over structural columns, reduced against the
	// current basis.
	obj = make([]float64, width)
	copy(obj, c)
	for j := n; j < width-1; j++ {
		obj[j] = 0
	}
	for i, bi := range basis {
		if bi < n && math.Abs(c[bi]) > 0 {
			coef := c[bi]
			for j := 0; j < width; j++ {
				obj[j] -= coef * t[i][j]
			}
		}
	}
	if err := iterate(t, obj, basis, n, &res.Pivots, maxPivots); err != nil {
		return nil, err
	}
	// iterate also stops on an unbounded direction; detect that case
	// by scanning for a negative reduced cost whose column has no
	// positive entry.
	for j := 0; j < n; j++ {
		if obj[j] < -pivotEps {
			pos := false
			for i := 0; i < m; i++ {
				if t[i][j] > pivotEps {
					pos = true
					break
				}
			}
			if !pos {
				res.Status = Unbounded
				return res, nil
			}
		}
	}

	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i][width-1]
		}
	}
	var objective float64
	for j := 0; j < n; j++ {
		objective += c[j] * x[j]
	}
	res.Status = Optimal
	res.X = x
	res.Objective = objective
	return res, nil
}

// iterate runs simplex pivots on the tableau until no reduced cost
// among the first nCols columns is negative. Bland's rule (lowest
// eligible index enters, lowest-index tie-break on leaving) guarantees
// termination. Unbounded directions simply stop the iteration; the
// caller re-detects them.
func iterate(t [][]float64, obj []float64, basis []int, nCols int, pivots *int, maxPivots int) error {
	m := len(t)
	width := len(t[0])
	for {
		enter := -1
		for j := 0; j < nCols; j++ {
			if obj[j] < -pivotEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > pivotEps {
				ratio := t[i][width-1] / t[i][enter]
				if ratio < best-pivotEps ||
					(ratio < best+pivotEps && leave >= 0 && basis[i] < basis[leave]) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return nil // unbounded direction; caller re-detects
		}
		pivot(t, basis, leave, enter)
		// Update the objective row too.
		coef := obj[enter]
		if coef != 0 {
			for j := 0; j < width; j++ {
				obj[j] -= coef * t[leave][j]
			}
		}
		*pivots++
		if *pivots > maxPivots {
			return ErrIterationLimit
		}
	}
}

// pivot performs a tableau pivot on (row, col).
func pivot(t [][]float64, basis []int, row, col int) {
	m := len(t)
	width := len(t[0])
	p := t[row][col]
	for j := 0; j < width; j++ {
		t[row][j] /= p
	}
	t[row][col] = 1 // kill rounding noise on the pivot itself
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			t[i][j] -= f * t[row][j]
		}
		t[i][col] = 0
	}
	basis[row] = col
}
