package simplex

import (
	"fmt"
	"math"
)

// LP is a general-form linear program builder:
//
//	minimize c.x  subject to  row constraints (<=, >=, =)
//	and per-variable bounds [lo, hi] (use +-Inf for unbounded).
//
// Build converts it to standard form (shifted, split and slacked) and
// Solve returns the solution mapped back to the original variables.
type LP struct {
	nVars  int
	costs  []float64
	lower  []float64
	upper  []float64
	names  []string
	rows   []lpRow
	status error
}

type lpRow struct {
	coeffs map[int]float64
	op     byte // '<', '>', '='
	rhs    float64
}

// NewLP returns an empty program.
func NewLP() *LP { return &LP{} }

// AddVar adds a variable with the given objective cost and bounds,
// returning its index. Bounds may be infinite.
func (lp *LP) AddVar(name string, cost, lo, hi float64) int {
	if lo > hi {
		lp.status = fmt.Errorf("simplex: variable %q has crossed bounds [%v, %v]", name, lo, hi)
	}
	lp.nVars++
	lp.costs = append(lp.costs, cost)
	lp.lower = append(lp.lower, lo)
	lp.upper = append(lp.upper, hi)
	lp.names = append(lp.names, name)
	return lp.nVars - 1
}

// Constrain adds a row: sum coeffs[v]*x[v] (op) rhs with op one of
// "<=", ">=", "=".
func (lp *LP) Constrain(coeffs map[int]float64, op string, rhs float64) {
	var b byte
	switch op {
	case "<=":
		b = '<'
	case ">=":
		b = '>'
	case "=":
		b = '='
	default:
		lp.status = fmt.Errorf("simplex: unknown operator %q", op)
		return
	}
	cp := make(map[int]float64, len(coeffs))
	for v, c := range coeffs {
		if v < 0 || v >= lp.nVars {
			lp.status = fmt.Errorf("simplex: constraint references variable %d of %d", v, lp.nVars)
			return
		}
		cp[v] = c
	}
	lp.rows = append(lp.rows, lpRow{coeffs: cp, op: b, rhs: rhs})
}

// Solve converts to standard form and runs the simplex method.
// Variable transformation: x = lo + u (finite lower bound),
// x = hi - u (only upper bound finite), or x = u+ - u- (free);
// finite upper bounds on shifted variables become explicit rows.
func (lp *LP) Solve() (*Result, []float64, error) {
	if lp.status != nil {
		return nil, nil, lp.status
	}
	// Map each variable to standard-form columns.
	type varMap struct {
		col   int // primary column
		neg   int // second column for free variables, else -1
		shift float64
		sign  float64 // +1 or -1 (upper-bounded-only variables)
		ub    float64 // remaining upper bound on the primary column (Inf if none)
	}
	maps := make([]varMap, lp.nVars)
	nCols := 0
	addCol := func() int { nCols++; return nCols - 1 }
	for i := 0; i < lp.nVars; i++ {
		lo, hi := lp.lower[i], lp.upper[i]
		switch {
		case !math.IsInf(lo, -1):
			maps[i] = varMap{col: addCol(), neg: -1, shift: lo, sign: 1, ub: hi - lo}
		case !math.IsInf(hi, 1):
			// x = hi - u, u >= 0.
			maps[i] = varMap{col: addCol(), neg: -1, shift: hi, sign: -1, ub: math.Inf(1)}
		default:
			maps[i] = varMap{col: addCol(), neg: addCol(), shift: 0, sign: 1, ub: math.Inf(1)}
		}
	}

	// Count rows: originals + upper-bound rows; slack columns for
	// inequalities.
	type stdRow struct {
		coeffs map[int]float64
		rhs    float64
		op     byte
	}
	var rows []stdRow
	for _, r := range lp.rows {
		sr := stdRow{coeffs: map[int]float64{}, rhs: r.rhs, op: r.op}
		for v, c := range r.coeffs {
			mp := maps[v]
			sr.rhs -= c * mp.shift
			sr.coeffs[mp.col] += c * mp.sign
			if mp.neg >= 0 {
				sr.coeffs[mp.neg] -= c
			}
		}
		rows = append(rows, sr)
	}
	for i := 0; i < lp.nVars; i++ {
		if !math.IsInf(maps[i].ub, 1) {
			rows = append(rows, stdRow{
				coeffs: map[int]float64{maps[i].col: 1},
				rhs:    maps[i].ub,
				op:     '<',
			})
		}
	}
	// Slack columns.
	for ri := range rows {
		switch rows[ri].op {
		case '<':
			rows[ri].coeffs[addCol()] = 1
		case '>':
			rows[ri].coeffs[addCol()] = -1
		}
	}

	// Assemble dense standard form.
	c := make([]float64, nCols)
	var constShift float64
	for i := 0; i < lp.nVars; i++ {
		mp := maps[i]
		constShift += lp.costs[i] * mp.shift
		c[mp.col] += lp.costs[i] * mp.sign
		if mp.neg >= 0 {
			c[mp.neg] -= lp.costs[i]
		}
	}
	a := make([][]float64, len(rows))
	b := make([]float64, len(rows))
	for ri, r := range rows {
		a[ri] = make([]float64, nCols)
		for col, v := range r.coeffs {
			a[ri][col] = v
		}
		b[ri] = r.rhs
	}

	res, err := Solve(c, a, b)
	if err != nil {
		return nil, nil, err
	}
	if res.Status != Optimal {
		return res, nil, nil
	}
	x := make([]float64, lp.nVars)
	for i := 0; i < lp.nVars; i++ {
		mp := maps[i]
		v := mp.shift + mp.sign*res.X[mp.col]
		if mp.neg >= 0 {
			v -= res.X[mp.neg]
		}
		x[i] = v
	}
	res.Objective += constShift
	return res, x, nil
}

// Name returns the name of variable i (for diagnostics).
func (lp *LP) Name(i int) string { return lp.names[i] }

// NumVars returns the number of variables added so far.
func (lp *LP) NumVars() int { return lp.nVars }
