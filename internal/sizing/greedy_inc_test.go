package sizing

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/ssta"
)

// greedyDeadline picks a deadline halfway between the unit-size and
// all-at-limit quantiles, so greedy has real work but can finish.
func greedyDeadline(t *testing.T, m *delay.Model, k float64) float64 {
	t.Helper()
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		fast[id] = m.Limit
	}
	lim := ssta.Analyze(m, fast, false).Tmax
	return 0.5 * (unit.Mu + k*unit.Sigma() + lim.Mu + k*lim.Sigma())
}

// TestGreedyIncrementalMatchesFullSweeps asserts the incremental
// engine path (the default) takes the exact same trajectory as the
// legacy fresh-sweep-per-step path — same sizes bit for bit, same step
// count — for serial and parallel workers.
func TestGreedyIncrementalMatchesFullSweeps(t *testing.T) {
	models := map[string]*delay.Model{
		"tree":   treeModel(t),
		"gen300": genModel(t, 300),
	}
	for name, m := range models {
		d := greedyDeadline(t, m, 3)
		for _, workers := range []int{1, 4} {
			ref, err := SizeGreedy(m, GreedyOptions{
				K: 3, Deadline: d, Workers: workers, FullSweeps: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := SizeGreedy(m, GreedyOptions{
				K: 3, Deadline: d, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got.Steps != ref.Steps || got.Met != ref.Met ||
				got.MuTmax != ref.MuTmax || got.SigmaTmax != ref.SigmaTmax {
				t.Fatalf("%s/j%d: header differs: inc steps=%d met=%v mu=%v sigma=%v, full steps=%d met=%v mu=%v sigma=%v",
					name, workers, got.Steps, got.Met, got.MuTmax, got.SigmaTmax,
					ref.Steps, ref.Met, ref.MuTmax, ref.SigmaTmax)
			}
			for id := range ref.S {
				if got.S[id] != ref.S[id] {
					t.Fatalf("%s/j%d: S[%d] = %v != full-sweep %v",
						name, workers, id, got.S[id], ref.S[id])
				}
			}
		}
	}
}

// TestGreedyWeightedImprovesWeightedCost asserts that ranking by
// grad/w steers bumps away from expensive gates: at the same deadline,
// the weighted run's weighted area must not exceed the unweighted
// run's.
func TestGreedyWeightedImprovesWeightedCost(t *testing.T) {
	m := genModel(t, 300)
	w, err := power.Weights(m)
	if err != nil {
		t.Fatal(err)
	}
	d := greedyDeadline(t, m, 3)
	plain, err := SizeGreedy(m, GreedyOptions{K: 3, Deadline: d})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := SizeGreedy(m, GreedyOptions{K: 3, Deadline: d, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Met || !weighted.Met {
		t.Fatalf("deadline %v not met: plain %v weighted %v", d, plain.Met, weighted.Met)
	}
	cost := func(S []float64) float64 {
		var c float64
		for _, id := range m.G.C.GateIDs() {
			c += w[id] * S[id]
		}
		return c
	}
	cp, cw := cost(plain.S), cost(weighted.S)
	if cw > cp+1e-9 {
		t.Fatalf("weighted greedy cost %v exceeds unweighted %v", cw, cp)
	}
	t.Logf("weighted cost %.4f vs unweighted %.4f (%.1f%% saved)", cw, cp, 100*(1-cw/cp))
}

// TestGreedyFromSpecThreadsWeights asserts the spec-to-greedy bridge
// (the NumericalFailure fallback path) carries the deadline, workers
// and objective weights, so a weighted spec degrades to weighted
// greedy — and rejects specs without a mu+Ksigma deadline.
func TestGreedyFromSpecThreadsWeights(t *testing.T) {
	m := genModel(t, 300)
	w, err := power.Weights(m)
	if err != nil {
		t.Fatal(err)
	}
	d := greedyDeadline(t, m, 3)
	spec := Spec{
		Objective:   MinWeightedArea(),
		Weights:     w,
		Constraints: []Constraint{MuEQ(d - 1), DelayLE(3, d)},
		Workers:     1,
	}
	opt, ok := GreedyFromSpec(spec)
	if !ok {
		t.Fatal("spec with a mu+Ksigma deadline rejected")
	}
	if opt.K != 3 || opt.Deadline != d || opt.Workers != 1 {
		t.Fatalf("options not threaded: %+v", opt)
	}
	for i := range w {
		if opt.Weights[i] != w[i] {
			t.Fatalf("weights not threaded at %d", i)
		}
	}
	fromSpec, err := SizeGreedy(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SizeGreedy(m, GreedyOptions{K: 3, Deadline: d, Workers: 1, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	for id := range direct.S {
		if fromSpec.S[id] != direct.S[id] {
			t.Fatalf("spec-derived run diverged at S[%d]: %v != %v",
				id, fromSpec.S[id], direct.S[id])
		}
	}
	if _, ok := GreedyFromSpec(Spec{Constraints: []Constraint{MuEQ(d)}}); ok {
		t.Fatal("spec without a mu+Ksigma deadline accepted")
	}
}

// TestGreedyStepAllocFree replicates one greedy sensitivity step — the
// incremental gradient, the rank scan, the bump, SetSize — and asserts
// the warm steady state allocates nothing per step.
func TestGreedyStepAllocFree(t *testing.T) {
	m := genModel(t, 300)
	gates := m.G.C.GateIDs()
	inc := ssta.NewInc(m, m.UnitSizes(), ssta.IncOptions{Workers: 1})
	doStep := func() {
		_, grad := inc.GradMuPlusKSigma(3)
		S := inc.Sizes()
		best := -1
		var bestScore float64
		for _, id := range gates {
			if S[id] >= m.Limit-1e-12 {
				continue
			}
			if grad[id] < bestScore {
				bestScore = grad[id]
				best = int(id)
			}
		}
		if best < 0 {
			return
		}
		s := S[best] * 1.05
		if s > m.Limit {
			s = m.Limit
		}
		inc.SetSize(netlist.NodeID(best), s)
	}
	// Warm well past the transient: the per-level dirty buckets and the
	// undo-free slabs stop growing once the engine has seen the widest
	// cones the trajectory visits.
	for i := 0; i < 400; i++ {
		doStep()
	}
	allocs := testing.AllocsPerRun(100, doStep)
	if allocs != 0 {
		t.Fatalf("greedy step allocates %.2f per step in steady state, want 0", allocs)
	}
}
