package sizing

import (
	"context"
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/ssta"
	"repro/internal/telemetry"
)

// reducedEval adapts the SSTA forward/adjoint sweeps to nlp.Element
// callbacks. The problem variables are the speed factors of the gates
// in dense order. Each element owns a private full-length S scratch
// buffer (passed explicitly to the helpers below), which makes every
// Eval/Grad a pure function of its local point: the NLP engine may
// evaluate distinct elements concurrently when nlp.Options.Workers
// permits.
type reducedEval struct {
	m       *delay.Model
	gates   []netlist.NodeID
	workers int
	// rec aggregates sweep spans ("ssta.forward"/"ssta.adjoint"); the
	// metrics sinks are concurrency-safe, so recording stays correct
	// when the NLP engine evaluates distinct elements in parallel.
	rec telemetry.Recorder
}

func (re *reducedEval) setS(S, x []float64) {
	for i, id := range re.gates {
		S[id] = x[i]
	}
}

// moments runs the forward sweep at the dense point x using the
// caller-owned S scratch.
func (re *reducedEval) moments(S, x []float64) (mu, variance float64) {
	re.setS(S, x)
	r := ssta.AnalyzeWorkersRec(re.m, S, false, re.workers, re.rec)
	return r.Tmax.Mu, r.Tmax.Var
}

// gradMoments runs a taped sweep and the adjoint with the given seed,
// scattering the result into the dense gradient g.
func (re *reducedEval) gradMoments(S, x, g []float64, seedMu, seedVar float64) {
	re.setS(S, x)
	r := ssta.AnalyzeWorkersRec(re.m, S, true, re.workers, re.rec)
	full := r.BackwardWorkersRec(re.m, S, seedMu, seedVar, re.workers, re.rec)
	for i, id := range re.gates {
		g[i] = full[id]
	}
}

// sigmaFloor keeps 1/sigma finite when the delay variance vanishes
// (possible only in the deterministic limit).
const sigmaFloor = 1e-9

// muKSigmaElement returns an element computing
// muTmax + k*sigmaTmax + shift over all speed factors. The captured S
// buffer is private to the element.
func (re *reducedEval) muKSigmaElement(vars []int, k, shift float64) nlp.Element {
	S := re.m.UnitSizes()
	return nlp.Element{
		Vars: vars,
		Eval: func(x []float64) float64 {
			mu, v := re.moments(S, x)
			if k == 0 {
				return mu + shift
			}
			return mu + k*math.Sqrt(v) + shift
		},
		Grad: func(x []float64, g []float64) {
			if k == 0 {
				re.gradMoments(S, x, g, 1, 0)
				return
			}
			_, v := re.moments(S, x)
			sigma := math.Max(math.Sqrt(v), sigmaFloor)
			re.gradMoments(S, x, g, 1, k/(2*sigma))
		},
	}
}

// sigmaElement returns an element computing sign * sigmaTmax.
func (re *reducedEval) sigmaElement(vars []int, sign float64) nlp.Element {
	S := re.m.UnitSizes()
	return nlp.Element{
		Vars: vars,
		Eval: func(x []float64) float64 {
			_, v := re.moments(S, x)
			return sign * math.Sqrt(v)
		},
		Grad: func(x []float64, g []float64) {
			_, v := re.moments(S, x)
			sigma := math.Max(math.Sqrt(v), sigmaFloor)
			re.gradMoments(S, x, g, 0, sign/(2*sigma))
		},
	}
}

// solveReduced builds and solves the reduced formulation, returning
// the NLP result and the speed factors indexed by NodeID. ctx cancels
// the solve at ALM iteration boundaries; the result then carries the
// best-so-far iterate with a Cancelled or DeadlineExceeded status.
func solveReduced(ctx context.Context, m *delay.Model, spec Spec) (*nlp.Result, []float64, error) {
	gates := m.G.C.GateIDs()
	n := len(gates)
	if n == 0 {
		return nil, nil, fmt.Errorf("sizing: circuit has no gates")
	}
	re := &reducedEval{m: m, gates: gates, workers: spec.Workers, rec: spec.Recorder}

	vars := make([]int, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range vars {
		vars[i] = i
		lower[i] = 1
		upper[i] = m.Limit
	}

	p := &nlp.Problem{N: n, Lower: lower, Upper: upper}
	switch spec.Objective.Kind {
	case ObjMuPlusKSigma:
		p.Objective = []nlp.Element{re.muKSigmaElement(vars, spec.Objective.K, 0)}
	case ObjArea, ObjWeightedArea:
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = 1
		}
		if spec.Objective.Kind == ObjWeightedArea {
			if spec.Weights == nil {
				return nil, nil, fmt.Errorf("sizing: weighted area needs Spec.Weights")
			}
			for i, id := range gates {
				coeffs[i] = spec.Weights[id]
			}
		}
		p.Objective = []nlp.Element{nlp.LinearElement(vars, coeffs, 0)}
	case ObjSigma:
		p.Objective = []nlp.Element{re.sigmaElement(vars, 1)}
	case ObjNegSigma:
		p.Objective = []nlp.Element{re.sigmaElement(vars, -1)}
	default:
		return nil, nil, fmt.Errorf("sizing: unknown objective %v", spec.Objective)
	}

	for _, c := range spec.Constraints {
		switch c.Kind {
		case ConMuPlusKSigmaLE:
			p.IneqCons = append(p.IneqCons, nlp.Constraint{
				Name: c.String(),
				El:   re.muKSigmaElement(vars, c.K, -c.Bound),
			})
		case ConMuEQ:
			p.EqCons = append(p.EqCons, nlp.Constraint{
				Name: c.String(),
				El:   re.muKSigmaElement(vars, 0, -c.Bound),
			})
		default:
			return nil, nil, fmt.Errorf("sizing: unknown constraint %v", c)
		}
	}

	x0 := make([]float64, n)
	for i, id := range gates {
		x0[i] = 1
		if spec.Start != nil {
			x0[i] = spec.Start[id]
		}
	}
	if spec.Start == nil && spec.Objective.Kind == ObjNegSigma {
		perturbStart(x0, m.Limit)
	}
	opt := spec.Solver
	if opt.Method == nlp.NewtonCG {
		return nil, nil, fmt.Errorf("sizing: the reduced formulation has no element Hessians; use LBFGS or the full-space formulation")
	}
	if opt.Workers == 0 {
		opt.Workers = spec.Workers
	}
	if opt.Recorder == nil {
		opt.Recorder = spec.Recorder
	}

	if spec.WrapProblem != nil {
		p = spec.WrapProblem(p)
	}
	res, err := nlp.SolveCtx(ctx, p, x0, opt)
	if err != nil {
		return nil, nil, err
	}
	S := m.UnitSizes()
	for i, id := range gates {
		S[id] = res.X[i]
	}
	return res, S, nil
}
