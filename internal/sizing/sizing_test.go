package sizing

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/ssta"
)

func close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func treeModel(t *testing.T) *delay.Model {
	t.Helper()
	return delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
}

func fig2Model(t *testing.T) *delay.Model {
	t.Helper()
	return delay.MustBind(netlist.MustCompile(netlist.Fig2Example()), delay.Default())
}

func checkBounds(t *testing.T, m *delay.Model, S []float64) {
	t.Helper()
	for _, id := range m.G.C.GateIDs() {
		if S[id] < 1-1e-6 || S[id] > m.Limit+1e-6 {
			t.Errorf("S[%s] = %v outside [1, %v]", m.G.C.Nodes[id].Name, S[id], m.Limit)
		}
	}
}

func TestMinMuReducedTree(t *testing.T) {
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	out, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	checkBounds(t, m, out.S)
	if out.MuTmax >= unit.Mu {
		t.Errorf("min mu did not improve: %v -> %v", unit.Mu, out.MuTmax)
	}
	// With PaperTree parameters the output load dominates, so every
	// gate should hit the upper limit (the paper's Table 2 reports
	// SumS = 21 for min mu on the 7-gate tree with limit 3).
	if !close(out.SumS, 21, 0.02) {
		t.Errorf("SumS = %v, want ~21 (all gates at limit)", out.SumS)
	}
}

func TestMinAreaUnconstrainedIsUnit(t *testing.T) {
	m := treeModel(t)
	out, err := Size(m, Spec{Objective: MinArea()})
	if err != nil {
		t.Fatal(err)
	}
	if !close(out.SumS, 7, 1e-6) {
		t.Errorf("unconstrained min area SumS = %v, want 7", out.SumS)
	}
}

func TestObjectiveOrderingMuKSigma(t *testing.T) {
	// Paper Table 1 pattern: as k grows in min(mu + k sigma), the
	// mean creeps up, sigma comes down, and area (vs min-mu) shrinks.
	m := treeModel(t)
	var mus, sigmas []float64
	for _, k := range []float64{0, 1, 3} {
		out, err := Size(m, Spec{Objective: MinMuPlusKSigma(k)})
		if err != nil {
			t.Fatal(err)
		}
		checkBounds(t, m, out.S)
		mus = append(mus, out.MuTmax)
		sigmas = append(sigmas, out.SigmaTmax)
	}
	if !(mus[0] <= mus[1]+1e-9 && mus[1] <= mus[2]+1e-9) {
		t.Errorf("means not increasing with k: %v", mus)
	}
	if !(sigmas[0] >= sigmas[1]-1e-9 && sigmas[1] >= sigmas[2]-1e-9) {
		t.Errorf("sigmas not decreasing with k: %v", sigmas)
	}
}

func TestAreaUnderDelayConstraint(t *testing.T) {
	m := treeModel(t)
	// Pick a deadline feasible for every k tested: midway between the
	// best and worst achievable mu + 3*sigma (the tightest metric).
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast3, err := Size(m, Spec{Objective: MinMuPlusKSigma(3)})
	if err != nil {
		t.Fatal(err)
	}
	best := fast3.MuTmax + 3*fast3.SigmaTmax
	worst := unit.Mu + 3*unit.Sigma()
	d := 0.5 * (best + worst)

	var areas []float64
	for _, k := range []float64{0, 1, 3} {
		out, err := Size(m, Spec{Objective: MinArea(), Constraints: []Constraint{DelayLE(k, d)}})
		if err != nil {
			t.Fatal(err)
		}
		checkBounds(t, m, out.S)
		slack := d - out.MuTmax - k*out.SigmaTmax
		if slack < -1e-4 {
			t.Errorf("k=%v: constraint violated by %v", k, -slack)
		}
		areas = append(areas, out.SumS)
	}
	// Paper Table 1: guaranteeing more sigmas of margin costs area.
	if !(areas[0] <= areas[1]+1e-6 && areas[1] <= areas[2]+1e-6) {
		t.Errorf("areas not increasing with k: %v", areas)
	}
	// And all cost more than the unconstrained floor of 7.
	if areas[0] < 7-1e-9 {
		t.Errorf("area below floor: %v", areas[0])
	}
}

func TestSigmaRangeAtFixedMu(t *testing.T) {
	// Paper Table 2: at a fixed mean there is a sigma interval, and
	// min-sigma costs more area than min-area.
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (unit.Mu + fast.MuTmax)

	runs := map[string]*Outcome{}
	for name, obj := range map[string]Objective{
		"area":     MinArea(),
		"minsigma": MinSigma(),
		"maxsigma": MaxSigma(),
	} {
		out, err := Size(m, Spec{Objective: obj, Constraints: []Constraint{MuEQ(d)}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !close(out.MuTmax, d, 1e-3) {
			t.Errorf("%s: mu = %v, want %v", name, out.MuTmax, d)
		}
		checkBounds(t, m, out.S)
		runs[name] = out
	}
	if runs["minsigma"].SigmaTmax > runs["area"].SigmaTmax+1e-6 {
		t.Errorf("min-sigma %v above min-area sigma %v",
			runs["minsigma"].SigmaTmax, runs["area"].SigmaTmax)
	}
	if runs["maxsigma"].SigmaTmax < runs["area"].SigmaTmax-1e-6 {
		t.Errorf("max-sigma %v below min-area sigma %v",
			runs["maxsigma"].SigmaTmax, runs["area"].SigmaTmax)
	}
	if runs["maxsigma"].SigmaTmax-runs["minsigma"].SigmaTmax < 1e-4 {
		t.Errorf("sigma interval collapsed: [%v, %v]",
			runs["minsigma"].SigmaTmax, runs["maxsigma"].SigmaTmax)
	}
	if runs["minsigma"].SumS < runs["area"].SumS-1e-6 {
		t.Errorf("min-sigma area %v below min-area %v",
			runs["minsigma"].SumS, runs["area"].SumS)
	}
}

func TestFullSpaceMatchesReducedFig2(t *testing.T) {
	// Both formulations solve the same mathematical problem; their
	// optima must agree. Fig2 is the paper's worked example (eq 18).
	for _, k := range []float64{0, 3} {
		mR := fig2Model(t)
		outR, err := Size(mR, Spec{Objective: MinMuPlusKSigma(k), Formulation: Reduced})
		if err != nil {
			t.Fatal(err)
		}
		mF := fig2Model(t)
		outF, err := Size(mF, Spec{
			Objective:   MinMuPlusKSigma(k),
			Formulation: FullSpace,
			Solver:      nlp.Options{Method: nlp.NewtonCG},
		})
		if err != nil {
			t.Fatal(err)
		}
		phiR := outR.MuTmax + k*outR.SigmaTmax
		phiF := outF.MuTmax + k*outF.SigmaTmax
		if !close(phiR, phiF, 5e-3) {
			t.Errorf("k=%v: reduced %v vs full-space %v", k, phiR, phiF)
		}
		for _, id := range mR.G.C.GateIDs() {
			if !close(outR.S[id], outF.S[id], 0.05) {
				t.Errorf("k=%v: S[%s] reduced %v vs full %v",
					k, mR.G.C.Nodes[id].Name, outR.S[id], outF.S[id])
			}
		}
	}
}

func TestFullSpaceLBFGSTree(t *testing.T) {
	// The full-space formulation must also solve with the first-order
	// inner method.
	m := treeModel(t)
	out, err := Size(m, Spec{
		Objective:   MinMu(),
		Formulation: FullSpace,
		Solver:      nlp.Options{Method: nlp.LBFGS, MaxInner: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !close(out.SumS, 21, 0.1) {
		t.Errorf("full-space min-mu SumS = %v, want ~21", out.SumS)
	}
}

func TestDelayFormsAgree(t *testing.T) {
	// Eq 14 (division) and eq 15 (bilinear) define the same feasible
	// set; both full-space variants must find the same optimum.
	var phis []float64
	for _, form := range []DelayForm{Bilinear, Division} {
		m := fig2Model(t)
		out, err := Size(m, Spec{
			Objective:   MinMuPlusKSigma(3),
			Formulation: FullSpace,
			DelayForm:   form,
			Solver:      nlp.Options{Method: nlp.NewtonCG},
		})
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		phis = append(phis, out.MuTmax+3*out.SigmaTmax)
	}
	if !close(phis[0], phis[1], 1e-3) {
		t.Errorf("bilinear %v vs division %v", phis[0], phis[1])
	}
	if Bilinear.String() != "bilinear" || Division.String() != "division" {
		t.Error("DelayForm strings")
	}
}

func TestWarmStartFeasible(t *testing.T) {
	// The full-space warm start must satisfy every equality
	// constraint: a single merit evaluation at x0 should report
	// (almost) zero violation.
	m := fig2Model(t)
	out, err := Size(m, Spec{
		Objective:   MinMu(),
		Formulation: FullSpace,
		Solver:      nlp.Options{Method: nlp.NewtonCG, MaxOuter: 1, MaxInner: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// After one inner iteration from a feasible start the violation
	// cannot have grown beyond the merit step; loose sanity bound.
	if out.Solver.MaxViolation > 0.5 {
		t.Errorf("warm start violation = %v", out.Solver.MaxViolation)
	}
}

func TestDeterministicLimit(t *testing.T) {
	// With the Zero sigma model, sizing reduces to classic
	// deterministic gate sizing; the subgradient max still drives the
	// mean down.
	m := treeModel(t)
	m.Sigma = delay.Zero{}
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	out, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	if out.MuTmax >= unit.Mu {
		t.Errorf("deterministic sizing did not improve: %v -> %v", unit.Mu, out.MuTmax)
	}
	if out.SigmaTmax != 0 {
		t.Errorf("deterministic sigma = %v", out.SigmaTmax)
	}
}

func TestStartVectorRespected(t *testing.T) {
	m := treeModel(t)
	start := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		start[id] = m.Limit
	}
	out, err := Size(m, Spec{Objective: MinMu(), Start: start})
	if err != nil {
		t.Fatal(err)
	}
	// Starting at the optimum (all at limit) must stay there.
	if !close(out.SumS, 21, 0.02) {
		t.Errorf("SumS = %v", out.SumS)
	}
}

func TestReducedRejectsNewton(t *testing.T) {
	m := treeModel(t)
	_, err := Size(m, Spec{Objective: MinMu(), Solver: nlp.Options{Method: nlp.NewtonCG}})
	if err == nil {
		t.Error("reduced+NewtonCG accepted")
	}
}

func TestSpecStrings(t *testing.T) {
	cases := map[string]string{
		MinMu().String():            "min mu",
		MinMuPlusKSigma(1).String(): "min mu+sigma",
		MinMuPlusKSigma(3).String(): "min mu+3sigma",
		MinArea().String():          "min area",
		MinSigma().String():         "min sigma",
		MaxSigma().String():         "max sigma",
		DelayLE(0, 120).String():    "mu <= 120",
		DelayLE(3, 120).String():    "mu+3sigma <= 120",
		MuEQ(5.8).String():          "mu = 5.8",
		Reduced.String():            "reduced",
		FullSpace.String():          "full-space",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestSizeApex2Scale(t *testing.T) {
	// The reduced formulation must handle the Table 1 small circuit
	// quickly and improve the delay substantially.
	if testing.Short() {
		t.Skip("optimization run")
	}
	m := delay.MustBind(netlist.MustCompile(netlist.Apex2Like()), delay.Default())
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	out, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	checkBounds(t, m, out.S)
	if out.MuTmax > 0.85*unit.Mu {
		t.Errorf("apex2 min-mu only reached %v from %v", out.MuTmax, unit.Mu)
	}
}

func TestSymmetricGatesSizedEqually(t *testing.T) {
	// Paper Table 3: min-area and min-sigma treat the symmetric tree
	// gates {A, B, D, E} and {C, F} identically.
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (unit.Mu + fast.MuTmax)
	for _, obj := range []Objective{MinArea(), MinSigma()} {
		out, err := Size(m, Spec{Objective: obj, Constraints: []Constraint{MuEQ(d)}})
		if err != nil {
			t.Fatal(err)
		}
		c := m.G.C
		groups := [][]string{{"A", "B", "D", "E"}, {"C", "F"}}
		for _, grp := range groups {
			first := out.S[c.MustID(grp[0])]
			for _, name := range grp[1:] {
				if !close(out.S[c.MustID(name)], first, 0.02) {
					t.Errorf("%v: S[%s] = %v differs from S[%s] = %v",
						obj, name, out.S[c.MustID(name)], grp[0], first)
				}
			}
		}
		// The output gate carries the largest factor (the full
		// increasing-toward-output pattern of the paper's Table 3 is
		// parameter-dependent and exercised with the calibrated
		// parameters in internal/bench).
		if !(out.S[c.MustID("G")] >= out.S[c.MustID("C")]-0.02 &&
			out.S[c.MustID("G")] >= out.S[c.MustID("A")]-0.02) {
			t.Errorf("%v: output gate not largest: A=%v C=%v G=%v",
				obj, out.S[c.MustID("A")], out.S[c.MustID("C")], out.S[c.MustID("G")])
		}
	}
}
