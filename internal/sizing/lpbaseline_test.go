package sizing

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/ssta"
)

func TestLPBaselineTree(t *testing.T) {
	m := treeModel(t)
	unit := ssta.DetAnalyze(m, m.UnitSizes()).Tmax
	fastest := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		fastest[id] = m.Limit
	}
	best := ssta.DetAnalyze(m, fastest).Tmax
	d := 0.5 * (unit + best)

	out, err := SizeLPBaseline(m, LPBaselineOptions{Deadline: d})
	if err != nil {
		t.Fatal(err)
	}
	// Deadline met (tangent cuts under-approximate the delay, so
	// allow the PWL gap).
	if out.DetDelay > d+0.02*(unit-best) {
		t.Errorf("deterministic delay %v misses deadline %v", out.DetDelay, d)
	}
	// Cheaper than full upsizing, more than no upsizing.
	if out.SumS <= 7 || out.SumS >= 21 {
		t.Errorf("area %v outside (7, 21)", out.SumS)
	}
	for _, id := range m.G.C.GateIDs() {
		if out.S[id] < 1-1e-9 || out.S[id] > m.Limit+1e-9 {
			t.Errorf("S[%s] = %v out of bounds", m.G.C.Nodes[id].Name, out.S[id])
		}
	}
	if out.Rounds < 1 || out.Pivots < 1 {
		t.Errorf("suspicious effort: rounds=%d pivots=%d", out.Rounds, out.Pivots)
	}
}

func TestLPBaselineInfeasibleDeadline(t *testing.T) {
	m := treeModel(t)
	if _, err := SizeLPBaseline(m, LPBaselineOptions{Deadline: 0.1}); err == nil {
		t.Error("infeasible deadline accepted")
	}
	if _, err := SizeLPBaseline(m, LPBaselineOptions{}); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestLPBaselineTighterDeadlineCostsMore(t *testing.T) {
	m := treeModel(t)
	unit := ssta.DetAnalyze(m, m.UnitSizes()).Tmax
	fastest := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		fastest[id] = m.Limit
	}
	best := ssta.DetAnalyze(m, fastest).Tmax
	loose, err := SizeLPBaseline(m, LPBaselineOptions{Deadline: unit - 0.2*(unit-best)})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SizeLPBaseline(m, LPBaselineOptions{Deadline: unit - 0.8*(unit-best)})
	if err != nil {
		t.Fatal(err)
	}
	if tight.SumS <= loose.SumS {
		t.Errorf("tighter deadline cheaper: %v vs %v", tight.SumS, loose.SumS)
	}
}

func TestLPBaselineMatchesNLPDeterministic(t *testing.T) {
	// At the same deterministic deadline, the LP baseline and the NLP
	// area minimization with sigma = 0 should land at comparable area
	// (within the PWL approximation gap).
	m := treeModel(t)
	m.Sigma = delay.Zero{}
	unit := ssta.DetAnalyze(m, m.UnitSizes()).Tmax
	fastest := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		fastest[id] = m.Limit
	}
	best := ssta.DetAnalyze(m, fastest).Tmax
	d := 0.5 * (unit + best)

	lpOut, err := SizeLPBaseline(m, LPBaselineOptions{Deadline: d, Tangents: 10})
	if err != nil {
		t.Fatal(err)
	}
	nlpOut, err := Size(m, Spec{
		Objective:   MinArea(),
		Constraints: []Constraint{DelayLE(0, d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The PWL relaxation and the frozen-load linearization leave a
	// few-percent optimality gap versus the exact NLP.
	if math.Abs(lpOut.SumS-nlpOut.SumS) > 0.05*nlpOut.SumS {
		t.Errorf("LP baseline area %v vs NLP %v", lpOut.SumS, nlpOut.SumS)
	}
}

func TestStatisticalBeatsDeterministicOnYieldMetric(t *testing.T) {
	// The paper's core claim: at a deadline D, deterministic sizing
	// meets D in the mean but ignores sigma; statistical sizing under
	// mu + 3*sigma <= D actually guarantees the 99.8% quantile. The
	// deterministic result's own mu+3sigma must overshoot D.
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMuPlusKSigma(3)})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (fast.MuTmax + 3*fast.SigmaTmax + unit.Mu)

	// Statistical: guarantee the 99.8% quantile.
	stat, err := Size(m, Spec{
		Objective:   MinArea(),
		Constraints: []Constraint{DelayLE(3, d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := stat.MuTmax + 3*stat.SigmaTmax; q > d+1e-3 {
		t.Fatalf("statistical sizing missed its quantile target: %v > %v", q, d)
	}

	// Deterministic baseline at the same deadline on mean delay.
	det, err := SizeLPBaseline(m, LPBaselineOptions{Deadline: d})
	if err != nil {
		t.Fatal(err)
	}
	r := ssta.Analyze(m, det.S, false).Tmax
	if q := r.Mu + 3*r.Sigma(); q <= d {
		t.Errorf("deterministic sizing accidentally met the quantile: %v <= %v "+
			"(expected overshoot: it has no sigma handle)", q, d)
	}
}
