package sizing

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
)

// genModel builds a deterministic synthetic circuit large enough for
// the full-space formulation to clear the NLP engine's parallel
// threshold.
func genModel(t testing.TB, gates int) *delay.Model {
	t.Helper()
	c, err := netlist.Generate(netlist.GenSpec{
		Name: "par", Gates: gates, Inputs: 24, Outputs: 6,
		Depth: 12, MaxFanin: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return delay.MustBind(netlist.MustCompile(c), delay.Default())
}

// requireIdentical compares two sizing outcomes bit for bit: the
// engine's ordered folds promise that Workers never changes a single
// ULP anywhere in the solve trajectory.
func requireIdentical(t *testing.T, ref, got *Outcome, label string) {
	t.Helper()
	r, g := ref.Solver, got.Solver
	if g.F != r.F || g.Status != r.Status || g.Outer != r.Outer || g.Inner != r.Inner ||
		g.FuncEvals != r.FuncEvals || g.ObjEvals != r.ObjEvals ||
		g.ProjGradNorm != r.ProjGradNorm || g.MaxViolation != r.MaxViolation {
		t.Fatalf("%s: solver header differs from serial:\n got F=%v %v outer=%d inner=%d evals=%d/%d pg=%v viol=%v\nwant F=%v %v outer=%d inner=%d evals=%d/%d pg=%v viol=%v",
			label,
			g.F, g.Status, g.Outer, g.Inner, g.FuncEvals, g.ObjEvals, g.ProjGradNorm, g.MaxViolation,
			r.F, r.Status, r.Outer, r.Inner, r.FuncEvals, r.ObjEvals, r.ProjGradNorm, r.MaxViolation)
	}
	for i := range r.X {
		if g.X[i] != r.X[i] {
			t.Fatalf("%s: X[%d] = %v != serial %v", label, i, g.X[i], r.X[i])
		}
	}
	for i := range r.LambdaEq {
		if g.LambdaEq[i] != r.LambdaEq[i] {
			t.Fatalf("%s: LambdaEq[%d] = %v != serial %v", label, i, g.LambdaEq[i], r.LambdaEq[i])
		}
	}
	for i := range r.LambdaIneq {
		if g.LambdaIneq[i] != r.LambdaIneq[i] {
			t.Fatalf("%s: LambdaIneq[%d] = %v != serial %v", label, i, g.LambdaIneq[i], r.LambdaIneq[i])
		}
	}
	for i := range ref.S {
		if got.S[i] != ref.S[i] {
			t.Fatalf("%s: S[%d] = %v != serial %v", label, i, got.S[i], ref.S[i])
		}
	}
	if got.MuTmax != ref.MuTmax || got.SigmaTmax != ref.SigmaTmax || got.SumS != ref.SumS {
		t.Fatalf("%s: outcome moments differ: got (%v, %v, %v) want (%v, %v, %v)",
			label, got.MuTmax, got.SigmaTmax, got.SumS, ref.MuTmax, ref.SigmaTmax, ref.SumS)
	}
}

// TestSolveWorkersBitIdentical runs each formulation/method combination
// across worker counts 1, 2, 3 and NumCPU on the built-in circuits and
// a generated netlist, demanding bitwise-identical results. The
// generated full-space problems have thousands of elements, so the
// engine's parallel path genuinely runs there (the race suite covers
// it under -race).
func TestSolveWorkersBitIdentical(t *testing.T) {
	type circ struct {
		name  string
		model func(t testing.TB) *delay.Model
	}
	circuits := []circ{
		{"tree7", func(t testing.TB) *delay.Model {
			return delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
		}},
		{"fig2", func(t testing.TB) *delay.Model {
			return delay.MustBind(netlist.MustCompile(netlist.Fig2Example()), delay.Default())
		}},
		{"gen300", func(t testing.TB) *delay.Model { return genModel(t, 300) }},
	}
	type combo struct {
		name string
		spec Spec
	}
	// The iteration caps keep the race-detector runs quick; bitwise
	// equivalence holds for truncated trajectories just as well.
	combos := []combo{
		{"full/newton", Spec{
			Objective:   MinMuPlusKSigma(1),
			Formulation: FullSpace,
			Solver:      nlp.Options{Method: nlp.NewtonCG, MaxOuter: 3, MaxInner: 20},
		}},
		{"full/lbfgs", Spec{
			Objective:   MinMuPlusKSigma(1),
			Formulation: FullSpace,
			Solver:      nlp.Options{Method: nlp.LBFGS, MaxOuter: 4, MaxInner: 40},
		}},
		{"reduced/lbfgs", Spec{
			Objective:   MinMuPlusKSigma(1),
			Formulation: Reduced,
			Solver:      nlp.Options{Method: nlp.LBFGS, MaxOuter: 3, MaxInner: 30},
		}},
	}
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, c := range circuits {
		for _, cb := range combos {
			t.Run(c.name+"/"+cb.name, func(t *testing.T) {
				if c.name == "gen300" && cb.name == "reduced/lbfgs" && testing.Short() {
					t.Skip("reduced sweep on the generated circuit is slow in -short mode")
				}
				var ref *Outcome
				for _, w := range workerCounts {
					m := c.model(t)
					spec := cb.spec
					spec.Workers = w
					out, err := Size(m, spec)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if w == 1 {
						ref = out
						continue
					}
					requireIdentical(t, ref, out, fmt.Sprintf("workers=%d", w))
				}
			})
		}
	}
}
