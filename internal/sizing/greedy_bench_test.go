package sizing

import (
	"testing"
)

// The greedy benchmark pair runs a fixed number of sensitivity steps
// (the deadline is infeasible, so the step count is exactly MaxSteps)
// on the 1200-gate generated netlist: once on the incremental engine,
// once on the legacy fresh-taped-sweep-per-step path. Both take the
// identical trajectory (asserted in TestGreedyIncrementalMatchesFull-
// Sweeps); the ratio is pure engine speedup.

func benchGreedy1200(b *testing.B, fullSweeps bool) {
	m := genModel(b, 1200)
	opt := GreedyOptions{
		K: 3, Deadline: 0.01, MaxSteps: 64, Workers: 1, FullSweeps: fullSweeps,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SizeGreedy(m, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyIncremental1200(b *testing.B) { benchGreedy1200(b, false) }
func BenchmarkGreedyFullSweep1200(b *testing.B)   { benchGreedy1200(b, true) }
