package sizing

import (
	"testing"
	"time"

	"repro/internal/nlp"
	"repro/internal/telemetry"
)

// The observability-overhead benchmark pairs run identical fixed-work
// solves on the 1200-gate generated netlist with telemetry fully
// disabled (nil Recorder — the hot paths cost one branch) and with the
// full production observability chain attached: watchdog middleware in
// front of a Metrics sink with span histograms and scope-stack span
// trees aggregating. The Off/On ratio is the subsystem's overhead;
// make bench-obsv derives it into BENCH_obsv.json and the target is
// under 2%.

// obsvChain builds the full metrics+watchdog recorder a production
// service would run with. It is created once per benchmark, outside
// the timed loop, because that is the service lifecycle: the chain
// lives for the process and solves stream through it, so the
// steady-state cost is Record/Event aggregation, not the one-time
// histogram allocation.
func obsvChain() telemetry.Recorder {
	return telemetry.NewWatchdog(telemetry.NewMetrics(), telemetry.WatchdogOptions{})
}

func benchObsvGreedy(b *testing.B, rec telemetry.Recorder) {
	m := genModel(b, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := GreedyOptions{K: 3, Deadline: 0.01, MaxSteps: 64, Workers: 1}
		opt.Recorder = rec
		if _, err := SizeGreedy(m, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsvGreedyOff(b *testing.B) { benchObsvGreedy(b, nil) }
func BenchmarkObsvGreedyOn(b *testing.B)  { benchObsvGreedy(b, obsvChain()) }

func benchObsvNLP(b *testing.B, rec telemetry.Recorder) {
	m := genModel(b, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := Spec{
			Objective:   MinMuPlusKSigma(1),
			Formulation: Reduced,
			Solver:      nlp.Options{Method: nlp.LBFGS, MaxOuter: 2, MaxInner: 10},
			Workers:     1,
		}
		spec.Recorder = rec
		if _, err := Size(m, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsvNLPOff(b *testing.B) { benchObsvNLP(b, nil) }
func BenchmarkObsvNLPOn(b *testing.B)  { benchObsvNLP(b, obsvChain()) }

// benchObsvPair measures the enabled-vs-disabled delta with paired
// interleaving: each iteration runs both variants back to back,
// alternating the order, and the two wall-clock sums are reported as
// custom metrics. On a shared host the run-to-run spread of a single
// benchmark (CPU frequency drift, noisy neighbors) is far larger than
// the telemetry overhead itself, so consecutive-block comparisons —
// even min-of-N — measure the weather, not the subsystem. Pairing
// samples both variants in the same drift window so the bias cancels;
// the overhead-% metric is the one BENCH_obsv.json reports against the
// <2% target.
func benchObsvPair(b *testing.B, run func(rec telemetry.Recorder)) {
	rec := obsvChain()
	run(nil) // warm both paths once before timing
	run(rec)
	var tOff, tOn time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			s := time.Now()
			run(nil)
			tOff += time.Since(s)
			s = time.Now()
			run(rec)
			tOn += time.Since(s)
		} else {
			s := time.Now()
			run(rec)
			tOn += time.Since(s)
			s = time.Now()
			run(nil)
			tOff += time.Since(s)
		}
	}
	b.StopTimer()
	off := float64(tOff.Nanoseconds()) / float64(b.N)
	on := float64(tOn.Nanoseconds()) / float64(b.N)
	b.ReportMetric(off, "off-ns/op")
	b.ReportMetric(on, "on-ns/op")
	b.ReportMetric(100*(on-off)/off, "overhead-%")
}

func BenchmarkObsvGreedyPair(b *testing.B) {
	m := genModel(b, 1200)
	benchObsvPair(b, func(rec telemetry.Recorder) {
		opt := GreedyOptions{K: 3, Deadline: 0.01, MaxSteps: 64, Workers: 1, Recorder: rec}
		if _, err := SizeGreedy(m, opt); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkObsvNLPPair(b *testing.B) {
	m := genModel(b, 1200)
	benchObsvPair(b, func(rec telemetry.Recorder) {
		spec := Spec{
			Objective:   MinMuPlusKSigma(1),
			Formulation: Reduced,
			Solver:      nlp.Options{Method: nlp.LBFGS, MaxOuter: 2, MaxInner: 10},
			Workers:     1,
			Recorder:    rec,
		}
		if _, err := Size(m, spec); err != nil {
			b.Fatal(err)
		}
	})
}
