// Package sizing implements the paper's contribution: gate sizing
// under the statistical delay model, formulated as a nonlinear program
// and solved with the augmented-Lagrangian package internal/nlp (the
// module's LANCELOT substitute).
//
// Two formulations are provided.
//
// The full-space formulation is the paper's equation 17/18 verbatim:
// every gate contributes its speed factor, mean delay, delay variance,
// arrival mean and arrival variance as problem variables, every
// two-operand stochastic max contributes an auxiliary moment pair, and
// all relations (bilinear delay equation 15, sigma model, arrival
// addition, max moments) are equality constraints with exact analytic
// first and second derivatives. This is what LANCELOT wants to see:
// many sparse elements.
//
// The reduced formulation eliminates every equality constraint by
// construction: the only variables are the speed factors, the circuit
// moments are computed by the SSTA forward sweep, and gradients come
// from the exact adjoint sweep. It solves the same mathematical
// problem (the eliminated constraints hold identically) at a fraction
// of the cost and is what the Table 1 scale experiments use.
package sizing

import (
	"context"
	"fmt"
	"time"

	"repro/internal/delay"
	"repro/internal/nlp"
	"repro/internal/ssta"
	"repro/internal/telemetry"
)

// ObjectiveKind enumerates the paper's objective families.
type ObjectiveKind int

// Objective kinds.
const (
	// ObjMuPlusKSigma minimizes muTmax + K*sigmaTmax (K = 0 gives the
	// pure mean-delay objective).
	ObjMuPlusKSigma ObjectiveKind = iota
	// ObjArea minimizes the sum of speed factors, the paper's area
	// measure (section 4 notes area and power both scale linearly
	// with the sizing factor).
	ObjArea
	// ObjSigma minimizes sigmaTmax (paper Table 2).
	ObjSigma
	// ObjNegSigma maximizes sigmaTmax (paper Table 2).
	ObjNegSigma
	// ObjWeightedArea minimizes a weighted sum of speed factors; with
	// activity-times-capacitance weights (internal/power) this models
	// switching power, as the paper's section 4 suggests. Weights
	// come from Spec.Weights.
	ObjWeightedArea
)

// Objective selects what to minimize.
type Objective struct {
	Kind ObjectiveKind
	K    float64 // only for ObjMuPlusKSigma
}

func (o Objective) String() string {
	switch o.Kind {
	case ObjMuPlusKSigma:
		switch o.K {
		case 0:
			return "min mu"
		case 1:
			return "min mu+sigma"
		default:
			return fmt.Sprintf("min mu+%gsigma", o.K)
		}
	case ObjArea:
		return "min area"
	case ObjSigma:
		return "min sigma"
	case ObjNegSigma:
		return "max sigma"
	case ObjWeightedArea:
		return "min weighted area"
	default:
		return fmt.Sprintf("Objective(%d)", int(o.Kind))
	}
}

// MinMu returns the mean-delay objective.
func MinMu() Objective { return Objective{Kind: ObjMuPlusKSigma, K: 0} }

// MinMuPlusKSigma returns the mu + k*sigma objective.
func MinMuPlusKSigma(k float64) Objective { return Objective{Kind: ObjMuPlusKSigma, K: k} }

// MinArea returns the sum-of-speed-factors objective.
func MinArea() Objective { return Objective{Kind: ObjArea} }

// MinSigma returns the minimize-sigma objective.
func MinSigma() Objective { return Objective{Kind: ObjSigma} }

// MaxSigma returns the maximize-sigma objective.
func MaxSigma() Objective { return Objective{Kind: ObjNegSigma} }

// MinWeightedArea returns the weighted-area objective; the weights
// come from Spec.Weights (indexed by NodeID).
func MinWeightedArea() Objective { return Objective{Kind: ObjWeightedArea} }

// ConstraintKind enumerates the paper's timing-constraint families.
type ConstraintKind int

// Constraint kinds.
const (
	// ConMuPlusKSigmaLE requires muTmax + K*sigmaTmax <= Bound; with
	// K = 0 this is the plain mean-delay constraint, with K = 1 or 3
	// the paper's yield-targeting constraints (84.1% and 99.8%).
	ConMuPlusKSigmaLE ConstraintKind = iota
	// ConMuEQ pins muTmax = Bound exactly (paper Table 2's fixed-mean
	// sigma exploration).
	ConMuEQ
)

// Constraint is one timing constraint of the sizing problem.
type Constraint struct {
	Kind  ConstraintKind
	K     float64
	Bound float64
}

func (c Constraint) String() string {
	switch c.Kind {
	case ConMuPlusKSigmaLE:
		if c.K == 0 {
			return fmt.Sprintf("mu <= %g", c.Bound)
		}
		return fmt.Sprintf("mu+%gsigma <= %g", c.K, c.Bound)
	case ConMuEQ:
		return fmt.Sprintf("mu = %g", c.Bound)
	default:
		return fmt.Sprintf("Constraint(%d)", int(c.Kind))
	}
}

// DelayLE returns the constraint muTmax + k*sigmaTmax <= bound.
func DelayLE(k, bound float64) Constraint {
	return Constraint{Kind: ConMuPlusKSigmaLE, K: k, Bound: bound}
}

// MuEQ returns the constraint muTmax = bound.
func MuEQ(bound float64) Constraint {
	return Constraint{Kind: ConMuEQ, Bound: bound}
}

// Formulation selects between the two problem constructions.
type Formulation int

// Formulations.
const (
	// Reduced eliminates all equality constraints via the SSTA
	// forward/adjoint sweeps; variables are speed factors only.
	Reduced Formulation = iota
	// FullSpace is the paper's equation 17/18 with explicit moment
	// variables and equality constraints.
	FullSpace
)

func (f Formulation) String() string {
	switch f {
	case Reduced:
		return "reduced"
	case FullSpace:
		return "full-space"
	default:
		return fmt.Sprintf("Formulation(%d)", int(f))
	}
}

// DelayForm selects how the full-space formulation writes the gate
// delay equality — the paper's eq 14 vs eq 15 ablation.
type DelayForm int

// Delay equation forms.
const (
	// Bilinear is the paper's eq 15: multiply eq 14 through by S so
	// the constraint is bilinear, "fewer nonlinear terms to deal
	// with" (the paper credits this reformulation with improving
	// LANCELOT's efficiency).
	Bilinear DelayForm = iota
	// Division is the raw eq 14 with the 1/S term kept, provided to
	// measure what the reformulation buys.
	Division
)

func (d DelayForm) String() string {
	switch d {
	case Bilinear:
		return "bilinear"
	case Division:
		return "division"
	default:
		return fmt.Sprintf("DelayForm(%d)", int(d))
	}
}

// Spec describes one sizing run.
type Spec struct {
	Objective   Objective
	Constraints []Constraint
	Formulation Formulation
	// DelayForm selects eq 15 (Bilinear, default) or eq 14 (Division)
	// in the full-space formulation; the reduced formulation has no
	// delay constraints and ignores it.
	DelayForm DelayForm
	// Solver tunes the NLP solver; zero value = defaults (LBFGS for
	// Reduced, NewtonCG works only with FullSpace, which has exact
	// element Hessians).
	Solver nlp.Options
	// Start optionally provides initial speed factors indexed by
	// NodeID; nil starts from all ones.
	Start []float64
	// Weights holds per-gate objective weights (indexed by NodeID)
	// for ObjWeightedArea; see internal/power for power weights.
	Weights []float64
	// Workers bounds the parallelism of the heavy kernels inside the
	// solver loop — the SSTA forward/adjoint sweeps and the NLP
	// element evaluation engine (nlp.Options.Workers, unless
	// Solver.Workers is set explicitly): <= 0 uses one worker per CPU,
	// 1 forces serial execution. Results are bit-identical for every
	// worker count.
	Workers int
	// Recorder, when non-nil, receives run telemetry: the NLP solver's
	// iteration events and engine counters (threaded through as
	// nlp.Options.Recorder unless Solver.Recorder is set explicitly),
	// the SSTA sweep spans of the reduced formulation, and a final
	// "sizing.result" event. Nil disables instrumentation at zero cost.
	Recorder telemetry.Recorder
	// WrapProblem, when non-nil, receives the assembled NLP problem
	// immediately before the solve and the solve runs on its return
	// value. It is the fault-injection seam: the chaos and service
	// acceptance tests thread internal/faults.Wrap through it to
	// script deterministic in-solve failures. The wrapper must return
	// a problem of identical shape (same N, bounds and constraint
	// counts). The greedy sizer does not build an NLP problem and is
	// unaffected.
	WrapProblem func(*nlp.Problem) *nlp.Problem
}

// Outcome reports a sizing run in the units of the paper's tables.
type Outcome struct {
	// S holds the optimized speed factors indexed by NodeID.
	S []float64
	// MuTmax and SigmaTmax are the statistical circuit delay moments
	// at S.
	MuTmax, SigmaTmax float64
	// SumS is the paper's area measure.
	SumS float64
	// Solver carries the raw NLP result.
	Solver *nlp.Result
	// Fallback reports that the NLP solver returned NumericalFailure
	// and S instead comes from the greedy sensitivity sizer — a valid
	// if conservative sizing, the bottom of the degradation ladder.
	Fallback bool
	// Runtime is the wall-clock solve time (the paper's CPU column).
	Runtime time.Duration
}

// perturbStart nudges a unit starting point with a small
// deterministic, gate-dependent offset. Maximizing the circuit sigma
// from a perfectly symmetric start is hopeless on symmetric circuits:
// gradient methods preserve the symmetry and converge to the best
// *symmetric* point, while the true maximum unbalances the paths (the
// paper's Table 3 max-sigma row differentiates gates A and B). The
// perturbation lets the optimizer pick a dominant path; which path
// wins is arbitrary, exactly as in the paper, where the choice among
// symmetric optima is the solver's.
func perturbStart(x0 []float64, limit float64) {
	span := 0.05 * (limit - 1)
	for i := range x0 {
		x0[i] += span * float64((i*2654435761)%97) / 97.0
	}
}

// Size solves the sizing problem described by spec on the model
// without a cancellation context; see SizeCtx.
func Size(m *delay.Model, spec Spec) (*Outcome, error) {
	return SizeCtx(context.Background(), m, spec)
}

// SizeCtx solves the sizing problem described by spec on the model
// under ctx. Cancellation propagates into the NLP solver's iteration
// boundaries: a cancelled run returns the best-so-far sizing with
// Outcome.Solver.Status reporting Cancelled or DeadlineExceeded. When
// the solver exhausts its numerical-recovery budget (NumericalFailure)
// and the spec carries a mu+K*sigma deadline, the greedy sensitivity
// sizer runs as the final fallback so the run still produces a valid
// sizing; Outcome.Fallback flags it.
func SizeCtx(ctx context.Context, m *delay.Model, spec Spec) (*Outcome, error) {
	start := time.Now()
	var (
		res *nlp.Result
		S   []float64
		err error
	)
	switch spec.Formulation {
	case Reduced:
		res, S, err = solveReduced(ctx, m, spec)
	case FullSpace:
		res, S, err = solveFullSpace(ctx, m, spec)
	default:
		return nil, fmt.Errorf("sizing: unknown formulation %v", spec.Formulation)
	}
	if err != nil {
		return nil, err
	}
	fallback := false
	if res.Status == nlp.NumericalFailure {
		if gr := greedyFallback(ctx, m, spec); gr != nil {
			S = gr.S
			fallback = true
		}
	}
	m.ClampSizes(S)
	r := ssta.AnalyzeWorkers(m, S, false, spec.Workers)
	out := &Outcome{
		S:         S,
		MuTmax:    r.Tmax.Mu,
		SigmaTmax: r.Tmax.Sigma(),
		SumS:      m.SumSizes(S),
		Solver:    res,
		Fallback:  fallback,
		Runtime:   time.Since(start),
	}
	if rec := spec.Recorder; rec != nil {
		fb := 0.0
		if fallback {
			fb = 1
		}
		rec.Event("sizing", "result",
			telemetry.F("mu", out.MuTmax),
			telemetry.F("sigma", out.SigmaTmax),
			telemetry.F("area", out.SumS),
			telemetry.I("status", int(res.Status)),
			telemetry.I("outer", res.Outer),
			telemetry.I("inner", res.Inner),
			telemetry.F("fallback", fb),
		)
		rec.Span("sizing.total", out.Runtime)
	}
	return out, nil
}

// GreedyFromSpec derives the greedy sizer's options from a spec: the
// target comes from the spec's first mu+K*sigma deadline, and the
// workers, recorder and objective weights carry over — so a
// power-weighted spec degrading to greedy still optimizes the weighted
// metric. The second return is false when the spec carries no
// ConMuPlusKSigmaLE constraint (the heuristic needs a deadline).
func GreedyFromSpec(spec Spec) (GreedyOptions, bool) {
	for _, c := range spec.Constraints {
		if c.Kind != ConMuPlusKSigmaLE {
			continue
		}
		return GreedyOptions{
			K: c.K, Deadline: c.Bound,
			Workers:  spec.Workers,
			Weights:  spec.Weights,
			Recorder: spec.Recorder,
		}, true
	}
	return GreedyOptions{}, false
}

// greedyFallback runs the TILOS-style sensitivity sizer against the
// spec's first mu+K*sigma deadline after an NLP NumericalFailure. It
// returns nil when the spec has no such deadline (the heuristic needs
// a target) or the greedy run itself fails.
func greedyFallback(ctx context.Context, m *delay.Model, spec Spec) *GreedyResult {
	opt, ok := GreedyFromSpec(spec)
	if !ok {
		return nil
	}
	gr, err := SizeGreedyCtx(ctx, m, opt)
	if err != nil {
		return nil
	}
	if rec := spec.Recorder; rec != nil {
		rec.Event("sizing", "fallback",
			telemetry.F("k", opt.K),
			telemetry.F("deadline", opt.Deadline),
			telemetry.I("steps", gr.Steps),
		)
	}
	return gr
}
