package sizing

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseObjective maps the textual objective syntax shared by the
// statsize CLI and the sizingd job API to a sizing objective:
// "mu", "mu+sigma", "mu+3sigma", "mu+2.5sigma", "area", "sigma",
// "-sigma" (or "maxsigma").
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "mu":
		return MinMu(), nil
	case "area":
		return MinArea(), nil
	case "sigma":
		return MinSigma(), nil
	case "-sigma", "maxsigma":
		return MaxSigma(), nil
	}
	if k, ok := parseKSigma(s); ok {
		return MinMuPlusKSigma(k), nil
	}
	return Objective{}, fmt.Errorf("unknown objective %q", s)
}

// parseKSigma parses "mu+sigma", "mu+3sigma", "mu+2.5sigma".
func parseKSigma(s string) (float64, bool) {
	if !strings.HasPrefix(s, "mu+") || !strings.HasSuffix(s, "sigma") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(s, "mu+"), "sigma")
	if mid == "" {
		return 1, true
	}
	k, err := strconv.ParseFloat(mid, 64)
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// ParseConstraint parses the textual timing-constraint syntax shared
// by the statsize CLI and the sizingd job API: "mu<=120",
// "mu+3sigma<=120", "mu=6.5". Spaces are ignored.
func ParseConstraint(s string) (Constraint, error) {
	s = strings.ReplaceAll(s, " ", "")
	if i := strings.Index(s, "<="); i >= 0 {
		bound, err := strconv.ParseFloat(s[i+2:], 64)
		if err != nil {
			return Constraint{}, fmt.Errorf("bad bound in %q", s)
		}
		lhs := s[:i]
		if lhs == "mu" {
			return DelayLE(0, bound), nil
		}
		if k, ok := parseKSigma(lhs); ok {
			return DelayLE(k, bound), nil
		}
		return Constraint{}, fmt.Errorf("bad constraint lhs %q", lhs)
	}
	if i := strings.Index(s, "="); i >= 0 && s[:i] == "mu" {
		bound, err := strconv.ParseFloat(s[i+1:], 64)
		if err != nil {
			return Constraint{}, fmt.Errorf("bad bound in %q", s)
		}
		return MuEQ(bound), nil
	}
	return Constraint{}, fmt.Errorf("cannot parse constraint %q", s)
}
