package sizing

import (
	"context"
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/ssta"
	"repro/internal/stats"
)

// The full-space formulation reproduces the paper's equation 17/18
// construction literally, in the paper's own parameterization: means
// and standard deviations are problem variables, variances appear only
// squared inside constraints ("we use only the squared version of
// standard deviations in the model", section 4). Problem variables per
// gate g:
//
//	S_g              speed factor               1 <= S <= limit
//	muT_g, sT_g      gate delay mean and sigma (sigma >= 0)
//	muA_g, sA_g      arrival mean and sigma at the gate output
//
// plus one (mu, sigma) auxiliary pair per two-operand max in the left
// folds over gate fanins and over the primary outputs. Equality
// constraints:
//
//	delay:   muT*S - tint*S - c*(Cload + sum Cin_f S_f) = 0    (eq 15)
//	sigma:   sT - f(muT) = 0                                   (eq 16)
//	arrival: muA - muU - muT = 0, sA^2 - sU^2 - sT^2 = 0       (eq 18c)
//	max:     max_mu(A,B) - muAux = 0, max_s(A,B) - sAux = 0    (eq 18b)
//
// With sigma as the variable, every mu + k*sigma objective and timing
// constraint is linear; the only nonlinearities are the bilinear delay
// relation, the quadratic arrival-variance addition, and the max
// moments, whose exact first and second derivatives come from the
// closed-form Jacobian and hyper-dual Hessians of internal/stats —
// enabling the Newton-CG inner solver, the paper's argument for
// deriving the analytic expressions in the first place.
//
// (An alternative substitution w = sigma^2 with a defining equality
// s^2 - w = 0 creates a spurious stationary point at s = 0 where the
// defining constraint's gradient in s vanishes; the augmented
// Lagrangian can converge to it with a permanent infeasibility. The
// sigma parameterization avoids the defect because the only flat
// point, sigma exactly 0 against a positive right-hand side, repels
// the merit minimizer instead of trapping it.)

// operand denotes one input of a stochastic max: either a (mu, sigma)
// pair of problem variables or a constant pair (primary inputs). The
// shift adds the constant per-pin delay of eq 1 to a variable mean.
type operand struct {
	muVar, sVar int // variable indices, or -1 for constants
	mu, sigma   float64
	shift       float64
}

func varOperand(muVar, sVar int) operand { return operand{muVar: muVar, sVar: sVar} }

func constOperand(mv stats.MV) operand {
	return operand{muVar: -1, sVar: -1, mu: mv.Mu, sigma: mv.Sigma()}
}

// fsLayout maps model entities to variable indices.
type fsLayout struct {
	nVars   int
	s       []int // per NodeID; -1 for inputs
	muT, sT []int
	muA, sA []int
	gateAux [][]int // per NodeID: 2*(fanin-1) indices, (mu, sigma) pairs
	outAux  []int   // 2*(numOutputs-1) indices
	// muTmax, sTmax locate the circuit delay pair (may alias the
	// arrival pair of a single output).
	muTmax, sTmax int
}

func buildLayout(m *delay.Model) *fsLayout {
	g := m.G
	n := len(g.C.Nodes)
	l := &fsLayout{
		s:       make([]int, n),
		muT:     make([]int, n),
		sT:      make([]int, n),
		muA:     make([]int, n),
		sA:      make([]int, n),
		gateAux: make([][]int, n),
	}
	alloc := func() int {
		v := l.nVars
		l.nVars++
		return v
	}
	for i := range g.C.Nodes {
		l.s[i], l.muT[i], l.sT[i], l.muA[i], l.sA[i] = -1, -1, -1, -1, -1
	}
	for _, id := range g.C.GateIDs() {
		l.s[id] = alloc()
		l.muT[id] = alloc()
		l.sT[id] = alloc()
		l.muA[id] = alloc()
		l.sA[id] = alloc()
		k := len(g.C.Nodes[id].Fanin)
		if k >= 2 {
			aux := make([]int, 0, 2*(k-1))
			for j := 0; j < k-1; j++ {
				aux = append(aux, alloc(), alloc())
			}
			l.gateAux[id] = aux
		}
	}
	outs := g.C.Outputs
	if len(outs) == 1 {
		l.muTmax = l.muA[outs[0]]
		l.sTmax = l.sA[outs[0]]
	} else {
		l.outAux = make([]int, 0, 2*(len(outs)-1))
		for j := 0; j < len(outs)-1; j++ {
			l.outAux = append(l.outAux, alloc(), alloc())
		}
		l.muTmax = l.outAux[len(l.outAux)-2]
		l.sTmax = l.outAux[len(l.outAux)-1]
	}
	return l
}

// arrivalOperand returns the arrival moments of node f, shifted by the
// receiving pin's additive delay, as an operand.
func (l *fsLayout) arrivalOperand(m *delay.Model, f netlist.NodeID, pinOff float64) operand {
	if m.G.C.Nodes[f].Kind == netlist.KindInput {
		mv := m.Arrival[f]
		return constOperand(stats.MV{Mu: mv.Mu + pinOff, Var: mv.Var})
	}
	op := varOperand(l.muA[f], l.sA[f])
	op.shift = pinOff
	return op
}

// maxElements builds the two equality-constraint elements
// max_mu(A, B) - muAux = 0 and max_sigma(A, B) - sAux = 0. Operand
// variables are deduplicated (a gate may use the same fanin on two
// pins), and gradients/Hessians accumulate accordingly.
func maxElements(a, b operand, muAux, sAux int) (muEl, sEl nlp.Element) {
	// Positions of (a.mu, a.sigma, b.mu, b.sigma) within the
	// element's local variable list; -1 marks constants.
	var vars []int
	pos := [4]int{-1, -1, -1, -1}
	seen := map[int]int{}
	add := func(v int) int {
		if v < 0 {
			return -1
		}
		if p, ok := seen[v]; ok {
			return p
		}
		p := len(vars)
		seen[v] = p
		vars = append(vars, v)
		return p
	}
	pos[0] = add(a.muVar)
	pos[1] = add(a.sVar)
	pos[2] = add(b.muVar)
	pos[3] = add(b.sVar)

	// assemble reconstructs the four operand scalars at a local point.
	assemble := func(x []float64) (muA, sA, muB, sB float64) {
		muA, sA, muB, sB = a.mu, a.sigma, b.mu, b.sigma
		if pos[0] >= 0 {
			muA = x[pos[0]] + a.shift
		}
		if pos[1] >= 0 {
			sA = x[pos[1]]
		}
		if pos[2] >= 0 {
			muB = x[pos[2]] + b.shift
		}
		if pos[3] >= 0 {
			sB = x[pos[3]]
		}
		return muA, sA, muB, sB
	}

	build := func(row int, auxVar int) nlp.Element {
		elVars := append(append([]int(nil), vars...), auxVar)
		auxPos := len(elVars) - 1
		return nlp.Element{
			Vars: elVars,
			Eval: func(x []float64) float64 {
				muA, sA, muB, sB := assemble(x)
				muC, sC := stats.Max2Sigma(muA, sA, muB, sB)
				if row == 0 {
					return muC - x[auxPos]
				}
				return sC - x[auxPos]
			},
			Grad: func(x []float64, gr []float64) {
				for i := range gr {
					gr[i] = 0
				}
				muA, sA, muB, sB := assemble(x)
				_, _, jac := stats.Max2SigmaJac(muA, sA, muB, sB)
				for k := 0; k < 4; k++ {
					if pos[k] >= 0 {
						gr[pos[k]] += jac[row][k]
					}
				}
				gr[auxPos] = -1
			},
			Hess: func(x []float64, h [][]float64) {
				for i := range h {
					for j := range h[i] {
						h[i][j] = 0
					}
				}
				muA, sA, muB, sB := assemble(x)
				if stats.Degenerate(stats.MV{Mu: muA, Var: sA * sA}, stats.MV{Mu: muB, Var: sB * sB}) {
					return // deterministic max: piecewise linear
				}
				hMu, hSigma := stats.Max2SigmaHessians(muA, sA, muB, sB)
				src := &hMu
				if row == 1 {
					src = &hSigma
				}
				for i := 0; i < 4; i++ {
					if pos[i] < 0 {
						continue
					}
					for j := 0; j < 4; j++ {
						if pos[j] < 0 {
							continue
						}
						h[pos[i]][pos[j]] += src[i][j]
					}
				}
			},
		}
	}
	return build(0, muAux), build(1, sAux)
}

// delayElement builds the gate delay equality in the requested form:
// the paper's bilinear eq 15 (muT*S - tint*S - c*Cload - c * sum
// Cin_f S_f = 0) or the raw eq 14 kept as a division, for the
// reformulation ablation. Fanout gates driven through multiple pins
// contribute once with a doubled coefficient.
func delayElement(m *delay.Model, l *fsLayout, id netlist.NodeID, form DelayForm) nlp.Element {
	type fo struct {
		pos   int // local position of the fanout gate's S variable
		coeff float64
	}
	vars := []int{l.muT[id], l.s[id]}
	seen := map[int]int{l.s[id]: 1}
	var fos []fo
	for _, f := range m.G.Fanout[id] {
		v := l.s[f]
		if p, ok := seen[v]; ok {
			fos[p-2].coeff += m.Coef * m.CIn[f]
			continue
		}
		seen[v] = len(vars)
		fos = append(fos, fo{pos: len(vars), coeff: m.Coef * m.CIn[f]})
		vars = append(vars, v)
	}
	tint := m.TInt[id]
	konst := -m.Coef * m.CLoad[id]
	if form == Division {
		// Raw eq 14: muT - tint - c*(Cload + sum Cin_f S_f)/S = 0.
		return nlp.Element{
			Vars: vars,
			Eval: func(x []float64) float64 {
				load := -konst
				for _, f := range fos {
					load += f.coeff * x[f.pos]
				}
				return x[0] - tint - load/x[1]
			},
			Grad: func(x []float64, g []float64) {
				for i := range g {
					g[i] = 0
				}
				load := -konst
				for _, f := range fos {
					load += f.coeff * x[f.pos]
				}
				g[0] = 1
				g[1] = load / (x[1] * x[1])
				for _, f := range fos {
					g[f.pos] -= f.coeff / x[1]
				}
			},
			Hess: func(x []float64, h [][]float64) {
				for i := range h {
					for j := range h[i] {
						h[i][j] = 0
					}
				}
				load := -konst
				for _, f := range fos {
					load += f.coeff * x[f.pos]
				}
				s2 := x[1] * x[1]
				h[1][1] = -2 * load / (s2 * x[1])
				for _, f := range fos {
					h[1][f.pos] += f.coeff / s2
					h[f.pos][1] += f.coeff / s2
				}
			},
		}
	}
	return nlp.Element{
		Vars: vars,
		Eval: func(x []float64) float64 {
			v := x[0]*x[1] - tint*x[1] + konst
			for _, f := range fos {
				v -= f.coeff * x[f.pos]
			}
			return v
		},
		Grad: func(x []float64, g []float64) {
			for i := range g {
				g[i] = 0
			}
			g[0] = x[1]
			g[1] = x[0] - tint
			for _, f := range fos {
				g[f.pos] -= f.coeff
			}
		},
		Hess: func(_ []float64, h [][]float64) {
			for i := range h {
				for j := range h[i] {
					h[i][j] = 0
				}
			}
			h[0][1], h[1][0] = 1, 1
		},
	}
}

// sigmaModelElement builds sT - f(muT) = 0 (eq 16).
func sigmaModelElement(sm delay.SigmaModel, sTVar, muTVar int) nlp.Element {
	return nlp.Element{
		Vars: []int{sTVar, muTVar},
		Eval: func(x []float64) float64 { return x[0] - sm.Sigma(x[1]) },
		Grad: func(x []float64, g []float64) {
			g[0] = 1
			g[1] = -sm.DSigma(x[1])
		},
		Hess: func(x []float64, h [][]float64) {
			h[0][0], h[0][1], h[1][0] = 0, 0, 0
			h[1][1] = -sm.D2Sigma(x[1])
		},
	}
}

// arrivalSigmaElement builds the sigma half of eq 18c,
// sA^2 = sU^2 + sT^2, in the *defining* form
//
//	sA - sqrt(sU^2 + sT^2) = 0
//
// rather than the squared difference. The squared form's gradient in
// sA is 2*sA, which vanishes exactly at the lower bound sA = 0; an
// objective that rewards small circuit sigma can then pin sA at zero
// with a permanent constraint violation no penalty can remove. The
// norm form has gradient 1 in sA everywhere, so the defined variable
// always feels the restoring force (the max-moment elements share this
// property through their -1 gradient in the auxiliary). A negative U
// sigma constant marks a variable U.
func arrivalSigmaElement(sAVar, sUVar, sTVar int, sUConst float64) nlp.Element {
	const rFloor = 1e-12
	if sUVar >= 0 {
		return nlp.Element{
			Vars: []int{sAVar, sUVar, sTVar},
			Eval: func(x []float64) float64 {
				return x[0] - math.Hypot(x[1], x[2])
			},
			Grad: func(x []float64, g []float64) {
				r := math.Max(math.Hypot(x[1], x[2]), rFloor)
				g[0] = 1
				g[1] = -x[1] / r
				g[2] = -x[2] / r
			},
			Hess: func(x []float64, h [][]float64) {
				for i := range h {
					for j := range h[i] {
						h[i][j] = 0
					}
				}
				r := math.Hypot(x[1], x[2])
				if r < rFloor {
					return
				}
				r3 := r * r * r
				h[1][1] = -x[2] * x[2] / r3
				h[2][2] = -x[1] * x[1] / r3
				h[1][2] = x[1] * x[2] / r3
				h[2][1] = h[1][2]
			},
		}
	}
	u := sUConst
	return nlp.Element{
		Vars: []int{sAVar, sTVar},
		Eval: func(x []float64) float64 { return x[0] - math.Hypot(u, x[1]) },
		Grad: func(x []float64, g []float64) {
			r := math.Max(math.Hypot(u, x[1]), rFloor)
			g[0] = 1
			g[1] = -x[1] / r
		},
		Hess: func(x []float64, h [][]float64) {
			h[0][0], h[0][1], h[1][0] = 0, 0, 0
			r := math.Hypot(u, x[1])
			if r < rFloor {
				h[1][1] = 0
				return
			}
			h[1][1] = -u * u / (r * r * r)
		},
	}
}

// solveFullSpace builds and solves the paper's eq 17/18 formulation.
// ctx cancels the solve at ALM iteration boundaries.
func solveFullSpace(ctx context.Context, m *delay.Model, spec Spec) (*nlp.Result, []float64, error) {
	p, l, x0, err := buildFullSpace(m, spec)
	if err != nil {
		return nil, nil, err
	}
	opt := spec.Solver
	if opt.Workers == 0 {
		// Spec.Workers drives the NLP element evaluation engine too
		// (an explicitly set Solver.Workers wins).
		opt.Workers = spec.Workers
	}
	if opt.Recorder == nil {
		opt.Recorder = spec.Recorder
	}
	if spec.WrapProblem != nil {
		p = spec.WrapProblem(p)
	}
	res, err := nlp.SolveCtx(ctx, p, x0, opt)
	if err != nil {
		return nil, nil, err
	}
	S := m.UnitSizes()
	for _, id := range m.G.C.GateIDs() {
		S[id] = res.X[l.s[id]]
	}
	return res, S, nil
}

// buildFullSpace constructs the eq 17/18 problem, its layout and the
// feasible warm-start point.
func buildFullSpace(m *delay.Model, spec Spec) (*nlp.Problem, *fsLayout, []float64, error) {
	g := m.G
	gates := g.C.GateIDs()
	if len(gates) == 0 {
		return nil, nil, nil, fmt.Errorf("sizing: circuit has no gates")
	}
	l := buildLayout(m)

	lower := make([]float64, l.nVars)
	upper := make([]float64, l.nVars)
	for i := range lower {
		lower[i] = math.Inf(-1)
		upper[i] = math.Inf(1)
	}
	for _, id := range gates {
		lower[l.s[id]] = 1
		upper[l.s[id]] = m.Limit
		lower[l.sT[id]] = 0 // standard deviations are physical
		lower[l.sA[id]] = 0
	}
	for _, aux := range l.gateAux {
		for j := 1; j < len(aux); j += 2 {
			lower[aux[j]] = 0
		}
	}
	for j := 1; j < len(l.outAux); j += 2 {
		lower[l.outAux[j]] = 0
	}

	p := &nlp.Problem{N: l.nVars, Lower: lower, Upper: upper}

	// Per-gate constraints.
	for _, id := range gates {
		nd := &g.C.Nodes[id]
		name := nd.Name
		p.EqCons = append(p.EqCons,
			nlp.Constraint{Name: "delay:" + name, El: delayElement(m, l, id, spec.DelayForm)},
			nlp.Constraint{Name: "sigma:" + name, El: sigmaModelElement(m.Sigma, l.sT[id], l.muT[id])},
		)
		// Fanin fold (eq 18b).
		var u operand
		if len(nd.Fanin) == 1 {
			u = l.arrivalOperand(m, nd.Fanin[0], m.PinOff(id, 0))
		} else {
			aux := l.gateAux[id]
			a := l.arrivalOperand(m, nd.Fanin[0], m.PinOff(id, 0))
			for j, f := range nd.Fanin[1:] {
				b := l.arrivalOperand(m, f, m.PinOff(id, j+1))
				muAux, sAux := aux[2*j], aux[2*j+1]
				muEl, sEl := maxElements(a, b, muAux, sAux)
				p.EqCons = append(p.EqCons,
					nlp.Constraint{Name: fmt.Sprintf("maxmu:%s/%d", name, j), El: muEl},
					nlp.Constraint{Name: fmt.Sprintf("maxs:%s/%d", name, j), El: sEl},
				)
				a = varOperand(muAux, sAux)
			}
			u = a
		}
		// Arrival addition (eq 18c): mean is linear, sigma in squared
		// form; U may be constant.
		if u.muVar >= 0 {
			p.EqCons = append(p.EqCons,
				nlp.Constraint{Name: "arrmu:" + name,
					El: nlp.LinearElement([]int{l.muA[id], u.muVar, l.muT[id]}, []float64{1, -1, -1}, -u.shift)},
				nlp.Constraint{Name: "arrs:" + name,
					El: arrivalSigmaElement(l.sA[id], u.sVar, l.sT[id], -1)},
			)
		} else {
			p.EqCons = append(p.EqCons,
				nlp.Constraint{Name: "arrmu:" + name,
					El: nlp.LinearElement([]int{l.muA[id], l.muT[id]}, []float64{1, -1}, -u.mu)},
				nlp.Constraint{Name: "arrs:" + name,
					El: arrivalSigmaElement(l.sA[id], -1, l.sT[id], u.sigma)},
			)
		}
	}

	// Output fold (eq 18a).
	outs := g.C.Outputs
	if len(outs) > 1 {
		a := varOperand(l.muA[outs[0]], l.sA[outs[0]])
		for j, o := range outs[1:] {
			b := varOperand(l.muA[o], l.sA[o])
			muAux, sAux := l.outAux[2*j], l.outAux[2*j+1]
			muEl, sEl := maxElements(a, b, muAux, sAux)
			p.EqCons = append(p.EqCons,
				nlp.Constraint{Name: fmt.Sprintf("outmaxmu:%d", j), El: muEl},
				nlp.Constraint{Name: fmt.Sprintf("outmaxs:%d", j), El: sEl},
			)
			a = varOperand(muAux, sAux)
		}
	}

	// Objective: linear in the sigma parameterization.
	switch spec.Objective.Kind {
	case ObjMuPlusKSigma:
		if spec.Objective.K == 0 {
			p.Objective = []nlp.Element{nlp.LinearElement([]int{l.muTmax}, []float64{1}, 0)}
		} else {
			p.Objective = []nlp.Element{nlp.LinearElement(
				[]int{l.muTmax, l.sTmax}, []float64{1, spec.Objective.K}, 0)}
		}
	case ObjArea, ObjWeightedArea:
		vars := make([]int, len(gates))
		coeffs := make([]float64, len(gates))
		for i, id := range gates {
			vars[i] = l.s[id]
			coeffs[i] = 1
			if spec.Objective.Kind == ObjWeightedArea {
				if spec.Weights == nil {
					return nil, nil, nil, fmt.Errorf("sizing: weighted area needs Spec.Weights")
				}
				coeffs[i] = spec.Weights[id]
			}
		}
		p.Objective = []nlp.Element{nlp.LinearElement(vars, coeffs, 0)}
	case ObjSigma:
		p.Objective = []nlp.Element{nlp.LinearElement([]int{l.sTmax}, []float64{1}, 0)}
	case ObjNegSigma:
		p.Objective = []nlp.Element{nlp.LinearElement([]int{l.sTmax}, []float64{-1}, 0)}
	default:
		return nil, nil, nil, fmt.Errorf("sizing: unknown objective %v", spec.Objective)
	}

	// Timing constraints, all linear.
	for _, c := range spec.Constraints {
		switch c.Kind {
		case ConMuPlusKSigmaLE:
			el := nlp.LinearElement([]int{l.muTmax}, []float64{1}, -c.Bound)
			if c.K != 0 {
				el = nlp.LinearElement([]int{l.muTmax, l.sTmax}, []float64{1, c.K}, -c.Bound)
			}
			p.IneqCons = append(p.IneqCons, nlp.Constraint{Name: c.String(), El: el})
		case ConMuEQ:
			p.EqCons = append(p.EqCons, nlp.Constraint{
				Name: c.String(),
				El:   nlp.LinearElement([]int{l.muTmax}, []float64{1}, -c.Bound),
			})
		default:
			return nil, nil, nil, fmt.Errorf("sizing: unknown constraint %v", c)
		}
	}

	start := spec.Start
	if start == nil && spec.Objective.Kind == ObjNegSigma {
		// See perturbStart: symmetric starts trap the sigma
		// maximization in symmetric stationary points.
		start = m.UnitSizes()
		perturbStart(start, m.Limit)
	}
	return p, l, warmStart(m, l, start), nil
}

// warmStart builds an initial point that satisfies every equality
// constraint exactly: speed factors from start (or all ones) and all
// moment variables from a forward SSTA sweep at those factors,
// re-folding the maxima to fill the auxiliaries.
func warmStart(m *delay.Model, l *fsLayout, start []float64) []float64 {
	g := m.G
	S := m.UnitSizes()
	if start != nil {
		copy(S, start)
		m.ClampSizes(S)
	}
	r := ssta.Analyze(m, S, false)
	x := make([]float64, l.nVars)
	arr := func(f netlist.NodeID, off float64) stats.MV {
		mv := r.Arrival[f]
		if g.C.Nodes[f].Kind == netlist.KindInput {
			mv = m.Arrival[f]
		}
		return stats.MV{Mu: mv.Mu + off, Var: mv.Var}
	}
	for _, id := range g.C.GateIDs() {
		x[l.s[id]] = S[id]
		mv := r.GateDelay[id]
		x[l.muT[id]] = mv.Mu
		x[l.sT[id]] = mv.Sigma()
		x[l.muA[id]] = r.Arrival[id].Mu
		x[l.sA[id]] = r.Arrival[id].Sigma()
		fanin := g.C.Nodes[id].Fanin
		if len(fanin) >= 2 {
			aux := l.gateAux[id]
			acc := arr(fanin[0], m.PinOff(id, 0))
			for j, f := range fanin[1:] {
				acc = stats.Max2(acc, arr(f, m.PinOff(id, j+1)))
				x[aux[2*j]] = acc.Mu
				x[aux[2*j+1]] = acc.Sigma()
			}
		}
	}
	outs := g.C.Outputs
	if len(outs) > 1 {
		acc := r.Arrival[outs[0]]
		for j, o := range outs[1:] {
			acc = stats.Max2(acc, r.Arrival[o])
			x[l.outAux[2*j]] = acc.Mu
			x[l.outAux[2*j+1]] = acc.Sigma()
		}
	}
	return x
}
