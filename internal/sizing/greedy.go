package sizing

import (
	"context"
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/ssta"
	"repro/internal/telemetry"
)

// SizeGreedy is a TILOS-style sensitivity heuristic (Fishburn &
// Dunlop's classic approach, the pre-LP state of the art the paper's
// reference [3] improved on): starting from minimum sizes, repeatedly
// bump the speed factor of the gate with the best delay-reduction per
// unit area until the mu + k*sigma quantile meets the deadline. The
// exact adjoint gradient makes the sensitivity ranking cheap — one
// taped sweep per step instead of one sweep per gate — and the
// persistent incremental engine (ssta.Inc) makes each step cheaper
// still: a bump re-evaluates only the changed cone and the backward
// pass reuses the engine's tape slabs allocation-free.
//
// It is provided as a baseline: fast and simple, but greedy — the NLP
// formulations reach the same deadlines with less area (measured in
// the package tests).
type GreedyOptions struct {
	// K and Deadline define the target: mu + K*sigma <= Deadline.
	K, Deadline float64
	// Step is the multiplicative bump per iteration (default 1.05).
	Step float64
	// MaxSteps bounds the iterations (default 200 * gate count).
	MaxSteps int
	// Workers bounds the parallelism of the SSTA sweeps: <= 0 uses
	// one worker per CPU, 1 forces the serial sweep.
	Workers int
	// Weights optionally holds per-gate area weights (indexed by
	// NodeID): the sensitivity rank divides each gate's quantile
	// gradient by its weight, so a power-weighted spec degrading to
	// greedy optimizes the same weighted metric the NLP would have.
	// Nil means uniform weights (plain area).
	Weights []float64
	// FullSweeps forces the legacy one-fresh-taped-sweep-per-step
	// path instead of the incremental engine. The two paths are
	// bit-identical (asserted in tests); this is the benchmark and
	// equivalence-test escape hatch.
	FullSweeps bool
	// Recorder, when non-nil, receives one deterministic "greedy.step"
	// event per sensitivity step, a final "greedy.result" event, and
	// the incremental engine's "inc.update" events (or, with
	// FullSweeps, the SSTA sweep spans). Nil disables instrumentation
	// at zero cost.
	Recorder telemetry.Recorder
}

// weightFloor keeps the weighted sensitivity rank finite when a gate's
// weight underflows to (near) zero — a zero-cost gate would otherwise
// produce an infinite score and starve every other candidate.
const weightFloor = 1e-12

// GreedyResult reports the heuristic sizing.
type GreedyResult struct {
	S                 []float64
	MuTmax, SigmaTmax float64
	SumS              float64
	Steps             int
	// Met reports whether the deadline was reached (false when every
	// gate is at the limit and the target is still missed).
	Met bool
}

// SizeGreedy runs the sensitivity heuristic.
func SizeGreedy(m *delay.Model, opt GreedyOptions) (*GreedyResult, error) {
	return SizeGreedyCtx(context.Background(), m, opt)
}

// cancelled polls a context's done channel without blocking.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// SizeGreedyCtx runs the sensitivity heuristic under a cancellation
// context. Cancellation is polled once per sensitivity step: a
// cancelled run stops bumping gates but still clamps and analyzes the
// partial sizing, so the caller always receives a valid (if
// unfinished) result — the greedy sizer is the bottom of the
// degradation ladder and must not fail.
func SizeGreedyCtx(ctx context.Context, m *delay.Model, opt GreedyOptions) (*GreedyResult, error) {
	if opt.Deadline <= 0 {
		return nil, fmt.Errorf("sizing: greedy needs a positive deadline, got %v", opt.Deadline)
	}
	if opt.Step == 0 {
		opt.Step = 1.05
	}
	if opt.Step <= 1 {
		return nil, fmt.Errorf("sizing: greedy step must exceed 1, got %v", opt.Step)
	}
	gates := m.G.C.GateIDs()
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 200 * len(gates)
	}

	done := ctx.Done()
	S := m.UnitSizes()
	res := &GreedyResult{}
	rec := opt.Recorder
	stack := telemetry.NewStack(rec)
	stack.Push("greedy")
	// The steady-state loop runs on the persistent incremental engine:
	// each bump dirties only the gate and its fanin drivers, Update
	// re-evaluates the changed cone, and the adjoint pass reuses the
	// refreshed tape slabs — per-step allocations are zero (with
	// Workers == 1) instead of a fresh O(V) slab set per sweep.
	var inc *ssta.Inc
	if !opt.FullSweeps {
		inc = ssta.NewInc(m, S, ssta.IncOptions{Workers: opt.Workers, Recorder: rec})
	}
	for ; res.Steps < opt.MaxSteps; res.Steps++ {
		if cancelled(done) {
			break
		}
		stack.PopTo(1) // close the previous step's scope
		stack.Push("greedy.step")
		var phi float64
		var grad []float64
		stack.Push("greedy.grad")
		if inc != nil {
			phi, grad = inc.GradMuPlusKSigma(opt.K)
		} else {
			phi, grad = ssta.GradMuPlusKSigmaWorkersRec(m, S, opt.K, opt.Workers, rec)
		}
		stack.Pop()
		if rec != nil {
			rec.Event("greedy", "step",
				telemetry.I("step", res.Steps),
				telemetry.F("phi", phi),
			)
		}
		if phi <= opt.Deadline {
			res.Met = true
			break
		}
		// Pick the gate with the best quantile gain per unit of
		// (weighted) area among those with headroom. A relative bump
		// dS = S*(Step-1) changes the quantile by about grad*S*(Step-1)
		// and costs w*S*(Step-1) of weighted area, so the
		// per-unit-area score is grad/w — which reduces to the raw
		// gradient only when the weights are uniform.
		best := -1
		var bestScore float64
		for _, id := range gates {
			if S[id] >= m.Limit-1e-12 {
				continue
			}
			score := grad[id] // d phi / d S; negative helps
			if opt.Weights != nil {
				w := opt.Weights[id]
				if w < weightFloor {
					w = weightFloor
				}
				score /= w
			}
			if score < bestScore {
				bestScore = score
				best = int(id)
			}
		}
		if best < 0 {
			break // everything at the limit
		}
		S[best] *= opt.Step
		if S[best] > m.Limit {
			S[best] = m.Limit
		}
		if inc != nil {
			inc.SetSize(netlist.NodeID(best), S[best])
		}
	}
	stack.PopTo(1)
	stack.Push("greedy.finalize")
	m.ClampSizes(S)
	r := ssta.AnalyzeWorkers(m, S, false, opt.Workers)
	stack.PopTo(0)
	res.S = S
	res.MuTmax = r.Tmax.Mu
	res.SigmaTmax = r.Tmax.Sigma()
	res.SumS = m.SumSizes(S)
	res.Met = res.Met || res.MuTmax+opt.K*res.SigmaTmax <= opt.Deadline
	if rec != nil {
		met := 0.0
		if res.Met {
			met = 1
		}
		rec.Event("greedy", "result",
			telemetry.I("steps", res.Steps),
			telemetry.F("mu", res.MuTmax),
			telemetry.F("sigma", res.SigmaTmax),
			telemetry.F("area", res.SumS),
			telemetry.F("met", met),
		)
	}
	return res, nil
}
