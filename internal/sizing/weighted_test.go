package sizing

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/ssta"
)

func TestWeightedAreaRequiresWeights(t *testing.T) {
	m := treeModel(t)
	_, err := Size(m, Spec{Objective: MinWeightedArea()})
	if err == nil {
		t.Error("missing weights accepted (reduced)")
	}
	_, err = Size(m, Spec{Objective: MinWeightedArea(), Formulation: FullSpace})
	if err == nil {
		t.Error("missing weights accepted (full-space)")
	}
}

func TestWeightedAreaUnitWeightsMatchArea(t *testing.T) {
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (unit.Mu + fast.MuTmax)

	w := make([]float64, len(m.G.C.Nodes))
	for i := range w {
		w[i] = 1
	}
	a, err := Size(m, Spec{Objective: MinArea(), Constraints: []Constraint{MuEQ(d)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Size(m, Spec{
		Objective: MinWeightedArea(), Weights: w,
		Constraints: []Constraint{MuEQ(d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !close(a.SumS, b.SumS, 1e-3) {
		t.Errorf("unit weights: %v vs plain area %v", b.SumS, a.SumS)
	}
}

func TestPowerWeightedSizingAvoidsActiveGates(t *testing.T) {
	// Under a power objective, a gate with a hot (high-activity)
	// output should be kept smaller than under the plain area
	// objective, with slack shifted to the colder gates. Build a
	// small circuit with deliberately unequal activities: an inverter
	// chain where activities stay 0.5 versus a NAND cone where they
	// decay.
	m := delay.MustBind(netlist.MustCompile(netlist.Apex2Like()), delay.Default())
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (unit.Mu + fast.MuTmax)

	w, err := power.Weights(m)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Size(m, Spec{Objective: MinArea(), Constraints: []Constraint{DelayLE(0, d)}})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := Size(m, Spec{
		Objective: MinWeightedArea(), Weights: w,
		Constraints: []Constraint{DelayLE(0, d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both must meet the deadline.
	if plain.MuTmax > d+1e-3 || pw.MuTmax > d+1e-3 {
		t.Fatalf("deadline missed: %v / %v vs %v", plain.MuTmax, pw.MuTmax, d)
	}
	// The power-weighted solution must cost no more *weighted* area
	// than the plain solution (it optimizes that metric).
	wcost := func(S []float64) float64 {
		var v float64
		for _, id := range m.G.C.GateIDs() {
			v += w[id] * S[id]
		}
		return v
	}
	if wcost(pw.S) > wcost(plain.S)+1e-6 {
		t.Errorf("weighted cost %v above plain %v", wcost(pw.S), wcost(plain.S))
	}
	// And the zero-delay power estimate should not be worse.
	pPlain, _ := power.Estimate(m, plain.S)
	pPW, _ := power.Estimate(m, pw.S)
	if pPW > pPlain*1.02 {
		t.Errorf("power-weighted sizing used more power: %v vs %v", pPW, pPlain)
	}
}
