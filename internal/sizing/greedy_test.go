package sizing

import (
	"testing"

	"repro/internal/ssta"
)

func TestGreedyMeetsDeadline(t *testing.T) {
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMuPlusKSigma(3)})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (fast.MuTmax + 3*fast.SigmaTmax + unit.Mu + 3*unit.Sigma())
	out, err := SizeGreedy(m, GreedyOptions{K: 3, Deadline: d})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Met {
		t.Fatalf("greedy missed feasible deadline %v: reached %v",
			d, out.MuTmax+3*out.SigmaTmax)
	}
	if q := out.MuTmax + 3*out.SigmaTmax; q > d+1e-9 {
		t.Errorf("quantile %v above deadline %v", q, d)
	}
	for _, id := range m.G.C.GateIDs() {
		if out.S[id] < 1-1e-9 || out.S[id] > m.Limit+1e-9 {
			t.Errorf("S out of bounds: %v", out.S[id])
		}
	}
}

func TestGreedyVsNLPArea(t *testing.T) {
	// The NLP must be at least as area-efficient as the greedy
	// heuristic at the same deadline (that is the point of solving
	// the problem exactly), and the greedy result should still be in
	// the same ballpark (within ~25%).
	m := treeModel(t)
	unit := ssta.Analyze(m, m.UnitSizes(), false).Tmax
	fast, err := Size(m, Spec{Objective: MinMu()})
	if err != nil {
		t.Fatal(err)
	}
	d := 0.5 * (unit.Mu + fast.MuTmax)

	greedy, err := SizeGreedy(m, GreedyOptions{K: 0, Deadline: d, Step: 1.02})
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.Met {
		t.Fatalf("greedy missed deadline")
	}
	nlpOut, err := Size(m, Spec{
		Objective:   MinArea(),
		Constraints: []Constraint{DelayLE(0, d)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nlpOut.SumS > greedy.SumS+1e-6 {
		t.Errorf("NLP area %v worse than greedy %v", nlpOut.SumS, greedy.SumS)
	}
	if greedy.SumS > 1.25*nlpOut.SumS {
		t.Errorf("greedy area %v too far above NLP %v", greedy.SumS, nlpOut.SumS)
	}
}

func TestGreedyInfeasibleDeadline(t *testing.T) {
	m := treeModel(t)
	out, err := SizeGreedy(m, GreedyOptions{K: 0, Deadline: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Met {
		t.Error("impossible deadline reported met")
	}
	// Everything should be driven to the limit trying.
	if out.SumS < 20.9 {
		t.Errorf("greedy gave up early: area %v", out.SumS)
	}
}

func TestGreedyOptionValidation(t *testing.T) {
	m := treeModel(t)
	if _, err := SizeGreedy(m, GreedyOptions{K: 0, Deadline: 0}); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := SizeGreedy(m, GreedyOptions{K: 0, Deadline: 5, Step: 0.9}); err == nil {
		t.Error("shrinking step accepted")
	}
}
