package sizing

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/nlp"
)

// Solver benchmarks on a >=1000-gate generated netlist. The iteration
// caps hold the work per solve fixed, so the numbers compare engine
// configurations rather than convergence luck. On a single-CPU host
// the workers=N rows report the worker pool's dispatch overhead, not a
// speedup; the results are bit-identical in either configuration.

func benchWorkerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1, 2}
}

func benchmarkSolver(b *testing.B, method nlp.Method, form Formulation) {
	m := genModel(b, 1200)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := Size(m, Spec{
					Objective:   MinMuPlusKSigma(1),
					Formulation: form,
					Solver:      nlp.Options{Method: method, MaxOuter: 2, MaxInner: 10},
					Workers:     w,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveFullNewton1200(b *testing.B) {
	benchmarkSolver(b, nlp.NewtonCG, FullSpace)
}

func BenchmarkSolveFullLBFGS1200(b *testing.B) {
	benchmarkSolver(b, nlp.LBFGS, FullSpace)
}

func BenchmarkSolveReducedLBFGS1200(b *testing.B) {
	benchmarkSolver(b, nlp.LBFGS, Reduced)
}
