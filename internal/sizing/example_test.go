package sizing_test

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/sizing"
)

// Size the paper's Figure 3 tree for minimum mean delay.
func ExampleSize() {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	out, err := sizing.Size(m, sizing.Spec{Objective: sizing.MinMu()})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mu = %.2f, area = %.1f, %v\n", out.MuTmax, out.SumS, out.Solver.Status)
	// Output:
	// mu = 5.39, area = 21.0, converged
}

// Minimum area under a 99.8%-yield deadline: the paper's headline use.
func ExampleSize_yieldConstraint() {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	out, err := sizing.Size(m, sizing.Spec{
		Objective:   sizing.MinArea(),
		Constraints: []sizing.Constraint{sizing.DelayLE(3, 8.0)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mu+3sigma = %.2f (deadline 8), area = %.2f\n",
		out.MuTmax+3*out.SigmaTmax, out.SumS)
	// Output:
	// mu+3sigma = 8.00 (deadline 8), area = 12.48
}
