package sizing

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/simplex"
	"repro/internal/ssta"
)

// This file implements the deterministic LP-based sizing baseline in
// the spirit of the paper's reference [3] (Berkelaar & Jess, EDAC
// 1990), the method the statistical formulation supersedes. Delays are
// deterministic (sigma ignored); the convex 1/S delay dependence is
// lower-bounded by tangent cuts so that arrival-time propagation
// becomes linear, and the load each gate drives is taken from the
// previous iterate's speed factors, giving a successive-LP scheme that
// converges in a few rounds.
//
// The statistical and deterministic sizings can then be compared on
// the mu + k*sigma metric the paper cares about: the deterministic
// baseline meets its mean target but has no handle on the delay
// uncertainty.

// LPBaselineOptions tunes the successive-LP baseline.
type LPBaselineOptions struct {
	// Deadline is the required deterministic circuit delay.
	Deadline float64
	// Tangents is the number of tangent cuts approximating 1/S over
	// [1, limit] (default 6).
	Tangents int
	// MaxRounds bounds the successive-LP iterations (default 16).
	MaxRounds int
	// Tol is the convergence threshold on the speed-factor change
	// between rounds (default 1e-4).
	Tol float64
}

// LPBaselineResult reports the deterministic LP sizing.
type LPBaselineResult struct {
	// S holds the speed factors indexed by NodeID.
	S []float64
	// SumS is the area measure.
	SumS float64
	// DetDelay is the deterministic circuit delay at S.
	DetDelay float64
	// Rounds is the number of successive-LP rounds used.
	Rounds int
	// Pivots totals simplex pivots across rounds.
	Pivots int
}

// SizeLPBaseline minimizes the sum of speed factors subject to a
// deterministic delay constraint, reference-[3] style.
func SizeLPBaseline(m *delay.Model, opt LPBaselineOptions) (*LPBaselineResult, error) {
	if opt.Tangents == 0 {
		opt.Tangents = 6
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 16
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-4
	}
	if opt.Deadline <= 0 {
		return nil, fmt.Errorf("sizing: LP baseline needs a positive deadline, got %v", opt.Deadline)
	}
	g := m.G
	gates := g.C.GateIDs()
	if len(gates) == 0 {
		return nil, fmt.Errorf("sizing: circuit has no gates")
	}

	// Feasibility pre-check at the fastest sizing.
	fastest := m.UnitSizes()
	for _, id := range gates {
		fastest[id] = m.Limit
	}
	if best := ssta.DetAnalyze(m, fastest).Tmax; best > opt.Deadline+1e-9 {
		return nil, fmt.Errorf("sizing: deadline %v infeasible (fastest deterministic delay %v)",
			opt.Deadline, best)
	}

	// Tangent points for the convex r(S) = 1/S on [1, limit]:
	// 1/S >= 2/s_k - S/s_k^2 with equality at s_k.
	tangents := make([]float64, opt.Tangents)
	for k := range tangents {
		f := float64(k) / float64(opt.Tangents-1)
		tangents[k] = 1 + f*(m.Limit-1)
	}

	S := m.UnitSizes()
	res := &LPBaselineResult{}
	// The tangent cuts lower-bound the true delay, so the LP can
	// overshoot the deadline slightly; target tracks the overshoot
	// and retightens.
	target := opt.Deadline
	for round := 0; round < opt.MaxRounds; round++ {
		res.Rounds = round + 1
		lp := simplex.NewLP()

		// Variables: speed factor per gate, arrival per gate output.
		sVar := make(map[netlist.NodeID]int, len(gates))
		aVar := make(map[netlist.NodeID]int, len(gates))
		for _, id := range gates {
			sVar[id] = lp.AddVar("S:"+g.C.Nodes[id].Name, 1, 1, m.Limit)
		}
		for _, id := range gates {
			aVar[id] = lp.AddVar("a:"+g.C.Nodes[id].Name, 0, 0, math.Inf(1))
		}

		// Arrival constraints: for each gate and each fanin,
		// a_g >= a_f + t_int + c*load_g*(2/s_k - S_g/s_k^2)
		// with load_g frozen at the previous iterate.
		for _, id := range gates {
			load := m.Load(id, S)
			for _, f := range g.C.Nodes[id].Fanin {
				for _, sk := range tangents {
					// a_g - a_f + (c*load/s_k^2) * S_g >= t_int + 2c*load/s_k (+ input arrival)
					coeffs := map[int]float64{
						aVar[id]: 1,
						sVar[id]: m.Coef * load / (sk * sk),
					}
					rhs := m.TInt[id] + 2*m.Coef*load/sk
					if g.C.Nodes[f].Kind == netlist.KindGate {
						coeffs[aVar[f]] = -1
					} else {
						rhs += m.Arrival[f].Mu
					}
					lp.Constrain(coeffs, ">=", rhs)
				}
			}
		}
		// Deadline on every primary output.
		for _, o := range g.C.Outputs {
			lp.Constrain(map[int]float64{aVar[o]: 1}, "<=", target)
		}

		lpRes, sol, err := lp.Solve()
		if err != nil {
			return nil, err
		}
		res.Pivots += lpRes.Pivots
		if lpRes.Status != simplex.Optimal {
			return nil, fmt.Errorf("sizing: LP baseline round %d: %v", round+1, lpRes.Status)
		}

		// Extract and measure movement.
		var move float64
		for _, id := range gates {
			nv := sol[sVar[id]]
			if d := math.Abs(nv - S[id]); d > move {
				move = d
			}
			S[id] = nv
		}
		// Steer the internal target so the *true* delay lands on the
		// requested deadline: the tangent cuts and the frozen loads
		// both bias the LP's delay estimate, in either direction.
		trueDelay := ssta.DetAnalyze(m, S).Tmax
		gap := opt.Deadline - trueDelay
		switch {
		case gap < -1e-9:
			target += 1.05 * gap // overshoot: tighten
			continue
		case gap > 1e-6 && target+0.9*gap <= opt.Deadline:
			target += 0.9 * gap // conservative: relax back
			continue
		}
		if move < opt.Tol {
			break
		}
	}
	m.ClampSizes(S)
	res.S = S
	res.SumS = m.SumSizes(S)
	res.DetDelay = ssta.DetAnalyze(m, S).Tmax
	return res, nil
}
