package sizing

import (
	"bytes"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/telemetry"
)

// sizeTrace runs one full sizing solve with a JSONL trace attached and
// returns the trace bytes together with the outcome.
func sizeTrace(t *testing.T, spec Spec, workers int) ([]byte, *Outcome) {
	t.Helper()
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	var buf bytes.Buffer
	w := telemetry.NewTraceWriter(&buf)
	spec.Workers = workers
	spec.Recorder = w
	out, err := Size(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), out
}

// TestSizeTraceDeterministic is the end-to-end acceptance check of the
// telemetry layer: sizing tree7 under a binding timing constraint
// emits one alm.outer event per outer iteration carrying the merit,
// KKT residual and constraint violation, and the whole JSONL stream is
// byte-identical for serial and parallel runs.
func TestSizeTraceDeterministic(t *testing.T) {
	spec := Spec{
		Objective:   MinArea(),
		Constraints: []Constraint{DelayLE(3, 8)},
		Formulation: Reduced,
		Solver:      nlp.Options{Method: nlp.LBFGS},
	}
	serial, out := sizeTrace(t, spec, 1)
	parallel, _ := sizeTrace(t, spec, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}

	events, err := telemetry.ParseTrace(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(events); err != nil {
		t.Fatal(err)
	}

	outer := 0
	sawSizing := false
	for i := range events {
		ev := &events[i]
		switch ev.Scope + "." + ev.Name {
		case "alm.outer":
			outer++
			for _, k := range []string{"merit", "kkt", "viol"} {
				if _, ok := ev.Get(k); !ok {
					t.Errorf("alm.outer event %d missing field %q", outer, k)
				}
			}
		case "sizing.result":
			sawSizing = true
		}
	}
	if outer != out.Solver.Outer {
		t.Errorf("trace has %d alm.outer events, solver reports %d outer iterations",
			outer, out.Solver.Outer)
	}
	if outer == 0 {
		t.Error("constraint never bound: no alm.outer events (tighten the deadline)")
	}
	if !sawSizing {
		t.Error("trace has no sizing.result event")
	}
}

// TestGreedyTraceDeterministic pins the greedy baseline's event stream
// across worker counts.
func TestGreedyTraceDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
		var buf bytes.Buffer
		w := telemetry.NewTraceWriter(&buf)
		if _, err := SizeGreedy(m, GreedyOptions{
			K: 3, Deadline: 8, Workers: workers, Recorder: w,
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := run(1), run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("greedy trace differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
	events, err := telemetry.ParseTrace(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(events); err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Scope != "greedy" || last.Name != "result" {
		t.Errorf("last event is %s.%s, want greedy.result", last.Scope, last.Name)
	}
}
