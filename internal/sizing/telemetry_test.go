package sizing

import (
	"bytes"
	"testing"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/telemetry"
)

// sizeTrace runs one full sizing solve with a JSONL trace attached and
// returns the trace bytes together with the outcome.
func sizeTrace(t *testing.T, spec Spec, workers int) ([]byte, *Outcome) {
	t.Helper()
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	var buf bytes.Buffer
	w := telemetry.NewTraceWriter(&buf)
	spec.Workers = workers
	spec.Recorder = w
	out, err := Size(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), out
}

// TestSizeTraceDeterministic is the end-to-end acceptance check of the
// telemetry layer: sizing tree7 under a binding timing constraint
// emits one alm.outer event per outer iteration carrying the merit,
// KKT residual and constraint violation, and the whole JSONL stream is
// byte-identical for serial and parallel runs.
func TestSizeTraceDeterministic(t *testing.T) {
	spec := Spec{
		Objective:   MinArea(),
		Constraints: []Constraint{DelayLE(3, 8)},
		Formulation: Reduced,
		Solver:      nlp.Options{Method: nlp.LBFGS},
	}
	serial, out := sizeTrace(t, spec, 1)
	parallel, _ := sizeTrace(t, spec, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}

	events, err := telemetry.ParseTrace(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(events); err != nil {
		t.Fatal(err)
	}

	outer := 0
	sawSizing := false
	for i := range events {
		ev := &events[i]
		switch ev.Scope + "." + ev.Name {
		case "alm.outer":
			outer++
			for _, k := range []string{"merit", "kkt", "viol"} {
				if _, ok := ev.Get(k); !ok {
					t.Errorf("alm.outer event %d missing field %q", outer, k)
				}
			}
		case "sizing.result":
			sawSizing = true
		}
	}
	if outer != out.Solver.Outer {
		t.Errorf("trace has %d alm.outer events, solver reports %d outer iterations",
			outer, out.Solver.Outer)
	}
	if outer == 0 {
		t.Error("constraint never bound: no alm.outer events (tighten the deadline)")
	}
	if !sawSizing {
		t.Error("trace has no sizing.result event")
	}
}

// TestGreedyTraceDeterministic pins the greedy baseline's event stream
// across worker counts.
func TestGreedyTraceDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
		var buf bytes.Buffer
		w := telemetry.NewTraceWriter(&buf)
		if _, err := SizeGreedy(m, GreedyOptions{
			K: 3, Deadline: 8, Workers: workers, Recorder: w,
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := run(1), run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("greedy trace differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
	events, err := telemetry.ParseTrace(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(events); err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Scope != "greedy" || last.Name != "result" {
		t.Errorf("last event is %s.%s, want greedy.result", last.Scope, last.Name)
	}
}

// TestTraceDeterministicWithObservabilityChain is the PR's central
// acceptance check: with the FULL observability chain attached —
// watchdog middleware in front of a trace writer, a metrics sink with
// span trees aggregating, and the solver's scope stacks pushing — the
// JSONL trace stays byte-identical between workers=1 and workers=4.
// Wall-clock data flows only into the metrics sinks; the event stream
// never sees it.
func TestTraceDeterministicWithObservabilityChain(t *testing.T) {
	run := func(workers int) []byte {
		m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
		var buf bytes.Buffer
		w := telemetry.NewTraceWriter(&buf)
		metrics := telemetry.NewMetrics()
		rec := telemetry.NewWatchdog(telemetry.Multi(w, metrics), telemetry.WatchdogOptions{})
		spec := Spec{
			Objective:   MinArea(),
			Constraints: []Constraint{DelayLE(3, 8)},
			Formulation: Reduced,
			Solver:      nlp.Options{Method: nlp.LBFGS},
			Workers:     workers,
			Recorder:    rec,
		}
		if _, err := Size(m, spec); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if metrics.SpanTree().Empty() {
			t.Fatal("span tree stayed empty: solver scope stacks not wired")
		}
		return buf.Bytes()
	}
	serial, parallel := run(1), run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs between workers=1 and workers=4 with observability chain:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

// TestWatchdogSilentOnTree7 pins the no-false-positive side of the
// solve-health watchdog: a healthy converging solve (and the greedy
// baseline) must not raise solve.stalled.
func TestWatchdogSilentOnTree7(t *testing.T) {
	m := delay.MustBind(netlist.MustCompile(netlist.Tree7()), delay.PaperTree())
	wd := telemetry.NewWatchdog(telemetry.NewMetrics(), telemetry.WatchdogOptions{})
	spec := Spec{
		Objective:   MinArea(),
		Constraints: []Constraint{DelayLE(3, 8)},
		Formulation: Reduced,
		Solver:      nlp.Options{Method: nlp.LBFGS},
		Recorder:    wd,
	}
	if _, err := Size(m, spec); err != nil {
		t.Fatal(err)
	}
	if wd.Stalled() {
		t.Fatalf("watchdog fired on a healthy tree7 solve: %+v", wd.Stalls())
	}

	wd2 := telemetry.NewWatchdog(telemetry.NewMetrics(), telemetry.WatchdogOptions{})
	if _, err := SizeGreedy(m, GreedyOptions{K: 3, Deadline: 8, Recorder: wd2}); err != nil {
		t.Fatal(err)
	}
	if wd2.Stalled() {
		t.Fatalf("watchdog fired on a healthy tree7 greedy run: %+v", wd2.Stalls())
	}
}
