package ad

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// fd computes a central finite difference of f at x.
func fd(f func(float64) float64, x float64) float64 {
	h := 1e-6 * math.Max(1, math.Abs(x))
	return (f(x+h) - f(x-h)) / (2 * h)
}

func TestDualArith(t *testing.T) {
	x := Var(3)
	y := Const(2)

	if r := x.Add(y); r.V != 5 || r.D != 1 {
		t.Errorf("add: %+v", r)
	}
	if r := x.Sub(y); r.V != 1 || r.D != 1 {
		t.Errorf("sub: %+v", r)
	}
	if r := x.Mul(x); r.V != 9 || r.D != 6 {
		t.Errorf("mul: %+v", r)
	}
	if r := y.Div(x); !close(r.V, 2.0/3, 1e-15) || !close(r.D, -2.0/9, 1e-15) {
		t.Errorf("div: %+v", r)
	}
	if r := x.Neg(); r.V != -3 || r.D != -1 {
		t.Errorf("neg: %+v", r)
	}
	if r := x.AddConst(4); r.V != 7 || r.D != 1 {
		t.Errorf("addconst: %+v", r)
	}
	if r := x.MulConst(4); r.V != 12 || r.D != 4 {
		t.Errorf("mulconst: %+v", r)
	}
	if r := x.Sqr(); r.V != 9 || r.D != 6 {
		t.Errorf("sqr: %+v", r)
	}
}

func TestDualElementary(t *testing.T) {
	funcs := []struct {
		name string
		dual func(Dual) Dual
		real func(float64) float64
		xs   []float64
	}{
		{"sqrt", Dual.Sqrt, math.Sqrt, []float64{0.5, 1, 2, 9}},
		{"exp", Dual.Exp, math.Exp, []float64{-2, 0, 1, 3}},
		{"log", Dual.Log, math.Log, []float64{0.1, 1, 5}},
		{"normpdf", Dual.NormPDF,
			func(x float64) float64 { return invSqrt2Pi * math.Exp(-0.5*x*x) },
			[]float64{-2, -0.5, 0, 1.3, 3}},
		{"normcdf", Dual.NormCDF,
			func(x float64) float64 { return 0.5 * math.Erfc(-x/sqrt2) },
			[]float64{-2, -0.5, 0, 1.3, 3}},
	}
	for _, fn := range funcs {
		for _, x := range fn.xs {
			r := fn.dual(Var(x))
			if !close(r.V, fn.real(x), 1e-13) {
				t.Errorf("%s(%v).V = %v, want %v", fn.name, x, r.V, fn.real(x))
			}
			want := fd(fn.real, x)
			if !close(r.D, want, 1e-6) {
				t.Errorf("%s(%v).D = %v, want %v", fn.name, x, r.D, want)
			}
		}
	}
}

func TestDualChainRule(t *testing.T) {
	// f(x) = exp(sqrt(x^2 + 1)) at several points, against FD.
	f := func(x float64) float64 { return math.Exp(math.Sqrt(x*x + 1)) }
	for _, x := range []float64{-1.5, 0, 0.3, 2} {
		r := Var(x).Sqr().AddConst(1).Sqrt().Exp()
		if !close(r.D, fd(f, x), 1e-6) {
			t.Errorf("chain at %v: %v want %v", x, r.D, fd(f, x))
		}
	}
}

func TestHyperDualMatchesDual(t *testing.T) {
	// First-order parts of HyperDual must agree with Dual on a
	// composite expression.
	f := func(x float64) (Dual, HyperDual) {
		d := Var(x).Sqr().AddConst(0.5).Log().NormCDF()
		h := HVar(x, 1, 1).Sqr().AddConst(0.5).Log().NormCDF()
		return d, h
	}
	for _, x := range []float64{0.2, 1, 2.5} {
		d, h := f(x)
		if !close(d.V, h.V, 1e-14) || !close(d.D, h.D1, 1e-13) || !close(d.D, h.D2, 1e-13) {
			t.Errorf("x=%v dual=%+v hyper=%+v", x, d, h)
		}
	}
}

func TestHyperDualSecondDerivative(t *testing.T) {
	// f(x) = x^3: f'' = 6x.
	for _, x := range []float64{-2, 0.5, 3} {
		h := HVar(x, 1, 1)
		r := h.Mul(h).Mul(h)
		if !close(r.D12, 6*x, 1e-12) {
			t.Errorf("d2 x^3 at %v: %v", x, r.D12)
		}
	}
	// f(x) = exp(x): all derivatives exp(x).
	for _, x := range []float64{-1, 0, 2} {
		r := HVar(x, 1, 1).Exp()
		e := math.Exp(x)
		if !close(r.D12, e, 1e-12) {
			t.Errorf("d2 exp at %v: %v want %v", x, r.D12, e)
		}
	}
	// f(x) = 1/x: f'' = 2/x^3.
	for _, x := range []float64{0.5, 2, -3} {
		r := HVar(x, 1, 1).Recip()
		if !close(r.D12, 2/(x*x*x), 1e-12) {
			t.Errorf("d2 1/x at %v: %v", x, r.D12)
		}
	}
	// f(x) = sqrt(x): f'' = -1/(4 x^{3/2}).
	for _, x := range []float64{0.25, 1, 9} {
		r := HVar(x, 1, 1).Sqrt()
		want := -0.25 / math.Pow(x, 1.5)
		if !close(r.D12, want, 1e-12) {
			t.Errorf("d2 sqrt at %v: %v want %v", x, r.D12, want)
		}
	}
	// Phi''(x) = -x phi(x).
	for _, x := range []float64{-1.5, 0, 2} {
		r := HVar(x, 1, 1).NormCDF()
		want := -x * invSqrt2Pi * math.Exp(-0.5*x*x)
		if !close(r.D12, want, 1e-12) {
			t.Errorf("d2 Phi at %v: %v want %v", x, r.D12, want)
		}
	}
}

func TestHyperDualMixedPartial(t *testing.T) {
	// f(x,y) = x^2 * y^3; d2f/dxdy = 6 x y^2.
	f := func(x, y float64) HyperDual {
		hx := HVar(x, 1, 0)
		hy := HVar(y, 0, 1)
		return hx.Sqr().Mul(hy.Mul(hy).Mul(hy))
	}
	for _, p := range [][2]float64{{1, 2}, {-0.5, 3}, {2, -1}} {
		r := f(p[0], p[1])
		want := 6 * p[0] * p[1] * p[1]
		if !close(r.D12, want, 1e-12) {
			t.Errorf("mixed at %v: %v want %v", p, r.D12, want)
		}
	}
}

func TestHyperDualDivIdentity(t *testing.T) {
	f := func(x, y float64) bool {
		x = 0.5 + math.Abs(math.Mod(x, 4))
		y = 0.5 + math.Abs(math.Mod(y, 4))
		a := HVar(x, 1, 1)
		b := HConst(y)
		r := a.Div(b).Mul(b)
		return close(r.V, x, 1e-12) && close(r.D1, 1, 1e-12) && close(r.D12, 0, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGradientHelper(t *testing.T) {
	// f(x0,x1,x2) = x0*x1 + exp(x2).
	f := func(a []HyperDual) HyperDual {
		return a[0].Mul(a[1]).Add(a[2].Exp())
	}
	x := []float64{2, 3, 0.5}
	v, g := Gradient(f, x)
	if !close(v, 6+math.Exp(0.5), 1e-14) {
		t.Errorf("value %v", v)
	}
	want := []float64{3, 2, math.Exp(0.5)}
	for i := range want {
		if !close(g[i], want[i], 1e-13) {
			t.Errorf("g[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestHessianHelper(t *testing.T) {
	// f(x,y) = x^2 y + y^3.
	f := func(a []HyperDual) HyperDual {
		return a[0].Sqr().Mul(a[1]).Add(a[1].Mul(a[1]).Mul(a[1]))
	}
	x := []float64{1.5, -0.5}
	v, g, h := Hessian(f, x)
	wantV := 1.5*1.5*-0.5 + math.Pow(-0.5, 3)
	if !close(v, wantV, 1e-14) {
		t.Errorf("v = %v want %v", v, wantV)
	}
	wantG := []float64{2 * 1.5 * -0.5, 1.5*1.5 + 3*0.25}
	for i := range wantG {
		if !close(g[i], wantG[i], 1e-13) {
			t.Errorf("g[%d] = %v want %v", i, g[i], wantG[i])
		}
	}
	wantH := [][]float64{
		{2 * -0.5, 2 * 1.5},
		{2 * 1.5, 6 * -0.5},
	}
	for i := range wantH {
		for j := range wantH[i] {
			if !close(h[i][j], wantH[i][j], 1e-12) {
				t.Errorf("h[%d][%d] = %v want %v", i, j, h[i][j], wantH[i][j])
			}
		}
	}
}

func TestHessianSymmetry(t *testing.T) {
	f := func(a []HyperDual) HyperDual {
		// A messy composite to stress symmetry.
		return a[0].Mul(a[1]).NormCDF().Add(a[2].Sqr().AddConst(1).Sqrt().Mul(a[0]))
	}
	x := []float64{0.7, -1.2, 0.3}
	_, _, h := Hessian(f, x)
	for i := range h {
		for j := range h[i] {
			if h[i][j] != h[j][i] {
				t.Errorf("asymmetric h[%d][%d]=%v h[%d][%d]=%v", i, j, h[i][j], j, i, h[j][i])
			}
		}
	}
}
