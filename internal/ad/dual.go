// Package ad implements forward-mode automatic differentiation with
// dual and hyper-dual numbers.
//
// The gate-sizing formulation of Jacobs & Berkelaar requires exact
// first and second derivatives of the statistical maximum operator
// (the paper stresses that only analytical derivatives make the
// nonlinear program tractable for a Newton-type solver). The hot-path
// derivatives in internal/stats are hand-derived closed forms; this
// package supplies machine-precision reference derivatives used to
// (a) verify those closed forms in tests and (b) assemble exact
// element Hessians for the full-space formulation, where a closed form
// would be long and error-prone.
//
// Dual carries one directional first derivative; HyperDual carries two
// directions and the mixed second derivative, so a full n-variable
// Hessian needs n(n+1)/2 evaluations.
package ad

import "math"

// Dual is a first-order dual number v + d*eps with eps^2 = 0.
// Propagating one through a function yields the directional derivative
// of the function along the seed direction.
type Dual struct {
	V float64 // value
	D float64 // first derivative along the seeded direction
}

// Const returns a dual constant (zero derivative).
func Const(v float64) Dual { return Dual{V: v} }

// Var returns a dual seeded as the differentiation variable.
func Var(v float64) Dual { return Dual{V: v, D: 1} }

// Add returns a + b.
func (a Dual) Add(b Dual) Dual { return Dual{a.V + b.V, a.D + b.D} }

// Sub returns a - b.
func (a Dual) Sub(b Dual) Dual { return Dual{a.V - b.V, a.D - b.D} }

// Mul returns a * b.
func (a Dual) Mul(b Dual) Dual { return Dual{a.V * b.V, a.D*b.V + a.V*b.D} }

// Div returns a / b.
func (a Dual) Div(b Dual) Dual {
	return Dual{a.V / b.V, (a.D*b.V - a.V*b.D) / (b.V * b.V)}
}

// Neg returns -a.
func (a Dual) Neg() Dual { return Dual{-a.V, -a.D} }

// AddConst returns a + c.
func (a Dual) AddConst(c float64) Dual { return Dual{a.V + c, a.D} }

// MulConst returns c * a.
func (a Dual) MulConst(c float64) Dual { return Dual{c * a.V, c * a.D} }

// Sqrt returns sqrt(a).
func (a Dual) Sqrt() Dual {
	s := math.Sqrt(a.V)
	return Dual{s, a.D / (2 * s)}
}

// Exp returns exp(a).
func (a Dual) Exp() Dual {
	e := math.Exp(a.V)
	return Dual{e, a.D * e}
}

// Log returns log(a).
func (a Dual) Log() Dual { return Dual{math.Log(a.V), a.D / a.V} }

// Sqr returns a*a.
func (a Dual) Sqr() Dual { return Dual{a.V * a.V, 2 * a.V * a.D} }

// NormPDF returns the standard normal density of a.
func (a Dual) NormPDF() Dual {
	p := invSqrt2Pi * math.Exp(-0.5*a.V*a.V)
	return Dual{p, -a.V * p * a.D}
}

// NormCDF returns the standard normal CDF of a; its derivative is the
// density.
func (a Dual) NormCDF() Dual {
	return Dual{0.5 * math.Erfc(-a.V/sqrt2), invSqrt2Pi * math.Exp(-0.5*a.V*a.V) * a.D}
}

const (
	invSqrt2Pi = 0.3989422804014326779399460599343818684758586311649
	sqrt2      = 1.4142135623730950488016887242096980785696718753769
)
