package ad

import "math"

// HyperDual is a second-order number v + d1*e1 + d2*e2 + d12*e1*e2
// with e1^2 = e2^2 = 0 and e1*e2 != 0. Seeding e1 along direction u
// and e2 along direction w and pushing the number through a smooth
// function f yields, to machine precision,
//
//	V   = f(x)
//	D1  = grad f . u
//	D2  = grad f . w
//	D12 = u^T (hess f) w
//
// which is exactly what is needed to assemble element Hessians.
type HyperDual struct {
	V   float64
	D1  float64
	D2  float64
	D12 float64
}

// HConst returns a hyper-dual constant.
func HConst(v float64) HyperDual { return HyperDual{V: v} }

// HVar returns a hyper-dual seeded along both directions with weights
// u (for e1) and w (for e2). Use HVar(x, 1, 0) / HVar(x, 0, 1) to pick
// single coordinate directions.
func HVar(v, u, w float64) HyperDual { return HyperDual{V: v, D1: u, D2: w} }

// Add returns a + b.
func (a HyperDual) Add(b HyperDual) HyperDual {
	return HyperDual{a.V + b.V, a.D1 + b.D1, a.D2 + b.D2, a.D12 + b.D12}
}

// Sub returns a - b.
func (a HyperDual) Sub(b HyperDual) HyperDual {
	return HyperDual{a.V - b.V, a.D1 - b.D1, a.D2 - b.D2, a.D12 - b.D12}
}

// Mul returns a * b.
func (a HyperDual) Mul(b HyperDual) HyperDual {
	return HyperDual{
		a.V * b.V,
		a.D1*b.V + a.V*b.D1,
		a.D2*b.V + a.V*b.D2,
		a.D12*b.V + a.D1*b.D2 + a.D2*b.D1 + a.V*b.D12,
	}
}

// Recip returns 1 / a.
func (a HyperDual) Recip() HyperDual {
	iv := 1 / a.V
	iv2 := iv * iv
	return HyperDual{
		iv,
		-a.D1 * iv2,
		-a.D2 * iv2,
		(2*a.D1*a.D2*iv - a.D12) * iv2,
	}
}

// Div returns a / b.
func (a HyperDual) Div(b HyperDual) HyperDual { return a.Mul(b.Recip()) }

// Neg returns -a.
func (a HyperDual) Neg() HyperDual { return HyperDual{-a.V, -a.D1, -a.D2, -a.D12} }

// AddConst returns a + c.
func (a HyperDual) AddConst(c float64) HyperDual {
	return HyperDual{a.V + c, a.D1, a.D2, a.D12}
}

// MulConst returns c * a.
func (a HyperDual) MulConst(c float64) HyperDual {
	return HyperDual{c * a.V, c * a.D1, c * a.D2, c * a.D12}
}

// apply1 lifts a scalar function with known first and second
// derivatives (f, fp, fpp at a.V) through the hyper-dual chain rule.
func (a HyperDual) apply1(f, fp, fpp float64) HyperDual {
	return HyperDual{
		f,
		fp * a.D1,
		fp * a.D2,
		fp*a.D12 + fpp*a.D1*a.D2,
	}
}

// Sqrt returns sqrt(a).
func (a HyperDual) Sqrt() HyperDual {
	s := math.Sqrt(a.V)
	return a.apply1(s, 0.5/s, -0.25/(s*a.V))
}

// Exp returns exp(a).
func (a HyperDual) Exp() HyperDual {
	e := math.Exp(a.V)
	return a.apply1(e, e, e)
}

// Log returns log(a).
func (a HyperDual) Log() HyperDual {
	return a.apply1(math.Log(a.V), 1/a.V, -1/(a.V*a.V))
}

// Sqr returns a*a.
func (a HyperDual) Sqr() HyperDual { return a.Mul(a) }

// NormPDF returns the standard normal density of a;
// phi'(x) = -x phi(x), phi”(x) = (x^2-1) phi(x).
func (a HyperDual) NormPDF() HyperDual {
	p := invSqrt2Pi * math.Exp(-0.5*a.V*a.V)
	return a.apply1(p, -a.V*p, (a.V*a.V-1)*p)
}

// NormCDF returns the standard normal CDF of a;
// Phi'(x) = phi(x), Phi”(x) = -x phi(x).
func (a HyperDual) NormCDF() HyperDual {
	p := invSqrt2Pi * math.Exp(-0.5*a.V*a.V)
	return a.apply1(0.5*math.Erfc(-a.V/sqrt2), p, -a.V*p)
}

// Gradient evaluates f at x with each coordinate seeded in turn and
// returns f(x) and its gradient. f must treat its input as hyper-dual
// coordinates and be smooth at x.
func Gradient(f func([]HyperDual) HyperDual, x []float64) (float64, []float64) {
	n := len(x)
	g := make([]float64, n)
	args := make([]HyperDual, n)
	var v float64
	for i := 0; i < n; i++ {
		for j := range args {
			args[j] = HConst(x[j])
		}
		args[i] = HVar(x[i], 1, 0)
		r := f(args)
		v = r.V
		g[i] = r.D1
	}
	if n == 0 {
		v = f(args).V
	}
	return v, g
}

// Hessian evaluates f at x and returns its value, gradient and dense
// Hessian (row-major, n x n, symmetric). It costs n(n+1)/2 function
// evaluations.
func Hessian(f func([]HyperDual) HyperDual, x []float64) (v float64, g []float64, h [][]float64) {
	n := len(x)
	g = make([]float64, n)
	h = make([][]float64, n)
	for i := range h {
		h[i] = make([]float64, n)
	}
	args := make([]HyperDual, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			for k := range args {
				args[k] = HConst(x[k])
			}
			if i == j {
				args[i] = HVar(x[i], 1, 1)
			} else {
				args[i] = HVar(x[i], 1, 0)
				args[j] = HVar(x[j], 0, 1)
			}
			r := f(args)
			v = r.V
			g[i] = r.D1
			h[i][j] = r.D12
			h[j][i] = r.D12
		}
	}
	if n == 0 {
		v = f(args).V
	}
	return v, g, h
}
